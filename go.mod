module mmlpt

go 1.21
