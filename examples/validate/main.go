// Validate: use Fakeroute to check that the MDA implementation honours
// its failure-probability bound (the Sec 3 methodology, reduced scale).
//
// For the simplest diamond and the 95% stopping points, theory says the
// MDA misses part of the topology with probability exactly (1/2)^5 =
// 0.03125. The example computes that prediction with the exact dynamic
// program, measures the failure rate over repeated runs, and reports
// whether the prediction falls inside the confidence interval.
package main

import (
	"fmt"

	"mmlpt"
	"mmlpt/internal/experiments"
	"mmlpt/internal/fakeroute"
)

func main() {
	src := mmlpt.MustParseAddr("192.0.2.1")
	dst := mmlpt.MustParseAddr("198.51.100.77")

	// The exact prediction from the stopping-rule dynamic program.
	_, truth := mmlpt.BuildScenario(1, src, dst, mmlpt.SimplestDiamond)
	stop := mmlpt.StoppingPoints(0.05, 16)
	predicted := mmlpt.GraphFailureProb(truth, stop)
	fmt.Printf("topology: simplest diamond (%s)\n", fakeroute.DescribeGraph(truth))
	fmt.Printf("stopping points n1..n4 = %v\n", stop[1:5])
	fmt.Printf("predicted failure probability: %.5f\n\n", predicted)

	// Measure. The paper used 50 samples of 1000 runs (10 minutes on a
	// 2018 laptop); 10×300 keeps the example snappy.
	res := experiments.Sec3Validation(experiments.Sec3Config{
		Samples: 10, RunsPerSample: 300, Seed: 11,
	})
	fmt.Printf("measured over %d×%d runs: %.5f ± %.5f (95%% CI)\n",
		res.Samples, res.Runs, res.Measured, res.CI)
	if res.Measured-res.CI <= predicted && predicted <= res.Measured+res.CI {
		fmt.Println("the implementation respects its failure bound ✓")
	} else {
		fmt.Println("WARNING: measured failure rate outside the confidence interval")
	}
}
