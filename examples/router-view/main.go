// Router view: the Sec 4 motivation. When a route trace shows parallel
// paths, are they links to different interfaces of a single router, or
// links to separate routers? Multilevel tracing answers at trace time by
// integrating alias resolution.
//
// The example builds a 4-wide diamond whose four interfaces belong to two
// routers (two interfaces each, sharing an IP ID counter), runs a
// multilevel trace, and prints both the IP-level and the router-level
// views.
package main

import (
	"fmt"

	"mmlpt"
	"mmlpt/internal/alias"
)

func main() {
	src := mmlpt.MustParseAddr("192.0.2.1")
	dst := mmlpt.MustParseAddr("198.51.100.77")

	// Hand-build the network: a diamond of four interfaces at one hop...
	net := mmlpt.NewNetwork(1)
	alloc := mmlpt.NewAddrAllocator(mmlpt.MustParseAddr("10.1.0.1"))
	b := mmlpt.NewPathBuilder(alloc)
	b.Spread(4)
	g := b.Converge(1).End(dst)

	// ...where interfaces 1+2 belong to router A and 3+4 to router B.
	// Each router uses one shared, monotonic IP ID counter: exactly the
	// signal the Monotonic Bounds Test keys on.
	hop1 := g.Hop(1)
	routerA, routerB := net.NewRouter(), net.NewRouter()
	for i, id := range hop1 {
		r := routerA
		if i >= 2 {
			r = routerB
		}
		net.AddIface(r, g.V(id).Addr)
	}
	net.EnsureIfaces(g, dst) // everything else: one router per interface
	netPathMustAdd(net, src, dst, g)

	prober := mmlpt.NewSimProber(net, src, dst)
	res := mmlpt.Trace(prober, mmlpt.Options{
		Algorithm: mmlpt.AlgoMultilevel,
		Seed:      1,
	})

	fmt.Printf("IP-level view (%d trace probes):\n%s\n", res.Multilevel.TraceProbes, res.IP.Graph)
	fmt.Printf("alias resolution (%d additional probes) found:\n", res.Multilevel.AliasProbes)
	for _, s := range alias.RouterSets(res.Multilevel.Sets) {
		fmt.Printf("  one router with interfaces %v\n", s.Addrs)
	}
	fmt.Printf("\nrouter-level view:\n%s", res.Multilevel.RouterGraph)
	fmt.Println("\nthe four parallel IP paths are two routers: the diamond is half as")
	fmt.Println("wide as the IP view suggests.")
}

// netPathMustAdd registers the path, panicking on misuse (examples keep
// error handling minimal).
func netPathMustAdd(net *mmlpt.Network, src, dst mmlpt.Addr, g *mmlpt.Graph) {
	net.AddPath(src, dst, g)
}
