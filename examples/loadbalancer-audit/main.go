// Load-balancer audit: the network-operator scenario from the paper's
// introduction. A single-flow traceroute (the way Paris Traceroute runs on
// RIPE Atlas) sees one path through a widely load-balanced route and
// misses the rest; the MDA sees everything but is expensive; the MDA-Lite
// sees everything at a fraction of the MDA's probe budget.
//
// The example traces a 28-interface load-balanced hop (the max-length-2
// diamond from the paper's simulations) with all three algorithms and
// prints what each saw and what it cost.
package main

import (
	"fmt"

	"mmlpt"
)

func main() {
	src := mmlpt.MustParseAddr("192.0.2.1")
	dst := mmlpt.MustParseAddr("198.51.100.77")

	type row struct {
		name string
		algo mmlpt.Algorithm
	}
	rows := []row{
		{"single flow (RIPE Atlas style)", mmlpt.AlgoSingleFlow},
		{"MDA", mmlpt.AlgoMDA},
		{"MDA-Lite (phi=2)", mmlpt.AlgoMDALite},
	}

	fmt.Println("auditing a 28-way load-balanced hop:")
	fmt.Printf("%-32s %8s %9s %7s\n", "algorithm", "probes", "vertices", "edges")
	for i, r := range rows {
		// A fresh network per run so probe counters start clean; the
		// topology is identical (same builder, same seed).
		net, _ := mmlpt.BuildScenario(42, src, dst, mmlpt.MaxLength2Diamond)
		prober := mmlpt.NewSimProber(net, src, dst)
		res := mmlpt.Trace(prober, mmlpt.Options{Algorithm: r.algo, Seed: uint64(i) + 7})
		g := res.IP.Graph
		fmt.Printf("%-32s %8d %9d %7d\n", r.name, res.Probes(), g.NumVertices(), g.NumEdges())
	}
	fmt.Println("\nthe single-flow trace reports one healthy path; 27 interfaces that")
	fmt.Println("could be black-holing traffic are invisible to it. The MDA-Lite sees")
	fmt.Println("all of them for roughly 60% of the MDA's probe cost.")
}
