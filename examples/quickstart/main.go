// Quickstart: trace a simulated load-balanced path with the MDA-Lite and
// print the discovered multipath topology.
package main

import (
	"fmt"

	"mmlpt"
)

func main() {
	src := mmlpt.MustParseAddr("192.0.2.1")
	dst := mmlpt.MustParseAddr("198.51.100.77")

	// Build a simulated network holding the paper's Fig 1 diamond: one
	// divergence point, four load-balanced interfaces, two aggregation
	// interfaces, one convergence point.
	net, truth := mmlpt.BuildScenario(1, src, dst, mmlpt.Fig1UnmeshedDiamond)
	fmt.Printf("ground truth:\n%s\n", truth)

	// Trace it. The prober speaks real wire bytes to the simulator.
	prober := mmlpt.NewSimProber(net, src, dst)
	res := mmlpt.Trace(prober, mmlpt.Options{
		Algorithm: mmlpt.AlgoMDALite,
		Seed:      1,
	})

	fmt.Printf("discovered with %d probes (reached destination: %v):\n%s\n",
		res.Probes(), res.IP.ReachedDst, res.IP.Graph)

	for _, d := range res.IP.Graph.Diamonds() {
		m := d.ComputeMetrics()
		fmt.Printf("diamond %s → %s: max length %d, max width %d, uniform %v, meshed %v\n",
			d.DivAddr, d.ConvAddr, m.MaxLength, m.MaxWidth, m.Uniform, m.Meshed)
	}
}
