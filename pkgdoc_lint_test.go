// Package-doc lint: every package under internal/ (and cmd/) must carry
// a substantive package-level doc comment, because the layering of this
// codebase is documented in godoc, not in a separate architecture file
// that would drift. Run via `go test .` — CI's lint job includes it.
package mmlpt

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// minDocLen is the floor for a package comment: long enough that "does
// stuff" cannot pass, short enough not to demand an essay of genuinely
// small packages.
const minDocLen = 120

func TestEveryInternalPackageHasDoc(t *testing.T) {
	t.Parallel()
	checkTree(t, "internal")
	checkTree(t, "cmd")
}

func checkTree(t *testing.T, root string) {
	t.Helper()
	err := filepath.WalkDir(root, func(dir string, d fs.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return err
		}
		for name, pkg := range pkgs {
			var doc string
			var files []string
			for path, f := range pkg.Files {
				files = append(files, path)
				if f.Doc != nil && len(f.Doc.Text()) > len(doc) {
					doc = f.Doc.Text()
				}
			}
			if len(files) == 0 {
				continue
			}
			if doc == "" {
				t.Errorf("package %s (%s) has no package-level doc comment; state what it does and where it sits in the layering", name, dir)
				continue
			}
			wantPrefix := "Package " + name + " "
			if name == "main" {
				wantPrefix = "Command "
			}
			if !strings.HasPrefix(doc, wantPrefix) {
				t.Errorf("package %s (%s): doc comment must start with %q, got %q", name, dir, wantPrefix, firstLine(doc))
			}
			if len(doc) < minDocLen {
				t.Errorf("package %s (%s): doc comment is %d chars, want at least %d — say what the package does AND its layering role", name, dir, len(doc), minDocLen)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
