package mmlpt

// Golden regression pins for the batched probing engine. The probe
// counts and graph sizes below were captured from the probe-at-a-time
// implementation; the batched per-round loops in internal/mda and
// internal/mdalite must reproduce them exactly — batching restructures
// when probes are sent, never which probes are sent.

import (
	"testing"

	"mmlpt/internal/fakeroute"
	"mmlpt/internal/mda"
	"mmlpt/internal/mdalite"
	"mmlpt/internal/packet"
	"mmlpt/internal/probe"
	"mmlpt/internal/topo"
)

type goldenRow struct {
	shape        string
	seed         uint64
	mdaProbes    uint64
	mdaV, mdaE   int
	liteProbes   uint64
	liteV, liteE int
	switched     bool
}

var goldenRows = []goldenRow{
	{"simplest", 1, 41, 5, 5, 29, 5, 5, false},
	{"simplest", 2, 47, 5, 5, 29, 5, 5, false},
	{"simplest", 3, 45, 5, 5, 29, 5, 5, false},
	{"fig1", 1, 94, 9, 11, 53, 9, 11, false},
	{"fig1", 2, 97, 9, 11, 53, 9, 11, false},
	{"fig1", 3, 96, 9, 11, 54, 9, 11, false},
	{"fig1meshed", 1, 129, 9, 15, 169, 9, 15, true},
	{"fig1meshed", 2, 141, 9, 15, 181, 9, 15, true},
	{"fig1meshed", 3, 134, 9, 15, 178, 9, 15, true},
	{"maxlen2", 1, 612, 31, 57, 245, 31, 57, false},
	{"maxlen2", 2, 631, 31, 57, 244, 31, 57, false},
	{"maxlen2", 3, 689, 31, 57, 244, 31, 57, false},
	{"symmetric", 1, 258, 17, 25, 132, 17, 25, false},
	{"symmetric", 2, 241, 17, 25, 120, 17, 25, false},
	{"symmetric", 3, 233, 17, 25, 118, 17, 25, false},
	{"asymmetric", 1, 737, 53, 70, 839, 53, 70, true},
	{"asymmetric", 2, 808, 53, 70, 853, 53, 70, true},
	{"asymmetric", 3, 875, 53, 70, 911, 53, 69, true},
	{"meshed48", 1, 1710, 79, 183, 1748, 79, 184, true},
	{"meshed48", 2, 1782, 79, 185, 1863, 79, 183, true},
	{"meshed48", 3, 1620, 79, 185, 1765, 79, 185, true},
}

var goldenShapes = map[string]func(*fakeroute.AddrAllocator, packet.Addr) *topo.Graph{
	"simplest":   fakeroute.SimplestDiamond,
	"fig1":       fakeroute.Fig1UnmeshedDiamond,
	"fig1meshed": fakeroute.Fig1MeshedDiamond,
	"maxlen2":    fakeroute.MaxLength2Diamond,
	"symmetric":  fakeroute.SymmetricDiamond,
	"asymmetric": fakeroute.AsymmetricDiamond,
	"meshed48":   fakeroute.MeshedDiamond48,
}

func countEdges(g *topo.Graph) int {
	n := 0
	for i := range g.Vertices {
		n += len(g.Succ(topo.VertexID(i)))
	}
	return n
}

func TestBatchedEngineMatchesSerialGoldens(t *testing.T) {
	t.Parallel()
	for _, row := range goldenRows {
		row := row
		net, _ := fakeroute.BuildScenario(row.seed, benchSrc, benchDst, goldenShapes[row.shape])
		p := probe.NewSimProber(net, benchSrc, benchDst)
		p.Retries = 0
		r := mda.Trace(p, mda.Config{Seed: row.seed})
		if r.Probes != row.mdaProbes || len(r.Graph.Vertices) != row.mdaV || countEdges(r.Graph) != row.mdaE {
			t.Errorf("%s seed=%d MDA: probes=%d v=%d e=%d, want %d/%d/%d",
				row.shape, row.seed, r.Probes, len(r.Graph.Vertices), countEdges(r.Graph),
				row.mdaProbes, row.mdaV, row.mdaE)
		}
		net2, _ := fakeroute.BuildScenario(row.seed, benchSrc, benchDst, goldenShapes[row.shape])
		p2 := probe.NewSimProber(net2, benchSrc, benchDst)
		p2.Retries = 0
		r2 := mdalite.Trace(p2, mda.Config{Seed: row.seed}, 2)
		if r2.Probes != row.liteProbes || len(r2.Graph.Vertices) != row.liteV ||
			countEdges(r2.Graph) != row.liteE || r2.SwitchedToMDA != row.switched {
			t.Errorf("%s seed=%d MDA-Lite: probes=%d v=%d e=%d switched=%v, want %d/%d/%d/%v",
				row.shape, row.seed, r2.Probes, len(r2.Graph.Vertices), countEdges(r2.Graph),
				r2.SwitchedToMDA, row.liteProbes, row.liteV, row.liteE, row.switched)
		}
	}
}
