package mmlpt_test

import (
	"fmt"

	"mmlpt"
)

// ExampleTrace traces the paper's simplest diamond with the MDA-Lite and
// reports the diamond's metrics.
func ExampleTrace() {
	src := mmlpt.MustParseAddr("192.0.2.1")
	dst := mmlpt.MustParseAddr("198.51.100.77")
	net, _ := mmlpt.BuildScenario(1, src, dst, mmlpt.SimplestDiamond)

	prober := mmlpt.NewSimProber(net, src, dst)
	res := mmlpt.Trace(prober, mmlpt.Options{Algorithm: mmlpt.AlgoMDALite, Seed: 1})

	for _, d := range res.IP.Graph.Diamonds() {
		m := d.ComputeMetrics()
		fmt.Printf("diamond: length %d, width %d, meshed %v\n", m.MaxLength, m.MaxWidth, m.Meshed)
	}
	fmt.Println("reached:", res.IP.ReachedDst)
	// Output:
	// diamond: length 2, width 2, meshed false
	// reached: true
}

// ExampleStoppingPoints prints the 95%-confidence stopping points the MDA
// uses, matching the deployed implementations.
func ExampleStoppingPoints() {
	nk := mmlpt.StoppingPoints(0.05, 6)
	fmt.Println(nk[1:])
	// Output:
	// [6 11 16 21 27 33]
}

// ExampleGraphFailureProb computes the exact probability that the MDA
// misses part of the simplest diamond: the Sec 3 validation value.
func ExampleGraphFailureProb() {
	src := mmlpt.MustParseAddr("192.0.2.1")
	dst := mmlpt.MustParseAddr("198.51.100.77")
	_, truth := mmlpt.BuildScenario(1, src, dst, mmlpt.SimplestDiamond)

	p := mmlpt.GraphFailureProb(truth, mmlpt.StoppingPoints(0.05, 16))
	fmt.Printf("%.5f\n", p)
	// Output:
	// 0.03125
}

// ExamplePathBuilder assembles a custom load-balanced topology and
// registers it on a simulated network.
func ExamplePathBuilder() {
	src := mmlpt.MustParseAddr("192.0.2.1")
	dst := mmlpt.MustParseAddr("198.51.100.77")
	net := mmlpt.NewNetwork(1)
	alloc := mmlpt.NewAddrAllocator(mmlpt.MustParseAddr("10.0.0.1"))

	// divergence → 3-way load balance → converge → destination
	g := mmlpt.NewPathBuilder(alloc).Spread(3).Converge(1).End(dst)
	net.EnsureIfaces(g, dst)
	net.AddPath(src, dst, g)

	res := mmlpt.Trace(mmlpt.NewSimProber(net, src, dst), mmlpt.Options{Seed: 3})
	fmt.Println("width at hop 1:", res.IP.Graph.Width(1))
	// Output:
	// width at hop 1: 3
}
