package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {99, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); got != cse.want {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	if c.Min() != 1 || c.Max() != 3 {
		t.Errorf("min/max %v %v", c.Min(), c.Max())
	}
}

func TestCDFQuantile(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	c := NewCDF(xs)
	if q := c.Quantile(0.5); q != 50 {
		t.Errorf("median %v", q)
	}
	if q := c.Quantile(0); q != 0 {
		t.Errorf("q0 %v", q)
	}
	if q := c.Quantile(1); q != 99 {
		t.Errorf("q1 %v", q)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(1) != 0 || !math.IsNaN(c.Quantile(0.5)) || !math.IsNaN(c.Min()) {
		t.Fatal("empty CDF misbehaves")
	}
}

func TestCDFAtMonotoneProperty(t *testing.T) {
	f := func(raw []float64, probes []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		c := NewCDF(xs)
		sort.Float64s(probes)
		last := -1.0
		for _, p := range probes {
			if math.IsNaN(p) {
				continue
			}
			v := c.At(p)
			if v < last-1e-12 || v < 0 || v > 1 {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStdDevCI(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean %v", m)
	}
	sd := StdDev(xs)
	if math.Abs(sd-2.1380899353) > 1e-9 {
		t.Fatalf("stddev %v", sd)
	}
	m, hw := MeanCI(xs, 1.96)
	if m != 5 || math.Abs(hw-1.96*sd/math.Sqrt(8)) > 1e-12 {
		t.Fatalf("CI %v %v", m, hw)
	}
	if math.IsNaN(Mean(nil)) == false {
		t.Fatal("mean of nothing should be NaN")
	}
	if StdDev([]float64{1}) != 0 {
		t.Fatal("stddev of one sample")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]int{1, 2, 2, 3, 3, 3})
	if h.Total != 6 {
		t.Fatalf("total %d", h.Total)
	}
	if h.Portion(2) != 2.0/6 || h.Portion(9) != 0 {
		t.Fatal("portions wrong")
	}
	if h.PortionAtLeast(2) != 5.0/6 {
		t.Fatalf("at least: %v", h.PortionAtLeast(2))
	}
	keys := h.Keys()
	if len(keys) != 3 || keys[0] != 1 || keys[2] != 3 {
		t.Fatalf("keys %v", keys)
	}
}

func TestJoint(t *testing.T) {
	j := NewJoint()
	j.Add(1, 2)
	j.Add(1, 2)
	j.Add(3, 4)
	if j.Total != 3 {
		t.Fatalf("total %d", j.Total)
	}
	cells := j.Cells()
	if len(cells) != 2 || cells[0] != [3]int{1, 2, 2} || cells[1] != [3]int{3, 4, 1} {
		t.Fatalf("cells %v", cells)
	}
}

func TestCDFPoints(t *testing.T) {
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = float64(i)
	}
	c := NewCDF(xs)
	pts := c.Points(10)
	if len(pts) != 10 {
		t.Fatalf("points %d", len(pts))
	}
	if pts[len(pts)-1][1] != 1 {
		t.Fatalf("last point p=%v", pts[len(pts)-1][1])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] || pts[i][1] < pts[i-1][1] {
			t.Fatal("points not monotone")
		}
	}
}

func TestFormatCDFHeader(t *testing.T) {
	s := FormatCDF(NewCDF([]float64{1, 2}), "demo")
	if len(s) == 0 || s[0] != '#' {
		t.Fatalf("format: %q", s)
	}
}
