// Package stats provides the small statistical toolkit the experiments
// use: empirical CDFs, sample means with normal-approximation confidence
// intervals, histograms, and ratio aggregation.
//
// In the layering, stats is a thin leaf utility: pure functions over
// float slices, no dependencies inside the module, consumed by
// internal/experiments and the figure formatters.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied, then sorted).
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0 <= q <= 1).
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(q * float64(len(c.sorted)))
	if i >= len(c.sorted) {
		i = len(c.sorted) - 1
	}
	return c.sorted[i]
}

// Points returns up to n evenly spaced (x, P(X<=x)) pairs for plotting.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := (i + 1) * len(c.sorted) / n
		if idx > len(c.sorted) {
			idx = len(c.sorted)
		}
		x := c.sorted[idx-1]
		out = append(out, [2]float64{x, float64(idx) / float64(len(c.sorted))})
	}
	return out
}

// Min and Max return the extremes.
func (c *CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[0]
}

// Max returns the largest sample.
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[len(c.sorted)-1]
}

// Mean returns the arithmetic mean of samples.
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range samples {
		sum += x
	}
	return sum / float64(len(samples))
}

// StdDev returns the sample standard deviation (n-1 denominator).
func StdDev(samples []float64) float64 {
	if len(samples) < 2 {
		return 0
	}
	m := Mean(samples)
	var ss float64
	for _, x := range samples {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(samples)-1))
}

// MeanCI returns the mean of samples and the half-width of its
// normal-approximation confidence interval at the given z (1.96 for 95%).
func MeanCI(samples []float64, z float64) (mean, halfWidth float64) {
	mean = Mean(samples)
	if len(samples) < 2 {
		return mean, 0
	}
	halfWidth = z * StdDev(samples) / math.Sqrt(float64(len(samples)))
	return mean, halfWidth
}

// Histogram counts integer-valued samples into a map, plus total.
type Histogram struct {
	Counts map[int]int
	Total  int
}

// NewHistogram builds a histogram over int samples.
func NewHistogram(samples []int) *Histogram {
	h := &Histogram{Counts: make(map[int]int)}
	for _, x := range samples {
		h.Counts[x]++
		h.Total++
	}
	return h
}

// Portion returns the fraction of samples equal to x.
func (h *Histogram) Portion(x int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[x]) / float64(h.Total)
}

// PortionAtLeast returns the fraction of samples >= x.
func (h *Histogram) PortionAtLeast(x int) float64 {
	if h.Total == 0 {
		return 0
	}
	n := 0
	for v, c := range h.Counts {
		if v >= x {
			n += c
		}
	}
	return float64(n) / float64(h.Total)
}

// Keys returns sorted distinct values.
func (h *Histogram) Keys() []int {
	keys := make([]int, 0, len(h.Counts))
	for k := range h.Counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Joint is a sparse 2-D joint distribution over integer pairs, used for
// the length×width heatmaps (Figs 11, 14).
type Joint struct {
	Counts map[[2]int]int
	Total  int
}

// NewJoint returns an empty joint distribution.
func NewJoint() *Joint { return &Joint{Counts: make(map[[2]int]int)} }

// Add records one (x, y) observation.
func (j *Joint) Add(x, y int) {
	j.Counts[[2]int{x, y}]++
	j.Total++
}

// Cells returns the sorted nonzero cells as (x, y, count).
func (j *Joint) Cells() [][3]int {
	out := make([][3]int, 0, len(j.Counts))
	for k, c := range j.Counts {
		out = append(out, [3]int{k[0], k[1], c})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

// FormatCDF renders a CDF as "x p" lines, one per distinct sample value,
// the format cmd/paperfig emits for plotting.
func FormatCDF(c *CDF, header string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s (n=%d)\n", header, c.N())
	last := math.Inf(-1)
	for i, x := range c.sorted {
		if x == last && i != len(c.sorted)-1 {
			continue
		}
		fmt.Fprintf(&b, "%g %.6f\n", x, float64(i+1)/float64(len(c.sorted)))
		last = x
	}
	return b.String()
}
