package obs

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Progress is a set of atomic counters a streaming survey run updates as
// pairs complete, safe to read concurrently from a reporting goroutine.
// It observes the run without influencing it: rates are wall-clock
// derived and never feed back into tracing decisions, so determinism is
// untouched.
type Progress struct {
	total   atomic.Int64
	done    atomic.Int64
	skipped atomic.Int64
	probes  atomic.Uint64
	records atomic.Int64
	// startNanos anchors the rate computation at Begin time.
	startNanos atomic.Int64
}

// NewProgress returns a zeroed progress tracker.
func NewProgress() *Progress {
	p := &Progress{}
	p.startNanos.Store(time.Now().UnixNano())
	return p
}

// Begin (re)anchors the tracker for a run of total pairs of which
// skipped were already completed by an earlier, checkpointed run. Rates
// cover only the pairs this process traces.
func (p *Progress) Begin(total, skipped int) {
	p.total.Store(int64(total))
	p.skipped.Store(int64(skipped))
	p.done.Store(int64(skipped))
	p.probes.Store(0)
	p.records.Store(0)
	p.startNanos.Store(time.Now().UnixNano())
}

// PairDone records one completed pair and the probes it cost.
func (p *Progress) PairDone(probes uint64) {
	p.done.Add(1)
	p.probes.Add(probes)
}

// RecordEmitted counts one record handed to the sinks.
func (p *Progress) RecordEmitted() { p.records.Add(1) }

// Snapshot is a consistent-enough point-in-time view for reporting.
type Snapshot struct {
	Done, Total, Skipped int
	Probes               uint64
	Records              int
	Elapsed              time.Duration
	// PairsPerSec and ProbesPerSec are rates over the pairs this process
	// traced (checkpoint-skipped pairs excluded).
	PairsPerSec, ProbesPerSec float64
}

// Snapshot reads the counters.
func (p *Progress) Snapshot() Snapshot {
	s := Snapshot{
		Done:    int(p.done.Load()),
		Total:   int(p.total.Load()),
		Skipped: int(p.skipped.Load()),
		Probes:  p.probes.Load(),
		Records: int(p.records.Load()),
		Elapsed: time.Duration(time.Now().UnixNano() - p.startNanos.Load()),
	}
	if secs := s.Elapsed.Seconds(); secs > 0 {
		s.PairsPerSec = float64(s.Done-s.Skipped) / secs
		s.ProbesPerSec = float64(s.Probes) / secs
	}
	return s
}

// String renders a one-line status suitable for periodic stderr output.
func (s Snapshot) String() string {
	pct := 0.0
	if s.Total > 0 {
		pct = 100 * float64(s.Done) / float64(s.Total)
	}
	line := fmt.Sprintf("%d/%d pairs (%.1f%%), %d probes, %.1f pairs/s, %.0f probes/s",
		s.Done, s.Total, pct, s.Probes, s.PairsPerSec, s.ProbesPerSec)
	if s.Skipped > 0 {
		line += fmt.Sprintf(" (%d resumed from checkpoint)", s.Skipped)
	}
	return line
}
