package obs

import (
	"testing"
	"testing/quick"

	"mmlpt/internal/packet"
)

func mkReply(from packet.Addr, ipid uint16, ttl byte) *packet.Reply {
	return &packet.Reply{From: from, Type: packet.ICMPTypeTimeExceeded, IPID: ipid, ReplyTTL: ttl}
}

func TestRecordTraceAccumulates(t *testing.T) {
	o := New()
	a := packet.MustParseAddr("10.0.0.1")
	o.RecordTrace(mkReply(a, 100, 253), 5, 3, 2, 1)
	o.RecordTrace(mkReply(a, 101, 253), 5, 3, 2, 2)
	o.RecordTrace(mkReply(a, 102, 253), 6, 3, 2, 3)
	ao := o.Get(a)
	if ao == nil {
		t.Fatal("no record")
	}
	if len(ao.Samples) != 3 {
		t.Fatalf("samples %d", len(ao.Samples))
	}
	if len(ao.Flows) != 2 { // (5,3) deduplicated, (6,3) new
		t.Fatalf("flows %v", ao.Flows)
	}
	if len(ao.Hops) != 1 || ao.Hops[0] != 2 {
		t.Fatalf("hops %v", ao.Hops)
	}
	if len(ao.ReplyTTLExceeded) != 1 || ao.ReplyTTLExceeded[0] != 253 {
		t.Fatalf("reply TTLs %v", ao.ReplyTTLExceeded)
	}
}

func TestSamplesSplitByFamily(t *testing.T) {
	o := New()
	a := packet.MustParseAddr("10.0.0.2")
	o.RecordTrace(mkReply(a, 1, 200), 1, 2, 1, 10)
	o.RecordEcho(&packet.Reply{From: a, Type: packet.ICMPTypeEchoReply, IPID: 9, ReplyTTL: 60}, 11, 77)
	ind := o.Get(a).IndirectSamples()
	dir := o.Get(a).DirectSamples()
	if len(ind) != 1 || len(dir) != 1 {
		t.Fatalf("split %d/%d", len(ind), len(dir))
	}
	if dir[0].SentID != 77 {
		t.Fatalf("sent ID %d", dir[0].SentID)
	}
	if ind[0].IPID != 1 || dir[0].IPID != 9 {
		t.Fatal("family mixup")
	}
}

func TestSamplesSortedBySeq(t *testing.T) {
	o := New()
	a := packet.MustParseAddr("10.0.0.3")
	o.RecordTrace(mkReply(a, 3, 200), 1, 2, 1, 30)
	o.RecordTrace(mkReply(a, 1, 200), 1, 2, 1, 10)
	o.RecordTrace(mkReply(a, 2, 200), 1, 2, 1, 20)
	s := o.Get(a).IndirectSamples()
	for i := 1; i < len(s); i++ {
		if s[i].Seq < s[i-1].Seq {
			t.Fatal("not sorted by seq")
		}
	}
}

func TestInferInitialTTL(t *testing.T) {
	cases := []struct {
		observed, want byte
	}{
		{1, 32}, {32, 32}, {33, 64}, {60, 64}, {64, 64},
		{65, 128}, {128, 128}, {129, 255}, {250, 255}, {255, 255},
	}
	for _, c := range cases {
		if got := InferInitialTTL(c.observed); got != c.want {
			t.Errorf("InferInitialTTL(%d) = %d, want %d", c.observed, got, c.want)
		}
	}
}

func TestInferInitialTTLProperty(t *testing.T) {
	// The inferred initial TTL is always >= the observed TTL and is one
	// of the conventional values.
	f := func(observed byte) bool {
		got := InferInitialTTL(observed)
		if got < observed {
			return false
		}
		switch got {
		case 32, 64, 128, 255:
			return true
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintCompatibility(t *testing.T) {
	full255 := Fingerprint{Exceeded: 255, Echo: 255}
	full64 := Fingerprint{Exceeded: 64, Echo: 64}
	onlyExc := Fingerprint{Exceeded: 255}
	if CompatibleFingerprints(full255, full64) {
		t.Fatal("different signatures compatible")
	}
	if !CompatibleFingerprints(full255, onlyExc) {
		t.Fatal("partial signature must be compatible when measured parts match")
	}
	if !CompatibleFingerprints(Fingerprint{}, full64) {
		t.Fatal("unmeasured signature must be compatible with anything")
	}
	if CompatibleFingerprints(onlyExc, Fingerprint{Exceeded: 64, Echo: 255}) {
		t.Fatal("mismatched measured component accepted")
	}
}

func TestConstantLabel(t *testing.T) {
	ao := &AddrObs{}
	if _, ok := ao.ConstantLabel(); ok {
		t.Fatal("no labels must not be constant")
	}
	ao.MPLSLabels = []uint32{5, 5, 5}
	if l, ok := ao.ConstantLabel(); !ok || l != 5 {
		t.Fatalf("constant label: %d %v", l, ok)
	}
	ao.MPLSLabels = append(ao.MPLSLabels, 6)
	if _, ok := ao.ConstantLabel(); ok {
		t.Fatal("flapping label reported constant")
	}
}

func TestAddrsSorted(t *testing.T) {
	o := New()
	for _, s := range []string{"10.0.0.9", "10.0.0.1", "10.0.0.5"} {
		o.Ensure(packet.MustParseAddr(s))
	}
	addrs := o.Addrs()
	if len(addrs) != 3 || addrs[0] != packet.MustParseAddr("10.0.0.1") || addrs[2] != packet.MustParseAddr("10.0.0.9") {
		t.Fatalf("addrs %v", addrs)
	}
}

func TestFingerprintOfUsesMaxObserved(t *testing.T) {
	ao := &AddrObs{ReplyTTLExceeded: []byte{250, 252}, ReplyTTLEcho: []byte{60}}
	fp := ao.FingerprintOf()
	if fp.Exceeded != 255 || fp.Echo != 64 {
		t.Fatalf("fingerprint %+v", fp)
	}
}
