// Package obs accumulates the per-address measurement by-products of a
// route trace: IP ID samples, reply TTLs, MPLS labels, and the (flow ID,
// TTL) pairs known to elicit a reply from each address.
//
// The multilevel tracer's "free" Round 0 alias resolution (Sec 4.1) is
// built entirely from these observations; later rounds use the recorded
// flow table to aim additional indirect probes at specific addresses.
//
// In the layering, obs is a thin recording layer between the probing
// engine and the alias resolver: it stores what probes revealed and
// never decides what to probe. The progress and fleet trackers here are
// equally passive — counters the survey and dispatch layers update for
// reporting, never for scheduling.
package obs

import (
	"sort"

	"mmlpt/internal/packet"
)

// Sample is one IP ID observation from an address.
type Sample struct {
	// Seq is the global probe sequence number at which the sample was
	// taken: the simulated timestamp the Monotonic Bounds Test orders by.
	Seq uint64
	// IPID is the outer IP identification value of the reply.
	IPID uint16
	// Indirect is true for Time Exceeded / Port Unreachable replies
	// (traceroute-style probing) and false for Echo replies.
	Indirect bool
	// SentID is the IP ID the probe carried (direct probes only): MIDAR
	// detects routers that copy the probe's IP ID into the reply by
	// comparing the two.
	SentID uint16
}

// FlowRef is a (flow ID, TTL) pair known to draw a reply from an address.
type FlowRef struct {
	Flow uint16
	TTL  int
}

// AddrObs is everything observed about one address.
type AddrObs struct {
	Addr    packet.Addr
	Samples []Sample
	// ReplyTTLExceeded is the set of observed reply TTLs for indirect
	// probing (normally one value); ReplyTTLEcho likewise for direct.
	ReplyTTLExceeded []byte
	ReplyTTLEcho     []byte
	// MPLSLabels is the set of bottom-of-stack labels seen from this
	// address, in observation order.
	MPLSLabels []uint32
	// Flows are the (flow, TTL) pairs that drew replies from this address.
	Flows []FlowRef
	// Hops is the set of hop indices at which the address was observed.
	Hops []int
}

// Observations is the collection for one trace.
type Observations struct {
	byAddr map[packet.Addr]*AddrObs
}

// New returns an empty collection.
func New() *Observations {
	return &Observations{byAddr: make(map[packet.Addr]*AddrObs)}
}

// Get returns the observation record for addr, or nil.
func (o *Observations) Get(addr packet.Addr) *AddrObs { return o.byAddr[addr] }

// Ensure returns the record for addr, creating it if needed.
func (o *Observations) Ensure(addr packet.Addr) *AddrObs {
	ao := o.byAddr[addr]
	if ao == nil {
		ao = &AddrObs{Addr: addr}
		o.byAddr[addr] = ao
	}
	return ao
}

// Addrs returns all observed addresses in sorted order.
func (o *Observations) Addrs() []packet.Addr {
	out := make([]packet.Addr, 0, len(o.byAddr))
	for a := range o.byAddr {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RecordTrace stores the by-products of one traceroute reply: the address
// replied at hop with the given flow/ttl, carrying the given IP ID, reply
// TTL and MPLS stack. seq is the global probe counter.
func (o *Observations) RecordTrace(r *packet.Reply, flow uint16, ttl, hop int, seq uint64) {
	ao := o.Ensure(r.From)
	ao.Samples = append(ao.Samples, Sample{Seq: seq, IPID: r.IPID, Indirect: true})
	ao.addReplyTTL(&ao.ReplyTTLExceeded, r.ReplyTTL)
	for _, e := range r.MPLS {
		if e.S {
			ao.MPLSLabels = append(ao.MPLSLabels, e.Label)
		}
	}
	ao.addFlow(FlowRef{Flow: flow, TTL: ttl})
	ao.addHop(hop)
}

// RecordEcho stores the by-products of one direct probe reply. sentID is
// the IP ID the probe carried.
func (o *Observations) RecordEcho(r *packet.Reply, seq uint64, sentID uint16) {
	ao := o.Ensure(r.From)
	ao.Samples = append(ao.Samples, Sample{Seq: seq, IPID: r.IPID, Indirect: false, SentID: sentID})
	ao.addReplyTTL(&ao.ReplyTTLEcho, r.ReplyTTL)
}

func (ao *AddrObs) addReplyTTL(set *[]byte, ttl byte) {
	for _, t := range *set {
		if t == ttl {
			return
		}
	}
	*set = append(*set, ttl)
}

func (ao *AddrObs) addFlow(fr FlowRef) {
	for _, f := range ao.Flows {
		if f == fr {
			return
		}
	}
	ao.Flows = append(ao.Flows, fr)
}

func (ao *AddrObs) addHop(h int) {
	for _, x := range ao.Hops {
		if x == h {
			return
		}
	}
	ao.Hops = append(ao.Hops, h)
}

// IndirectSamples returns the indirect (Time Exceeded) samples in sequence
// order.
func (ao *AddrObs) IndirectSamples() []Sample {
	return ao.samples(true)
}

// DirectSamples returns the direct (Echo) samples in sequence order.
func (ao *AddrObs) DirectSamples() []Sample {
	return ao.samples(false)
}

func (ao *AddrObs) samples(indirect bool) []Sample {
	var out []Sample
	for _, s := range ao.Samples {
		if s.Indirect == indirect {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// InferInitialTTL maps an observed reply TTL to the smallest conventional
// initial TTL (32, 64, 128, 255) at or above it: the Network
// Fingerprinting inference.
func InferInitialTTL(observed byte) byte {
	switch {
	case observed <= 32:
		return 32
	case observed <= 64:
		return 64
	case observed <= 128:
		return 128
	default:
		return 255
	}
}

// Fingerprint is a Network Fingerprinting signature: the inferred initial
// TTLs of traceroute-style and ping-style replies. Zero components mean
// "not measured".
type Fingerprint struct {
	Exceeded byte
	Echo     byte
}

// FingerprintOf computes the signature for an address from its
// observations. Multiple distinct observed reply TTLs of one family map to
// the most common inference; in the simulator they never conflict.
func (ao *AddrObs) FingerprintOf() Fingerprint {
	var fp Fingerprint
	if len(ao.ReplyTTLExceeded) > 0 {
		fp.Exceeded = InferInitialTTL(maxByte(ao.ReplyTTLExceeded))
	}
	if len(ao.ReplyTTLEcho) > 0 {
		fp.Echo = InferInitialTTL(maxByte(ao.ReplyTTLEcho))
	}
	return fp
}

func maxByte(bs []byte) byte {
	m := bs[0]
	for _, b := range bs[1:] {
		if b > m {
			m = b
		}
	}
	return m
}

// CompatibleFingerprints reports whether two signatures could belong to
// the same router: components measured on both sides must match.
func CompatibleFingerprints(a, b Fingerprint) bool {
	if a.Exceeded != 0 && b.Exceeded != 0 && a.Exceeded != b.Exceeded {
		return false
	}
	if a.Echo != 0 && b.Echo != 0 && a.Echo != b.Echo {
		return false
	}
	return true
}

// ConstantLabel returns the MPLS label if the address always carried one
// constant label, and whether such a label exists (the constancy
// requirement of Sec 4.1's MPLS test).
func (ao *AddrObs) ConstantLabel() (uint32, bool) {
	if len(ao.MPLSLabels) == 0 {
		return 0, false
	}
	first := ao.MPLSLabels[0]
	for _, l := range ao.MPLSLabels[1:] {
		if l != first {
			return 0, false
		}
	}
	return first, true
}
