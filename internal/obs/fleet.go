package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Fleet tracks distributed-survey progress on the coordinator: work
// units through the lease state machine, records shipped, lease
// expiries, and a per-runner activity table. Like Progress it is purely
// observational — counters feed the surveyd status line and the
// /v1/status endpoint, never scheduling decisions — but unlike
// Progress it is mutex-based: updates are control-plane-rate (one per
// HTTP call), not probe-rate.
type Fleet struct {
	mu      sync.Mutex
	start   time.Time
	units   int
	leased  int
	shipped int
	merged  int
	records int
	expired int
	runners map[string]*fleetRunner
}

type fleetRunner struct {
	units    int
	records  int
	lastSeen time.Time
}

// NewFleet returns a tracker for a survey sharded into units work
// units.
func NewFleet(units int) *Fleet {
	return &Fleet{start: time.Now(), units: units, runners: make(map[string]*fleetRunner)}
}

func (f *Fleet) runner(id string) *fleetRunner {
	r := f.runners[id]
	if r == nil {
		r = &fleetRunner{}
		f.runners[id] = r
	}
	r.lastSeen = time.Now()
	return r
}

// Seen marks runner activity (any authenticated-enough HTTP call).
func (f *Fleet) Seen(id string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.runner(id)
}

// Leased records a lease grant to the runner.
func (f *Fleet) Leased(id string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.runner(id)
	f.leased++
}

// Shipped records a unit's records landing durably, credited to the
// runner.
func (f *Fleet) Shipped(id string, records int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	r := f.runner(id)
	r.units++
	r.records += records
	f.leased--
	f.shipped++
	f.records += records
}

// LeaseExpired records a lease lost to TTL expiry (runner death or
// stall); the unit went back to unclaimed.
func (f *Fleet) LeaseExpired() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.leased--
	f.expired++
}

// UnitMerged records one shipped unit folded into the final outputs.
func (f *Fleet) UnitMerged() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.merged++
}

// Restored seeds the tracker with units already shipped by an earlier
// coordinator process (manifest resume): n units covering records
// records, attributed to no live runner.
func (f *Fleet) Restored(n, records int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shipped += n
	f.records += records
}

// FleetRunner is one runner's row in a status snapshot.
type FleetRunner struct {
	ID       string
	Units    int
	Records  int
	LastSeen time.Time
}

// FleetSnapshot is a point-in-time view for reporting.
type FleetSnapshot struct {
	Units, Leased, Shipped, Merged int
	Records                        int
	ExpiredLeases                  int
	Elapsed                        time.Duration
	// Runners is sorted by ID for stable rendering.
	Runners []FleetRunner
}

// Snapshot reads the counters.
func (f *Fleet) Snapshot() FleetSnapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := FleetSnapshot{
		Units: f.units, Leased: f.leased, Shipped: f.shipped, Merged: f.merged,
		Records: f.records, ExpiredLeases: f.expired,
		Elapsed: time.Since(f.start),
	}
	for id, r := range f.runners {
		s.Runners = append(s.Runners, FleetRunner{ID: id, Units: r.units, Records: r.records, LastSeen: r.lastSeen})
	}
	sort.Slice(s.Runners, func(i, j int) bool { return s.Runners[i].ID < s.Runners[j].ID })
	return s
}

// String renders a one-line status suitable for periodic stderr output.
func (s FleetSnapshot) String() string {
	line := fmt.Sprintf("%d/%d units shipped (%d leased, %d merged), %d records, %d runners",
		s.Shipped, s.Units, s.Leased, s.Merged, s.Records, len(s.Runners))
	if s.ExpiredLeases > 0 {
		line += fmt.Sprintf(", %d leases expired", s.ExpiredLeases)
	}
	return line
}
