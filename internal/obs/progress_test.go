package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestProgressCountsUnderConcurrency(t *testing.T) {
	t.Parallel()
	p := NewProgress()
	p.Begin(200, 50)
	var wg sync.WaitGroup
	for w := 0; w < 10; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				p.PairDone(7)
				p.RecordEmitted()
			}
		}()
	}
	wg.Wait()
	s := p.Snapshot()
	if s.Done != 50+150 {
		t.Fatalf("done = %d, want 200", s.Done)
	}
	if s.Total != 200 || s.Skipped != 50 {
		t.Fatalf("total/skipped = %d/%d", s.Total, s.Skipped)
	}
	if s.Probes != 150*7 {
		t.Fatalf("probes = %d", s.Probes)
	}
	if s.Records != 150 {
		t.Fatalf("records = %d", s.Records)
	}
	if s.PairsPerSec <= 0 || s.ProbesPerSec <= 0 {
		t.Fatalf("rates not positive: %+v", s)
	}
}

func TestProgressSnapshotString(t *testing.T) {
	t.Parallel()
	p := NewProgress()
	p.Begin(10, 4)
	p.PairDone(100)
	line := p.Snapshot().String()
	if !strings.Contains(line, "5/10 pairs") {
		t.Fatalf("unexpected status line %q", line)
	}
	if !strings.Contains(line, "resumed from checkpoint") {
		t.Fatalf("status line %q does not mention resumed pairs", line)
	}
}
