// Package topo models multipath route topologies: the directed acyclic
// graphs of IP interfaces that per-flow load balancing exposes between a
// source and a destination.
//
// One Graph type serves three roles: the ground truth held by the
// simulator, the topology a tracer discovers incrementally, and the object
// the surveys analyse. Hops are indexed by TTL distance from the source;
// hop 0 holds the single first-hop vertex (or the source itself).
//
// The package also implements the paper's analytical vocabulary
// (Sec 2.2 and Sec 5): diamonds, maximum width, maximum length, maximum
// width asymmetry, the three-case meshing predicate, the ratio of meshed
// hops, uniformity, and per-vertex reach probabilities.
package topo

import (
	"fmt"
	"sort"
	"strings"

	"mmlpt/internal/packet"
)

// VertexID indexes Graph.Vertices.
type VertexID int32

// None marks the absence of a vertex.
const None VertexID = -1

// RouterID identifies a router a vertex belongs to; NoRouter if unknown.
type RouterID int32

// NoRouter marks a vertex with no known router assignment.
const NoRouter RouterID = -1

// StarAddr is the pseudo-address used for a non-responsive ("star") vertex.
// Stars never equal a real interface address.
const StarAddr packet.Addr = 0

// Vertex is one IP interface observed (or simulated) at a hop.
type Vertex struct {
	Addr   packet.Addr
	Hop    int
	Router RouterID
}

// Graph is a multipath route topology: a hop-indexed view over the
// shared DAG adjacency core, keying vertices by (address, hop).
type Graph struct {
	Vertices []Vertex
	dag      DAG
	hops     [][]VertexID
	byAddr   map[packet.Addr]VertexID
}

// New returns an empty Graph.
func New() *Graph {
	return &Graph{byAddr: make(map[packet.Addr]VertexID)}
}

// NumHops returns the number of hops (TTL levels) present.
func (g *Graph) NumHops() int { return len(g.hops) }

// Hop returns the vertex IDs at hop h, or nil if h is out of range.
func (g *Graph) Hop(h int) []VertexID {
	if h < 0 || h >= len(g.hops) {
		return nil
	}
	return g.hops[h]
}

// Width returns the number of vertices at hop h.
func (g *Graph) Width(h int) int { return len(g.Hop(h)) }

// Lookup returns the vertex with the given address, or None. Stars are not
// indexed by address.
func (g *Graph) Lookup(addr packet.Addr) VertexID {
	if addr == StarAddr {
		return None
	}
	if id, ok := g.byAddr[addr]; ok {
		return id
	}
	return None
}

// V returns the vertex record for id. The pointer stays valid only until
// the next AddVertex.
func (g *Graph) V(id VertexID) *Vertex { return &g.Vertices[id] }

// AddVertex inserts a vertex with the given address at hop h, growing the
// hop list as needed. If a vertex with that address already exists at h, its
// ID is returned unchanged. The same address may legitimately appear at two
// different hops (routing loops, diamonds sharing interfaces); each
// (addr, hop) pair is a distinct vertex, and Lookup returns the first added.
// Star vertices (addr == StarAddr) are always distinct.
func (g *Graph) AddVertex(h int, addr packet.Addr) VertexID {
	if h < 0 {
		panic("topo: negative hop")
	}
	if addr != StarAddr {
		if id, ok := g.byAddr[addr]; ok && g.Vertices[id].Hop == h {
			return id
		}
		for _, id := range g.Hop(h) {
			if g.Vertices[id].Addr == addr {
				return id
			}
		}
	}
	id := g.dag.AddVertex()
	g.Vertices = append(g.Vertices, Vertex{Addr: addr, Hop: h, Router: NoRouter})
	for len(g.hops) <= h {
		g.hops = append(g.hops, nil)
	}
	g.hops[h] = append(g.hops[h], id)
	if addr != StarAddr {
		if _, ok := g.byAddr[addr]; !ok {
			g.byAddr[addr] = id
		}
	}
	return id
}

// AddEdge records a link from u (at hop h) to w (at hop h+1). Duplicate
// edges are ignored.
func (g *Graph) AddEdge(u, w VertexID) {
	if u == None || w == None {
		return
	}
	g.dag.AddEdge(u, w)
}

// Succ returns the successor vertex IDs of v.
func (g *Graph) Succ(v VertexID) []VertexID { return g.dag.Succ(v) }

// Pred returns the predecessor vertex IDs of v.
func (g *Graph) Pred(v VertexID) []VertexID { return g.dag.Pred(v) }

// OutDegree returns the number of successors of v.
func (g *Graph) OutDegree(v VertexID) int { return g.dag.OutDegree(v) }

// InDegree returns the number of predecessors of v.
func (g *Graph) InDegree(v VertexID) int { return g.dag.InDegree(v) }

// NumEdges returns the total number of edges.
func (g *Graph) NumEdges() int { return g.dag.NumEdges() }

// NumVertices returns the total number of vertices.
func (g *Graph) NumVertices() int { return len(g.Vertices) }

// Addrs returns the distinct non-star addresses present in the graph.
func (g *Graph) Addrs() []packet.Addr {
	seen := make(map[packet.Addr]bool, len(g.Vertices))
	var out []packet.Addr
	for i := range g.Vertices {
		a := g.Vertices[i].Addr
		if a != StarAddr && !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the graph hop by hop, for debugging and CLI output.
func (g *Graph) String() string {
	var b strings.Builder
	for h := 0; h < len(g.hops); h++ {
		fmt.Fprintf(&b, "hop %2d:", h)
		for _, id := range g.hops[h] {
			v := &g.Vertices[id]
			if v.Addr == StarAddr {
				b.WriteString(" *")
			} else {
				fmt.Fprintf(&b, " %s", v.Addr)
			}
			if n := g.dag.OutDegree(id); n > 0 {
				fmt.Fprintf(&b, "->%d", n)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Diamond is a subgraph delimited by a divergence point followed, two or
// more hops later, by a convergence point, with all flows passing through
// both (Augustin et al.). DivHop and ConvHop are hop indices into the
// parent graph; Div and Conv the single vertices at those hops.
type Diamond struct {
	g                 *Graph
	DivHop, ConvHop   int
	Div, Conv         VertexID
	DivAddr, ConvAddr packet.Addr
}

// Graph returns the parent graph the diamond lives in.
func (d *Diamond) Graph() *Graph { return d.g }

// Key identifies a distinct diamond: its divergence and convergence
// addresses (Sec 5: "we define a distinct diamond by its divergence point
// and its convergence point"). Star endpoints make the diamond distinct
// from any responsive-endpoint diamond.
func (d *Diamond) Key() DiamondKey {
	return DiamondKey{Div: d.DivAddr, Conv: d.ConvAddr}
}

// DiamondKey identifies a distinct diamond.
type DiamondKey struct {
	Div, Conv packet.Addr
}

// Diamonds extracts all diamonds from the graph: maximal runs of
// multi-vertex hops bracketed by single-vertex hops.
func (g *Graph) Diamonds() []*Diamond {
	var out []*Diamond
	h := 0
	for h < len(g.hops) {
		if len(g.hops[h]) != 1 {
			h++
			continue
		}
		// h is a candidate divergence point; find the next single-vertex
		// hop after at least one multi-vertex hop.
		j := h + 1
		for j < len(g.hops) && len(g.hops[j]) > 1 {
			j++
		}
		if j < len(g.hops) && j > h+1 && len(g.hops[j]) == 1 {
			div, conv := g.hops[h][0], g.hops[j][0]
			out = append(out, &Diamond{
				g: g, DivHop: h, ConvHop: j,
				Div: div, Conv: conv,
				DivAddr: g.Vertices[div].Addr, ConvAddr: g.Vertices[conv].Addr,
			})
		}
		if j > h+1 {
			h = j
		} else {
			h++
		}
	}
	return out
}

// MaxWidth is the maximum number of vertices found at a single hop of the
// diamond (endpoints excluded: they are single by construction, so
// including them would not change the maximum for a true diamond).
func (d *Diamond) MaxWidth() int {
	w := 1
	for h := d.DivHop; h <= d.ConvHop; h++ {
		if n := d.g.Width(h); n > w {
			w = n
		}
	}
	return w
}

// MaxLength is the length of the longest path between the divergence and
// the convergence point, in edges. With hop-aligned graphs (every edge
// spans exactly one hop) this is ConvHop-DivHop.
func (d *Diamond) MaxLength() int { return d.ConvHop - d.DivHop }

// HopPairs returns the number of adjacent hop pairs inside the diamond.
func (d *Diamond) HopPairs() int { return d.ConvHop - d.DivHop }

// pairWidthAsymmetry computes the width asymmetry of the hop pair
// (h, h+1) per the Sec 5 definition.
func (g *Graph) pairWidthAsymmetry(h int) int {
	wi, wj := g.Width(h), g.Width(h+1)
	maxSuccDiff := func() int {
		lo, hi := 1<<30, 0
		for _, v := range g.hops[h] {
			n := g.dag.OutDegree(v)
			if n < lo {
				lo = n
			}
			if n > hi {
				hi = n
			}
		}
		if hi == 0 {
			return 0
		}
		return hi - lo
	}
	maxPredDiff := func() int {
		lo, hi := 1<<30, 0
		for _, v := range g.hops[h+1] {
			n := g.dag.InDegree(v)
			if n < lo {
				lo = n
			}
			if n > hi {
				hi = n
			}
		}
		if hi == 0 {
			return 0
		}
		return hi - lo
	}
	switch {
	case wi < wj:
		return maxSuccDiff()
	case wi > wj:
		return maxPredDiff()
	default:
		a, b := maxSuccDiff(), maxPredDiff()
		if a > b {
			return a
		}
		return b
	}
}

// MaxWidthAsymmetry is the largest pair width asymmetry across the
// diamond's hop pairs: the topological indicator of non-uniformity.
func (d *Diamond) MaxWidthAsymmetry() int {
	m := 0
	for h := d.DivHop; h < d.ConvHop; h++ {
		if a := d.g.pairWidthAsymmetry(h); a > m {
			m = a
		}
	}
	return m
}

// PairMeshed reports whether hops h and h+1 are meshed per the three-case
// definition of Sec 2.2.
func (g *Graph) PairMeshed(h int) bool {
	wi, wj := g.Width(h), g.Width(h+1)
	if wi == 0 || wj == 0 {
		return false
	}
	outDeg2 := func() bool {
		for _, v := range g.hops[h] {
			if g.dag.OutDegree(v) >= 2 {
				return true
			}
		}
		return false
	}
	inDeg2 := func() bool {
		for _, v := range g.hops[h+1] {
			if g.dag.InDegree(v) >= 2 {
				return true
			}
		}
		return false
	}
	switch {
	case wi == wj:
		return outDeg2() // equivalently inDeg2 when edge counts balance
	case wi < wj:
		return inDeg2()
	default:
		return outDeg2()
	}
}

// MeshedHopPairs returns the hop indices h (DivHop ≤ h < ConvHop) whose
// pair (h, h+1) is meshed.
func (d *Diamond) MeshedHopPairs() []int {
	var out []int
	for h := d.DivHop; h < d.ConvHop; h++ {
		if d.g.PairMeshed(h) {
			out = append(out, h)
		}
	}
	return out
}

// Meshed reports whether the diamond has at least one meshed hop pair.
func (d *Diamond) Meshed() bool { return len(d.MeshedHopPairs()) > 0 }

// RatioMeshedHops is the portion of the diamond's hop pairs that are
// meshed (Fig 6).
func (d *Diamond) RatioMeshedHops() float64 {
	p := d.HopPairs()
	if p == 0 {
		return 0
	}
	return float64(len(d.MeshedHopPairs())) / float64(p)
}

// Uniform reports whether the diamond has zero width asymmetry at every
// hop pair, the MDA-Lite's working assumption.
func (d *Diamond) Uniform() bool { return d.MaxWidthAsymmetry() == 0 }

// ReachProbabilities computes, under the assumption that every vertex
// load-balances uniformly at random across its successors, the probability
// that a probe with a random flow identifier reaches each vertex. The
// divergence vertex gets probability 1; probabilities propagate down hop by
// hop. Vertices outside [DivHop, ConvHop] get 0.
func (d *Diamond) ReachProbabilities() map[VertexID]float64 {
	p := make(map[VertexID]float64)
	p[d.Div] = 1
	for h := d.DivHop; h < d.ConvHop; h++ {
		for _, u := range d.g.hops[h] {
			pu := p[u]
			succ := d.g.dag.Succ(u)
			if pu == 0 || len(succ) == 0 {
				continue
			}
			share := pu / float64(len(succ))
			for _, w := range succ {
				p[w] += share
			}
		}
	}
	return p
}

// MaxProbabilityDifference returns, across the diamond's hops, the largest
// difference in reach probability between two vertices at a common hop
// (Fig 8's metric).
func (d *Diamond) MaxProbabilityDifference() float64 {
	probs := d.ReachProbabilities()
	maxDiff := 0.0
	for h := d.DivHop + 1; h < d.ConvHop; h++ {
		lo, hi := 2.0, -1.0
		for _, v := range d.g.hops[h] {
			pv := probs[v]
			if pv < lo {
				lo = pv
			}
			if pv > hi {
				hi = pv
			}
		}
		if hi >= 0 && hi-lo > maxDiff {
			maxDiff = hi - lo
		}
	}
	return maxDiff
}

// Metrics bundles the survey metrics of one diamond.
type Metrics struct {
	MaxWidth          int
	MaxLength         int
	MaxWidthAsymmetry int
	RatioMeshedHops   float64
	Meshed            bool
	Uniform           bool
}

// ComputeMetrics evaluates all survey metrics for the diamond.
func (d *Diamond) ComputeMetrics() Metrics {
	return Metrics{
		MaxWidth:          d.MaxWidth(),
		MaxLength:         d.MaxLength(),
		MaxWidthAsymmetry: d.MaxWidthAsymmetry(),
		RatioMeshedHops:   d.RatioMeshedHops(),
		Meshed:            d.Meshed(),
		Uniform:           d.Uniform(),
	}
}

// Equal reports whether two graphs have identical hop structure: the same
// set of addresses per hop and the same edges (by address). Stars compare
// positionally.
func Equal(a, b *Graph) bool {
	if a.NumHops() != b.NumHops() {
		return false
	}
	for h := 0; h < a.NumHops(); h++ {
		if !sameAddrSet(a, a.hops[h], b, b.hops[h]) {
			return false
		}
	}
	return edgeSet(a) == edgeSet(b)
}

func sameAddrSet(ga *Graph, as []VertexID, gb *Graph, bs []VertexID) bool {
	if len(as) != len(bs) {
		return false
	}
	count := make(map[packet.Addr]int, len(as))
	for _, id := range as {
		count[ga.Vertices[id].Addr]++
	}
	for _, id := range bs {
		count[gb.Vertices[id].Addr]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}

func edgeSet(g *Graph) string {
	var edges []string
	for i := range g.Vertices {
		u := &g.Vertices[i]
		for _, w := range g.dag.Succ(VertexID(i)) {
			edges = append(edges, fmt.Sprintf("%d/%s>%s", u.Hop, u.Addr, g.Vertices[w].Addr))
		}
	}
	sort.Strings(edges)
	return strings.Join(edges, ",")
}

// SubgraphCoverage reports how much of the reference graph ref is present
// in g: the fraction of ref's non-star vertices whose addresses g contains
// at the same hop, and the fraction of ref's edges present in g.
func SubgraphCoverage(g, ref *Graph) (vertexFrac, edgeFrac float64) {
	var vTot, vHit, eTot, eHit int
	for i := range ref.Vertices {
		v := &ref.Vertices[i]
		if v.Addr == StarAddr {
			continue
		}
		vTot++
		gid := None
		for _, id := range g.Hop(v.Hop) {
			if g.Vertices[id].Addr == v.Addr {
				gid = id
				break
			}
		}
		if gid != None {
			vHit++
		}
		for _, w := range ref.Succ(VertexID(i)) {
			wAddr := ref.Vertices[w].Addr
			if wAddr == StarAddr {
				continue
			}
			eTot++
			if gid == None {
				continue
			}
			for _, gw := range g.Succ(gid) {
				if g.Vertices[gw].Addr == wAddr {
					eHit++
					break
				}
			}
		}
	}
	if vTot == 0 {
		vertexFrac = 1
	} else {
		vertexFrac = float64(vHit) / float64(vTot)
	}
	if eTot == 0 {
		edgeFrac = 1
	} else {
		edgeFrac = float64(eHit) / float64(eTot)
	}
	return vertexFrac, edgeFrac
}
