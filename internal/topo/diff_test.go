package topo

import (
	"testing"

	"mmlpt/internal/packet"
)

// chainGraph builds hop-aligned graphs from per-hop address lists with
// full connectivity between adjacent hops.
func diffGraph(hops ...[]packet.Addr) *Graph {
	g := New()
	var prev []VertexID
	for h, addrs := range hops {
		var cur []VertexID
		for _, a := range addrs {
			cur = append(cur, g.AddVertex(h, a))
		}
		for _, u := range prev {
			for _, w := range cur {
				g.AddEdge(u, w)
			}
		}
		prev = cur
	}
	return g
}

func a4(x byte) packet.Addr { return packet.AddrFrom4(10, 0, 0, x) }

func TestDiffIdentical(t *testing.T) {
	t.Parallel()
	g := diffGraph(
		[]packet.Addr{a4(1)},
		[]packet.Addr{a4(2), a4(3)},
		[]packet.Addr{a4(4)},
	)
	d := Diff(g, g)
	if d.VertexRecall() != 1 || d.EdgeRecall() != 1 || d.DiamondRecall() != 1 {
		t.Fatalf("self-diff not perfect: %+v", d)
	}
	if d.VertexPrecision() != 1 || d.EdgePrecision() != 1 {
		t.Fatalf("self-diff precision not perfect: %+v", d)
	}
	if d.TrueDiamonds != 1 || d.MatchedDiamonds != 1 {
		t.Fatalf("diamond counts wrong: %+v", d)
	}
}

func TestDiffMissingVertexAndEdge(t *testing.T) {
	t.Parallel()
	ref := diffGraph(
		[]packet.Addr{a4(1)},
		[]packet.Addr{a4(2), a4(3)},
		[]packet.Addr{a4(4)},
	)
	got := diffGraph(
		[]packet.Addr{a4(1)},
		[]packet.Addr{a4(2)},
		[]packet.Addr{a4(4)},
	)
	d := Diff(got, ref)
	if d.TrueVertices != 4 || d.MatchedVertices != 3 {
		t.Fatalf("vertex counts: %+v", d)
	}
	// ref edges: 1->2, 1->3, 2->4, 3->4; got has 1->2, 2->4.
	if d.TrueEdges != 4 || d.MatchedEdges != 2 {
		t.Fatalf("edge counts: %+v", d)
	}
	if d.FalseVertices != 0 || d.FalseEdges != 0 {
		t.Fatalf("no false entries expected: %+v", d)
	}
	// got has no multi-vertex hop, hence no diamond.
	if d.TrueDiamonds != 1 || d.MatchedDiamonds != 0 {
		t.Fatalf("diamond counts: %+v", d)
	}
	if d.DiamondRecall() != 0 {
		t.Fatalf("diamond recall: %v", d.DiamondRecall())
	}
}

func TestDiffFalseLinks(t *testing.T) {
	t.Parallel()
	ref := diffGraph(
		[]packet.Addr{a4(1)},
		[]packet.Addr{a4(2)},
	)
	got := diffGraph(
		[]packet.Addr{a4(1)},
		[]packet.Addr{a4(2), a4(9)}, // 9 does not exist in truth
	)
	d := Diff(got, ref)
	if d.FalseVertices != 1 {
		t.Fatalf("false vertices: %+v", d)
	}
	if d.FalseEdges != 1 { // 1->9
		t.Fatalf("false edges: %+v", d)
	}
	if p := d.VertexPrecision(); p != 2.0/3 {
		t.Fatalf("vertex precision %v, want 2/3", p)
	}
}

func TestDiffHopMismatchIsMiss(t *testing.T) {
	t.Parallel()
	ref := diffGraph([]packet.Addr{a4(1)}, []packet.Addr{a4(2)})
	got := diffGraph([]packet.Addr{a4(2)}, []packet.Addr{a4(1)}) // right addrs, wrong hops
	d := Diff(got, ref)
	if d.MatchedVertices != 0 {
		t.Fatalf("hop-shifted vertices must not match: %+v", d)
	}
	if d.FalseVertices != 2 {
		t.Fatalf("hop-shifted vertices are false: %+v", d)
	}
}

func TestDiffStarsExcluded(t *testing.T) {
	t.Parallel()
	ref := diffGraph(
		[]packet.Addr{a4(1)},
		[]packet.Addr{StarAddr},
		[]packet.Addr{a4(3)},
	)
	got := diffGraph(
		[]packet.Addr{a4(1)},
		[]packet.Addr{StarAddr},
		[]packet.Addr{a4(3)},
	)
	d := Diff(got, ref)
	// The star and both its edges are unobservable: only 2 vertices and
	// no edges count.
	if d.TrueVertices != 2 || d.MatchedVertices != 2 {
		t.Fatalf("star vertex not excluded: %+v", d)
	}
	if d.TrueEdges != 0 {
		t.Fatalf("star edges not excluded: %+v", d)
	}
	if d.EdgeRecall() != 1 {
		t.Fatalf("empty edge set must score 1, got %v", d.EdgeRecall())
	}
}

func TestDiffAggregation(t *testing.T) {
	t.Parallel()
	ref := diffGraph([]packet.Addr{a4(1)}, []packet.Addr{a4(2)})
	var agg DiffStats
	agg.Add(Diff(ref, ref))
	agg.Add(Diff(New(), ref)) // empty discovery: all misses
	if agg.TrueVertices != 4 || agg.MatchedVertices != 2 {
		t.Fatalf("aggregate: %+v", agg)
	}
	if r := agg.VertexRecall(); r != 0.5 {
		t.Fatalf("aggregate recall %v, want 0.5", r)
	}
}
