package topo

import (
	"testing"
	"testing/quick"

	"mmlpt/internal/packet"
)

// a returns a test address.
func a(n int) packet.Addr { return packet.Addr(0x0a000000 + uint32(n)) }

// buildFig6Left builds the left-hand diamond of Fig 6: max length 4, max
// width 5, max width asymmetry 1.
//
//	hop0: d
//	hop1: 5 vertices (one with 2 successors at hop2, others 1 -> asym 1)
//	hop2: depends; we mirror the figure's spirit: 1-5-5-2-1 hops.
func buildFig6Left() *Graph {
	g := New()
	d := g.AddVertex(0, a(1))
	var h1 []VertexID
	for i := 0; i < 5; i++ {
		v := g.AddVertex(1, a(10+i))
		g.AddEdge(d, v)
		h1 = append(h1, v)
	}
	// hop2: 5 vertices; vertex h1[0] gets 2 successors, others 1 each and
	// one hop2 vertex shared... to keep widths 5-5 and asymmetry 1 we give
	// h1[0] two successors and h1[4] zero-successor sibling merge.
	var h2 []VertexID
	for i := 0; i < 5; i++ {
		h2 = append(h2, g.AddVertex(2, a(20+i)))
	}
	g.AddEdge(h1[0], h2[0])
	g.AddEdge(h1[0], h2[1])
	g.AddEdge(h1[1], h2[2])
	g.AddEdge(h1[2], h2[3])
	g.AddEdge(h1[3], h2[4])
	g.AddEdge(h1[4], h2[4])
	// hop3: 2 vertices.
	x := g.AddVertex(3, a(30))
	y := g.AddVertex(3, a(31))
	g.AddEdge(h2[0], x)
	g.AddEdge(h2[1], x)
	g.AddEdge(h2[2], x)
	g.AddEdge(h2[3], y)
	g.AddEdge(h2[4], y)
	// hop4: convergence.
	c := g.AddVertex(4, a(40))
	g.AddEdge(x, c)
	g.AddEdge(y, c)
	return g
}

func TestDiamondExtractionAndMetrics(t *testing.T) {
	g := buildFig6Left()
	ds := g.Diamonds()
	if len(ds) != 1 {
		t.Fatalf("diamonds = %d, want 1", len(ds))
	}
	d := ds[0]
	if d.DivHop != 0 || d.ConvHop != 4 {
		t.Fatalf("span %d..%d", d.DivHop, d.ConvHop)
	}
	m := d.ComputeMetrics()
	if m.MaxLength != 4 {
		t.Errorf("max length %d, want 4", m.MaxLength)
	}
	if m.MaxWidth != 5 {
		t.Errorf("max width %d, want 5", m.MaxWidth)
	}
	if m.MaxWidthAsymmetry != 1 {
		t.Errorf("max width asymmetry %d, want 1", m.MaxWidthAsymmetry)
	}
	if m.Uniform {
		t.Error("diamond with asymmetry 1 reported uniform")
	}
}

// buildMeshedRatio04 builds a diamond with 5 hop pairs of which 2 are
// meshed (the right-hand Fig 6 diamond's ratio of 0.4).
func buildMeshedRatio04() *Graph {
	g := New()
	d := g.AddVertex(0, a(1))
	// hop1: 2 vertices.
	u1, u2 := g.AddVertex(1, a(11)), g.AddVertex(1, a(12))
	g.AddEdge(d, u1)
	g.AddEdge(d, u2)
	// hop2: 2 vertices, fully meshed with hop1 (pair 1-2 meshed).
	v1, v2 := g.AddVertex(2, a(21)), g.AddVertex(2, a(22))
	g.AddEdge(u1, v1)
	g.AddEdge(u1, v2)
	g.AddEdge(u2, v1)
	g.AddEdge(u2, v2)
	// hop3: 2 vertices, one-to-one (unmeshed).
	w1, w2 := g.AddVertex(3, a(31)), g.AddVertex(3, a(32))
	g.AddEdge(v1, w1)
	g.AddEdge(v2, w2)
	// hop4: 2 vertices, fully meshed with hop3 (pair 4-5 meshed).
	x1, x2 := g.AddVertex(4, a(41)), g.AddVertex(4, a(42))
	g.AddEdge(w1, x1)
	g.AddEdge(w1, x2)
	g.AddEdge(w2, x1)
	g.AddEdge(w2, x2)
	// hop5: convergence.
	c := g.AddVertex(5, a(51))
	g.AddEdge(x1, c)
	g.AddEdge(x2, c)
	return g
}

func TestRatioMeshedHops(t *testing.T) {
	g := buildMeshedRatio04()
	ds := g.Diamonds()
	if len(ds) != 1 {
		t.Fatalf("diamonds = %d", len(ds))
	}
	d := ds[0]
	if !d.Meshed() {
		t.Fatal("diamond not meshed")
	}
	if got := d.RatioMeshedHops(); got != 0.4 {
		t.Fatalf("ratio of meshed hops = %.2f, want 0.4 (meshed pairs %v of %d)",
			got, d.MeshedHopPairs(), d.HopPairs())
	}
}

func TestMeshingThreeCases(t *testing.T) {
	// Case 1: equal widths, out-degree 2 somewhere -> meshed.
	g1 := New()
	d := g1.AddVertex(0, a(1))
	u1, u2 := g1.AddVertex(1, a(2)), g1.AddVertex(1, a(3))
	g1.AddEdge(d, u1)
	g1.AddEdge(d, u2)
	v1, v2 := g1.AddVertex(2, a(4)), g1.AddVertex(2, a(5))
	g1.AddEdge(u1, v1)
	g1.AddEdge(u1, v2)
	g1.AddEdge(u2, v1)
	if !g1.PairMeshed(1) {
		t.Error("case 1 (equal widths, out-degree 2) not meshed")
	}
	// Case 2: widening with an in-degree 2 -> meshed.
	g2 := New()
	d2 := g2.AddVertex(0, a(1))
	w1 := g2.AddVertex(1, a(2))
	g2.AddEdge(d2, w1)
	x1, x2 := g2.AddVertex(2, a(3)), g2.AddVertex(2, a(4))
	g2.AddEdge(w1, x1)
	g2.AddEdge(w1, x2)
	// widen 2 -> 3 with one shared target
	y1, y2, y3 := g2.AddVertex(3, a(5)), g2.AddVertex(3, a(6)), g2.AddVertex(3, a(7))
	g2.AddEdge(x1, y1)
	g2.AddEdge(x1, y2)
	g2.AddEdge(x2, y2)
	g2.AddEdge(x2, y3)
	if !g2.PairMeshed(2) {
		t.Error("case 2 (widening, in-degree 2) not meshed")
	}
	// Case 3: narrowing with out-degree 1 everywhere -> NOT meshed.
	g3 := New()
	d3 := g3.AddVertex(0, a(1))
	p1, p2, p3, p4 := g3.AddVertex(1, a(2)), g3.AddVertex(1, a(3)), g3.AddVertex(1, a(4)), g3.AddVertex(1, a(5))
	for _, p := range []VertexID{p1, p2, p3, p4} {
		g3.AddEdge(d3, p)
	}
	q1, q2 := g3.AddVertex(2, a(6)), g3.AddVertex(2, a(7))
	g3.AddEdge(p1, q1)
	g3.AddEdge(p2, q1)
	g3.AddEdge(p3, q2)
	g3.AddEdge(p4, q2)
	if g3.PairMeshed(1) {
		t.Error("case 3 (pure narrowing) wrongly meshed")
	}
	// Case 3b: narrowing with one out-degree 2 -> meshed.
	g3.AddEdge(p1, q2)
	if !g3.PairMeshed(1) {
		t.Error("case 3b (narrowing with out-degree 2) not meshed")
	}
}

func TestReachProbabilitiesUniformDiamond(t *testing.T) {
	g := New()
	d := g.AddVertex(0, a(1))
	var mid []VertexID
	for i := 0; i < 4; i++ {
		v := g.AddVertex(1, a(10+i))
		g.AddEdge(d, v)
		mid = append(mid, v)
	}
	c := g.AddVertex(2, a(20))
	for _, v := range mid {
		g.AddEdge(v, c)
	}
	dm := g.Diamonds()[0]
	probs := dm.ReachProbabilities()
	for _, v := range mid {
		if p := probs[v]; p < 0.2499 || p > 0.2501 {
			t.Fatalf("mid vertex prob %.4f, want 0.25", p)
		}
	}
	if p := probs[c]; p < 0.9999 || p > 1.0001 {
		t.Fatalf("convergence prob %.4f, want 1", p)
	}
	if dm.MaxProbabilityDifference() != 0 {
		t.Fatal("uniform diamond has nonzero probability difference")
	}
}

func TestReachProbabilitiesAsymmetric(t *testing.T) {
	g := New()
	d := g.AddVertex(0, a(1))
	u1, u2 := g.AddVertex(1, a(2)), g.AddVertex(1, a(3))
	g.AddEdge(d, u1)
	g.AddEdge(d, u2)
	// u1 fans to 3, u2 to 1: hop2 probabilities 1/6,1/6,1/6,1/2.
	var h2 []VertexID
	for i := 0; i < 3; i++ {
		v := g.AddVertex(2, a(10+i))
		g.AddEdge(u1, v)
		h2 = append(h2, v)
	}
	w := g.AddVertex(2, a(13))
	g.AddEdge(u2, w)
	c := g.AddVertex(3, a(20))
	for _, v := range append(h2, w) {
		g.AddEdge(v, c)
	}
	dm := g.Diamonds()[0]
	diff := dm.MaxProbabilityDifference()
	want := 0.5 - 1.0/6
	if diff < want-1e-9 || diff > want+1e-9 {
		t.Fatalf("max probability difference %.4f, want %.4f", diff, want)
	}
	if dm.MaxWidthAsymmetry() != 2 {
		t.Fatalf("asymmetry %d, want 2", dm.MaxWidthAsymmetry())
	}
}

// TestReachProbabilitySumInvariant: for any spread/converge layer
// construction, each hop's probabilities sum to 1 (probability mass is
// conserved through load balancing).
func TestReachProbabilitySumInvariant(t *testing.T) {
	f := func(widths []uint8) bool {
		g := New()
		prev := []VertexID{g.AddVertex(0, a(1))}
		next := 100
		for h, wRaw := range widths {
			w := int(wRaw)%5 + 1
			var layer []VertexID
			for i := 0; i < w; i++ {
				layer = append(layer, g.AddVertex(h+1, a(next)))
				next++
			}
			// Connect: each prev vertex to a contiguous block (always at
			// least one edge each; every layer vertex gets a predecessor).
			for i, u := range prev {
				g.AddEdge(u, layer[i*w/len(prev)])
			}
			for j, v := range layer {
				g.AddEdge(prev[j*len(prev)/w], v)
			}
			prev = layer
		}
		c := g.AddVertex(len(widths)+1, a(99))
		for _, u := range prev {
			g.AddEdge(u, c)
		}
		if len(widths) == 0 {
			return true
		}
		ds := g.Diamonds()
		if len(ds) == 0 {
			return true
		}
		probs := ds[0].ReachProbabilities()
		for h := ds[0].DivHop; h <= ds[0].ConvHop; h++ {
			var sum float64
			for _, v := range g.Hop(h) {
				sum += probs[v]
			}
			if sum < 0.999 || sum > 1.001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualAndCoverage(t *testing.T) {
	g1 := buildFig6Left()
	g2 := buildFig6Left()
	if !Equal(g1, g2) {
		t.Fatal("identical constructions not Equal")
	}
	v, e := SubgraphCoverage(g1, g2)
	if v != 1 || e != 1 {
		t.Fatalf("self coverage %v %v", v, e)
	}
	// Remove knowledge: a graph missing a vertex covers less.
	g3 := New()
	g3.AddVertex(0, a(1))
	v, e = SubgraphCoverage(g3, g1)
	if v >= 1 || e >= 1 {
		t.Fatalf("partial coverage %v %v", v, e)
	}
	if Equal(g3, g1) {
		t.Fatal("different graphs Equal")
	}
}

func TestStarsAreDistinctVertices(t *testing.T) {
	g := New()
	s1 := g.AddVertex(0, StarAddr)
	s2 := g.AddVertex(0, StarAddr)
	if s1 == s2 {
		t.Fatal("stars merged")
	}
	if g.Lookup(StarAddr) != None {
		t.Fatal("stars must not be indexed by address")
	}
}

func TestAddVertexDedupsPerHop(t *testing.T) {
	g := New()
	v1 := g.AddVertex(2, a(5))
	v2 := g.AddVertex(2, a(5))
	if v1 != v2 {
		t.Fatal("same addr same hop not deduplicated")
	}
	v3 := g.AddVertex(3, a(5))
	if v3 == v1 {
		t.Fatal("same addr different hop wrongly merged")
	}
}

func TestDiamondKeyDistinguishesStars(t *testing.T) {
	g := buildFig6Left()
	d := g.Diamonds()[0]
	k := d.Key()
	if k.Div != a(1) || k.Conv != a(40) {
		t.Fatalf("key %+v", k)
	}
	star := DiamondKey{Div: StarAddr, Conv: a(40)}
	if k == star {
		t.Fatal("star key equals responsive key")
	}
}

func TestDiamondsMultipleInOneTrace(t *testing.T) {
	g := New()
	v := g.AddVertex(0, a(1))
	u1, u2 := g.AddVertex(1, a(2)), g.AddVertex(1, a(3))
	g.AddEdge(v, u1)
	g.AddEdge(v, u2)
	m := g.AddVertex(2, a(4))
	g.AddEdge(u1, m)
	g.AddEdge(u2, m)
	// chain hop
	c := g.AddVertex(3, a(5))
	g.AddEdge(m, c)
	// second diamond
	w1, w2, w3 := g.AddVertex(4, a(6)), g.AddVertex(4, a(7)), g.AddVertex(4, a(8))
	g.AddEdge(c, w1)
	g.AddEdge(c, w2)
	g.AddEdge(c, w3)
	end := g.AddVertex(5, a(9))
	for _, w := range []VertexID{w1, w2, w3} {
		g.AddEdge(w, end)
	}
	ds := g.Diamonds()
	if len(ds) != 2 {
		t.Fatalf("found %d diamonds, want 2:\n%s", len(ds), g)
	}
	if ds[0].MaxWidth() != 2 || ds[1].MaxWidth() != 3 {
		t.Fatalf("widths %d %d", ds[0].MaxWidth(), ds[1].MaxWidth())
	}
}
