package topo

import "mmlpt/internal/packet"

// Ground-truth graph diff: the scoring primitive of the evaluation
// subsystem (internal/groundtruth). A discovered graph is compared
// against the reference (generator) graph by (address, hop) identity,
// yielding recall (how much of the truth was found) and precision (how
// much of the discovery is true) for vertices, edges and diamonds.
//
// Semantics (documented in DESIGN.md "Ground-truth diff semantics"):
//
//   - A reference vertex matches if the discovered graph holds the same
//     address at the same hop. Star (unresponsive) reference vertices
//     are excluded from the totals: they emit nothing, so no tracer can
//     confirm them by address.
//   - A reference edge counts only if both endpoints are non-star; it
//     matches if the discovered graph has the same address pair at the
//     same hops.
//   - Discovered stars, and discovered edges with a star endpoint, are
//     ignored on the precision side: a star is the absence of evidence,
//     not a claim about an address.
//   - A reference diamond matches if the discovered graph contains a
//     diamond with the same (divergence, convergence) address key.
//     Reference diamonds with a star endpoint are excluded.

// DiffStats quantifies a discovered graph against a reference graph.
// All counts follow the semantics above.
type DiffStats struct {
	// Reference-side (recall) counts.
	TrueVertices, MatchedVertices int
	TrueEdges, MatchedEdges       int
	TrueDiamonds, MatchedDiamonds int
	// Discovery-side (precision) counts. False entries are discovered
	// non-star vertices/edges absent from the reference: the "false
	// links" a violated MDA assumption (e.g. per-packet balancing)
	// manufactures.
	GotVertices, FalseVertices int
	GotEdges, FalseEdges       int
}

// ratio returns hit/total, defining an empty total as perfect (1): a
// reference with no edges cannot be missed, a discovery with no edges
// cannot be wrong.
func ratio(hit, total int) float64 {
	if total == 0 {
		return 1
	}
	return float64(hit) / float64(total)
}

// VertexRecall is the fraction of reference vertices discovered.
func (d DiffStats) VertexRecall() float64 { return ratio(d.MatchedVertices, d.TrueVertices) }

// EdgeRecall is the fraction of reference edges discovered.
func (d DiffStats) EdgeRecall() float64 { return ratio(d.MatchedEdges, d.TrueEdges) }

// DiamondRecall is the fraction of reference diamonds discovered.
func (d DiffStats) DiamondRecall() float64 { return ratio(d.MatchedDiamonds, d.TrueDiamonds) }

// VertexPrecision is the fraction of discovered vertices that are true.
func (d DiffStats) VertexPrecision() float64 {
	return ratio(d.GotVertices-d.FalseVertices, d.GotVertices)
}

// EdgePrecision is the fraction of discovered edges that are true.
func (d DiffStats) EdgePrecision() float64 { return ratio(d.GotEdges-d.FalseEdges, d.GotEdges) }

// Add accumulates another diff into d: the aggregation a multi-pair
// scenario uses (ratios then weight every pair by its size).
func (d *DiffStats) Add(o DiffStats) {
	d.TrueVertices += o.TrueVertices
	d.MatchedVertices += o.MatchedVertices
	d.TrueEdges += o.TrueEdges
	d.MatchedEdges += o.MatchedEdges
	d.TrueDiamonds += o.TrueDiamonds
	d.MatchedDiamonds += o.MatchedDiamonds
	d.GotVertices += o.GotVertices
	d.FalseVertices += o.FalseVertices
	d.GotEdges += o.GotEdges
	d.FalseEdges += o.FalseEdges
}

// addrHop identifies a vertex by observable identity.
type addrHop struct {
	addr packet.Addr
	hop  int
}

// addrEdge identifies an edge by the observable identities of its
// endpoints.
type addrEdge struct {
	from, to addrHop
}

// Diff scores the discovered graph got against the reference graph ref.
func Diff(got, ref *Graph) DiffStats {
	var d DiffStats

	gotV := make(map[addrHop]bool, len(got.Vertices))
	gotE := make(map[addrEdge]bool, got.NumEdges())
	collect(got, gotV, gotE)
	refV := make(map[addrHop]bool, len(ref.Vertices))
	refE := make(map[addrEdge]bool, ref.NumEdges())
	collect(ref, refV, refE)

	d.TrueVertices = len(refV)
	d.TrueEdges = len(refE)
	for k := range refV {
		if gotV[k] {
			d.MatchedVertices++
		}
	}
	for k := range refE {
		if gotE[k] {
			d.MatchedEdges++
		}
	}
	d.GotVertices = len(gotV)
	d.GotEdges = len(gotE)
	for k := range gotV {
		if !refV[k] {
			d.FalseVertices++
		}
	}
	for k := range gotE {
		if !refE[k] {
			d.FalseEdges++
		}
	}

	gotD := make(map[DiamondKey]bool)
	for _, dd := range got.Diamonds() {
		gotD[dd.Key()] = true
	}
	for _, dd := range ref.Diamonds() {
		if dd.DivAddr == StarAddr || dd.ConvAddr == StarAddr {
			continue
		}
		d.TrueDiamonds++
		if gotD[dd.Key()] {
			d.MatchedDiamonds++
		}
	}
	return d
}

// collect indexes a graph's non-star vertices and star-free edges by
// observable identity.
func collect(g *Graph, vs map[addrHop]bool, es map[addrEdge]bool) {
	for i := range g.Vertices {
		v := &g.Vertices[i]
		if v.Addr == StarAddr {
			continue
		}
		vs[addrHop{v.Addr, v.Hop}] = true
		for _, w := range g.Succ(VertexID(i)) {
			wv := &g.Vertices[w]
			if wv.Addr == StarAddr {
				continue
			}
			es[addrEdge{
				from: addrHop{v.Addr, v.Hop},
				to:   addrHop{wv.Addr, wv.Hop},
			}] = true
		}
	}
}
