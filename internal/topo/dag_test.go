package topo

import "testing"

func TestDAGCore(t *testing.T) {
	t.Parallel()
	var d DAG
	a, b, c := d.AddVertex(), d.AddVertex(), d.AddVertex()
	if d.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d, want 3", d.NumVertices())
	}
	if !d.AddEdge(a, b) || !d.AddEdge(a, c) || !d.AddEdge(b, c) {
		t.Fatal("fresh edges must report added")
	}
	if d.AddEdge(a, b) {
		t.Fatal("duplicate edge must not report added")
	}
	if d.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", d.NumEdges())
	}
	if !d.HasEdge(a, b) || d.HasEdge(b, a) {
		t.Fatal("HasEdge is directional")
	}
	if got := d.Succ(a); len(got) != 2 || got[0] != b || got[1] != c {
		t.Fatalf("Succ(a) = %v, want [b c] in insertion order", got)
	}
	if got := d.Pred(c); len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("Pred(c) = %v, want [a b] in insertion order", got)
	}
	if d.OutDegree(a) != 2 || d.InDegree(a) != 0 || d.InDegree(c) != 2 {
		t.Fatal("degree bookkeeping wrong")
	}
}

// TestGraphDelegatesToDAG pins that the hop-indexed Graph and its DAG
// core agree on adjacency: the Graph view is a keying layer, not a
// second edge store.
func TestGraphDelegatesToDAG(t *testing.T) {
	t.Parallel()
	g := New()
	u := g.AddVertex(0, 100)
	w1 := g.AddVertex(1, 101)
	w2 := g.AddVertex(1, 102)
	g.AddEdge(u, w1)
	g.AddEdge(u, w2)
	g.AddEdge(u, w1) // duplicate, ignored
	if g.NumEdges() != 2 || g.OutDegree(u) != 2 || g.InDegree(w1) != 1 {
		t.Fatalf("graph adjacency wrong: edges=%d out=%d in=%d",
			g.NumEdges(), g.OutDegree(u), g.InDegree(w1))
	}
	if len(g.Vertices) != g.dag.NumVertices() {
		t.Fatalf("vertex tables out of sync: %d vs %d", len(g.Vertices), g.dag.NumVertices())
	}
}
