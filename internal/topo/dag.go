package topo

// DAG is the adjacency core shared by the hop-indexed per-trace Graph
// and the address-keyed cross-trace stores built on top of it
// (internal/atlas): a growable table of anonymous vertex slots with
// deduplicated, insertion-ordered adjacency lists. A DAG knows nothing
// about addresses or hops — callers attach their own keying (Graph keys
// vertices by (address, hop); the atlas's MultiGraph keys them by
// address alone, with hop positions demoted to per-source annotations).
type DAG struct {
	succ, pred [][]VertexID
}

// AddVertex appends one vertex slot and returns its ID.
func (d *DAG) AddVertex() VertexID {
	d.succ = append(d.succ, nil)
	d.pred = append(d.pred, nil)
	return VertexID(len(d.succ) - 1)
}

// NumVertices returns the number of vertex slots.
func (d *DAG) NumVertices() int { return len(d.succ) }

// AddEdge records the edge u→w unless it is already present, reporting
// whether it was added. Successor and predecessor lists keep the order
// edges were first recorded in, which is what keeps graph construction
// deterministic for a deterministic caller.
func (d *DAG) AddEdge(u, w VertexID) bool {
	for _, s := range d.succ[u] {
		if s == w {
			return false
		}
	}
	d.succ[u] = append(d.succ[u], w)
	d.pred[w] = append(d.pred[w], u)
	return true
}

// HasEdge reports whether u→w is present.
func (d *DAG) HasEdge(u, w VertexID) bool {
	for _, s := range d.succ[u] {
		if s == w {
			return true
		}
	}
	return false
}

// Succ returns the successor vertex IDs of v. The slice is owned by the
// DAG; callers must not modify it.
func (d *DAG) Succ(v VertexID) []VertexID { return d.succ[v] }

// Pred returns the predecessor vertex IDs of v. The slice is owned by
// the DAG; callers must not modify it.
func (d *DAG) Pred(v VertexID) []VertexID { return d.pred[v] }

// OutDegree returns the number of successors of v.
func (d *DAG) OutDegree(v VertexID) int { return len(d.succ[v]) }

// InDegree returns the number of predecessors of v.
func (d *DAG) InDegree(v VertexID) int { return len(d.pred[v]) }

// NumEdges returns the total number of edges.
func (d *DAG) NumEdges() int {
	n := 0
	for _, s := range d.succ {
		n += len(s)
	}
	return n
}
