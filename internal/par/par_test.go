package par

import (
	"sync/atomic"
	"testing"
)

func TestDoCoversAllIndices(t *testing.T) {
	t.Parallel()
	var hits [100]int32
	Do(len(hits), 7, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
}

// TestOrderedEmitsInIndexOrder: regardless of worker interleaving, the
// collector must observe every result exactly once, in index order.
func TestOrderedEmitsInIndexOrder(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{-1, 0, 1, 2, 8, 64} {
		const n = 200
		var got []int
		Ordered(n, workers, func(i int) int { return i * i }, func(i, v int) {
			if v != i*i {
				t.Fatalf("workers=%d: emit(%d) got value %d", workers, i, v)
			}
			got = append(got, i)
		})
		if len(got) != n {
			t.Fatalf("workers=%d: emitted %d of %d results", workers, len(got), n)
		}
		for i, g := range got {
			if g != i {
				t.Fatalf("workers=%d: emission %d was index %d", workers, i, g)
			}
		}
	}
}

// TestOrderedWorkersRunAhead: workers must not be gated on the collector
// consuming earlier indices — index 0 finishing last still lets every
// other index complete its work first.
func TestOrderedWorkersRunAhead(t *testing.T) {
	t.Parallel()
	const n = 16
	release := make(chan struct{})
	var completed atomic.Int32
	Ordered(n, n, func(i int) int {
		if i == 0 {
			// Index 0 waits until every other worker has finished.
			<-release
			return 0
		}
		if completed.Add(1) == n-1 {
			close(release)
		}
		return i
	}, func(i, v int) {
		if i != v {
			t.Fatalf("emit(%d) = %d", i, v)
		}
	})
}

func TestOrderedZeroAndNegative(t *testing.T) {
	t.Parallel()
	called := false
	Ordered(0, 4, func(i int) int { return i }, func(i, v int) { called = true })
	Ordered(-3, 4, func(i int) int { return i }, func(i, v int) { called = true })
	if called {
		t.Fatal("emit called for empty input")
	}
}
