// Package par provides the one concurrency primitive the probing engine
// needs: an order-preserving indexed worker pool. Callers partition work
// by index (one trace per pair, one result slot per prober), so the
// output of a parallel run is identical to a serial walk by
// construction.
package par

import (
	"runtime"
	"sync"
)

// Do runs fn(i) for every i in [0, n) using the given number of workers.
// Zero or negative workers selects GOMAXPROCS; one runs serially on the
// calling goroutine. fn must be safe to call concurrently for distinct
// indices.
func Do(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	feed := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		feed <- i
	}
	close(feed)
	wg.Wait()
}
