// Package par provides the concurrency primitives the probing engine
// needs: an order-preserving indexed worker pool (Do) and its streaming
// variant (Ordered), which hands each result to a collector in index
// order the moment its prefix is complete. Callers partition work by
// index (one trace per pair, one result slot per prober), so the output
// of a parallel run is identical to a serial walk by construction.
//
// In the layering, par is a thin leaf utility with no dependencies
// inside the module; the survey engine and the atlas merge build their
// parallelism on it rather than hand-rolling goroutine pools.
package par

import (
	"runtime"
	"sync"
)

// Do runs fn(i) for every i in [0, n) using the given number of workers.
// Zero or negative workers selects GOMAXPROCS; one runs serially on the
// calling goroutine. fn must be safe to call concurrently for distinct
// indices.
func Do(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	feed := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		feed <- i
	}
	close(feed)
	wg.Wait()
}

// Ordered runs work(i) for every i in [0, n) on a Do worker pool and
// calls emit(i, v) for each result strictly in index order, on the
// calling goroutine, as soon as all earlier indices have been emitted.
// Workers run ahead of the collector: a slow index buffers later results
// until it completes. With one worker the whole pipeline degenerates to
// a serial work/emit loop. emit needs no synchronization of its own.
func Ordered[T any](n, workers int, work func(i int) T, emit func(i int, v T)) {
	if n <= 0 {
		return
	}
	// Normalize exactly as Do does, and before sizing the results
	// channel: the default workers=0 must buffer GOMAXPROCS results (an
	// unbuffered channel would serialize every worker-to-collector
	// handoff behind the emit path), and negative values select
	// GOMAXPROCS rather than panicking in make(chan).
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			emit(i, work(i))
		}
		return
	}
	type item struct {
		i int
		v T
	}
	results := make(chan item, workers)
	go func() {
		Do(n, workers, func(i int) {
			results <- item{i, work(i)}
		})
		close(results)
	}()
	pending := make(map[int]T)
	next := 0
	for it := range results {
		pending[it.i] = it.v
		for {
			v, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			emit(next, v)
			next++
		}
	}
}
