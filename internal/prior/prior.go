// Package prior extracts per-(src, dst) expected topology from a
// cross-trace atlas snapshot, for seeding re-traces: hop widths and
// per-hop vertex sets, the links recorded between adjacent hops, and —
// when captured in-process — the flow identifiers previously observed to
// land on each vertex. Priors are read through the atlas serving layer
// (internal/atlas/serve), so they come from the same indexed v2 snapshot
// format atlasd serves, and a PairPrior satisfies mda.TracePrior so the
// MDA-Lite can consume it directly.
//
// The per-pair reconstruction intersects each node's (pair, hop)
// provenance with the atlas's merged successor lists: a link u→w is
// attributed to a pair when u and w sit at adjacent hops of that pair
// and some trace recorded the link. Where pairs share addresses (shared
// trunks from one vantage point) this can over-attribute a link, but a
// prior is a hypothesis, not ground truth: the confirmation pass
// corroborates every vertex against live replies and any mismatch falls
// back to full discovery.
package prior

import (
	"hash/fnv"
	"sort"

	"mmlpt/internal/atlas/serve"
	"mmlpt/internal/mda"
	"mmlpt/internal/packet"
	"mmlpt/internal/topo"
	"mmlpt/internal/traceio"
)

// PairPrior is the expected topology of one (src, dst) pair. It
// implements mda.TracePrior; the zero value is unusable — build one via
// FromService, FromGraph, or New.
type PairPrior struct {
	Src, Dst packet.Addr

	// hops[h] is the sorted expected vertex set at hop h; nil marks a hop
	// the earlier trace did not cover (e.g. it saw only stars there).
	hops [][]packet.Addr
	// edges holds the recorded links between adjacent covered hops.
	edges map[[2]packet.Addr]bool
	// hints maps (hop, addr) to the flows previously seen landing there.
	hints map[hintKey][]uint16
}

type hintKey struct {
	hop  int
	addr packet.Addr
}

// New returns an empty prior for the pair, covering no hops.
func New(src, dst packet.Addr) *PairPrior {
	return &PairPrior{
		Src: src, Dst: dst,
		edges: make(map[[2]packet.Addr]bool),
		hints: make(map[hintKey][]uint16),
	}
}

// AddHopAddr records addr as expected at hop h. Stars are ignored: a
// silent hop carries no confirmable expectation.
func (pp *PairPrior) AddHopAddr(h int, addr packet.Addr) {
	if addr == topo.StarAddr || h < 0 {
		return
	}
	for len(pp.hops) <= h {
		pp.hops = append(pp.hops, nil)
	}
	for _, a := range pp.hops[h] {
		if a == addr {
			return
		}
	}
	pp.hops[h] = append(pp.hops[h], addr)
}

// AddEdge records an expected link u→w between adjacent hops.
func (pp *PairPrior) AddEdge(u, w packet.Addr) {
	if u == topo.StarAddr || w == topo.StarAddr {
		return
	}
	pp.edges[[2]packet.Addr{u, w}] = true
}

// AddLanding records that flow f was observed to land on addr at hop h.
// Landings are flow hints only: they steer the confirmation pass toward
// flows likely to cover the expected set quickly, and stale ones cost at
// most their probes.
func (pp *PairPrior) AddLanding(h int, f uint16, addr packet.Addr) {
	if addr == topo.StarAddr || h < 0 {
		return
	}
	k := hintKey{hop: h, addr: addr}
	for _, x := range pp.hints[k] {
		if x == f {
			return
		}
	}
	pp.hints[k] = append(pp.hints[k], f)
}

// normalize sorts every hop's vertex set and every hint list, making the
// prior's iteration order — and therefore a seeded trace's probe order —
// independent of construction order.
func (pp *PairPrior) normalize() {
	for _, hs := range pp.hops {
		sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	}
	for _, fs := range pp.hints {
		sort.Slice(fs, func(i, j int) bool { return fs[i] < fs[j] })
	}
}

// NumHops returns the number of hops the prior extends over.
func (pp *PairPrior) NumHops() int { return len(pp.hops) }

// HopAddrs returns the expected addresses at hop h in sorted order, or
// ok=false when the prior does not cover hop h.
func (pp *PairPrior) HopAddrs(h int) ([]packet.Addr, bool) {
	if h < 0 || h >= len(pp.hops) || len(pp.hops[h]) == 0 {
		return nil, false
	}
	return pp.hops[h], true
}

// HasEdge reports whether the prior recorded a link u→w.
func (pp *PairPrior) HasEdge(u, w packet.Addr) bool {
	return pp.edges[[2]packet.Addr{u, w}]
}

// FlowHints returns the flows previously observed to land on addr at hop
// h, ascending, or nil when none were captured.
func (pp *PairPrior) FlowHints(h int, addr packet.Addr) []uint16 {
	return pp.hints[hintKey{hop: h, addr: addr}]
}

// Width returns the expected width of hop h (0 when uncovered).
func (pp *PairPrior) Width(h int) int {
	if h < 0 || h >= len(pp.hops) {
		return 0
	}
	return len(pp.hops[h])
}

// CaptureLandings copies the responsive flow→address observations of a
// completed session into the prior as flow hints. This is only possible
// in-process (snapshots do not record flow identifiers), so it serves
// long-running re-survey loops that keep their priors live.
func (pp *PairPrior) CaptureLandings(s *mda.Session) {
	for h := 0; h < len(pp.hops); h++ {
		for _, l := range s.HopLandings(h) {
			pp.AddLanding(h, l.Flow, l.Addr)
		}
	}
}

// FromGraph builds a pair's prior directly from an earlier trace's
// result graph: each non-star vertex becomes an expectation at its hop,
// each edge a recorded link.
func FromGraph(src, dst packet.Addr, g *topo.Graph) *PairPrior {
	pp := New(src, dst)
	for h := 0; h < g.NumHops(); h++ {
		for _, v := range g.Hop(h) {
			pp.AddHopAddr(h, g.V(v).Addr)
		}
	}
	for h := 0; h+1 < g.NumHops(); h++ {
		for _, v := range g.Hop(h) {
			ua := g.V(v).Addr
			for _, w := range g.Succ(v) {
				pp.AddEdge(ua, g.V(w).Addr)
			}
		}
	}
	pp.normalize()
	return pp
}

// Index holds the priors of every pair in a snapshot, keyed by (src,
// dst). It is self-contained: the serving handle used to build it can be
// closed afterwards.
type Index struct {
	pairs map[[2]packet.Addr]*PairPrior
}

// Lookup returns the pair's prior, or nil when the snapshot never
// surveyed it.
func (ix *Index) Lookup(src, dst packet.Addr) *PairPrior {
	if ix == nil {
		return nil
	}
	return ix.pairs[[2]packet.Addr{src, dst}]
}

// Len returns the number of pairs indexed.
func (ix *Index) Len() int {
	if ix == nil {
		return 0
	}
	return len(ix.pairs)
}

// Fingerprint returns a deterministic digest of the index's full content
// (pairs, hop sets, edges, hints). Survey option hashes include it so a
// checkpointed run refuses to resume under a different prior.
func (ix *Index) Fingerprint() uint64 {
	if ix == nil {
		return 0
	}
	h := fnv.New64a()
	u32 := func(x uint32) {
		h.Write([]byte{byte(x >> 24), byte(x >> 16), byte(x >> 8), byte(x)})
	}
	keys := make([][2]packet.Addr, 0, len(ix.pairs))
	for k := range ix.pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		pp := ix.pairs[k]
		u32(uint32(pp.Src))
		u32(uint32(pp.Dst))
		u32(uint32(len(pp.hops)))
		for hi, hs := range pp.hops {
			u32(uint32(hi))
			for _, a := range hs {
				u32(uint32(a))
				// Edges and hints walk off the sorted hop sets so the
				// digest never ranges over a map.
				if hi+1 < len(pp.hops) {
					for _, w := range pp.hops[hi+1] {
						if pp.HasEdge(a, w) {
							u32(uint32(w))
						}
					}
				}
				for _, f := range pp.FlowHints(hi, a) {
					u32(uint32(f) | 1<<16)
				}
			}
		}
	}
	return h.Sum64()
}

// add registers pp under its pair key.
func (ix *Index) add(pp *PairPrior) {
	if ix.pairs == nil {
		ix.pairs = make(map[[2]packet.Addr]*PairPrior)
	}
	ix.pairs[[2]packet.Addr{pp.Src, pp.Dst}] = pp
}

// NewIndex returns an index over the given priors (for in-process
// construction; snapshots go through FromService).
func NewIndex(pps ...*PairPrior) *Index {
	ix := &Index{}
	for _, pp := range pps {
		pp.normalize()
		ix.add(pp)
	}
	return ix
}

// FromService extracts every pair's prior from the snapshot behind an
// open serving handle. Per-hop vertex sets come from the provenance
// section ((pair, hop) observations); links come from intersecting the
// merged successor lists with adjacent hop sets. The returned index
// holds no reference to svc.
func FromService(svc *serve.Service) (*Index, error) {
	atlasPairs, err := svc.Pairs()
	if err != nil {
		return nil, err
	}
	byIndex := make(map[int]*PairPrior, len(atlasPairs))
	ix := &Index{}
	for _, ap := range atlasPairs {
		src, err := packet.ParseAddr(ap.Src)
		if err != nil {
			return nil, err
		}
		dst, err := packet.ParseAddr(ap.Dst)
		if err != nil {
			return nil, err
		}
		pp := New(src, dst)
		byIndex[ap.Pair] = pp
		ix.add(pp)
	}

	// One pass over the node section gathers both the hop placements and
	// the global successor sets.
	succ := make(map[packet.Addr][]packet.Addr)
	err = svc.ForEachNode(func(n *traceio.AtlasNodeV2) error {
		addr, err := packet.ParseAddr(n.Addr)
		if err != nil {
			return err
		}
		for _, obs := range n.Seen {
			if pp := byIndex[obs[0]]; pp != nil {
				pp.AddHopAddr(obs[1], addr)
			}
		}
		for _, sa := range n.Succ {
			w, err := packet.ParseAddr(sa)
			if err != nil {
				return err
			}
			succ[addr] = append(succ[addr], w)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	succSet := make(map[[2]packet.Addr]bool)
	for u, ws := range succ {
		for _, w := range ws {
			succSet[[2]packet.Addr{u, w}] = true
		}
	}
	for _, pp := range byIndex {
		pp.normalize()
		for h := 0; h+1 < len(pp.hops); h++ {
			for _, u := range pp.hops[h] {
				for _, w := range pp.hops[h+1] {
					if succSet[[2]packet.Addr{u, w}] {
						pp.AddEdge(u, w)
					}
				}
			}
		}
	}
	return ix, nil
}
