package prior

import (
	"path/filepath"
	"testing"

	"mmlpt/internal/atlas"
	"mmlpt/internal/atlas/serve"
	"mmlpt/internal/mda"
	"mmlpt/internal/packet"
	"mmlpt/internal/topo"
	"mmlpt/internal/traceio"
)

// twoPairAtlas builds a snapshot with two address-disjoint pairs: pair 0
// a 1-2-1 diamond, pair 1 a three-hop chain.
func twoPairAtlas(t *testing.T) (string, [2][2]packet.Addr, *topo.Graph) {
	t.Helper()
	g0 := topo.New()
	a := g0.AddVertex(0, packet.AddrFrom4(10, 0, 0, 1))
	b1 := g0.AddVertex(1, packet.AddrFrom4(10, 0, 0, 2))
	b2 := g0.AddVertex(1, packet.AddrFrom4(10, 0, 0, 3))
	c := g0.AddVertex(2, packet.AddrFrom4(203, 0, 113, 1))
	g0.AddEdge(a, b1)
	g0.AddEdge(a, b2)
	g0.AddEdge(b1, c)
	g0.AddEdge(b2, c)

	g1 := topo.New()
	x := g1.AddVertex(0, packet.AddrFrom4(10, 0, 1, 1))
	y := g1.AddVertex(1, packet.AddrFrom4(10, 0, 1, 2))
	z := g1.AddVertex(2, packet.AddrFrom4(203, 0, 113, 2))
	g1.AddEdge(x, y)
	g1.AddEdge(y, z)

	pairs := [2][2]packet.Addr{
		{packet.AddrFrom4(192, 0, 2, 1), packet.AddrFrom4(203, 0, 113, 1)},
		{packet.AddrFrom4(192, 0, 2, 2), packet.AddrFrom4(203, 0, 113, 2)},
	}
	al := atlas.New(atlas.Options{})
	for i, g := range []*topo.Graph{g0, g1} {
		vs, es := traceio.EncodeGraph(g)
		rec := &traceio.SurveyRecord{
			PairIndex: i,
			Trace: traceio.JSONTrace{
				Src: pairs[i][0].String(), Dst: pairs[i][1].String(),
				Algorithm: "mda-lite", Vertices: vs, Edges: es,
			},
		}
		if err := al.AddRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "prior.atlas")
	if err := traceio.WriteAtlasFile(path, al.Snapshot()); err != nil {
		t.Fatal(err)
	}
	return path, pairs, g0
}

func TestFromServiceReconstructsPerPairTopology(t *testing.T) {
	path, pairs, g0 := twoPairAtlas(t)
	svc, err := serve.Open(path, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := FromService(svc)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 2 {
		t.Fatalf("indexed %d pairs, want 2", ix.Len())
	}
	pp := ix.Lookup(pairs[0][0], pairs[0][1])
	if pp == nil {
		t.Fatal("pair 0 missing from index")
	}
	if ix.Lookup(pairs[0][0], pairs[1][1]) != nil {
		t.Fatal("lookup of an unsurveyed pair must return nil")
	}
	if pp.NumHops() != 3 {
		t.Fatalf("pair 0 covers %d hops, want 3", pp.NumHops())
	}
	if got := pp.Width(1); got != 2 {
		t.Fatalf("pair 0 hop 1 width %d, want 2", got)
	}
	hop1, ok := pp.HopAddrs(1)
	if !ok || hop1[0] != packet.AddrFrom4(10, 0, 0, 2) || hop1[1] != packet.AddrFrom4(10, 0, 0, 3) {
		t.Fatalf("pair 0 hop 1 = %v (ok=%t), want sorted [10.0.0.2 10.0.0.3]", hop1, ok)
	}
	// Every edge of the source graph must be recorded; the cross pair
	// (10.0.0.2 → 10.0.1.2) must not.
	for h := 0; h+1 < g0.NumHops(); h++ {
		for _, v := range g0.Hop(h) {
			for _, w := range g0.Succ(v) {
				if !pp.HasEdge(g0.V(v).Addr, g0.V(w).Addr) {
					t.Fatalf("edge %s->%s missing from prior", g0.V(v).Addr, g0.V(w).Addr)
				}
			}
		}
	}
	if pp.HasEdge(packet.AddrFrom4(10, 0, 0, 2), packet.AddrFrom4(10, 0, 1, 2)) {
		t.Fatal("prior attributed an edge from another pair")
	}

	// A PairPrior satisfies the mda hook interface.
	var _ mda.TracePrior = pp
}

func TestFingerprintDeterministicAndContentSensitive(t *testing.T) {
	path, pairs, _ := twoPairAtlas(t)
	build := func() *Index {
		svc, err := serve.Open(path, serve.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		ix, err := FromService(svc)
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	a, b := build(), build()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("fingerprints differ across identical builds: %x vs %x", a.Fingerprint(), b.Fingerprint())
	}
	if a.Fingerprint() == 0 {
		t.Fatal("fingerprint of a non-empty index is 0")
	}
	// Content change must move the digest.
	pp := b.Lookup(pairs[0][0], pairs[0][1])
	pp.AddHopAddr(3, packet.AddrFrom4(10, 9, 9, 9))
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("fingerprint unchanged after adding a hop expectation")
	}
	var empty *Index
	if empty.Fingerprint() != 0 || empty.Lookup(pairs[0][0], pairs[0][1]) != nil || empty.Len() != 0 {
		t.Fatal("nil index must fingerprint to 0 and look up to nil")
	}
}

func TestFlowHintCaptureOrderIndependent(t *testing.T) {
	pp := New(packet.AddrFrom4(192, 0, 2, 1), packet.AddrFrom4(203, 0, 113, 1))
	addr := packet.AddrFrom4(10, 0, 0, 2)
	pp.AddHopAddr(1, addr)
	pp.AddLanding(1, 300, addr)
	pp.AddLanding(1, 100, addr)
	pp.AddLanding(1, 300, addr) // duplicate
	pp.normalize()
	fs := pp.FlowHints(1, addr)
	if len(fs) != 2 || fs[0] != 100 || fs[1] != 300 {
		t.Fatalf("hints = %v, want [100 300]", fs)
	}
	if pp.FlowHints(0, addr) != nil {
		t.Fatal("hints for an unrecorded hop must be nil")
	}
}
