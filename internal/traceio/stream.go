package traceio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Streaming survey records.
//
// A SurveyRecord is the unit a streaming survey run emits the moment one
// pair finishes tracing: the archival JSONTrace plus the survey-specific
// measurements (pair index, per-diamond metrics, Eq. (1) miss
// probabilities) that the in-memory aggregate is built from. The record
// is lossless with respect to record-level aggregation: replaying a
// JSONL file of SurveyRecords rebuilds the same aggregate a live run
// produces, which is what makes checkpoint/resume exact.

// SurveyDiamond is one diamond encounter with its survey metrics.
type SurveyDiamond struct {
	Div         string  `json:"div"`
	Conv        string  `json:"conv"`
	MaxLength   int     `json:"max_length"`
	MaxWidth    int     `json:"max_width"`
	Asymmetry   int     `json:"max_width_asymmetry"`
	Meshed      bool    `json:"meshed"`
	MeshedRatio float64 `json:"ratio_meshed_hops"`
	Uniform     bool    `json:"uniform"`
	MaxProbDiff float64 `json:"max_prob_diff"`
	// MeshMissProbs holds, per meshed hop pair, the Eq. (1) probability
	// that the MDA-Lite misses the meshing at the surveyed phi.
	MeshMissProbs []float64 `json:"mesh_miss_probs,omitempty"`
}

// SurveyRecord is the streamed result of tracing one survey pair.
type SurveyRecord struct {
	PairIndex int  `json:"pair_index"`
	HasLB     bool `json:"has_lb"`
	// Trace is the archival per-trace record (topology, probes, routers).
	Trace JSONTrace `json:"trace"`
	// Diamonds carries the survey metrics per diamond encounter, in hop
	// order, mirroring the in-memory DiamondRecord list.
	Diamonds []SurveyDiamond `json:"diamonds,omitempty"`
	// PriorHops counts the hops confirmed from an atlas prior; PriorStale
	// marks a trace whose prior mismatched the live route and was
	// abandoned. Both are zero-valued (and omitted) for unseeded runs, so
	// pre-prior record files re-encode byte-identically.
	PriorHops  int  `json:"prior_hops,omitempty"`
	PriorStale bool `json:"prior_stale,omitempty"`
}

// WriteJSONL appends the record as one JSON line.
func (sr *SurveyRecord) WriteJSONL(w io.Writer) error {
	return json.NewEncoder(w).Encode(sr)
}

// ReadSurveyRecords decodes one SurveyRecord per line until EOF.
func ReadSurveyRecords(r io.Reader) ([]*SurveyRecord, error) {
	var out []*SurveyRecord
	err := DecodeSurveyRecords(r, func(sr *SurveyRecord) error {
		out = append(out, sr)
		return nil
	})
	return out, err
}

// DecodeSurveyRecords streams records to fn until EOF or the first
// error. fn errors abort the scan and are returned verbatim.
func DecodeSurveyRecords(r io.Reader, fn func(*SurveyRecord) error) error {
	dec := json.NewDecoder(r)
	for {
		sr := new(SurveyRecord)
		if err := dec.Decode(sr); err == io.EOF {
			return nil
		} else if err != nil {
			return err
		}
		if err := fn(sr); err != nil {
			return err
		}
	}
}

// ValidateJSONLPrefix checks, without modifying the file, that the
// first off bytes of path decode as exactly want complete JSON values —
// the consistency check a resume must run BEFORE truncating a record
// log to a checkpoint's offset. It catches a checkpoint paired with the
// wrong file (or one written without a record log at all) while the
// file is still intact.
func ValidateJSONLPrefix(path string, off int64, want int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if st.Size() < off {
		return fmt.Errorf("traceio: %s is %d bytes, shorter than checkpointed offset %d", path, st.Size(), off)
	}
	dec := json.NewDecoder(io.LimitReader(f, off))
	n := 0
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("traceio: %s: record %d within checkpointed prefix is corrupt: %v", path, n, err)
		}
		n++
	}
	if n != want {
		return fmt.Errorf("traceio: %s holds %d records within the checkpointed prefix, checkpoint says %d", path, n, want)
	}
	return nil
}

// JSONLWriter appends JSONL records to a file while tracking the durable
// byte offset, so a checkpoint can later name a prefix of the file that
// is known to be fsynced and complete. The write path is buffered;
// Sync flushes the buffer and fsyncs, and must be called before the
// offset is persisted anywhere.
type JSONLWriter struct {
	path string
	f    *os.File
	w    *bufio.Writer
	off  int64
}

// CreateJSONL creates (or truncates) path for streaming writes.
func CreateJSONL(path string) (*JSONLWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &JSONLWriter{path: path, f: f, w: bufio.NewWriter(f)}, nil
}

// OpenJSONLAt opens path for appending after truncating it to off, the
// durable offset recorded by the last checkpoint. Records written after
// the checkpoint but before the crash (possibly torn) are discarded;
// the resumed run re-emits them byte-identically.
func OpenJSONLAt(path string, off int64) (*JSONLWriter, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < off {
		f.Close()
		return nil, fmt.Errorf("traceio: %s is %d bytes, shorter than checkpointed offset %d", path, st.Size(), off)
	}
	if err := f.Truncate(off); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &JSONLWriter{path: path, f: f, w: bufio.NewWriter(f), off: off}, nil
}

// Path returns the file being written.
func (jw *JSONLWriter) Path() string { return jw.path }

// Offset returns the number of bytes written so far (buffered included).
// Only call it durable after Sync.
func (jw *JSONLWriter) Offset() int64 { return jw.off }

// Write appends one record as a JSON line.
func (jw *JSONLWriter) Write(rec interface{ WriteJSONL(io.Writer) error }) error {
	n := &countingWriter{w: jw.w}
	if err := rec.WriteJSONL(n); err != nil {
		return err
	}
	jw.off += n.n
	return nil
}

// Sync flushes buffered records and fsyncs the file, making Offset
// durable.
func (jw *JSONLWriter) Sync() error {
	if err := jw.w.Flush(); err != nil {
		return err
	}
	return jw.f.Sync()
}

// Close syncs and closes the file.
func (jw *JSONLWriter) Close() error {
	syncErr := jw.Sync()
	closeErr := jw.f.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
