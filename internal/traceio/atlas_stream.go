package traceio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"mmlpt/internal/packet"
)

// Streaming v2 encoder: the write-side dual of AtlasReader. Where
// EncodeV2 takes a fully materialized AtlasSnapshot, the stream encoder
// takes the header-level totals up front (AtlasStreamSpec) and then
// accepts the shard blocks one at a time, so a producer holding the
// atlas in some other shape — the in-memory sharded store, or k-way
// merge cursors over snapshot files — never builds the flat snapshot at
// all. Peak memory is one block (or, for a parallel producer, a few
// blocks in flight), not the whole file.
//
// Byte identity with the materialized path is structural, not aspired:
// EncodeV2 itself routes through this encoder, and a block's bytes are
// a pure function of its AtlasShard value (AppendAtlasShardBlock), so
// any producer that feeds the same blocks gets the same file — whatever
// worker count produced them.

// AtlasStreamSpec carries everything the v2 header and trailer sections
// need before the first shard block: the section totals, the pair
// section (small, written with the header), and the diamond census
// (small, written by Finish).
type AtlasStreamSpec struct {
	Pairs    []AtlasPair
	Nodes    int
	Edges    int
	Routers  int
	Shards   int
	Diamonds []AtlasDiamond
}

// AtlasStreamEncoder writes a v2 snapshot incrementally: header and
// pairs at construction, one fenced shard block per WriteBlock /
// WriteEncodedBlock call, diamonds + index + trailer at Finish. Blocks
// must arrive in shard order. The encoder cross-checks every block
// against the spec's totals and the fence ordering, so a buggy producer
// fails the encode instead of writing a file the decoder would reject.
type AtlasStreamEncoder struct {
	bw   *bufio.Writer
	cw   *countingWriter
	enc  *json.Encoder
	spec AtlasStreamSpec
	idx  AtlasIndex

	shards  int
	nodes   int
	edges   int
	routers int
	prevMax packet.Addr
	fenced  bool
}

// NewAtlasStreamEncoder starts a streaming v2 encode: it validates the
// spec, writes the header and the pair section, and returns an encoder
// ready for the first shard block. The codec's ShardNodes does not bind
// the encoder — block boundaries are the producer's, via
// AtlasShardTarget — but Version must be v2 (or 0, the default).
func (c AtlasCodec) NewAtlasStreamEncoder(w io.Writer, spec AtlasStreamSpec) (*AtlasStreamEncoder, error) {
	if v := c.Version; v != 0 && v != AtlasVersion {
		return nil, fmt.Errorf("traceio: atlas version %d cannot stream-encode", v)
	}
	if spec.Nodes < 0 || spec.Edges < 0 || spec.Routers < 0 {
		return nil, fmt.Errorf("traceio: atlas stream spec has negative section count")
	}
	if spec.Shards < 1 {
		return nil, fmt.Errorf("traceio: atlas stream spec needs at least one shard")
	}
	if spec.Nodes == 0 && spec.Shards != 1 {
		return nil, fmt.Errorf("traceio: atlas stream spec: %d shards for 0 nodes", spec.Shards)
	}
	if spec.Nodes > 0 && spec.Shards > spec.Nodes {
		return nil, fmt.Errorf("traceio: atlas stream spec: %d shards for %d nodes", spec.Shards, spec.Nodes)
	}
	e := &AtlasStreamEncoder{bw: bufio.NewWriter(w), spec: spec}
	e.cw = &countingWriter{w: e.bw}
	e.enc = json.NewEncoder(e.cw)
	h := AtlasHeader{
		Version: AtlasVersion, Kind: atlasKind,
		Pairs: len(spec.Pairs), Nodes: spec.Nodes, Edges: spec.Edges,
		Routers: spec.Routers, Diamonds: len(spec.Diamonds),
		Shards: spec.Shards,
	}
	if err := e.enc.Encode(&h); err != nil {
		return nil, err
	}
	e.idx = AtlasIndex{Kind: atlasIndexKind, Shards: make([]AtlasShardInfo, 0, spec.Shards)}
	e.idx.PairsOff = e.cw.n
	for i := range spec.Pairs {
		if err := e.enc.Encode(&spec.Pairs[i]); err != nil {
			return nil, err
		}
	}
	e.idx.PairsLen = e.cw.n - e.idx.PairsOff
	return e, nil
}

// WriteBlock encodes and writes the next shard block. The block is
// validated exactly as AppendAtlasShardBlock documents, plus the
// cross-block invariants (shard sequence, ascending fences).
func (e *AtlasStreamEncoder) WriteBlock(sh *AtlasShard) error {
	raw, edges, err := AppendAtlasShardBlock(nil, sh)
	if err != nil {
		return err
	}
	return e.WriteEncodedBlock(raw, sh.Header, edges)
}

// WriteEncodedBlock writes a shard block already rendered by
// AppendAtlasShardBlock — the parallel producer's path: workers marshal
// blocks into private buffers, the coordinator hands them over in shard
// order. hdr and edges must be the values the block was rendered with;
// the encoder checks the cross-block invariants and accumulates the
// section totals it verifies at Finish.
func (e *AtlasStreamEncoder) WriteEncodedBlock(raw []byte, hdr AtlasShardHeader, edges int) error {
	if hdr.Shard != e.shards {
		return fmt.Errorf("traceio: atlas stream: shard %d out of order (want %d)", hdr.Shard, e.shards)
	}
	if hdr.Shard >= e.spec.Shards {
		return fmt.Errorf("traceio: atlas stream: shard %d beyond spec's %d", hdr.Shard, e.spec.Shards)
	}
	if hdr.Nodes > 0 {
		min, err := packet.ParseAddr(hdr.Min)
		if err != nil {
			return fmt.Errorf("traceio: atlas stream: shard %d min fence %q: %v", hdr.Shard, hdr.Min, err)
		}
		if e.fenced && min <= e.prevMax {
			return fmt.Errorf("traceio: atlas stream: shard %d fences out of order", hdr.Shard)
		}
		max, err := packet.ParseAddr(hdr.Max)
		if err != nil {
			return fmt.Errorf("traceio: atlas stream: shard %d max fence %q: %v", hdr.Shard, hdr.Max, err)
		}
		e.prevMax, e.fenced = max, true
	}
	off := e.cw.n
	if _, err := e.cw.Write(raw); err != nil {
		return err
	}
	e.idx.Shards = append(e.idx.Shards, AtlasShardInfo{
		Off: off, Len: e.cw.n - off,
		Nodes: hdr.Nodes, Routers: hdr.Routers,
		Min: hdr.Min, Max: hdr.Max,
	})
	e.shards++
	e.nodes += hdr.Nodes
	e.edges += edges
	e.routers += hdr.Routers
	return nil
}

// Finish writes the diamond, index and trailer sections, verifies the
// stream delivered exactly the spec's totals, and flushes. The encoder
// is not usable afterwards.
func (e *AtlasStreamEncoder) Finish() error {
	if e.shards != e.spec.Shards {
		return fmt.Errorf("traceio: atlas stream: %d shard blocks written, spec claims %d", e.shards, e.spec.Shards)
	}
	if e.nodes != e.spec.Nodes {
		return fmt.Errorf("traceio: atlas stream: blocks hold %d nodes, spec claims %d", e.nodes, e.spec.Nodes)
	}
	if e.edges != e.spec.Edges {
		return fmt.Errorf("traceio: atlas stream: blocks hold %d edges, spec claims %d", e.edges, e.spec.Edges)
	}
	if e.routers != e.spec.Routers {
		return fmt.Errorf("traceio: atlas stream: blocks hold %d routers, spec claims %d", e.routers, e.spec.Routers)
	}
	e.idx.DiamondsOff = e.cw.n
	for i := range e.spec.Diamonds {
		if err := e.enc.Encode(&e.spec.Diamonds[i]); err != nil {
			return err
		}
	}
	e.idx.DiamondsLen = e.cw.n - e.idx.DiamondsOff
	indexOff := e.cw.n
	if err := e.enc.Encode(&e.idx); err != nil {
		return err
	}
	t := atlasTrailer{
		Kind: atlasTrailerKind, Version: AtlasVersion,
		IndexOff: indexOff, IndexLen: e.cw.n - indexOff,
	}
	if err := e.enc.Encode(&t); err != nil {
		return err
	}
	return e.bw.Flush()
}

// AppendAtlasShardBlock appends the encoded form of one shard block —
// the shard-header line, the node lines, the router lines — to buf and
// returns the extended buffer plus the number of edges (succ entries)
// the block carries. The bytes are a pure function of sh, independent
// of which goroutine renders them, which is what lets a parallel
// producer marshal blocks out of order and still assemble a
// byte-deterministic file.
//
// The block is validated as a unit: header counts must match the
// slices, node addresses must be parseable and strictly ascending,
// fences must equal the first and last node address, and routers need
// two or more members with a parseable representative.
func AppendAtlasShardBlock(buf []byte, sh *AtlasShard) ([]byte, int, error) {
	h := sh.Header
	if h.Nodes != len(sh.Nodes) || h.Routers != len(sh.Routers) {
		return nil, 0, fmt.Errorf("traceio: atlas shard %d: header counts (%d,%d) disagree with block (%d,%d)",
			h.Shard, h.Nodes, h.Routers, len(sh.Nodes), len(sh.Routers))
	}
	if len(sh.Nodes) == 0 {
		if h.Min != "" || h.Max != "" {
			return nil, 0, fmt.Errorf("traceio: atlas shard %d: fences on an empty shard", h.Shard)
		}
	} else if h.Min != sh.Nodes[0].Addr || h.Max != sh.Nodes[len(sh.Nodes)-1].Addr {
		return nil, 0, fmt.Errorf("traceio: atlas shard %d: fences [%s,%s] disagree with nodes [%s,%s]",
			h.Shard, h.Min, h.Max, sh.Nodes[0].Addr, sh.Nodes[len(sh.Nodes)-1].Addr)
	}
	var err error
	if buf, err = appendJSONLine(buf, &h); err != nil {
		return nil, 0, err
	}
	edges := 0
	var prev packet.Addr
	for i := range sh.Nodes {
		n := &sh.Nodes[i]
		addr, perr := packet.ParseAddr(n.Addr)
		if perr != nil {
			return nil, 0, fmt.Errorf("traceio: atlas shard %d: node address %q: %v", h.Shard, n.Addr, perr)
		}
		if i > 0 && addr <= prev {
			return nil, 0, fmt.Errorf("traceio: atlas shard %d: node %s out of canonical order", h.Shard, n.Addr)
		}
		prev = addr
		edges += len(n.Succ)
		if buf, err = appendJSONLine(buf, n); err != nil {
			return nil, 0, err
		}
	}
	for i := range sh.Routers {
		r := &sh.Routers[i]
		if len(r.Addrs) < 2 {
			return nil, 0, fmt.Errorf("traceio: atlas shard %d: router with %d addresses", h.Shard, len(r.Addrs))
		}
		if _, perr := packet.ParseAddr(r.Addrs[0]); perr != nil {
			return nil, 0, fmt.Errorf("traceio: atlas shard %d: router representative %q: %v", h.Shard, r.Addrs[0], perr)
		}
		if buf, err = appendJSONLine(buf, r); err != nil {
			return nil, 0, err
		}
	}
	return buf, edges, nil
}

// appendJSONLine appends v's JSON encoding plus the '\n' terminator,
// byte-identical to json.Encoder.Encode.
func appendJSONLine(buf []byte, v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	buf = append(buf, b...)
	return append(buf, '\n'), nil
}

// EncodeAtlasStream writes a v2 snapshot from a block producer: next is
// called with each shard index in order and returns that shard's block.
// Convenience over NewAtlasStreamEncoder for serial producers; parallel
// producers drive the encoder directly with WriteEncodedBlock.
func EncodeAtlasStream(w io.Writer, spec AtlasStreamSpec, next func(shard int) (*AtlasShard, error)) error {
	e, err := AtlasCodec{}.NewAtlasStreamEncoder(w, spec)
	if err != nil {
		return err
	}
	for i := 0; i < spec.Shards; i++ {
		sh, err := next(i)
		if err != nil {
			return err
		}
		if err := e.WriteBlock(sh); err != nil {
			return err
		}
	}
	return e.Finish()
}

// AtlasShardTarget returns the node count per v2 shard block this codec
// targets — the partition size a streaming producer must slice the
// canonical node order into for its output to match a materialized
// encode with the same codec.
func (c AtlasCodec) AtlasShardTarget() int { return shardTarget(c.ShardNodes) }

// AtlasShardForAddr returns the shard whose address range owns addr,
// given the per-shard minimum fences: the last shard whose minimum is
// <= addr, or 0 when addr precedes every fence. This is the v2 router
// placement rule — a router component is stored in the shard owning its
// representative — exported so streaming producers assign routers to
// blocks exactly as the materialized encoder does.
func AtlasShardForAddr(mins []packet.Addr, addr packet.Addr) int {
	return shardForAddr(mins, addr)
}

// AtlasBlockOf slices the canonical node range of shard i under the
// codec's target: [lo, hi) into a section of n nodes.
func (c AtlasCodec) AtlasBlockOf(shard, n int) (lo, hi int) {
	target := shardTarget(c.ShardNodes)
	lo = shard * target
	hi = lo + target
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}
