package traceio

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"mmlpt/internal/packet"
)

// Snapshot format version 2: sectioned, indexed, range-fenced.
//
// Grammar (every line one JSON value, '\n'-terminated):
//
//	header    {"version":2,"kind":"atlas","pairs":P,"nodes":N,"edges":E,"routers":R,"diamonds":D,"shards":S}
//	P pair lines (as v1)
//	S shard blocks, each:
//	    {"shard":i,"nodes":n,"routers":r,"min":"A","max":"B"}
//	    n node lines   {"addr":"A","seen":[[p,h],...],"succ":["B",...],"router":"REP"}
//	    r router lines {"addrs":["A","B",...]}
//	D diamond lines (as v1)
//	index     {"kind":"atlas-index","pairs_off":o,"pairs_len":l,"shards":[{"off":o,"len":l,"nodes":n,"routers":r,"min":"A","max":"B"},...],"diamonds_off":o,"diamonds_len":l}
//	trailer   {"kind":"atlas-trailer","version":2,"index_off":o,"index_len":l}
//
// Nodes are split into S = ceil(N/ShardNodes) contiguous runs of the
// canonical (ascending address) order; a shard's fences [min, max] are
// its first and last node address, so fences partition the address
// space into disjoint ascending ranges. Edges live with their source
// node as a "succ" list of destination addresses, and each node in a
// multi-interface router names the component's representative (its
// minimum address) in "router". A router component is stored in the
// shard its representative falls in. The trailer is the last line of
// the file and locates the index; the index locates every shard plus
// the pairs and diamonds sections by absolute byte offset, so a reader
// answers a point query by decoding one shard, never the whole file.
//
// Offsets are pure functions of the snapshot content and codec
// configuration, so v2 files inherit the byte-determinism guarantee:
// same snapshot + same codec config = identical bytes.

// atlasIndexKind and atlasTrailerKind tag the two locator lines.
const (
	atlasIndexKind   = "atlas-index"
	atlasTrailerKind = "atlas-trailer"
)

// AtlasShardHeader is the first line of one v2 shard block.
type AtlasShardHeader struct {
	Shard   int    `json:"shard"`
	Nodes   int    `json:"nodes"`
	Routers int    `json:"routers"`
	Min     string `json:"min,omitempty"`
	Max     string `json:"max,omitempty"`
}

// AtlasNodeV2 is one v2 node line: the v1 node plus its outgoing links
// (by destination address) and the representative of the router
// component containing it, when any.
type AtlasNodeV2 struct {
	Addr   string   `json:"addr"`
	Seen   [][2]int `json:"seen"`
	Succ   []string `json:"succ"`
	Router string   `json:"router,omitempty"`
}

// AtlasShardInfo locates one shard block in the file and repeats its
// fences so a reader can route a query without touching the block.
type AtlasShardInfo struct {
	Off     int64  `json:"off"`
	Len     int64  `json:"len"`
	Nodes   int    `json:"nodes"`
	Routers int    `json:"routers"`
	Min     string `json:"min,omitempty"`
	Max     string `json:"max,omitempty"`
}

// AtlasIndex is the v2 index line: absolute byte spans for every
// random-access section.
type AtlasIndex struct {
	Kind        string           `json:"kind"`
	PairsOff    int64            `json:"pairs_off"`
	PairsLen    int64            `json:"pairs_len"`
	Shards      []AtlasShardInfo `json:"shards"`
	DiamondsOff int64            `json:"diamonds_off"`
	DiamondsLen int64            `json:"diamonds_len"`
}

// atlasTrailer is the fixed last line locating the index.
type atlasTrailer struct {
	Kind     string `json:"kind"`
	Version  int    `json:"version"`
	IndexOff int64  `json:"index_off"`
	IndexLen int64  `json:"index_len"`
}

// atlasShardLayout computes the v2 shard partition of a node section:
// contiguous runs of target size, fences from the run boundaries.
// Exported via AtlasCodec only; layout is deterministic in (addrs,
// target).
func atlasShardLayout(addrs []packet.Addr, target int) []AtlasShardHeader {
	if target <= 0 {
		target = DefaultAtlasShardNodes
	}
	n := len(addrs)
	num := (n + target - 1) / target
	if num == 0 {
		num = 1
	}
	shards := make([]AtlasShardHeader, num)
	for i := range shards {
		lo := i * target
		hi := lo + target
		if hi > n {
			hi = n
		}
		shards[i] = AtlasShardHeader{Shard: i, Nodes: hi - lo}
		if hi > lo {
			shards[i].Min = addrs[lo].String()
			shards[i].Max = addrs[hi-1].String()
		}
	}
	return shards
}

// shardForAddr returns the shard whose range owns addr: the last shard
// whose minimum fence is <= addr, or 0 when addr precedes every fence.
// For an address that is a node this is exactly the containing shard;
// for others it is where that address would live, which is what router
// representative assignment needs.
func shardForAddr(mins []packet.Addr, addr packet.Addr) int {
	// sort.Search: first index with mins[i] > addr.
	i := sort.Search(len(mins), func(i int) bool { return mins[i] > addr })
	if i == 0 {
		return 0
	}
	return i - 1
}

// EncodeV2 writes the snapshot in the sectioned, indexed v2 format.
// The snapshot must be in canonical order (ascending parseable node
// addresses); Encode validates exactly what Decode guarantees, so any
// decoded snapshot re-encodes.
func (c AtlasCodec) EncodeV2(w io.Writer, s *AtlasSnapshot) error {
	addrs := make([]packet.Addr, len(s.Nodes))
	for i := range s.Nodes {
		a, err := packet.ParseAddr(s.Nodes[i].Addr)
		if err != nil {
			return fmt.Errorf("traceio: atlas node %d address %q: %v", i, s.Nodes[i].Addr, err)
		}
		if i > 0 && a <= addrs[i-1] {
			return fmt.Errorf("traceio: atlas node %d (%s) out of canonical order", i, s.Nodes[i].Addr)
		}
		addrs[i] = a
	}
	// Outgoing links per node, destination addresses in edge order.
	succ := make([][]string, len(s.Nodes))
	for i, e := range s.Edges {
		if e[0] < 0 || e[0] >= len(s.Nodes) || e[1] < 0 || e[1] >= len(s.Nodes) {
			return fmt.Errorf("traceio: atlas edge %d (%v) index out of range", i, e)
		}
		succ[e[0]] = append(succ[e[0]], s.Nodes[e[1]].Addr)
	}
	// Router component membership: representative per member address.
	routerOf := make(map[string]string)
	reps := make([]packet.Addr, len(s.Routers))
	for i := range s.Routers {
		r := &s.Routers[i]
		if len(r.Addrs) < 2 {
			return fmt.Errorf("traceio: atlas router %d has %d addresses", i, len(r.Addrs))
		}
		rep, err := packet.ParseAddr(r.Addrs[0])
		if err != nil {
			return fmt.Errorf("traceio: atlas router %d representative %q: %v", i, r.Addrs[0], err)
		}
		reps[i] = rep
		for _, m := range r.Addrs {
			routerOf[m] = r.Addrs[0]
		}
	}

	shards := atlasShardLayout(addrs, c.ShardNodes)
	mins := make([]packet.Addr, len(shards))
	for i, sh := range shards {
		if sh.Nodes > 0 {
			mins[i] = addrs[i*shardTarget(c.ShardNodes)]
		}
	}
	routersByShard := make([][]int, len(shards))
	for i := range s.Routers {
		sh := shardForAddr(mins, reps[i])
		routersByShard[sh] = append(routersByShard[sh], i)
		shards[sh].Routers++
	}

	// The materialized path is a serial block producer over the stream
	// encoder: slicing the flat snapshot into the layout's blocks and
	// feeding them in order is, structurally, the same encode the
	// parallel streaming producers perform — one code path, one byte
	// contract.
	spec := AtlasStreamSpec{
		Pairs: s.Pairs, Nodes: len(s.Nodes), Edges: len(s.Edges),
		Routers: len(s.Routers), Shards: len(shards), Diamonds: s.Diamonds,
	}
	e, err := c.NewAtlasStreamEncoder(w, spec)
	if err != nil {
		return err
	}
	target := shardTarget(c.ShardNodes)
	for si := range shards {
		blk := &AtlasShard{Header: shards[si]}
		lo := si * target
		if n := shards[si].Nodes; n > 0 {
			blk.Nodes = make([]AtlasNodeV2, 0, n)
			for i := lo; i < lo+n; i++ {
				blk.Nodes = append(blk.Nodes, AtlasNodeV2{
					Addr: s.Nodes[i].Addr, Seen: s.Nodes[i].Seen,
					Succ: succ[i], Router: routerOf[s.Nodes[i].Addr],
				})
			}
		}
		for _, ri := range routersByShard[si] {
			blk.Routers = append(blk.Routers, s.Routers[ri])
		}
		if err := e.WriteBlock(blk); err != nil {
			return err
		}
	}
	return e.Finish()
}

func shardTarget(n int) int {
	if n <= 0 {
		return DefaultAtlasShardNodes
	}
	return n
}

// decodeShardHeader parses and validates one shard-header line.
func decodeShardHeader(ls *lineScanner, want int) (AtlasShardHeader, error) {
	var sh AtlasShardHeader
	b, err := ls.next()
	if err != nil {
		return sh, err
	}
	if err := json.Unmarshal(b, &sh); err != nil {
		return sh, fmt.Errorf("traceio: atlas line %d: bad shard header: %v", ls.line, err)
	}
	if sh.Shard != want {
		return sh, fmt.Errorf("traceio: atlas line %d: shard %d, want %d", ls.line, sh.Shard, want)
	}
	if sh.Nodes < 0 || sh.Routers < 0 {
		return sh, fmt.Errorf("traceio: atlas line %d: negative shard section count", ls.line)
	}
	return sh, nil
}

// decodeV2Node parses and validates one node line; prev/havePrev
// enforce global canonical order.
func decodeV2Node(ls *lineScanner, prev packet.Addr, havePrev bool) (AtlasNodeV2, packet.Addr, error) {
	var n AtlasNodeV2
	b, err := ls.next()
	if err != nil {
		return n, 0, err
	}
	if err := json.Unmarshal(b, &n); err != nil {
		return n, 0, fmt.Errorf("traceio: atlas line %d: bad node: %v", ls.line, err)
	}
	addr, err := validateNode(ls, n.Addr, n.Seen, prev, havePrev)
	if err != nil {
		return n, 0, err
	}
	return n, addr, nil
}

// decodeV2Body reads the sectioned format after the header, as a plain
// stream (no seeking): shard structure is validated, then flattened
// back into the version-independent AtlasSnapshot.
func decodeV2Body(ls *lineScanner, h AtlasHeader) (*AtlasSnapshot, error) {
	if h.Shards < 1 {
		return nil, fmt.Errorf("traceio: atlas v2 header without shard count")
	}
	if h.Nodes == 0 && h.Shards != 1 {
		return nil, fmt.Errorf("traceio: atlas v2: %d shards for 0 nodes", h.Shards)
	}
	if h.Nodes > 0 && h.Shards > h.Nodes {
		return nil, fmt.Errorf("traceio: atlas v2: %d shards for %d nodes", h.Shards, h.Nodes)
	}
	s := &AtlasSnapshot{
		Nodes:   make([]AtlasNode, 0, cappedPrealloc(h.Nodes)),
		Edges:   make([]AtlasEdge, 0, cappedPrealloc(h.Edges)),
		Routers: make([]AtlasRouter, 0, cappedPrealloc(h.Routers)),
	}
	var err error
	if s.Pairs, err = decodePairs(ls, h.Pairs); err != nil {
		return nil, err
	}
	nodeIdx := make(map[string]int, cappedPrealloc(h.Nodes))
	var succs [][]string
	var prev packet.Addr
	for si := 0; si < h.Shards; si++ {
		sh, err := decodeShardHeader(ls, si)
		if err != nil {
			return nil, err
		}
		for j := 0; j < sh.Nodes; j++ {
			n, addr, err := decodeV2Node(ls, prev, len(s.Nodes) > 0)
			if err != nil {
				return nil, err
			}
			prev = addr
			if j == 0 && sh.Min != n.Addr {
				return nil, fmt.Errorf("traceio: atlas line %d: shard %d min fence %q != first node %q", ls.line, si, sh.Min, n.Addr)
			}
			if j == sh.Nodes-1 && sh.Max != n.Addr {
				return nil, fmt.Errorf("traceio: atlas line %d: shard %d max fence %q != last node %q", ls.line, si, sh.Max, n.Addr)
			}
			nodeIdx[n.Addr] = len(s.Nodes)
			s.Nodes = append(s.Nodes, AtlasNode{Addr: n.Addr, Seen: n.Seen})
			succs = append(succs, n.Succ)
		}
		for j := 0; j < sh.Routers; j++ {
			b, err := ls.next()
			if err != nil {
				return nil, err
			}
			var rt AtlasRouter
			if err := json.Unmarshal(b, &rt); err != nil {
				return nil, fmt.Errorf("traceio: atlas line %d: bad router: %v", ls.line, err)
			}
			if err := validateRouter(ls, &rt); err != nil {
				return nil, err
			}
			s.Routers = append(s.Routers, rt)
		}
	}
	if len(s.Nodes) != h.Nodes {
		return nil, fmt.Errorf("traceio: atlas v2: shards hold %d nodes, header claims %d", len(s.Nodes), h.Nodes)
	}
	if len(s.Routers) != h.Routers {
		return nil, fmt.Errorf("traceio: atlas v2: shards hold %d routers, header claims %d", len(s.Routers), h.Routers)
	}
	for i, list := range succs {
		for _, dst := range list {
			j, ok := nodeIdx[dst]
			if !ok {
				return nil, fmt.Errorf("traceio: atlas v2: node %s links to unknown address %q", s.Nodes[i].Addr, dst)
			}
			s.Edges = append(s.Edges, AtlasEdge{i, j})
		}
	}
	if len(s.Edges) != h.Edges {
		return nil, fmt.Errorf("traceio: atlas v2: nodes hold %d edges, header claims %d", len(s.Edges), h.Edges)
	}
	if s.Diamonds, err = decodeDiamonds(ls, h.Diamonds); err != nil {
		return nil, err
	}
	// Index and trailer close the file; a stream decode validates their
	// shape (kinds, counts) but not their byte offsets — that is the
	// random-access reader's job, which fails loudly on a bad span.
	b, err := ls.next()
	if err != nil {
		return nil, err
	}
	var idx AtlasIndex
	if err := json.Unmarshal(b, &idx); err != nil {
		return nil, fmt.Errorf("traceio: atlas line %d: bad index: %v", ls.line, err)
	}
	if idx.Kind != atlasIndexKind {
		return nil, fmt.Errorf("traceio: atlas line %d: index kind %q", ls.line, idx.Kind)
	}
	if len(idx.Shards) != h.Shards {
		return nil, fmt.Errorf("traceio: atlas v2: index lists %d shards, header claims %d", len(idx.Shards), h.Shards)
	}
	if b, err = ls.next(); err != nil {
		return nil, err
	}
	var t atlasTrailer
	if err := json.Unmarshal(b, &t); err != nil {
		return nil, fmt.Errorf("traceio: atlas line %d: bad trailer: %v", ls.line, err)
	}
	if t.Kind != atlasTrailerKind || t.Version != AtlasVersion {
		return nil, fmt.Errorf("traceio: atlas line %d: bad trailer (kind %q version %d)", ls.line, t.Kind, t.Version)
	}
	if err := ls.finish(); err != nil {
		return nil, err
	}
	return s, nil
}
