package traceio

import (
	"bytes"
	"strings"
	"testing"
)

func sampleEvalRecord() *EvalRecord {
	return &EvalRecord{
		Scenario: "flow-wide", SeedIndex: 2, Seed: 0xdeadbeef, Pairs: 3, FlowBased: true,
		MDA: AlgoEval{Algo: "mda", Probes: 520, Reached: 3,
			VertexRecall: 1, EdgeRecall: 0.993, DiamondRecall: 1,
			VertexPrecision: 1, EdgePrecision: 0.875, FalseEdges: 2},
		MDALite: AlgoEval{Algo: "mda-lite", Probes: 200, Reached: 3, Switched: 1,
			VertexRecall: 1, EdgeRecall: 0.987, DiamondRecall: 1,
			VertexPrecision: 1, EdgePrecision: 1},
		ProbeSavings: 0.6153846153846154, RelativeEdgeRecall: 0.9939577039274925,
	}
}

// Byte stability: encode → decode → re-encode must reproduce identical
// bytes, the property golden files and the cross-worker determinism
// guard rely on.
func TestEvalRecordByteStable(t *testing.T) {
	t.Parallel()
	var first bytes.Buffer
	if err := sampleEvalRecord().WriteJSONL(&first); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadEvalRecords(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	var second bytes.Buffer
	if err := recs[0].WriteJSONL(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("re-encode differs:\n%s\n%s", first.Bytes(), second.Bytes())
	}
	if !strings.HasSuffix(first.String(), "\n") || strings.Count(first.String(), "\n") != 1 {
		t.Fatalf("record is not one JSONL line: %q", first.String())
	}
}

func TestDecodeEvalRecordsRejectsGarbage(t *testing.T) {
	t.Parallel()
	if _, err := ReadEvalRecords(strings.NewReader("{\"scenario\":\"x\"}\nnot json\n")); err == nil {
		t.Fatal("garbage line decoded without error")
	}
}
