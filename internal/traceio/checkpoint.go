package traceio

import (
	"encoding/json"
	"fmt"
	"os"
)

// Checkpoint format.
//
// A checkpoint is a compact JSON progress file a long survey writes
// atomically at a configurable interval. Together with the JSONL record
// log it makes a run resumable after a kill: the checkpoint names how
// many work items are durably complete and the byte offset of the record
// log covering exactly those items. Because a run emits records in
// deterministic item order, the completed item *count* fully identifies
// the completed item *set* — the file stays a few hundred bytes no
// matter how large the survey is.
//
// Two invariants make this crash-safe:
//
//  1. The record log is fsynced before the checkpoint referencing it is
//     written (so Offset never points past durable bytes).
//  2. The checkpoint itself is replaced via WriteFileAtomic (so a crash
//     never leaves a truncated checkpoint).
//
// On resume the log is truncated back to Offset, discarding any records
// (possibly torn) written after the last checkpoint; the resumed run
// re-traces those items under the same derived seeds and re-emits the
// discarded records byte-identically.

// CheckpointVersion is the current file format version.
const CheckpointVersion = 1

// Checkpoint records resumable survey progress.
type Checkpoint struct {
	Version int `json:"version"`
	// Kind guards against resuming the wrong tool's checkpoint
	// ("survey", "mmlpt-runs", ...).
	Kind string `json:"kind"`
	// OptionsHash fingerprints every option that affects which items are
	// traced and what their records contain. A resumed run with a
	// different hash must be rejected: it would splice records from two
	// different experiments into one file.
	OptionsHash uint64 `json:"options_hash"`
	// Seed is the run's base seed (redundant with OptionsHash, kept
	// readable for humans inspecting the file).
	Seed uint64 `json:"seed"`
	// Total is the number of work items the run will trace.
	Total int `json:"total"`
	// Done is the number of items durably emitted, in item order: items
	// [0, Done) are complete, [Done, Total) remain.
	Done int `json:"done"`
	// Offset is the durable byte length of the JSONL record log covering
	// exactly the Done items. Zero when the run has no record log.
	Offset int64 `json:"offset"`
}

// WriteAtomic persists the checkpoint with a temp-file + rename, fsync
// included. Callers must Sync the record log first (invariant 1).
func (c *Checkpoint) WriteAtomic(path string) error {
	c.Version = CheckpointVersion
	data, err := json.Marshal(c)
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, append(data, '\n'), 0o644)
}

// Matches validates a checkpoint against the run that wants to resume
// from it: same tool kind, same options fingerprint, same item count.
// Any mismatch means the checkpoint belongs to a different experiment
// and resuming would splice two experiments' records into one file.
func (c *Checkpoint) Matches(kind string, optionsHash uint64, total int) error {
	if c.Kind != kind {
		return fmt.Errorf("traceio: checkpoint belongs to %q, not %q", c.Kind, kind)
	}
	if c.OptionsHash != optionsHash {
		return fmt.Errorf("traceio: checkpoint was written under different options (hash %#x, want %#x)", c.OptionsHash, optionsHash)
	}
	if c.Total != total {
		return fmt.Errorf("traceio: checkpoint covers %d items, this run selects %d", c.Total, total)
	}
	return nil
}

// ReadCheckpoint loads and validates a checkpoint file. A missing file
// surfaces as an error satisfying os.IsNotExist / errors.Is(fs.ErrNotExist).
func ReadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c := new(Checkpoint)
	if err := json.Unmarshal(data, c); err != nil {
		return nil, fmt.Errorf("traceio: corrupt checkpoint %s: %v", path, err)
	}
	if c.Version != CheckpointVersion {
		return nil, fmt.Errorf("traceio: checkpoint %s has version %d, want %d", path, c.Version, CheckpointVersion)
	}
	if c.Done < 0 || c.Total < 0 || c.Done > c.Total || c.Offset < 0 {
		return nil, fmt.Errorf("traceio: checkpoint %s is inconsistent (done=%d total=%d offset=%d)", path, c.Done, c.Total, c.Offset)
	}
	return c, nil
}
