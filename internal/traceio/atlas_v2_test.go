package traceio

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mmlpt/internal/packet"
)

// wideSnapshot spans several shards at small ShardNodes settings: nine
// nodes, two multi-interface routers, cross-shard edges.
func wideSnapshot() *AtlasSnapshot {
	return &AtlasSnapshot{
		Pairs: []AtlasPair{
			{Pair: 0, Src: "192.0.2.1", Dst: "203.0.113.1"},
			{Pair: 1, Src: "192.0.2.2", Dst: "203.0.113.2"},
		},
		Nodes: []AtlasNode{
			{Addr: "10.0.0.1", Seen: [][2]int{{0, 1}}},
			{Addr: "10.0.0.2", Seen: [][2]int{{0, 2}, {1, 3}}},
			{Addr: "10.0.0.3", Seen: [][2]int{{0, 2}}},
			{Addr: "10.0.0.4", Seen: [][2]int{{0, 3}}},
			{Addr: "10.0.0.5", Seen: [][2]int{{1, 1}}},
			{Addr: "10.0.0.6", Seen: [][2]int{{1, 2}}},
			{Addr: "10.0.0.7", Seen: [][2]int{{1, 4}}},
			{Addr: "10.0.0.8", Seen: [][2]int{{1, 5}}},
			{Addr: "10.0.0.9", Seen: [][2]int{{1, 6}}},
		},
		Edges: []AtlasEdge{
			{0, 1}, {0, 2}, {1, 3}, {2, 3}, {4, 5}, {5, 1}, {6, 7}, {7, 8},
		},
		Routers: []AtlasRouter{
			{Addrs: []string{"10.0.0.2", "10.0.0.3"}},
			{Addrs: []string{"10.0.0.7", "10.0.0.9"}},
		},
		Diamonds: []AtlasDiamond{
			{Div: "10.0.0.1", Conv: "10.0.0.4", Count: 2, Pairs: []int{0}, MaxWidth: 2, MaxLength: 2},
		},
	}
}

// The satellite guarantee: a legacy v1 file decodes and re-encodes as
// v2 byte-identically to encoding the original snapshot as v2 directly,
// and the v2 bytes themselves are a byte-stable fixed point.
func TestAtlasV1ToV2RoundTripByteStable(t *testing.T) {
	t.Parallel()
	s := wideSnapshot()
	var v1 bytes.Buffer
	if err := (AtlasCodec{Version: AtlasVersionV1}).Encode(&v1, s); err != nil {
		t.Fatal(err)
	}
	fromV1, err := DecodeAtlas(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromV1, s) {
		t.Fatalf("v1 decode differs:\n got %+v\nwant %+v", fromV1, s)
	}
	var direct, migrated bytes.Buffer
	if err := EncodeAtlas(&direct, s); err != nil {
		t.Fatal(err)
	}
	if err := EncodeAtlas(&migrated, fromV1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), migrated.Bytes()) {
		t.Fatal("v1→v2 migration bytes differ from direct v2 encode")
	}
	fromV2, err := DecodeAtlas(bytes.NewReader(direct.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromV2, s) {
		t.Fatalf("v2 decode differs:\n got %+v\nwant %+v", fromV2, s)
	}
	var again bytes.Buffer
	if err := EncodeAtlas(&again, fromV2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), again.Bytes()) {
		t.Fatal("v2 re-encode is not a byte-stable fixed point")
	}
}

// Non-default shard sizes are byte-deterministic per configuration and
// decode back to the same snapshot.
func TestAtlasV2SmallShardsRoundTrip(t *testing.T) {
	t.Parallel()
	s := wideSnapshot()
	for _, shardNodes := range []int{1, 2, 3, 4, 100} {
		c := AtlasCodec{ShardNodes: shardNodes}
		var a, b bytes.Buffer
		if err := c.Encode(&a, s); err != nil {
			t.Fatalf("ShardNodes=%d: %v", shardNodes, err)
		}
		if err := c.Encode(&b, s); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("ShardNodes=%d: encode not deterministic", shardNodes)
		}
		dec, err := c.Decode(bytes.NewReader(a.Bytes()))
		if err != nil {
			t.Fatalf("ShardNodes=%d: %v", shardNodes, err)
		}
		if !reflect.DeepEqual(dec, s) {
			t.Fatalf("ShardNodes=%d: decode differs", shardNodes)
		}
	}
}

func writeV2File(t *testing.T, s *AtlasSnapshot, shardNodes int) string {
	t.Helper()
	var buf bytes.Buffer
	if err := (AtlasCodec{ShardNodes: shardNodes}).Encode(&buf, s); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snap.atlas")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// The indexed reader routes each address to the shard whose fences own
// it and decodes exactly that block.
func TestAtlasReaderShardRouting(t *testing.T) {
	t.Parallel()
	s := wideSnapshot()
	r, err := OpenAtlasFile(writeV2File(t, s, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Version() != AtlasVersion {
		t.Fatalf("Version = %d", r.Version())
	}
	if got, want := r.NumShards(), 5; got != want { // ceil(9/2)
		t.Fatalf("NumShards = %d, want %d", got, want)
	}
	if !reflect.DeepEqual(r.Pairs(), s.Pairs) {
		t.Fatalf("Pairs = %+v", r.Pairs())
	}
	// Every node address resolves to a shard that actually contains it.
	for _, n := range s.Nodes {
		addr := packet.MustParseAddr(n.Addr)
		si := r.ShardFor(addr)
		sh, err := r.ReadShard(si)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, sn := range sh.Nodes {
			if sn.Addr == n.Addr {
				found = true
				if !reflect.DeepEqual(sn.Seen, n.Seen) {
					t.Fatalf("%s: Seen = %v, want %v", n.Addr, sn.Seen, n.Seen)
				}
			}
		}
		if !found {
			t.Fatalf("shard %d does not hold %s", si, n.Addr)
		}
	}
	// Routers live with their representative: 10.0.0.2's component in
	// the shard owning 10.0.0.2, and member 10.0.0.3's node names it.
	si := r.ShardFor(packet.MustParseAddr("10.0.0.2"))
	sh, err := r.ReadShard(si)
	if err != nil {
		t.Fatal(err)
	}
	if len(sh.Routers) != 1 || sh.Routers[0].Addrs[0] != "10.0.0.2" {
		t.Fatalf("shard %d routers = %+v", si, sh.Routers)
	}
	sh3, err := r.ReadShard(r.ShardFor(packet.MustParseAddr("10.0.0.3")))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range sh3.Nodes {
		if n.Addr == "10.0.0.3" && n.Router != "10.0.0.2" {
			t.Fatalf("node 10.0.0.3 router = %q, want 10.0.0.2", n.Router)
		}
	}
	// Successor lists carry the edges: node 10.0.0.1 links to .2 and .3.
	sh1, err := r.ReadShard(r.ShardFor(packet.MustParseAddr("10.0.0.1")))
	if err != nil {
		t.Fatal(err)
	}
	if got := sh1.Nodes[0].Succ; !reflect.DeepEqual(got, []string{"10.0.0.2", "10.0.0.3"}) {
		t.Fatalf("10.0.0.1 succ = %v", got)
	}
	ds, err := r.ReadDiamonds()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds, s.Diamonds) {
		t.Fatalf("diamonds = %+v", ds)
	}
}

// Legacy v1 files still open through the reader, presented as a single
// synthetic shard with succ and router fields reconstructed.
func TestAtlasReaderV1Fallback(t *testing.T) {
	t.Parallel()
	s := wideSnapshot()
	var buf bytes.Buffer
	if err := (AtlasCodec{Version: AtlasVersionV1}).Encode(&buf, s); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "v1.atlas")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenAtlasFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Version() != AtlasVersionV1 || r.NumShards() != 1 {
		t.Fatalf("Version=%d NumShards=%d", r.Version(), r.NumShards())
	}
	sh, err := r.ReadShard(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sh.Nodes) != len(s.Nodes) || len(sh.Routers) != len(s.Routers) {
		t.Fatalf("synthetic shard: %d nodes %d routers", len(sh.Nodes), len(sh.Routers))
	}
	if got := sh.Nodes[0].Succ; !reflect.DeepEqual(got, []string{"10.0.0.2", "10.0.0.3"}) {
		t.Fatalf("v1 fallback succ = %v", got)
	}
	if sh.Nodes[2].Router != "10.0.0.2" {
		t.Fatalf("v1 fallback router = %q", sh.Nodes[2].Router)
	}
	if _, err := r.ReadShard(1); err == nil {
		t.Fatal("ReadShard(1) on a v1 file must error")
	}
}

// Canonical-order violations are decode errors in both formats: that
// validation is what guarantees every accepted snapshot re-encodes as
// v2 (shard fences require ordered, parseable addresses).
func TestAtlasDecodeRejectsNonCanonicalNodes(t *testing.T) {
	t.Parallel()
	bad := []string{
		`{"version":1,"kind":"atlas","nodes":2}` + "\n" +
			`{"addr":"10.0.0.2"}` + "\n" + `{"addr":"10.0.0.1"}` + "\n",
		`{"version":1,"kind":"atlas","nodes":2}` + "\n" +
			`{"addr":"10.0.0.1"}` + "\n" + `{"addr":"10.0.0.1"}` + "\n",
		`{"version":1,"kind":"atlas","nodes":1}` + "\n" +
			`{"addr":"not-an-ip"}` + "\n",
		`{"version":1,"kind":"atlas","routers":1}` + "\n" +
			`{"addrs":["bogus","10.0.0.2"]}` + "\n",
	}
	for i, in := range bad {
		if _, err := DecodeAtlas(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: decode accepted non-canonical input", i)
		}
	}
}

// Corrupt v2 structure fails loudly at open or read time.
func TestAtlasReaderHostileInput(t *testing.T) {
	t.Parallel()
	s := wideSnapshot()
	var buf bytes.Buffer
	if err := EncodeAtlas(&buf, s); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	write := func(b []byte) string {
		path := filepath.Join(t.TempDir(), "bad.atlas")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	// Truncations: any prefix must fail open or fail reads, never panic.
	for n := 0; n < len(raw); n += 97 {
		r, err := OpenAtlasFile(write(raw[:n]))
		if err != nil {
			continue
		}
		for i := 0; i < r.NumShards(); i++ {
			_, _ = r.ReadShard(i)
		}
		_, _ = r.ReadDiamonds()
		r.Close()
	}
	// A trailer pointing outside the file.
	mangled := bytes.Replace(raw, []byte(`"kind":"atlas-trailer","version":2,"index_off":`), nil, 1)
	if _, err := OpenAtlasFile(write(mangled)); err == nil {
		t.Error("open accepted a file with a mangled trailer")
	}
	// Garbage where the index should be.
	idx := bytes.Index(raw, []byte(`{"kind":"atlas-index"`))
	corrupt := append([]byte(nil), raw...)
	copy(corrupt[idx:], []byte(`XXXXX`))
	if _, err := OpenAtlasFile(write(corrupt)); err == nil {
		t.Error("open accepted a corrupt index")
	}
}

// The v2 stream decoder rejects structural lies the same way the v1
// decoder rejects its corruptions.
func TestAtlasV2DecodeRejections(t *testing.T) {
	t.Parallel()
	s := wideSnapshot()
	var buf bytes.Buffer
	if err := (AtlasCodec{ShardNodes: 4}).Encode(&buf, s); err != nil {
		t.Fatal(err)
	}
	raw := string(buf.Bytes())
	cases := map[string]string{
		"fence lies":           strings.Replace(raw, `"min":"10.0.0.1"`, `"min":"10.0.0.2"`, 1),
		"shard count mismatch": strings.Replace(raw, `"shards":3`, `"shards":2`, 1),
		"edge to unknown addr": strings.Replace(raw, `"succ":["10.0.0.2","10.0.0.3"]`, `"succ":["10.0.0.2","10.9.9.9"]`, 1),
		"missing trailer":      strings.TrimSuffix(raw[:strings.LastIndex(strings.TrimRight(raw, "\n"), "\n")+1], ""),
		"zero shards":          `{"version":2,"kind":"atlas"}` + "\n",
		"shards gt nodes":      `{"version":2,"kind":"atlas","nodes":1,"shards":5}` + "\n",
	}
	for name, in := range cases {
		if in == raw {
			t.Fatalf("%s: mutation did not change input", name)
		}
		if _, err := DecodeAtlas(strings.NewReader(in)); err == nil {
			t.Errorf("%s: decode accepted corrupt v2 input", name)
		}
	}
}
