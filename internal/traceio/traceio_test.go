package traceio

import (
	"bytes"
	"strings"
	"testing"

	"mmlpt/internal/fakeroute"
	"mmlpt/internal/mda"
	"mmlpt/internal/packet"
	"mmlpt/internal/probe"
	"mmlpt/internal/topo"
)

var (
	tSrc = packet.MustParseAddr("192.0.2.1")
	tDst = packet.MustParseAddr("198.51.100.77")
)

func TestTopologyTextRoundTrip(t *testing.T) {
	alloc := fakeroute.NewAddrAllocator(packet.AddrFrom4(10, 0, 0, 1))
	g := fakeroute.Fig1UnmeshedDiamond(alloc, tDst)
	text := FormatTopology(g)
	parsed, err := ParseTopology(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	if !topo.Equal(g, parsed) {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", g, parsed)
	}
}

func TestTopologyTextWithStars(t *testing.T) {
	text := `
# a path with a silent hop
hop 0: 10.0.0.1
hop 1: *
hop 2: 10.0.0.3
edge 10.0.0.1 10.0.0.3
`
	// Note the explicit edge spans non-adjacent hops through the star and
	// must be rejected; the auto-connect handles star adjacency.
	_, err := ParseTopology(strings.NewReader(text))
	if err == nil {
		t.Fatal("edge across non-adjacent hops accepted")
	}
	text2 := `
hop 0: 10.0.0.1
hop 1: *
hop 2: 10.0.0.3
`
	g, err := ParseTopology(strings.NewReader(text2))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumHops() != 3 {
		t.Fatalf("hops %d", g.NumHops())
	}
	// The star must be auto-connected both ways.
	star := g.Hop(1)[0]
	if g.InDegree(star) != 1 || g.OutDegree(star) != 1 {
		t.Fatalf("star degrees %d/%d", g.InDegree(star), g.OutDegree(star))
	}
}

func TestTopologyParseErrors(t *testing.T) {
	cases := []string{
		"hop x: 10.0.0.1",
		"hop 0 10.0.0.1",
		"nonsense line",
		"hop 0: 999.0.0.1",
		"hop 0: 10.0.0.1\nedge 10.0.0.1 10.0.0.9",
	}
	for _, c := range cases {
		if _, err := ParseTopology(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestJSONGraphRoundTrip(t *testing.T) {
	alloc := fakeroute.NewAddrAllocator(packet.AddrFrom4(10, 0, 0, 1))
	g := fakeroute.MeshedDiamond48(alloc, tDst)
	vs, es := EncodeGraph(g)
	back, err := DecodeGraph(vs, es)
	if err != nil {
		t.Fatal(err)
	}
	if !topo.Equal(g, back) {
		t.Fatal("JSON graph round trip mismatch")
	}
}

func TestJSONTraceRecord(t *testing.T) {
	net, _ := fakeroute.BuildScenario(1, tSrc, tDst, fakeroute.Fig1UnmeshedDiamond)
	p := probe.NewSimProber(net, tSrc, tDst)
	res := mda.Trace(p, mda.Config{Seed: 1})
	jt := NewJSONTrace(tSrc, tDst, "mda", res)
	if jt.Probes != res.Probes || !jt.Reached {
		t.Fatalf("record %+v", jt)
	}
	if len(jt.Diamonds) != 1 || jt.Diamonds[0].MaxWidth != 4 {
		t.Fatalf("diamonds %+v", jt.Diamonds)
	}
	var buf bytes.Buffer
	if err := jt.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if err := jt.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 || records[0].Dst != tDst.String() {
		t.Fatalf("read back %d records", len(records))
	}
	back, err := DecodeGraph(records[0].Vertices, records[0].Edges)
	if err != nil {
		t.Fatal(err)
	}
	if !topo.Equal(res.Graph, back) {
		t.Fatal("trace graph did not survive JSONL")
	}
}
