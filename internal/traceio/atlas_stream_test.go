package traceio

import (
	"bytes"
	"strings"
	"testing"
)

// streamSpecOf derives the stream spec a snapshot's encode commits to.
func streamSpecOf(s *AtlasSnapshot, shards int) AtlasStreamSpec {
	return AtlasStreamSpec{
		Pairs: s.Pairs, Nodes: len(s.Nodes), Edges: len(s.Edges),
		Routers: len(s.Routers), Shards: shards, Diamonds: s.Diamonds,
	}
}

// Re-streaming a v2 file's own shard blocks through the stream encoder
// reproduces the file byte for byte: the encoder is a faithful dual of
// the reader, and AppendAtlasShardBlock accepts every block a canonical
// encode produces.
func TestStreamEncoderRoundTripsReaderBlocks(t *testing.T) {
	t.Parallel()
	for _, shardNodes := range []int{2, 3, 4096} {
		s := wideSnapshot()
		var want bytes.Buffer
		if err := (AtlasCodec{ShardNodes: shardNodes}).Encode(&want, s); err != nil {
			t.Fatal(err)
		}
		path := writeV2File(t, s, shardNodes)
		r, err := OpenAtlasFile(path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()

		var got bytes.Buffer
		c := AtlasCodec{ShardNodes: shardNodes}
		enc, err := c.NewAtlasStreamEncoder(&got, streamSpecOf(s, r.NumShards()))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < r.NumShards(); i++ {
			sh, err := r.ReadShard(i)
			if err != nil {
				t.Fatal(err)
			}
			if err := enc.WriteBlock(sh); err != nil {
				t.Fatalf("shardNodes=%d shard %d: %v", shardNodes, i, err)
			}
		}
		if err := enc.Finish(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("shardNodes=%d: re-streamed bytes differ from materialized encode", shardNodes)
		}
	}
}

// EncodeAtlasStream is the pull-style wrapper over the same encoder.
func TestEncodeAtlasStream(t *testing.T) {
	t.Parallel()
	s := wideSnapshot()
	var want bytes.Buffer
	if err := EncodeAtlas(&want, s); err != nil {
		t.Fatal(err)
	}
	path := writeV2File(t, s, 0)
	r, err := OpenAtlasFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var got bytes.Buffer
	err = EncodeAtlasStream(&got, streamSpecOf(s, r.NumShards()), func(i int) (*AtlasShard, error) {
		return r.ReadShard(i)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("EncodeAtlasStream bytes differ from EncodeAtlas")
	}
}

// The encoder enforces the format invariants a hand-rolled producer
// could violate: totals must match the spec, blocks must arrive in
// order, fences must ascend.
func TestStreamEncoderRejectsInvalidSequences(t *testing.T) {
	t.Parallel()
	block := func(shard int, min, max string, nodes ...AtlasNodeV2) *AtlasShard {
		return &AtlasShard{
			Header: AtlasShardHeader{Shard: shard, Nodes: len(nodes), Min: min, Max: max},
			Nodes:  nodes,
		}
	}
	n1 := AtlasNodeV2{Addr: "10.0.0.1"}
	n2 := AtlasNodeV2{Addr: "10.0.0.2"}

	t.Run("node total mismatch", func(t *testing.T) {
		enc, err := AtlasCodec{}.NewAtlasStreamEncoder(&bytes.Buffer{}, AtlasStreamSpec{Nodes: 2, Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.WriteBlock(block(0, "10.0.0.1", "10.0.0.1", n1)); err != nil {
			t.Fatal(err)
		}
		if err := enc.Finish(); err == nil || !strings.Contains(err.Error(), "node") {
			t.Fatalf("Finish after 1 of 2 nodes: err = %v", err)
		}
	})
	t.Run("missing shard", func(t *testing.T) {
		enc, err := AtlasCodec{}.NewAtlasStreamEncoder(&bytes.Buffer{}, AtlasStreamSpec{Nodes: 2, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.WriteBlock(block(0, "10.0.0.1", "10.0.0.1", n1)); err != nil {
			t.Fatal(err)
		}
		if err := enc.Finish(); err == nil {
			t.Fatal("Finish after 1 of 2 shards: err = nil")
		}
	})
	t.Run("out of order shard", func(t *testing.T) {
		enc, err := AtlasCodec{}.NewAtlasStreamEncoder(&bytes.Buffer{}, AtlasStreamSpec{Nodes: 2, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.WriteBlock(block(1, "10.0.0.2", "10.0.0.2", n2)); err == nil {
			t.Fatal("shard 1 before shard 0: err = nil")
		}
	})
	t.Run("descending fences", func(t *testing.T) {
		enc, err := AtlasCodec{}.NewAtlasStreamEncoder(&bytes.Buffer{}, AtlasStreamSpec{Nodes: 2, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.WriteBlock(block(0, "10.0.0.2", "10.0.0.2", n2)); err != nil {
			t.Fatal(err)
		}
		if err := enc.WriteBlock(block(1, "10.0.0.1", "10.0.0.1", n1)); err == nil {
			t.Fatal("fence below previous max: err = nil")
		}
	})
	t.Run("unsorted nodes inside block", func(t *testing.T) {
		enc, err := AtlasCodec{}.NewAtlasStreamEncoder(&bytes.Buffer{}, AtlasStreamSpec{Nodes: 2, Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.WriteBlock(block(0, "10.0.0.2", "10.0.0.1", n2, n1)); err == nil {
			t.Fatal("descending nodes: err = nil")
		}
	})
	t.Run("fence not matching first node", func(t *testing.T) {
		enc, err := AtlasCodec{}.NewAtlasStreamEncoder(&bytes.Buffer{}, AtlasStreamSpec{Nodes: 1, Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.WriteBlock(block(0, "10.0.0.9", "10.0.0.1", n1)); err == nil {
			t.Fatal("min fence != first node: err = nil")
		}
	})
	t.Run("zero shards", func(t *testing.T) {
		if _, err := (AtlasCodec{}).NewAtlasStreamEncoder(&bytes.Buffer{}, AtlasStreamSpec{}); err == nil {
			t.Fatal("spec with 0 shards: err = nil")
		}
	})
	t.Run("multiple shards for empty snapshot", func(t *testing.T) {
		if _, err := (AtlasCodec{}).NewAtlasStreamEncoder(&bytes.Buffer{}, AtlasStreamSpec{Shards: 2}); err == nil {
			t.Fatal("2 shards for 0 nodes: err = nil")
		}
	})
}
