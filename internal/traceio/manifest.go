package traceio

import (
	"encoding/json"
	"fmt"
	"os"
)

// Fleet manifest format.
//
// A fleet manifest is the distributed counterpart of a Checkpoint: the
// coordinator's durable record of how a survey's job list was sharded
// into work units and how far each unit has progressed through the
// lease state machine (unclaimed → leased → shipped → merged). It is
// replaced atomically (WriteFileAtomic) on every durable transition —
// a unit's shard file landing on disk, the final merge completing — so
// a coordinator killed at any point restarts from exactly the set of
// units whose outputs are already durable. Lease state is deliberately
// ephemeral: a restarted coordinator demotes leased units to unclaimed
// and lets the runners re-claim them, because an in-flight lease names
// work that produced no durable bytes yet.

// Fleet unit states, in lease-state-machine order.
const (
	UnitUnclaimed = "unclaimed"
	UnitLeased    = "leased"
	UnitShipped   = "shipped"
	UnitMerged    = "merged"
)

// FleetManifestVersion is the current manifest format version.
const FleetManifestVersion = 1

// fleetKind tags fleet manifests so other tools' files are rejected.
const fleetKind = "fleet-survey"

// FleetUnit is one work unit: a contiguous span of the survey's
// deterministic job list.
type FleetUnit struct {
	ID    int `json:"id"`
	Start int `json:"start"`
	Count int `json:"count"`
	// State is one of UnitUnclaimed, UnitLeased, UnitShipped, UnitMerged.
	State string `json:"state"`
	// Runner identifies the runner whose shipment produced Shard (for
	// shipped/merged units) or the current leaseholder (for leased ones).
	Runner string `json:"runner,omitempty"`
	// Shard is the per-unit JSONL record file, relative to the manifest's
	// directory, present once shipped.
	Shard string `json:"shard,omitempty"`
	// Records is the record count of the shipped shard (equals Count).
	Records int `json:"records,omitempty"`
	// Attempts counts lease grants, so reassignment after runner death is
	// visible in the manifest.
	Attempts int `json:"attempts,omitempty"`
}

// FleetManifest records a distributed survey's sharding and progress.
type FleetManifest struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"`
	// OptionsHash is the survey options fingerprint (survey.Fingerprint):
	// a resumed coordinator refuses a manifest from a different
	// experiment, exactly as Checkpoint.Matches does.
	OptionsHash uint64 `json:"options_hash"`
	// Seed is the survey's base seed, kept readable for humans.
	Seed uint64 `json:"seed"`
	// Total is the length of the job list the units partition.
	Total int `json:"total"`
	// UnitSize is the span length units were cut at (the last unit may be
	// shorter).
	UnitSize int `json:"unit_size"`
	// Units lists every work unit in span order.
	Units []FleetUnit `json:"units"`
}

// WriteAtomic persists the manifest with a temp-file + rename + fsync.
func (m *FleetManifest) WriteAtomic(path string) error {
	m.Version = FleetManifestVersion
	m.Kind = fleetKind
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, append(data, '\n'), 0o644)
}

// Matches validates a manifest against the survey that wants to resume
// coordinating from it.
func (m *FleetManifest) Matches(optionsHash uint64, total, unitSize int) error {
	if m.OptionsHash != optionsHash {
		return fmt.Errorf("traceio: fleet manifest was written under different options (hash %#x, want %#x)", m.OptionsHash, optionsHash)
	}
	if m.Total != total {
		return fmt.Errorf("traceio: fleet manifest covers %d jobs, this survey selects %d", m.Total, total)
	}
	if m.UnitSize != unitSize {
		return fmt.Errorf("traceio: fleet manifest was sharded at unit size %d, this coordinator wants %d", m.UnitSize, unitSize)
	}
	return nil
}

// ReadFleetManifest loads and validates a manifest file. A missing file
// surfaces as an error satisfying os.IsNotExist. Validation checks the
// structural invariant the merge depends on: the units partition
// [0, Total) contiguously in ID order.
func ReadFleetManifest(path string) (*FleetManifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m := new(FleetManifest)
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("traceio: corrupt fleet manifest %s: %v", path, err)
	}
	if m.Version != FleetManifestVersion {
		return nil, fmt.Errorf("traceio: fleet manifest %s has version %d, want %d", path, m.Version, FleetManifestVersion)
	}
	if m.Kind != fleetKind {
		return nil, fmt.Errorf("traceio: %s is a %q file, not a fleet manifest", path, m.Kind)
	}
	next := 0
	for i, u := range m.Units {
		if u.ID != i || u.Start != next || u.Count <= 0 {
			return nil, fmt.Errorf("traceio: fleet manifest %s: unit %d does not partition the job list (start=%d count=%d, want start=%d)", path, u.ID, u.Start, u.Count, next)
		}
		switch u.State {
		case UnitUnclaimed, UnitLeased, UnitShipped, UnitMerged:
		default:
			return nil, fmt.Errorf("traceio: fleet manifest %s: unit %d has unknown state %q", path, u.ID, u.State)
		}
		next += u.Count
	}
	if next != m.Total {
		return nil, fmt.Errorf("traceio: fleet manifest %s: units cover %d jobs, total says %d", path, next, m.Total)
	}
	return m, nil
}
