package traceio

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

// Robustness: the atlas snapshot decoder parses files from disk that may
// be corrupt, truncated, or hostile. Errors are fine; panics and
// unbounded allocations are not (mirrors internal/packet/fuzz_test.go).

func decodeNeverPanics(t *testing.T, name string, data []byte) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: DecodeAtlas panicked on %q: %v", name, data, r)
		}
	}()
	_, _ = DecodeAtlas(bytes.NewReader(data))
}

func TestAtlasDecodeNeverPanicsOnGarbage(t *testing.T) {
	t.Parallel()
	check := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("DecodeAtlas panicked on %x: %v", data, r)
				ok = false
			}
		}()
		_, _ = DecodeAtlas(bytes.NewReader(data))
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Every prefix of a valid snapshot must error cleanly, never panic: a
// crash during a non-atomic copy produces exactly this shape.
func TestAtlasDecodeNeverPanicsOnTruncation(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := EncodeAtlas(&buf, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for n := 0; n < len(raw); n++ {
		decodeNeverPanics(t, "truncation", raw[:n])
	}
}

// Flipping any byte of a valid snapshot must not panic; most flips must
// also fail to decode (corruption detection), though flips inside string
// values may legitimately survive.
func TestAtlasDecodeNeverPanicsOnBitFlips(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := EncodeAtlas(&buf, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	mut := make([]byte, len(raw))
	for i := 0; i < len(raw); i++ {
		for _, b := range []byte{0x00, 0xff, raw[i] ^ 0x80, '-', '9'} {
			copy(mut, raw)
			mut[i] = b
			decodeNeverPanics(t, "bitflip", mut)
		}
	}
}

// FuzzDecodeAtlas is the native-fuzzing form of the hostile-input tests
// above, seeded with a valid snapshot, its truncations and hostile
// headers so the mutator starts near the format's structure. CI's
// fuzz-smoke job runs it for a short budget on every PR; locally:
//
//	go test -run='^$' -fuzz=FuzzDecodeAtlas -fuzztime=30s ./internal/traceio
func FuzzDecodeAtlas(f *testing.F) {
	var buf bytes.Buffer
	if err := EncodeAtlas(&buf, sampleSnapshot()); err != nil {
		f.Fatal(err)
	}
	raw := buf.Bytes()
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	f.Add([]byte(`{"version":1,"kind":"atlas","nodes":123456789012}` + "\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeAtlas(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decodes must re-encode without panicking: accepted
		// hostile inputs may not produce snapshots the encoder chokes on.
		if err := EncodeAtlas(io.Discard, snap); err != nil {
			t.Fatalf("decoded snapshot failed to re-encode: %v", err)
		}
	})
}

// Hostile section counts must not translate into allocations before the
// lines backing them exist.
func TestAtlasDecodeHostileHeaderCounts(t *testing.T) {
	t.Parallel()
	for _, h := range []string{
		`{"version":1,"kind":"atlas","nodes":123456789012}`,
		`{"version":1,"kind":"atlas","edges":2147483647}`,
		`{"version":1,"kind":"atlas","pairs":999999999,"diamonds":999999999}`,
	} {
		if _, err := DecodeAtlas(bytes.NewReader([]byte(h + "\n"))); err == nil {
			t.Errorf("header %s: decode accepted a file with no section lines", h)
		}
	}
}
