package traceio

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"mmlpt/internal/packet"
)

// AtlasReader is the random-access view of a snapshot file: it opens
// the file, reads the trailer, index, header and pairs section, and
// then serves point reads — one shard block, or the diamonds section —
// without ever decoding the rest. All methods are safe for concurrent
// use after Open (section reads go through ReadAt).
//
// v1 files have no index; Open falls back to a full decode and
// presents the whole snapshot as a single synthetic shard, so callers
// get one code path over both formats (old snapshots simply pay the
// monolithic load they always did).
type AtlasReader struct {
	f       *os.File
	size    int64
	header  AtlasHeader
	index   AtlasIndex
	mins    []packet.Addr // per-shard min fence (v2)
	maxs    []packet.Addr // per-shard max fence (v2)
	pairs   []AtlasPair
	v1shard *AtlasShard    // v1 fallback: the whole file as shard 0
	v1snap  *AtlasSnapshot // v1 fallback: retained for diamonds
}

// atlasTailProbe bounds the read that locates the trailer line.
const atlasTailProbe = 4096

// OpenAtlasFile opens a snapshot for random access.
func OpenAtlasFile(path string) (*AtlasReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := newAtlasReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

func newAtlasReader(f *os.File) (*AtlasReader, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	r := &AtlasReader{f: f, size: st.Size()}
	headLine, err := r.readLineAt(0)
	if err != nil {
		return nil, fmt.Errorf("traceio: atlas header: %v", err)
	}
	ls := newLineScanner(bytes.NewReader(headLine))
	h, err := decodeAtlasHeader(ls)
	if err != nil {
		return nil, err
	}
	r.header = h
	switch h.Version {
	case AtlasVersionV1:
		return r, r.openV1()
	case AtlasVersion:
		return r, r.openV2()
	default:
		return nil, fmt.Errorf("traceio: atlas version %d, want %d or %d", h.Version, AtlasVersionV1, AtlasVersion)
	}
}

// openV1 decodes the whole legacy file into one synthetic shard.
func (r *AtlasReader) openV1() error {
	if _, err := r.f.Seek(0, 0); err != nil {
		return err
	}
	s, err := DecodeAtlas(r.f)
	if err != nil {
		return err
	}
	succ := make([][]string, len(s.Nodes))
	for _, e := range s.Edges {
		succ[e[0]] = append(succ[e[0]], s.Nodes[e[1]].Addr)
	}
	routerOf := make(map[string]string)
	for _, rt := range s.Routers {
		for _, m := range rt.Addrs {
			routerOf[m] = rt.Addrs[0]
		}
	}
	sh := &AtlasShard{
		Header: AtlasShardHeader{Nodes: len(s.Nodes), Routers: len(s.Routers)},
	}
	if len(s.Nodes) > 0 {
		sh.Header.Min = s.Nodes[0].Addr
		sh.Header.Max = s.Nodes[len(s.Nodes)-1].Addr
	}
	sh.Nodes = make([]AtlasNodeV2, len(s.Nodes))
	for i, n := range s.Nodes {
		sh.Nodes[i] = AtlasNodeV2{Addr: n.Addr, Seen: n.Seen, Succ: succ[i], Router: routerOf[n.Addr]}
	}
	sh.Routers = s.Routers
	r.v1shard = sh
	r.v1snap = s
	r.pairs = s.Pairs
	return nil
}

// openV2 locates and validates the trailer, index and pairs section.
func (r *AtlasReader) openV2() error {
	probe := int64(atlasTailProbe)
	if probe > r.size {
		probe = r.size
	}
	tail := make([]byte, probe)
	if _, err := r.f.ReadAt(tail, r.size-probe); err != nil {
		return fmt.Errorf("traceio: atlas trailer: %v", err)
	}
	tail = bytes.TrimRight(tail, "\n")
	nl := bytes.LastIndexByte(tail, '\n')
	line := tail[nl+1:] // nl == -1 means the probe is one line
	var t atlasTrailer
	if err := json.Unmarshal(line, &t); err != nil {
		return fmt.Errorf("traceio: bad atlas trailer: %v", err)
	}
	if t.Kind != atlasTrailerKind || t.Version != AtlasVersion {
		return fmt.Errorf("traceio: bad atlas trailer (kind %q version %d)", t.Kind, t.Version)
	}
	if t.IndexOff <= 0 || t.IndexLen <= 0 || t.IndexLen > maxAtlasLine || t.IndexOff+t.IndexLen > r.size {
		return fmt.Errorf("traceio: atlas trailer index span [%d,+%d) out of bounds", t.IndexOff, t.IndexLen)
	}
	ib := make([]byte, t.IndexLen)
	if _, err := r.f.ReadAt(ib, t.IndexOff); err != nil {
		return fmt.Errorf("traceio: atlas index: %v", err)
	}
	if err := json.Unmarshal(bytes.TrimRight(ib, "\n"), &r.index); err != nil {
		return fmt.Errorf("traceio: bad atlas index: %v", err)
	}
	if r.index.Kind != atlasIndexKind {
		return fmt.Errorf("traceio: atlas index kind %q", r.index.Kind)
	}
	if len(r.index.Shards) != r.header.Shards || len(r.index.Shards) == 0 {
		return fmt.Errorf("traceio: atlas index lists %d shards, header claims %d", len(r.index.Shards), r.header.Shards)
	}
	r.mins = make([]packet.Addr, len(r.index.Shards))
	r.maxs = make([]packet.Addr, len(r.index.Shards))
	prevEnd := int64(0)
	var prevMax packet.Addr
	fenced := false
	for i, si := range r.index.Shards {
		if si.Nodes < 0 || si.Routers < 0 {
			return fmt.Errorf("traceio: atlas index shard %d: negative counts", i)
		}
		if si.Off < prevEnd || si.Len <= 0 || si.Off+si.Len > r.size {
			return fmt.Errorf("traceio: atlas index shard %d: span [%d,+%d) out of bounds", i, si.Off, si.Len)
		}
		prevEnd = si.Off + si.Len
		if si.Nodes == 0 {
			continue
		}
		lo, err := packet.ParseAddr(si.Min)
		if err != nil {
			return fmt.Errorf("traceio: atlas index shard %d min fence: %v", i, err)
		}
		hi, err := packet.ParseAddr(si.Max)
		if err != nil {
			return fmt.Errorf("traceio: atlas index shard %d max fence: %v", i, err)
		}
		if hi < lo || (fenced && lo <= prevMax) {
			return fmt.Errorf("traceio: atlas index shard %d fences out of order", i)
		}
		r.mins[i], r.maxs[i] = lo, hi
		prevMax, fenced = hi, true
	}
	if r.index.PairsOff < 0 || r.index.PairsLen < 0 || r.index.PairsOff+r.index.PairsLen > r.size {
		return fmt.Errorf("traceio: atlas index pairs span out of bounds")
	}
	if r.index.DiamondsOff < 0 || r.index.DiamondsLen < 0 || r.index.DiamondsOff+r.index.DiamondsLen > r.size {
		return fmt.Errorf("traceio: atlas index diamonds span out of bounds")
	}
	pb := make([]byte, r.index.PairsLen)
	if _, err := r.f.ReadAt(pb, r.index.PairsOff); err != nil {
		return fmt.Errorf("traceio: atlas pairs: %v", err)
	}
	pls := newLineScanner(bytes.NewReader(pb))
	pairs, err := decodePairs(pls, r.header.Pairs)
	if err != nil {
		return err
	}
	if err := pls.finish(); err != nil {
		return fmt.Errorf("traceio: atlas pairs section: %v", err)
	}
	r.pairs = pairs
	return nil
}

// readLineAt returns the '\n'-terminated line starting at off, growing
// the probe until a newline appears (bounded by maxAtlasLine).
func (r *AtlasReader) readLineAt(off int64) ([]byte, error) {
	for probe := int64(atlasTailProbe); ; probe *= 2 {
		if probe > maxAtlasLine {
			return nil, fmt.Errorf("line at %d exceeds %d bytes", off, maxAtlasLine)
		}
		if off+probe > r.size {
			probe = r.size - off
		}
		buf := make([]byte, probe)
		if _, err := r.f.ReadAt(buf, off); err != nil {
			return nil, err
		}
		if i := bytes.IndexByte(buf, '\n'); i >= 0 {
			return buf[:i+1], nil
		}
		if off+probe == r.size {
			return nil, fmt.Errorf("unterminated line at %d", off)
		}
	}
}

// Header returns the snapshot header (section totals, version).
func (r *AtlasReader) Header() AtlasHeader { return r.header }

// Version returns the file's format version.
func (r *AtlasReader) Version() int { return r.header.Version }

// Pairs returns the pair section, decoded at open time (it is small
// and every provenance answer needs it).
func (r *AtlasReader) Pairs() []AtlasPair { return r.pairs }

// NumShards returns the number of independently decodable shards.
func (r *AtlasReader) NumShards() int {
	if r.v1shard != nil {
		return 1
	}
	return len(r.index.Shards)
}

// ShardFor returns the shard whose address range owns addr. Every
// address maps to some shard; whether the shard actually holds a node
// for it is answered by decoding the shard.
func (r *AtlasReader) ShardFor(addr packet.Addr) int {
	if r.v1shard != nil {
		return 0
	}
	return shardForAddr(r.mins, addr)
}

// AtlasShard is one decoded v2 shard block: a contiguous address range
// of nodes plus the router components whose representative falls in the
// range.
type AtlasShard struct {
	Header  AtlasShardHeader
	Nodes   []AtlasNodeV2
	Routers []AtlasRouter
}

// ReadShard decodes shard i from its byte span. Safe for concurrent
// callers.
func (r *AtlasReader) ReadShard(i int) (*AtlasShard, error) {
	if r.v1shard != nil {
		if i != 0 {
			return nil, fmt.Errorf("traceio: atlas shard %d out of range (v1 file has 1)", i)
		}
		return r.v1shard, nil
	}
	if i < 0 || i >= len(r.index.Shards) {
		return nil, fmt.Errorf("traceio: atlas shard %d out of range (%d shards)", i, len(r.index.Shards))
	}
	si := r.index.Shards[i]
	buf := make([]byte, si.Len)
	if _, err := r.f.ReadAt(buf, si.Off); err != nil {
		return nil, fmt.Errorf("traceio: atlas shard %d: %v", i, err)
	}
	ls := newLineScanner(bytes.NewReader(buf))
	sh, err := decodeShardHeader(ls, i)
	if err != nil {
		return nil, err
	}
	if sh.Nodes != si.Nodes || sh.Routers != si.Routers {
		return nil, fmt.Errorf("traceio: atlas shard %d: block counts (%d,%d) disagree with index (%d,%d)",
			i, sh.Nodes, sh.Routers, si.Nodes, si.Routers)
	}
	out := &AtlasShard{
		Header:  sh,
		Nodes:   make([]AtlasNodeV2, 0, cappedPrealloc(sh.Nodes)),
		Routers: make([]AtlasRouter, 0, cappedPrealloc(sh.Routers)),
	}
	var prev packet.Addr
	for j := 0; j < sh.Nodes; j++ {
		n, addr, err := decodeV2Node(ls, prev, j > 0)
		if err != nil {
			return nil, err
		}
		if addr < r.mins[i] || addr > r.maxs[i] {
			return nil, fmt.Errorf("traceio: atlas shard %d: node %s outside fences", i, n.Addr)
		}
		prev = addr
		out.Nodes = append(out.Nodes, n)
	}
	for j := 0; j < sh.Routers; j++ {
		b, err := ls.next()
		if err != nil {
			return nil, err
		}
		var rt AtlasRouter
		if err := json.Unmarshal(b, &rt); err != nil {
			return nil, fmt.Errorf("traceio: atlas shard %d: bad router: %v", i, err)
		}
		if err := validateRouter(ls, &rt); err != nil {
			return nil, err
		}
		out.Routers = append(out.Routers, rt)
	}
	if err := ls.finish(); err != nil {
		return nil, fmt.Errorf("traceio: atlas shard %d: %v", i, err)
	}
	return out, nil
}

// ReadDiamonds decodes the diamond census section. Safe for concurrent
// callers.
func (r *AtlasReader) ReadDiamonds() ([]AtlasDiamond, error) {
	if r.v1snap != nil {
		return r.v1snap.Diamonds, nil
	}
	buf := make([]byte, r.index.DiamondsLen)
	if _, err := r.f.ReadAt(buf, r.index.DiamondsOff); err != nil {
		return nil, fmt.Errorf("traceio: atlas diamonds: %v", err)
	}
	ls := newLineScanner(bytes.NewReader(buf))
	ds, err := decodeDiamonds(ls, r.header.Diamonds)
	if err != nil {
		return nil, err
	}
	if err := ls.finish(); err != nil {
		return nil, fmt.Errorf("traceio: atlas diamonds section: %v", err)
	}
	return ds, nil
}

// Close releases the underlying file.
func (r *AtlasReader) Close() error {
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}
