package traceio

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Atlas snapshot format.
//
// A snapshot persists the cross-trace topology atlas (internal/atlas):
// the address-keyed multilevel graph with per-pair hop provenance, the
// aggregated alias components (routers), and the cross-pair diamond
// census. The file is line-oriented JSON — a versioned header line with
// section counts, then one line per pair, node, edge, router and
// diamond, in that order:
//
//	{"version":1,"kind":"atlas","pairs":2,"nodes":3,...}
//	{"pair":0,"src":"192.0.2.1","dst":"203.0.113.1"}
//	{"addr":"10.0.0.1","seen":[[0,1],[1,2]]}
//	[0,2]
//	["10.0.0.1","10.0.0.2"]
//	{"div":"10.0.0.1","conv":"10.0.0.9",...}
//
// Every section is emitted in canonical order (pairs by index, nodes by
// address, edges by (from, to) node index, routers by first address,
// diamonds by (div, conv) label), so for a fixed survey the snapshot is
// byte-identical whatever worker or shard count produced it, and
// Encode(Decode(b)) == b — the byte-stable round trip resume-style
// tooling depends on.

// AtlasVersion is the current snapshot format version.
const AtlasVersion = 1

// atlasKind guards against loading some other tool's JSONL file.
const atlasKind = "atlas"

// maxAtlasLine bounds one snapshot line; a header or record longer than
// this is hostile or corrupt, not big.
const maxAtlasLine = 1 << 24

// preallocCap bounds slice preallocation from header counts, so a
// hostile header claiming 10^12 nodes cannot allocate terabytes before
// the decoder notices the file is short.
const preallocCap = 1 << 16

// AtlasHeader is the snapshot's first line.
type AtlasHeader struct {
	Version  int    `json:"version"`
	Kind     string `json:"kind"`
	Pairs    int    `json:"pairs"`
	Nodes    int    `json:"nodes"`
	Edges    int    `json:"edges"`
	Routers  int    `json:"routers"`
	Diamonds int    `json:"diamonds"`
}

// AtlasPair records one merged trace's identity.
type AtlasPair struct {
	Pair int    `json:"pair"`
	Src  string `json:"src"`
	Dst  string `json:"dst"`
}

// AtlasNode is one address of the multilevel graph with its provenance:
// Seen lists the (pair index, hop) observations, sorted.
type AtlasNode struct {
	Addr string   `json:"addr"`
	Seen [][2]int `json:"seen"`
}

// AtlasEdge is one directed link, by node index: [from, to].
type AtlasEdge [2]int

// AtlasRouter is one aggregated alias component, addresses sorted.
type AtlasRouter struct {
	Addrs []string `json:"addrs"`
}

// AtlasDiamond is one distinct diamond's census entry across all pairs.
type AtlasDiamond struct {
	Div  string `json:"div"`
	Conv string `json:"conv"`
	// Count is the number of encounters; Pairs the distinct pair
	// indices that saw the diamond, sorted.
	Count int   `json:"count"`
	Pairs []int `json:"pairs"`
	// MaxWidth and MaxLength are maxima over all encounters.
	MaxWidth  int `json:"max_width"`
	MaxLength int `json:"max_length"`
}

// AtlasSnapshot is the decoded snapshot.
type AtlasSnapshot struct {
	Pairs    []AtlasPair
	Nodes    []AtlasNode
	Edges    []AtlasEdge
	Routers  []AtlasRouter
	Diamonds []AtlasDiamond
}

// EncodeAtlas writes the snapshot. The caller is responsible for the
// canonical ordering documented above; EncodeAtlas writes sections
// verbatim.
func EncodeAtlas(w io.Writer, s *AtlasSnapshot) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	h := AtlasHeader{
		Version: AtlasVersion, Kind: atlasKind,
		Pairs: len(s.Pairs), Nodes: len(s.Nodes), Edges: len(s.Edges),
		Routers: len(s.Routers), Diamonds: len(s.Diamonds),
	}
	if err := enc.Encode(&h); err != nil {
		return err
	}
	for i := range s.Pairs {
		if err := enc.Encode(&s.Pairs[i]); err != nil {
			return err
		}
	}
	for i := range s.Nodes {
		if err := enc.Encode(&s.Nodes[i]); err != nil {
			return err
		}
	}
	for i := range s.Edges {
		if err := enc.Encode(&s.Edges[i]); err != nil {
			return err
		}
	}
	for i := range s.Routers {
		if err := enc.Encode(&s.Routers[i]); err != nil {
			return err
		}
	}
	for i := range s.Diamonds {
		if err := enc.Encode(&s.Diamonds[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeAtlas reads and validates a snapshot. Corrupt, truncated or
// hostile input returns an error; it never panics and never allocates
// proportionally to unverified header claims.
func DecodeAtlas(r io.Reader) (*AtlasSnapshot, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxAtlasLine)
	line := 0
	next := func() ([]byte, error) {
		for sc.Scan() {
			line++
			if len(sc.Bytes()) > 0 {
				return sc.Bytes(), nil
			}
		}
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("traceio: atlas line %d: %v", line+1, err)
		}
		return nil, fmt.Errorf("traceio: atlas truncated after line %d", line)
	}
	hb, err := next()
	if err != nil {
		return nil, err
	}
	var h AtlasHeader
	if err := json.Unmarshal(hb, &h); err != nil {
		return nil, fmt.Errorf("traceio: bad atlas header: %v", err)
	}
	if h.Kind != atlasKind {
		return nil, fmt.Errorf("traceio: not an atlas snapshot (kind %q)", h.Kind)
	}
	if h.Version != AtlasVersion {
		return nil, fmt.Errorf("traceio: atlas version %d, want %d", h.Version, AtlasVersion)
	}
	if h.Pairs < 0 || h.Nodes < 0 || h.Edges < 0 || h.Routers < 0 || h.Diamonds < 0 {
		return nil, fmt.Errorf("traceio: atlas header has negative section count")
	}
	capped := func(n int) int {
		if n > preallocCap {
			return preallocCap
		}
		return n
	}
	s := &AtlasSnapshot{
		Pairs:    make([]AtlasPair, 0, capped(h.Pairs)),
		Nodes:    make([]AtlasNode, 0, capped(h.Nodes)),
		Edges:    make([]AtlasEdge, 0, capped(h.Edges)),
		Routers:  make([]AtlasRouter, 0, capped(h.Routers)),
		Diamonds: make([]AtlasDiamond, 0, capped(h.Diamonds)),
	}
	for i := 0; i < h.Pairs; i++ {
		b, err := next()
		if err != nil {
			return nil, err
		}
		var p AtlasPair
		if err := json.Unmarshal(b, &p); err != nil {
			return nil, fmt.Errorf("traceio: atlas line %d: bad pair: %v", line, err)
		}
		if p.Pair < 0 {
			return nil, fmt.Errorf("traceio: atlas line %d: negative pair index", line)
		}
		s.Pairs = append(s.Pairs, p)
	}
	for i := 0; i < h.Nodes; i++ {
		b, err := next()
		if err != nil {
			return nil, err
		}
		var n AtlasNode
		if err := json.Unmarshal(b, &n); err != nil {
			return nil, fmt.Errorf("traceio: atlas line %d: bad node: %v", line, err)
		}
		for _, o := range n.Seen {
			if o[0] < 0 || o[1] < 0 {
				return nil, fmt.Errorf("traceio: atlas line %d: negative provenance", line)
			}
		}
		s.Nodes = append(s.Nodes, n)
	}
	for i := 0; i < h.Edges; i++ {
		b, err := next()
		if err != nil {
			return nil, err
		}
		var e AtlasEdge
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("traceio: atlas line %d: bad edge: %v", line, err)
		}
		if e[0] < 0 || e[0] >= h.Nodes || e[1] < 0 || e[1] >= h.Nodes {
			return nil, fmt.Errorf("traceio: atlas line %d: edge index out of range", line)
		}
		s.Edges = append(s.Edges, e)
	}
	for i := 0; i < h.Routers; i++ {
		b, err := next()
		if err != nil {
			return nil, err
		}
		var rt AtlasRouter
		if err := json.Unmarshal(b, &rt); err != nil {
			return nil, fmt.Errorf("traceio: atlas line %d: bad router: %v", line, err)
		}
		if len(rt.Addrs) < 2 {
			return nil, fmt.Errorf("traceio: atlas line %d: router with %d addresses", line, len(rt.Addrs))
		}
		s.Routers = append(s.Routers, rt)
	}
	for i := 0; i < h.Diamonds; i++ {
		b, err := next()
		if err != nil {
			return nil, err
		}
		var d AtlasDiamond
		if err := json.Unmarshal(b, &d); err != nil {
			return nil, fmt.Errorf("traceio: atlas line %d: bad diamond: %v", line, err)
		}
		if d.Count < 0 {
			return nil, fmt.Errorf("traceio: atlas line %d: negative diamond count", line)
		}
		for _, p := range d.Pairs {
			if p < 0 {
				return nil, fmt.Errorf("traceio: atlas line %d: negative diamond pair", line)
			}
		}
		s.Diamonds = append(s.Diamonds, d)
	}
	for sc.Scan() {
		if len(sc.Bytes()) > 0 {
			return nil, fmt.Errorf("traceio: atlas has trailing data after line %d", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("traceio: atlas after line %d: %v", line, err)
	}
	return s, nil
}

// WriteAtlasFile persists the snapshot atomically (temp + fsync +
// rename), so a crash mid-save leaves the previous snapshot intact.
func WriteAtlasFile(path string, s *AtlasSnapshot) error {
	var buf bytes.Buffer
	if err := EncodeAtlas(&buf, s); err != nil {
		return err
	}
	return WriteFileAtomic(path, buf.Bytes(), 0o644)
}

// ReadAtlasFile loads a snapshot from disk.
func ReadAtlasFile(path string) (*AtlasSnapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeAtlas(f)
}
