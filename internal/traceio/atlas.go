package traceio

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"mmlpt/internal/packet"
)

// Atlas snapshot formats.
//
// A snapshot persists the cross-trace topology atlas (internal/atlas):
// the address-keyed multilevel graph with per-pair hop provenance, the
// aggregated alias components (routers), and the cross-pair diamond
// census. Two formats exist, both line-oriented JSON:
//
// Version 1 (legacy, still decoded) is a flat sequence — a versioned
// header line with section counts, then one line per pair, node, edge,
// router and diamond, in that order. Answering any query requires
// decoding the whole file.
//
// Version 2 (written by default) is sectioned and indexed: the node and
// router sections are split into address-range shards, each preceded by
// a shard-header line carrying its address fences, and the file ends
// with an index line of per-shard byte offsets plus a fixed trailer
// line locating the index. A reader can open the file, read the
// trailer and index, and decode only the shards a query touches
// (AtlasReader); DecodeAtlas still accepts either version as a plain
// stream. See atlas_v2.go for the exact v2 grammar.
//
// Every section of either version is emitted in canonical order (pairs
// by index, nodes by ascending address, edges by (from, to) node index,
// routers by first address, diamonds by (div, conv) label), so for a
// fixed survey the snapshot is byte-identical whatever worker or shard
// count produced it, and re-encoding a decoded snapshot with the same
// codec configuration reproduces the identical bytes — the byte-stable
// round trip resume-style tooling depends on.

// AtlasVersion is the snapshot format version EncodeAtlas writes.
const AtlasVersion = 2

// AtlasVersionV1 is the legacy flat format, still decoded but no
// longer written by default.
const AtlasVersionV1 = 1

// atlasKind guards against loading some other tool's JSONL file.
const atlasKind = "atlas"

// maxAtlasLine bounds one snapshot line; a header or record longer than
// this is hostile or corrupt, not big.
const maxAtlasLine = 1 << 24

// preallocCap bounds slice preallocation from header counts, so a
// hostile header claiming 10^12 nodes cannot allocate terabytes before
// the decoder notices the file is short.
const preallocCap = 1 << 16

// AtlasHeader is the snapshot's first line. Shards is the number of
// node/router sections (v2 only; omitted in v1 files).
type AtlasHeader struct {
	Version  int    `json:"version"`
	Kind     string `json:"kind"`
	Pairs    int    `json:"pairs"`
	Nodes    int    `json:"nodes"`
	Edges    int    `json:"edges"`
	Routers  int    `json:"routers"`
	Diamonds int    `json:"diamonds"`
	Shards   int    `json:"shards,omitempty"`
}

// AtlasPair records one merged trace's identity.
type AtlasPair struct {
	Pair int    `json:"pair"`
	Src  string `json:"src"`
	Dst  string `json:"dst"`
}

// AtlasNode is one address of the multilevel graph with its provenance:
// Seen lists the (pair index, hop) observations, sorted.
type AtlasNode struct {
	Addr string   `json:"addr"`
	Seen [][2]int `json:"seen"`
}

// AtlasEdge is one directed link, by node index: [from, to].
type AtlasEdge [2]int

// AtlasRouter is one aggregated alias component, addresses sorted.
type AtlasRouter struct {
	Addrs []string `json:"addrs"`
}

// AtlasDiamond is one distinct diamond's census entry across all pairs.
type AtlasDiamond struct {
	Div  string `json:"div"`
	Conv string `json:"conv"`
	// Count is the number of encounters; Pairs the distinct pair
	// indices that saw the diamond, sorted.
	Count int   `json:"count"`
	Pairs []int `json:"pairs"`
	// MaxWidth and MaxLength are maxima over all encounters.
	MaxWidth  int `json:"max_width"`
	MaxLength int `json:"max_length"`
}

// AtlasSnapshot is the decoded snapshot.
type AtlasSnapshot struct {
	Pairs    []AtlasPair
	Nodes    []AtlasNode
	Edges    []AtlasEdge
	Routers  []AtlasRouter
	Diamonds []AtlasDiamond
}

// DefaultAtlasShardNodes is the v2 encoder's target node count per
// shard when AtlasCodec.ShardNodes is zero. Shard layout is a pure
// function of (snapshot, codec config), never of the producing
// process's worker or ingestion-shard count.
const DefaultAtlasShardNodes = 4096

// AtlasCodec is the versioned snapshot codec. The zero value writes
// the current format (AtlasVersion) with the default shard sizing;
// Decode sniffs the version from the header and accepts either format.
// Callers that must keep producing the legacy flat format set Version
// explicitly.
type AtlasCodec struct {
	// Version selects the format Encode writes: AtlasVersionV1,
	// AtlasVersion, or 0 for the current default.
	Version int
	// ShardNodes is the v2 target node count per shard (0 = default).
	// Smaller shards mean finer-grained lazy loading at the cost of
	// index size. Byte-identity of encoded snapshots holds per
	// ShardNodes value.
	ShardNodes int
}

// Encode writes the snapshot in the codec's configured version. The
// caller is responsible for the canonical section ordering documented
// above; Encode writes section contents verbatim.
func (c AtlasCodec) Encode(w io.Writer, s *AtlasSnapshot) error {
	v := c.Version
	if v == 0 {
		v = AtlasVersion
	}
	switch v {
	case AtlasVersionV1:
		return encodeAtlasV1(w, s)
	case AtlasVersion:
		return c.EncodeV2(w, s)
	default:
		return fmt.Errorf("traceio: cannot encode atlas version %d", v)
	}
}

// Decode reads and validates a snapshot of either version, sniffing the
// header. Corrupt, truncated or hostile input returns an error; it
// never panics and never allocates proportionally to unverified header
// claims.
func (c AtlasCodec) Decode(r io.Reader) (*AtlasSnapshot, error) {
	ls := newLineScanner(r)
	h, err := decodeAtlasHeader(ls)
	if err != nil {
		return nil, err
	}
	switch h.Version {
	case AtlasVersionV1:
		return decodeV1Body(ls, h)
	case AtlasVersion:
		return decodeV2Body(ls, h)
	default:
		return nil, fmt.Errorf("traceio: atlas version %d, want %d or %d", h.Version, AtlasVersionV1, AtlasVersion)
	}
}

// EncodeAtlas writes the snapshot in the current default format (v2).
// It is a thin wrapper over AtlasCodec; callers needing the legacy
// format or custom shard sizing use the codec directly.
func EncodeAtlas(w io.Writer, s *AtlasSnapshot) error {
	return AtlasCodec{}.Encode(w, s)
}

// DecodeAtlas reads a snapshot of either format version. Thin wrapper
// over AtlasCodec.Decode.
func DecodeAtlas(r io.Reader) (*AtlasSnapshot, error) {
	return AtlasCodec{}.Decode(r)
}

// lineScanner yields non-empty lines with position tracking, shared by
// both format decoders.
type lineScanner struct {
	sc   *bufio.Scanner
	line int
}

func newLineScanner(r io.Reader) *lineScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxAtlasLine)
	return &lineScanner{sc: sc}
}

func (ls *lineScanner) next() ([]byte, error) {
	for ls.sc.Scan() {
		ls.line++
		if len(ls.sc.Bytes()) > 0 {
			return ls.sc.Bytes(), nil
		}
	}
	if err := ls.sc.Err(); err != nil {
		return nil, fmt.Errorf("traceio: atlas line %d: %v", ls.line+1, err)
	}
	return nil, fmt.Errorf("traceio: atlas truncated after line %d", ls.line)
}

// finish errors if any non-empty line remains.
func (ls *lineScanner) finish() error {
	for ls.sc.Scan() {
		if len(ls.sc.Bytes()) > 0 {
			return fmt.Errorf("traceio: atlas has trailing data after line %d", ls.line)
		}
	}
	if err := ls.sc.Err(); err != nil {
		return fmt.Errorf("traceio: atlas after line %d: %v", ls.line, err)
	}
	return nil
}

func decodeAtlasHeader(ls *lineScanner) (AtlasHeader, error) {
	var h AtlasHeader
	hb, err := ls.next()
	if err != nil {
		return h, err
	}
	if err := json.Unmarshal(hb, &h); err != nil {
		return h, fmt.Errorf("traceio: bad atlas header: %v", err)
	}
	if h.Kind != atlasKind {
		return h, fmt.Errorf("traceio: not an atlas snapshot (kind %q)", h.Kind)
	}
	if h.Pairs < 0 || h.Nodes < 0 || h.Edges < 0 || h.Routers < 0 || h.Diamonds < 0 || h.Shards < 0 {
		return h, fmt.Errorf("traceio: atlas header has negative section count")
	}
	return h, nil
}

func cappedPrealloc(n int) int {
	if n > preallocCap {
		return preallocCap
	}
	return n
}

// decodePairs reads h.Pairs pair lines.
func decodePairs(ls *lineScanner, n int) ([]AtlasPair, error) {
	out := make([]AtlasPair, 0, cappedPrealloc(n))
	for i := 0; i < n; i++ {
		b, err := ls.next()
		if err != nil {
			return nil, err
		}
		var p AtlasPair
		if err := json.Unmarshal(b, &p); err != nil {
			return nil, fmt.Errorf("traceio: atlas line %d: bad pair: %v", ls.line, err)
		}
		if p.Pair < 0 {
			return nil, fmt.Errorf("traceio: atlas line %d: negative pair index", ls.line)
		}
		out = append(out, p)
	}
	return out, nil
}

// decodeDiamonds reads n diamond lines.
func decodeDiamonds(ls *lineScanner, n int) ([]AtlasDiamond, error) {
	out := make([]AtlasDiamond, 0, cappedPrealloc(n))
	for i := 0; i < n; i++ {
		b, err := ls.next()
		if err != nil {
			return nil, err
		}
		var d AtlasDiamond
		if err := json.Unmarshal(b, &d); err != nil {
			return nil, fmt.Errorf("traceio: atlas line %d: bad diamond: %v", ls.line, err)
		}
		if d.Count < 0 {
			return nil, fmt.Errorf("traceio: atlas line %d: negative diamond count", ls.line)
		}
		for _, p := range d.Pairs {
			if p < 0 {
				return nil, fmt.Errorf("traceio: atlas line %d: negative diamond pair", ls.line)
			}
		}
		out = append(out, d)
	}
	return out, nil
}

// validateNode checks one decoded node's invariants: parseable address,
// strictly ascending over the previous node, non-negative provenance.
// These are canonical-order facts every real snapshot satisfies, and
// validating them at decode time is what guarantees any accepted
// snapshot re-encodes cleanly as v2 (whose shard fences need ordered,
// parseable addresses).
func validateNode(ls *lineScanner, addrStr string, seen [][2]int, prev packet.Addr, havePrev bool) (packet.Addr, error) {
	addr, err := packet.ParseAddr(addrStr)
	if err != nil {
		return 0, fmt.Errorf("traceio: atlas line %d: node address %q: %v", ls.line, addrStr, err)
	}
	if havePrev && addr <= prev {
		return 0, fmt.Errorf("traceio: atlas line %d: node %s out of canonical order", ls.line, addrStr)
	}
	for _, o := range seen {
		if o[0] < 0 || o[1] < 0 {
			return 0, fmt.Errorf("traceio: atlas line %d: negative provenance", ls.line)
		}
	}
	return addr, nil
}

// validateRouter checks a decoded router: at least two members and a
// parseable representative (first address), which v2 shard assignment
// keys on.
func validateRouter(ls *lineScanner, rt *AtlasRouter) error {
	if len(rt.Addrs) < 2 {
		return fmt.Errorf("traceio: atlas line %d: router with %d addresses", ls.line, len(rt.Addrs))
	}
	if _, err := packet.ParseAddr(rt.Addrs[0]); err != nil {
		return fmt.Errorf("traceio: atlas line %d: router representative %q: %v", ls.line, rt.Addrs[0], err)
	}
	return nil
}

// encodeAtlasV1 writes the legacy flat format.
func encodeAtlasV1(w io.Writer, s *AtlasSnapshot) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	h := AtlasHeader{
		Version: AtlasVersionV1, Kind: atlasKind,
		Pairs: len(s.Pairs), Nodes: len(s.Nodes), Edges: len(s.Edges),
		Routers: len(s.Routers), Diamonds: len(s.Diamonds),
	}
	if err := enc.Encode(&h); err != nil {
		return err
	}
	for i := range s.Pairs {
		if err := enc.Encode(&s.Pairs[i]); err != nil {
			return err
		}
	}
	for i := range s.Nodes {
		if err := enc.Encode(&s.Nodes[i]); err != nil {
			return err
		}
	}
	for i := range s.Edges {
		if err := enc.Encode(&s.Edges[i]); err != nil {
			return err
		}
	}
	for i := range s.Routers {
		if err := enc.Encode(&s.Routers[i]); err != nil {
			return err
		}
	}
	for i := range s.Diamonds {
		if err := enc.Encode(&s.Diamonds[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// decodeV1Body reads the legacy flat sections after the header.
func decodeV1Body(ls *lineScanner, h AtlasHeader) (*AtlasSnapshot, error) {
	s := &AtlasSnapshot{
		Nodes:   make([]AtlasNode, 0, cappedPrealloc(h.Nodes)),
		Edges:   make([]AtlasEdge, 0, cappedPrealloc(h.Edges)),
		Routers: make([]AtlasRouter, 0, cappedPrealloc(h.Routers)),
	}
	var err error
	if s.Pairs, err = decodePairs(ls, h.Pairs); err != nil {
		return nil, err
	}
	var prev packet.Addr
	for i := 0; i < h.Nodes; i++ {
		b, err := ls.next()
		if err != nil {
			return nil, err
		}
		var n AtlasNode
		if err := json.Unmarshal(b, &n); err != nil {
			return nil, fmt.Errorf("traceio: atlas line %d: bad node: %v", ls.line, err)
		}
		addr, err := validateNode(ls, n.Addr, n.Seen, prev, i > 0)
		if err != nil {
			return nil, err
		}
		prev = addr
		s.Nodes = append(s.Nodes, n)
	}
	for i := 0; i < h.Edges; i++ {
		b, err := ls.next()
		if err != nil {
			return nil, err
		}
		var e AtlasEdge
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("traceio: atlas line %d: bad edge: %v", ls.line, err)
		}
		if e[0] < 0 || e[0] >= h.Nodes || e[1] < 0 || e[1] >= h.Nodes {
			return nil, fmt.Errorf("traceio: atlas line %d: edge index out of range", ls.line)
		}
		s.Edges = append(s.Edges, e)
	}
	for i := 0; i < h.Routers; i++ {
		b, err := ls.next()
		if err != nil {
			return nil, err
		}
		var rt AtlasRouter
		if err := json.Unmarshal(b, &rt); err != nil {
			return nil, fmt.Errorf("traceio: atlas line %d: bad router: %v", ls.line, err)
		}
		if err := validateRouter(ls, &rt); err != nil {
			return nil, err
		}
		s.Routers = append(s.Routers, rt)
	}
	if s.Diamonds, err = decodeDiamonds(ls, h.Diamonds); err != nil {
		return nil, err
	}
	if err := ls.finish(); err != nil {
		return nil, err
	}
	return s, nil
}

// WriteAtlasFile persists the snapshot atomically (temp + fsync +
// rename) in the current default format, so a crash mid-save leaves the
// previous snapshot intact.
func WriteAtlasFile(path string, s *AtlasSnapshot) error {
	var buf bytes.Buffer
	if err := EncodeAtlas(&buf, s); err != nil {
		return err
	}
	return WriteFileAtomic(path, buf.Bytes(), 0o644)
}

// ReadAtlasFile loads a snapshot of either version from disk.
func ReadAtlasFile(path string) (*AtlasSnapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeAtlas(f)
}
