package traceio

import (
	"encoding/json"
	"io"
)

// Ground-truth evaluation records.
//
// An EvalRecord scores one (scenario, seed) instance of the evaluation
// harness (internal/groundtruth): the MDA and the MDA-Lite are run over
// the same generated network and each discovered topology is diffed
// against the generator's known ground truth. Records are byte-stable
// JSONL — encoding, decoding and re-encoding yields identical bytes, and
// a run's record stream is identical for every worker count — so a
// committed file of them can serve as a golden baseline that CI diffs
// against within tolerances (cmd/eval -golden).

// AlgoEval is the scored outcome of one algorithm over one scenario
// instance (all pairs of the instance aggregated).
type AlgoEval struct {
	Algo string `json:"algo"`
	// Probes is the total packets sent across the instance's pairs,
	// retries and node-control probes included.
	Probes uint64 `json:"probes"`
	// Reached counts pairs whose trace reached the destination.
	Reached int `json:"reached"`
	// Switched counts MDA-Lite traces that switched to the full MDA.
	Switched int `json:"switched"`
	// Recall: the fraction of ground-truth vertices/edges/diamonds the
	// algorithm discovered (stars excluded; see topo.Diff).
	VertexRecall  float64 `json:"vertex_recall"`
	EdgeRecall    float64 `json:"edge_recall"`
	DiamondRecall float64 `json:"diamond_recall"`
	// Precision: the fraction of discovered vertices/edges that exist in
	// the ground truth.
	VertexPrecision float64 `json:"vertex_precision"`
	EdgePrecision   float64 `json:"edge_precision"`
	// FalseVertices/FalseEdges are the absolute discovery-side
	// mismatches behind the precision figures ("false links").
	FalseVertices int `json:"false_vertices"`
	FalseEdges    int `json:"false_edges"`
	// PriorHops counts hops confirmed from an atlas prior across the
	// instance's traces; PriorStale counts traces whose prior mismatched
	// the live route and fell back to full discovery. Zero (and omitted)
	// for unseeded algorithms, keeping pre-prior goldens byte-stable.
	PriorHops  int `json:"prior_hops,omitempty"`
	PriorStale int `json:"prior_stale,omitempty"`
}

// EvalRecord is one (scenario, seed) evaluation: MDA and MDA-Lite over
// identical ground truth, plus the paper's accuracy/cost headline
// numbers derived from the pair of runs.
type EvalRecord struct {
	Scenario string `json:"scenario"`
	// SeedIndex is the position in the seed sweep; Seed the derived seed
	// actually used.
	SeedIndex int    `json:"seed_index"`
	Seed      uint64 `json:"seed"`
	// Pairs is how many (source, destination) routes the instance holds.
	Pairs int `json:"pairs"`
	// FlowBased marks scenarios whose balancers are all flow-based, i.e.
	// the MDA's assumptions hold and the paper's accuracy claim applies.
	FlowBased bool `json:"flow_based"`

	MDA     AlgoEval `json:"mda"`
	MDALite AlgoEval `json:"mdalite"`

	// ProbeSavings is 1 - mdalite.Probes/mda.Probes: the fraction of the
	// full MDA's probe cost the MDA-Lite avoided.
	ProbeSavings float64 `json:"probe_savings"`
	// RelativeEdgeRecall is mdalite.EdgeRecall/mda.EdgeRecall (1 when
	// the MDA found nothing): the paper's "MDA-Lite recovers nearly the
	// same topology" metric.
	RelativeEdgeRecall float64 `json:"relative_edge_recall"`

	// Prior-seeded re-trace columns, present only when the harness ran
	// with the atlas-prior tracer (cmd/eval -tracer mdalite-prior). A
	// first unseeded pass builds an atlas snapshot; MDALitePrior re-traces
	// the (possibly churned) network seeded from it, and MDALiteRetrace is
	// the unseeded re-trace baseline over the same network. All fields are
	// omitted on unseeded runs, so pre-prior records re-encode
	// byte-identically.
	MDALitePrior   *AlgoEval `json:"mdalite_prior,omitempty"`
	MDALiteRetrace *AlgoEval `json:"mdalite_retrace,omitempty"`
	// PriorProbeSavings is 1 - mdalite_prior.Probes/mdalite_retrace.Probes:
	// the re-survey cost the prior avoided.
	PriorProbeSavings float64 `json:"prior_probe_savings,omitempty"`
	// PriorRelativeEdgeRecall is the prior-seeded re-trace's edge recall
	// relative to the unseeded re-trace baseline (1 when the baseline
	// found nothing).
	PriorRelativeEdgeRecall float64 `json:"prior_relative_edge_recall,omitempty"`
	// PriorStalePairs counts re-traced pairs whose prior was abandoned
	// (route churn between the passes, or an under-corroborated prior).
	PriorStalePairs int `json:"prior_stale_pairs,omitempty"`
}

// WriteJSONL appends the record as one JSON line (JSONLWriter
// compatible).
func (r *EvalRecord) WriteJSONL(w io.Writer) error {
	return json.NewEncoder(w).Encode(r)
}

// ReadEvalRecords decodes one EvalRecord per line until EOF.
func ReadEvalRecords(r io.Reader) ([]*EvalRecord, error) {
	var out []*EvalRecord
	err := DecodeEvalRecords(r, func(er *EvalRecord) error {
		out = append(out, er)
		return nil
	})
	return out, err
}

// DecodeEvalRecords streams records to fn until EOF or the first error.
func DecodeEvalRecords(r io.Reader, fn func(*EvalRecord) error) error {
	dec := json.NewDecoder(r)
	for {
		er := new(EvalRecord)
		if err := dec.Decode(er); err == io.EOF {
			return nil
		} else if err != nil {
			return err
		}
		if err := fn(er); err != nil {
			return err
		}
	}
}
