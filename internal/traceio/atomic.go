package traceio

import (
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic replaces path with data so that a crash at any point
// leaves either the old file or the new one, never a truncated mix: the
// data is written to a temporary file in the same directory, fsynced,
// and renamed over path, and the directory entry is fsynced too.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	return WriteFileAtomicStream(path, perm, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// WriteFileAtomicStream is WriteFileAtomic for streamed content: write
// renders straight into the temporary file, so the replacement bytes
// never need to sit in memory — the path a multi-gigabyte snapshot
// encode takes. The temporary is removed when write or any of the
// durability steps fail.
func WriteFileAtomicStream(path string, perm os.FileMode, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if err := write(tmp); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Chmod(tmpName, perm); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename within it is durable. Some
// platforms refuse to fsync directories; that is not a durability hole
// we can fix, so such errors are ignored.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}
