package traceio

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleRecord(i int) *SurveyRecord {
	return &SurveyRecord{
		PairIndex: i,
		HasLB:     i%2 == 0,
		Trace: JSONTrace{
			Src: "192.0.2.1", Dst: "203.0.113.9", Algorithm: "mda",
			Probes: uint64(100 + i), Reached: true,
			Vertices: []JSONVertex{{Addr: "10.0.0.1", Hop: 0}, {Addr: "*", Hop: 1}},
			Edges:    []JSONEdge{{From: 0, To: 1}},
		},
		Diamonds: []SurveyDiamond{{
			Div: "10.0.0.1", Conv: "10.0.0.9",
			MaxLength: 2, MaxWidth: 3, Meshed: true, MeshedRatio: 0.5,
			MaxProbDiff:   0.125,
			MeshMissProbs: []float64{0.25, 0.0625},
		}},
	}
}

// TestSurveyRecordRoundTrip: encode → decode → encode must be
// byte-identical, the property resume relies on when it re-emits records
// into a truncated log.
func TestSurveyRecordRoundTrip(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	want := []*SurveyRecord{sampleRecord(0), sampleRecord(1), sampleRecord(2)}
	for _, sr := range want {
		if err := sr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
	}
	first := append([]byte(nil), buf.Bytes()...)

	got, err := ReadSurveyRecords(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("decoded records differ:\nwant %+v\ngot  %+v", want, got)
	}
	var again bytes.Buffer
	for _, sr := range got {
		if err := sr.WriteJSONL(&again); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(first, again.Bytes()) {
		t.Fatal("re-encoded JSONL differs from the original bytes")
	}
}

func TestJSONLWriterOffsetAndResume(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "records.jsonl")
	jw, err := CreateJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := jw.Write(sampleRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := jw.Sync(); err != nil {
		t.Fatal(err)
	}
	durable := jw.Offset()
	// Two more records beyond the "checkpoint", then a torn partial line:
	// everything past durable must be discarded on resume.
	for i := 3; i < 5; i++ {
		if err := jw.Write(sampleRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"pair_index": 99, "tr`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	jw2, err := OpenJSONLAt(path, durable)
	if err != nil {
		t.Fatal(err)
	}
	if jw2.Offset() != durable {
		t.Fatalf("resumed offset %d, want %d", jw2.Offset(), durable)
	}
	for i := 3; i < 5; i++ {
		if err := jw2.Write(sampleRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := jw2.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ReadSurveyRecords(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("resumed log does not decode cleanly: %v", err)
	}
	if len(recs) != 5 {
		t.Fatalf("resumed log has %d records, want 5", len(recs))
	}
	for i, sr := range recs {
		if sr.PairIndex != i {
			t.Fatalf("record %d has pair index %d", i, sr.PairIndex)
		}
	}
}

// TestValidateJSONLPrefix: the pre-truncation consistency check must
// accept the durable prefix and reject wrong counts, torn prefixes and
// short files — all without modifying the file.
func TestValidateJSONLPrefix(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "records.jsonl")
	jw, err := CreateJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := jw.Write(sampleRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	off := jw.Offset()
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	if err := ValidateJSONLPrefix(path, off, 3); err != nil {
		t.Fatalf("valid prefix rejected: %v", err)
	}
	if err := ValidateJSONLPrefix(path, off, 5); err == nil {
		t.Fatal("wrong record count accepted")
	}
	if err := ValidateJSONLPrefix(path, off-2, 3); err == nil {
		t.Fatal("torn prefix accepted")
	}
	if err := ValidateJSONLPrefix(path, off+100, 3); err == nil {
		t.Fatal("offset beyond file size accepted")
	}
	// The empty-log-with-claimed-records case (checkpoint written
	// without a record log, resumed onto a fresh -out path).
	if err := ValidateJSONLPrefix(path, 0, 3); err == nil {
		t.Fatal("zero-offset prefix with claimed records accepted")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("validation modified the file")
	}
}

func TestOpenJSONLAtRejectsShortFile(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "records.jsonl")
	if err := os.WriteFile(path, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJSONLAt(path, 1000); err == nil {
		t.Fatal("expected error for offset beyond file size")
	}
}

func TestCheckpointRoundTripAndValidation(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := filepath.Join(dir, "survey.ckpt")
	ck := &Checkpoint{
		Kind: "survey", OptionsHash: 0xdeadbeef, Seed: 42,
		Total: 1000, Done: 250, Offset: 123456,
	}
	if err := ck.WriteAtomic(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ck, got) {
		t.Fatalf("checkpoint round trip: want %+v, got %+v", ck, got)
	}
	// No temp files may survive the atomic write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries after atomic write, want 1", len(entries))
	}

	if _, err := ReadCheckpoint(filepath.Join(dir, "missing.ckpt")); !os.IsNotExist(err) {
		t.Fatalf("missing checkpoint: got %v, want not-exist", err)
	}
	if err := os.WriteFile(path, []byte(`{"version":1,"done":9,"total":3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(path); err == nil {
		t.Fatal("inconsistent checkpoint (done > total) accepted")
	}
	if err := os.WriteFile(path, []byte(`{"version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(path); err == nil {
		t.Fatal("future-version checkpoint accepted")
	}
	if err := os.WriteFile(path, []byte(`{"version":1,`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(path); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

func TestWriteFileAtomicReplaces(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "f")
	if err := WriteFileAtomic(path, []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("two"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "two" {
		t.Fatalf("content %q", data)
	}
}
