package traceio

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleSnapshot() *AtlasSnapshot {
	return &AtlasSnapshot{
		Pairs: []AtlasPair{
			{Pair: 0, Src: "192.0.2.1", Dst: "203.0.113.1"},
			{Pair: 3, Src: "192.0.2.2", Dst: "203.0.113.4"},
		},
		Nodes: []AtlasNode{
			{Addr: "10.0.0.1", Seen: [][2]int{{0, 1}, {3, 2}}},
			{Addr: "10.0.0.2", Seen: [][2]int{{0, 2}}},
			{Addr: "10.0.0.3", Seen: [][2]int{{3, 3}}},
		},
		Edges: []AtlasEdge{{0, 1}, {0, 2}},
		Routers: []AtlasRouter{
			{Addrs: []string{"10.0.0.2", "10.0.0.3"}},
		},
		Diamonds: []AtlasDiamond{
			{Div: "10.0.0.1", Conv: "10.0.0.9", Count: 3, Pairs: []int{0, 3}, MaxWidth: 4, MaxLength: 2},
		},
	}
}

// The snapshot codec round-trips byte-stably: decode then re-encode
// yields the identical bytes, so snapshot files can be compared with
// byte equality across runs.
func TestAtlasRoundTripByteStable(t *testing.T) {
	t.Parallel()
	s := sampleSnapshot()
	var first bytes.Buffer
	if err := EncodeAtlas(&first, s); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeAtlas(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, s) {
		t.Fatalf("decoded snapshot differs:\n got %+v\nwant %+v", dec, s)
	}
	var second bytes.Buffer
	if err := EncodeAtlas(&second, dec); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("re-encoded snapshot differs:\n%q\nvs\n%q", first.Bytes(), second.Bytes())
	}
}

func TestAtlasEmptyRoundTrip(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := EncodeAtlas(&buf, &AtlasSnapshot{}); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeAtlas(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Pairs)+len(dec.Nodes)+len(dec.Edges)+len(dec.Routers)+len(dec.Diamonds) != 0 {
		t.Fatalf("empty snapshot decoded non-empty: %+v", dec)
	}
}

func TestAtlasFileAtomicWrite(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "a.atlas")
	s := sampleSnapshot()
	if err := WriteAtlasFile(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAtlasFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("loaded snapshot differs from saved one")
	}
}

func TestAtlasDecodeRejections(t *testing.T) {
	t.Parallel()
	cases := map[string]string{
		"empty":          "",
		"not json":       "hop 0: 10.0.0.1\n",
		"wrong kind":     `{"version":1,"kind":"survey"}` + "\n",
		"wrong version":  `{"version":99,"kind":"atlas"}` + "\n",
		"negative count": `{"version":1,"kind":"atlas","nodes":-2}` + "\n",
		"missing nodes":  `{"version":1,"kind":"atlas","nodes":3}` + "\n" + `{"addr":"10.0.0.1"}` + "\n",
		"edge oob": `{"version":1,"kind":"atlas","nodes":1,"edges":1}` + "\n" +
			`{"addr":"10.0.0.1"}` + "\n" + `[0,7]` + "\n",
		"singleton router": `{"version":1,"kind":"atlas","routers":1}` + "\n" +
			`{"addrs":["10.0.0.1"]}` + "\n",
		"trailing data":                   `{"version":1,"kind":"atlas"}` + "\n" + `{"addr":"x"}` + "\n",
		"trailing data after blank lines": `{"version":1,"kind":"atlas"}` + "\n\n\n" + `{"addr":"x"}` + "\n",
		"huge header":                     `{"version":1,"kind":"atlas","nodes":1000000000000}` + "\n",
	}
	for name, in := range cases {
		if _, err := DecodeAtlas(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("%s: decode accepted invalid input", name)
		}
	}
}
