// Package traceio serializes topologies and trace results: a line-based
// text format for ground-truth topologies (consumed by cmd/mmlpt and
// cmd/fakeroute, so users can validate against their own topologies, as
// the paper's Fakeroute accepted topology files), and a JSON schema for
// trace results (one object per trace, suitable for JSONL survey dumps —
// in the spirit of the "better schema for paris-traceroute" the paper
// cites for M-Lab).
package traceio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"mmlpt/internal/alias"
	"mmlpt/internal/core"
	"mmlpt/internal/mda"
	"mmlpt/internal/packet"
	"mmlpt/internal/topo"
)

// Topology text format:
//
//	# comment
//	hop 0: 10.0.0.1
//	hop 1: 10.0.0.2 10.0.0.3
//	hop 2: *
//	edge 10.0.0.1 10.0.0.2
//	edge 10.0.0.1 10.0.0.3
//
// Stars are written "*" and are positional: "edge * X" is not supported
// (edges to and from stars are implied by adjacency when omitted); edges
// between named vertices are explicit.

// FormatTopology renders a graph in the text format.
func FormatTopology(g *topo.Graph) string {
	var b strings.Builder
	for h := 0; h < g.NumHops(); h++ {
		fmt.Fprintf(&b, "hop %d:", h)
		for _, id := range g.Hop(h) {
			if a := g.V(id).Addr; a == topo.StarAddr {
				b.WriteString(" *")
			} else {
				fmt.Fprintf(&b, " %s", a)
			}
		}
		b.WriteByte('\n')
	}
	var edges []string
	for i := range g.Vertices {
		u := &g.Vertices[i]
		if u.Addr == topo.StarAddr {
			continue
		}
		for _, w := range g.Succ(topo.VertexID(i)) {
			wa := g.V(w).Addr
			if wa == topo.StarAddr {
				continue
			}
			edges = append(edges, fmt.Sprintf("edge %s %s", u.Addr, wa))
		}
	}
	sort.Strings(edges)
	for _, e := range edges {
		b.WriteString(e)
		b.WriteByte('\n')
	}
	return b.String()
}

// ParseTopology reads the text format. Edges between a hop's stars and
// adjacent hops are auto-connected (full bipartite to the star), matching
// how a tracer experiences a silent hop.
func ParseTopology(r io.Reader) (*topo.Graph, error) {
	g := topo.New()
	sc := bufio.NewScanner(r)
	lineNo := 0
	type edge struct{ from, to packet.Addr }
	var edges []edge
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case strings.HasPrefix(line, "hop "):
			rest := strings.TrimPrefix(line, "hop ")
			colon := strings.IndexByte(rest, ':')
			if colon < 0 {
				return nil, fmt.Errorf("traceio: line %d: missing colon", lineNo)
			}
			var h int
			if _, err := fmt.Sscanf(rest[:colon], "%d", &h); err != nil {
				return nil, fmt.Errorf("traceio: line %d: bad hop index: %v", lineNo, err)
			}
			for _, tok := range strings.Fields(rest[colon+1:]) {
				if tok == "*" {
					g.AddVertex(h, topo.StarAddr)
					continue
				}
				a, err := packet.ParseAddr(tok)
				if err != nil {
					return nil, fmt.Errorf("traceio: line %d: %v", lineNo, err)
				}
				g.AddVertex(h, a)
			}
		case fields[0] == "edge" && len(fields) == 3:
			from, err := packet.ParseAddr(fields[1])
			if err != nil {
				return nil, fmt.Errorf("traceio: line %d: %v", lineNo, err)
			}
			to, err := packet.ParseAddr(fields[2])
			if err != nil {
				return nil, fmt.Errorf("traceio: line %d: %v", lineNo, err)
			}
			edges = append(edges, edge{from, to})
		default:
			return nil, fmt.Errorf("traceio: line %d: unrecognized %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, e := range edges {
		u := g.Lookup(e.from)
		w := g.Lookup(e.to)
		if u == topo.None || w == topo.None {
			return nil, fmt.Errorf("traceio: edge %s>%s references unknown vertex", e.from, e.to)
		}
		if g.V(w).Hop != g.V(u).Hop+1 {
			return nil, fmt.Errorf("traceio: edge %s>%s does not span adjacent hops", e.from, e.to)
		}
		g.AddEdge(u, w)
	}
	// Auto-connect stars to every vertex of the adjacent hops.
	for i := range g.Vertices {
		v := topo.VertexID(i)
		if g.V(v).Addr != topo.StarAddr {
			continue
		}
		h := g.V(v).Hop
		for _, u := range g.Hop(h - 1) {
			g.AddEdge(u, v)
		}
		for _, w := range g.Hop(h + 1) {
			g.AddEdge(v, w)
		}
	}
	return g, nil
}

// JSON schema for trace results.

// JSONVertex is one vertex of the serialized topology.
type JSONVertex struct {
	Addr string `json:"addr"` // "*" for stars
	Hop  int    `json:"hop"`
}

// JSONEdge is one edge, by vertex index.
type JSONEdge struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// JSONDiamond summarizes a diamond.
type JSONDiamond struct {
	Div         string  `json:"div"`
	Conv        string  `json:"conv"`
	MaxLength   int     `json:"max_length"`
	MaxWidth    int     `json:"max_width"`
	Asymmetry   int     `json:"max_width_asymmetry"`
	Meshed      bool    `json:"meshed"`
	MeshedRatio float64 `json:"ratio_meshed_hops"`
}

// JSONRouter is one resolved alias set.
type JSONRouter struct {
	Addrs []string `json:"addrs"`
}

// JSONTrace is the serialized result of one trace.
type JSONTrace struct {
	Src         string        `json:"src"`
	Dst         string        `json:"dst"`
	Algorithm   string        `json:"algorithm"`
	Probes      uint64        `json:"probes"`
	Reached     bool          `json:"reached"`
	Switched    bool          `json:"switched_to_mda,omitempty"`
	Vertices    []JSONVertex  `json:"vertices"`
	Edges       []JSONEdge    `json:"edges"`
	Diamonds    []JSONDiamond `json:"diamonds,omitempty"`
	Routers     []JSONRouter  `json:"routers,omitempty"`
	AliasProbes uint64        `json:"alias_probes,omitempty"`
}

// EncodeGraph fills the vertex and edge lists from a graph.
func EncodeGraph(g *topo.Graph) ([]JSONVertex, []JSONEdge) {
	vs := make([]JSONVertex, len(g.Vertices))
	index := make(map[topo.VertexID]int, len(g.Vertices))
	for i := range g.Vertices {
		v := &g.Vertices[i]
		s := "*"
		if v.Addr != topo.StarAddr {
			s = v.Addr.String()
		}
		vs[i] = JSONVertex{Addr: s, Hop: v.Hop}
		index[topo.VertexID(i)] = i
	}
	var es []JSONEdge
	for i := range g.Vertices {
		for _, w := range g.Succ(topo.VertexID(i)) {
			es = append(es, JSONEdge{From: i, To: index[w]})
		}
	}
	return vs, es
}

// DecodeGraph rebuilds a graph from the vertex and edge lists.
func DecodeGraph(vs []JSONVertex, es []JSONEdge) (*topo.Graph, error) {
	g := topo.New()
	ids := make([]topo.VertexID, len(vs))
	for i, v := range vs {
		if v.Addr == "*" {
			ids[i] = g.AddVertex(v.Hop, topo.StarAddr)
			continue
		}
		a, err := packet.ParseAddr(v.Addr)
		if err != nil {
			return nil, err
		}
		ids[i] = g.AddVertex(v.Hop, a)
	}
	for _, e := range es {
		if e.From < 0 || e.From >= len(ids) || e.To < 0 || e.To >= len(ids) {
			return nil, fmt.Errorf("traceio: edge index out of range")
		}
		g.AddEdge(ids[e.From], ids[e.To])
	}
	return g, nil
}

// NewJSONTrace builds the serialized record for an IP-level result.
func NewJSONTrace(src, dst packet.Addr, algorithm string, res *mda.Result) *JSONTrace {
	vs, es := EncodeGraph(res.Graph)
	jt := &JSONTrace{
		Src: src.String(), Dst: dst.String(), Algorithm: algorithm,
		Probes: res.Probes, Reached: res.ReachedDst, Switched: res.SwitchedToMDA,
		Vertices: vs, Edges: es,
	}
	for _, d := range res.Graph.Diamonds() {
		m := d.ComputeMetrics()
		div, conv := "*", "*"
		if d.DivAddr != topo.StarAddr {
			div = d.DivAddr.String()
		}
		if d.ConvAddr != topo.StarAddr {
			conv = d.ConvAddr.String()
		}
		jt.Diamonds = append(jt.Diamonds, JSONDiamond{
			Div: div, Conv: conv,
			MaxLength: m.MaxLength, MaxWidth: m.MaxWidth,
			Asymmetry: m.MaxWidthAsymmetry, Meshed: m.Meshed,
			MeshedRatio: m.RatioMeshedHops,
		})
	}
	return jt
}

// AttachMultilevel adds the router-level results to a record.
func (jt *JSONTrace) AttachMultilevel(ml *core.Result) {
	jt.AliasProbes = ml.AliasProbes
	for _, s := range alias.RouterSets(ml.Sets) {
		r := JSONRouter{}
		for _, a := range s.Addrs {
			r.Addrs = append(r.Addrs, a.String())
		}
		jt.Routers = append(jt.Routers, r)
	}
}

// WriteJSONL appends the record as one JSON line.
func (jt *JSONTrace) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(jt)
}

// ReadJSONL decodes one trace record per line until EOF.
func ReadJSONL(r io.Reader) ([]*JSONTrace, error) {
	dec := json.NewDecoder(r)
	var out []*JSONTrace
	for {
		var jt JSONTrace
		if err := dec.Decode(&jt); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, err
		}
		out = append(out, &jt)
	}
}
