package traceio

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func testManifest() *FleetManifest {
	return &FleetManifest{
		OptionsHash: 0xdeadbeef, Seed: 7, Total: 12, UnitSize: 5,
		Units: []FleetUnit{
			{ID: 0, Start: 0, Count: 5, State: UnitShipped, Runner: "r1", Shard: "unit-000000.jsonl", Records: 5, Attempts: 1},
			{ID: 1, Start: 5, Count: 5, State: UnitLeased, Runner: "r2", Attempts: 2},
			{ID: 2, Start: 10, Count: 2, State: UnitUnclaimed},
		},
	}
}

func TestFleetManifestRoundTrip(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "manifest.json")
	m := testManifest()
	if err := m.WriteAtomic(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFleetManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip changed the manifest:\n got %+v\nwant %+v", got, m)
	}
	if err := got.Matches(0xdeadbeef, 12, 5); err != nil {
		t.Fatal(err)
	}
}

func TestFleetManifestMatchesRejectsMismatches(t *testing.T) {
	t.Parallel()
	m := testManifest()
	cases := []struct {
		name             string
		hash             uint64
		total, unitSize  int
		wantErrSubstring string
	}{
		{"hash", 0xbad, 12, 5, "different options"},
		{"total", 0xdeadbeef, 13, 5, "jobs"},
		{"unitsize", 0xdeadbeef, 12, 6, "unit size"},
	}
	for _, tc := range cases {
		err := m.Matches(tc.hash, tc.total, tc.unitSize)
		if err == nil || !strings.Contains(err.Error(), tc.wantErrSubstring) {
			t.Fatalf("%s: got %v, want error containing %q", tc.name, err, tc.wantErrSubstring)
		}
	}
}

func TestFleetManifestValidation(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	write := func(mut func(*FleetManifest)) string {
		m := testManifest()
		if err := m.WriteAtomic(filepath.Join(dir, "m.json")); err != nil {
			t.Fatal(err)
		}
		// WriteAtomic stamps version/kind; mutate afterwards via re-read.
		got, err := ReadFleetManifest(filepath.Join(dir, "m.json"))
		if err != nil {
			t.Fatal(err)
		}
		mut(got)
		path := filepath.Join(dir, "mut.json")
		if err := writeRaw(path, got); err != nil {
			t.Fatal(err)
		}
		return path
	}

	for _, tc := range []struct {
		name string
		mut  func(*FleetManifest)
	}{
		{"gap in partition", func(m *FleetManifest) { m.Units[1].Start = 6 }},
		{"bad id order", func(m *FleetManifest) { m.Units[1].ID = 5 }},
		{"unknown state", func(m *FleetManifest) { m.Units[0].State = "lost" }},
		{"short coverage", func(m *FleetManifest) { m.Total = 99 }},
		{"bad version", func(m *FleetManifest) { m.Version = 42 }},
		{"bad kind", func(m *FleetManifest) { m.Kind = "checkpoint" }},
	} {
		path := write(tc.mut)
		if _, err := ReadFleetManifest(path); err == nil {
			t.Fatalf("%s: corrupt manifest was accepted", tc.name)
		}
	}
}

// writeRaw persists the manifest without WriteAtomic's version/kind
// re-stamping, so tests can write deliberately invalid files.
func writeRaw(path string, m *FleetManifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
