package survey

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"mmlpt/internal/atlas"
	"mmlpt/internal/atlas/serve"
	"mmlpt/internal/fakeroute"
	"mmlpt/internal/mda"
	"mmlpt/internal/nprand"
	"mmlpt/internal/packet"
	"mmlpt/internal/prior"
	"mmlpt/internal/traceio"
)

// churnRoutes flips the route of every fifth pair to a freshly generated
// graph, active from the first probe: those pairs' priors are stale and
// must fall back to full discovery. The replacement addresses come from a
// 172.16/12 allocator so they cannot collide with the universe's 10/8
// space, and the subset is deterministic so every worker-count variant
// sees the identical churned network.
func churnRoutes(t *testing.T, u *Universe) int {
	t.Helper()
	crng := nprand.New(0x70726368) // "prch"
	alloc := fakeroute.NewAddrAllocator(packet.AddrFrom4(172, 16, 0, 1))
	spec := fakeroute.GenSpec{
		Diamonds: 2, WidthMin: 2, WidthMax: 3,
		LenMin: 2, LenMax: 3, UniformWidth: true,
	}
	churned := 0
	for i, pair := range u.Pairs {
		if i%5 != 0 {
			continue
		}
		p := u.Net.Path(pair.Src, pair.Dst)
		if p == nil {
			t.Fatalf("pair %d: no fakeroute path for %v -> %v", i, pair.Src, pair.Dst)
		}
		alt := fakeroute.GenerateMultipath(crng.Fork(uint64(i)), alloc, pair.Dst, spec)
		u.Net.EnsureIfaces(alt.Graph, pair.Dst)
		p.Alt = alt.Graph
		p.AltAt = 0
		churned++
	}
	if churned == 0 {
		t.Fatal("churned no pairs; the stale-prior path would go unexercised")
	}
	return churned
}

// Determinism guard for prior-seeded surveys: with an atlas prior
// installed AND a route change invalidating part of it, the streamed
// JSONL and the atlas snapshot must stay byte-identical across worker
// counts. The prior confirmation path (prior_hops) and the mismatch
// fallback (prior_stale) are both asserted present, so the guard covers
// exactly the code the unseeded determinism test cannot reach.
func TestSurveyPriorModeByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("two full survey passes; skipped with -short")
	}
	t.Parallel()

	// Pass 1: an unseeded MDA-Lite survey builds the atlas the prior is
	// extracted from, through the same serving layer cmd/survey uses.
	u := Generate(GenConfig{Seed: 21, Pairs: 25})
	as := NewAtlasSink(atlas.Options{})
	if _, err := Run(u, RunConfig{
		Algo: AlgoMDALite, Retries: 1,
		Trace: mda.Config{Seed: 21},
		Sinks: []Sink{as},
	}); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(t.TempDir(), "prior.atlas")
	if err := as.Atlas.Save(snapPath); err != nil {
		t.Fatal(err)
	}
	svc, err := serve.Open(snapPath, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := prior.FromService(svc)
	svc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() == 0 {
		t.Fatal("prior index is empty; the seeded pass would run unseeded")
	}

	// Pass 2, per worker count: same universe, every fifth route changed,
	// prior-seeded re-survey. Bytes must match the workers=1 reference.
	var refJSONL, refSnapshot []byte
	var res *Result
	for _, workers := range []int{1, 4, 8} {
		ru := Generate(GenConfig{Seed: 21, Pairs: 25})
		churnRoutes(t, ru)
		path := filepath.Join(t.TempDir(), "records.jsonl")
		jsonl := NewJSONLSink(path)
		ras := NewAtlasSink(atlas.Options{Shards: 7})
		res, err = Run(ru, RunConfig{
			Algo: AlgoMDALite, Retries: 1,
			Trace:   mda.Config{Seed: 21},
			Prior:   ix,
			Workers: workers,
			Sinks:   []Sink{jsonl, ras},
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := jsonl.Close(); err != nil {
			t.Fatal(err)
		}
		gotJSONL, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var snap bytes.Buffer
		if err := traceio.EncodeAtlas(&snap, ras.Atlas.Snapshot()); err != nil {
			t.Fatal(err)
		}
		if refJSONL == nil {
			refJSONL, refSnapshot = gotJSONL, snap.Bytes()
			if len(refJSONL) == 0 {
				t.Fatal("reference run produced no records; the guard would be vacuous")
			}
			continue
		}
		if !bytes.Equal(gotJSONL, refJSONL) {
			t.Errorf("workers=%d: prior-mode JSONL differs from workers=1 reference", workers)
		}
		if !bytes.Equal(snap.Bytes(), refSnapshot) {
			t.Errorf("workers=%d: prior-mode atlas snapshot differs from workers=1 reference", workers)
		}
	}

	// Both prior paths must have fired: confirmations on unchanged routes,
	// fallbacks on churned ones — in the outcomes and in the record bytes.
	var hops, stale int
	for _, o := range res.Outcomes {
		hops += o.PriorHops
		if o.PriorStale {
			stale++
		}
	}
	if hops == 0 {
		t.Error("no hops confirmed from the prior; seeding never engaged")
	}
	if stale == 0 {
		t.Error("no stale priors despite churned routes; the fallback went unexercised")
	}
	if !bytes.Contains(refJSONL, []byte(`"prior_hops":`)) {
		t.Error("prior_hops missing from the JSONL records")
	}
	if !bytes.Contains(refJSONL, []byte(`"prior_stale":true`)) {
		t.Error("prior_stale missing from the JSONL records")
	}
}
