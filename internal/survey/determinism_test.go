package survey

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"mmlpt/internal/atlas"
	"mmlpt/internal/mda"
	"mmlpt/internal/traceio"
)

// Determinism guard: a survey's streamed JSONL record log AND its atlas
// snapshot must be byte-identical across worker counts and atlas shard
// counts. This is the regression net for future map-iteration leaks of
// the AdoptStarFlows kind (PR 2): any nondeterminism in discovery
// order, record encoding, or the sharded atlas merge shows up here as a
// byte diff.
func TestSurveyAndAtlasByteIdenticalAcrossWorkersAndShards(t *testing.T) {
	if testing.Short() {
		t.Skip("multilevel survey sweep is slow; skipped with -short")
	}
	t.Parallel()

	type variant struct {
		workers, shards int
	}
	variants := []variant{
		{workers: 1, shards: 1},
		{workers: 8, shards: 1},
		{workers: 8, shards: 13},
		{workers: 3, shards: 64},
	}
	var refJSONL, refSnapshot []byte
	for _, v := range variants {
		u := Generate(GenConfig{Seed: 7, Pairs: 30})
		path := filepath.Join(t.TempDir(), "records.jsonl")
		jsonl := NewJSONLSink(path)
		as := NewAtlasSink(atlas.Options{Shards: v.shards})
		cfg := RunConfig{
			Algo: AlgoMultilevel, OnlyLB: true, Retries: 1,
			Rounds: 2, ProbesPerRound: 10,
			Trace:   mda.Config{Seed: 7},
			Workers: v.workers,
			Sinks:   []Sink{jsonl, as},
		}
		if _, err := Run(u, cfg); err != nil {
			t.Fatalf("workers=%d shards=%d: %v", v.workers, v.shards, err)
		}
		if err := jsonl.Close(); err != nil {
			t.Fatal(err)
		}
		gotJSONL, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var snap bytes.Buffer
		if err := traceio.EncodeAtlas(&snap, as.Atlas.Snapshot()); err != nil {
			t.Fatal(err)
		}
		if refJSONL == nil {
			refJSONL, refSnapshot = gotJSONL, snap.Bytes()
			if len(refJSONL) == 0 || as.Atlas.NumPairs() == 0 {
				t.Fatal("reference run produced no records; the guard would be vacuous")
			}
			continue
		}
		if !bytes.Equal(gotJSONL, refJSONL) {
			t.Errorf("workers=%d shards=%d: JSONL differs from workers=1 reference", v.workers, v.shards)
		}
		if !bytes.Equal(snap.Bytes(), refSnapshot) {
			t.Errorf("workers=%d shards=%d: atlas snapshot differs from workers=1 reference", v.workers, v.shards)
		}
	}

	// And the snapshot round-trips byte-stably through disk.
	path := filepath.Join(t.TempDir(), "ref.atlas")
	dec, err := traceio.DecodeAtlas(bytes.NewReader(refSnapshot))
	if err != nil {
		t.Fatal(err)
	}
	a, err := atlas.FromSnapshot(dec, atlas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Save(path); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, refSnapshot) {
		t.Error("Load(Save(atlas)) is not byte-stable")
	}
}
