package survey

import (
	"strings"
	"testing"

	"mmlpt/internal/core"
	"mmlpt/internal/mda"
)

func runSmallIPSurvey(t testing.TB, pairs int, seed uint64) *Result {
	t.Helper()
	u := Generate(GenConfig{Seed: seed, Pairs: pairs})
	res, err := Run(u, RunConfig{Algo: AlgoMDA, Retries: 1, Trace: mda.Config{Seed: seed}})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestReportWeightings(t *testing.T) {
	t.Parallel()
	res := runSmallIPSurvey(t, 250, 91)
	m := res.diamonds(Measured)
	d := res.diamonds(Distinct)
	if len(m) != len(res.Measured) || len(d) != len(res.Distinct) {
		t.Fatalf("weighting sizes: %d/%d vs %d/%d", len(m), len(res.Measured), len(d), len(res.Distinct))
	}
	// Distinct output must be deterministic (sorted by key).
	d2 := res.diamonds(Distinct)
	for i := range d {
		if d[i].Key != d2[i].Key {
			t.Fatal("distinct ordering unstable")
		}
	}
}

func TestReportDistributionsWellFormed(t *testing.T) {
	t.Parallel()
	res := runSmallIPSurvey(t, 250, 92)
	for _, w := range []Weighting{Measured, Distinct} {
		h := res.WidthAsymmetryDist(w)
		var total float64
		for _, k := range h.Keys() {
			total += h.Portion(k)
		}
		if total < 0.999 || total > 1.001 {
			t.Fatalf("%v asymmetry portions sum to %v", w, total)
		}
		lh := res.LengthDist(w)
		for _, k := range lh.Keys() {
			if k < 2 {
				t.Fatalf("%v: diamond of length %d (must be >= 2)", w, k)
			}
		}
		wh := res.WidthDist(w)
		for _, k := range wh.Keys() {
			if k < 2 {
				t.Fatalf("%v: diamond of width %d (must be >= 2)", w, k)
			}
		}
		j := res.JointLengthWidth(w)
		if j.Total != len(res.diamonds(w)) {
			t.Fatalf("%v joint total %d vs %d diamonds", w, j.Total, len(res.diamonds(w)))
		}
		cdf := res.MeshedRatioCDF(w)
		if cdf.N() > 0 && (cdf.Min() <= 0 || cdf.Max() > 1) {
			t.Fatalf("%v meshed ratio out of (0,1]: %v..%v", w, cdf.Min(), cdf.Max())
		}
		miss := res.MeshMissCDF(w)
		if miss.N() > 0 && (miss.Min() < 0 || miss.Max() > 1) {
			t.Fatalf("%v miss prob out of range", w)
		}
	}
}

func TestSummaryMentionsCounts(t *testing.T) {
	t.Parallel()
	res := runSmallIPSurvey(t, 150, 93)
	s := res.Summary()
	for _, want := range []string{"traces:", "measured", "distinct", "len2", "meshed"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestRouterSurveyEndToEnd(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("multilevel survey over 120 pairs is slow")
	}
	u := Generate(GenConfig{Seed: 94, Pairs: 120})
	res, err := Run(u, RunConfig{
		Algo: AlgoMultilevel, Retries: 1, OnlyLB: true,
		Rounds: 3, Trace: mda.Config{Seed: 94},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := RouterView(res)
	if len(recs) == 0 {
		t.Fatal("no router records")
	}
	// Table 3 fractions must sum to 1 over the observed effects.
	t3 := Table3(res, recs)
	var sum float64
	for _, v := range t3 {
		sum += v
	}
	if len(t3) > 0 && (sum < 0.999 || sum > 1.001) {
		t.Fatalf("Table 3 fractions sum to %v: %v", sum, t3)
	}
	// Router-level width never exceeds IP-level width per diamond.
	for _, r := range recs {
		for i := range r.WidthBefore {
			if r.WidthAfter[i] > r.WidthBefore[i] {
				t.Fatalf("alias resolution increased width: %d -> %d",
					r.WidthBefore[i], r.WidthAfter[i])
			}
		}
	}
	distinct, aggregated := RouterSizeCDFs(recs)
	if distinct.N() == 0 {
		t.Fatal("no router sizes")
	}
	if aggregated.N() > distinct.N() {
		t.Fatal("aggregation cannot increase the number of routers")
	}
	if distinct.Min() < 2 {
		t.Fatal("router sets must have at least 2 interfaces")
	}
	// Every aggregated size is >= the size of some constituent.
	if aggregated.N() > 0 && aggregated.Max() < distinct.Max() {
		t.Fatal("aggregated max below distinct max")
	}
	before, after := WidthBeforeAfter(res, recs)
	if before.Total != after.Total {
		t.Fatalf("before/after totals differ: %d vs %d", before.Total, after.Total)
	}
	j := JointWidthBeforeAfter(res, recs)
	for _, c := range j.Cells() {
		if c[1] >= c[0] {
			t.Fatalf("joint cell has after >= before: %v", c)
		}
	}
}

func TestEffectClassificationConsistency(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("multilevel survey over 150 pairs is slow")
	}
	// EffectOnePath diamonds must have router-level max width 1 in span;
	// EffectNoChange must have identical widths.
	u := Generate(GenConfig{Seed: 95, Pairs: 150})
	res, err := Run(u, RunConfig{
		Algo: AlgoMultilevel, Retries: 1, OnlyLB: true,
		Rounds: 3, Trace: mda.Config{Seed: 95},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Outcomes {
		if o.ML == nil {
			continue
		}
		router := o.ML.RouterGraph
		for _, d := range o.Graph.Diamonds() {
			effect := core.ClassifyDiamond(d, router)
			wAfter := routerSpanMaxWidth(router, d)
			switch effect {
			case core.EffectOnePath:
				if wAfter != 1 {
					t.Fatalf("one-path diamond has router width %d", wAfter)
				}
			case core.EffectNoChange:
				for h := d.DivHop; h <= d.ConvHop; h++ {
					if router.Width(h) != d.Graph().Width(h) {
						t.Fatal("no-change diamond has differing widths")
					}
				}
			}
		}
	}
}
