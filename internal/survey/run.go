package survey

import (
	"mmlpt/internal/alias"
	"mmlpt/internal/core"
	"mmlpt/internal/fakeroute"
	"mmlpt/internal/mda"
	"mmlpt/internal/mdalite"
	"mmlpt/internal/nprand"
	"mmlpt/internal/packet"
	"mmlpt/internal/par"
	"mmlpt/internal/probe"
	"mmlpt/internal/topo"
)

// Algo selects the tracing algorithm for a survey run.
type Algo int

const (
	AlgoMDA Algo = iota
	AlgoMDALite
	AlgoSingleFlow
	AlgoMultilevel
)

// String names the algorithm.
func (a Algo) String() string {
	switch a {
	case AlgoMDA:
		return "mda"
	case AlgoMDALite:
		return "mda-lite"
	case AlgoSingleFlow:
		return "single-flow"
	case AlgoMultilevel:
		return "multilevel"
	default:
		return "unknown"
	}
}

// DiamondRecord captures one measured diamond and its survey metrics.
type DiamondRecord struct {
	Key         topo.DiamondKey
	PairIndex   int
	Metrics     topo.Metrics
	MaxProbDiff float64
	// MeshMissProbs holds, for each meshed hop pair of the diamond, the
	// Eq. (1) probability that the MDA-Lite with the surveyed phi misses
	// the meshing (Fig 2's sample values).
	MeshMissProbs []float64
}

// TraceOutcome is the result of tracing one pair.
type TraceOutcome struct {
	PairIndex int
	Pair      Pair
	Probes    uint64
	Reached   bool
	Switched  bool
	Graph     *topo.Graph
	Diamonds  []DiamondRecord
	// ML is set for multilevel runs.
	ML *core.Result
}

// Result aggregates a survey run.
type Result struct {
	Algo     Algo
	Outcomes []TraceOutcome
	// Measured lists every diamond encounter; Distinct keeps the first
	// encounter per (divergence, convergence) key.
	Measured []DiamondRecord
	Distinct map[topo.DiamondKey]DiamondRecord
	// LBTraces counts traces that found at least one diamond.
	LBTraces int
	// TotalProbes across all traces.
	TotalProbes uint64
}

// RunConfig controls a survey run.
type RunConfig struct {
	Algo Algo
	// Trace is the base trace configuration (stopping points etc.).
	Trace mda.Config
	// Phi is the MDA-Lite meshing budget.
	Phi int
	// MaxPairs truncates the pair list (0 = all).
	MaxPairs int
	// OnlyLB restricts to pairs whose ground truth has a load balancer.
	OnlyLB bool
	// Multilevel rounds/probes (multilevel runs only).
	Rounds, ProbesPerRound int
	// Retries per probe (0 = prober default).
	Retries int
	// Workers is how many pairs are traced concurrently. Zero selects
	// GOMAXPROCS; one forces a serial walk. Per-pair seeds and per-trace
	// network sessions make every trace independent, so the aggregated
	// result is identical for every worker count.
	Workers int
}

// Run traces every pair of the universe and collects the survey records.
// Pairs are traced by a pool of cfg.Workers workers and aggregated in
// pair order, so the result is byte-identical to a serial walk.
func Run(u *Universe, cfg RunConfig) *Result {
	if cfg.Phi == 0 {
		cfg.Phi = mdalite.DefaultPhi
	}
	// Select the pairs first, exactly as the serial walk would.
	type job struct {
		idx  int
		pair Pair
	}
	var jobs []job
	for i, pair := range u.Pairs {
		if cfg.OnlyLB && !pair.HasLB {
			continue
		}
		if cfg.MaxPairs > 0 && len(jobs) >= cfg.MaxPairs {
			break
		}
		jobs = append(jobs, job{idx: i, pair: pair})
	}

	outs := make([]TraceOutcome, len(jobs))
	par.Do(len(jobs), cfg.Workers, func(j int) {
		outs[j] = traceOne(u, jobs[j].idx, jobs[j].pair, cfg)
	})

	res := &Result{Algo: cfg.Algo, Distinct: make(map[topo.DiamondKey]DiamondRecord)}
	for _, out := range outs {
		res.TotalProbes += out.Probes
		if len(out.Diamonds) > 0 {
			res.LBTraces++
		}
		for _, d := range out.Diamonds {
			res.Measured = append(res.Measured, d)
			if _, ok := res.Distinct[d.Key]; !ok {
				res.Distinct[d.Key] = d
			}
		}
		res.Outcomes = append(res.Outcomes, out)
	}
	return res
}

func traceOne(u *Universe, idx int, pair Pair, cfg RunConfig) TraceOutcome {
	p := probe.NewSimProber(u.Net, pair.Src, pair.Dst)
	if cfg.Retries > 0 {
		p.Retries = cfg.Retries
	}
	tc := cfg.Trace
	tc.Seed = nprand.IndexedSeed(cfg.Trace.Seed, idx)

	var (
		r  *mda.Result
		ml *core.Result
	)
	switch cfg.Algo {
	case AlgoMDA:
		r = mda.Trace(p, tc)
	case AlgoMDALite:
		r = mdalite.Trace(p, tc, cfg.Phi)
	case AlgoSingleFlow:
		r = mda.TraceSingleFlow(p, tc)
	case AlgoMultilevel:
		ml = core.Trace(p, core.Options{
			Trace: tc, Phi: cfg.Phi,
			Rounds: cfg.Rounds, ProbesPerRound: cfg.ProbesPerRound,
		})
		r = ml.IP
	}
	out := TraceOutcome{
		PairIndex: idx, Pair: pair,
		Probes:  probe.TotalSent(p),
		Reached: r.ReachedDst, Switched: r.SwitchedToMDA,
		Graph: r.Graph, ML: ml,
	}
	for _, d := range r.Graph.Diamonds() {
		out.Diamonds = append(out.Diamonds, recordDiamond(d, idx, cfg.Phi))
	}
	return out
}

// recordDiamond evaluates the survey metrics for one diamond.
func recordDiamond(d *topo.Diamond, pairIdx, phi int) DiamondRecord {
	rec := DiamondRecord{
		Key:         d.Key(),
		PairIndex:   pairIdx,
		Metrics:     d.ComputeMetrics(),
		MaxProbDiff: d.MaxProbabilityDifference(),
	}
	g := d.Graph()
	for _, h := range d.MeshedHopPairs() {
		rec.MeshMissProbs = append(rec.MeshMissProbs, meshMissProb(g, h, phi))
	}
	return rec
}

// meshMissProb computes Eq. (1) for the meshed hop pair (h, h+1), tracing
// from the wider hop as the MDA-Lite does.
func meshMissProb(g *topo.Graph, h, phi int) float64 {
	wi, wj := g.Width(h), g.Width(h+1)
	var degrees []int
	if wi >= wj {
		for _, v := range g.Hop(h) {
			degrees = append(degrees, g.OutDegree(v))
		}
	} else {
		for _, v := range g.Hop(h + 1) {
			degrees = append(degrees, g.InDegree(v))
		}
	}
	return fakeroute.MeshingMissProb(degrees, phi)
}

// RouterRecord captures the router-level view of one trace (Sec 5.2).
type RouterRecord struct {
	PairIndex int
	// Sets are the accepted multi-address alias sets (routers).
	Sets []alias.Set
	// Effects classifies each IP diamond per Table 3.
	Effects []core.DiamondEffect
	// WidthBefore and WidthAfter give, per IP diamond, the max width at
	// the IP level and at the router level (Figs 13/14).
	WidthBefore, WidthAfter []int
	// RouterDiamonds holds max widths of diamonds in the router graph.
	RouterDiamonds []int
}

// RouterView extracts the router-level records from a multilevel survey
// result.
func RouterView(res *Result) []RouterRecord {
	var out []RouterRecord
	for _, o := range res.Outcomes {
		if o.ML == nil {
			continue
		}
		rr := RouterRecord{PairIndex: o.PairIndex, Sets: alias.RouterSets(o.ML.Sets)}
		router := o.ML.RouterGraph
		for _, d := range o.Graph.Diamonds() {
			rr.Effects = append(rr.Effects, core.ClassifyDiamond(d, router))
			rr.WidthBefore = append(rr.WidthBefore, d.MaxWidth())
			rr.WidthAfter = append(rr.WidthAfter, routerSpanMaxWidth(router, d))
		}
		for _, rd := range router.Diamonds() {
			rr.RouterDiamonds = append(rr.RouterDiamonds, rd.MaxWidth())
		}
		out = append(out, rr)
	}
	return out
}

// routerSpanMaxWidth is the max hop width of the router graph within the
// IP diamond's hop span.
func routerSpanMaxWidth(router *topo.Graph, d *topo.Diamond) int {
	w := 1
	for h := d.DivHop; h <= d.ConvHop; h++ {
		if n := router.Width(h); n > w {
			w = n
		}
	}
	return w
}

// AllRouterSets collects every per-trace accepted set's addresses, for
// transitive-closure aggregation (Fig 12 right).
func AllRouterSets(records []RouterRecord) [][]packet.Addr {
	var out [][]packet.Addr
	for _, r := range records {
		for _, s := range r.Sets {
			out = append(out, s.Addrs)
		}
	}
	return out
}
