package survey

import (
	"fmt"
	"hash/fnv"
	"os"
	"sync/atomic"

	"mmlpt/internal/alias"
	"mmlpt/internal/core"
	"mmlpt/internal/fakeroute"
	"mmlpt/internal/mda"
	"mmlpt/internal/mdalite"
	"mmlpt/internal/nprand"
	"mmlpt/internal/obs"
	"mmlpt/internal/packet"
	"mmlpt/internal/par"
	"mmlpt/internal/prior"
	"mmlpt/internal/probe"
	"mmlpt/internal/topo"
	"mmlpt/internal/traceio"
)

// Algo selects the tracing algorithm for a survey run.
type Algo int

const (
	AlgoMDA Algo = iota
	AlgoMDALite
	AlgoSingleFlow
	AlgoMultilevel
)

// String names the algorithm.
func (a Algo) String() string {
	switch a {
	case AlgoMDA:
		return "mda"
	case AlgoMDALite:
		return "mda-lite"
	case AlgoSingleFlow:
		return "single-flow"
	case AlgoMultilevel:
		return "multilevel"
	default:
		return "unknown"
	}
}

// DiamondRecord captures one measured diamond and its survey metrics.
type DiamondRecord struct {
	Key         topo.DiamondKey
	PairIndex   int
	Metrics     topo.Metrics
	MaxProbDiff float64
	// MeshMissProbs holds, for each meshed hop pair of the diamond, the
	// Eq. (1) probability that the MDA-Lite with the surveyed phi misses
	// the meshing (Fig 2's sample values).
	MeshMissProbs []float64
}

// TraceOutcome is the result of tracing one pair.
type TraceOutcome struct {
	PairIndex int
	Pair      Pair
	Probes    uint64
	Reached   bool
	Switched  bool
	Graph     *topo.Graph
	Diamonds  []DiamondRecord
	// PriorHops counts hops confirmed from an atlas prior; PriorStale
	// marks a trace whose prior mismatched the live route.
	PriorHops  int
	PriorStale bool
	// ML is set for multilevel runs.
	ML *core.Result
}

// Result aggregates a survey run.
type Result struct {
	Algo     Algo
	Outcomes []TraceOutcome
	// Measured lists every diamond encounter; Distinct keeps the first
	// encounter per (divergence, convergence) key.
	Measured []DiamondRecord
	Distinct map[topo.DiamondKey]DiamondRecord
	// LBTraces counts traces that found at least one diamond.
	LBTraces int
	// TotalProbes across all traces.
	TotalProbes uint64
}

// RunConfig controls a survey run.
type RunConfig struct {
	Algo Algo
	// Trace is the base trace configuration (stopping points etc.).
	Trace mda.Config
	// Phi is the MDA-Lite meshing budget.
	Phi int
	// MaxPairs truncates the pair list (0 = all).
	MaxPairs int
	// OnlyLB restricts to pairs whose ground truth has a load balancer.
	OnlyLB bool
	// Multilevel rounds/probes (multilevel runs only).
	Rounds, ProbesPerRound int
	// Retries per probe (0 = prober default).
	Retries int
	// Prior seeds MDA-Lite traces from an atlas-derived index: each pair
	// with an indexed prior probes only to its confirmation budget and
	// falls back to full discovery on mismatch. Nil traces unseeded. The
	// index's fingerprint is part of the options hash, so a checkpointed
	// run refuses to resume under a different prior.
	Prior *prior.Index
	// Workers is how many pairs are traced concurrently. Zero selects
	// GOMAXPROCS; one forces a serial walk. Per-pair seeds and per-trace
	// network sessions make every trace independent, so the aggregated
	// result is identical for every worker count.
	Workers int

	// SpanStart/SpanCount restrict the run to the contiguous slice
	// [SpanStart, SpanStart+SpanCount) of the deterministic selected-job
	// list — the same list a checkpoint's Done count indexes. SpanCount
	// zero with SpanStart zero traces everything. The distributed control
	// plane (internal/dispatch) traces one such span per work-unit claim;
	// records keep their global pair indices and derived seeds, so unit
	// outputs concatenated in span order are byte-identical to the record
	// stream of a whole-survey run. A span cannot be combined with
	// Checkpoint or Resume: work units are retried whole, not resumed.
	SpanStart, SpanCount int

	// WrapProber, when non-nil, wraps each pair's prober before tracing.
	// The fleet runner uses it to meter probes against the coordinator's
	// per-destination-prefix budget. A wrapper must preserve probe
	// semantics — it may delay probes, never reorder, drop or alter them
	// — so tracing stays deterministic under metering.
	WrapProber func(pair Pair, p probe.Prober) probe.Prober

	// Sinks receive each pair's record, in pair order, the moment its
	// contiguous prefix of traces has completed. Nil keeps the survey a
	// pure in-memory aggregation.
	Sinks []Sink
	// Checkpoint names a progress file written atomically every
	// CheckpointEvery records (default 64), making the run resumable
	// after a kill. Empty disables checkpointing.
	Checkpoint      string
	CheckpointEvery int
	// Resume loads the checkpoint, truncates the first JSONLSink among
	// Sinks back to the durable offset, replays its records into the
	// remaining sinks, and traces only the pairs not yet completed. A
	// missing checkpoint file degrades to a fresh run.
	Resume bool
	// Progress, when non-nil, is updated as pairs complete; purely
	// observational.
	Progress *obs.Progress
}

// DefaultCheckpointEvery is the record interval between checkpoints when
// RunConfig.CheckpointEvery is zero.
const DefaultCheckpointEvery = 64

// checkpointKind tags survey checkpoints so other tools' files are
// rejected on resume.
const checkpointKind = "survey"

// job is one selected pair to trace.
type job struct {
	idx  int
	pair Pair
}

// selectJobs picks the pairs a run will trace, exactly as the serial
// walk always has. The selection is deterministic, which is what lets a
// checkpoint identify the completed set by a single count.
func selectJobs(u *Universe, cfg RunConfig) []job {
	var jobs []job
	for i, pair := range u.Pairs {
		if cfg.OnlyLB && !pair.HasLB {
			continue
		}
		if cfg.MaxPairs > 0 && len(jobs) >= cfg.MaxPairs {
			break
		}
		jobs = append(jobs, job{idx: i, pair: pair})
	}
	return jobs
}

// JobCount reports how many pairs Run would trace under cfg before any
// span restriction: the total the distributed coordinator shards into
// work units, and the Total a checkpoint validates against.
func JobCount(u *Universe, cfg RunConfig) int {
	return len(selectJobs(u, cfg))
}

// JobPairs returns the universe pair index of every job Run would trace
// (before any span restriction), in emission order. The coordinator uses
// it to validate that a shipped work unit holds exactly the records its
// span should produce.
func JobPairs(u *Universe, cfg RunConfig) []int {
	jobs := selectJobs(u, cfg)
	out := make([]int, len(jobs))
	for i, j := range jobs {
		out[i] = j.idx
	}
	return out
}

// Fingerprint exposes the options hash: the fingerprint of every input
// that determines which pairs a run traces and what their records
// contain. Checkpoints embed it to refuse resuming a different
// experiment; the distributed control plane embeds it in work-unit
// claims so a runner refuses a coordinator whose survey plan differs
// from what the runner's own binary derives (version skew).
func Fingerprint(u *Universe, cfg RunConfig) uint64 {
	return optionsHash(u, cfg)
}

// optionsHash fingerprints every input that determines which pairs are
// traced and what their records contain. Worker count is deliberately
// excluded: results are identical for every worker count. Span bounds
// are excluded too: a span traces a slice of the same experiment, and
// the checkpoint machinery (the hash's consumer) refuses spans anyway.
func optionsHash(u *Universe, cfg RunConfig) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "gen=%+v|algo=%d|seed=%d|maxttl=%d|stars=%d|stop=%v|reuse=%t|phi=%d|maxpairs=%d|onlylb=%t|rounds=%d|ppr=%d|retries=%d",
		u.Cfg, cfg.Algo, cfg.Trace.Seed, cfg.Trace.MaxTTL,
		cfg.Trace.MaxConsecutiveStars, cfg.Trace.Stop, cfg.Trace.DisableFlowReuse,
		cfg.Phi, cfg.MaxPairs, cfg.OnlyLB, cfg.Rounds, cfg.ProbesPerRound, cfg.Retries)
	if cfg.Prior != nil {
		fmt.Fprintf(h, "|prior=%d", cfg.Prior.Fingerprint())
	}
	return h.Sum64()
}

// Run traces every pair of the universe and collects the survey records.
// Pairs are traced by a pool of cfg.Workers workers; each outcome is
// aggregated — and streamed to cfg.Sinks — in pair order the moment its
// contiguous prefix of traces has completed, so the result is
// byte-identical to a serial walk while a large survey's records leave
// the process incrementally. With checkpointing enabled the run can be
// killed and resumed (cfg.Resume); the returned Result then covers only
// the pairs this call traced, while sinks (rebuilt by replaying the
// record log) cover the whole survey.
func Run(u *Universe, cfg RunConfig) (*Result, error) {
	if cfg.Phi == 0 {
		cfg.Phi = mdalite.DefaultPhi
	}
	jobs := selectJobs(u, cfg)
	if cfg.SpanStart != 0 || cfg.SpanCount != 0 {
		if cfg.Checkpoint != "" || cfg.Resume {
			return nil, fmt.Errorf("survey: a span cannot be checkpointed or resumed; work units are retried whole")
		}
		end := cfg.SpanStart + cfg.SpanCount
		if cfg.SpanCount == 0 {
			end = len(jobs)
		}
		if cfg.SpanStart < 0 || cfg.SpanCount < 0 || end > len(jobs) {
			return nil, fmt.Errorf("survey: span [%d,%d) out of range (0..%d jobs)", cfg.SpanStart, end, len(jobs))
		}
		jobs = jobs[cfg.SpanStart:end]
	}
	total := len(jobs)
	hash := optionsHash(u, cfg)

	// The first JSONL sink is the record log: the durable stream the
	// checkpoint's byte offset refers to and resume replays from.
	var log *JSONLSink
	var others []Sink
	for _, s := range cfg.Sinks {
		if j, ok := s.(*JSONLSink); ok && log == nil {
			log = j
			continue
		}
		others = append(others, s)
	}

	start := 0
	if cfg.Checkpoint != "" && cfg.Resume {
		ck, err := traceio.ReadCheckpoint(cfg.Checkpoint)
		switch {
		case err == nil:
			if err := ck.Matches(checkpointKind, hash, total); err != nil {
				return nil, fmt.Errorf("survey: %s: %w", cfg.Checkpoint, err)
			}
			start = ck.Done
			if start > 0 {
				if log == nil && len(cfg.Sinks) > 0 {
					return nil, fmt.Errorf("survey: resuming with sinks requires a JSONLSink record log")
				}
				if log != nil {
					// Prove the log matches the checkpoint BEFORE
					// truncating: a wrong -out path, or a checkpoint from
					// a run without a record log (offset 0), must not
					// destroy the file it points at.
					if err := traceio.ValidateJSONLPrefix(log.Path(), ck.Offset, start); err != nil {
						return nil, fmt.Errorf("survey: cannot resume onto %s: %w", log.Path(), err)
					}
					if err := log.resumeAt(ck.Offset); err != nil {
						return nil, err
					}
					n, err := ReplayJSONL(log.Path(), others...)
					if err != nil {
						return nil, fmt.Errorf("survey: replaying %s: %w", log.Path(), err)
					}
					if n != start {
						return nil, fmt.Errorf("survey: record log %s holds %d records, checkpoint says %d", log.Path(), n, start)
					}
				}
			}
		case os.IsNotExist(err):
			// No checkpoint yet: a fresh run that will create one.
		default:
			return nil, err
		}
	}
	if cfg.Progress != nil {
		cfg.Progress.Begin(total, start)
	}

	every := cfg.CheckpointEvery
	if every <= 0 {
		every = DefaultCheckpointEvery
	}

	res := &Result{Algo: cfg.Algo, Distinct: make(map[topo.DiamondKey]DiamondRecord)}
	var (
		stopped atomic.Bool
		runErr  error
		emitted int
	)
	streaming := len(cfg.Sinks) > 0 || cfg.Checkpoint != ""
	skipped := TraceOutcome{PairIndex: -1}
	par.Ordered(total-start, cfg.Workers, func(k int) TraceOutcome {
		if stopped.Load() {
			// A sink or checkpoint error already aborted the run; drain
			// the remaining indices without tracing.
			return skipped
		}
		j := jobs[start+k]
		return traceOne(u, j.idx, j.pair, cfg)
	}, func(k int, out TraceOutcome) {
		if runErr != nil || out.PairIndex < 0 {
			return
		}
		res.TotalProbes += out.Probes
		if len(out.Diamonds) > 0 {
			res.LBTraces++
		}
		for _, d := range out.Diamonds {
			res.Measured = append(res.Measured, d)
			if _, ok := res.Distinct[d.Key]; !ok {
				res.Distinct[d.Key] = d
			}
		}
		res.Outcomes = append(res.Outcomes, out)
		if cfg.Progress != nil {
			cfg.Progress.PairDone(out.Probes)
		}
		if !streaming {
			return
		}
		if len(cfg.Sinks) > 0 {
			rec := NewRecord(cfg.Algo, out)
			for _, s := range cfg.Sinks {
				if err := s.Emit(rec); err != nil {
					runErr = err
					stopped.Store(true)
					return
				}
			}
			if cfg.Progress != nil {
				cfg.Progress.RecordEmitted()
			}
		}
		emitted++
		if cfg.Checkpoint != "" && emitted%every == 0 {
			if err := writeCheckpoint(cfg, hash, total, start+emitted, log); err != nil {
				runErr = err
				stopped.Store(true)
			}
		}
	})
	if runErr != nil {
		return res, runErr
	}
	if cfg.Checkpoint != "" {
		if err := writeCheckpoint(cfg, hash, total, start+emitted, log); err != nil {
			return res, err
		}
	}
	return res, nil
}

// writeCheckpoint makes the sinks durable, then atomically replaces the
// checkpoint file. Ordering matters: the record log must be fsynced
// before a checkpoint names its offset, so the offset never points past
// durable bytes.
func writeCheckpoint(cfg RunConfig, hash uint64, total, done int, log *JSONLSink) error {
	for _, s := range cfg.Sinks {
		if f, ok := s.(Flusher); ok {
			if err := f.Flush(); err != nil {
				return err
			}
		}
	}
	ck := &traceio.Checkpoint{
		Kind: checkpointKind, OptionsHash: hash, Seed: cfg.Trace.Seed,
		Total: total, Done: done,
	}
	if log != nil {
		ck.Offset = log.Offset()
	}
	return ck.WriteAtomic(cfg.Checkpoint)
}

func traceOne(u *Universe, idx int, pair Pair, cfg RunConfig) TraceOutcome {
	sim := probe.NewSimProber(u.Net, pair.Src, pair.Dst)
	if cfg.Retries > 0 {
		sim.Retries = cfg.Retries
	}
	var p probe.Prober = sim
	if cfg.WrapProber != nil {
		p = cfg.WrapProber(pair, p)
	}
	tc := cfg.Trace
	tc.Seed = nprand.IndexedSeed(cfg.Trace.Seed, idx)

	var (
		r  *mda.Result
		ml *core.Result
	)
	switch cfg.Algo {
	case AlgoMDA:
		r = mda.Trace(p, tc)
	case AlgoMDALite:
		if cfg.Prior != nil {
			if pp := cfg.Prior.Lookup(pair.Src, pair.Dst); pp != nil {
				tc.Prior = pp
			}
		}
		r = mdalite.Trace(p, tc, cfg.Phi)
	case AlgoSingleFlow:
		r = mda.TraceSingleFlow(p, tc)
	case AlgoMultilevel:
		ml = core.Trace(p, core.Options{
			Trace: tc, Phi: cfg.Phi,
			Rounds: cfg.Rounds, ProbesPerRound: cfg.ProbesPerRound,
		})
		r = ml.IP
	}
	out := TraceOutcome{
		PairIndex: idx, Pair: pair,
		Probes:  probe.TotalSent(p),
		Reached: r.ReachedDst, Switched: r.SwitchedToMDA,
		Graph: r.Graph, ML: ml,
		PriorHops: r.PriorHopsConfirmed, PriorStale: r.PriorAbandoned,
	}
	for _, d := range r.Graph.Diamonds() {
		out.Diamonds = append(out.Diamonds, recordDiamond(d, idx, cfg.Phi))
	}
	return out
}

// recordDiamond evaluates the survey metrics for one diamond.
func recordDiamond(d *topo.Diamond, pairIdx, phi int) DiamondRecord {
	rec := DiamondRecord{
		Key:         d.Key(),
		PairIndex:   pairIdx,
		Metrics:     d.ComputeMetrics(),
		MaxProbDiff: d.MaxProbabilityDifference(),
	}
	g := d.Graph()
	for _, h := range d.MeshedHopPairs() {
		rec.MeshMissProbs = append(rec.MeshMissProbs, meshMissProb(g, h, phi))
	}
	return rec
}

// meshMissProb computes Eq. (1) for the meshed hop pair (h, h+1), tracing
// from the wider hop as the MDA-Lite does.
func meshMissProb(g *topo.Graph, h, phi int) float64 {
	wi, wj := g.Width(h), g.Width(h+1)
	var degrees []int
	if wi >= wj {
		for _, v := range g.Hop(h) {
			degrees = append(degrees, g.OutDegree(v))
		}
	} else {
		for _, v := range g.Hop(h + 1) {
			degrees = append(degrees, g.InDegree(v))
		}
	}
	return fakeroute.MeshingMissProb(degrees, phi)
}

// RouterRecord captures the router-level view of one trace (Sec 5.2).
type RouterRecord struct {
	PairIndex int
	// Sets are the accepted multi-address alias sets (routers).
	Sets []alias.Set
	// Effects classifies each IP diamond per Table 3.
	Effects []core.DiamondEffect
	// WidthBefore and WidthAfter give, per IP diamond, the max width at
	// the IP level and at the router level (Figs 13/14).
	WidthBefore, WidthAfter []int
	// RouterDiamonds holds max widths of diamonds in the router graph.
	RouterDiamonds []int
}

// RouterView extracts the router-level records from a multilevel survey
// result.
func RouterView(res *Result) []RouterRecord {
	var out []RouterRecord
	for _, o := range res.Outcomes {
		if o.ML == nil {
			continue
		}
		rr := RouterRecord{PairIndex: o.PairIndex, Sets: alias.RouterSets(o.ML.Sets)}
		router := o.ML.RouterGraph
		for _, d := range o.Graph.Diamonds() {
			rr.Effects = append(rr.Effects, core.ClassifyDiamond(d, router))
			rr.WidthBefore = append(rr.WidthBefore, d.MaxWidth())
			rr.WidthAfter = append(rr.WidthAfter, routerSpanMaxWidth(router, d))
		}
		for _, rd := range router.Diamonds() {
			rr.RouterDiamonds = append(rr.RouterDiamonds, rd.MaxWidth())
		}
		out = append(out, rr)
	}
	return out
}

// routerSpanMaxWidth is the max hop width of the router graph within the
// IP diamond's hop span.
func routerSpanMaxWidth(router *topo.Graph, d *topo.Diamond) int {
	w := 1
	for h := d.DivHop; h <= d.ConvHop; h++ {
		if n := router.Width(h); n > w {
			w = n
		}
	}
	return w
}

// AllRouterSets collects every per-trace accepted set's addresses, for
// transitive-closure aggregation (Fig 12 right).
func AllRouterSets(records []RouterRecord) [][]packet.Addr {
	var out [][]packet.Addr
	for _, r := range records {
		for _, s := range r.Sets {
			out = append(out, s.Addrs)
		}
	}
	return out
}
