// Package survey reproduces the paper's Sec 5 surveys over a synthetic
// Internet: a population of (source, destination) paths threaded through a
// shared library of load-balanced "diamond" structures, served by a
// Fakeroute network.
//
// The generator is calibrated to the paper's reported population shapes
// (the repro substitution documented in DESIGN.md): roughly half of paths
// cross at least one per-flow load balancer; about half of diamonds have
// maximum length 2; ~89% of diamonds have zero width asymmetry; a minority
// are meshed, mostly with a meshed-hop ratio under 0.4; two "giant core"
// structures of widths 48 and 56 are reachable from many ingress points;
// and routers mostly expose 2 interfaces to a vantage point, with one
// >50-interface outlier inside the width-56 core.
package survey

import (
	"fmt"

	"mmlpt/internal/fakeroute"
	"mmlpt/internal/nprand"
	"mmlpt/internal/packet"
	"mmlpt/internal/topo"
)

// GenConfig controls the synthetic Internet.
type GenConfig struct {
	Seed uint64
	// Pairs is the number of (source, destination) measurements.
	Pairs int
	// Sources is the number of vantage points (paper: 35).
	Sources int
	// DistinctDiamonds sizes the template library (0: Pairs/5, min 24).
	DistinctDiamonds int
	// LBFraction is the portion of paths crossing at least one load
	// balancer (paper: 155,030/294,832 ≈ 0.526).
	LBFraction float64
	// MeanDiamondsPerLBPath is the mean diamond count on LB paths
	// (paper: 220,193/155,030 ≈ 1.42).
	MeanDiamondsPerLBPath float64
	// StarHopProb is the probability a chain hop is non-responsive.
	StarHopProb float64
	// AliasHopProb is the probability a multi-vertex diamond hop has its
	// interfaces grouped onto multi-interface routers.
	AliasHopProb float64
}

func (c *GenConfig) fill() {
	if c.Pairs == 0 {
		c.Pairs = 1000
	}
	if c.Sources == 0 {
		c.Sources = 5
	}
	if c.DistinctDiamonds == 0 {
		c.DistinctDiamonds = c.Pairs / 5
		if c.DistinctDiamonds < 24 {
			c.DistinctDiamonds = 24
		}
	}
	if c.LBFraction == 0 {
		c.LBFraction = 0.526
	}
	if c.MeanDiamondsPerLBPath == 0 {
		c.MeanDiamondsPerLBPath = 1.42
	}
	if c.StarHopProb == 0 {
		c.StarHopProb = 0.01
	}
	if c.AliasHopProb == 0 {
		c.AliasHopProb = 0.40
	}
}

// Pair is one measurement target.
type Pair struct {
	Src, Dst packet.Addr
	// HasLB records whether the ground-truth path crosses a load
	// balancer.
	HasLB bool
}

// Template is one distinct diamond structure, shared across paths.
type Template struct {
	ID int
	// Frag is the fragment graph: hop 0 the divergence vertex, last hop
	// the convergence vertex, both single.
	Frag *topo.Graph
	// Class labels the generator category for reporting.
	Class string
	// Weight is the reuse popularity.
	Weight float64
}

// Universe is the generated internet.
type Universe struct {
	Cfg       GenConfig
	Net       *fakeroute.Network
	Pairs     []Pair
	Templates []*Template
	// RouterOf is the ground-truth interface→router mapping.
	RouterOf map[packet.Addr]int

	// trunk memoizes shared chain addresses per (source, hop, variant):
	// paths from one vantage point share most of their non-diamond hops,
	// as real paths through a provider's core do. Without this sharing,
	// per-path chain vertices would dominate the aggregated topology and
	// distort the Table 1 single-flow ratios.
	trunk map[trunkKey]packet.Addr

	// routerRng drives router configuration and alias grouping on a
	// stream independent of topology-shape sampling, so tuning grouping
	// probabilities does not reshuffle the diamond population.
	routerRng *nprand.Source
}

type trunkKey struct {
	src     int
	hop     int
	variant int
}

// Generate builds the synthetic Internet.
func Generate(cfg GenConfig) *Universe {
	cfg.fill()
	rng := nprand.New(cfg.Seed ^ 0x53555256)
	u := &Universe{
		Cfg:       cfg,
		Net:       fakeroute.NewNetwork(cfg.Seed ^ 0xfa6e),
		RouterOf:  make(map[packet.Addr]int),
		trunk:     make(map[trunkKey]packet.Addr),
		routerRng: nprand.New(cfg.Seed ^ 0x726f7574),
	}
	alloc := fakeroute.NewAddrAllocator(packet.AddrFrom4(10, 0, 0, 1))

	u.buildTemplates(rng, alloc)
	u.buildPaths(rng, alloc)
	return u
}

func (u *Universe) buildTemplates(rng *nprand.Source, alloc *fakeroute.AddrAllocator) {
	n := u.Cfg.DistinctDiamonds
	// The two giant shared cores come first with elevated popularity
	// (they are encountered from many ingress points, producing the
	// measured-width peaks at 48 and 56, but remain a few percent of
	// encounters as in Fig 10).
	u.addTemplate(u.giant48(alloc), "giant48", 4)
	u.addTemplate(u.giant56(alloc), "giant56", 3)
	u.addTemplate(u.giant96(alloc), "giant96", 2)
	for len(u.Templates) < n {
		t, class := u.sampleTemplate(rng, alloc)
		// Zipf-flavoured popularity: early templates are hot cores seen
		// from many ingress points, the tail is seen once or twice.
		rank := float64(len(u.Templates))
		w := 4 / (1 + rank/8)
		// Meshed diamonds are ~31% of the paper's distinct diamonds but
		// only ~15% of measured encounters: structurally common, rarely
		// on popular paths. Down-weight their popularity accordingly.
		if class == "meshed" {
			w *= 0.55
		}
		u.addTemplate(t, class, w)
	}
}

func (u *Universe) addTemplate(frag *topo.Graph, class string, weight float64) {
	t := &Template{ID: len(u.Templates), Frag: frag, Class: class, Weight: weight}
	u.Templates = append(u.Templates, t)
}

// sampleTemplate draws one diamond shape from the calibrated mix.
func (u *Universe) sampleTemplate(rng *nprand.Source, alloc *fakeroute.AddrAllocator) (*topo.Graph, string) {
	b := fakeroute.NewPathBuilder(alloc)
	switch rng.Categorical([]float64{
		0.20, // simplest 2×2
		0.13, // length-2, width 3..9
		0.07, // length-2, wide 10..32
		0.24, // length 3..5, uniform, unmeshed
		0.08, // long (6..14), narrow
		0.24, // meshed (the paper's distinct-diamond survey is ~31% meshed)
		0.07, // asymmetric (unmeshed)
	}) {
	case 0:
		b.Spread(2)
	case 1:
		b.Spread(3 + rng.Intn(7))
	case 2:
		b.Spread(10 + rng.Intn(23))
	case 3:
		w := 2 + rng.Intn(5)
		b.Spread(w)
		extra := 1 + rng.Intn(3) // total multi hops 2..4 → length 3..5
		for i := 0; i < extra; i++ {
			if rng.Float64() < 0.5 && w*2 <= 16 {
				b.Spread(2)
				w *= 2
			} else {
				b.Converge(w) // one-to-one
			}
		}
		b.Converge(smallestDivisor(w))
	case 4:
		w := 2 + rng.Intn(3)
		b.Spread(w)
		hops := 4 + rng.Intn(9)
		for i := 0; i < hops; i++ {
			b.Converge(w)
		}
	case 5:
		w := 3 + rng.Intn(6)
		b.Spread(w)
		// The meshed population splits into densely meshed pairs (full
		// bipartite: trivially detectable) and sparsely meshed pairs with
		// only one or two degree-2 vertices, whose Eq. (1) miss
		// probability at phi=2 is 0.5 or 0.25 — the tail of Fig 2.
		switch rng.Categorical([]float64{0.55, 0.10, 0.35}) {
		case 0:
			b.Full(w + rng.Intn(3))
		case 1:
			b.CrossLink(1)
		case 2:
			b.CrossLink(2 + rng.Intn(2))
		}
		pads := 1 + rng.Intn(4)
		cur := len(b.Current())
		for i := 0; i < pads; i++ {
			b.Converge(cur)
		}
	case 6:
		// Asymmetric but mostly mildly so: the bulk of width-asymmetric
		// diamonds in the paper's survey show a maximum probability
		// difference of 0.25 or less (Fig 8); a minority are strongly
		// skewed.
		if rng.Float64() < 0.7 {
			w := 3 + rng.Intn(3)
			b.Spread(w)
			counts := make([]int, w)
			for i := range counts {
				counts[i] = 2
			}
			counts[w-1] = 1 // one narrow sibling: small probability gap
			b.SpreadUneven(counts)
		} else {
			b.Spread(2)
			b.SpreadUneven([]int{2 + rng.Intn(3), 1})
		}
	}
	g := b.Converge(1).Graph()
	u.registerFragment(g)
	return g, classOf(g)
}

func classOf(g *topo.Graph) string {
	d := fragmentDiamond(g)
	if d == nil {
		return "chain"
	}
	m := d.ComputeMetrics()
	switch {
	case m.Meshed:
		return "meshed"
	case m.MaxWidthAsymmetry > 0:
		return "asymmetric"
	case m.MaxLength == 2:
		return "len2"
	default:
		return "uniform"
	}
}

// fragmentDiamond views the whole fragment as one diamond (hop 0 div,
// last hop conv).
func fragmentDiamond(g *topo.Graph) *topo.Diamond {
	ds := g.Diamonds()
	if len(ds) == 0 {
		return nil
	}
	return ds[0]
}

func smallestDivisor(w int) int {
	for d := 2; d <= w; d++ {
		if w%d == 0 {
			return w / d
		}
	}
	return 1
}

// giant48 is the width-48 shared core: a maximum-length-2 structure whose
// interfaces are all on distinct routers, so it survives alias resolution
// (Fig 13: the 48 peak remains).
func (u *Universe) giant48(alloc *fakeroute.AddrAllocator) *topo.Graph {
	g := fakeroute.NewPathBuilder(alloc).Spread(48).Converge(1).Graph()
	for i := range g.Vertices {
		u.assignRouter(u.Net.NewRouter(), g.Vertices[i].Addr, nil)
	}
	return g
}

// giant96 is the width-96 shared core: the widest load-balanced hop the
// paper reports ("load balancing practices on a scale — up to 96
// interfaces at a single hop — never before described"). Like giant48 it
// is alias-free.
func (u *Universe) giant96(alloc *fakeroute.AddrAllocator) *topo.Graph {
	g := fakeroute.NewPathBuilder(alloc).Spread(96).Converge(1).Graph()
	for i := range g.Vertices {
		u.assignRouter(u.Net.NewRouter(), g.Vertices[i].Addr, nil)
	}
	return g
}

// giant56 is the width-56 shared core: three 56-wide hops where the middle
// hop's interfaces all belong to one >50-interface router (the paper's
// single giant router), so alias resolution collapses the middle hop to
// width 1 and the diamond resolves into several smaller diamonds (Fig 13:
// the 56 peak disappears; Table 3's "multiple smaller diamonds" row).
func (u *Universe) giant56(alloc *fakeroute.AddrAllocator) *topo.Graph {
	rng := u.routerRng
	b := fakeroute.NewPathBuilder(alloc).
		Spread(56).   // hop 1: width 56
		Converge(56). // hop 2: width 56 (one-to-one)
		Converge(56). // hop 3: width 56 (one-to-one)
		Converge(1)
	g := b.Graph()
	// Hop 1: routers of size 2 (some 4), shared counters.
	u.groupHop(rng, g, 1, []float64{0, 0, 0.8, 0, 0.2})
	// Hop 2: one giant router owning all 56 interfaces.
	giant := u.Net.NewRouter()
	for _, id := range g.Hop(2) {
		u.assignRouter(giant, g.V(id).Addr, nil)
	}
	// Hop 3: routers of sizes up to 49.
	ids := g.Hop(3)
	big := u.Net.NewRouter()
	for i := 0; i < 49; i++ {
		u.assignRouter(big, g.V(ids[i]).Addr, nil)
	}
	rest := u.Net.NewRouter()
	for i := 49; i < len(ids); i++ {
		u.assignRouter(rest, g.V(ids[i]).Addr, nil)
	}
	// Divergence and convergence points.
	u.assignRouter(u.Net.NewRouter(), g.V(g.Hop(0)[0]).Addr, nil)
	u.assignRouter(u.Net.NewRouter(), g.V(g.Hop(g.NumHops() - 1)[0]).Addr, nil)
	return g
}

// registerFragment assigns routers and interfaces for a fragment's
// vertices: multi-vertex hops are alias-grouped with probability
// AliasHopProb; everything else gets one router per interface. A fraction
// of wide hops sit in MPLS tunnels, with per-router constant labels (some
// flapping, which disqualifies the label for alias resolution).
func (u *Universe) registerFragment(g *topo.Graph) {
	rng := u.routerRng
	label := uint32(16 + rng.Intn(1<<18))
	for h := 0; h < g.NumHops(); h++ {
		ids := g.Hop(h)
		mpls := len(ids) >= 2 && rng.Float64() < 0.15
		// A width-2 hop can only collapse to a single router (Table 3's
		// "one path"), never shrink; grouping probability is therefore
		// width-dependent so the Table 3 mix matches the measured one.
		pAlias := u.Cfg.AliasHopProb
		if len(ids) == 2 {
			pAlias = u.Cfg.AliasHopProb * 0.5
		}
		if len(ids) >= 2 && rng.Float64() < pAlias {
			// Router sizes: mostly 2, tail to 8 (Fig 12: 68% size 2, 97%
			// ≤10 at the distinct-router level).
			u.groupHop(rng, g, h, []float64{0, 0, 0.72, 0.14, 0.06, 0.04, 0.02, 0.01, 0.01})
		} else {
			for _, id := range ids {
				a := g.V(id).Addr
				if a != topo.StarAddr {
					u.assignRouter(u.Net.NewRouter(), a, rng)
				}
			}
		}
		if mpls {
			u.labelHop(rng, g, h, &label)
		}
	}
}

// labelHop puts hop h's interfaces into an MPLS tunnel: interfaces of the
// same router share a label, different routers carry different labels,
// and a fifth of tunnels flap their labels over time.
func (u *Universe) labelHop(rng *nprand.Source, g *topo.Graph, h int, label *uint32) {
	flaps := rng.Float64() < 0.20
	byRouter := make(map[int]uint32)
	for _, id := range g.Hop(h) {
		a := g.V(id).Addr
		ifc := u.Net.Iface(a)
		if ifc == nil {
			continue
		}
		l, ok := byRouter[ifc.Router.ID]
		if !ok {
			*label += 7
			l = *label
			byRouter[ifc.Router.ID] = l
		}
		ifc.MPLSLabel = l
		ifc.LabelFlaps = flaps
	}
}

// groupHop partitions hop h's interfaces into routers with sizes drawn
// from sizeWeights (index = size).
func (u *Universe) groupHop(rng *nprand.Source, g *topo.Graph, h int, sizeWeights []float64) {
	ids := append([]topo.VertexID(nil), g.Hop(h)...)
	if rng != nil {
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	}
	i := 0
	for i < len(ids) {
		size := 2
		if rng != nil {
			size = rng.Categorical(sizeWeights)
		}
		if size > len(ids)-i {
			size = len(ids) - i
		}
		if size < 1 {
			size = 1
		}
		r := u.Net.NewRouter()
		u.configureRouter(r, rng)
		for k := 0; k < size; k++ {
			u.assignRouter(r, g.V(ids[i+k]).Addr, nil)
		}
		i += size
	}
}

// assignRouter creates the interface and records ground truth. When rng is
// non-nil the router's behaviour is also randomized.
func (u *Universe) assignRouter(r *fakeroute.Router, a packet.Addr, rng *nprand.Source) {
	if a == topo.StarAddr {
		return
	}
	if u.Net.Iface(a) != nil {
		return
	}
	if rng != nil {
		u.configureRouter(r, rng)
	}
	u.Net.AddIface(r, a)
	u.RouterOf[a] = r.ID
}

// configureRouter draws the router's counter architecture, fingerprint and
// echo behaviour from the calibrated mix behind Table 2.
func (u *Universe) configureRouter(r *fakeroute.Router, rng *nprand.Source) {
	switch rng.Categorical([]float64{0.38, 0.12, 0.16, 0.03, 0.09, 0.22}) {
	case 0:
		r.IPID = fakeroute.IPIDShared
	case 1:
		r.IPID = fakeroute.IPIDPerInterface
	case 2:
		r.IPID = fakeroute.IPIDConstantZero
	case 3:
		r.IPID = fakeroute.IPIDRandom
	case 4:
		r.IPID = fakeroute.IPIDEchoCopy
	case 5:
		r.IPID = fakeroute.IPIDIndirectZero
	}
	r.Velocity = 0.05 + rng.Float64()*0.5
	if rng.Float64() < 0.18 {
		r.RespondsToEcho = false
	}
	switch rng.Categorical([]float64{0.7, 0.2, 0.1}) {
	case 0:
		r.InitialTTLExceeded, r.InitialTTLEcho = 255, 255
	case 1:
		r.InitialTTLExceeded, r.InitialTTLEcho = 64, 64
	case 2:
		r.InitialTTLExceeded, r.InitialTTLEcho = 255, 64
	}
}

// buildPaths threads each measurement pair through chain hops and
// templates.
func (u *Universe) buildPaths(rng *nprand.Source, alloc *fakeroute.AddrAllocator) {
	srcBase := packet.AddrFrom4(192, 0, 2, 1)
	dstAlloc := fakeroute.NewAddrAllocator(packet.AddrFrom4(203, 0, 113, 1))
	weights := make([]float64, len(u.Templates))
	for i, t := range u.Templates {
		weights[i] = t.Weight
	}
	for i := 0; i < u.Cfg.Pairs; i++ {
		srcIdx := i % u.Cfg.Sources
		src := packet.Addr(uint32(srcBase) + uint32(srcIdx))
		dst := dstAlloc.Next()
		hasLB := rng.Float64() < u.Cfg.LBFraction
		g := u.buildPathGraph(rng, alloc, weights, srcIdx, dst, hasLB)
		u.Net.AddPath(src, dst, g)
		u.Pairs = append(u.Pairs, Pair{Src: src, Dst: dst, HasLB: hasLB})
	}
}

// chainAddr returns a chain-hop address: usually a shared per-source
// trunk interface, occasionally a fresh one (paths diverge eventually).
func (u *Universe) chainAddr(rng *nprand.Source, alloc *fakeroute.AddrAllocator, srcIdx, hop int) packet.Addr {
	if rng.Float64() < 0.8 {
		k := trunkKey{src: srcIdx, hop: hop, variant: rng.Intn(3)}
		if a, ok := u.trunk[k]; ok {
			return a
		}
		a := alloc.Next()
		u.assignRouter(u.Net.NewRouter(), a, u.routerRng)
		u.trunk[k] = a
		return a
	}
	a := alloc.Next()
	u.assignRouter(u.Net.NewRouter(), a, u.routerRng)
	return a
}

// buildPathGraph assembles one path: short chains around 0..n embedded
// diamond templates.
func (u *Universe) buildPathGraph(rng *nprand.Source, alloc *fakeroute.AddrAllocator, weights []float64, srcIdx int, dst packet.Addr, hasLB bool) *topo.Graph {
	g := topo.New()
	hop := 0
	var tail topo.VertexID // single current vertex

	appendChain := func(n int) {
		for i := 0; i < n; i++ {
			var v topo.VertexID
			if rng.Float64() < u.Cfg.StarHopProb {
				v = g.AddVertex(hop, topo.StarAddr)
			} else {
				v = g.AddVertex(hop, u.chainAddr(rng, alloc, srcIdx, hop))
			}
			if hop > 0 {
				g.AddEdge(tail, v)
			}
			tail = v
			hop++
		}
	}

	// Chain hops are unique per path while diamond structures are shared
	// across paths, so the chain length directly controls how much of the
	// aggregate topology a single-flow trace can see (Table 1's
	// single-flow row). Short chains keep the diamond interiors dominant,
	// as the paper's measured aggregate was.
	appendChain(1 + rng.Intn(2))
	if hasLB {
		count := 1
		for rng.Float64() < (u.Cfg.MeanDiamondsPerLBPath-1)/u.Cfg.MeanDiamondsPerLBPath && count < 4 {
			count++
		}
		used := map[int]bool{}
		for d := 0; d < count; d++ {
			ti := rng.Categorical(weights)
			if used[ti] {
				continue
			}
			used[ti] = true
			tail = u.embed(g, u.Templates[ti].Frag, tail, &hop)
			appendChain(1)
		}
		appendChain(rng.Intn(2))
	} else {
		appendChain(3 + rng.Intn(4))
	}
	// Destination.
	v := g.AddVertex(hop, dst)
	g.AddEdge(tail, v)
	return g
}

// embed copies a fragment into g. The fragment's hop 0 vertex becomes the
// next hop after tail (with an edge from tail); the fragment's final
// vertex is returned as the new tail.
func (u *Universe) embed(g *topo.Graph, frag *topo.Graph, tail topo.VertexID, hop *int) topo.VertexID {
	idMap := make(map[topo.VertexID]topo.VertexID, len(frag.Vertices))
	base := *hop
	for h := 0; h < frag.NumHops(); h++ {
		for _, id := range frag.Hop(h) {
			idMap[id] = g.AddVertex(base+h, frag.V(id).Addr)
		}
	}
	for i := range frag.Vertices {
		fu := topo.VertexID(i)
		for _, fw := range frag.Succ(fu) {
			g.AddEdge(idMap[fu], idMap[fw])
		}
	}
	div := idMap[frag.Hop(0)[0]]
	g.AddEdge(tail, div)
	last := frag.NumHops() - 1
	*hop = base + last + 1
	return idMap[frag.Hop(last)[0]]
}

// Describe summarizes the universe for logs.
func (u *Universe) Describe() string {
	return fmt.Sprintf("universe: %d pairs, %d templates, %d routers",
		len(u.Pairs), len(u.Templates), len(u.Net.Routers()))
}
