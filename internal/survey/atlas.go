package survey

import (
	"mmlpt/internal/atlas"
	"mmlpt/internal/traceio"
)

// AtlasSink feeds a streaming survey into a cross-trace atlas: each
// record's topology, routers and diamond encounters merge into the
// store the moment the pair completes. Composable with any other sink
// (Tee, the JSONL record log, aggregates); because the atlas's snapshot
// is canonical — sharded by address, shards merged in ascending address
// order — the snapshot a run produces is byte-identical for every
// worker count and shard count, and a resumed run's replay rebuilds the
// exact atlas an uninterrupted run would have produced.
type AtlasSink struct {
	Atlas *atlas.Atlas
}

// NewAtlasSink returns a sink feeding a fresh atlas with opt shards.
func NewAtlasSink(opt atlas.Options) *AtlasSink {
	return &AtlasSink{Atlas: atlas.New(opt)}
}

// Emit merges one record.
func (s *AtlasSink) Emit(rec *traceio.SurveyRecord) error {
	return s.Atlas.AddRecord(rec)
}

// Close is a no-op: the atlas stays queryable after the run.
func (s *AtlasSink) Close() error { return nil }
