package survey

import (
	"fmt"

	"mmlpt/internal/atlas"
	"mmlpt/internal/traceio"
)

// AtlasSink feeds a streaming survey into a cross-trace atlas: each
// record's topology, routers and diamond encounters merge into the
// store the moment the pair completes. Composable with any other sink
// (Tee, the JSONL record log, aggregates); because the atlas's snapshot
// is canonical — sharded by address, shards merged in ascending address
// order — the snapshot a run produces is byte-identical for every
// worker count and shard count, and a resumed run's replay rebuilds the
// exact atlas an uninterrupted run would have produced.
//
// With PublishDeltas the sink additionally writes periodic incremental
// snapshots — each covering only the records since the previous publish
// — so a serving process (cmd/atlasd) can advance its view of a
// long-running survey by compacting base + deltas (atlas.Compact)
// and swapping, without waiting for the run to finish.
type AtlasSink struct {
	Atlas *atlas.Atlas

	opt          atlas.Options
	publishBase  string
	publishEvery int
	delta        *atlas.Atlas
	sinceFlush   int
	published    []string
}

// NewAtlasSink returns a sink feeding a fresh atlas with opt shards.
func NewAtlasSink(opt atlas.Options) *AtlasSink {
	return &AtlasSink{Atlas: atlas.New(opt), opt: opt}
}

// PublishDeltas enables incremental publishing: after every `every`
// records the sink atomically writes a delta snapshot next to basePath
// (basePath.d000000, .d000001, …) covering only the records since the
// previous delta. Compacting all deltas over an empty base reproduces
// the full snapshot byte-for-byte. Must be called before the first
// Emit.
func (s *AtlasSink) PublishDeltas(basePath string, every int) {
	if every <= 0 {
		every = 1
	}
	s.publishBase = basePath
	s.publishEvery = every
	s.delta = atlas.New(s.opt)
}

// Published returns the delta snapshot paths written so far.
func (s *AtlasSink) Published() []string {
	return append([]string(nil), s.published...)
}

// Emit merges one record.
func (s *AtlasSink) Emit(rec *traceio.SurveyRecord) error {
	if err := s.Atlas.AddRecord(rec); err != nil {
		return err
	}
	if s.delta == nil {
		return nil
	}
	if err := s.delta.AddRecord(rec); err != nil {
		return err
	}
	s.sinceFlush++
	if s.sinceFlush >= s.publishEvery {
		return s.flushDelta()
	}
	return nil
}

func (s *AtlasSink) flushDelta() error {
	path := fmt.Sprintf("%s.d%06d", s.publishBase, len(s.published))
	if err := s.delta.Save(path); err != nil {
		return fmt.Errorf("atlas delta %s: %w", path, err)
	}
	s.published = append(s.published, path)
	s.delta = atlas.New(s.opt)
	s.sinceFlush = 0
	return nil
}

// Close flushes a final partial delta when publishing is enabled; the
// atlas itself stays queryable after the run.
func (s *AtlasSink) Close() error {
	if s.delta != nil && s.sinceFlush > 0 {
		return s.flushDelta()
	}
	return nil
}
