package survey

import (
	"fmt"
	"os"
	"sort"

	"mmlpt/internal/mda"
	"mmlpt/internal/packet"
	"mmlpt/internal/topo"
	"mmlpt/internal/traceio"
)

// Sink consumes survey records as pairs finish tracing. Run delivers
// records in pair order on a single goroutine (the collector), so sinks
// need no internal locking; an Emit error aborts the run and is returned
// from Run. Run never closes sinks — the caller that built them does.
type Sink interface {
	Emit(*traceio.SurveyRecord) error
	Close() error
}

// Flusher is implemented by sinks that buffer: Run flushes all of them
// before writing a checkpoint, so the checkpoint never points past
// durable data.
type Flusher interface {
	Flush() error
}

// NewRecord converts one trace outcome into its streamed record. The
// record is byte-stable: encoding, decoding and re-encoding it yields
// identical JSONL bytes, which is what makes a resumed run's output file
// byte-identical to an uninterrupted one.
func NewRecord(algo Algo, out TraceOutcome) *traceio.SurveyRecord {
	view := &mda.Result{
		Graph: out.Graph, ReachedDst: out.Reached,
		SwitchedToMDA: out.Switched, Probes: out.Probes, DstHop: -1,
	}
	jt := traceio.NewJSONTrace(out.Pair.Src, out.Pair.Dst, algo.String(), view)
	if out.ML != nil {
		jt.AttachMultilevel(out.ML)
	}
	rec := &traceio.SurveyRecord{
		PairIndex: out.PairIndex, HasLB: out.Pair.HasLB, Trace: *jt,
		PriorHops: out.PriorHops, PriorStale: out.PriorStale,
	}
	for _, d := range out.Diamonds {
		rec.Diamonds = append(rec.Diamonds, traceio.SurveyDiamond{
			Div: addrLabel(d.Key.Div), Conv: addrLabel(d.Key.Conv),
			MaxLength: d.Metrics.MaxLength, MaxWidth: d.Metrics.MaxWidth,
			Asymmetry: d.Metrics.MaxWidthAsymmetry, Meshed: d.Metrics.Meshed,
			MeshedRatio: d.Metrics.RatioMeshedHops, Uniform: d.Metrics.Uniform,
			MaxProbDiff:   d.MaxProbDiff,
			MeshMissProbs: append([]float64(nil), d.MeshMissProbs...),
		})
	}
	return rec
}

func addrLabel(a packet.Addr) string {
	if a == topo.StarAddr {
		return "*"
	}
	return a.String()
}

// JSONLSink streams records to a JSONL file through traceio.JSONLWriter.
// The file is created lazily on first use; Run rewires it to truncate
// and append when resuming from a checkpoint.
type JSONLSink struct {
	path string
	jw   *traceio.JSONLWriter
}

// NewJSONLSink returns a sink that will create (or truncate) path on
// first use.
func NewJSONLSink(path string) *JSONLSink {
	return &JSONLSink{path: path}
}

// Path returns the output file.
func (s *JSONLSink) Path() string { return s.path }

// resumeAt truncates the file to the checkpointed durable offset and
// positions the writer there. It must run before the first Emit.
func (s *JSONLSink) resumeAt(off int64) error {
	if s.jw != nil {
		return fmt.Errorf("survey: JSONL sink %s already open, cannot resume", s.path)
	}
	jw, err := traceio.OpenJSONLAt(s.path, off)
	if err != nil {
		return err
	}
	s.jw = jw
	return nil
}

func (s *JSONLSink) open() error {
	if s.jw != nil {
		return nil
	}
	jw, err := traceio.CreateJSONL(s.path)
	if err != nil {
		return err
	}
	s.jw = jw
	return nil
}

// Emit appends one record.
func (s *JSONLSink) Emit(rec *traceio.SurveyRecord) error {
	if err := s.open(); err != nil {
		return err
	}
	return s.jw.Write(rec)
}

// Offset returns the bytes written so far (durable only after Flush).
func (s *JSONLSink) Offset() int64 {
	if s.jw == nil {
		return 0
	}
	return s.jw.Offset()
}

// Flush fsyncs the file. A sink that never emitted has never touched
// the disk, and Flush keeps it that way — so closing or flushing a sink
// after a refused resume cannot truncate the record log the refusal
// protected. (A zero-record run therefore creates no file.)
func (s *JSONLSink) Flush() error {
	if s.jw == nil {
		return nil
	}
	return s.jw.Sync()
}

// Close flushes and closes the file; a no-op if nothing was emitted.
func (s *JSONLSink) Close() error {
	if s.jw == nil {
		return nil
	}
	return s.jw.Close()
}

// MemorySink collects records in order, the streaming analogue of
// reading Result.Outcomes afterwards.
type MemorySink struct {
	Records []*traceio.SurveyRecord
}

// Emit appends the record.
func (s *MemorySink) Emit(rec *traceio.SurveyRecord) error {
	s.Records = append(s.Records, rec)
	return nil
}

// Close is a no-op.
func (s *MemorySink) Close() error { return nil }

// RecordAggregate is the record-level counterpart of Result: every
// number it holds is derived from the streamed records alone, so it can
// be rebuilt exactly by replaying a JSONL file — the property resume
// uses to restore aggregate state after a kill.
type RecordAggregate struct {
	Algo     string
	Records  int
	Reached  int
	Switched int
	// LBTraces counts records with at least one diamond.
	LBTraces         int
	TotalProbes      uint64
	AliasProbes      uint64
	MeasuredDiamonds int
	// Distinct keeps the first encounter per "div|conv" key, mirroring
	// Result.Distinct.
	Distinct map[string]traceio.SurveyDiamond
}

// NewRecordAggregate returns an empty aggregate.
func NewRecordAggregate() *RecordAggregate {
	return &RecordAggregate{Distinct: make(map[string]traceio.SurveyDiamond)}
}

// Add folds one record in.
func (a *RecordAggregate) Add(rec *traceio.SurveyRecord) {
	if a.Algo == "" {
		a.Algo = rec.Trace.Algorithm
	}
	a.Records++
	if rec.Trace.Reached {
		a.Reached++
	}
	if rec.Trace.Switched {
		a.Switched++
	}
	if len(rec.Diamonds) > 0 {
		a.LBTraces++
	}
	a.TotalProbes += rec.Trace.Probes
	a.AliasProbes += rec.Trace.AliasProbes
	for _, d := range rec.Diamonds {
		a.MeasuredDiamonds++
		k := d.Div + "|" + d.Conv
		if _, ok := a.Distinct[k]; !ok {
			a.Distinct[k] = d
		}
	}
}

// Summary renders the aggregate in the style of Result.Summary.
func (a *RecordAggregate) Summary() string {
	var meshed, len2 int
	keys := make([]string, 0, len(a.Distinct))
	for k := range a.Distinct {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		d := a.Distinct[k]
		if d.Meshed {
			meshed++
		}
		if d.MaxLength == 2 {
			len2++
		}
	}
	return fmt.Sprintf(
		"traces: %d, with diamonds: %d, reached: %d\ndiamonds: %d measured, %d distinct (len2 %d, meshed %d)\nprobes: %d trace + %d alias\n",
		a.Records, a.LBTraces, a.Reached,
		a.MeasuredDiamonds, len(a.Distinct), len2, meshed,
		a.TotalProbes, a.AliasProbes)
}

// AggregateSink folds records into a RecordAggregate as they stream by.
type AggregateSink struct {
	Agg *RecordAggregate
}

// NewAggregateSink returns a sink over a fresh aggregate.
func NewAggregateSink() *AggregateSink {
	return &AggregateSink{Agg: NewRecordAggregate()}
}

// Emit folds the record in.
func (s *AggregateSink) Emit(rec *traceio.SurveyRecord) error {
	s.Agg.Add(rec)
	return nil
}

// Close is a no-op.
func (s *AggregateSink) Close() error { return nil }

// Tee fans every record out to several sinks as one compound sink.
type Tee []Sink

// Emit forwards to each sink, stopping at the first error.
func (t Tee) Emit(rec *traceio.SurveyRecord) error {
	for _, s := range t {
		if err := s.Emit(rec); err != nil {
			return err
		}
	}
	return nil
}

// Flush forwards to each flushable sink.
func (t Tee) Flush() error {
	for _, s := range t {
		if f, ok := s.(Flusher); ok {
			if err := f.Flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close closes every sink, returning the first error.
func (t Tee) Close() error {
	var first error
	for _, s := range t {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ReplayJSONL feeds every record of a JSONL file to the sinks in order,
// returning how many records were replayed. Resume uses it to rebuild
// non-file sinks (aggregates, memories) to the exact state they had when
// the checkpoint was written.
func ReplayJSONL(path string, sinks ...Sink) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	err = traceio.DecodeSurveyRecords(f, func(sr *traceio.SurveyRecord) error {
		for _, s := range sinks {
			if err := s.Emit(sr); err != nil {
				return err
			}
		}
		n++
		return nil
	})
	return n, err
}
