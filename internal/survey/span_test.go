package survey

import (
	"bytes"
	"testing"

	"mmlpt/internal/mda"
	"mmlpt/internal/traceio"
)

// lineSink encodes records into a buffer with the canonical per-record
// encoder, mirroring what the fleet runner ships.
type lineSink struct{ buf *bytes.Buffer }

func (s lineSink) Emit(rec *traceio.SurveyRecord) error { return rec.WriteJSONL(s.buf) }
func (s lineSink) Close() error                         { return nil }

// TestSpanConcatenationByteIdentical: running the survey span by span
// and concatenating the record bytes in span order must reproduce the
// whole-survey record stream exactly — the invariant the distributed
// control plane's work units rely on.
func TestSpanConcatenationByteIdentical(t *testing.T) {
	t.Parallel()
	u := Generate(GenConfig{Seed: 33, Pairs: 30})
	base := RunConfig{Algo: AlgoMDALite, Retries: 1, Workers: 3, Trace: mda.Config{Seed: 33}}

	var whole bytes.Buffer
	rc := base
	rc.Sinks = []Sink{lineSink{&whole}}
	if _, err := Run(u, rc); err != nil {
		t.Fatal(err)
	}

	total := JobCount(u, base)
	pairs := JobPairs(u, base)
	if total != 30 || len(pairs) != total {
		t.Fatalf("JobCount=%d JobPairs len=%d, want 30", total, len(pairs))
	}

	var cat bytes.Buffer
	for start := 0; start < total; start += 7 {
		count := 7
		if start+count > total {
			count = total - start
		}
		var span bytes.Buffer
		rc := base
		rc.SpanStart, rc.SpanCount = start, count
		rc.Workers = 1 + start%3 // worker count must not matter
		rc.Sinks = []Sink{lineSink{&span}}
		if _, err := Run(u, rc); err != nil {
			t.Fatal(err)
		}
		// Each span's records carry their global pair indices.
		i := start
		err := traceio.DecodeSurveyRecords(bytes.NewReader(span.Bytes()), func(sr *traceio.SurveyRecord) error {
			if sr.PairIndex != pairs[i] {
				t.Fatalf("span [%d,%d) record %d is pair %d, job list says %d", start, start+count, i-start, sr.PairIndex, pairs[i])
			}
			i++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		cat.Write(span.Bytes())
	}
	if !bytes.Equal(cat.Bytes(), whole.Bytes()) {
		t.Fatalf("concatenated span bytes (%d) differ from whole-run bytes (%d)", cat.Len(), whole.Len())
	}
}

// TestSpanRejectsCheckpointAndBounds: spans cannot be checkpointed or
// resumed (units are retried whole), and out-of-range spans fail fast.
func TestSpanRejectsCheckpointAndBounds(t *testing.T) {
	t.Parallel()
	u := Generate(GenConfig{Seed: 33, Pairs: 10})
	base := RunConfig{Algo: AlgoMDALite, Trace: mda.Config{Seed: 33}}

	rc := base
	rc.SpanStart, rc.SpanCount = 0, 5
	rc.Checkpoint = "x.ckpt"
	if _, err := Run(u, rc); err == nil {
		t.Fatal("span + checkpoint was accepted")
	}

	rc = base
	rc.SpanStart, rc.SpanCount = 8, 5
	if _, err := Run(u, rc); err == nil {
		t.Fatal("out-of-range span was accepted")
	}

	rc = base
	rc.SpanStart, rc.SpanCount = -1, 2
	if _, err := Run(u, rc); err == nil {
		t.Fatal("negative span start was accepted")
	}
}
