package survey

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mmlpt/internal/atlas"
	"mmlpt/internal/traceio"
)

func deltaRecord(i int) *traceio.SurveyRecord {
	base := 10 + i
	a := func(last int) string { return fmt.Sprintf("10.0.%d.%d", base, last) }
	return &traceio.SurveyRecord{
		PairIndex: i,
		Trace: traceio.JSONTrace{
			Src: "192.0.2.1", Dst: fmt.Sprintf("203.0.113.%d", i+1),
			Algorithm: "mda-lite", Reached: true,
			Vertices: []traceio.JSONVertex{
				{Addr: a(1), Hop: 0}, {Addr: a(2), Hop: 1},
				{Addr: a(3), Hop: 1}, {Addr: a(4), Hop: 2},
			},
			Edges: []traceio.JSONEdge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 3}, {From: 2, To: 3}},
			Routers: []traceio.JSONRouter{
				{Addrs: []string{a(2), a(3)}},
			},
		},
		Diamonds: []traceio.SurveyDiamond{
			{Div: a(1), Conv: a(4), MaxWidth: 2, MaxLength: 2},
		},
	}
}

// Delta publishing's contract: compacting the published deltas over an
// empty base reproduces the full-run snapshot byte-for-byte.
func TestAtlasSinkDeltaPublishing(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	base := filepath.Join(dir, "survey.atlas")
	sink := NewAtlasSink(atlas.Options{})
	sink.PublishDeltas(base, 2)
	const n = 5
	for i := 0; i < n; i++ {
		if err := sink.Emit(deltaRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	deltas := sink.Published()
	if len(deltas) != 3 { // 2 + 2 + 1 (final partial flushed by Close)
		t.Fatalf("published %d deltas, want 3: %v", len(deltas), deltas)
	}
	for i, p := range deltas {
		want := fmt.Sprintf("%s.d%06d", base, i)
		if p != want {
			t.Fatalf("delta %d path = %s, want %s", i, p, want)
		}
	}

	full := filepath.Join(dir, "full.atlas")
	if err := sink.Atlas.Save(full); err != nil {
		t.Fatal(err)
	}
	compacted := filepath.Join(dir, "compacted.atlas")
	if err := atlas.Compact(compacted, "", deltas, atlas.Options{}); err != nil {
		t.Fatal(err)
	}
	fb, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := os.ReadFile(compacted)
	if err != nil {
		t.Fatal(err)
	}
	if string(fb) != string(cb) {
		t.Fatal("compacted deltas differ from the full snapshot")
	}

	// Base + later deltas: compacting the first delta as base with the
	// remaining deltas is the same atlas again.
	recompacted := filepath.Join(dir, "recompacted.atlas")
	if err := atlas.Compact(recompacted, deltas[0], deltas[1:], atlas.Options{}); err != nil {
		t.Fatal(err)
	}
	rb, err := os.ReadFile(recompacted)
	if err != nil {
		t.Fatal(err)
	}
	if string(fb) != string(rb) {
		t.Fatal("base+deltas compaction differs from the full snapshot")
	}
}

// Without PublishDeltas the sink behaves exactly as before: no files.
func TestAtlasSinkNoPublishing(t *testing.T) {
	t.Parallel()
	sink := NewAtlasSink(atlas.Options{})
	if err := sink.Emit(deltaRecord(0)); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if got := sink.Published(); len(got) != 0 {
		t.Fatalf("Published = %v, want none", got)
	}
}
