package survey

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mmlpt/internal/mda"
	"mmlpt/internal/traceio"
)

// errKilled simulates the process dying mid-survey: a sink that fails
// after a fixed number of records aborts Run exactly like a kill would,
// except the test regains control to run the resume.
var errKilled = errors.New("simulated kill")

type killSink struct {
	after int
	seen  int
}

func (k *killSink) Emit(*traceio.SurveyRecord) error {
	k.seen++
	if k.seen > k.after {
		return errKilled
	}
	return nil
}

func (k *killSink) Close() error { return nil }

// TestStreamingSinksMatchResult: the streamed records must agree with
// the in-memory aggregate — same order, same counts — and survive a
// JSONL round trip losslessly.
func TestStreamingSinksMatchResult(t *testing.T) {
	t.Parallel()
	u := Generate(GenConfig{Seed: 21, Pairs: 50})
	mem := &MemorySink{}
	agg := NewAggregateSink()
	jsonl := NewJSONLSink(filepath.Join(t.TempDir(), "records.jsonl"))
	res, err := Run(u, RunConfig{
		Algo: AlgoMDALite, Retries: 1, Workers: 4,
		Trace: mda.Config{Seed: 21},
		Sinks: []Sink{jsonl, mem, agg},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := jsonl.Close(); err != nil {
		t.Fatal(err)
	}

	if len(mem.Records) != len(res.Outcomes) {
		t.Fatalf("streamed %d records for %d outcomes", len(mem.Records), len(res.Outcomes))
	}
	for i, rec := range mem.Records {
		if rec.PairIndex != res.Outcomes[i].PairIndex {
			t.Fatalf("record %d is pair %d, outcome is pair %d", i, rec.PairIndex, res.Outcomes[i].PairIndex)
		}
	}
	if agg.Agg.TotalProbes != res.TotalProbes {
		t.Fatalf("aggregate probes %d, result %d", agg.Agg.TotalProbes, res.TotalProbes)
	}
	if agg.Agg.LBTraces != res.LBTraces {
		t.Fatalf("aggregate LB traces %d, result %d", agg.Agg.LBTraces, res.LBTraces)
	}
	if agg.Agg.MeasuredDiamonds != len(res.Measured) {
		t.Fatalf("aggregate measured %d, result %d", agg.Agg.MeasuredDiamonds, len(res.Measured))
	}
	if len(agg.Agg.Distinct) != len(res.Distinct) {
		t.Fatalf("aggregate distinct %d, result %d", len(agg.Agg.Distinct), len(res.Distinct))
	}

	f, err := os.Open(jsonl.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	decoded, err := traceio.ReadSurveyRecords(f)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mem.Records, decoded) {
		t.Fatal("JSONL round trip does not reproduce the streamed records")
	}
}

// TestKillAndResumeByteIdentical is the acceptance test for
// checkpoint/resume: a survey killed mid-run and resumed must produce a
// final JSONL file byte-identical to — and a record aggregate deep-equal
// to — an uninterrupted run with the same seed, including re-emitting
// the records that were written after the last checkpoint (and are
// therefore truncated away on resume).
func TestKillAndResumeByteIdentical(t *testing.T) {
	t.Parallel()
	const (
		pairs = 60
		seed  = 33
		every = 7
		kill  = 23 // traces completed before the simulated kill
	)
	cfg := RunConfig{
		Algo: AlgoMDALite, Retries: 1, Workers: 4,
		Trace: mda.Config{Seed: seed},
	}
	dir := t.TempDir()

	// Uninterrupted reference run.
	refPath := filepath.Join(dir, "ref.jsonl")
	refCk := filepath.Join(dir, "ref.ckpt")
	refJSONL := NewJSONLSink(refPath)
	refAgg := NewAggregateSink()
	refCfg := cfg
	refCfg.Sinks = []Sink{refJSONL, refAgg}
	refCfg.Checkpoint = refCk
	refCfg.CheckpointEvery = every
	if _, err := Run(Generate(GenConfig{Seed: seed, Pairs: pairs}), refCfg); err != nil {
		t.Fatal(err)
	}
	if err := refJSONL.Close(); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: the kill sink aborts after `kill` records, past
	// the last checkpoint at 21 so the tail must be truncated on resume.
	outPath := filepath.Join(dir, "out.jsonl")
	ckPath := filepath.Join(dir, "out.ckpt")
	jsonl1 := NewJSONLSink(outPath)
	killCfg := cfg
	killCfg.Sinks = []Sink{jsonl1, NewAggregateSink(), &killSink{after: kill}}
	killCfg.Checkpoint = ckPath
	killCfg.CheckpointEvery = every
	_, err := Run(Generate(GenConfig{Seed: seed, Pairs: pairs}), killCfg)
	if !errors.Is(err, errKilled) {
		t.Fatalf("interrupted run returned %v, want simulated kill", err)
	}
	// Like an OS kill, whatever the file holds beyond the checkpoint is
	// untrusted; closing the sink here just flushes buffers so the
	// truncation path below has a real tail to discard.
	if err := jsonl1.Close(); err != nil {
		t.Fatal(err)
	}
	ck, err := traceio.ReadCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Done != (kill/every)*every {
		t.Fatalf("checkpoint done = %d, want %d", ck.Done, (kill/every)*every)
	}

	// Resume in a "new process": a fresh universe (per-pair sessions are
	// consumed by tracing), the same files, Resume set.
	jsonl2 := NewJSONLSink(outPath)
	agg2 := NewAggregateSink()
	resumeCfg := cfg
	resumeCfg.Sinks = []Sink{jsonl2, agg2}
	resumeCfg.Checkpoint = ckPath
	resumeCfg.CheckpointEvery = every
	resumeCfg.Resume = true
	res2, err := Run(Generate(GenConfig{Seed: seed, Pairs: pairs}), resumeCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := jsonl2.Close(); err != nil {
		t.Fatal(err)
	}
	if len(res2.Outcomes) != pairs-ck.Done {
		t.Fatalf("resumed run traced %d pairs, want %d", len(res2.Outcomes), pairs-ck.Done)
	}

	refBytes, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	outBytes, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refBytes, outBytes) {
		t.Fatal("resumed JSONL differs from the uninterrupted run")
	}
	if !reflect.DeepEqual(refAgg.Agg, agg2.Agg) {
		t.Fatalf("resumed aggregate differs:\nref    %+v\nresume %+v", refAgg.Agg, agg2.Agg)
	}
	final, err := traceio.ReadCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if final.Done != pairs || final.Total != pairs {
		t.Fatalf("final checkpoint %d/%d, want %d/%d", final.Done, final.Total, pairs, pairs)
	}
}

// TestResumeRejectsOptionMismatch: splicing records from two different
// experiments into one file must be refused.
func TestResumeRejectsOptionMismatch(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "s.ckpt")
	outPath := filepath.Join(dir, "s.jsonl")
	base := RunConfig{
		Algo: AlgoMDALite, Retries: 1, Workers: 2,
		Trace: mda.Config{Seed: 5}, Checkpoint: ckPath, CheckpointEvery: 4,
	}
	run1 := base
	jsonl := NewJSONLSink(outPath)
	run1.Sinks = []Sink{jsonl, &killSink{after: 10}}
	if _, err := Run(Generate(GenConfig{Seed: 5, Pairs: 30}), run1); !errors.Is(err, errKilled) {
		t.Fatalf("setup run: %v", err)
	}
	if err := jsonl.Close(); err != nil {
		t.Fatal(err)
	}

	run2 := base
	run2.Resume = true
	run2.Phi = 4 // different meshing budget: different experiment
	run2.Sinks = []Sink{NewJSONLSink(outPath)}
	if _, err := Run(Generate(GenConfig{Seed: 5, Pairs: 30}), run2); err == nil {
		t.Fatal("resume with mismatched options accepted")
	}
}

// TestResumeRefusesWrongRecordLog: resuming onto a file that is not the
// checkpoint's own record log must fail BEFORE the file is truncated.
func TestResumeRefusesWrongRecordLog(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "s.ckpt")
	logPath := filepath.Join(dir, "s.jsonl")
	base := RunConfig{
		Algo: AlgoMDALite, Retries: 1, Workers: 2,
		Trace: mda.Config{Seed: 6}, Checkpoint: ckPath, CheckpointEvery: 4,
	}
	run1 := base
	jsonl := NewJSONLSink(logPath)
	run1.Sinks = []Sink{jsonl, &killSink{after: 10}}
	if _, err := Run(Generate(GenConfig{Seed: 6, Pairs: 30}), run1); !errors.Is(err, errKilled) {
		t.Fatalf("setup run: %v", err)
	}
	if err := jsonl.Close(); err != nil {
		t.Fatal(err)
	}

	// Point resume at an unrelated (and large enough) file.
	wrong := filepath.Join(dir, "wrong.jsonl")
	junk := bytes.Repeat([]byte("not a survey record\n"), 4096)
	if err := os.WriteFile(wrong, junk, 0o644); err != nil {
		t.Fatal(err)
	}
	run2 := base
	run2.Resume = true
	wrongSink := NewJSONLSink(wrong)
	run2.Sinks = []Sink{wrongSink}
	if _, err := Run(Generate(GenConfig{Seed: 6, Pairs: 30}), run2); err == nil {
		t.Fatal("resume onto a foreign file accepted")
	}
	// The natural defer-Close pattern must not touch the file either: a
	// sink that never opened stays off the disk.
	if err := wrongSink.Close(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(wrong)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(junk, after) {
		t.Fatal("refused resume still modified the foreign file")
	}
}

// TestResumeWithoutCheckpointFileIsFreshRun: Resume on a path that does
// not exist yet must degrade to a normal full run.
func TestResumeWithoutCheckpointFileIsFreshRun(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	cfg := RunConfig{
		Algo: AlgoMDALite, Retries: 1,
		Trace:      mda.Config{Seed: 9},
		Checkpoint: filepath.Join(dir, "none.ckpt"),
		Resume:     true,
		Sinks:      []Sink{NewJSONLSink(filepath.Join(dir, "none.jsonl"))},
	}
	res, err := Run(Generate(GenConfig{Seed: 9, Pairs: 20}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 20 {
		t.Fatalf("fresh run traced %d pairs", len(res.Outcomes))
	}
	if _, err := traceio.ReadCheckpoint(cfg.Checkpoint); err != nil {
		t.Fatalf("fresh run left no checkpoint: %v", err)
	}
}
