package survey

import (
	"fmt"
	"sort"
	"strings"

	"mmlpt/internal/core"
	"mmlpt/internal/stats"
)

// Weighting selects between the paper's two diamond-counting views.
type Weighting int

const (
	// Measured weights each diamond by the number of times it is
	// encountered.
	Measured Weighting = iota
	// Distinct weights each (divergence, convergence) key once.
	Distinct
)

// String names the weighting.
func (w Weighting) String() string {
	if w == Distinct {
		return "distinct"
	}
	return "measured"
}

// diamonds returns the record list under the chosen weighting.
func (r *Result) diamonds(w Weighting) []DiamondRecord {
	if w == Measured {
		return r.Measured
	}
	out := make([]DiamondRecord, 0, len(r.Distinct))
	keys := make([]string, 0, len(r.Distinct))
	byKey := make(map[string]DiamondRecord, len(r.Distinct))
	for k, d := range r.Distinct {
		s := fmt.Sprintf("%s|%s", k.Div, k.Conv)
		keys = append(keys, s)
		byKey[s] = d
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, byKey[k])
	}
	return out
}

// WidthAsymmetryDist returns the Fig 7 distribution: portion of diamonds
// per max-width-asymmetry value.
func (r *Result) WidthAsymmetryDist(w Weighting) *stats.Histogram {
	ds := r.diamonds(w)
	xs := make([]int, 0, len(ds))
	for _, d := range ds {
		xs = append(xs, d.Metrics.MaxWidthAsymmetry)
	}
	return stats.NewHistogram(xs)
}

// MaxProbDiffCDF returns the Fig 8 CDF: maximum reach-probability
// difference over asymmetric, unmeshed diamonds (non-zero values only).
func (r *Result) MaxProbDiffCDF(w Weighting) *stats.CDF {
	var xs []float64
	for _, d := range r.diamonds(w) {
		if d.Metrics.MaxWidthAsymmetry > 0 && !d.Metrics.Meshed && d.MaxProbDiff > 0 {
			xs = append(xs, d.MaxProbDiff)
		}
	}
	return stats.NewCDF(xs)
}

// MeshedRatioCDF returns the Fig 9 CDF: ratio of meshed hops over meshed
// diamonds.
func (r *Result) MeshedRatioCDF(w Weighting) *stats.CDF {
	var xs []float64
	for _, d := range r.diamonds(w) {
		if d.Metrics.Meshed {
			xs = append(xs, d.Metrics.RatioMeshedHops)
		}
	}
	return stats.NewCDF(xs)
}

// MeshMissCDF returns the Fig 2 CDF: the Eq. (1) probability of the
// MDA-Lite failing to detect meshing, one sample per meshed hop pair.
func (r *Result) MeshMissCDF(w Weighting) *stats.CDF {
	var xs []float64
	for _, d := range r.diamonds(w) {
		xs = append(xs, d.MeshMissProbs...)
	}
	return stats.NewCDF(xs)
}

// LengthDist returns the Fig 10 (top) max-length distribution.
func (r *Result) LengthDist(w Weighting) *stats.Histogram {
	ds := r.diamonds(w)
	xs := make([]int, 0, len(ds))
	for _, d := range ds {
		xs = append(xs, d.Metrics.MaxLength)
	}
	return stats.NewHistogram(xs)
}

// WidthDist returns the Fig 10 (bottom) max-width distribution.
func (r *Result) WidthDist(w Weighting) *stats.Histogram {
	ds := r.diamonds(w)
	xs := make([]int, 0, len(ds))
	for _, d := range ds {
		xs = append(xs, d.Metrics.MaxWidth)
	}
	return stats.NewHistogram(xs)
}

// JointLengthWidth returns the Fig 11 joint distribution.
func (r *Result) JointLengthWidth(w Weighting) *stats.Joint {
	j := stats.NewJoint()
	for _, d := range r.diamonds(w) {
		j.Add(d.Metrics.MaxLength, d.Metrics.MaxWidth)
	}
	return j
}

// MeshedCount returns how many diamonds are meshed under the weighting.
func (r *Result) MeshedCount(w Weighting) (meshed, total int) {
	ds := r.diamonds(w)
	for _, d := range ds {
		if d.Metrics.Meshed {
			meshed++
		}
	}
	return meshed, len(ds)
}

// Summary renders the headline survey numbers (the Sec 5.1 prose).
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "traces: %d, with diamonds: %d\n", len(r.Outcomes), r.LBTraces)
	fmt.Fprintf(&b, "diamonds: %d measured, %d distinct\n", len(r.Measured), len(r.Distinct))
	for _, w := range []Weighting{Measured, Distinct} {
		ds := r.diamonds(w)
		if len(ds) == 0 {
			continue
		}
		var len2, simplest, zeroAsym, meshed int
		for _, d := range ds {
			if d.Metrics.MaxLength == 2 {
				len2++
			}
			if d.Metrics.MaxLength == 2 && d.Metrics.MaxWidth == 2 {
				simplest++
			}
			if d.Metrics.MaxWidthAsymmetry == 0 {
				zeroAsym++
			}
			if d.Metrics.Meshed {
				meshed++
			}
		}
		n := float64(len(ds))
		fmt.Fprintf(&b, "%s: len2 %.1f%%, simplest(2x2) %.1f%%, zero-asymmetry %.1f%%, meshed %.1f%%\n",
			w, 100*float64(len2)/n, 100*float64(simplest)/n,
			100*float64(zeroAsym)/n, 100*float64(meshed)/n)
	}
	return b.String()
}

// Table3 tallies the effect of alias resolution on unique diamonds: the
// fractions of {no change, single smaller, multiple smaller, one path}.
// Diamonds are deduplicated by key, as the paper's "unique diamonds".
func Table3(res *Result, records []RouterRecord) map[core.DiamondEffect]float64 {
	type keyed struct {
		effect core.DiamondEffect
	}
	seen := make(map[string]keyed)
	for ri, rec := range records {
		outcome := res.Outcomes[outcomeIndex(res, rec.PairIndex)]
		ds := outcome.Graph.Diamonds()
		for di, d := range ds {
			if di >= len(rec.Effects) {
				break
			}
			k := fmt.Sprintf("%s|%s", d.DivAddr, d.ConvAddr)
			if _, ok := seen[k]; !ok {
				seen[k] = keyed{effect: rec.Effects[di]}
			}
		}
		_ = ri
	}
	counts := make(map[core.DiamondEffect]int)
	for _, v := range seen {
		counts[v.effect]++
	}
	out := make(map[core.DiamondEffect]float64)
	total := float64(len(seen))
	if total == 0 {
		return out
	}
	for e, c := range counts {
		out[e] = float64(c) / total
	}
	return out
}

func outcomeIndex(res *Result, pairIndex int) int {
	for i, o := range res.Outcomes {
		if o.PairIndex == pairIndex {
			return i
		}
	}
	return 0
}

// RouterSizeCDFs returns the Fig 12 CDFs: per-trace distinct router sizes
// and transitively aggregated router sizes.
func RouterSizeCDFs(records []RouterRecord) (distinct, aggregated *stats.CDF) {
	var d []float64
	for _, r := range records {
		for _, s := range r.Sets {
			d = append(d, float64(len(s.Addrs)))
		}
	}
	var a []float64
	for _, g := range core.AggregateRouters(AllRouterSets(records)) {
		a = append(a, float64(len(g)))
	}
	return stats.NewCDF(d), stats.NewCDF(a)
}

// WidthBeforeAfter returns the Fig 13 histograms (unique diamonds keyed by
// div/conv): max width at the IP level and at the router level.
func WidthBeforeAfter(res *Result, records []RouterRecord) (before, after *stats.Histogram) {
	seenB := make(map[string]int)
	seenA := make(map[string]int)
	for _, rec := range records {
		outcome := res.Outcomes[outcomeIndex(res, rec.PairIndex)]
		ds := outcome.Graph.Diamonds()
		for di, d := range ds {
			if di >= len(rec.WidthBefore) {
				break
			}
			k := fmt.Sprintf("%s|%s", d.DivAddr, d.ConvAddr)
			if _, ok := seenB[k]; !ok {
				seenB[k] = rec.WidthBefore[di]
				seenA[k] = rec.WidthAfter[di]
			}
		}
	}
	var bs, as []int
	for k := range seenB {
		bs = append(bs, seenB[k])
		as = append(as, seenA[k])
	}
	return stats.NewHistogram(bs), stats.NewHistogram(as)
}

// JointWidthBeforeAfter returns the Fig 14 joint distribution over
// diamonds whose width changed.
func JointWidthBeforeAfter(res *Result, records []RouterRecord) *stats.Joint {
	j := stats.NewJoint()
	for _, rec := range records {
		for i := range rec.WidthBefore {
			if rec.WidthAfter[i] != rec.WidthBefore[i] {
				j.Add(rec.WidthBefore[i], rec.WidthAfter[i])
			}
		}
	}
	return j
}
