package survey

import (
	"reflect"
	"testing"

	"mmlpt/internal/mda"
)

// identicalUniverses builds two structurally identical universes from one
// seed. Two instances are needed because tracing advances per-pair session
// state (counters, clocks) inside the network, so a second run over the
// same universe would not see a pristine network.
func identicalUniverses(seed uint64, pairs int) (*Universe, *Universe) {
	return Generate(GenConfig{Seed: seed, Pairs: pairs}),
		Generate(GenConfig{Seed: seed, Pairs: pairs})
}

// TestParallelRunMatchesSerial: the worker-pool runner must produce
// results byte-identical to the serial walk for a fixed seed — same
// outcomes in the same order, same probe counts, same diamond records.
func TestParallelRunMatchesSerial(t *testing.T) {
	t.Parallel()
	serialU, parallelU := identicalUniverses(91, 60)
	cfg := RunConfig{Algo: AlgoMDALite, Retries: 1, Trace: mda.Config{Seed: 91}}

	cfg.Workers = 1
	serial, err := Run(serialU, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	parallel, err := Run(parallelU, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(serial.Outcomes) != len(parallel.Outcomes) {
		t.Fatalf("outcome counts differ: %d vs %d", len(serial.Outcomes), len(parallel.Outcomes))
	}
	if serial.TotalProbes != parallel.TotalProbes {
		t.Fatalf("total probes differ: %d vs %d", serial.TotalProbes, parallel.TotalProbes)
	}
	if !reflect.DeepEqual(serial, parallel) {
		for i := range serial.Outcomes {
			if !reflect.DeepEqual(serial.Outcomes[i], parallel.Outcomes[i]) {
				t.Fatalf("outcome %d (pair %d) differs between serial and parallel run",
					i, serial.Outcomes[i].PairIndex)
			}
		}
		t.Fatal("aggregate records differ between serial and parallel run")
	}
}

// TestParallelMDAMatchesSerial covers the classic MDA, whose star-hop
// handling (AdoptStarFlows) once leaked map iteration order into the
// discovered vertex order: pair 136 of this universe has a silent hop
// inside a wide diamond and came out differently ordered from run to
// run. The full-MDA survey must be deep-equal across worker counts.
func TestParallelMDAMatchesSerial(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("200-pair MDA survey is slow")
	}
	serialU, parallelU := identicalUniverses(1^0x1b5e7, 200)
	cfg := RunConfig{Algo: AlgoMDA, Retries: 1, Trace: mda.Config{Seed: 1}}

	cfg.Workers = 1
	serial, err := Run(serialU, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	parallel, err := Run(parallelU, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		for i := range serial.Outcomes {
			if !reflect.DeepEqual(serial.Outcomes[i], parallel.Outcomes[i]) {
				t.Fatalf("outcome %d (pair %d) differs between serial and parallel MDA run",
					i, serial.Outcomes[i].PairIndex)
			}
		}
		t.Fatal("aggregate records differ between serial and parallel MDA run")
	}
}

// TestParallelMultilevelMatchesSerial covers the multilevel (alias
// resolution) path, which additionally exercises the per-session IP ID
// counters and echo probing.
func TestParallelMultilevelMatchesSerial(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("multilevel survey is slow")
	}
	serialU, parallelU := identicalUniverses(17, 24)
	cfg := RunConfig{
		Algo: AlgoMultilevel, OnlyLB: true, Retries: 1,
		Rounds: 3, Trace: mda.Config{Seed: 17},
	}

	cfg.Workers = 1
	serial, err := Run(serialU, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	parallel, err := Run(parallelU, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("multilevel results differ between serial and parallel run")
	}
}
