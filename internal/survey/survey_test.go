package survey

import (
	"testing"

	"mmlpt/internal/topo"
)

func smallUniverse(t testing.TB, pairs int, seed uint64) *Universe {
	t.Helper()
	return Generate(GenConfig{Seed: seed, Pairs: pairs})
}

func TestGenerateUniverseShape(t *testing.T) {
	t.Parallel()
	u := smallUniverse(t, 300, 7)
	if len(u.Pairs) != 300 {
		t.Fatalf("pairs = %d", len(u.Pairs))
	}
	lb := 0
	for _, p := range u.Pairs {
		if p.HasLB {
			lb++
		}
	}
	frac := float64(lb) / float64(len(u.Pairs))
	if frac < 0.40 || frac > 0.65 {
		t.Fatalf("LB fraction %.2f outside calibration band", frac)
	}
	if len(u.Templates) < 24 {
		t.Fatalf("template library too small: %d", len(u.Templates))
	}
	// The giant cores must exist with their signature widths.
	if w := maxFragWidth(u.Templates[0].Frag); w != 48 {
		t.Fatalf("giant48 width %d", w)
	}
	if w := maxFragWidth(u.Templates[1].Frag); w != 56 {
		t.Fatalf("giant56 width %d", w)
	}
}

func maxFragWidth(g *topo.Graph) int {
	w := 0
	for h := 0; h < g.NumHops(); h++ {
		if n := g.Width(h); n > w {
			w = n
		}
	}
	return w
}

func TestRunMDALiteSurveySmall(t *testing.T) {
	t.Parallel()
	u := smallUniverse(t, 120, 11)
	res, err := Run(u, RunConfig{Algo: AlgoMDALite, Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 120 {
		t.Fatalf("outcomes = %d", len(res.Outcomes))
	}
	reached := 0
	for _, o := range res.Outcomes {
		if o.Reached {
			reached++
		}
	}
	if float64(reached) < 0.95*float64(len(res.Outcomes)) {
		t.Fatalf("only %d/%d traces reached the destination", reached, len(res.Outcomes))
	}
	if len(res.Measured) == 0 || len(res.Distinct) == 0 {
		t.Fatal("no diamonds surveyed")
	}
	if len(res.Measured) < len(res.Distinct) {
		t.Fatal("measured count below distinct count")
	}
}

func TestDistinctReuseAcrossPairs(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("400-pair universe is slow")
	}
	u := smallUniverse(t, 400, 13)
	res, err := Run(u, RunConfig{Algo: AlgoMDALite, Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(res.Measured)) / float64(len(res.Distinct))
	if ratio < 1.5 {
		t.Fatalf("measured/distinct reuse ratio %.2f too low for a shared-core internet", ratio)
	}
}
