package alias

import (
	"testing"
	"testing/quick"

	"mmlpt/internal/obs"
	"mmlpt/internal/packet"
)

// synthetic observation fixtures for partition-level tests.

// synthObs builds an observation store where addresses are grouped into
// routers: all addresses of one router share a counter (interleaved
// monotonic series); different routers have independent counters.
func synthObs(groups [][]packet.Addr) *obs.Observations {
	o := obs.New()
	seq := uint64(0)
	// Interleave samples across all addresses round-robin, advancing each
	// group's counter whenever one of its addresses is sampled.
	counters := make([]uint16, len(groups))
	for gi := range counters {
		counters[gi] = uint16(1000 * (gi + 1)) // distinct phases
	}
	for round := 0; round < 6; round++ {
		for gi, g := range groups {
			for _, a := range g {
				seq++
				counters[gi] += 3
				ao := o.Ensure(a)
				ao.Samples = append(ao.Samples, obs.Sample{
					Seq: seq, IPID: counters[gi], Indirect: true,
				})
			}
		}
	}
	return o
}

func addrsOf(groups [][]packet.Addr) []packet.Addr {
	var out []packet.Addr
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

func a(n int) packet.Addr { return packet.Addr(0x0a000000 + uint32(n)) }

func TestPartitionRecoversGroups(t *testing.T) {
	groups := [][]packet.Addr{
		{a(1), a(2), a(3)},
		{a(4), a(5)},
		{a(6)},
	}
	r := &Resolver{Obs: synthObs(groups)}
	sets := r.Partition(addrsOf(groups))
	routers := RouterSets(sets)
	if len(routers) != 2 {
		t.Fatalf("routers: %+v", routers)
	}
	sizes := map[int]int{}
	for _, s := range routers {
		sizes[len(s.Addrs)]++
	}
	if sizes[3] != 1 || sizes[2] != 1 {
		t.Fatalf("router sizes: %+v", routers)
	}
}

func TestPartitionConsistencyProperty(t *testing.T) {
	// For any random grouping, the partition must (a) place every
	// candidate exactly once, and (b) never put a rejected pair in one
	// set.
	f := func(sizesRaw []uint8) bool {
		var groups [][]packet.Addr
		next := 1
		for _, sr := range sizesRaw {
			size := int(sr)%4 + 1
			var g []packet.Addr
			for i := 0; i < size; i++ {
				g = append(g, a(next))
				next++
			}
			groups = append(groups, g)
			if len(groups) >= 5 {
				break
			}
		}
		if len(groups) == 0 {
			return true
		}
		r := &Resolver{Obs: synthObs(groups)}
		cands := addrsOf(groups)
		sets := r.Partition(cands)
		seen := map[packet.Addr]int{}
		for _, s := range sets {
			for _, addr := range s.Addrs {
				seen[addr]++
			}
			for i := 0; i < len(s.Addrs); i++ {
				for j := i + 1; j < len(s.Addrs); j++ {
					if r.PairVerdict(s.Addrs[i], s.Addrs[j]).Combine() == Rejected {
						return false
					}
				}
			}
		}
		for _, c := range cands {
			if seen[c] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	groups := [][]packet.Addr{{a(3), a(9)}, {a(1), a(7), a(5)}}
	r1 := &Resolver{Obs: synthObs(groups)}
	r2 := &Resolver{Obs: synthObs(groups)}
	s1 := r1.Partition(addrsOf(groups))
	// Same candidates in a different order must yield the same partition.
	rev := []packet.Addr{a(5), a(7), a(1), a(9), a(3)}
	s2 := r2.Partition(rev)
	p1 := AliasPairs(s1)
	p2 := AliasPairs(s2)
	if len(p1) != len(p2) {
		t.Fatalf("pair counts differ: %d vs %d", len(p1), len(p2))
	}
	for k := range p1 {
		if !p2[k] {
			t.Fatalf("pair %v missing under reordering", k)
		}
	}
}

func TestClassifySetOutcomes(t *testing.T) {
	groups := [][]packet.Addr{{a(1), a(2)}, {a(3), a(4)}}
	r := &Resolver{Obs: synthObs(groups)}
	if got := r.ClassifySet([]packet.Addr{a(1), a(2)}); got != Accepted {
		t.Fatalf("true alias set: %v", got)
	}
	if got := r.ClassifySet([]packet.Addr{a(1), a(3)}); got != Rejected {
		t.Fatalf("cross-router set: %v", got)
	}
	if got := r.ClassifySet([]packet.Addr{a(1)}); got != Unable {
		t.Fatalf("singleton: %v", got)
	}
	// A set containing an unobserved address is unable (no evidence).
	if got := r.ClassifySet([]packet.Addr{a(1), a(99)}); got != Unable {
		t.Fatalf("unknown member: %v", got)
	}
}

func TestPrecisionRecallEdgeCases(t *testing.T) {
	empty := map[[2]packet.Addr]bool{}
	one := map[[2]packet.Addr]bool{{a(1), a(2)}: true}
	if p, r := PrecisionRecall(empty, empty); p != 1 || r != 1 {
		t.Fatal("empty vs empty must be perfect")
	}
	if p, r := PrecisionRecall(empty, one); p != 1 || r != 0 {
		t.Fatalf("no predictions: p=%v r=%v", p, r)
	}
	if p, r := PrecisionRecall(one, empty); p != 0 || r != 1 {
		t.Fatalf("spurious predictions: p=%v r=%v", p, r)
	}
}

func TestGroundTruthPairs(t *testing.T) {
	routerOf := map[packet.Addr]int{a(1): 0, a(2): 0, a(3): 1, a(4): 0}
	pairs := GroundTruthPairs(routerOf, []packet.Addr{a(1), a(2), a(3), a(4)})
	if len(pairs) != 3 { // (1,2) (1,4) (2,4)
		t.Fatalf("pairs: %v", pairs)
	}
	if pairs[[2]packet.Addr{a(1), a(3)}] {
		t.Fatal("cross-router pair present")
	}
}
