package alias

import (
	"sort"

	"mmlpt/internal/packet"
)

// Union accumulates alias evidence across traces (Sec 5.2's aggregated
// router view): Accepted sets from different traces union transitively,
// so router identities grow as evidence accumulates, while Rejected
// verdicts are retained as negative evidence. Merging is monotone — a
// union-find cannot split — so a rejection never undoes a merge; when
// MBT verdicts disagree across traces (a pair accepted by one trace's
// evidence and rejected by another's), the pair surfaces from
// Conflicts() instead of silently losing to whichever trace came last.
//
// The canonical representative of a component is its smallest address.
// Because a component's membership depends only on the *set* of unions
// applied, representatives and Groups() are stable under any insertion
// order — the property that lets a sharded atlas merge be deterministic
// for every worker count.
type Union struct {
	parent   map[packet.Addr]packet.Addr
	rejected map[[2]packet.Addr]bool
}

// NewUnion returns an empty evidence accumulator.
func NewUnion() *Union {
	return &Union{
		parent:   make(map[packet.Addr]packet.Addr),
		rejected: make(map[[2]packet.Addr]bool),
	}
}

// Find returns the canonical representative of a's component: the
// smallest address merged with a, or a itself if never merged.
func (u *Union) Find(a packet.Addr) packet.Addr {
	p, ok := u.parent[a]
	if !ok || p == a {
		return a
	}
	root := u.Find(p)
	u.parent[a] = root
	return root
}

// Add records positive evidence that a and b are aliases, merging their
// components.
func (u *Union) Add(a, b packet.Addr) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	// The smaller root stays the root, keeping the invariant that a
	// component's root is its minimum address.
	if rb < ra {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
}

// find is Find plus registration: the address joins the forest even as
// a singleton, so Groups can enumerate every address ever seen.
func (u *Union) find(a packet.Addr) packet.Addr {
	if _, ok := u.parent[a]; !ok {
		u.parent[a] = a
	}
	return u.Find(a)
}

// AddSet merges every address of one trace's alias set. Empty and
// singleton sets carry no pairwise evidence and are no-ops.
func (u *Union) AddSet(addrs []packet.Addr) {
	if len(addrs) < 2 {
		return
	}
	for _, a := range addrs[1:] {
		u.Add(addrs[0], a)
	}
}

// Reject records negative evidence: some trace's combined verdict ruled
// a and b to be different routers. The components are not split (and
// future positive evidence may still merge them); the disagreement is
// reported by Conflicts.
func (u *Union) Reject(a, b packet.Addr) {
	if a > b {
		a, b = b, a
	}
	u.rejected[[2]packet.Addr{a, b}] = true
}

// Same reports whether a and b currently share a component.
func (u *Union) Same(a, b packet.Addr) bool { return u.Find(a) == u.Find(b) }

// Groups returns the components holding two or more addresses — the
// aggregated routers — each sorted ascending, the list sorted by
// canonical representative (each group's first address).
func (u *Union) Groups() [][]packet.Addr {
	return SortGroups(u.UnsortedGroups())
}

// UnsortedGroups returns the same components as Groups with no ordering
// guarantee, inside or across groups. It exists for callers that hold a
// lock around the union: collecting the components is O(n), while the
// sorting — the expensive part at scale — can then happen outside the
// critical section via SortGroups.
func (u *Union) UnsortedGroups() [][]packet.Addr {
	byRoot := make(map[packet.Addr][]packet.Addr)
	for a := range u.parent {
		r := u.Find(a)
		byRoot[r] = append(byRoot[r], a)
	}
	var out [][]packet.Addr
	for _, g := range byRoot {
		if len(g) >= 2 {
			out = append(out, g)
		}
	}
	return out
}

// SortGroups sorts components into canonical order in place — each
// group ascending, the list by each group's first (minimum) address —
// and returns its argument. SortGroups(u.UnsortedGroups()) equals
// u.Groups().
func SortGroups(groups [][]packet.Addr) [][]packet.Addr {
	for _, g := range groups {
		sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
	return groups
}

// Conflict is a pair with contradictory cross-trace evidence: rejected
// by at least one trace, yet merged into one component by others.
type Conflict struct {
	A, B packet.Addr
	// Root is the component's canonical representative.
	Root packet.Addr
}

// Conflicts returns every rejected pair whose two addresses nonetheless
// ended up in the same component, sorted by (A, B). The result is
// computed from the final state, so it is independent of the order in
// which evidence arrived.
func (u *Union) Conflicts() []Conflict {
	var out []Conflict
	for p := range u.rejected {
		ra, rb := u.Find(p[0]), u.Find(p[1])
		if ra == rb {
			out = append(out, Conflict{A: p[0], B: p[1], Root: ra})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}
