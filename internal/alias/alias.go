// Package alias implements the alias resolution machinery of Multilevel
// MDA-Lite Paris Traceroute (Sec 4.1): MIDAR's Monotonic Bounds Test over
// IP ID time series, Vanaubel et al.'s Network Fingerprinting, and MPLS
// labeling, combined under the MBT's set-based refinement schema.
//
// Candidate aliases are the addresses found at a single hop of one
// multipath trace. A "free" Round 0 evaluation uses only the observations
// already collected during the MDA-Lite trace; each subsequent round adds
// interleaved probing (indirect TTL-expiry probes for MMLPT, direct Echo
// probes for the MIDAR-style comparison of Table 2) and refines the sets.
package alias

import (
	"sort"

	"mmlpt/internal/obs"
	"mmlpt/internal/packet"
	"mmlpt/internal/probe"
)

// Outcome classifies a pair or set verdict.
type Outcome int

const (
	// Unable means the evidence does not allow a determination: constant
	// or non-monotonic IP ID series, unresponsive addresses, or reply IDs
	// copied from the probe.
	Unable Outcome = iota
	// Accepted means the addresses are considered aliases of one router.
	Accepted
	// Rejected means the addresses belong to different routers.
	Rejected
)

// String renders the outcome.
func (o Outcome) String() string {
	switch o {
	case Accepted:
		return "accept"
	case Rejected:
		return "reject"
	default:
		return "unable"
	}
}

// UnableCause explains why an address's series cannot support the MBT.
type UnableCause int

const (
	CauseNone UnableCause = iota
	// CauseConstant: every sample carries the same (usually zero) IP ID.
	CauseConstant
	// CauseNonMonotonic: the address's own series violates monotonicity
	// (per-reply random IDs).
	CauseNonMonotonic
	// CauseUnresponsive: no replies at all.
	CauseUnresponsive
	// CauseCopyProbe: reply IDs echo the probe's IP ID (direct probing).
	CauseCopyProbe
	// CauseTooFew: not enough samples for a series.
	CauseTooFew
)

// String renders the cause.
func (c UnableCause) String() string {
	switch c {
	case CauseConstant:
		return "constant"
	case CauseNonMonotonic:
		return "non-monotonic"
	case CauseUnresponsive:
		return "unresponsive"
	case CauseCopyProbe:
		return "copy-probe"
	case CauseTooFew:
		return "too-few-samples"
	default:
		return "ok"
	}
}

// wrapThreshold is the half-space bound for forward differences: a merged
// series is monotonic (mod 2^16) while consecutive forward differences
// stay below it.
const wrapThreshold = 1 << 15

// SeriesUsable checks whether a sample series can support the MBT and
// returns the blocking cause otherwise.
func SeriesUsable(samples []obs.Sample, direct bool) (bool, UnableCause) {
	if len(samples) == 0 {
		return false, CauseUnresponsive
	}
	if len(samples) < 3 {
		return false, CauseTooFew
	}
	if direct {
		copies := 0
		for _, s := range samples {
			if s.IPID == s.SentID {
				copies++
			}
		}
		if copies == len(samples) {
			return false, CauseCopyProbe
		}
	}
	constant := true
	for _, s := range samples[1:] {
		if s.IPID != samples[0].IPID {
			constant = false
			break
		}
	}
	if constant {
		return false, CauseConstant
	}
	if !Monotonic(samples) {
		return false, CauseNonMonotonic
	}
	return true, CauseNone
}

// Monotonic reports whether the sequence of IP IDs, in Seq order, is
// strictly increasing modulo 2^16 with forward steps below the wrap
// threshold: the Monotonic Bounds Test's consistency condition.
func Monotonic(samples []obs.Sample) bool {
	for i := 1; i < len(samples); i++ {
		diff := samples[i].IPID - samples[i-1].IPID // uint16 arithmetic wraps
		if diff == 0 || diff >= wrapThreshold {
			return false
		}
	}
	return true
}

// MergeSamples interleaves two series by sequence number.
func MergeSamples(a, b []obs.Sample) []obs.Sample {
	out := make([]obs.Sample, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// MBTVerdict applies the Monotonic Bounds Test to a pair of usable series:
// if their interleaved merge stays monotonic the addresses are consistent
// with sharing one counter (Accepted); a single out-of-sequence identifier
// rejects the pair. Series that do not interleave (no overlap in time)
// cannot discriminate and yield Unable.
func MBTVerdict(a, b []obs.Sample) Outcome {
	if len(a) == 0 || len(b) == 0 {
		return Unable
	}
	// Overlap check: the windows [minSeq,maxSeq] must intersect, else the
	// merged series is a concatenation and monotonicity is uninformative.
	if a[len(a)-1].Seq < b[0].Seq || b[len(b)-1].Seq < a[0].Seq {
		return Unable
	}
	if Monotonic(MergeSamples(a, b)) {
		return Accepted
	}
	return Rejected
}

// Evidence is the full pairwise verdict with its source tests.
type Evidence struct {
	MBT         Outcome
	Fingerprint Outcome // Rejected if signatures differ, else Unable
	MPLS        Outcome // Accepted same constant label, Rejected different
}

// Combine merges the tests: any rejection rejects; otherwise an MBT or
// MPLS accept accepts; otherwise unable.
func (e Evidence) Combine() Outcome {
	if e.MBT == Rejected || e.Fingerprint == Rejected || e.MPLS == Rejected {
		return Rejected
	}
	if e.MBT == Accepted || e.MPLS == Accepted {
		return Accepted
	}
	return Unable
}

// Resolver refines alias sets over probing rounds.
type Resolver struct {
	// P sends the additional probing; may be nil for a Round 0-only
	// evaluation.
	P probe.Prober
	// Obs is the observation store, typically pre-populated by the trace.
	Obs *obs.Observations
	// Direct selects MIDAR-style Echo probing instead of MMLPT's
	// indirect TTL-expiry probing.
	Direct bool
	// ProbesPerRound is the number of MBT samples solicited per address
	// per round (paper: 30).
	ProbesPerRound int
	// Rounds is the number of probing rounds after Round 0 (paper: 10).
	Rounds int

	seq uint16
}

// NewResolver returns a resolver with the paper's defaults.
func NewResolver(p probe.Prober, o *obs.Observations) *Resolver {
	return &Resolver{P: p, Obs: o, ProbesPerRound: 30, Rounds: 10}
}

// AddrUsable evaluates the address's series of the resolver's family.
func (r *Resolver) AddrUsable(a packet.Addr) (bool, UnableCause) {
	ao := r.Obs.Get(a)
	if ao == nil {
		return false, CauseUnresponsive
	}
	return SeriesUsable(r.samples(ao), r.Direct)
}

func (r *Resolver) samples(ao *obs.AddrObs) []obs.Sample {
	if r.Direct {
		return ao.DirectSamples()
	}
	return ao.IndirectSamples()
}

// PairVerdict evaluates the pair with all available evidence.
func (r *Resolver) PairVerdict(a, b packet.Addr) Evidence {
	var ev Evidence
	ao, bo := r.Obs.Get(a), r.Obs.Get(b)
	if ao == nil || bo == nil {
		return ev
	}
	// Network Fingerprinting.
	if !obs.CompatibleFingerprints(ao.FingerprintOf(), bo.FingerprintOf()) {
		ev.Fingerprint = Rejected
	}
	// MPLS labeling (constant labels only).
	if la, oka := ao.ConstantLabel(); oka {
		if lb, okb := bo.ConstantLabel(); okb {
			if la == lb {
				ev.MPLS = Accepted
			} else {
				ev.MPLS = Rejected
			}
		}
	}
	// Monotonic Bounds Test.
	sa, sb := r.samples(ao), r.samples(bo)
	uA, _ := SeriesUsable(sa, r.Direct)
	uB, _ := SeriesUsable(sb, r.Direct)
	if uA && uB {
		ev.MBT = MBTVerdict(sa, sb)
	}
	return ev
}

// Set is one refined alias set.
type Set struct {
	Addrs []packet.Addr
	// Outcome is Accepted when the set has two or more addresses bound by
	// positive evidence, Unable when membership could not be determined
	// for at least one pair, Rejected never applies to a surviving set.
	Outcome Outcome
}

// Partition groups the candidate addresses into alias sets using the
// current evidence: each address joins the first set whose every member it
// is compatible with (no rejection); a set is Accepted when every pair
// inside it has positive evidence.
func (r *Resolver) Partition(candidates []packet.Addr) []Set {
	sorted := append([]packet.Addr(nil), candidates...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var groups [][]packet.Addr
	verdict := make(map[[2]packet.Addr]Outcome)
	pv := func(a, b packet.Addr) Outcome {
		k := [2]packet.Addr{a, b}
		if a > b {
			k = [2]packet.Addr{b, a}
		}
		if v, ok := verdict[k]; ok {
			return v
		}
		v := r.PairVerdict(a, b).Combine()
		verdict[k] = v
		return v
	}
	for _, a := range sorted {
		placed := false
		for gi, g := range groups {
			ok := true
			positive := false
			for _, m := range g {
				switch pv(a, m) {
				case Rejected:
					ok = false
				case Accepted:
					positive = true
				}
				if !ok {
					break
				}
			}
			if ok && positive {
				groups[gi] = append(groups[gi], a)
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, []packet.Addr{a})
		}
	}
	out := make([]Set, 0, len(groups))
	for _, g := range groups {
		s := Set{Addrs: g, Outcome: Accepted}
		if len(g) < 2 {
			s.Outcome = Unable
			if u, _ := r.AddrUsable(g[0]); u {
				// A usable singleton is a positively isolated interface.
				s.Outcome = Accepted
			}
			out = append(out, s)
			continue
		}
		for i := 0; i < len(g) && s.Outcome == Accepted; i++ {
			for j := i + 1; j < len(g); j++ {
				if pv(g[i], g[j]) != Accepted {
					s.Outcome = Unable
					break
				}
			}
		}
		out = append(out, s)
	}
	return out
}

// ClassifySet reports, for an externally given address set (e.g. the other
// tool's router), this resolver's verdict: Accepted if the resolver groups
// the whole set with positive pairwise evidence, Rejected if any pair is
// rejected, Unable otherwise.
func (r *Resolver) ClassifySet(addrs []packet.Addr) Outcome {
	if len(addrs) < 2 {
		return Unable
	}
	sawUnable := false
	for i := 0; i < len(addrs); i++ {
		for j := i + 1; j < len(addrs); j++ {
			switch r.PairVerdict(addrs[i], addrs[j]).Combine() {
			case Rejected:
				return Rejected
			case Unable:
				sawUnable = true
			}
		}
	}
	if sawUnable {
		return Unable
	}
	return Accepted
}

// ProbeRound solicits one round of MBT samples: ProbesPerRound probes per
// address, interleaved round-robin so the series overlap. For indirect
// probing, each address is reached through a (flow, TTL) pair recorded
// during the trace; direct probing sends Echo probes. The direct
// fingerprint probe of Round 1 is sent by FingerprintRound. Returns the
// number of probes sent.
func (r *Resolver) ProbeRound(addrs []packet.Addr) uint64 {
	if r.P == nil {
		return 0
	}
	before := probe.TotalSent(r.P)
	for i := 0; i < r.ProbesPerRound; i++ {
		for _, a := range addrs {
			ao := r.Obs.Ensure(a)
			if r.Direct {
				r.seq++
				if reply := r.P.Echo(a, r.seq); reply != nil && reply.IsEchoReply() && reply.From == a {
					r.Obs.RecordEcho(reply, probe.TotalSent(r.P), r.seq)
				}
				continue
			}
			if len(ao.Flows) == 0 {
				continue // cannot aim an indirect probe without a flow
			}
			fr := ao.Flows[i%len(ao.Flows)]
			if reply := r.P.Probe(fr.Flow, fr.TTL); reply != nil && reply.From == a {
				r.Obs.RecordTrace(reply, fr.Flow, fr.TTL, fr.TTL-1, probe.TotalSent(r.P))
			}
		}
	}
	return probe.TotalSent(r.P) - before
}

// FingerprintRound sends one direct probe per address to complete Network
// Fingerprinting signatures (the Round 1 extra of Sec 4.2). Returns probes
// sent.
func (r *Resolver) FingerprintRound(addrs []packet.Addr) uint64 {
	if r.P == nil {
		return 0
	}
	before := probe.TotalSent(r.P)
	for _, a := range addrs {
		r.seq++
		if reply := r.P.Echo(a, r.seq); reply != nil && reply.IsEchoReply() && reply.From == a {
			r.Obs.RecordEcho(reply, probe.TotalSent(r.P), r.seq)
		}
	}
	return probe.TotalSent(r.P) - before
}

// RoundResult snapshots the refinement after a round.
type RoundResult struct {
	Round  int
	Sets   []Set
	Probes uint64 // cumulative probes sent by the resolver
}

// Resolve runs the full schedule on one candidate group (the addresses of
// one hop): Round 0 evaluates trace observations only; Round 1 adds the
// fingerprint probe and the first MBT round; Rounds 2..Rounds add MBT
// rounds. The returned slice holds Rounds+1 snapshots.
func (r *Resolver) Resolve(candidates []packet.Addr) []RoundResult {
	var out []RoundResult
	var sent uint64
	out = append(out, RoundResult{Round: 0, Sets: r.Partition(candidates), Probes: 0})
	for round := 1; round <= r.Rounds; round++ {
		if round == 1 && !r.Direct {
			sent += r.FingerprintRound(candidates)
		}
		sent += r.ProbeRound(candidates)
		out = append(out, RoundResult{Round: round, Sets: r.Partition(candidates), Probes: sent})
	}
	return out
}
