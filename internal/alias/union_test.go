package alias

import (
	"reflect"
	"testing"

	"mmlpt/internal/packet"
)

func addrs(ns ...uint32) []packet.Addr {
	out := make([]packet.Addr, len(ns))
	for i, n := range ns {
		out[i] = packet.Addr(n)
	}
	return out
}

// Transitivity: sets from different traces that share one address merge
// into a single router.
func TestUnionTransitivity(t *testing.T) {
	t.Parallel()
	u := NewUnion()
	u.AddSet(addrs(10, 11))
	u.AddSet(addrs(11, 12))
	u.AddSet(addrs(12, 13))
	if !u.Same(10, 13) {
		t.Fatal("10 and 13 must be transitively merged")
	}
	groups := u.Groups()
	want := [][]packet.Addr{addrs(10, 11, 12, 13)}
	if !reflect.DeepEqual(groups, want) {
		t.Fatalf("Groups = %v, want %v", groups, want)
	}
}

// Stable representatives: the canonical representative is the smallest
// address of the component, whatever order evidence arrived in.
func TestUnionStableRepresentatives(t *testing.T) {
	t.Parallel()
	orders := [][][]packet.Addr{
		{addrs(30, 31), addrs(31, 5), addrs(5, 40)},
		{addrs(5, 40), addrs(31, 5), addrs(30, 31)},
		{addrs(31, 5), addrs(30, 31), addrs(5, 40)},
	}
	for i, sets := range orders {
		u := NewUnion()
		for _, s := range sets {
			u.AddSet(s)
		}
		for _, a := range addrs(5, 30, 31, 40) {
			if got := u.Find(a); got != 5 {
				t.Fatalf("order %d: Find(%v) = %v, want 5 (the minimum)", i, a, got)
			}
		}
		if got := u.Groups(); !reflect.DeepEqual(got, [][]packet.Addr{addrs(5, 30, 31, 40)}) {
			t.Fatalf("order %d: Groups = %v", i, got)
		}
	}
}

// Disjoint components stay disjoint and come out sorted by canonical
// representative; singletons (never merged) are not routers.
func TestUnionGroupsSortedAndMultiOnly(t *testing.T) {
	t.Parallel()
	u := NewUnion()
	u.AddSet(addrs(200, 201))
	u.AddSet(addrs(100, 101, 102))
	u.Reject(300, 301) // negative-only evidence: no component
	got := u.Groups()
	want := [][]packet.Addr{addrs(100, 101, 102), addrs(200, 201)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Groups = %v, want %v", got, want)
	}
	if u.Same(100, 200) {
		t.Fatal("disjoint components merged")
	}
}

// Conflict handling: a pair rejected by one trace but merged (directly
// or transitively) by others is reported, not silently resolved; a
// rejection alone neither merges nor splits.
func TestUnionConflicts(t *testing.T) {
	t.Parallel()
	u := NewUnion()
	u.Reject(20, 22)        // trace A: MBT rejects the pair
	u.AddSet(addrs(20, 21)) // trace B
	if len(u.Conflicts()) != 0 {
		t.Fatal("no conflict yet: 20 and 22 are in different components")
	}
	u.AddSet(addrs(21, 22)) // trace C closes the triangle
	got := u.Conflicts()
	want := []Conflict{{A: 20, B: 22, Root: 20}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Conflicts = %v, want %v", got, want)
	}
	if !u.Same(20, 22) {
		t.Fatal("positive evidence is monotone: the merge must stand")
	}
}

// Conflicts are a function of the final state: evidence order (rejection
// before or after the merges) does not change the report.
func TestUnionConflictsOrderIndependent(t *testing.T) {
	t.Parallel()
	build := func(rejectFirst bool) []Conflict {
		u := NewUnion()
		if rejectFirst {
			u.Reject(51, 53)
		}
		u.AddSet(addrs(50, 51))
		u.AddSet(addrs(50, 52, 53))
		if !rejectFirst {
			u.Reject(51, 53)
		}
		return u.Conflicts()
	}
	before, after := build(true), build(false)
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("conflicts differ by evidence order: %v vs %v", before, after)
	}
	if len(before) != 1 || before[0].Root != 50 {
		t.Fatalf("Conflicts = %v, want one conflict rooted at 50", before)
	}
}

// UnsortedGroups + SortGroups is exactly Groups — the split exists so
// callers can sort outside a lock.
func TestUnsortedGroupsSortedMatchesGroups(t *testing.T) {
	u := NewUnion()
	u.AddSet([]packet.Addr{9, 4, 7})
	u.AddSet([]packet.Addr{2, 11})
	u.AddSet([]packet.Addr{4, 2}) // bridges the two components
	u.AddSet([]packet.Addr{30, 31})
	u.Add(20, 21)
	want := u.Groups()
	got := SortGroups(u.UnsortedGroups())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SortGroups(UnsortedGroups()) = %v; Groups() = %v", got, want)
	}
}
