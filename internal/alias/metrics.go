package alias

import (
	"mmlpt/internal/packet"
)

// Pairs-based precision and recall, used by the Fig 5 evaluation: alias
// resolution quality at round r is measured against the round-10 sets as
// the best available determination (the paper has no ground truth; the
// simulator does, and the survey code also evaluates against it).

// AliasPairs extracts the set of unordered alias pairs implied by a
// partition: every pair inside an Accepted set of two or more addresses.
func AliasPairs(sets []Set) map[[2]packet.Addr]bool {
	out := make(map[[2]packet.Addr]bool)
	for _, s := range sets {
		if s.Outcome != Accepted || len(s.Addrs) < 2 {
			continue
		}
		for i := 0; i < len(s.Addrs); i++ {
			for j := i + 1; j < len(s.Addrs); j++ {
				a, b := s.Addrs[i], s.Addrs[j]
				if a > b {
					a, b = b, a
				}
				out[[2]packet.Addr{a, b}] = true
			}
		}
	}
	return out
}

// PrecisionRecall compares predicted alias pairs against reference pairs.
// Empty prediction and reference sets count as perfect agreement.
func PrecisionRecall(pred, ref map[[2]packet.Addr]bool) (precision, recall float64) {
	if len(pred) == 0 && len(ref) == 0 {
		return 1, 1
	}
	var hit int
	for p := range pred {
		if ref[p] {
			hit++
		}
	}
	if len(pred) == 0 {
		precision = 1
	} else {
		precision = float64(hit) / float64(len(pred))
	}
	if len(ref) == 0 {
		recall = 1
	} else {
		recall = float64(hit) / float64(len(ref))
	}
	return precision, recall
}

// GroundTruthPairs builds the reference pair set from a router assignment:
// addresses mapping to the same router ID are aliases.
func GroundTruthPairs(routerOf map[packet.Addr]int, addrs []packet.Addr) map[[2]packet.Addr]bool {
	out := make(map[[2]packet.Addr]bool)
	for i := 0; i < len(addrs); i++ {
		for j := i + 1; j < len(addrs); j++ {
			ri, oki := routerOf[addrs[i]]
			rj, okj := routerOf[addrs[j]]
			if oki && okj && ri == rj {
				a, b := addrs[i], addrs[j]
				if a > b {
					a, b = b, a
				}
				out[[2]packet.Addr{a, b}] = true
			}
		}
	}
	return out
}

// RouterSets filters a partition to the sets identified as routers: two
// or more addresses, accepted.
func RouterSets(sets []Set) []Set {
	var out []Set
	for _, s := range sets {
		if s.Outcome == Accepted && len(s.Addrs) >= 2 {
			out = append(out, s)
		}
	}
	return out
}
