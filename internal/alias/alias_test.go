package alias

import (
	"testing"

	"mmlpt/internal/fakeroute"
	"mmlpt/internal/mda"
	"mmlpt/internal/mdalite"
	"mmlpt/internal/obs"
	"mmlpt/internal/packet"
	"mmlpt/internal/probe"
	"mmlpt/internal/topo"
)

var (
	testSrc = packet.MustParseAddr("192.0.2.1")
	testDst = packet.MustParseAddr("198.51.100.77")
)

func TestMonotonicPlain(t *testing.T) {
	s := []obs.Sample{{Seq: 1, IPID: 10}, {Seq: 2, IPID: 11}, {Seq: 3, IPID: 40}}
	if !Monotonic(s) {
		t.Fatal("increasing series must be monotonic")
	}
}

func TestMonotonicWraparound(t *testing.T) {
	s := []obs.Sample{{Seq: 1, IPID: 65500}, {Seq: 2, IPID: 65530}, {Seq: 3, IPID: 12}}
	if !Monotonic(s) {
		t.Fatal("wraparound must be tolerated")
	}
}

func TestMonotonicViolation(t *testing.T) {
	s := []obs.Sample{{Seq: 1, IPID: 100}, {Seq: 2, IPID: 50}, {Seq: 3, IPID: 120}}
	if Monotonic(s) {
		t.Fatal("out-of-sequence identifier must violate")
	}
	dup := []obs.Sample{{Seq: 1, IPID: 7}, {Seq: 2, IPID: 7}}
	if Monotonic(dup) {
		t.Fatal("repeated identifier must violate")
	}
}

func TestSeriesUsableCauses(t *testing.T) {
	cases := []struct {
		name    string
		samples []obs.Sample
		direct  bool
		cause   UnableCause
	}{
		{"empty", nil, false, CauseUnresponsive},
		{"short", []obs.Sample{{IPID: 1}, {IPID: 2}}, false, CauseTooFew},
		{"constant", []obs.Sample{{Seq: 1}, {Seq: 2}, {Seq: 3}}, false, CauseConstant},
		{"nonmono", []obs.Sample{{Seq: 1, IPID: 9}, {Seq: 2, IPID: 3}, {Seq: 3, IPID: 7}}, false, CauseNonMonotonic},
		{"copy", []obs.Sample{
			{Seq: 1, IPID: 5, SentID: 5}, {Seq: 2, IPID: 9, SentID: 9}, {Seq: 3, IPID: 11, SentID: 11},
		}, true, CauseCopyProbe},
	}
	for _, c := range cases {
		ok, cause := SeriesUsable(c.samples, c.direct)
		if ok || cause != c.cause {
			t.Errorf("%s: got ok=%v cause=%v, want %v", c.name, ok, cause, c.cause)
		}
	}
	good := []obs.Sample{{Seq: 1, IPID: 4}, {Seq: 2, IPID: 6}, {Seq: 3, IPID: 9}}
	if ok, _ := SeriesUsable(good, false); !ok {
		t.Error("healthy series must be usable")
	}
}

func TestMBTVerdictRequiresOverlap(t *testing.T) {
	a := []obs.Sample{{Seq: 1, IPID: 10}, {Seq: 3, IPID: 12}, {Seq: 5, IPID: 14}}
	b := []obs.Sample{{Seq: 10, IPID: 20}, {Seq: 11, IPID: 22}, {Seq: 12, IPID: 24}}
	if v := MBTVerdict(a, b); v != Unable {
		t.Fatalf("disjoint windows gave %v, want unable", v)
	}
	b2 := []obs.Sample{{Seq: 2, IPID: 11}, {Seq: 4, IPID: 13}}
	if v := MBTVerdict(a, b2); v != Accepted {
		t.Fatalf("interleaved shared counter gave %v, want accept", v)
	}
	b3 := []obs.Sample{{Seq: 2, IPID: 30000}, {Seq: 4, IPID: 30010}}
	if v := MBTVerdict(a, b3); v != Rejected {
		t.Fatalf("independent counters gave %v, want reject", v)
	}
}

// buildAliasedDiamond sets up a 4-wide diamond whose four interfaces
// belong to two routers (two interfaces each).
func buildAliasedDiamond(seed uint64, mode fakeroute.IPIDMode) (*fakeroute.Network, *topo.Graph, map[packet.Addr]int) {
	net := fakeroute.NewNetwork(seed)
	alloc := fakeroute.NewAddrAllocator(packet.AddrFrom4(10, 0, 0, 1))
	g := fakeroute.NewPathBuilder(alloc).Spread(4).Converge(1).End(testDst)

	routerOf := make(map[packet.Addr]int)
	mid := g.Hop(1)
	r1, r2 := net.NewRouter(), net.NewRouter()
	r1.IPID, r2.IPID = mode, mode
	for i, id := range mid {
		r := r1
		if i >= 2 {
			r = r2
		}
		a := g.V(id).Addr
		net.AddIface(r, a)
		routerOf[a] = r.ID
	}
	// Remaining hops: one router per interface.
	net.EnsureIfaces(g, testDst)
	for i := range g.Vertices {
		a := g.Vertices[i].Addr
		if _, ok := routerOf[a]; !ok && a != testDst && a != topo.StarAddr {
			routerOf[a] = net.RouterOf(a).ID
		}
	}
	net.AddPath(testSrc, testDst, g)
	return net, g, routerOf
}

func traceAndResolve(t *testing.T, seed uint64, mode fakeroute.IPIDMode) ([]RoundResult, map[packet.Addr]int, *topo.Graph) {
	t.Helper()
	net, truth, routerOf := buildAliasedDiamond(seed, mode)
	p := probe.NewSimProber(net, testSrc, testDst)
	o := obs.New()
	res := mdalite.Trace(p, mda.Config{Seed: seed, Obs: o}, 2)
	if !res.ReachedDst {
		t.Fatal("trace did not reach destination")
	}
	var mid []packet.Addr
	for _, id := range res.Graph.Hop(1) {
		if a := res.Graph.V(id).Addr; a != topo.StarAddr {
			mid = append(mid, a)
		}
	}
	if len(mid) != 4 {
		t.Fatalf("expected 4 addresses at hop 1, got %d", len(mid))
	}
	r := NewResolver(p, o)
	return r.Resolve(mid), routerOf, truth
}

func TestResolveSharedCounters(t *testing.T) {
	rounds, routerOf, _ := traceAndResolve(t, 42, fakeroute.IPIDShared)
	final := rounds[len(rounds)-1]
	routers := RouterSets(final.Sets)
	if len(routers) != 2 {
		t.Fatalf("expected 2 router sets, got %d: %+v", len(routers), final.Sets)
	}
	var addrs []packet.Addr
	for a := range routerOf {
		addrs = append(addrs, a)
	}
	truthPairs := GroundTruthPairs(routerOf, addrs)
	pred := AliasPairs(final.Sets)
	p, r := PrecisionRecall(pred, truthPairs)
	if p < 0.99 || r < 0.99 {
		t.Fatalf("P=%.2f R=%.2f, want ~1 on shared counters", p, r)
	}
}

func TestResolveConstantZeroUnable(t *testing.T) {
	rounds, _, _ := traceAndResolve(t, 43, fakeroute.IPIDConstantZero)
	final := rounds[len(rounds)-1]
	if len(RouterSets(final.Sets)) != 0 {
		t.Fatalf("constant-zero counters must not produce accepted routers: %+v", final.Sets)
	}
}

func TestResolvePerInterfaceIndirectRejects(t *testing.T) {
	// Per-interface Time Exceeded counters: indirect probing must reject
	// the alias pairs (the paper's explanation for MIDAR-accept /
	// MMLPT-reject disagreements).
	rounds, routerOf, _ := traceAndResolve(t, 44, fakeroute.IPIDPerInterface)
	final := rounds[len(rounds)-1]
	pred := AliasPairs(final.Sets)
	var addrs []packet.Addr
	for a := range routerOf {
		addrs = append(addrs, a)
	}
	truthPairs := GroundTruthPairs(routerOf, addrs)
	for pair := range pred {
		if truthPairs[pair] {
			t.Fatalf("indirect probing accepted a per-interface-counter alias pair %v", pair)
		}
	}
}

func TestRound0CoarserThanRound10(t *testing.T) {
	rounds, _, _ := traceAndResolve(t, 45, fakeroute.IPIDShared)
	if rounds[0].Probes != 0 {
		t.Fatalf("round 0 must be free, sent %d", rounds[0].Probes)
	}
	if rounds[1].Probes == 0 {
		t.Fatal("round 1 must probe")
	}
	last := rounds[len(rounds)-1]
	if last.Probes <= rounds[1].Probes {
		t.Fatal("cumulative probes must grow over rounds")
	}
}

func TestFingerprintSplitsDifferentStacks(t *testing.T) {
	net, g, _ := buildAliasedDiamond(46, fakeroute.IPIDConstantZero)
	// Give the two routers different fingerprints: with constant-zero
	// counters the MBT is silent, so only fingerprinting separates them.
	net.Routers()[0].InitialTTLExceeded = 255
	net.Routers()[0].InitialTTLEcho = 255
	net.Routers()[1].InitialTTLExceeded = 64
	net.Routers()[1].InitialTTLEcho = 64
	p := probe.NewSimProber(net, testSrc, testDst)
	o := obs.New()
	mdalite.Trace(p, mda.Config{Seed: 46, Obs: o}, 2)
	var mid []packet.Addr
	for _, id := range g.Hop(1) {
		mid = append(mid, g.V(id).Addr)
	}
	r := NewResolver(p, o)
	r.FingerprintRound(mid)
	ev := r.PairVerdict(mid[0], mid[3]) // router 0 vs router 1
	if ev.Fingerprint != Rejected {
		t.Fatalf("different initial TTLs must reject, got %v", ev.Fingerprint)
	}
	ev2 := r.PairVerdict(mid[0], mid[1]) // same router
	if ev2.Fingerprint == Rejected {
		t.Fatal("same fingerprints must not reject")
	}
}

func TestMPLSLabelEvidence(t *testing.T) {
	net, g, _ := buildAliasedDiamond(47, fakeroute.IPIDConstantZero)
	mid := g.Hop(1)
	// Same label on router 0's two interfaces, different on router 1's.
	net.Iface(g.V(mid[0]).Addr).MPLSLabel = 100
	net.Iface(g.V(mid[1]).Addr).MPLSLabel = 100
	net.Iface(g.V(mid[2]).Addr).MPLSLabel = 200
	net.Iface(g.V(mid[3]).Addr).MPLSLabel = 300
	p := probe.NewSimProber(net, testSrc, testDst)
	o := obs.New()
	mdalite.Trace(p, mda.Config{Seed: 47, Obs: o}, 2)
	r := NewResolver(p, o)
	a0, a1, a2, a3 := g.V(mid[0]).Addr, g.V(mid[1]).Addr, g.V(mid[2]).Addr, g.V(mid[3]).Addr
	if ev := r.PairVerdict(a0, a1); ev.MPLS != Accepted {
		t.Fatalf("same constant label must accept, got %v", ev.MPLS)
	}
	if ev := r.PairVerdict(a2, a3); ev.MPLS != Rejected {
		t.Fatalf("different labels must reject, got %v", ev.MPLS)
	}
}

func TestDirectResolverUnresponsive(t *testing.T) {
	net, g, _ := buildAliasedDiamond(48, fakeroute.IPIDShared)
	for _, r := range net.Routers() {
		r.RespondsToEcho = false
	}
	p := probe.NewSimProber(net, testSrc, testDst)
	o := obs.New()
	mdalite.Trace(p, mda.Config{Seed: 48, Obs: o}, 2)
	var mid []packet.Addr
	for _, id := range g.Hop(1) {
		mid = append(mid, g.V(id).Addr)
	}
	r := &Resolver{P: p, Obs: obs.New(), Direct: true, ProbesPerRound: 10, Rounds: 2}
	r.ProbeRound(mid)
	if ok, cause := r.AddrUsable(mid[0]); ok || cause != CauseUnresponsive {
		t.Fatalf("unresponsive echo must yield CauseUnresponsive, got ok=%v %v", ok, cause)
	}
}

func TestDirectResolverCopyProbe(t *testing.T) {
	net, g, _ := buildAliasedDiamond(49, fakeroute.IPIDEchoCopy)
	p := probe.NewSimProber(net, testSrc, testDst)
	var mid []packet.Addr
	for _, id := range g.Hop(1) {
		mid = append(mid, g.V(id).Addr)
	}
	r := &Resolver{P: p, Obs: obs.New(), Direct: true, ProbesPerRound: 10, Rounds: 2}
	r.ProbeRound(mid)
	if ok, cause := r.AddrUsable(mid[0]); ok || cause != CauseCopyProbe {
		t.Fatalf("copy-probe router must yield CauseCopyProbe, got ok=%v %v", ok, cause)
	}
}
