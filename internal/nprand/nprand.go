// Package nprand provides the deterministic pseudo-randomness used across
// the simulator and the probing algorithms.
//
// Two distinct sources of randomness exist in a multipath route tracer and
// its simulated network, and they must not be conflated:
//
//   - A stateful stream (Source) drives stochastic choices made over time:
//     which flow identifier to try next, packet-loss coin flips, workload
//     generation. The paper's Fakeroute uses the C++ Mersenne Twister here;
//     we use xoshiro256** seeded via splitmix64, which has equivalent or
//     better statistical quality for this purpose and is trivially
//     reproducible from a single uint64 seed.
//
//   - A stateless per-flow hash (FlowHash) models how a per-flow load
//     balancer deterministically maps a packet's flow identifier to one of
//     its successor interfaces. The same flow must always take the same
//     branch (assumption (2) of Veitch et al.), while distinct flows must
//     spread uniformly (assumption (3)).
//
// In the layering, nprand is a thin leaf utility: it depends on nothing
// in this module and everything stochastic — fakeroute, the probing
// algorithms, workload generation — depends on it.
package nprand

// splitmix64 advances the seed and returns the next value of the splitmix64
// sequence. It is used to expand a single user seed into the 256-bit state
// xoshiro256** requires, following the generator authors' recommendation.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a deterministic xoshiro256** pseudo-random number generator.
// The zero value is not usable; construct with New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given seed. Equal seeds yield equal
// streams on every platform.
func New(seed uint64) *Source {
	var r Source
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// A pathological all-zero state (only possible if splitmix64 emitted
	// four zeros, which it cannot from any seed, but we keep the guard for
	// clarity and safety under future edits).
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return &r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next value in the stream.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("nprand: Intn with non-positive n")
	}
	return int(r.boundedUint64(uint64(n)))
}

// boundedUint64 returns a uniform value in [0, n) using Lemire's nearly
// division-free method with rejection to eliminate modulo bias.
func (r *Source) boundedUint64(n uint64) uint64 {
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= -n%n {
			// -n % n == (2^64 - n) % n, the rejection threshold.
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform value in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the swap callback.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Categorical draws an index from the discrete distribution given by
// weights. Zero-weight entries are never chosen. It panics if weights is
// empty or sums to zero.
func (r *Source) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("nprand: negative weight")
		}
		total += w
	}
	if total == 0 || len(weights) == 0 {
		panic("nprand: empty or zero-sum weights")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Fork derives an independent child stream. Children with distinct labels
// are statistically independent of each other and of the parent's future
// output; forking is deterministic given the parent state and label.
func (r *Source) Fork(label uint64) *Source {
	return New(r.Uint64() ^ mix64(label))
}

// IndexedSeed derives the seed for the idx-th independent run of a batch
// from a base seed, spacing seeds by the 64-bit golden ratio (the
// splitmix64 increment) so nearby indices land far apart in seed space.
// The survey runner and mmlpt.TraceEach share this derivation; equal
// (base, idx) always selects the same stream.
func IndexedSeed(base uint64, idx int) uint64 {
	return base ^ uint64(idx)*0x9e3779b97f4a7c15
}

// FlowHash maps (key, flowID) to a 64-bit value that is deterministic per
// flow and uniform across flows. Load balancers use it to pick a successor:
// a router identified by key dispatches flowID to bucket
// FlowHash(key, flowID) % fanout.
//
// The construction is a strengthened FNV-1a over the two 64-bit inputs with
// an avalanche finalizer (the 64-bit variant of MurmurHash3's fmix); plain
// FNV has weak low-bit diffusion for short inputs, which would bias small
// modulo fanouts.
func FlowHash(key, flowID uint64) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= (key >> (8 * i)) & 0xff
		h *= prime
	}
	for i := 0; i < 8; i++ {
		h ^= (flowID >> (8 * i)) & 0xff
		h *= prime
	}
	return mix64(h)
}

// mix64 is the 64-bit finalizer from MurmurHash3 (fmix64): a bijective
// avalanche function.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
