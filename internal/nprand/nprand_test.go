package nprand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("equal seeds diverged")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(1)
	for n := 1; n <= 10; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(7)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 4*math.Sqrt(want) {
			t.Errorf("bucket %d: %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	var sum float64
	const draws = 10000
	for i := 0; i < draws; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64 = %v", x)
		}
		sum += x
	}
	if mean := sum / draws; mean < 0.48 || mean > 0.52 {
		t.Fatalf("mean %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%50 + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(9)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatal("shuffle changed elements")
	}
}

func TestCategorical(t *testing.T) {
	r := New(11)
	counts := [3]int{}
	const draws = 30000
	for i := 0; i < draws; i++ {
		counts[r.Categorical([]float64{0.5, 0.3, 0.2})]++
	}
	for i, want := range []float64{0.5, 0.3, 0.2} {
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.02 {
			t.Errorf("category %d: %.3f, want %.3f", i, got, want)
		}
	}
	// Zero-weight entries are never chosen.
	for i := 0; i < 1000; i++ {
		if r.Categorical([]float64{0, 1, 0}) != 1 {
			t.Fatal("zero-weight category chosen")
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	for _, w := range [][]float64{nil, {}, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %v", w)
				}
			}()
			New(1).Categorical(w)
		}()
	}
}

func TestFlowHashDeterministicAndSpread(t *testing.T) {
	if FlowHash(1, 2) != FlowHash(1, 2) {
		t.Fatal("not deterministic")
	}
	// Buckets over sequential flow IDs must spread evenly for small
	// fanouts: this is the property per-flow load balancing relies on.
	for _, fanout := range []int{2, 3, 4, 7} {
		counts := make([]int, fanout)
		const flows = 20000
		for f := 0; f < flows; f++ {
			counts[FlowHash(0xdeadbeef, uint64(f))%uint64(fanout)]++
		}
		want := float64(flows) / float64(fanout)
		for b, c := range counts {
			if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
				t.Errorf("fanout %d bucket %d: %d, want ~%.0f", fanout, b, c, want)
			}
		}
	}
}

func TestFlowHashKeysIndependent(t *testing.T) {
	// Two different load balancers must not branch identically: the
	// fraction of flows taking the same bucket index under two keys
	// should be about 1/fanout.
	const fanout, flows = 2, 20000
	same := 0
	for f := 0; f < flows; f++ {
		a := FlowHash(111, uint64(f)) % fanout
		b := FlowHash(222, uint64(f)) % fanout
		if a == b {
			same++
		}
	}
	frac := float64(same) / flows
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("key correlation: %.3f of flows agree, want ~0.5", frac)
	}
}

func TestForkIndependence(t *testing.T) {
	r := New(5)
	c1 := r.Fork(1)
	c2 := r.Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked streams collided %d times", same)
	}
}

func TestMul64MatchesBigMultiplication(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify via 32-bit schoolbook independently.
		a0, a1 := a&0xffffffff, a>>32
		b0, b1 := b&0xffffffff, b>>32
		ll := a0 * b0
		lh := a0 * b1
		hl := a1 * b0
		hh := a1 * b1
		carry := (ll>>32 + lh&0xffffffff + hl&0xffffffff) >> 32
		wantHi := hh + lh>>32 + hl>>32 + carry
		wantLo := a * b
		return hi == wantHi && lo == wantLo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
