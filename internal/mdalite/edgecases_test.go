package mdalite

import (
	"testing"

	"mmlpt/internal/fakeroute"
	"mmlpt/internal/mda"
	"mmlpt/internal/packet"
	"mmlpt/internal/probe"
	"mmlpt/internal/topo"
)

// edge-completion scenario builders: each produces a diamond exercising
// one of the three Sec 2.3.1 cases.

// contractingDiamond: hop i (4 vertices) → hop i+1 (2 vertices): edge
// completion must trace forward from successor-less hop-i vertices.
func contractingDiamond(alloc *fakeroute.AddrAllocator, dst packet.Addr) *topo.Graph {
	return fakeroute.NewPathBuilder(alloc).Spread(4).Converge(2).Converge(1).End(dst)
}

// expandingDiamond: hop i (2) → hop i+1 (4): backward tracing from
// predecessor-less hop-i+1 vertices.
func expandingDiamond(alloc *fakeroute.AddrAllocator, dst packet.Addr) *topo.Graph {
	return fakeroute.NewPathBuilder(alloc).Spread(2).Spread(2).Converge(1).End(dst)
}

// equalDiamond: hop i (3) → hop i+1 (3) one-to-one: both directions.
func equalDiamond(alloc *fakeroute.AddrAllocator, dst packet.Addr) *topo.Graph {
	return fakeroute.NewPathBuilder(alloc).Spread(3).Converge(3).Converge(1).End(dst)
}

func TestEdgeCompletionCases(t *testing.T) {
	cases := []struct {
		name  string
		build func(*fakeroute.AddrAllocator, packet.Addr) *topo.Graph
	}{
		{"contracting", contractingDiamond},
		{"expanding", expandingDiamond},
		{"equal", equalDiamond},
	}
	for _, c := range cases {
		full, switches := 0, 0
		const runs = 12
		for seed := uint64(0); seed < runs; seed++ {
			net, path := fakeroute.BuildScenario(seed, testSrc, testDst, c.build)
			p := probe.NewSimProber(net, testSrc, testDst)
			res := Trace(p, mda.Config{Seed: seed}, 2)
			if res.SwitchedToMDA {
				// Not an error: when the hop-level stopping rule misses a
				// vertex (a few percent per run), the downstream edges
				// look asymmetric, the non-uniformity test fires and the
				// MDA recovers — the designed safety net.
				switches++
			}
			v, e := topo.SubgraphCoverage(res.Graph, path.Graph)
			if v == 1 && e == 1 {
				full++
			}
		}
		if switches > runs/3 {
			t.Errorf("%s: switch fired in %d/%d runs; expected only occasional stochastic misses",
				c.name, switches, runs)
		}
		// The stopping rule allows a small failure probability; demand a
		// large majority of complete discoveries.
		if full < runs-2 {
			t.Errorf("%s: full discovery in only %d/%d runs", c.name, full, runs)
		}
	}
}

// TestLiteNeverInventsTopology: like the MDA, the MDA-Lite must never
// report vertices or edges absent from the ground truth, across shapes
// and seeds (including switch-over paths).
func TestLiteNeverInventsTopology(t *testing.T) {
	builds := []func(*fakeroute.AddrAllocator, packet.Addr) *topo.Graph{
		fakeroute.SimplestDiamond, fakeroute.Fig1UnmeshedDiamond,
		fakeroute.Fig1MeshedDiamond, fakeroute.SymmetricDiamond,
		fakeroute.AsymmetricDiamond, fakeroute.MeshedDiamond48,
	}
	for seed := uint64(0); seed < 6; seed++ {
		for bi, build := range builds {
			net, path := fakeroute.BuildScenario(seed, testSrc, testDst, build)
			p := probe.NewSimProber(net, testSrc, testDst)
			res := Trace(p, mda.Config{Seed: seed}, 2)
			v, e := topo.SubgraphCoverage(path.Graph, res.Graph)
			if v != 1 || e != 1 {
				t.Fatalf("seed %d build %d: invented topology\ntruth:\n%s\ngot:\n%s",
					seed, bi, path.Graph, res.Graph)
			}
		}
	}
}

// TestSwitchOverReusesState: the partial switch-over must not discard
// hops discovered before the offending diamond — total probes must stay
// well below lite-probes + full-MDA-from-scratch-probes.
func TestSwitchOverReusesState(t *testing.T) {
	// Topology: a benign wide diamond, a chain hop, then a meshed diamond
	// that triggers the switch.
	build := func(alloc *fakeroute.AddrAllocator, dst packet.Addr) *topo.Graph {
		return fakeroute.NewPathBuilder(alloc).
			Spread(8).Converge(1). // benign diamond
			Chain(1).
			Spread(3).Full(3).Converge(1). // meshed diamond
			End(dst)
	}
	var switched, mdaTotal, liteTotal uint64
	const runs = 8
	for seed := uint64(0); seed < runs; seed++ {
		netL, _ := fakeroute.BuildScenario(seed, testSrc, testDst, build)
		pL := probe.NewSimProber(netL, testSrc, testDst)
		pL.Retries = 0
		resL := Trace(pL, mda.Config{Seed: seed}, 2)
		if resL.SwitchedToMDA {
			switched++
		}
		liteTotal += resL.Probes

		netM, _ := fakeroute.BuildScenario(seed, testSrc, testDst, build)
		pM := probe.NewSimProber(netM, testSrc, testDst)
		pM.Retries = 0
		resM := mda.Trace(pM, mda.Config{Seed: seed + 999})
		mdaTotal += resM.Probes
	}
	if switched < runs-1 {
		t.Fatalf("switch fired in only %d/%d runs", switched, runs)
	}
	// With state reuse the total should stay below ~1.5× the MDA cost;
	// a discard-and-restart implementation would land near 2×.
	if float64(liteTotal) > 1.5*float64(mdaTotal) {
		t.Fatalf("switch-over too expensive: lite=%d vs mda=%d", liteTotal, mdaTotal)
	}
}

// TestBackwardMeshingDetection: an expanding meshed pair (2 → 4 with an
// in-degree-2 vertex) must be caught by the backward meshing trace.
func TestBackwardMeshingDetection(t *testing.T) {
	build := func(alloc *fakeroute.AddrAllocator, dst packet.Addr) *topo.Graph {
		b := fakeroute.NewPathBuilder(alloc).Spread(2)
		g := b.Graph()
		prev := b.Current()
		// Hop 2: 4 vertices; one is fed by both hop-1 vertices (meshed by
		// the "fewer → more, in-degree ≥ 2" rule).
		var next []topo.VertexID
		for i := 0; i < 4; i++ {
			next = append(next, g.AddVertex(2, alloc.Next()))
		}
		g.AddEdge(prev[0], next[0])
		g.AddEdge(prev[0], next[1])
		g.AddEdge(prev[1], next[1]) // shared target: in-degree 2
		g.AddEdge(prev[1], next[2])
		g.AddEdge(prev[1], next[3])
		c := g.AddVertex(3, alloc.Next())
		for _, v := range next {
			g.AddEdge(v, c)
		}
		end := g.AddVertex(4, dst)
		g.AddEdge(c, end)
		return g
	}
	detected := 0
	const runs = 10
	for seed := uint64(0); seed < runs; seed++ {
		net, _ := fakeroute.BuildScenario(seed, testSrc, testDst, build)
		p := probe.NewSimProber(net, testSrc, testDst)
		res := Trace(p, mda.Config{Seed: seed}, 2)
		if res.SwitchedToMDA {
			detected++
		}
	}
	// This topology is also width-asymmetric (successor counts 2 vs 3),
	// so a switch is near-certain; the point is that it fires at all via
	// either detector on an expanding pair.
	if detected < runs-1 {
		t.Fatalf("expanding meshed pair detected in only %d/%d runs", detected, runs)
	}
}

// TestLiteHandlesAllStarsGracefully: a network that never answers beyond
// the first hop must terminate quickly.
func TestLiteHandlesAllStarsGracefully(t *testing.T) {
	net := fakeroute.NewNetwork(71)
	alloc := fakeroute.NewAddrAllocator(packet.AddrFrom4(10, 0, 0, 1))
	g := fakeroute.NewPathBuilder(alloc).Chain(1).Star().Star().Star().Star().End(testDst)
	net.EnsureIfaces(g, testDst)
	net.AddPath(testSrc, testDst, g)
	p := probe.NewSimProber(net, testSrc, testDst)
	p.Retries = 0
	res := Trace(p, mda.Config{Seed: 71, MaxConsecutiveStars: 3}, 2)
	if res.ReachedDst {
		t.Fatal("reached destination through an all-star path?")
	}
	if res.Probes > 200 {
		t.Fatalf("all-star path consumed %d probes", res.Probes)
	}
}
