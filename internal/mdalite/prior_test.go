package mdalite

import (
	"testing"

	"mmlpt/internal/fakeroute"
	"mmlpt/internal/mda"
	"mmlpt/internal/packet"
	"mmlpt/internal/probe"
	"mmlpt/internal/topo"
)

func TestPairAsymmetricAllocFree(t *testing.T) {
	// The detector runs on every hop of the trace loop; it must not
	// allocate per-hop count slices.
	g := topo.New()
	u0 := g.AddVertex(0, 1)
	a, b := g.AddVertex(1, 2), g.AddVertex(1, 3)
	c, d := g.AddVertex(2, 4), g.AddVertex(2, 5)
	g.AddEdge(u0, a)
	g.AddEdge(u0, b)
	g.AddEdge(a, c)
	g.AddEdge(b, d)
	g.AddEdge(b, c)
	var sink bool
	allocs := testing.AllocsPerRun(100, func() {
		sink = pairAsymmetric(g, 1)
	})
	if allocs != 0 {
		t.Fatalf("pairAsymmetric allocates %.1f times per run, want 0", allocs)
	}
	if !sink {
		t.Fatal("asymmetric pair not detected")
	}
}

func TestCompleteEdgesStableBeforeCapNotTruncated(t *testing.T) {
	// A pair that stabilizes before maxEdgeCompletionIters must report
	// zero truncations: the counter records genuine cap exhaustion only.
	for _, build := range []func(*fakeroute.AddrAllocator, packet.Addr) *topo.Graph{
		fakeroute.SimplestDiamond, fakeroute.SymmetricDiamond, fakeroute.MaxLength2Diamond,
	} {
		net, _ := fakeroute.BuildScenario(41, testSrc, testDst, build)
		p := probe.NewSimProber(net, testSrc, testDst)
		res := Trace(p, mda.Config{Seed: 41}, 2)
		if res.EdgeCompletionTruncated != 0 {
			t.Fatalf("stable topology reported %d edge-completion truncations", res.EdgeCompletionTruncated)
		}
	}
}
