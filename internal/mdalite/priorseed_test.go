// Prior-seeded trace tests live in an external test package: the prior
// package reaches traceio (whose core dependency imports mdalite), so an
// in-package import would cycle.
package mdalite_test

import (
	"testing"

	"mmlpt/internal/fakeroute"
	"mmlpt/internal/mda"
	"mmlpt/internal/mdalite"
	"mmlpt/internal/packet"
	"mmlpt/internal/prior"
	"mmlpt/internal/probe"
	"mmlpt/internal/topo"
)

var (
	seedSrc = packet.MustParseAddr("192.0.2.1")
	seedDst = packet.MustParseAddr("198.51.100.77")
)

// tracedSession runs an unseeded MDA-Lite trace and returns both the
// result and the session, so tests can capture flow landings.
func tracedSession(net *fakeroute.Network, seed uint64) (*mda.Result, *mda.Session) {
	p := probe.NewSimProber(net, seedSrc, seedDst)
	s := mda.NewSession(p, mda.Config{Seed: seed})
	return mdalite.Run(s, 2), s
}

func TestPriorSeededRetraceSavesProbes(t *testing.T) {
	net, path := fakeroute.BuildScenario(11, seedSrc, seedDst, fakeroute.SymmetricDiamond)
	first, s1 := tracedSession(net, 11)
	if !first.ReachedDst || first.SwitchedToMDA {
		t.Fatalf("unseeded baseline trace: reached=%t switched=%t", first.ReachedDst, first.SwitchedToMDA)
	}

	pp := prior.FromGraph(seedSrc, seedDst, first.Graph)
	pp.CaptureLandings(s1)

	p2 := probe.NewSimProber(net, seedSrc, seedDst)
	res := mdalite.Trace(p2, mda.Config{Seed: 12, Prior: pp}, 2)
	if !res.ReachedDst {
		t.Fatal("prior-seeded re-trace did not reach the destination")
	}
	if res.PriorAbandoned {
		t.Fatal("prior abandoned on an unchanged route")
	}
	if res.PriorHopsConfirmed == 0 {
		t.Fatal("no hops confirmed from the prior")
	}
	v, e := topo.SubgraphCoverage(res.Graph, path.Graph)
	if v != 1 || e != 1 {
		t.Fatalf("seeded coverage v=%.2f e=%.2f\n%s", v, e, res.Graph)
	}
	if res.Probes >= first.Probes {
		t.Fatalf("prior-seeded re-trace spent %d probes, unseeded %d: no savings", res.Probes, first.Probes)
	}
	// The confirmation pass stops at coverage, not at the stopping
	// point, so the saving on an unchanged route should be substantial.
	if float64(res.Probes) > 0.7*float64(first.Probes) {
		t.Fatalf("prior-seeded re-trace spent %d probes vs %d unseeded: expected >30%% savings", res.Probes, first.Probes)
	}
}

func TestPriorMismatchFallsBackToFullDiscovery(t *testing.T) {
	// Prior from one topology, re-trace over a different one: the
	// confirmation pass must detect the change, abandon the prior, and
	// recover the new topology in full.
	oldNet, _ := fakeroute.BuildScenario(21, seedSrc, seedDst, fakeroute.SimplestDiamond)
	first, _ := tracedSession(oldNet, 21)

	pp := prior.FromGraph(seedSrc, seedDst, first.Graph)
	newNet, newPath := fakeroute.BuildScenario(22, seedSrc, seedDst, fakeroute.SymmetricDiamond)
	p := probe.NewSimProber(newNet, seedSrc, seedDst)
	res := mdalite.Trace(p, mda.Config{Seed: 23, Prior: pp}, 2)
	if !res.PriorAbandoned {
		t.Fatal("route change not detected: prior never abandoned")
	}
	if !res.ReachedDst {
		t.Fatal("fallback trace did not reach the destination")
	}
	v, e := topo.SubgraphCoverage(res.Graph, newPath.Graph)
	if v != 1 || e != 1 {
		t.Fatalf("fallback coverage v=%.2f e=%.2f\n%s", v, e, res.Graph)
	}
}

func TestPriorMeshedPairStillSwitches(t *testing.T) {
	// A prior recording a meshed pair must not suppress the switch to
	// the full MDA: the free graph-degree check replaces the phi-flow
	// meshing probes, and recall stays at the unseeded level.
	net, path := fakeroute.BuildScenario(31, seedSrc, seedDst, fakeroute.Fig1MeshedDiamond)
	p1 := probe.NewSimProber(net, seedSrc, seedDst)
	first := mdalite.Trace(p1, mda.Config{Seed: 31, Stop: mda.VeitchTable1(64)}, 2)
	if !first.SwitchedToMDA {
		t.Skip("meshing not detected in the unseeded pass (stochastic miss)")
	}

	pp := prior.FromGraph(seedSrc, seedDst, first.Graph)
	p2 := probe.NewSimProber(net, seedSrc, seedDst)
	res := mdalite.Trace(p2, mda.Config{Seed: 32, Stop: mda.VeitchTable1(64), Prior: pp}, 2)
	if !res.SwitchedToMDA {
		t.Fatal("prior-seeded trace failed to switch to MDA on a meshed pair")
	}
	v, e := topo.SubgraphCoverage(res.Graph, path.Graph)
	if v != 1 || e != 1 {
		t.Fatalf("post-switch coverage v=%.2f e=%.2f", v, e)
	}
}
