// Package mdalite implements the MDA-Lite (Sec 2.3): a reduced-overhead
// alternative to the Multipath Detection Algorithm that proceeds hop by
// hop rather than vertex by vertex, reserving node control for two
// narrowly scoped tests:
//
//   - the meshing test, which spends ϕ flow identifiers per vertex to
//     look for links that would invalidate hop-level probing, failing
//     with the probability of Eq. (1); and
//   - the width-asymmetry (non-uniformity) test, a free, purely
//     topological check.
//
// When either test fires, the session switches over to the full MDA,
// keeping the cumulative packet count.
package mdalite

import (
	"mmlpt/internal/mda"
	"mmlpt/internal/probe"
	"mmlpt/internal/topo"
)

// DefaultPhi is the minimum (and default) meshing-test budget.
const DefaultPhi = 2

// Trace runs the MDA-Lite over p and returns the discovered topology.
func Trace(p probe.Prober, cfg mda.Config, phi int) *mda.Result {
	s := mda.NewSession(p, cfg)
	return Run(s, phi)
}

// Run executes the MDA-Lite on a prepared session. On a meshing or
// asymmetry detection it switches over to the full MDA from the affected
// diamond onward, keeping the discovery state accumulated so far (the
// vertices, edges and flow knowledge are all flow-confirmed, so nothing
// needs re-probing; node control fills in what hop-level probing could
// not guarantee). The result carries SwitchedToMDA.
func Run(s *mda.Session, phi int) *mda.Result {
	if phi < DefaultPhi {
		phi = DefaultPhi
	}
	if switchHop, switched := runLite(s, phi); switched {
		s.RunMDA(switchHop)
		return s.Finish(true)
	}
	return s.Finish(false)
}

// runLite performs hop-by-hop discovery. On detecting meshing or
// non-uniformity it returns the hop the full MDA should resume from (the
// hop after the enclosing diamond's divergence point) and true.
func runLite(s *mda.Session, phi int) (int, bool) {
	discoverHop(s, 0)
	starRun := 0
	for h := 1; h <= s.Cfg.MaxTTL; h++ {
		if s.HopDone(h - 1) {
			return 0, false
		}
		discoverHop(s, h)
		completeEdges(s, h-1)
		if s.G.Width(h-1) >= 2 && s.G.Width(h) >= 2 {
			if meshed := meshingTest(s, h-1, phi); meshed {
				return divergenceHop(s, h-1) + 1, true
			}
		}
		// Non-uniformity: width asymmetry over the completed pair.
		if pairAsymmetric(s.G, h-1) {
			return divergenceHop(s, h-1) + 1, true
		}
		if allStars(s, h) {
			starRun++
			if starRun >= s.Cfg.MaxConsecutiveStars {
				return 0, false
			}
		} else {
			starRun = 0
		}
	}
	return 0, false
}

// divergenceHop walks back from hop h to the enclosing diamond's
// divergence point: the nearest single-vertex hop at or before h.
func divergenceHop(s *mda.Session, h int) int {
	for d := h; d > 0; d-- {
		if s.G.Width(d) == 1 {
			return d
		}
	}
	return 0
}

// discoverHop finds the vertices at hop h. Flows are tried in the
// MDA-Lite's order: one flow from each vertex discovered at the previous
// hop (seeding one edge per known predecessor), then the other flows
// already used at the previous hop, then fresh ones. The MDA's hop-level
// stopping rule applies: keep probing until the probe count reaches n_k,
// where k is the number of vertices found at hop h so far.
//
// Probes are issued in rounds: candidate flows accumulate until they fill
// the current n_k shortfall, then go out as one ProbeBatch; rounds also
// close at pass boundaries, so every selection decision (is this flow's
// hop-h landing known? did its earlier probe draw a reply?) sees fully
// integrated state, exactly as the probe-at-a-time loop saw it. Within a
// pass, candidate flows are disjoint (a flow lands on one vertex per
// hop), so no decision depends on the pending round's own replies, and
// n_k only grows as vertices are found — the rounds therefore send
// exactly the flows, in exactly the order, the serial loop sent, replies
// or no replies.
func discoverHop(s *mda.Session, h int) {
	sent := 0
	gotReply := false
	var pending []uint16

	stop := func() int { return mda.Stop(s.Cfg.Stop, maxInt(s.G.Width(h), 1)) }

	// flush sends the accumulated round as one batch and integrates the
	// replies, seeding one edge per flow whose previous-hop landing is
	// known.
	flush := func() {
		if len(pending) == 0 {
			return
		}
		batch := pending
		pending = nil
		vs := s.ProbeHopBatch(h, batch)
		sent += len(batch)
		for i, w := range vs {
			if w == topo.None {
				continue
			}
			gotReply = true
			if h > 0 {
				if u, known := s.VertexAt(h-1, batch[i]); known {
					s.G.AddEdge(u, w)
				}
			}
		}
	}

	tryFlow := func(f uint16) bool {
		if _, known := s.VertexAt(h, f); known {
			return false // no packet needed; knowledge already present
		}
		pending = append(pending, f)
		if sent+len(pending) >= stop() {
			flush()
		}
		return true
	}

	if h > 0 && !s.Cfg.DisableFlowReuse {
		// Pass 1: one flow per previous-hop vertex.
		for _, u := range s.G.Hop(h - 1) {
			if sent >= stop() {
				break
			}
			if s.IsDst(u) {
				continue
			}
			for _, f := range s.FlowsOf(u) {
				if tryFlow(f) {
					break
				}
			}
		}
		flush()
		// Pass 2: remaining previously used flows. A flow probed in pass
		// 1 is skipped here when it drew a reply (its landing is known)
		// and re-probed when it did not, as in the serial loop; the pass
		// boundary flush above makes that distinction observable.
		for _, u := range s.G.Hop(h - 1) {
			if s.IsDst(u) {
				continue
			}
			for _, f := range s.FlowsOf(u) {
				if sent+len(pending) >= stop() {
					break
				}
				tryFlow(f)
			}
		}
		flush()
	}
	// Pass 3: fresh flows.
	for sent+len(pending) < stop() {
		f, ok := s.FreshFlow()
		if !ok {
			break
		}
		tryFlow(f)
	}
	flush()
	if !gotReply && sent > 0 {
		star := s.G.AddVertex(h, topo.StarAddr)
		s.AdoptStarFlows(h, star)
		if h > 0 {
			for _, u := range s.G.Hop(h - 1) {
				if !s.IsDst(u) {
					s.G.AddEdge(u, star)
				}
			}
		}
	}
}

// completeEdges runs the deterministic edge-completion step for the hop
// pair (i, i+1) (Sec 2.3.1): forward probes from successor-less vertices
// at hop i, backward probes from predecessor-less vertices at hop i+1.
// Probing can (rarely) surface a vertex the stopping rule missed, so the
// step loops until stable.
func completeEdges(s *mda.Session, i int) {
	for iter := 0; iter < 4; iter++ {
		changed := false
		wi, wj := s.G.Width(i), s.G.Width(i+1)
		if wj <= wi {
			// Forward tracing for hop i vertices lacking successors.
			for _, u := range s.G.Hop(i) {
				if s.G.OutDegree(u) > 0 || s.IsDst(u) || s.G.V(u).Addr == topo.StarAddr {
					continue
				}
				for _, f := range s.FlowsOf(u) {
					if w, known := s.VertexAt(i+1, f); known {
						s.G.AddEdge(u, w)
						changed = true
						break
					}
					if w, ok := s.ProbeHop(i+1, f); ok {
						s.G.AddEdge(u, w)
						changed = true
						break
					}
				}
			}
		}
		if wj >= wi {
			// Backward tracing for hop i+1 vertices lacking predecessors.
			for _, w := range s.G.Hop(i + 1) {
				if s.G.InDegree(w) > 0 || s.G.V(w).Addr == topo.StarAddr {
					continue
				}
				for _, f := range s.FlowsOf(w) {
					if u, known := s.VertexAt(i, f); known {
						s.G.AddEdge(u, w)
						changed = true
						break
					}
					if u, ok := s.ProbeHop(i, f); ok {
						s.G.AddEdge(u, w)
						changed = true
						break
					}
				}
			}
		}
		if !changed {
			return
		}
	}
}

// meshingTest applies the Sec 2.3.2 test to hop pair (i, i+1), tracing
// from the hop with the greater number of vertices toward the other with
// ϕ flow identifiers per vertex. It reports whether meshing was detected.
func meshingTest(s *mda.Session, i, phi int) bool {
	wi, wj := s.G.Width(i), s.G.Width(i+1)
	forward := wi >= wj // trace from the wider hop; ties go forward
	fromHop, toHop := i, i+1
	if !forward {
		fromHop, toHop = i+1, i
	}
	for _, v := range s.G.Hop(fromHop) {
		if s.IsDst(v) || s.G.V(v).Addr == topo.StarAddr {
			continue
		}
		s.EnsureFlows(v, phi)
		flows := s.FlowsOf(v)
		if len(flows) > phi {
			flows = flows[:phi]
		}
		for _, f := range flows {
			w, ok := s.VertexAt(toHop, f)
			if !ok {
				w, ok = s.ProbeHop(toHop, f)
			}
			if ok {
				// A cached landing carries the same evidence as a fresh
				// probe: record the edge either way.
				if forward {
					s.G.AddEdge(v, w)
				} else {
					s.G.AddEdge(w, v)
				}
			}
		}
	}
	if forward {
		for _, v := range s.G.Hop(i) {
			if s.G.OutDegree(v) >= 2 {
				return true
			}
		}
	} else {
		for _, v := range s.G.Hop(i + 1) {
			if s.G.InDegree(v) >= 2 {
				return true
			}
		}
	}
	return false
}

// pairAsymmetric implements the non-uniformity detector (Sec 2.3.3): the
// hop pair shows width asymmetry if successor counts differ across hop i
// or predecessor counts differ across hop i+1. Star vertices are excluded:
// their edges are inferred, not measured.
func pairAsymmetric(g *topo.Graph, i int) bool {
	var succCounts, predCounts []int
	for _, v := range g.Hop(i) {
		if g.V(v).Addr == topo.StarAddr {
			continue
		}
		succCounts = append(succCounts, g.OutDegree(v))
	}
	for _, v := range g.Hop(i + 1) {
		if g.V(v).Addr == topo.StarAddr {
			continue
		}
		predCounts = append(predCounts, g.InDegree(v))
	}
	return differs(succCounts) || differs(predCounts)
}

func differs(xs []int) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] != xs[0] {
			return true
		}
	}
	return false
}

func allStars(s *mda.Session, h int) bool {
	vs := s.G.Hop(h)
	if len(vs) == 0 {
		return false
	}
	for _, v := range vs {
		if s.G.V(v).Addr != topo.StarAddr {
			return false
		}
	}
	return true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
