// Package mdalite implements the MDA-Lite (Sec 2.3): a reduced-overhead
// alternative to the Multipath Detection Algorithm that proceeds hop by
// hop rather than vertex by vertex, reserving node control for two
// narrowly scoped tests:
//
//   - the meshing test, which spends ϕ flow identifiers per vertex to
//     look for links that would invalidate hop-level probing, failing
//     with the probability of Eq. (1); and
//   - the width-asymmetry (non-uniformity) test, a free, purely
//     topological check.
//
// When either test fires, the session switches over to the full MDA,
// keeping the cumulative packet count.
//
// With Config.Prior set, the trace runs in prior-seeded mode: each hop
// the prior covers is probed only to the confirmation budget (enough
// flows to corroborate the expected vertex set under the MDA stopping
// rule), edge completion and the meshing test are short-circuited for
// pairs the prior pins, and any mismatch — a vertex the prior does not
// expect, or an expected vertex missing after the budget — abandons the
// prior and falls back to full discovery from the enclosing divergence
// hop, keeping the cumulative packet count so recall is never worse
// than an unseeded trace.
package mdalite

import (
	"mmlpt/internal/mda"
	"mmlpt/internal/packet"
	"mmlpt/internal/probe"
	"mmlpt/internal/topo"
)

// DefaultPhi is the minimum (and default) meshing-test budget.
const DefaultPhi = 2

// Trace runs the MDA-Lite over p and returns the discovered topology.
func Trace(p probe.Prober, cfg mda.Config, phi int) *mda.Result {
	s := mda.NewSession(p, cfg)
	return Run(s, phi)
}

// Run executes the MDA-Lite on a prepared session. On a meshing or
// asymmetry detection it switches over to the full MDA from the affected
// diamond onward, keeping the discovery state accumulated so far (the
// vertices, edges and flow knowledge are all flow-confirmed, so nothing
// needs re-probing; node control fills in what hop-level probing could
// not guarantee). The result carries SwitchedToMDA.
func Run(s *mda.Session, phi int) *mda.Result {
	if phi < DefaultPhi {
		phi = DefaultPhi
	}
	if switchHop, switched := runLite(s, phi); switched {
		s.RunMDA(switchHop)
		return s.Finish(true)
	}
	return s.Finish(false)
}

// runLite performs hop-by-hop discovery. On detecting meshing or
// non-uniformity it returns the hop the full MDA should resume from (the
// hop after the enclosing diamond's divergence point) and true.
//
// When the session carries a prior, hops it covers are handled by
// confirmation rather than discovery, and pairs it pins skip the probing
// steps; a confirmation mismatch abandons the prior for the rest of the
// trace and re-discovers from the enclosing divergence hop.
func runLite(s *mda.Session, phi int) (int, bool) {
	prior := s.Cfg.Prior
	var confirmed []bool // per hop: settled by prior confirmation

	isConfirmed := func(h int) bool { return h >= 0 && h < len(confirmed) && confirmed[h] }
	setConfirmed := func(h int, v bool) {
		for len(confirmed) <= h {
			confirmed = append(confirmed, false)
		}
		confirmed[h] = v
	}

	// pairChecks runs edge completion plus the meshing and asymmetry
	// detectors over hop pair (i, i+1), returning the switch decision the
	// main loop acts on. When the prior pins both hops the probing steps
	// are short-circuited: the pair's recorded links are adopted from the
	// prior and the detectors run over the adopted graph for free.
	pairChecks := func(i int) (int, bool) {
		if isConfirmed(i) && isConfirmed(i+1) {
			adoptPriorEdges(s, i, s.Cfg.Prior)
			// With the pair's links adopted, meshing shows directly in
			// the graph under the Sec 2.2 three-case definition — the
			// free form of the meshing test, no phi probes spent.
			if s.G.Width(i) >= 2 && s.G.Width(i+1) >= 2 && s.G.PairMeshed(i) {
				return divergenceHop(s, i) + 1, true
			}
		} else {
			completeEdges(s, i)
			if s.G.Width(i) >= 2 && s.G.Width(i+1) >= 2 {
				if meshed := meshingTest(s, i, phi); meshed {
					return divergenceHop(s, i) + 1, true
				}
			}
		}
		// Non-uniformity: width asymmetry over the completed pair.
		if pairAsymmetric(s.G, i) {
			return divergenceHop(s, i) + 1, true
		}
		return 0, false
	}

	// fallBack abandons the prior after a mismatch at hop h: re-discover
	// every hop from the enclosing divergence point through h in full,
	// then re-check the re-discovered pairs. Pair (h-1, h) is left to the
	// main loop, which processes it right after this returns. The packet
	// count is cumulative — confirmation probes already spent stay spent —
	// so the fallback trace is never cheaper, and never less complete,
	// than an unseeded one from this hop range.
	fallBack := func(h int) (int, bool) {
		s.PriorAbandoned = true
		prior = nil
		d := divergenceHop(s, h)
		start := d + 1
		if h == 0 {
			start = 0
		}
		for j := start; j <= h; j++ {
			setConfirmed(j, false)
			discoverHop(s, j)
		}
		for j := d; j <= h-2; j++ {
			if sw, switched := pairChecks(j); switched {
				return sw, true
			}
		}
		return 0, false
	}

	// handleHop settles hop h: by confirmation when the prior covers it,
	// by discovery otherwise (and by fallback re-discovery on a
	// confirmation mismatch).
	handleHop := func(h int) (int, bool) {
		if prior != nil {
			if want, ok := prior.HopAddrs(h); ok && len(want) > 0 {
				if confirmHop(s, h, want, prior) {
					setConfirmed(h, true)
					s.PriorConfirmedHops++
					return 0, false
				}
				return fallBack(h)
			}
		}
		discoverHop(s, h)
		return 0, false
	}

	if sw, switched := handleHop(0); switched {
		return sw, true
	}
	starRun := 0
	for h := 1; h <= s.Cfg.MaxTTL; h++ {
		if s.HopDone(h - 1) {
			return 0, false
		}
		if sw, switched := handleHop(h); switched {
			return sw, true
		}
		if sw, switched := pairChecks(h - 1); switched {
			return sw, true
		}
		if allStars(s, h) {
			starRun++
			if starRun >= s.Cfg.MaxConsecutiveStars {
				return 0, false
			}
		} else {
			starRun = 0
		}
	}
	return 0, false
}

// confirmHop corroborates hop h against the prior's expected vertex set
// instead of running open-ended discovery. Probing stops as soon as every
// expected address has been seen — the prior already paid the full
// stopping-rule cost when the topology was first discovered, so the
// re-trace only needs evidence the route is unchanged — and is bounded by
// the confirmation budget n_k for an expected width of k. It reports
// whether the hop was confirmed; a false return means either a reply
// from an address the prior does not expect (new vertex) or an expected
// address still unseen at budget exhaustion (missing vertex), both of
// which the caller treats as a route change.
func confirmHop(s *mda.Session, h int, want []packet.Addr, prior mda.TracePrior) bool {
	wantSet := make(map[packet.Addr]bool, len(want))
	for _, a := range want {
		wantSet[a] = true
	}
	budget := mda.ConfirmBudget(s.Cfg.Stop, len(want))
	seen := make(map[packet.Addr]bool, len(want))
	tried := make(map[uint16]bool)
	sent := 0
	mismatch := false
	stop := false

	note := func(v topo.VertexID) {
		a := s.G.V(v).Addr
		if a == topo.StarAddr {
			return
		}
		if !wantSet[a] {
			mismatch = true
			stop = true
			return
		}
		if !seen[a] {
			seen[a] = true
			if len(seen) == len(want) {
				stop = true
			}
		}
	}

	try := func(f uint16) {
		if stop || tried[f] {
			return
		}
		tried[f] = true
		if v, known := s.VertexAt(h, f); known {
			note(v) // knowledge already present; no packet needed
			return
		}
		if sent >= budget {
			stop = true
			return
		}
		sent++
		v, ok := s.ProbeHop(h, f)
		if !ok {
			return
		}
		if h > 0 {
			if u, known := s.VertexAt(h-1, f); known {
				s.G.AddEdge(u, v)
			}
		}
		note(v)
	}

	// Pass 0: flow hints — identifiers the prior saw land on each expected
	// address. Hints only reorder probing toward flows likely to cover the
	// expected set quickly; stale hints cost at most their probes. Rounds
	// take one hint per still-unseen address, so one address's hint list
	// cannot soak the budget before the others get their first try —
	// landings are usually stable, making the first hint per address
	// sufficient on an unchanged route.
	for round := 0; !stop; round++ {
		tookOne := false
		for _, a := range want {
			if stop {
				break
			}
			if seen[a] {
				continue
			}
			if fs := prior.FlowHints(h, a); round < len(fs) {
				tookOne = true
				try(fs[round])
			}
		}
		if !tookOne {
			break
		}
	}
	if h > 0 && !s.Cfg.DisableFlowReuse {
		// Pass 1: one flow per previous-hop vertex, seeding one edge per
		// known predecessor, as in discovery.
		for _, u := range s.G.Hop(h - 1) {
			if stop {
				break
			}
			if s.IsDst(u) {
				continue
			}
			for _, f := range s.FlowsOf(u) {
				if !tried[f] {
					try(f)
					break
				}
			}
		}
		// Pass 2: remaining previously used flows.
		for _, u := range s.G.Hop(h - 1) {
			if stop {
				break
			}
			if s.IsDst(u) {
				continue
			}
			for _, f := range s.FlowsOf(u) {
				if stop {
					break
				}
				try(f)
			}
		}
	}
	// Pass 3: fresh flows.
	for !stop && sent < budget {
		f, ok := s.FreshFlow()
		if !ok {
			break
		}
		try(f)
	}
	return !mismatch && len(seen) == len(want)
}

// adoptPriorEdges short-circuits edge completion for a hop pair both of
// whose endpoints the prior has confirmed: every link the earlier trace
// recorded between the corroborated vertex sets is adopted without
// spending a probe. Star vertices keep only their inferred edges.
func adoptPriorEdges(s *mda.Session, i int, prior mda.TracePrior) {
	for _, u := range s.G.Hop(i) {
		ua := s.G.V(u).Addr
		if ua == topo.StarAddr {
			continue
		}
		for _, w := range s.G.Hop(i + 1) {
			wa := s.G.V(w).Addr
			if wa == topo.StarAddr {
				continue
			}
			if prior.HasEdge(ua, wa) {
				s.G.AddEdge(u, w)
			}
		}
	}
}

// divergenceHop walks back from hop h to the enclosing diamond's
// divergence point: the nearest single-vertex hop at or before h.
func divergenceHop(s *mda.Session, h int) int {
	for d := h; d > 0; d-- {
		if s.G.Width(d) == 1 {
			return d
		}
	}
	return 0
}

// discoverHop finds the vertices at hop h. Flows are tried in the
// MDA-Lite's order: one flow from each vertex discovered at the previous
// hop (seeding one edge per known predecessor), then the other flows
// already used at the previous hop, then fresh ones. The MDA's hop-level
// stopping rule applies: keep probing until the probe count reaches n_k,
// where k is the number of vertices found at hop h so far.
//
// Probes are issued in rounds: candidate flows accumulate until they fill
// the current n_k shortfall, then go out as one ProbeBatch; rounds also
// close at pass boundaries, so every selection decision (is this flow's
// hop-h landing known? did its earlier probe draw a reply?) sees fully
// integrated state, exactly as the probe-at-a-time loop saw it. Within a
// pass, candidate flows are disjoint (a flow lands on one vertex per
// hop), so no decision depends on the pending round's own replies, and
// n_k only grows as vertices are found — the rounds therefore send
// exactly the flows, in exactly the order, the serial loop sent, replies
// or no replies.
func discoverHop(s *mda.Session, h int) {
	sent := 0
	gotReply := false
	var pending []uint16

	stop := func() int { return mda.Stop(s.Cfg.Stop, maxInt(s.G.Width(h), 1)) }

	// flush sends the accumulated round as one batch and integrates the
	// replies, seeding one edge per flow whose previous-hop landing is
	// known.
	flush := func() {
		if len(pending) == 0 {
			return
		}
		batch := pending
		pending = nil
		vs := s.ProbeHopBatch(h, batch)
		sent += len(batch)
		for i, w := range vs {
			if w == topo.None {
				continue
			}
			gotReply = true
			if h > 0 {
				if u, known := s.VertexAt(h-1, batch[i]); known {
					s.G.AddEdge(u, w)
				}
			}
		}
	}

	tryFlow := func(f uint16) bool {
		if _, known := s.VertexAt(h, f); known {
			return false // no packet needed; knowledge already present
		}
		pending = append(pending, f)
		if sent+len(pending) >= stop() {
			flush()
		}
		return true
	}

	if h > 0 && !s.Cfg.DisableFlowReuse {
		// Pass 1: one flow per previous-hop vertex.
		for _, u := range s.G.Hop(h - 1) {
			if sent >= stop() {
				break
			}
			if s.IsDst(u) {
				continue
			}
			for _, f := range s.FlowsOf(u) {
				if tryFlow(f) {
					break
				}
			}
		}
		flush()
		// Pass 2: remaining previously used flows. A flow probed in pass
		// 1 is skipped here when it drew a reply (its landing is known)
		// and re-probed when it did not, as in the serial loop; the pass
		// boundary flush above makes that distinction observable.
		for _, u := range s.G.Hop(h - 1) {
			if s.IsDst(u) {
				continue
			}
			for _, f := range s.FlowsOf(u) {
				if sent+len(pending) >= stop() {
					break
				}
				tryFlow(f)
			}
		}
		flush()
	}
	// Pass 3: fresh flows.
	for sent+len(pending) < stop() {
		f, ok := s.FreshFlow()
		if !ok {
			break
		}
		tryFlow(f)
	}
	flush()
	if !gotReply && sent > 0 {
		star := s.G.AddVertex(h, topo.StarAddr)
		s.AdoptStarFlows(h, star)
		if h > 0 {
			for _, u := range s.G.Hop(h - 1) {
				if !s.IsDst(u) {
					s.G.AddEdge(u, star)
				}
			}
		}
	}
}

// maxEdgeCompletionIters caps the edge-completion loop: probing can
// surface a vertex the stopping rule missed, which re-opens the pair, but
// an adversarial or lossy hop could keep that going indefinitely. A pair
// still changing when the cap strikes is recorded in the session's
// truncation counter (surfaced as Result.EdgeCompletionTruncated) so a
// silently incomplete pair is observable downstream.
const maxEdgeCompletionIters = 4

// completeEdges runs the deterministic edge-completion step for the hop
// pair (i, i+1) (Sec 2.3.1): forward probes from successor-less vertices
// at hop i, backward probes from predecessor-less vertices at hop i+1.
// Probing can (rarely) surface a vertex the stopping rule missed, so the
// step loops until stable.
func completeEdges(s *mda.Session, i int) {
	for iter := 0; iter < maxEdgeCompletionIters; iter++ {
		changed := false
		wi, wj := s.G.Width(i), s.G.Width(i+1)
		if wj <= wi {
			// Forward tracing for hop i vertices lacking successors.
			for _, u := range s.G.Hop(i) {
				if s.G.OutDegree(u) > 0 || s.IsDst(u) || s.G.V(u).Addr == topo.StarAddr {
					continue
				}
				for _, f := range s.FlowsOf(u) {
					if w, known := s.VertexAt(i+1, f); known {
						s.G.AddEdge(u, w)
						changed = true
						break
					}
					if w, ok := s.ProbeHop(i+1, f); ok {
						s.G.AddEdge(u, w)
						changed = true
						break
					}
				}
			}
		}
		if wj >= wi {
			// Backward tracing for hop i+1 vertices lacking predecessors.
			for _, w := range s.G.Hop(i + 1) {
				if s.G.InDegree(w) > 0 || s.G.V(w).Addr == topo.StarAddr {
					continue
				}
				for _, f := range s.FlowsOf(w) {
					if u, known := s.VertexAt(i, f); known {
						s.G.AddEdge(u, w)
						changed = true
						break
					}
					if u, ok := s.ProbeHop(i, f); ok {
						s.G.AddEdge(u, w)
						changed = true
						break
					}
				}
			}
		}
		if !changed {
			return
		}
	}
	// Falling out of the loop means the final iteration still made
	// progress: the pair was truncated, not stabilized.
	s.EdgeCompletionTruncs++
}

// meshingTest applies the Sec 2.3.2 test to hop pair (i, i+1), tracing
// from the hop with the greater number of vertices toward the other with
// ϕ flow identifiers per vertex. It reports whether meshing was detected.
func meshingTest(s *mda.Session, i, phi int) bool {
	wi, wj := s.G.Width(i), s.G.Width(i+1)
	forward := wi >= wj // trace from the wider hop; ties go forward
	fromHop, toHop := i, i+1
	if !forward {
		fromHop, toHop = i+1, i
	}
	for _, v := range s.G.Hop(fromHop) {
		if s.IsDst(v) || s.G.V(v).Addr == topo.StarAddr {
			continue
		}
		s.EnsureFlows(v, phi)
		flows := s.FlowsOf(v)
		if len(flows) > phi {
			flows = flows[:phi]
		}
		for _, f := range flows {
			w, ok := s.VertexAt(toHop, f)
			if !ok {
				w, ok = s.ProbeHop(toHop, f)
			}
			if ok {
				// A cached landing carries the same evidence as a fresh
				// probe: record the edge either way.
				if forward {
					s.G.AddEdge(v, w)
				} else {
					s.G.AddEdge(w, v)
				}
			}
		}
	}
	if forward {
		for _, v := range s.G.Hop(i) {
			if s.G.OutDegree(v) >= 2 {
				return true
			}
		}
	} else {
		for _, v := range s.G.Hop(i + 1) {
			if s.G.InDegree(v) >= 2 {
				return true
			}
		}
	}
	return false
}

// pairAsymmetric implements the non-uniformity detector (Sec 2.3.3): the
// hop pair shows width asymmetry if successor counts differ across hop i
// or predecessor counts differ across hop i+1. Star vertices are excluded:
// their edges are inferred, not measured. The check runs on every hop of
// the trace loop, so it scans degrees in place instead of materializing
// per-hop count slices.
func pairAsymmetric(g *topo.Graph, i int) bool {
	return degreesDiffer(g, i, false) || degreesDiffer(g, i+1, true)
}

// degreesDiffer reports whether hop h's non-star vertices disagree on
// out-degree (pred false) or in-degree (pred true), comparing each degree
// against the first one seen — allocation-free.
func degreesDiffer(g *topo.Graph, h int, pred bool) bool {
	first, have := 0, false
	for _, v := range g.Hop(h) {
		if g.V(v).Addr == topo.StarAddr {
			continue
		}
		d := g.OutDegree(v)
		if pred {
			d = g.InDegree(v)
		}
		if !have {
			first, have = d, true
		} else if d != first {
			return true
		}
	}
	return false
}

func allStars(s *mda.Session, h int) bool {
	vs := s.G.Hop(h)
	if len(vs) == 0 {
		return false
	}
	for _, v := range vs {
		if s.G.V(v).Addr != topo.StarAddr {
			return false
		}
	}
	return true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
