package mdalite

import (
	"math"
	"testing"

	"mmlpt/internal/fakeroute"
	"mmlpt/internal/mda"
	"mmlpt/internal/packet"
	"mmlpt/internal/probe"
	"mmlpt/internal/topo"
)

// Empirical validation of Eq. (1): on a sparsely meshed diamond where only
// one vertex has out-degree 2, the meshing test with ϕ flow identifiers
// per vertex must miss the meshing with probability 1/2^(ϕ-1) — 0.5 at
// ϕ=2, 0.125 at ϕ=4. This is the Fakeroute methodology of Sec 3 applied
// to the MDA-Lite's own probabilistic claim.

// sparseMeshDiamond: two equal 2-vertex hops, one-to-one plus one cross
// edge (a single out-degree-2 vertex).
func sparseMeshDiamond(alloc *fakeroute.AddrAllocator, dst packet.Addr) *topo.Graph {
	return fakeroute.NewPathBuilder(alloc).Spread(2).CrossLink(1).Converge(1).End(dst)
}

// measureMeshDetection runs the MDA-Lite repeatedly and returns the
// fraction of runs that detected the meshing (switched to the MDA).
func measureMeshDetection(t *testing.T, phi, runs int, seedBase uint64) float64 {
	t.Helper()
	detected := 0
	for i := 0; i < runs; i++ {
		seed := seedBase + uint64(i)*2654435761
		net, _ := fakeroute.BuildScenario(seed, testSrc, testDst, sparseMeshDiamond)
		p := probe.NewSimProber(net, testSrc, testDst)
		p.Retries = 0
		res := Trace(p, mda.Config{Seed: seed}, phi)
		if res.SwitchedToMDA {
			detected++
		}
	}
	return float64(detected) / float64(runs)
}

func TestEq1MissProbabilityPhi2(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const runs = 400
	// The detection probability compounds two stages, both quantified by
	// the paper's model:
	//
	//  1. The sparse mesh makes the next hop non-uniform (reach
	//     probabilities 3/4 and 1/4), so hop-level discovery misses the
	//     rare vertex with probability ≈ (3/4)^(n1-1)·adjustments ≈ 0.18;
	//     with only one vertex seen, no meshing test runs and the
	//     asymmetry is invisible — the Sec 2.3.3 "risks failing" caveat.
	//  2. Given both vertices found, Eq. (1) bounds the meshing-test miss
	//     at 1/2^(phi-1); discovery-time edge observations push the
	//     effective detection above the test's own floor.
	//
	// So phi=2 should land around 0.82·[0.5..0.9] and phi=4 around
	// 0.82·[0.875..0.95], with phi=4 strictly better.
	got := measureMeshDetection(t, 2, runs, 100)
	if got < 0.38 || got > 0.82 {
		t.Fatalf("phi=2 detection rate %.3f outside [0.38, 0.82]", got)
	}
	got4 := measureMeshDetection(t, 4, runs, 900)
	if got4 <= got {
		t.Fatalf("phi=4 rate %.3f not above phi=2 rate %.3f", got4, got)
	}
	if got4 < 0.62 || got4 > 0.88 {
		t.Fatalf("phi=4 detection rate %.3f outside [0.62, 0.88]", got4)
	}
}

// TestEq1PureMeshingTest isolates the meshing test itself (without the
// rest of the trace stumbling on the edge) by evaluating Eq. (1)'s
// prediction against the closed form for several degree profiles.
func TestEq1ClosedForm(t *testing.T) {
	cases := []struct {
		degrees []int
		phi     int
		want    float64
	}{
		{[]int{2, 1}, 2, 0.5},
		{[]int{2, 1}, 3, 0.25},
		{[]int{2, 2}, 2, 0.25},
		{[]int{3, 1, 1}, 2, 1.0 / 3},
		{[]int{2, 2, 2}, 4, math.Pow(0.5, 9)},
		{[]int{1, 1, 1}, 2, 1},
	}
	for _, c := range cases {
		got := fakeroute.MeshingMissProb(c.degrees, c.phi)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("MeshingMissProb(%v, %d) = %v, want %v", c.degrees, c.phi, got, c.want)
		}
	}
}

// TestHopFailureProbMatchesMeasured: the hop-level stopping rule's failure
// probability (the MDA-Lite's vertex-discovery bound) matches the DP
// prediction on a width-4 hop.
func TestHopFailureProbMatchesMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	nk := mda.Default95(16)
	predicted := fakeroute.HopFailureProb(4, nk)
	const runs = 600
	misses := 0
	for i := 0; i < runs; i++ {
		seed := 5000 + uint64(i)*7919
		net, path := fakeroute.BuildScenario(seed, testSrc, testDst, fakeroute.Fig1UnmeshedDiamond)
		p := probe.NewSimProber(net, testSrc, testDst)
		p.Retries = 0
		res := Trace(p, mda.Config{Seed: seed}, 2)
		// Count hop-1 vertex discovery failures (width 4 in truth).
		if res.Graph.Width(1) < path.Graph.Width(1) {
			misses++
		}
	}
	got := float64(misses) / runs
	// Standard error ≈ sqrt(p(1-p)/n) ≈ 0.008; allow 4 sigma plus the
	// slack that edge completion and the meshing test add extra chances
	// to find stragglers (got <= predicted).
	if got > predicted+0.035 {
		t.Fatalf("hop miss rate %.4f far above predicted %.4f", got, predicted)
	}
}
