package mdalite

import (
	"testing"

	"mmlpt/internal/fakeroute"
	"mmlpt/internal/mda"
	"mmlpt/internal/packet"
	"mmlpt/internal/probe"
	"mmlpt/internal/topo"
)

var (
	testSrc = packet.MustParseAddr("192.0.2.1")
	testDst = packet.MustParseAddr("198.51.100.77")
)

func liteTrace(t *testing.T, seed uint64, phi int, build func(*fakeroute.AddrAllocator, packet.Addr) *topo.Graph) (*mda.Result, *topo.Graph) {
	t.Helper()
	net, path := fakeroute.BuildScenario(seed, testSrc, testDst, build)
	p := probe.NewSimProber(net, testSrc, testDst)
	res := Trace(p, mda.Config{Seed: seed}, phi)
	return res, path.Graph
}

func TestLiteSimplestDiamond(t *testing.T) {
	res, truth := liteTrace(t, 1, 2, fakeroute.SimplestDiamond)
	if !res.ReachedDst {
		t.Fatal("destination not reached")
	}
	v, e := topo.SubgraphCoverage(res.Graph, truth)
	if v != 1 || e != 1 {
		t.Fatalf("coverage v=%.2f e=%.2f\n%s", v, e, res.Graph)
	}
	if res.SwitchedToMDA {
		t.Fatal("unexpected switch to MDA on a uniform unmeshed diamond")
	}
}

func TestLiteWideDiamondNoSwitch(t *testing.T) {
	res, truth := liteTrace(t, 2, 2, fakeroute.MaxLength2Diamond)
	v, e := topo.SubgraphCoverage(res.Graph, truth)
	if v != 1 || e != 1 {
		t.Fatalf("coverage v=%.2f e=%.2f", v, e)
	}
	if res.SwitchedToMDA {
		t.Fatal("max-length-2 diamond must not trigger a switch")
	}
}

func TestLiteSymmetricDiamondNoSwitch(t *testing.T) {
	res, truth := liteTrace(t, 3, 2, fakeroute.SymmetricDiamond)
	v, e := topo.SubgraphCoverage(res.Graph, truth)
	if v != 1 || e != 1 {
		t.Fatalf("coverage v=%.2f e=%.2f\ntruth:\n%s\ngot:\n%s", v, e, truth, res.Graph)
	}
	if res.SwitchedToMDA {
		t.Fatal("symmetric unmeshed diamond must not trigger a switch")
	}
}

func TestLiteMeshedDiamondSwitches(t *testing.T) {
	// The Fig 1 meshed diamond (4 vertices fully linked to 2) must be
	// detected as meshed with overwhelming probability: the miss
	// probability with phi=2 is (1/2)^4 per Eq. (1) on the forward trace,
	// and the seeded run below detects it. The post-switch MDA is run
	// with the tighter Veitch table so its own stochastic failure
	// probability (≈4·2⁻⁹) cannot flake the full-coverage assertion.
	net, path := fakeroute.BuildScenario(4, testSrc, testDst, fakeroute.Fig1MeshedDiamond)
	p := probe.NewSimProber(net, testSrc, testDst)
	res := Trace(p, mda.Config{Seed: 4, Stop: mda.VeitchTable1(64)}, 2)
	truth := path.Graph
	if !res.SwitchedToMDA {
		t.Fatal("meshing not detected on Fig 1 meshed diamond")
	}
	v, e := topo.SubgraphCoverage(res.Graph, truth)
	if v != 1 || e != 1 {
		t.Fatalf("post-switch coverage v=%.2f e=%.2f", v, e)
	}
}

func TestLiteMeshed48Switches(t *testing.T) {
	res, truth := liteTrace(t, 5, 2, fakeroute.MeshedDiamond48)
	if !res.SwitchedToMDA {
		t.Fatal("meshing not detected on the 48-wide meshed diamond")
	}
	v, _ := topo.SubgraphCoverage(res.Graph, truth)
	if v < 0.98 {
		t.Fatalf("post-switch vertex coverage %.3f too low", v)
	}
}

func TestLiteAsymmetricSwitches(t *testing.T) {
	res, truth := liteTrace(t, 6, 2, fakeroute.AsymmetricDiamond)
	if !res.SwitchedToMDA {
		t.Fatal("width asymmetry not detected")
	}
	v, _ := topo.SubgraphCoverage(res.Graph, truth)
	if v < 0.95 {
		t.Fatalf("post-switch vertex coverage %.3f too low", v)
	}
}

func TestLiteCheaperThanMDAOnUniformDiamonds(t *testing.T) {
	// Sec 2.4.1: on max-length-2 and symmetric diamonds the MDA-Lite
	// economizes roughly 40% of the MDA's probes. Require any saving on
	// every seed and substantial average saving.
	for _, build := range []func(*fakeroute.AddrAllocator, packet.Addr) *topo.Graph{
		fakeroute.MaxLength2Diamond, fakeroute.SymmetricDiamond,
	} {
		var liteTotal, mdaTotal uint64
		for seed := uint64(0); seed < 10; seed++ {
			netL, _ := fakeroute.BuildScenario(seed, testSrc, testDst, build)
			pL := probe.NewSimProber(netL, testSrc, testDst)
			pL.Retries = 0
			resL := Trace(pL, mda.Config{Seed: seed}, 2)
			if resL.SwitchedToMDA {
				t.Fatalf("seed %d: unexpected switch", seed)
			}
			netM, _ := fakeroute.BuildScenario(seed, testSrc, testDst, build)
			pM := probe.NewSimProber(netM, testSrc, testDst)
			pM.Retries = 0
			resM := mda.Trace(pM, mda.Config{Seed: seed + 1000})
			liteTotal += resL.Probes
			mdaTotal += resM.Probes
		}
		if liteTotal >= mdaTotal {
			t.Fatalf("MDA-Lite used %d probes, MDA %d: no saving", liteTotal, mdaTotal)
		}
		saving := 1 - float64(liteTotal)/float64(mdaTotal)
		if saving < 0.15 {
			t.Errorf("probe saving %.2f below 15%%", saving)
		}
	}
}

func TestLitePhi4CostsMoreThanPhi2(t *testing.T) {
	// phi only matters when a meshing test runs (adjacent multi-vertex
	// hops); the symmetric diamond has them.
	var p2, p4 uint64
	for seed := uint64(0); seed < 8; seed++ {
		net2, _ := fakeroute.BuildScenario(seed, testSrc, testDst, fakeroute.SymmetricDiamond)
		pr2 := probe.NewSimProber(net2, testSrc, testDst)
		Trace(pr2, mda.Config{Seed: seed}, 2)
		p2 += probe.TotalSent(pr2)
		net4, _ := fakeroute.BuildScenario(seed, testSrc, testDst, fakeroute.SymmetricDiamond)
		pr4 := probe.NewSimProber(net4, testSrc, testDst)
		Trace(pr4, mda.Config{Seed: seed}, 4)
		p4 += probe.TotalSent(pr4)
	}
	if p4 <= p2 {
		t.Fatalf("phi=4 sent %d, phi=2 sent %d: expected more probing at phi=4", p4, p2)
	}
}

func TestMeshingMissProbEq1(t *testing.T) {
	// Eq. (1): V = two vertices with 2 successors each, phi = 2:
	// miss probability = (1/2)·(1/2) = 0.25.
	got := fakeroute.MeshingMissProb([]int{2, 2}, 2)
	if got != 0.25 {
		t.Fatalf("Eq.1 = %v, want 0.25", got)
	}
	if got := fakeroute.MeshingMissProb([]int{2, 2}, 3); got != 0.0625 {
		t.Fatalf("Eq.1 phi=3 = %v, want 0.0625", got)
	}
	if got := fakeroute.MeshingMissProb([]int{1, 1}, 2); got != 1 {
		t.Fatalf("Eq.1 no meshing = %v, want 1", got)
	}
}
