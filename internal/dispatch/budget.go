package dispatch

import (
	"math"
	"sync"
	"time"

	"mmlpt/internal/packet"
)

// Budget is the fleet-wide probe-rate ceiling: one token bucket per
// destination /24 prefix, refilled at Rate tokens (probes) per second
// up to Burst deep. The coordinator owns the only instance, and every
// runner acquires tokens over HTTP before sending, so the aggregate
// probe rate toward any prefix never exceeds the single-machine cadence
// no matter how many runners the fleet has — the Sec 2 router-load
// concern that motivates budgeting a survey fleet at all.
//
// Grants are partial: Take hands out what the bucket holds (never more
// than asked) and otherwise names the wait until at least one token
// accrues. Budgeting shapes only probe *timing*, never content or
// order, so it cannot affect the bytes a trace produces.
type Budget struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	now     func() time.Time
	buckets map[packet.Addr]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewBudget returns a budget granting rate probes/second per prefix
// with the given burst depth. Burst below 1 is raised to 1 (a bucket
// that can never hold a whole token would deadlock its prefix).
func NewBudget(rate, burst float64) *Budget {
	if burst < 1 {
		burst = 1
	}
	return &Budget{rate: rate, burst: burst, now: time.Now, buckets: make(map[packet.Addr]*bucket)}
}

// Take requests want tokens for the prefix. It returns how many were
// granted (possibly zero) and, when short, how long until at least one
// more token accrues. Take never blocks — pacing is the caller's job —
// and never grants more than asked.
func (b *Budget) Take(prefix packet.Addr, want int) (granted int, wait time.Duration) {
	if want <= 0 {
		return 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	bk := b.buckets[prefix]
	if bk == nil {
		bk = &bucket{tokens: b.burst, last: now}
		b.buckets[prefix] = bk
	}
	if dt := now.Sub(bk.last).Seconds(); dt > 0 {
		bk.tokens = math.Min(b.burst, bk.tokens+dt*b.rate)
	}
	bk.last = now
	granted = int(bk.tokens)
	if granted > want {
		granted = want
	}
	bk.tokens -= float64(granted)
	if granted < want && b.rate > 0 {
		// A short grant leaves a sub-token fraction behind; name the time
		// until it tops up to one whole token.
		need := 1 - bk.tokens
		wait = time.Duration(need / b.rate * float64(time.Second))
		if wait <= 0 {
			wait = time.Millisecond
		}
	}
	return granted, wait
}
