// Package dispatch is the distributed survey control plane: a
// coordinator that shards a survey's deterministic job list into
// contiguous work units and hands them to runner processes over HTTP,
// with lease-based claims, per-unit record shipping, retry on runner
// death, and a fleet-wide probe-rate budget per destination prefix.
//
// In the layering, dispatch sits above internal/survey (each claimed
// unit is a span-scoped survey.Run), internal/experiments (coordinator
// and runners derive the identical survey plan from one Spec via
// PlanSurvey), internal/traceio (shard files and the manifest persist
// through the same atomic-write primitives as checkpoints) and
// internal/atlas (shipped shards fold into one atlas whose snapshot is
// written through the streaming canonical merge). cmd/surveyd hosts the
// Coordinator; cmd/survey -join hosts the Runner.
//
// The correctness contract is byte determinism: because the job list,
// per-pair seeds and record encoding are deterministic, every work unit
// produces the same record bytes no matter which runner traces it, or
// how many times it is retried after a lease expires. Units concatenate
// in span order into the exact JSONL stream a single-machine run
// writes, and the atlas's canonical merge makes the snapshot
// independent of shard arrival order — so a fleet of N runners, with
// arbitrary claim interleavings and mid-survey crashes, yields outputs
// byte-identical to `cmd/survey` on one machine.
//
// Work units move through a lease state machine:
//
//	unclaimed ──claim──▶ leased ──ship──▶ shipped ──merge──▶ merged
//	    ▲                  │
//	    └──── TTL expiry ──┘
//
// A lease is held by renewal heartbeats; a runner that dies (or stalls
// past the TTL) loses the lease and the unit returns to unclaimed for
// reassignment. Ships are accepted only from the current leaseholder,
// so a late shipment from a presumed-dead runner cannot race the
// reassigned unit — the bytes would be identical either way, but
// ownership stays unambiguous.
package dispatch

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"mmlpt/internal/experiments"
	"mmlpt/internal/packet"
	"mmlpt/internal/survey"
)

// Spec is the survey specification a coordinator publishes to its
// runners inside every claim: everything a runner needs to derive the
// identical survey plan (universe, job list, run configuration) the
// coordinator sharded.
type Spec struct {
	// Level is the survey level, "ip" or "router".
	Level string `json:"level"`
	// Pairs, Seed, Phi, Rounds parameterize the survey exactly as the
	// cmd/survey flags of the same names do.
	Pairs  int    `json:"pairs"`
	Seed   uint64 `json:"seed"`
	Phi    int    `json:"phi,omitempty"`
	Rounds int    `json:"rounds,omitempty"`
	// OptionsHash is survey.Fingerprint of the derived plan. Runners
	// recompute it from their own binary's PlanSurvey and refuse a
	// mismatch: a coordinator and runner built from diverged trees would
	// otherwise silently splice two experiments' records together.
	OptionsHash uint64 `json:"options_hash"`
	// BudgetRate is the fleet-wide probe ceiling per destination /24
	// prefix, in probes per second (0 = unmetered); BudgetBurst is the
	// token-bucket depth. Runners acquire probe tokens from the
	// coordinator before sending, so N runners collectively never exceed
	// the cadence one machine would have kept toward any network.
	BudgetRate  float64 `json:"budget_rate,omitempty"`
	BudgetBurst float64 `json:"budget_burst,omitempty"`
}

// plan derives the survey plan for the spec. Workers is the tracing
// concurrency of whichever process is asking; it never affects output
// bytes.
func (s Spec) plan(workers int) (*survey.Universe, survey.RunConfig, error) {
	return experiments.PlanSurvey(s.Level, experiments.SurveyConfig{
		Pairs: s.Pairs, Seed: s.Seed, Phi: s.Phi, Rounds: s.Rounds, Workers: workers,
	})
}

// Prefix24 maps a destination address to its /24 budget prefix, the
// granularity the fleet probe budget is accounted at.
func Prefix24(a packet.Addr) packet.Addr { return a &^ 0xff }

// UnitInfo describes one work unit inside the claim/renew/ship
// protocol: jobs [Start, Start+Count) of the survey's job list.
type UnitInfo struct {
	ID    int `json:"id"`
	Start int `json:"start"`
	Count int `json:"count"`
}

// Claim statuses.
const (
	// StatusUnit: the response carries a leased work unit.
	StatusUnit = "unit"
	// StatusWait: every unit is leased or shipped but the survey is not
	// finished; poll again shortly (a lease may yet expire).
	StatusWait = "wait"
	// StatusDone: every unit has shipped; the runner should exit.
	StatusDone = "done"
)

type claimRequest struct {
	Runner string `json:"runner"`
}

type claimResponse struct {
	Status  string    `json:"status"`
	Unit    *UnitInfo `json:"unit,omitempty"`
	LeaseID uint64    `json:"lease_id,omitempty"`
	// TTLMillis is the lease duration; the runner must renew well within
	// it (it heartbeats at a third of the TTL).
	TTLMillis int64 `json:"ttl_ms,omitempty"`
	Spec      *Spec `json:"spec,omitempty"`
}

type renewRequest struct {
	Runner  string `json:"runner"`
	Unit    int    `json:"unit"`
	LeaseID uint64 `json:"lease_id"`
}

type renewResponse struct {
	TTLMillis int64 `json:"ttl_ms"`
}

type budgetRequest struct {
	Runner string `json:"runner"`
	// Prefix is the dotted-quad /24 prefix the probes target.
	Prefix string `json:"prefix"`
	Want   int    `json:"want"`
}

type budgetResponse struct {
	Granted int `json:"granted"`
	// WaitMillis hints how long to sleep before asking again when
	// Granted is zero (or short).
	WaitMillis int64 `json:"wait_ms,omitempty"`
}

type shipResponse struct {
	Status  string `json:"status"`
	Records int    `json:"records,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// StatusRunner is one runner's row of a status report.
type StatusRunner struct {
	ID       string `json:"id"`
	Units    int    `json:"units"`
	Records  int    `json:"records"`
	IdleMS   int64  `json:"idle_ms"`
	LastSeen string `json:"last_seen"`
}

// Status is the coordinator's /v1/status report.
type Status struct {
	Units         int            `json:"units"`
	Unclaimed     int            `json:"unclaimed"`
	Leased        int            `json:"leased"`
	Shipped       int            `json:"shipped"`
	Merged        int            `json:"merged"`
	Records       int            `json:"records"`
	ExpiredLeases int            `json:"expired_leases"`
	Done          bool           `json:"done"`
	Runners       []StatusRunner `json:"runners,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeJSON reads a small JSON request body.
func decodeJSON(r *http.Request, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
