package dispatch

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mmlpt/internal/packet"
	"mmlpt/internal/probe"
	"mmlpt/internal/survey"
	"mmlpt/internal/traceio"
)

// RunnerConfig configures one fleet runner.
type RunnerConfig struct {
	// Coordinator is the coordinator base URL, e.g. http://10.0.0.1:8460.
	Coordinator string
	// ID names this runner in leases and status reports. Required.
	ID string
	// Workers is the tracing concurrency within a claimed unit (0 =
	// GOMAXPROCS). Output bytes are identical for every value.
	Workers int
	// Poll is how long to sleep when the coordinator says "wait"
	// (default 500ms).
	Poll time.Duration
	// MaxUnits, when positive, exits after that many units ship — used
	// by tests and for drain-and-replace rollouts.
	MaxUnits int
	// Logf, when non-nil, receives runner events.
	Logf func(format string, args ...any)
}

// errLeaseLost marks a unit whose lease expired under us (coordinator
// reassigned it); the runner abandons the unit and claims the next.
var errLeaseLost = errors.New("dispatch: lease lost")

// bufSink collects a unit's records in memory using the same per-record
// encoder as the JSONL file sink, so shipped bytes equal what a
// single-machine -out file would hold for the span.
type bufSink struct{ buf *bytes.Buffer }

func (s bufSink) Emit(rec *traceio.SurveyRecord) error { return rec.WriteJSONL(s.buf) }
func (s bufSink) Close() error                         { return nil }

// httpError is a non-200 coordinator response.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string {
	return fmt.Sprintf("coordinator returned %d: %s", e.status, e.msg)
}

// runner is the client side of the fleet protocol.
type runner struct {
	cfg    RunnerConfig
	base   string
	client *http.Client
	logf   func(string, ...any)

	// Plan state, built from the first claim's Spec and reused: the plan
	// is a pure function of the Spec, so it never changes mid-survey.
	spec *Spec
	uni  *survey.Universe
	rc   survey.RunConfig

	budget *budgetClient
}

// RunRunner joins the coordinator's fleet and traces work units until
// the survey is done (or MaxUnits ship). It returns nil on a clean
// "done" from the coordinator and an error when the coordinator becomes
// unreachable or publishes an incompatible survey plan.
func RunRunner(cfg RunnerConfig) error {
	if cfg.ID == "" {
		return fmt.Errorf("dispatch: runner needs an id")
	}
	if cfg.Coordinator == "" {
		return fmt.Errorf("dispatch: runner needs a coordinator URL")
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 500 * time.Millisecond
	}
	r := &runner{
		cfg:    cfg,
		base:   strings.TrimRight(cfg.Coordinator, "/"),
		client: &http.Client{Timeout: 60 * time.Second},
		logf:   cfg.Logf,
	}
	if r.logf == nil {
		r.logf = func(string, ...any) {}
	}
	shipped := 0
	for {
		var resp claimResponse
		if err := r.postJSONRetry("/v1/claim", claimRequest{Runner: cfg.ID}, &resp); err != nil {
			return fmt.Errorf("dispatch: claiming work: %w", err)
		}
		switch resp.Status {
		case StatusDone:
			r.logf("runner %s: survey done after %d units", cfg.ID, shipped)
			return nil
		case StatusWait:
			time.Sleep(cfg.Poll)
			continue
		case StatusUnit:
			// fall through
		default:
			return fmt.Errorf("dispatch: unknown claim status %q", resp.Status)
		}
		if resp.Unit == nil || resp.Spec == nil {
			return fmt.Errorf("dispatch: claim response missing unit or spec")
		}
		if err := r.adoptSpec(resp.Spec); err != nil {
			return err
		}
		err := r.traceUnit(*resp.Unit, resp.LeaseID, time.Duration(resp.TTLMillis)*time.Millisecond)
		if errors.Is(err, errLeaseLost) {
			r.logf("runner %s: lost lease on unit %d; moving on", cfg.ID, resp.Unit.ID)
			continue
		}
		if err != nil {
			return err
		}
		shipped++
		if cfg.MaxUnits > 0 && shipped >= cfg.MaxUnits {
			r.logf("runner %s: reached max units (%d); exiting", cfg.ID, cfg.MaxUnits)
			return nil
		}
	}
}

// adoptSpec derives the survey plan from the coordinator's Spec on the
// first claim and pins it. The fingerprint check catches a coordinator
// and runner built from diverged trees before any probe is sent —
// splicing two plans' records together would corrupt the survey
// silently.
func (r *runner) adoptSpec(spec *Spec) error {
	if r.spec != nil {
		if r.spec.OptionsHash != spec.OptionsHash {
			return fmt.Errorf("dispatch: coordinator changed spec mid-survey (hash %x -> %x)", r.spec.OptionsHash, spec.OptionsHash)
		}
		return nil
	}
	u, rc, err := spec.plan(r.cfg.Workers)
	if err != nil {
		return fmt.Errorf("dispatch: deriving plan: %w", err)
	}
	if got := survey.Fingerprint(u, rc); got != spec.OptionsHash {
		return fmt.Errorf("dispatch: plan fingerprint mismatch: coordinator %x, this binary %x — diverged builds?", spec.OptionsHash, got)
	}
	r.spec = spec
	r.uni = u
	r.rc = rc
	if spec.BudgetRate > 0 {
		r.budget = &budgetClient{r: r, avail: make(map[packet.Addr]int)}
	}
	r.logf("runner %s: adopted survey plan %x (%d jobs, level %s)",
		r.cfg.ID, spec.OptionsHash, survey.JobCount(u, rc), spec.Level)
	return nil
}

// traceUnit traces one claimed span, heartbeating the lease throughout,
// then ships the records. The unit's records are buffered in memory:
// units are small by design so a retry re-traces cheaply.
func (r *runner) traceUnit(u UnitInfo, leaseID uint64, ttl time.Duration) error {
	var lost atomic.Bool
	stop := make(chan struct{})
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		interval := ttl / 3
		if interval < 10*time.Millisecond {
			interval = 10 * time.Millisecond
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				var resp renewResponse
				err := r.postJSON("/v1/renew", renewRequest{Runner: r.cfg.ID, Unit: u.ID, LeaseID: leaseID}, &resp)
				var he *httpError
				if errors.As(err, &he) && he.status == http.StatusGone {
					lost.Store(true)
					return
				}
				// Transient failures ride: the lease survives until the
				// TTL, which spans several heartbeats.
			}
		}
	}()

	var buf bytes.Buffer
	rc := r.rc
	rc.Workers = r.cfg.Workers
	rc.SpanStart = u.Start
	rc.SpanCount = u.Count
	rc.Sinks = []survey.Sink{bufSink{&buf}}
	if r.budget != nil {
		rc.WrapProber = func(pair survey.Pair, p probe.Prober) probe.Prober {
			return &meteredProber{Prober: p, prefix: Prefix24(pair.Dst), budget: r.budget}
		}
	}
	_, err := survey.Run(r.uni, rc)
	close(stop)
	hb.Wait()
	if err != nil {
		return fmt.Errorf("dispatch: tracing unit %d: %w", u.ID, err)
	}
	if lost.Load() {
		return errLeaseLost
	}
	return r.ship(u, leaseID, buf.Bytes())
}

// ship POSTs the unit's record bytes. A 410 means the lease expired
// while (or just before) shipping — the unit was reassigned and the
// re-trace will produce identical bytes, so the runner just moves on.
func (r *runner) ship(u UnitInfo, leaseID uint64, body []byte) error {
	target := fmt.Sprintf("%s/v1/ship?unit=%d&lease=%d&runner=%s",
		r.base, u.ID, leaseID, url.QueryEscape(r.cfg.ID))
	var last error
	for attempt := 0; attempt < 4; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * 200 * time.Millisecond)
		}
		resp, err := r.client.Post(target, "application/x-ndjson", bytes.NewReader(body))
		if err != nil {
			last = err
			continue
		}
		he := drainError(resp)
		if he == nil {
			r.logf("runner %s: shipped unit %d (%d bytes)", r.cfg.ID, u.ID, len(body))
			return nil
		}
		if he.status == http.StatusGone {
			return errLeaseLost
		}
		last = he
		if he.status == http.StatusBadRequest {
			// Validation failures will not improve with retries.
			break
		}
	}
	return fmt.Errorf("dispatch: shipping unit %d: %w", u.ID, last)
}

// postJSON POSTs a JSON request and decodes a 200 response into out.
// Non-200 responses come back as *httpError.
func (r *runner) postJSON(path string, req, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := r.client.Post(r.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	if he := drainErrorKeep(resp, out); he != nil {
		return he
	}
	return nil
}

// postJSONRetry wraps postJSON with backoff for transient transport
// errors (coordinator restarting, socket hiccups). HTTP-level errors
// are returned immediately — they will not improve with retries.
func (r *runner) postJSONRetry(path string, req, out any) error {
	var last error
	for attempt := 0; attempt < 5; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * 200 * time.Millisecond)
		}
		err := r.postJSON(path, req, out)
		var he *httpError
		if err == nil || errors.As(err, &he) {
			return err
		}
		last = err
	}
	return last
}

// drainError consumes a response and returns nil on 200, *httpError
// otherwise.
func drainError(resp *http.Response) *httpError {
	return drainErrorKeep(resp, nil)
}

// drainErrorKeep decodes a 200 body into out (when non-nil); non-200
// bodies decode into the error message.
func drainErrorKeep(resp *http.Response, out any) *httpError {
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode == http.StatusOK {
		if out != nil {
			if err := json.Unmarshal(body, out); err != nil {
				return &httpError{status: resp.StatusCode, msg: fmt.Sprintf("malformed response: %v", err)}
			}
		}
		return nil
	}
	var er errorResponse
	_ = json.Unmarshal(body, &er)
	if er.Error == "" {
		er.Error = strings.TrimSpace(string(body))
	}
	return &httpError{status: resp.StatusCode, msg: er.Error}
}

// budgetChunk is the minimum token request: claiming tokens in chunks
// keeps the budget endpoint off the per-probe hot path.
const budgetChunk = 64

// budgetErrLimit is how many consecutive budget-endpoint failures a
// runner tolerates before proceeding unmetered: if the coordinator is
// gone the traced unit is unshippable anyway, and stalling probes
// forever would just hide that.
const budgetErrLimit = 20

// budgetClient acquires probe tokens from the coordinator, caching
// whole grants per prefix so one HTTP round trip covers many probes.
type budgetClient struct {
	r  *runner
	mu sync.Mutex
	// avail holds granted-but-unspent tokens per /24 prefix.
	avail map[packet.Addr]int
}

// acquire blocks until n tokens for the prefix are held, sleeping per
// the coordinator's wait hints. Metering shapes only timing: once
// acquire returns, the probes proceed exactly as they would unmetered.
func (b *budgetClient) acquire(prefix packet.Addr, n int) {
	failures := 0
	for n > 0 {
		b.mu.Lock()
		if a := b.avail[prefix]; a > 0 {
			take := a
			if take > n {
				take = n
			}
			b.avail[prefix] = a - take
			n -= take
			b.mu.Unlock()
			continue
		}
		b.mu.Unlock()
		want := n
		if want < budgetChunk {
			want = budgetChunk
		}
		var resp budgetResponse
		err := b.r.postJSON("/v1/budget", budgetRequest{
			Runner: b.r.cfg.ID, Prefix: prefix.String(), Want: want,
		}, &resp)
		if err != nil {
			failures++
			if failures >= budgetErrLimit {
				b.r.logf("runner %s: budget endpoint unreachable (%v); proceeding unmetered", b.r.cfg.ID, err)
				return
			}
			time.Sleep(200 * time.Millisecond)
			continue
		}
		failures = 0
		if resp.Granted > 0 {
			b.mu.Lock()
			b.avail[prefix] += resp.Granted
			b.mu.Unlock()
			continue
		}
		wait := time.Duration(resp.WaitMillis) * time.Millisecond
		if wait <= 0 {
			wait = 5 * time.Millisecond
		}
		if wait > 2*time.Second {
			wait = 2 * time.Second
		}
		time.Sleep(wait)
	}
}

// meteredProber charges every probe against the fleet budget before
// forwarding it. Trace probes (Probe/ProbeBatch) target the pair's
// destination and charge its /24; echo probes target arbitrary
// addresses (alias resolution) and charge each target's own /24.
// Metering counts requested probes; per-probe retries inside the
// prober ride the same grant — a deliberate approximation that keeps
// the budget check off the retry path.
type meteredProber struct {
	probe.Prober
	prefix packet.Addr
	budget *budgetClient
}

func (m *meteredProber) Probe(flowID uint16, ttl int) *packet.Reply {
	m.budget.acquire(m.prefix, 1)
	return m.Prober.Probe(flowID, ttl)
}

func (m *meteredProber) ProbeBatch(specs []probe.Spec) []*packet.Reply {
	if len(specs) > 0 {
		m.budget.acquire(m.prefix, len(specs))
	}
	return m.Prober.ProbeBatch(specs)
}

func (m *meteredProber) Echo(addr packet.Addr, seq uint16) *packet.Reply {
	m.budget.acquire(Prefix24(addr), 1)
	return m.Prober.Echo(addr, seq)
}

func (m *meteredProber) EchoBatch(specs []probe.EchoSpec) []*packet.Reply {
	perPrefix := make(map[packet.Addr]int)
	for _, sp := range specs {
		perPrefix[Prefix24(sp.Addr)]++
	}
	for prefix, n := range perPrefix {
		m.budget.acquire(prefix, n)
	}
	return m.Prober.EchoBatch(specs)
}
