package dispatch

import (
	"testing"
	"time"

	"mmlpt/internal/packet"
)

// TestBudgetSlidingWindowCeiling simulates a 3-runner fleet hammering
// one destination prefix through the coordinator's budget on a fake
// clock: the total granted inside ANY sliding one-second window must
// never exceed rate + burst, no matter how the runners' requests
// interleave. This is the fleet-level guarantee — N runners together
// never probe a prefix faster than the configured ceiling.
func TestBudgetSlidingWindowCeiling(t *testing.T) {
	t.Parallel()
	const (
		rate  = 50.0
		burst = 10.0
	)
	b := NewBudget(rate, burst)
	clock := time.Unix(1000, 0)
	b.now = func() time.Time { return clock }

	prefix := Prefix24(packet.Addr(0x0a000017)) // 10.0.0.0/24

	type grant struct {
		at time.Time
		n  int
	}
	var grants []grant
	total := 0
	// Three runners take turns every 5ms of simulated time for 4s,
	// asking for staggered amounts so partial grants happen too.
	for step := 0; step < 800; step++ {
		clock = clock.Add(5 * time.Millisecond)
		for r := 0; r < 3; r++ {
			want := 1 + (step+r*3)%5
			g, _ := b.Take(prefix, want)
			if g > want {
				t.Fatalf("granted %d for want %d", g, want)
			}
			if g > 0 {
				grants = append(grants, grant{clock, g})
				total += g
			}
		}
	}

	for i := range grants {
		sum := 0
		for j := i; j < len(grants) && grants[j].at.Sub(grants[i].at) < time.Second; j++ {
			sum += grants[j].n
		}
		if float64(sum) > rate+burst {
			t.Fatalf("window starting at %v granted %d probes, ceiling is %v", grants[i].at, sum, rate+burst)
		}
	}
	// The ceiling must not starve the fleet either: 4 simulated seconds
	// at 50 pps should hand out roughly 200 tokens.
	if total < 150 {
		t.Fatalf("fleet got only %d probes over 4s at rate %v", total, rate)
	}
}

// TestBudgetPrefixesIndependent: exhausting one /24's bucket must not
// affect another's.
func TestBudgetPrefixesIndependent(t *testing.T) {
	t.Parallel()
	b := NewBudget(1, 4)
	clock := time.Unix(1000, 0)
	b.now = func() time.Time { return clock }

	a := Prefix24(packet.Addr(0x0a000001))
	c := Prefix24(packet.Addr(0x0a000101))
	if a == c {
		t.Fatal("test prefixes collide")
	}
	if g, _ := b.Take(a, 10); g != 4 {
		t.Fatalf("fresh bucket granted %d, want burst 4", g)
	}
	if g, _ := b.Take(a, 1); g != 0 {
		t.Fatalf("drained bucket granted %d, want 0", g)
	}
	if g, _ := b.Take(c, 4); g != 4 {
		t.Fatalf("independent prefix granted %d, want 4", g)
	}
}

// TestBudgetWaitHint: a short grant names a wait after which at least
// one token has accrued.
func TestBudgetWaitHint(t *testing.T) {
	t.Parallel()
	b := NewBudget(10, 2)
	clock := time.Unix(1000, 0)
	b.now = func() time.Time { return clock }

	prefix := Prefix24(packet.Addr(0x0a000001))
	g, _ := b.Take(prefix, 5)
	if g != 2 {
		t.Fatalf("granted %d, want burst 2", g)
	}
	_, wait := b.Take(prefix, 1)
	if wait <= 0 {
		t.Fatalf("empty bucket gave no wait hint")
	}
	clock = clock.Add(wait)
	if g, _ := b.Take(prefix, 1); g != 1 {
		t.Fatalf("after waiting %v the bucket granted %d, want 1", wait, g)
	}
}

// TestBudgetBurstFloor: a burst below one whole token would deadlock
// its prefix; NewBudget raises it.
func TestBudgetBurstFloor(t *testing.T) {
	t.Parallel()
	b := NewBudget(100, 0.25)
	prefix := Prefix24(packet.Addr(0x0a000001))
	if g, _ := b.Take(prefix, 1); g != 1 {
		t.Fatalf("burst floor: granted %d, want 1", g)
	}
}
