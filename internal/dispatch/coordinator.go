package dispatch

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"mmlpt/internal/atlas"
	"mmlpt/internal/obs"
	"mmlpt/internal/packet"
	"mmlpt/internal/survey"
	"mmlpt/internal/traceio"
)

// DefaultUnitSize is the jobs-per-work-unit default: small enough that
// a runner death wastes little work, large enough that claim/ship HTTP
// round trips amortize over real tracing.
const DefaultUnitSize = 64

// DefaultLeaseTTL is the lease duration when CoordinatorConfig.LeaseTTL
// is zero. Runners heartbeat at a third of the TTL.
const DefaultLeaseTTL = 30 * time.Second

// manifestName is the manifest file inside the coordinator work dir.
const manifestName = "manifest.json"

// CoordinatorConfig configures a survey coordinator.
type CoordinatorConfig struct {
	// Spec is the survey to run; OptionsHash is filled in by
	// NewCoordinator from the derived plan.
	Spec Spec
	// Dir is the coordinator work directory: per-unit shard files and
	// the manifest live here. Created if missing.
	Dir string
	// OutJSONL, when non-empty, is where the merged record log is
	// written after every unit ships — byte-identical to the -out file
	// of a single-machine run.
	OutJSONL string
	// AtlasPath, when non-empty, is where the merged atlas snapshot is
	// written — byte-identical to the -atlas snapshot of a
	// single-machine run.
	AtlasPath string
	// AtlasOptions tunes the atlas (shards, merge workers); output bytes
	// are identical for every value.
	AtlasOptions atlas.Options
	// UnitSize is the number of jobs per work unit (default
	// DefaultUnitSize).
	UnitSize int
	// LeaseTTL is how long a claim lives without renewal (default
	// DefaultLeaseTTL).
	LeaseTTL time.Duration
	// Resume restores shipped units from the manifest in Dir, so a
	// restarted coordinator re-traces only what never durably shipped.
	// A missing manifest degrades to a fresh survey.
	Resume bool
	// Fleet receives progress counters; one is created if nil.
	Fleet *obs.Fleet
	// Logf, when non-nil, receives control-plane events (leases granted,
	// expiries, ships, merge progress).
	Logf func(format string, args ...any)
}

// unit is one work unit moving through the lease state machine.
type unit struct {
	id, start, count int
	state            string
	runner           string
	leaseID          uint64
	expires          time.Time
	shard            string // file name within cfg.Dir, once shipped
	records          int
	attempts         int
}

// Coordinator shards a survey into work units and serves the fleet
// protocol over HTTP. Create with NewCoordinator, mount Handler on a
// server, and wait on Done; Err and Summary report the outcome.
type Coordinator struct {
	cfg    CoordinatorConfig
	spec   Spec
	ttl    time.Duration
	budget *Budget
	fleet  *obs.Fleet
	logf   func(string, ...any)

	// jobPairs maps job list position to universe pair index, for
	// validating shipped records against their span.
	jobPairs []int

	mu        sync.Mutex
	units     []*unit
	shipped   int
	merging   bool
	mergedAgg *survey.RecordAggregate
	err       error
	nextLease uint64

	done chan struct{}
}

// NewCoordinator derives the survey plan, shards it into units,
// prepares the work directory (resuming from its manifest when asked),
// and persists the initial manifest.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.UnitSize <= 0 {
		cfg.UnitSize = DefaultUnitSize
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	u, rc, err := cfg.Spec.plan(0)
	if err != nil {
		return nil, err
	}
	total := survey.JobCount(u, rc)
	if total == 0 {
		return nil, fmt.Errorf("dispatch: survey selects no jobs")
	}
	spec := cfg.Spec
	spec.OptionsHash = survey.Fingerprint(u, rc)
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg: cfg, spec: spec, ttl: cfg.LeaseTTL,
		jobPairs: survey.JobPairs(u, rc),
		fleet:    cfg.Fleet,
		logf:     cfg.Logf,
		done:     make(chan struct{}),
	}
	if c.logf == nil {
		c.logf = func(string, ...any) {}
	}
	if spec.BudgetRate > 0 {
		burst := spec.BudgetBurst
		if burst == 0 {
			burst = spec.BudgetRate
		}
		c.budget = NewBudget(spec.BudgetRate, burst)
	}
	for start := 0; start < total; start += cfg.UnitSize {
		count := cfg.UnitSize
		if start+count > total {
			count = total - start
		}
		c.units = append(c.units, &unit{
			id: len(c.units), start: start, count: count, state: traceio.UnitUnclaimed,
		})
	}
	if cfg.Resume {
		if err := c.restore(); err != nil {
			return nil, err
		}
	}
	if c.fleet == nil {
		c.fleet = obs.NewFleet(len(c.units))
	}
	if restored, records := c.restoredCounts(); restored > 0 {
		c.fleet.Restored(restored, records)
		c.logf("dispatch: resumed %d shipped units (%d records) from %s", restored, records, filepath.Join(cfg.Dir, manifestName))
	}
	if err := c.persistManifest(); err != nil {
		return nil, err
	}
	// A resumed survey may already be fully shipped: merge immediately.
	if c.shipped == len(c.units) {
		c.merging = true
		go c.merge()
	}
	return c, nil
}

// restore loads the manifest and marks units whose shard files are
// durably on disk as shipped. Leased units demote to unclaimed: their
// leases died with the previous coordinator process.
func (c *Coordinator) restore() error {
	m, err := traceio.ReadFleetManifest(filepath.Join(c.cfg.Dir, manifestName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	if err := m.Matches(c.spec.OptionsHash, len(c.jobPairs), c.cfg.UnitSize); err != nil {
		return err
	}
	if len(m.Units) != len(c.units) {
		return fmt.Errorf("dispatch: manifest lists %d units, this plan shards into %d", len(m.Units), len(c.units))
	}
	for i, mu := range m.Units {
		u := c.units[i]
		u.attempts = mu.Attempts
		if mu.State != traceio.UnitShipped && mu.State != traceio.UnitMerged {
			continue
		}
		path := filepath.Join(c.cfg.Dir, mu.Shard)
		if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
			c.logf("dispatch: unit %d was shipped but shard %s is gone; re-tracing", i, mu.Shard)
			continue
		}
		// Merged demotes to shipped: the merge re-runs over all shards
		// and rewrites its outputs atomically, so repeating it is safe
		// and simpler than proving the previous outputs complete.
		u.state = traceio.UnitShipped
		u.runner = mu.Runner
		u.shard = mu.Shard
		u.records = mu.Records
		c.shipped++
	}
	return nil
}

func (c *Coordinator) restoredCounts() (units, records int) {
	for _, u := range c.units {
		if u.state == traceio.UnitShipped {
			units++
			records += u.records
		}
	}
	return units, records
}

// persistManifest writes the manifest atomically. Callers must hold no
// lock or c.mu consistently; it reads unit state, so call it with c.mu
// held once the coordinator is serving.
func (c *Coordinator) persistManifest() error {
	m := &traceio.FleetManifest{
		OptionsHash: c.spec.OptionsHash, Seed: c.spec.Seed,
		Total: len(c.jobPairs), UnitSize: c.cfg.UnitSize,
	}
	for _, u := range c.units {
		m.Units = append(m.Units, traceio.FleetUnit{
			ID: u.id, Start: u.start, Count: u.count, State: u.state,
			Runner: u.runner, Shard: u.shard, Records: u.records, Attempts: u.attempts,
		})
	}
	return m.WriteAtomic(filepath.Join(c.cfg.Dir, manifestName))
}

// Done is closed once the final merge has finished (successfully or
// not); Err then reports the outcome.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Fleet exposes the progress tracker (the configured one, or the one
// NewCoordinator created).
func (c *Coordinator) Fleet() *obs.Fleet { return c.fleet }

// Err reports the merge outcome after Done is closed.
func (c *Coordinator) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Summary renders the merged record aggregate (available after Done).
func (c *Coordinator) Summary() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.mergedAgg == nil {
		return ""
	}
	return c.mergedAgg.Summary()
}

// Status reports unit and runner state for /v1/status and the progress
// line.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	var st Status
	st.Units = len(c.units)
	for _, u := range c.units {
		switch u.state {
		case traceio.UnitUnclaimed:
			st.Unclaimed++
		case traceio.UnitLeased:
			st.Leased++
		case traceio.UnitShipped:
			st.Shipped++
			st.Records += u.records
		case traceio.UnitMerged:
			st.Merged++
			st.Records += u.records
		}
	}
	select {
	case <-c.done:
		st.Done = c.err == nil
	default:
	}
	c.mu.Unlock()
	fs := c.fleet.Snapshot()
	st.ExpiredLeases = fs.ExpiredLeases
	for _, r := range fs.Runners {
		st.Runners = append(st.Runners, StatusRunner{
			ID: r.ID, Units: r.Units, Records: r.Records,
			IdleMS:   time.Since(r.LastSeen).Milliseconds(),
			LastSeen: r.LastSeen.UTC().Format(time.RFC3339),
		})
	}
	return st
}

// expireLeases returns expired leased units to the unclaimed pool.
// Callers hold c.mu.
func (c *Coordinator) expireLeases(now time.Time) {
	for _, u := range c.units {
		if u.state == traceio.UnitLeased && now.After(u.expires) {
			c.logf("dispatch: lease %d on unit %d (runner %s) expired; unit back to unclaimed", u.leaseID, u.id, u.runner)
			u.state = traceio.UnitUnclaimed
			u.runner = ""
			u.leaseID = 0
			c.fleet.LeaseExpired()
		}
	}
}

// Handler routes the fleet protocol. All state transitions happen in
// these handlers under one mutex; lease expiry is evaluated lazily at
// the top of each mutating call, so no background timer is needed.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()

	method := func(m string, h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.Method != m {
				writeErr(w, http.StatusMethodNotAllowed, "method not allowed")
				return
			}
			h(w, r)
		}
	}

	mux.HandleFunc("/healthz", method(http.MethodGet, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	}))

	mux.HandleFunc("/v1/status", method(http.MethodGet, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Status())
	}))

	mux.HandleFunc("/v1/claim", method(http.MethodPost, func(w http.ResponseWriter, r *http.Request) {
		var req claimRequest
		if err := decodeJSON(r, &req); err != nil || req.Runner == "" {
			writeErr(w, http.StatusBadRequest, "claim needs a runner id")
			return
		}
		c.mu.Lock()
		defer c.mu.Unlock()
		c.expireLeases(time.Now())
		if c.shipped == len(c.units) {
			writeJSON(w, http.StatusOK, claimResponse{Status: StatusDone})
			return
		}
		for _, u := range c.units {
			if u.state != traceio.UnitUnclaimed {
				continue
			}
			c.nextLease++
			u.state = traceio.UnitLeased
			u.runner = req.Runner
			u.leaseID = c.nextLease
			u.expires = time.Now().Add(c.ttl)
			u.attempts++
			c.fleet.Leased(req.Runner)
			c.logf("dispatch: unit %d [%d,%d) leased to %s (lease %d, attempt %d)",
				u.id, u.start, u.start+u.count, req.Runner, u.leaseID, u.attempts)
			spec := c.spec
			writeJSON(w, http.StatusOK, claimResponse{
				Status:  StatusUnit,
				Unit:    &UnitInfo{ID: u.id, Start: u.start, Count: u.count},
				LeaseID: u.leaseID, TTLMillis: c.ttl.Milliseconds(),
				Spec: &spec,
			})
			return
		}
		c.fleet.Seen(req.Runner)
		writeJSON(w, http.StatusOK, claimResponse{Status: StatusWait})
	}))

	mux.HandleFunc("/v1/renew", method(http.MethodPost, func(w http.ResponseWriter, r *http.Request) {
		var req renewRequest
		if err := decodeJSON(r, &req); err != nil {
			writeErr(w, http.StatusBadRequest, "malformed renew request")
			return
		}
		c.mu.Lock()
		defer c.mu.Unlock()
		c.expireLeases(time.Now())
		u := c.unitByID(req.Unit)
		if u == nil || u.state != traceio.UnitLeased || u.leaseID != req.LeaseID || u.runner != req.Runner {
			writeErr(w, http.StatusGone, "lease %d on unit %d is no longer held", req.LeaseID, req.Unit)
			return
		}
		u.expires = time.Now().Add(c.ttl)
		c.fleet.Seen(req.Runner)
		writeJSON(w, http.StatusOK, renewResponse{TTLMillis: c.ttl.Milliseconds()})
	}))

	mux.HandleFunc("/v1/budget", method(http.MethodPost, func(w http.ResponseWriter, r *http.Request) {
		var req budgetRequest
		if err := decodeJSON(r, &req); err != nil || req.Want <= 0 {
			writeErr(w, http.StatusBadRequest, "malformed budget request")
			return
		}
		if c.budget == nil {
			writeJSON(w, http.StatusOK, budgetResponse{Granted: req.Want})
			return
		}
		prefix, err := packet.ParseAddr(req.Prefix)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad prefix: %v", err)
			return
		}
		granted, wait := c.budget.Take(Prefix24(prefix), req.Want)
		c.fleet.Seen(req.Runner)
		writeJSON(w, http.StatusOK, budgetResponse{Granted: granted, WaitMillis: wait.Milliseconds()})
	}))

	mux.HandleFunc("/v1/ship", method(http.MethodPost, func(w http.ResponseWriter, r *http.Request) {
		c.handleShip(w, r)
	}))

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, http.StatusNotFound, "no such route")
	})

	return mux
}

func (c *Coordinator) unitByID(id int) *unit {
	if id < 0 || id >= len(c.units) {
		return nil
	}
	return c.units[id]
}

func (c *Coordinator) handleShip(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	id, err1 := strconv.Atoi(q.Get("unit"))
	leaseID, err2 := strconv.ParseUint(q.Get("lease"), 10, 64)
	runner := q.Get("runner")
	if err1 != nil || err2 != nil || runner == "" {
		writeErr(w, http.StatusBadRequest, "ship needs unit, lease and runner query parameters")
		return
	}
	// Reject stale leases before touching the body: a late shipment from
	// a presumed-dead runner gets its 410 without any validation work.
	c.mu.Lock()
	c.expireLeases(time.Now())
	u := c.unitByID(id)
	if u == nil {
		c.mu.Unlock()
		writeErr(w, http.StatusBadRequest, "no unit %d", id)
		return
	}
	if u.state != traceio.UnitLeased || u.leaseID != leaseID || u.runner != runner {
		c.mu.Unlock()
		writeErr(w, http.StatusGone, "lease %d on unit %d is no longer held", leaseID, id)
		return
	}
	start, count := u.start, u.count
	c.mu.Unlock()

	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading shipment: %v", err)
		return
	}

	// Validate the shipment against its span outside the lock: exactly
	// one record per job, in job order, each carrying the pair index the
	// span's position demands.
	n := 0
	verr := traceio.DecodeSurveyRecords(bytes.NewReader(body), func(sr *traceio.SurveyRecord) error {
		if n >= count {
			return fmt.Errorf("more than %d records", count)
		}
		if want := c.jobPairs[start+n]; sr.PairIndex != want {
			return fmt.Errorf("record %d is pair %d, span expects pair %d", n, sr.PairIndex, want)
		}
		n++
		return nil
	})
	if verr == nil && n != count {
		verr = fmt.Errorf("%d records, span holds %d jobs", n, count)
	}
	if verr != nil {
		writeErr(w, http.StatusBadRequest, "unit %d shipment invalid: %v", id, verr)
		return
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLeases(time.Now())
	if u.state != traceio.UnitLeased || u.leaseID != leaseID || u.runner != runner {
		// The lease expired (and was possibly reassigned) or the unit
		// already shipped. Only the current leaseholder's bytes are
		// accepted — ownership stays unambiguous, and determinism makes
		// the re-trace produce identical bytes anyway.
		writeErr(w, http.StatusGone, "lease %d on unit %d is no longer held", leaseID, id)
		return
	}
	shard := fmt.Sprintf("unit-%06d.jsonl", id)
	if err := traceio.WriteFileAtomic(filepath.Join(c.cfg.Dir, shard), body, 0o644); err != nil {
		writeErr(w, http.StatusInternalServerError, "persisting shard: %v", err)
		return
	}
	u.state = traceio.UnitShipped
	u.shard = shard
	u.records = n
	u.leaseID = 0
	c.shipped++
	c.fleet.Shipped(runner, n)
	if err := c.persistManifest(); err != nil {
		// The shard is durable but the manifest is not; fail the ship so
		// the runner retries (the rewrite is idempotent).
		u.state = traceio.UnitLeased // undo; lease re-validated on retry
		u.leaseID = leaseID
		u.records = 0
		c.shipped--
		writeErr(w, http.StatusInternalServerError, "persisting manifest: %v", err)
		return
	}
	c.logf("dispatch: unit %d shipped by %s (%d records); %d/%d units durable",
		id, runner, n, c.shipped, len(c.units))
	writeJSON(w, http.StatusOK, shipResponse{Status: "ok", Records: n})
	if c.shipped == len(c.units) && !c.merging {
		c.merging = true
		go c.merge()
	}
}

// merge folds every shipped shard, in unit (= span = pair) order, into
// the final outputs: the concatenated record log (byte-identical to a
// single-machine -out file) and the atlas snapshot written through the
// streaming canonical merge (byte-identical to a single-machine -atlas
// snapshot). It runs once, after the last ship.
func (c *Coordinator) merge() {
	err := c.doMerge()
	c.mu.Lock()
	c.err = err
	if err == nil {
		for _, u := range c.units {
			u.state = traceio.UnitMerged
			c.fleet.UnitMerged()
		}
		err = c.persistManifest()
		if c.err == nil {
			c.err = err
		}
	}
	c.mu.Unlock()
	close(c.done)
}

func (c *Coordinator) doMerge() error {
	agg := survey.NewRecordAggregate()
	shards := make([]string, len(c.units))
	c.mu.Lock()
	for i, u := range c.units {
		shards[i] = filepath.Join(c.cfg.Dir, u.shard)
	}
	c.mu.Unlock()

	// Pass 1: the record log. Shard bytes concatenate in span order;
	// the tee re-decodes them into the aggregate the summary reports.
	fold := func(w io.Writer) error {
		for _, path := range shards {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			var src io.Reader = f
			if w != nil {
				src = io.TeeReader(f, w)
			}
			err = traceio.DecodeSurveyRecords(src, func(sr *traceio.SurveyRecord) error {
				agg.Add(sr)
				return nil
			})
			f.Close()
			if err != nil {
				return fmt.Errorf("merging %s: %w", path, err)
			}
		}
		return nil
	}
	var err error
	if c.cfg.OutJSONL != "" {
		err = traceio.WriteFileAtomicStream(c.cfg.OutJSONL, 0o644, func(w io.Writer) error {
			return fold(w)
		})
	} else {
		err = fold(nil)
	}
	if err != nil {
		return err
	}
	c.logf("dispatch: merged %d records into %s", agg.Records, c.cfg.OutJSONL)

	// Pass 2: the atlas, through the shard-intake path and the
	// streaming canonical snapshot encode.
	if c.cfg.AtlasPath != "" {
		a := atlas.New(c.cfg.AtlasOptions)
		for _, path := range shards {
			if _, err := a.AddRecordLog(path); err != nil {
				return err
			}
		}
		if err := a.Save(c.cfg.AtlasPath); err != nil {
			return err
		}
		c.logf("dispatch: atlas snapshot written to %s", c.cfg.AtlasPath)
	}
	c.mu.Lock()
	c.mergedAgg = agg
	c.mu.Unlock()
	return nil
}
