package dispatch

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mmlpt/internal/atlas"
	"mmlpt/internal/survey"
)

// testSpec is a survey small enough to fleet-trace in test time but
// large enough to cut into several work units.
func testSpec() Spec {
	return Spec{Level: "ip", Pairs: 24, Seed: 7, Phi: 2}
}

// singleMachine runs the spec's survey in-process the way cmd/survey
// would, returning the record-log bytes and (when atlasPath is
// non-empty) writing the atlas snapshot.
func singleMachine(t *testing.T, spec Spec, atlasPath string) []byte {
	t.Helper()
	u, rc, err := spec.plan(2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rc.Sinks = []survey.Sink{bufSink{&buf}}
	var asink *survey.AtlasSink
	if atlasPath != "" {
		asink = survey.NewAtlasSink(atlas.Options{})
		rc.Sinks = append(rc.Sinks, asink)
	}
	if _, err := survey.Run(u, rc); err != nil {
		t.Fatal(err)
	}
	if asink != nil {
		if err := asink.Close(); err != nil {
			t.Fatal(err)
		}
		if err := asink.Atlas.Save(atlasPath); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func newTestCoordinator(t *testing.T, dir string, spec Spec, mod func(*CoordinatorConfig)) (*Coordinator, *httptest.Server) {
	t.Helper()
	cfg := CoordinatorConfig{
		Spec:      spec,
		Dir:       dir,
		OutJSONL:  filepath.Join(dir, "merged.jsonl"),
		AtlasPath: filepath.Join(dir, "merged.atlas"),
		UnitSize:  5,
		LeaseTTL:  2 * time.Second,
		Logf:      t.Logf,
	}
	if mod != nil {
		mod(&cfg)
	}
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)
	return coord, srv
}

// runRunners starts n runners against the coordinator and waits for all
// of them to exit cleanly.
func runRunners(t *testing.T, url string, n int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = RunRunner(RunnerConfig{
				Coordinator: url,
				ID:          fmt.Sprintf("runner-%d", i),
				Workers:     2,
				Poll:        10 * time.Millisecond,
				Logf:        t.Logf,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("runner %d: %v", i, err)
		}
	}
}

func waitDone(t *testing.T, coord *Coordinator) {
	t.Helper()
	select {
	case <-coord.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("coordinator never finished merging")
	}
	if err := coord.Err(); err != nil {
		t.Fatalf("merge failed: %v", err)
	}
}

// TestFleetByteIdentical: a fleet of N runners must produce a merged
// record log and atlas snapshot byte-identical to a single-machine run,
// for N = 1 and N = 3 — the determinism pin the whole control plane
// hangs on.
func TestFleetByteIdentical(t *testing.T) {
	t.Parallel()
	spec := testSpec()
	golden := t.TempDir()
	wantJSONL := singleMachine(t, spec, filepath.Join(golden, "golden.atlas"))
	wantAtlas := readFile(t, filepath.Join(golden, "golden.atlas"))

	for _, runners := range []int{1, 3} {
		runners := runners
		t.Run(fmt.Sprintf("runners=%d", runners), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			coord, srv := newTestCoordinator(t, dir, spec, nil)
			runRunners(t, srv.URL, runners)
			waitDone(t, coord)

			if got := readFile(t, filepath.Join(dir, "merged.jsonl")); !bytes.Equal(got, wantJSONL) {
				t.Fatalf("merged record log differs from single-machine run (%d vs %d bytes)", len(got), len(wantJSONL))
			}
			if got := readFile(t, filepath.Join(dir, "merged.atlas")); !bytes.Equal(got, wantAtlas) {
				t.Fatalf("merged atlas differs from single-machine run (%d vs %d bytes)", len(got), len(wantAtlas))
			}
			st := coord.Status()
			if !st.Done || st.Merged != st.Units {
				t.Fatalf("status after done: %+v", st)
			}
		})
	}
}

// claimAs issues one raw claim, returning the leased unit. Used to
// impersonate a runner that dies immediately after claiming.
func claimAs(t *testing.T, url, runner string) claimResponse {
	t.Helper()
	body, _ := json.Marshal(claimRequest{Runner: runner})
	resp, err := http.Post(url+"/v1/claim", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("claim returned %d", resp.StatusCode)
	}
	var cr claimResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	return cr
}

// TestDeadRunnerReassignment: a runner that claims a unit and dies
// without renewing loses the lease at TTL expiry; the unit is
// reassigned and the final outputs are still byte-identical to an
// uninterrupted single-machine run. The claim-then-silence here is
// observationally identical, from the coordinator's side, to kill -9:
// the socket just goes quiet. (The CI fleet-smoke job kills a real
// runner process for the full-stack version.)
func TestDeadRunnerReassignment(t *testing.T) {
	t.Parallel()
	spec := testSpec()
	golden := t.TempDir()
	wantJSONL := singleMachine(t, spec, filepath.Join(golden, "golden.atlas"))
	wantAtlas := readFile(t, filepath.Join(golden, "golden.atlas"))

	dir := t.TempDir()
	coord, srv := newTestCoordinator(t, dir, spec, func(cfg *CoordinatorConfig) {
		cfg.LeaseTTL = 150 * time.Millisecond
	})

	// The ghost claims the first unit and is never heard from again.
	ghost := claimAs(t, srv.URL, "ghost")
	if ghost.Status != StatusUnit || ghost.Unit == nil {
		t.Fatalf("ghost claim: %+v", ghost)
	}

	runRunners(t, srv.URL, 1)
	waitDone(t, coord)

	if got := readFile(t, filepath.Join(dir, "merged.jsonl")); !bytes.Equal(got, wantJSONL) {
		t.Fatalf("merged record log differs after reassignment (%d vs %d bytes)", len(got), len(wantJSONL))
	}
	if got := readFile(t, filepath.Join(dir, "merged.atlas")); !bytes.Equal(got, wantAtlas) {
		t.Fatalf("merged atlas differs after reassignment (%d vs %d bytes)", len(got), len(wantAtlas))
	}

	st := coord.Status()
	if st.ExpiredLeases < 1 {
		t.Fatalf("expected at least one expired lease, status %+v", st)
	}
	coord.mu.Lock()
	attempts := coord.units[ghost.Unit.ID].attempts
	coord.mu.Unlock()
	if attempts < 2 {
		t.Fatalf("abandoned unit %d has %d lease attempts, want >= 2", ghost.Unit.ID, attempts)
	}
}

// TestStaleShipRejected: a shipment under an expired (reassigned) lease
// must be refused with 410 Gone, keeping unit ownership unambiguous.
func TestStaleShipRejected(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	_, srv := newTestCoordinator(t, dir, testSpec(), func(cfg *CoordinatorConfig) {
		cfg.LeaseTTL = 50 * time.Millisecond
	})

	ghost := claimAs(t, srv.URL, "ghost")
	if ghost.Status != StatusUnit {
		t.Fatalf("ghost claim: %+v", ghost)
	}
	time.Sleep(150 * time.Millisecond) // let the lease expire

	// The same unit goes to another runner, which proves expiry happened.
	other := claimAs(t, srv.URL, "other")
	if other.Status != StatusUnit || other.Unit.ID != ghost.Unit.ID {
		t.Fatalf("expected reassignment of unit %d, got %+v", ghost.Unit.ID, other)
	}

	target := fmt.Sprintf("%s/v1/ship?unit=%d&lease=%d&runner=ghost", srv.URL, ghost.Unit.ID, ghost.LeaseID)
	resp, err := http.Post(target, "application/x-ndjson", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("stale ship returned %d, want %d", resp.StatusCode, http.StatusGone)
	}
}

// TestCoordinatorResume: a coordinator killed mid-survey restarts with
// -resume, restores the durably shipped units from the manifest, and
// the fleet finishes the remainder — outputs byte-identical to an
// uninterrupted run.
func TestCoordinatorResume(t *testing.T) {
	t.Parallel()
	spec := testSpec()
	golden := t.TempDir()
	wantJSONL := singleMachine(t, spec, filepath.Join(golden, "golden.atlas"))
	wantAtlas := readFile(t, filepath.Join(golden, "golden.atlas"))

	dir := t.TempDir()

	// Phase 1: ship two units, then the coordinator "dies" (server
	// closes; the in-memory lease table is lost, the manifest is not).
	coordA, srvA := newTestCoordinator(t, dir, spec, nil)
	err := RunRunner(RunnerConfig{
		Coordinator: srvA.URL, ID: "runner-a", Workers: 2,
		Poll: 10 * time.Millisecond, MaxUnits: 2, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := coordA.Status(); st.Shipped != 2 {
		t.Fatalf("phase 1 shipped %d units, want 2", st.Shipped)
	}
	srvA.Close()

	// Phase 2: a fresh coordinator resumes from the manifest.
	coordB, srvB := newTestCoordinator(t, dir, spec, func(cfg *CoordinatorConfig) {
		cfg.Resume = true
	})
	if st := coordB.Status(); st.Shipped != 2 {
		t.Fatalf("resume restored %d shipped units, want 2 (status %+v)", st.Shipped, st)
	}
	runRunners(t, srvB.URL, 2)
	waitDone(t, coordB)

	if got := readFile(t, filepath.Join(dir, "merged.jsonl")); !bytes.Equal(got, wantJSONL) {
		t.Fatalf("merged record log differs after coordinator resume (%d vs %d bytes)", len(got), len(wantJSONL))
	}
	if got := readFile(t, filepath.Join(dir, "merged.atlas")); !bytes.Equal(got, wantAtlas) {
		t.Fatalf("merged atlas differs after coordinator resume (%d vs %d bytes)", len(got), len(wantAtlas))
	}
}

// TestFleetWithBudgetByteIdentical: probe budgeting shapes timing only
// — a metered fleet's outputs stay byte-identical to an unmetered
// single-machine run.
func TestFleetWithBudgetByteIdentical(t *testing.T) {
	t.Parallel()
	spec := testSpec()
	spec.Pairs = 8
	golden := t.TempDir()
	wantJSONL := singleMachine(t, spec, filepath.Join(golden, "golden.atlas"))

	fleetSpec := spec
	fleetSpec.BudgetRate = 500 // tight enough to exercise waits, loose enough for test time
	fleetSpec.BudgetBurst = 50
	dir := t.TempDir()
	coord, srv := newTestCoordinator(t, dir, fleetSpec, func(cfg *CoordinatorConfig) {
		cfg.UnitSize = 3
		cfg.AtlasPath = ""
	})
	runRunners(t, srv.URL, 2)
	waitDone(t, coord)

	if got := readFile(t, filepath.Join(dir, "merged.jsonl")); !bytes.Equal(got, wantJSONL) {
		t.Fatalf("metered fleet record log differs from unmetered single-machine run (%d vs %d bytes)", len(got), len(wantJSONL))
	}
}

// TestRunnerRejectsForeignSpec: a runner whose binary derives a
// different plan fingerprint must refuse to trace rather than splice
// mismatched records into the survey.
func TestRunnerRejectsForeignSpec(t *testing.T) {
	t.Parallel()
	spec := testSpec()
	u, rc, err := spec.plan(0)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/claim" {
			writeErr(w, http.StatusNotFound, "no")
			return
		}
		bad := spec
		bad.OptionsHash = survey.Fingerprint(u, rc) + 1 // corrupted/diverged coordinator
		writeJSON(w, http.StatusOK, claimResponse{
			Status:  StatusUnit,
			Unit:    &UnitInfo{ID: 0, Start: 0, Count: 5},
			LeaseID: 1, TTLMillis: 60000, Spec: &bad,
		})
	}))
	defer srv.Close()

	err = RunRunner(RunnerConfig{Coordinator: srv.URL, ID: "r", Poll: time.Millisecond})
	if err == nil {
		t.Fatal("runner accepted a spec whose fingerprint does not match its own plan")
	}
}
