package core

import (
	"testing"

	"mmlpt/internal/alias"
	"mmlpt/internal/fakeroute"
	"mmlpt/internal/mda"
	"mmlpt/internal/packet"
	"mmlpt/internal/probe"
	"mmlpt/internal/topo"
)

var (
	tSrc = packet.MustParseAddr("192.0.2.1")
	tDst = packet.MustParseAddr("198.51.100.77")
)

func a(n int) packet.Addr { return packet.Addr(0x0a000000 + uint32(n)) }

// buildDiamondGraph makes a 1-w-1 diamond graph (hop0 div, hop1 width w,
// hop2 conv).
func buildDiamondGraph(w int) *topo.Graph {
	g := topo.New()
	d := g.AddVertex(0, a(1))
	c := g.AddVertex(2, a(99))
	for i := 0; i < w; i++ {
		v := g.AddVertex(1, a(10+i))
		g.AddEdge(d, v)
		g.AddEdge(v, c)
	}
	return g
}

func TestCollapseRoutersMergesSameHop(t *testing.T) {
	g := buildDiamondGraph(4)
	rep := map[packet.Addr]packet.Addr{
		a(10): a(10), a(11): a(10), // router 1
		a(12): a(12), a(13): a(12), // router 2
	}
	r := CollapseRouters(g, rep)
	if r.Width(1) != 2 {
		t.Fatalf("collapsed width %d, want 2\n%s", r.Width(1), r)
	}
	if r.Width(0) != 1 || r.Width(2) != 1 {
		t.Fatal("endpoints must be unchanged")
	}
	// Edges: div→2 routers, 2 routers→conv.
	if r.NumEdges() != 4 {
		t.Fatalf("edges %d, want 4", r.NumEdges())
	}
}

func TestCollapsePreservesStars(t *testing.T) {
	g := topo.New()
	d := g.AddVertex(0, a(1))
	s := g.AddVertex(1, topo.StarAddr)
	g.AddEdge(d, s)
	r := CollapseRouters(g, nil)
	if r.Width(1) != 1 || r.V(r.Hop(1)[0]).Addr != topo.StarAddr {
		t.Fatal("star lost in collapse")
	}
}

func TestClassifyDiamondNoChange(t *testing.T) {
	g := buildDiamondGraph(4)
	d := g.Diamonds()[0]
	router := CollapseRouters(g, nil)
	if e := ClassifyDiamond(d, router); e != EffectNoChange {
		t.Fatalf("effect %v", e)
	}
}

func TestClassifyDiamondSingleSmaller(t *testing.T) {
	g := buildDiamondGraph(4)
	d := g.Diamonds()[0]
	rep := map[packet.Addr]packet.Addr{a(10): a(10), a(11): a(10)}
	router := CollapseRouters(g, rep)
	if e := ClassifyDiamond(d, router); e != EffectSingleSmaller {
		t.Fatalf("effect %v", e)
	}
}

func TestClassifyDiamondOnePath(t *testing.T) {
	g := buildDiamondGraph(3)
	d := g.Diamonds()[0]
	rep := map[packet.Addr]packet.Addr{a(10): a(10), a(11): a(10), a(12): a(10)}
	router := CollapseRouters(g, rep)
	if e := ClassifyDiamond(d, router); e != EffectOnePath {
		t.Fatalf("effect %v", e)
	}
}

func TestClassifyDiamondMultipleSmaller(t *testing.T) {
	// A length-4 diamond whose middle hop collapses to one router: the
	// region splits into two smaller diamonds.
	g := topo.New()
	d0 := g.AddVertex(0, a(1))
	u1, u2 := g.AddVertex(1, a(10)), g.AddVertex(1, a(11))
	g.AddEdge(d0, u1)
	g.AddEdge(d0, u2)
	m1, m2 := g.AddVertex(2, a(20)), g.AddVertex(2, a(21))
	g.AddEdge(u1, m1)
	g.AddEdge(u2, m2)
	w1, w2 := g.AddVertex(3, a(30)), g.AddVertex(3, a(31))
	g.AddEdge(m1, w1)
	g.AddEdge(m2, w2)
	c := g.AddVertex(4, a(40))
	g.AddEdge(w1, c)
	g.AddEdge(w2, c)

	d := g.Diamonds()[0]
	rep := map[packet.Addr]packet.Addr{a(20): a(20), a(21): a(20)}
	router := CollapseRouters(g, rep)
	if e := ClassifyDiamond(d, router); e != EffectMultipleSmaller {
		t.Fatalf("effect %v\nrouter:\n%s", e, router)
	}
}

func TestAggregateRoutersTransitiveClosure(t *testing.T) {
	sets := [][]packet.Addr{
		{a(1), a(2)},
		{a(2), a(3)},
		{a(5), a(6)},
	}
	agg := AggregateRouters(sets)
	if len(agg) != 2 {
		t.Fatalf("aggregated %d groups, want 2: %v", len(agg), agg)
	}
	if len(agg[0]) != 3 || len(agg[1]) != 2 {
		t.Fatalf("group sizes %d/%d, want 3/2", len(agg[0]), len(agg[1]))
	}
}

func TestCandidateGroups(t *testing.T) {
	g := buildDiamondGraph(3)
	g.AddVertex(1, topo.StarAddr) // stars are excluded
	groups := CandidateGroups(g, a(99))
	if len(groups) != 1 {
		t.Fatalf("groups %d", len(groups))
	}
	if len(groups[0]) != 3 {
		t.Fatalf("group size %d, want 3 (star excluded)", len(groups[0]))
	}
}

func TestRouterRepresentativesLowestAddr(t *testing.T) {
	sets := []alias.Set{
		{Addrs: []packet.Addr{a(9), a(3), a(7)}, Outcome: alias.Accepted},
		{Addrs: []packet.Addr{a(1)}, Outcome: alias.Accepted},       // singleton: ignored
		{Addrs: []packet.Addr{a(20), a(21)}, Outcome: alias.Unable}, // unable: ignored
	}
	rep := RouterRepresentatives(sets)
	if rep[a(9)] != a(3) || rep[a(7)] != a(3) || rep[a(3)] != a(3) {
		t.Fatalf("rep %v", rep)
	}
	if _, ok := rep[a(1)]; ok {
		t.Fatal("singleton got a representative")
	}
	if _, ok := rep[a(20)]; ok {
		t.Fatal("unable set got a representative")
	}
}

// End-to-end: a multilevel trace over a diamond with two aliased routers
// collapses the router-level width.
func TestTraceMultilevelEndToEnd(t *testing.T) {
	net := fakeroute.NewNetwork(31)
	alloc := fakeroute.NewAddrAllocator(packet.AddrFrom4(10, 0, 0, 1))
	g := fakeroute.NewPathBuilder(alloc).Spread(4).Converge(1).End(tDst)
	hop1 := g.Hop(1)
	rA, rB := net.NewRouter(), net.NewRouter()
	for i, id := range hop1 {
		r := rA
		if i >= 2 {
			r = rB
		}
		net.AddIface(r, g.V(id).Addr)
	}
	net.EnsureIfaces(g, tDst)
	net.AddPath(tSrc, tDst, g)

	p := probe.NewSimProber(net, tSrc, tDst)
	res := Trace(p, Options{Trace: mda.Config{Seed: 31}, Rounds: 4})
	if !res.IP.ReachedDst {
		t.Fatal("not reached")
	}
	if res.IP.Graph.Width(1) != 4 {
		t.Fatalf("IP width %d", res.IP.Graph.Width(1))
	}
	if res.RouterGraph.Width(1) != 2 {
		t.Fatalf("router width %d, want 2\n%s", res.RouterGraph.Width(1), res.RouterGraph)
	}
	if res.AliasProbes == 0 {
		t.Fatal("no alias probing recorded")
	}
	if len(res.Rounds) != 5 {
		t.Fatalf("round snapshots %d, want 5", len(res.Rounds))
	}
	effects := 0
	for _, d := range res.IP.Graph.Diamonds() {
		if ClassifyDiamond(d, res.RouterGraph) == EffectSingleSmaller {
			effects++
		}
	}
	if effects != 1 {
		t.Fatalf("expected one single-smaller diamond, got %d", effects)
	}
}
