// Package core implements Multilevel MDA-Lite Paris Traceroute (MMLPT,
// Sec 4): an MDA-Lite multipath trace with alias resolution integrated
// into the tool, producing a router-level view of the multipath route in
// addition to the IP-level view.
package core

import (
	"sort"

	"mmlpt/internal/alias"
	"mmlpt/internal/mda"
	"mmlpt/internal/mdalite"
	"mmlpt/internal/obs"
	"mmlpt/internal/packet"
	"mmlpt/internal/probe"
	"mmlpt/internal/topo"
)

// Options parametrizes a multilevel trace.
type Options struct {
	// Trace is the underlying trace configuration.
	Trace mda.Config
	// Phi is the MDA-Lite meshing-test budget (default 2).
	Phi int
	// Rounds is the number of alias-resolution probing rounds after the
	// free Round 0 (paper: 10).
	Rounds int
	// ProbesPerRound is the MBT sample count per address per round
	// (paper: 30).
	ProbesPerRound int
}

func (o *Options) fill() {
	if o.Phi < mdalite.DefaultPhi {
		o.Phi = mdalite.DefaultPhi
	}
	if o.Rounds == 0 {
		o.Rounds = 10
	}
	if o.ProbesPerRound == 0 {
		o.ProbesPerRound = 30
	}
}

// RoundSnapshot captures the alias state after one resolution round,
// aggregated over every hop of the trace.
type RoundSnapshot struct {
	Round int
	// Sets is the partition of every multi-address hop's addresses.
	Sets []alias.Set
	// Probes is the cumulative alias-resolution probe count.
	Probes uint64
}

// Result is the outcome of a multilevel trace.
type Result struct {
	// IP is the interface-level trace result.
	IP *mda.Result
	// Obs holds the collected observations.
	Obs *obs.Observations
	// Rounds holds one snapshot per resolution round (Rounds+1 entries).
	Rounds []RoundSnapshot
	// Sets is the final alias partition (the last round's).
	Sets []alias.Set
	// RouterGraph is the IP graph with same-hop aliases collapsed.
	RouterGraph *topo.Graph
	// RouterOf maps each address to its router representative (the
	// lowest address of its alias set; addresses outside any accepted
	// set represent themselves).
	RouterOf map[packet.Addr]packet.Addr
	// TraceProbes and AliasProbes split the packet budget.
	TraceProbes, AliasProbes uint64
}

// Trace runs the full MMLPT pipeline: MDA-Lite trace, then round-based
// alias resolution over every multi-address hop.
func Trace(p probe.Prober, opt Options) *Result {
	opt.fill()
	o := opt.Trace.Obs
	if o == nil {
		o = obs.New()
		opt.Trace.Obs = o
	}
	ip := mdalite.Trace(p, opt.Trace, opt.Phi)
	return resolve(p, ip, o, opt)
}

// TraceMDA runs the multilevel pipeline over a full-MDA trace instead of
// the MDA-Lite (used for comparison experiments).
func TraceMDA(p probe.Prober, opt Options) *Result {
	opt.fill()
	o := opt.Trace.Obs
	if o == nil {
		o = obs.New()
		opt.Trace.Obs = o
	}
	ip := mda.Trace(p, opt.Trace)
	return resolve(p, ip, o, opt)
}

func resolve(p probe.Prober, ip *mda.Result, o *obs.Observations, opt Options) *Result {
	res := &Result{IP: ip, Obs: o, TraceProbes: ip.Probes}
	groups := CandidateGroups(ip.Graph, p.Dst())
	r := alias.NewResolver(p, o)
	r.Rounds = opt.Rounds
	r.ProbesPerRound = opt.ProbesPerRound

	snapshot := func(round int, probes uint64) {
		var sets []alias.Set
		for _, g := range groups {
			sets = append(sets, r.Partition(g)...)
		}
		res.Rounds = append(res.Rounds, RoundSnapshot{Round: round, Sets: sets, Probes: probes})
	}

	var sent uint64
	snapshot(0, 0)
	for round := 1; round <= opt.Rounds; round++ {
		for _, g := range groups {
			if round == 1 {
				sent += r.FingerprintRound(g)
			}
			sent += r.ProbeRound(g)
		}
		snapshot(round, sent)
	}
	res.AliasProbes = sent
	res.Sets = res.Rounds[len(res.Rounds)-1].Sets
	res.RouterOf = RouterRepresentatives(res.Sets)
	res.RouterGraph = CollapseRouters(ip.Graph, res.RouterOf)
	return res
}

// CandidateGroups returns, per hop with two or more responsive addresses,
// the candidate alias group (Sec 4.1: "the aliases of a given router are
// to be found among the addresses found at a given hop"). The destination
// and stars are excluded.
func CandidateGroups(g *topo.Graph, dst packet.Addr) [][]packet.Addr {
	var out [][]packet.Addr
	for h := 0; h < g.NumHops(); h++ {
		var addrs []packet.Addr
		for _, id := range g.Hop(h) {
			a := g.V(id).Addr
			if a == topo.StarAddr || a == dst {
				continue
			}
			addrs = append(addrs, a)
		}
		if len(addrs) >= 2 {
			sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
			out = append(out, addrs)
		}
	}
	return out
}

// RouterRepresentatives maps every address of every accepted multi-address
// set to the set's lowest address.
func RouterRepresentatives(sets []alias.Set) map[packet.Addr]packet.Addr {
	rep := make(map[packet.Addr]packet.Addr)
	for _, s := range sets {
		if s.Outcome != alias.Accepted || len(s.Addrs) < 2 {
			continue
		}
		lo := s.Addrs[0]
		for _, a := range s.Addrs[1:] {
			if a < lo {
				lo = a
			}
		}
		for _, a := range s.Addrs {
			rep[a] = lo
		}
	}
	return rep
}

// CollapseRouters builds the router-level graph: vertices at the same hop
// whose addresses share a representative merge into one vertex labelled by
// the representative. Addresses without a representative map to
// themselves; stars are preserved.
func CollapseRouters(g *topo.Graph, rep map[packet.Addr]packet.Addr) *topo.Graph {
	out := topo.New()
	idMap := make(map[topo.VertexID]topo.VertexID, len(g.Vertices))
	for h := 0; h < g.NumHops(); h++ {
		byRep := make(map[packet.Addr]topo.VertexID)
		for _, id := range g.Hop(h) {
			a := g.V(id).Addr
			if a == topo.StarAddr {
				idMap[id] = out.AddVertex(h, topo.StarAddr)
				continue
			}
			r, ok := rep[a]
			if !ok {
				r = a
			}
			nv, seen := byRep[r]
			if !seen {
				nv = out.AddVertex(h, r)
				byRep[r] = nv
			}
			idMap[id] = nv
		}
	}
	for i := range g.Vertices {
		u := topo.VertexID(i)
		for _, w := range g.Succ(u) {
			out.AddEdge(idMap[u], idMap[w])
		}
	}
	return out
}

// DiamondEffect classifies what alias resolution did to an IP-level
// diamond (Table 3).
type DiamondEffect int

const (
	// EffectNoChange: no aliases were resolved within the diamond.
	EffectNoChange DiamondEffect = iota
	// EffectSingleSmaller: the diamond resolved into one smaller diamond.
	EffectSingleSmaller
	// EffectMultipleSmaller: the diamond resolved into a series of
	// smaller diamonds.
	EffectMultipleSmaller
	// EffectOnePath: the diamond disappeared into a straight router path.
	EffectOnePath
)

// String renders the effect as the Table 3 row label.
func (e DiamondEffect) String() string {
	switch e {
	case EffectSingleSmaller:
		return "single smaller diamond"
	case EffectMultipleSmaller:
		return "multiple smaller diamonds"
	case EffectOnePath:
		return "one path (no diamond)"
	default:
		return "no change"
	}
}

// ClassifyDiamond determines the effect of alias resolution on the IP
// diamond d, given the router-level graph produced by CollapseRouters on
// d's parent graph (hop indices are preserved by the collapse).
func ClassifyDiamond(d *topo.Diamond, router *topo.Graph) DiamondEffect {
	changed := false
	for h := d.DivHop; h <= d.ConvHop; h++ {
		if router.Width(h) != d.Graph().Width(h) {
			changed = true
			break
		}
	}
	if !changed {
		return EffectNoChange
	}
	// Count diamonds inside the hop span of the router graph.
	count := 0
	h := d.DivHop
	for h < d.ConvHop {
		if router.Width(h) == 1 {
			j := h + 1
			for j <= d.ConvHop && router.Width(j) > 1 {
				j++
			}
			if j <= d.ConvHop && j > h+1 && router.Width(j) == 1 {
				count++
				h = j
				continue
			}
		}
		h++
	}
	switch count {
	case 0:
		return EffectOnePath
	case 1:
		return EffectSingleSmaller
	default:
		return EffectMultipleSmaller
	}
}

// RouterSize is the number of interfaces identified as belonging to one
// router in this trace (Sec 5.2's "size").
func RouterSize(s alias.Set) int { return len(s.Addrs) }

// AggregateRouters merges interface sets from multiple traces through
// transitive closure: two sets sharing at least one address merge
// (Sec 5.2's aggregated router view). Input and output sets are address
// slices.
func AggregateRouters(sets [][]packet.Addr) [][]packet.Addr {
	parent := make(map[packet.Addr]packet.Addr)
	var find func(a packet.Addr) packet.Addr
	find = func(a packet.Addr) packet.Addr {
		p, ok := parent[a]
		if !ok {
			parent[a] = a
			return a
		}
		if p == a {
			return a
		}
		root := find(p)
		parent[a] = root
		return root
	}
	union := func(a, b packet.Addr) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for _, s := range sets {
		for _, a := range s[1:] {
			union(s[0], a)
		}
	}
	groups := make(map[packet.Addr][]packet.Addr)
	for a := range parent {
		r := find(a)
		groups[r] = append(groups[r], a)
	}
	out := make([][]packet.Addr, 0, len(groups))
	var roots []packet.Addr
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for _, r := range roots {
		g := groups[r]
		sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
		out = append(out, g)
	}
	return out
}
