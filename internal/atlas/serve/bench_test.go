package serve

import (
	"fmt"
	"path/filepath"
	"testing"

	"mmlpt/internal/atlas"
	"mmlpt/internal/fakeroute"
	"mmlpt/internal/nprand"
	"mmlpt/internal/packet"
	"mmlpt/internal/topo"
	"mmlpt/internal/traceio"
)

// buildBenchAtlas synthesizes a survey-scale atlas with the PR 5
// topology generator: benchPairs multipath routes of chained diamonds,
// per-hop alias sets, and a diamond census entry per pair. Deterministic
// in the seed; tens of thousands of nodes across several v2 shards.
const benchPairs = 600

func buildBenchAtlas(tb testing.TB) (string, []packet.Addr) {
	tb.Helper()
	a := atlas.New(atlas.Options{})
	rng := nprand.New(7)
	alloc := fakeroute.NewAddrAllocator(packet.AddrFrom4(10, 0, 0, 1))
	dstAlloc := fakeroute.NewAddrAllocator(packet.AddrFrom4(203, 0, 113, 1))
	spec := fakeroute.GenSpec{Diamonds: 3, WidthMin: 2, WidthMax: 4, LenMin: 2, LenMax: 4}
	var addrs []packet.Addr
	for i := 0; i < benchPairs; i++ {
		dst := dstAlloc.Next()
		gp := fakeroute.GenerateMultipath(rng.Fork(uint64(i)), alloc, dst, spec)
		g := gp.Graph
		a.AddGraph(i, g)
		byHop := make(map[int][]packet.Addr)
		for vi := range g.Vertices {
			v := &g.Vertices[vi]
			if v.Addr == topo.StarAddr {
				continue
			}
			addrs = append(addrs, v.Addr)
			byHop[v.Hop] = append(byHop[v.Hop], v.Addr)
		}
		for _, set := range byHop {
			if len(set) >= 2 {
				a.AddAliasSet(set)
			}
		}
		first, last := g.V(0).Addr, g.V(topo.VertexID(len(g.Vertices)-1)).Addr
		a.AddDiamond(i, traceio.SurveyDiamond{
			Div: first.String(), Conv: last.String(), MaxWidth: 3, MaxLength: 3,
		})
	}
	path := filepath.Join(tb.TempDir(), "bench.atlas")
	if err := a.Save(path); err != nil {
		tb.Fatal(err)
	}
	return path, addrs
}

// BenchmarkAtlasServeQueries measures sustained point-query throughput
// under concurrent readers: each iteration is one Provenance plus one
// Router lookup against the shard LRU.
func BenchmarkAtlasServeQueries(b *testing.B) {
	path, addrs := buildBenchAtlas(b)
	svc, err := Open(path, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			addr := addrs[(i*9973)%len(addrs)]
			i++
			if _, err := svc.Provenance(addr); err != nil {
				b.Fatal(err)
			}
			if _, err := svc.Router(addr); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(2*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	m := svc.Metrics()
	b.ReportMetric(float64(m.ShardDecodes), "decodes")
}

// BenchmarkAtlasServeColdOpen measures cold-start latency: open the
// indexed snapshot, answer one point query (header + index + one shard
// read — never a full-file decode), close.
func BenchmarkAtlasServeColdOpen(b *testing.B) {
	path, addrs := buildBenchAtlas(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc, err := Open(path, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := svc.Router(addrs[(i*9973)%len(addrs)]); err != nil {
			b.Fatal(err)
		}
		svc.Close()
	}
}

// BenchmarkAtlasServeSwap measures generation turnover under load: how
// fast the service can republish while readers keep querying.
func BenchmarkAtlasServeSwap(b *testing.B) {
	path, addrs := buildBenchAtlas(b)
	svc, err := Open(path, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := svc.Provenance(addrs[(i*7919)%len(addrs)]); err != nil {
				panic(fmt.Sprintf("reader during swap: %v", err))
			}
			i++
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := svc.Swap(path); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	<-done
}
