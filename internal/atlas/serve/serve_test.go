package serve

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"mmlpt/internal/atlas"
	"mmlpt/internal/packet"
	"mmlpt/internal/traceio"
)

func sampleSnapshot() *traceio.AtlasSnapshot {
	return &traceio.AtlasSnapshot{
		Pairs: []traceio.AtlasPair{
			{Pair: 0, Src: "192.0.2.1", Dst: "203.0.113.1"},
			{Pair: 1, Src: "192.0.2.2", Dst: "203.0.113.2"},
		},
		Nodes: []traceio.AtlasNode{
			{Addr: "10.0.0.1", Seen: [][2]int{{0, 1}}},
			{Addr: "10.0.0.2", Seen: [][2]int{{0, 2}, {1, 3}}},
			{Addr: "10.0.0.3", Seen: [][2]int{{0, 2}}},
			{Addr: "10.0.0.4", Seen: [][2]int{{0, 3}}},
			{Addr: "10.0.0.5", Seen: [][2]int{{1, 1}}},
			{Addr: "10.0.0.6", Seen: [][2]int{{1, 2}}},
			{Addr: "10.0.0.7", Seen: [][2]int{{1, 4}}},
			{Addr: "10.0.0.8", Seen: [][2]int{{1, 5}}},
			{Addr: "10.0.0.9", Seen: [][2]int{{1, 6}}},
		},
		Edges: []traceio.AtlasEdge{
			{0, 1}, {0, 2}, {1, 3}, {2, 3}, {4, 5}, {5, 1}, {6, 7}, {7, 8},
		},
		Routers: []traceio.AtlasRouter{
			{Addrs: []string{"10.0.0.2", "10.0.0.3"}},
			{Addrs: []string{"10.0.0.7", "10.0.0.9"}},
		},
		Diamonds: []traceio.AtlasDiamond{
			{Div: "10.0.0.1", Conv: "10.0.0.4", Count: 2, Pairs: []int{0}, MaxWidth: 2, MaxLength: 2},
		},
	}
}

func writeSnapshot(t *testing.T, dir, name string, s *traceio.AtlasSnapshot, c traceio.AtlasCodec) string {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Encode(&buf, s); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func addr(t *testing.T, s string) packet.Addr {
	t.Helper()
	a, err := packet.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestServeQueries(t *testing.T) {
	t.Parallel()
	snap := sampleSnapshot()
	path := writeSnapshot(t, t.TempDir(), "a.atlas", snap, traceio.AtlasCodec{ShardNodes: 3})
	svc, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	st, err := svc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	want := atlas.Stats{Pairs: 2, Nodes: 9, Edges: 8, Routers: 2, Diamonds: 1}
	if st != want {
		t.Fatalf("Stats = %+v, want %+v", st, want)
	}

	obs, err := svc.Provenance(addr(t, "10.0.0.2"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(obs, []atlas.Obs{{Pair: 0, Hop: 2}, {Pair: 1, Hop: 3}}) {
		t.Fatalf("Provenance = %+v", obs)
	}

	// Aliased member: full component, queried by rep and by non-rep.
	for _, q := range []string{"10.0.0.2", "10.0.0.3"} {
		r, err := svc.Router(addr(t, q))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r, []packet.Addr{addr(t, "10.0.0.2"), addr(t, "10.0.0.3")}) {
			t.Fatalf("Router(%s) = %v", q, r)
		}
	}
	// Unaliased address: singleton.
	r, err := svc.Router(addr(t, "10.0.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, []packet.Addr{addr(t, "10.0.0.1")}) {
		t.Fatalf("Router(10.0.0.1) = %v", r)
	}

	succ, err := svc.Successors(addr(t, "10.0.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(succ, []packet.Addr{addr(t, "10.0.0.2"), addr(t, "10.0.0.3")}) {
		t.Fatalf("Successors = %v", succ)
	}

	ds, err := svc.DiamondCensus()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds, snap.Diamonds) {
		t.Fatalf("DiamondCensus = %+v", ds)
	}

	all, err := svc.Routers()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || all[0][0] != addr(t, "10.0.0.2") || all[1][0] != addr(t, "10.0.0.7") {
		t.Fatalf("Routers = %v", all)
	}

	if _, err := svc.Provenance(addr(t, "10.99.99.99")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("absent Provenance err = %v, want ErrNotFound", err)
	}
	if _, err := svc.Router(addr(t, "10.99.99.99")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("absent Router err = %v, want ErrNotFound", err)
	}
}

// The acceptance criterion: a cold point query decodes only the owning
// shard — never the whole file.
func TestServeDecodeCounter(t *testing.T) {
	t.Parallel()
	snap := sampleSnapshot()
	// ShardNodes=2 → 5 shards over 9 nodes.
	path := writeSnapshot(t, t.TempDir(), "a.atlas", snap, traceio.AtlasCodec{ShardNodes: 2})
	svc, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	if n := svc.Metrics().ShardDecodes; n != 0 {
		t.Fatalf("open decoded %d shards, want 0", n)
	}
	if _, err := svc.Stats(); err != nil {
		t.Fatal(err)
	}
	if n := svc.Metrics().ShardDecodes; n != 0 {
		t.Fatalf("Stats decoded %d shards, want 0", n)
	}

	// Cold provenance: exactly the owning shard.
	if _, err := svc.Provenance(addr(t, "10.0.0.5")); err != nil {
		t.Fatal(err)
	}
	if n := svc.Metrics().ShardDecodes; n != 1 {
		t.Fatalf("cold Provenance decoded %d shards, want 1", n)
	}

	// Cold router lookup where the queried address is the
	// representative: still exactly one shard.
	if _, err := svc.Router(addr(t, "10.0.0.7")); err != nil {
		t.Fatal(err)
	}
	after := svc.Metrics().ShardDecodes
	if after != 2 {
		t.Fatalf("cold rep Router decoded %d new shards, want 1", after-1)
	}

	// Warm repeat: zero new decodes, counted as cache hits.
	if _, err := svc.Router(addr(t, "10.0.0.7")); err != nil {
		t.Fatal(err)
	}
	m := svc.Metrics()
	if m.ShardDecodes != after {
		t.Fatalf("warm Router decoded %d new shards, want 0", m.ShardDecodes-after)
	}
	if m.CacheHits == 0 {
		t.Fatal("warm Router recorded no cache hit")
	}
	if m.ShardDecodes >= uint64(5) {
		t.Fatalf("point queries decoded %d of 5 shards — full-file decode", m.ShardDecodes)
	}
}

func TestServeV1Snapshot(t *testing.T) {
	t.Parallel()
	snap := sampleSnapshot()
	path := writeSnapshot(t, t.TempDir(), "v1.atlas", snap, traceio.AtlasCodec{Version: traceio.AtlasVersionV1})
	svc, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	st, err := svc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes != 9 || st.Routers != 2 {
		t.Fatalf("v1 Stats = %+v", st)
	}
	r, err := svc.Router(addr(t, "10.0.0.3"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 2 {
		t.Fatalf("v1 Router = %v", r)
	}
	if _, err := svc.Provenance(addr(t, "10.99.99.99")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("v1 absent err = %v", err)
	}
}

// A tiny cache still answers everything correctly, it just evicts.
func TestServeLRUEviction(t *testing.T) {
	t.Parallel()
	snap := sampleSnapshot()
	path := writeSnapshot(t, t.TempDir(), "a.atlas", snap, traceio.AtlasCodec{ShardNodes: 2})
	svc, err := Open(path, Options{CacheShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for pass := 0; pass < 2; pass++ {
		for _, n := range snap.Nodes {
			if _, err := svc.Provenance(addr(t, n.Addr)); err != nil {
				t.Fatalf("pass %d, %s: %v", pass, n.Addr, err)
			}
		}
	}
	if m := svc.Metrics(); m.CacheEvictions == 0 {
		t.Fatalf("CacheShards=1 over 5 shards recorded no evictions: %+v", m)
	}
}

// The race test the issue requires: concurrent readers while Swap flips
// generations. Run with -race. Readers must always see a complete
// generation — one of the two snapshots, never a mix, never a closed
// reader.
func TestServeSwapConcurrent(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	snapA := sampleSnapshot()
	snapB := sampleSnapshot()
	// B differs: one more node at the end and a different census count.
	snapB.Nodes = append(snapB.Nodes, traceio.AtlasNode{Addr: "10.0.0.10", Seen: [][2]int{{1, 7}}})
	snapB.Diamonds[0].Count = 5
	pathA := writeSnapshot(t, dir, "a.atlas", snapA, traceio.AtlasCodec{ShardNodes: 2})
	pathB := writeSnapshot(t, dir, "b.atlas", snapB, traceio.AtlasCodec{ShardNodes: 3})

	svc, err := Open(pathA, Options{CacheShards: 2})
	if err != nil {
		t.Fatal(err)
	}

	const readers = 8
	const iters = 300
	var wg sync.WaitGroup
	errc := make(chan error, readers+1)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a2 := addr(t, "10.0.0.2")
			for j := 0; j < iters; j++ {
				st, err := svc.Stats()
				if err != nil {
					errc <- err
					return
				}
				if st.Nodes != 9 && st.Nodes != 10 {
					errc <- errors.New("stats from neither generation")
					return
				}
				if _, err := svc.Provenance(a2); err != nil {
					errc <- err
					return
				}
				if _, err := svc.Router(a2); err != nil {
					errc <- err
					return
				}
				if ds, err := svc.DiamondCensus(); err != nil {
					errc <- err
					return
				} else if c := ds[0].Count; c != 2 && c != 5 {
					errc <- errors.New("census from neither generation")
					return
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		paths := [2]string{pathB, pathA}
		for j := 0; j < 40; j++ {
			if err := svc.Swap(paths[j%2]); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if m := svc.Metrics(); m.Swaps != 40 {
		t.Fatalf("Swaps = %d, want 40", m.Swaps)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Stats(); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close Stats err = %v, want ErrClosed", err)
	}
	if err := svc.Swap(pathA); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close Swap err = %v, want ErrClosed", err)
	}
}

// Swap to a bad path keeps the old generation serving.
func TestServeSwapFailureKeepsGeneration(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := writeSnapshot(t, dir, "a.atlas", sampleSnapshot(), traceio.AtlasCodec{})
	svc, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if err := svc.Swap(filepath.Join(dir, "missing.atlas")); err == nil {
		t.Fatal("Swap to missing file succeeded")
	}
	if st, err := svc.Stats(); err != nil || st.Nodes != 9 {
		t.Fatalf("old generation gone: %+v, %v", st, err)
	}
}
