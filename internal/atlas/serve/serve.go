// Package serve is the unified atlas query layer: one API over an
// immutable snapshot generation, shared by the atlas CLI, the atlasd
// HTTP service, and future atlas-prior probing. A generation wraps an
// indexed snapshot (traceio.AtlasReader) with lazy per-shard decoding
// behind an LRU, so point queries — Router, Provenance — touch only the
// shard(s) that own the queried address instead of decoding the file.
// Swap atomically publishes a new generation while in-flight queries
// drain on the old one; readers never block writers and vice versa.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"mmlpt/internal/atlas"
	"mmlpt/internal/packet"
	"mmlpt/internal/traceio"
)

// ErrNotFound reports a queried address absent from the snapshot.
// Callers map it to exit 1 (CLI) or 404 (HTTP).
var ErrNotFound = errors.New("address not in atlas")

// ErrClosed reports queries against a closed service.
var ErrClosed = errors.New("atlas service closed")

// DefaultCacheShards is the per-generation decoded-shard budget when
// Options.CacheShards is zero.
const DefaultCacheShards = 8

// Options configures a Service.
type Options struct {
	// CacheShards bounds how many decoded shards a generation keeps
	// resident. Least-recently-used shards are evicted beyond it.
	CacheShards int
}

// Metrics is a snapshot of the service's cumulative counters.
type Metrics struct {
	ShardDecodes   uint64 // shards decoded from disk (cache misses)
	CacheHits      uint64 // queries served from resident shards
	CacheEvictions uint64 // decoded shards dropped by the LRU
	Swaps          uint64 // generations published after the first
}

// Service answers atlas queries from the current snapshot generation.
// All methods are safe for concurrent use.
type Service struct {
	opt Options
	gen atomic.Pointer[generation]

	swapMu sync.Mutex // serializes Swap and Close

	shardDecodes   atomic.Uint64
	cacheHits      atomic.Uint64
	cacheEvictions atomic.Uint64
	swaps          atomic.Uint64
}

// Open starts a service over the snapshot at path (v1 or v2).
func Open(path string, opt Options) (*Service, error) {
	if opt.CacheShards <= 0 {
		opt.CacheShards = DefaultCacheShards
	}
	s := &Service{opt: opt}
	g, err := s.newGeneration(path)
	if err != nil {
		return nil, err
	}
	s.gen.Store(g)
	return s, nil
}

// Swap atomically publishes the snapshot at path as the new generation.
// In-flight queries finish on the old generation, whose reader closes
// once the last of them releases it. On error the old generation stays
// current.
func (s *Service) Swap(path string) error {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if s.gen.Load() == nil {
		return ErrClosed
	}
	g, err := s.newGeneration(path)
	if err != nil {
		return err
	}
	old := s.gen.Swap(g)
	s.swaps.Add(1)
	old.retire()
	return nil
}

// SwapAtlas publishes a live atlas as the new generation: the atlas
// streams its canonical snapshot to path (Atlas.WriteTo via Save —
// byte-identical to the materialized encode, bounded memory, and
// parallel under Options.MergeWorkers), then the service swaps to the
// file just written. This is the long-running survey's publish step
// without an intermediate full AtlasSnapshot in memory.
func (s *Service) SwapAtlas(a *atlas.Atlas, path string) error {
	if a == nil {
		return fmt.Errorf("serve: SwapAtlas: nil atlas")
	}
	if err := a.Save(path); err != nil {
		return err
	}
	return s.Swap(path)
}

// Close retires the current generation. Queries after Close return
// ErrClosed; in-flight queries finish normally.
func (s *Service) Close() error {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	old := s.gen.Swap(nil)
	if old != nil {
		old.retire()
	}
	return nil
}

// Metrics returns the cumulative counters.
func (s *Service) Metrics() Metrics {
	return Metrics{
		ShardDecodes:   s.shardDecodes.Load(),
		CacheHits:      s.cacheHits.Load(),
		CacheEvictions: s.cacheEvictions.Load(),
		Swaps:          s.swaps.Load(),
	}
}

// Stats summarizes the current generation from its header alone — no
// shard is decoded.
func (s *Service) Stats() (atlas.Stats, error) {
	g, err := s.acquire()
	if err != nil {
		return atlas.Stats{}, err
	}
	defer g.release()
	h := g.r.Header()
	return atlas.Stats{
		Pairs: h.Pairs, Nodes: h.Nodes, Edges: h.Edges,
		Routers: h.Routers, Diamonds: h.Diamonds,
	}, nil
}

// Path returns the snapshot path backing the current generation.
func (s *Service) Path() (string, error) {
	g, err := s.acquire()
	if err != nil {
		return "", err
	}
	defer g.release()
	return g.path, nil
}

// Pairs returns the surveyed (src, dst) pairs, loaded once at open.
func (s *Service) Pairs() ([]traceio.AtlasPair, error) {
	g, err := s.acquire()
	if err != nil {
		return nil, err
	}
	defer g.release()
	return g.r.Pairs(), nil
}

// Provenance returns the sorted (pair, hop) observations of addr,
// decoding only the owning shard. ErrNotFound if the address is absent.
func (s *Service) Provenance(addr packet.Addr) ([]atlas.Obs, error) {
	g, err := s.acquire()
	if err != nil {
		return nil, err
	}
	defer g.release()
	n, _, err := g.lookup(addr)
	if err != nil {
		return nil, err
	}
	out := make([]atlas.Obs, len(n.Seen))
	for i, o := range n.Seen {
		out[i] = atlas.Obs{Pair: o[0], Hop: o[1]}
	}
	return out, nil
}

// Successors returns the merged next-hop addresses of addr across all
// traces, decoding only the owning shard.
func (s *Service) Successors(addr packet.Addr) ([]packet.Addr, error) {
	g, err := s.acquire()
	if err != nil {
		return nil, err
	}
	defer g.release()
	n, _, err := g.lookup(addr)
	if err != nil {
		return nil, err
	}
	out := make([]packet.Addr, 0, len(n.Succ))
	for _, a := range n.Succ {
		p, err := packet.ParseAddr(a)
		if err != nil {
			return nil, fmt.Errorf("serve: corrupt successor %q: %w", a, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// Router returns the router (alias component) owning addr: the full
// member list when the address aliased with others, or the singleton
// [addr] when it was observed but never aliased. A cold lookup decodes
// the owning shard, plus the representative's shard when the component
// straddles two. ErrNotFound if the address is absent entirely.
func (s *Service) Router(addr packet.Addr) ([]packet.Addr, error) {
	g, err := s.acquire()
	if err != nil {
		return nil, err
	}
	defer g.release()
	n, _, err := g.lookup(addr)
	if err != nil {
		return nil, err
	}
	if n.Router == "" {
		return []packet.Addr{addr}, nil
	}
	rep, err := packet.ParseAddr(n.Router)
	if err != nil {
		return nil, fmt.Errorf("serve: corrupt router rep %q: %w", n.Router, err)
	}
	v, err := g.shard(g.r.ShardFor(rep))
	if err != nil {
		return nil, err
	}
	members, ok := v.routers[n.Router]
	if !ok {
		return nil, fmt.Errorf("serve: router %s missing from its shard", n.Router)
	}
	out := make([]packet.Addr, len(members))
	for i, m := range members {
		p, err := packet.ParseAddr(m)
		if err != nil {
			return nil, fmt.Errorf("serve: corrupt router member %q: %w", m, err)
		}
		out[i] = p
	}
	return out, nil
}

// Routers returns every multi-interface router component, in canonical
// snapshot order. This decodes all shards (it is the CLI bulk listing,
// not a point query).
func (s *Service) Routers() ([][]packet.Addr, error) {
	g, err := s.acquire()
	if err != nil {
		return nil, err
	}
	defer g.release()
	var out [][]packet.Addr
	for i := 0; i < g.r.NumShards(); i++ {
		v, err := g.shard(i)
		if err != nil {
			return nil, err
		}
		for _, members := range v.routerList {
			set := make([]packet.Addr, len(members))
			for j, m := range members {
				p, err := packet.ParseAddr(m)
				if err != nil {
					return nil, fmt.Errorf("serve: corrupt router member %q: %w", m, err)
				}
				set[j] = p
			}
			out = append(out, set)
		}
	}
	return out, nil
}

// ForEachNode calls fn for every node record in the snapshot, in
// canonical snapshot order (shard by shard, each shard's node order).
// Like Routers, this is a bulk operation that decodes all shards; prior
// extraction uses it to rebuild per-pair topology from the provenance
// and successor sections. Iteration stops at the first error fn returns.
func (s *Service) ForEachNode(fn func(*traceio.AtlasNodeV2) error) error {
	g, err := s.acquire()
	if err != nil {
		return err
	}
	defer g.release()
	for i := 0; i < g.r.NumShards(); i++ {
		v, err := g.shard(i)
		if err != nil {
			return err
		}
		for _, n := range v.nodeList {
			if err := fn(n); err != nil {
				return err
			}
		}
	}
	return nil
}

// DiamondCensus returns the cross-pair diamond census, decoded lazily
// once per generation from the diamonds section alone.
func (s *Service) DiamondCensus() ([]traceio.AtlasDiamond, error) {
	g, err := s.acquire()
	if err != nil {
		return nil, err
	}
	defer g.release()
	g.diamondsOnce.Do(func() {
		g.diamonds, g.diamondsErr = g.r.ReadDiamonds()
	})
	return g.diamonds, g.diamondsErr
}

// acquire pins the current generation against close. Every successful
// acquire must be paired with release.
func (s *Service) acquire() (*generation, error) {
	for {
		g := s.gen.Load()
		if g == nil {
			return nil, ErrClosed
		}
		g.refs.Add(1)
		if s.gen.Load() == g {
			return g, nil
		}
		// A swap retired g between Load and Add; our ref may be the
		// one keeping it open. Drop it and take the new generation.
		g.release()
	}
}

// generation is one immutable published snapshot: the indexed reader,
// an LRU of decoded shard views, and a refcount that defers the reader
// close until the last in-flight query releases it after retirement.
type generation struct {
	svc  *Service
	r    *traceio.AtlasReader
	path string

	refs    atomic.Int64
	retired atomic.Bool
	closer  sync.Once

	mu    sync.Mutex
	cache map[int]*shardSlot
	tick  uint64

	diamondsOnce sync.Once
	diamonds     []traceio.AtlasDiamond
	diamondsErr  error
}

// shardSlot is a cache entry; ready closes when the decode (by whoever
// installed the slot) finishes, so concurrent readers of the same cold
// shard trigger exactly one disk read.
type shardSlot struct {
	ready chan struct{}
	view  *shardView
	err   error
	tick  uint64
}

// shardView is one decoded shard indexed for point lookups.
type shardView struct {
	nodes      map[string]*traceio.AtlasNodeV2
	nodeList   []*traceio.AtlasNodeV2 // snapshot order, for bulk iteration
	routers    map[string][]string    // representative → member addrs
	routerList [][]string             // snapshot order, for bulk listing
}

func (s *Service) newGeneration(path string) (*generation, error) {
	r, err := traceio.OpenAtlasFile(path)
	if err != nil {
		return nil, err
	}
	return &generation{
		svc: s, r: r, path: path,
		cache: make(map[int]*shardSlot),
	}, nil
}

func (g *generation) retire() {
	g.retired.Store(true)
	if g.refs.Load() == 0 {
		g.closer.Do(func() { g.r.Close() })
	}
}

func (g *generation) release() {
	if g.refs.Add(-1) == 0 && g.retired.Load() {
		g.closer.Do(func() { g.r.Close() })
	}
}

// lookup finds addr's node record, decoding only its owning shard.
func (g *generation) lookup(addr packet.Addr) (*traceio.AtlasNodeV2, *shardView, error) {
	v, err := g.shard(g.r.ShardFor(addr))
	if err != nil {
		return nil, nil, err
	}
	n, ok := v.nodes[addr.String()]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", ErrNotFound, addr)
	}
	return n, v, nil
}

// shard returns shard i's decoded view, loading it through the LRU.
func (g *generation) shard(i int) (*shardView, error) {
	g.mu.Lock()
	if slot, ok := g.cache[i]; ok {
		g.tick++
		slot.tick = g.tick
		g.mu.Unlock()
		<-slot.ready
		if slot.err == nil {
			g.svc.cacheHits.Add(1)
		}
		return slot.view, slot.err
	}
	slot := &shardSlot{ready: make(chan struct{})}
	g.tick++
	slot.tick = g.tick
	g.cache[i] = slot
	g.evictLocked(i)
	g.mu.Unlock()

	sh, err := g.r.ReadShard(i)
	if err != nil {
		slot.err = err
		close(slot.ready)
		g.mu.Lock()
		if g.cache[i] == slot {
			delete(g.cache, i) // don't cache failures
		}
		g.mu.Unlock()
		return nil, err
	}
	g.svc.shardDecodes.Add(1)
	v := &shardView{
		nodes:    make(map[string]*traceio.AtlasNodeV2, len(sh.Nodes)),
		nodeList: make([]*traceio.AtlasNodeV2, len(sh.Nodes)),
		routers:  make(map[string][]string, len(sh.Routers)),
	}
	for j := range sh.Nodes {
		v.nodes[sh.Nodes[j].Addr] = &sh.Nodes[j]
		v.nodeList[j] = &sh.Nodes[j]
	}
	for _, r := range sh.Routers {
		v.routers[r.Addrs[0]] = r.Addrs
		v.routerList = append(v.routerList, r.Addrs)
	}
	slot.view = v
	close(slot.ready)
	return v, nil
}

// evictLocked drops least-recently-used completed slots beyond the
// budget. The slot at keep (the one being installed) is never evicted.
func (g *generation) evictLocked(keep int) {
	for len(g.cache) > g.svc.opt.CacheShards {
		victim, oldest := -1, uint64(0)
		for i, slot := range g.cache {
			if i == keep {
				continue
			}
			select {
			case <-slot.ready:
			default:
				continue // still decoding; its loader will publish it
			}
			if victim == -1 || slot.tick < oldest {
				victim, oldest = i, slot.tick
			}
		}
		if victim == -1 {
			return
		}
		delete(g.cache, victim)
		g.svc.cacheEvictions.Add(1)
	}
}
