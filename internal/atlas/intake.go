package atlas

import (
	"fmt"
	"os"

	"mmlpt/internal/traceio"
)

// AddRecordLog streams every survey record of a JSONL file into the
// atlas and returns the record count. This is the shard-intake path of
// the distributed control plane: the coordinator folds each work unit's
// shipped record log into one atlas, in unit order, before writing the
// snapshot through the streaming canonical merge. Because ingestion is
// canonicalized (sharded by address, merged in ascending address
// order), the snapshot bytes are independent of which runner produced
// which shard and of intake order — the fleet's byte-determinism
// contract reduces to the records themselves being deterministic.
func (a *Atlas) AddRecordLog(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	err = traceio.DecodeSurveyRecords(f, func(sr *traceio.SurveyRecord) error {
		n++
		return a.AddRecord(sr)
	})
	if err != nil {
		return n, fmt.Errorf("atlas: ingesting %s: %w", path, err)
	}
	return n, nil
}
