package atlas

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"

	"testing"
	"time"

	"mmlpt/internal/fakeroute"
	"mmlpt/internal/nprand"
	"mmlpt/internal/packet"
	"mmlpt/internal/topo"
	"mmlpt/internal/traceio"
)

// scaleAtlas builds a generator atlas with at least `addrs` distinct
// addresses: the write path's 1M/10M scale targets. Untimed setup; the
// atlas is deliberately NOT cached across benchmark functions — a
// pinned multi-hundred-MB live heap would pollute every later
// benchmark's peak-heap readings.
func scaleAtlas(tb testing.TB, addrs int) *Atlas {
	tb.Helper()
	a := New(Options{})
	rng := nprand.New(42)
	alloc := fakeroute.NewAddrAllocator(packet.AddrFrom4(10, 0, 0, 1))
	dstAlloc := fakeroute.NewAddrAllocator(packet.AddrFrom4(203, 0, 113, 1))
	spec := fakeroute.GenSpec{Diamonds: 3, WidthMin: 2, WidthMax: 4, LenMin: 2, LenMax: 4}
	for pair := 0; alloc.Allocated() < addrs; pair++ {
		dst := dstAlloc.Next()
		gp := fakeroute.GenerateMultipath(rng.Fork(uint64(pair)), alloc, dst, spec)
		g := gp.Graph
		a.AddGraph(pair, g)
		if pair%7 == 0 { // sprinkle alias sets without dominating the build
			var set []packet.Addr
			for vi := range g.Vertices {
				if v := &g.Vertices[vi]; v.Addr != topo.StarAddr && v.Hop == 2 {
					set = append(set, v.Addr)
				}
			}
			a.AddAliasSet(set)
		}
	}
	return a
}

// BenchmarkAtlasSnapshotScale measures the streaming snapshot encode
// (Atlas.WriteTo) at survey scale, serial vs parallel merge workers.
// The 10M-address case is skipped under -short: it is a local/perf-lab
// benchmark, not a CI gate, and never enters BENCH_BASELINE.json.
func BenchmarkAtlasSnapshotScale(b *testing.B) {
	for _, size := range []int{1_000_000, 10_000_000} {
		if size > 1_000_000 && testing.Short() {
			continue
		}
		a := scaleAtlas(b, size)
		for _, workers := range []int{1, 8} {
			name := fmt.Sprintf("addrs=%dM/workers=%d", size/1_000_000, workers)
			b.Run(name, func(b *testing.B) {
				a.mergeWorkers = workers
				b.ReportAllocs()
				var written int64
				var peak uint64
				for i := 0; i < b.N; i++ {
					stop := sampleHeapPeak(&peak)
					n, err := a.WriteTo(io.Discard)
					stop()
					if err != nil {
						b.Fatal(err)
					}
					written = n
				}
				b.ReportMetric(float64(written)/float64(size), "bytes/addr")
				b.ReportMetric(float64(peak)/(1<<20), "peak-heap-MB")
			})
		}
	}
}

// BenchmarkCompactStreaming pits the streaming k-way Compact against
// the pre-PR full-decode path (decode every input into memory, merge,
// materialize, encode) over the same delta files. The win the baseline
// gates is allocation volume: the streaming path's B/op stays bounded
// by a few shard blocks per input.
func BenchmarkCompactStreaming(b *testing.B) {
	dir := b.TempDir()
	var deltas []string
	for i, seed := range []uint64{100, 101, 102} {
		a := genAtlas(b, seed, 2500, Options{})
		p := filepath.Join(dir, fmt.Sprintf("delta%d.atlas", i))
		if err := a.Save(p); err != nil {
			b.Fatal(err)
		}
		deltas = append(deltas, p)
	}
	out := filepath.Join(dir, "out.atlas")

	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		var peak uint64
		for i := 0; i < b.N; i++ {
			stop := sampleHeapPeak(&peak)
			if err := Compact(out, "", deltas, Options{}); err != nil {
				b.Fatal(err)
			}
			stop()
		}
		reportOutBytes(b, out, peak)
	})
	b.Run("fulldecode", func(b *testing.B) {
		b.ReportAllocs()
		var peak uint64
		for i := 0; i < b.N; i++ {
			stop := sampleHeapPeak(&peak)
			a := New(Options{})
			for _, p := range deltas {
				s, err := traceio.ReadAtlasFile(p)
				if err != nil {
					b.Fatal(err)
				}
				if err := a.MergeSnapshot(s); err != nil {
					b.Fatal(err)
				}
			}
			if err := traceio.WriteAtlasFile(out, a.Snapshot()); err != nil {
				b.Fatal(err)
			}
			stop()
		}
		reportOutBytes(b, out, peak)
	})
}

func reportOutBytes(b *testing.B, out string, peak uint64) {
	b.Helper()
	fi, err := os.Stat(out)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(fi.Size()), "out-bytes")
	b.ReportMetric(float64(peak)/(1<<20), "peak-heap-MB")
}

// sampleHeapPeak polls the live heap while the measured section runs
// and folds the maximum into *peak. Coarse (5ms samples), but it is the
// resident-set story — peak concurrent memory — that total-alloc B/op
// cannot tell.
func sampleHeapPeak(peak *uint64) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > *peak {
				*peak = ms.HeapAlloc
			}
			select {
			case <-done:
				return
			case <-t.C:
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
