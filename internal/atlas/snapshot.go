package atlas

import (
	"fmt"
	"io"
	"sort"

	"mmlpt/internal/packet"
	"mmlpt/internal/traceio"
)

// Snapshot renders the atlas in canonical order as a serializable
// traceio.AtlasSnapshot. For a fixed merged content the snapshot —
// and therefore its encoded bytes — is unique: every section is sorted,
// independent of worker count, shard count and ingestion order.
func (a *Atlas) Snapshot() *traceio.AtlasSnapshot {
	m := a.Merged()
	s := &traceio.AtlasSnapshot{}

	a.mu.Lock()
	idxs := make([]int, 0, len(a.pairs))
	for i := range a.pairs {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		p := a.pairs[i]
		s.Pairs = append(s.Pairs, traceio.AtlasPair{Pair: i, Src: p.src, Dst: p.dst})
	}
	a.mu.Unlock()

	for id := 0; id < m.NumNodes(); id++ {
		n := traceio.AtlasNode{Addr: m.Addr(NodeID(id)).String()}
		for _, o := range m.Seen(NodeID(id)) {
			n.Seen = append(n.Seen, [2]int{o.Pair, o.Hop})
		}
		s.Nodes = append(s.Nodes, n)
	}
	for id := 0; id < m.NumNodes(); id++ {
		for _, w := range m.Succ(NodeID(id)) {
			s.Edges = append(s.Edges, traceio.AtlasEdge{id, int(w)})
		}
	}
	for _, g := range a.Routers() {
		r := traceio.AtlasRouter{Addrs: make([]string, len(g))}
		for i, addr := range g {
			r.Addrs[i] = addr.String()
		}
		s.Routers = append(s.Routers, r)
	}
	s.Diamonds = a.Census()
	return s
}

// FromSnapshot rebuilds an atlas from a decoded snapshot. The round
// trip is exact for everything a snapshot persists —
// FromSnapshot(a.Snapshot()).Snapshot() equals a.Snapshot(), byte for
// byte once encoded. Rejection evidence (alias.Union.Reject) is not
// part of the snapshot format: the streamed survey records the atlas
// ingests carry only accepted sets.
func FromSnapshot(s *traceio.AtlasSnapshot, opt Options) (*Atlas, error) {
	a := New(opt)
	if err := a.MergeSnapshot(s); err != nil {
		return nil, err
	}
	return a, nil
}

// MergeSnapshot folds a decoded snapshot additively into the atlas:
// provenance and successor sets union, alias sets join the growing
// router identities, census encounter counts sum and pair sets /
// max widths union. Merging a base snapshot and a series of disjoint
// delta snapshots (see survey.AtlasSink delta publishing) reproduces
// the atlas that ingested every record directly — snapshot bytes
// included, because canonical ordering and provenance dedup happen at
// snapshot time, not merge time.
func (a *Atlas) MergeSnapshot(s *traceio.AtlasSnapshot) error {
	// Parse every address exactly once, before touching any state: a
	// malformed snapshot is rejected without a partial merge, and the
	// merge below works on interned packet.Addr values, never strings.
	addrs := make([]packet.Addr, len(s.Nodes))
	for i, n := range s.Nodes {
		addr, err := packet.ParseAddr(n.Addr)
		if err != nil {
			return fmt.Errorf("atlas: node %d: %w", i, err)
		}
		addrs[i] = addr
	}
	for _, e := range s.Edges {
		if e[0] < 0 || e[0] >= len(addrs) || e[1] < 0 || e[1] >= len(addrs) {
			return fmt.Errorf("atlas: edge %v out of range", e)
		}
	}
	// Group the node and edge work by ingestion shard, so each shard's
	// lock is taken once per batch instead of once per node and edge —
	// at snapshot-merge scale the per-node Lock/Unlock pair used to
	// dominate the merge.
	nodesByShard := make([][]int, len(a.shards))
	for i := range s.Nodes {
		si := a.shardIndexOf(addrs[i])
		nodesByShard[si] = append(nodesByShard[si], i)
	}
	edgesByShard := make([][]int, len(a.shards))
	for i, e := range s.Edges {
		si := a.shardIndexOf(addrs[e[0]])
		edgesByShard[si] = append(edgesByShard[si], i)
	}
	a.snapMu.RLock()
	for si := range a.shards {
		if len(nodesByShard[si]) == 0 && len(edgesByShard[si]) == 0 {
			continue
		}
		sh := a.shards[si]
		sh.mu.Lock()
		for _, i := range nodesByShard[si] {
			st := a.node(sh, addrs[i])
			if len(s.Nodes[i].Seen) > 0 {
				for _, o := range s.Nodes[i].Seen {
					st.seen = append(st.seen, Obs{Pair: o[0], Hop: o[1]})
				}
				st.dirty = true
			}
		}
		for _, ei := range edgesByShard[si] {
			e := s.Edges[ei]
			st := a.node(sh, addrs[e[0]])
			if st.succ == nil {
				st.succ = make(map[packet.Addr]struct{})
			}
			st.succ[addrs[e[1]]] = struct{}{}
		}
		sh.mu.Unlock()
	}
	a.snapMu.RUnlock()
	for i, r := range s.Routers {
		set := make([]packet.Addr, len(r.Addrs))
		for j, as := range r.Addrs {
			addr, err := packet.ParseAddr(as)
			if err != nil {
				return fmt.Errorf("atlas: router %d: %w", i, err)
			}
			set[j] = addr
		}
		a.AddAliasSet(set)
	}
	a.mu.Lock()
	for _, d := range s.Diamonds {
		k := censusKey{div: d.Div, conv: d.Conv}
		e, ok := a.census[k]
		if !ok {
			e = &censusEntry{pairs: make(map[int]struct{}, len(d.Pairs))}
			a.census[k] = e
		}
		e.count += d.Count
		for _, p := range d.Pairs {
			e.pairs[p] = struct{}{}
		}
		if d.MaxWidth > e.maxWidth {
			e.maxWidth = d.MaxWidth
		}
		if d.MaxLength > e.maxLength {
			e.maxLength = d.MaxLength
		}
	}
	for _, p := range s.Pairs {
		a.pairs[p.Pair] = pairInfo{src: p.Src, dst: p.Dst}
	}
	a.mu.Unlock()
	return nil
}

// Save persists the atlas snapshot atomically. The write streams
// through Atlas.WriteTo — byte-identical to the materialized
// traceio.WriteAtlasFile(path, a.Snapshot()) but without ever holding
// the full snapshot in memory.
func (a *Atlas) Save(path string) error {
	return traceio.WriteFileAtomicStream(path, 0o644, func(w io.Writer) error {
		_, err := a.WriteTo(w)
		return err
	})
}

// Load reads a snapshot file back into a queryable atlas.
func Load(path string, opt Options) (*Atlas, error) {
	s, err := traceio.ReadAtlasFile(path)
	if err != nil {
		return nil, err
	}
	return FromSnapshot(s, opt)
}

// Stats summarizes the atlas for CLI output.
type Stats struct {
	Pairs    int
	Nodes    int
	Edges    int
	Routers  int
	Diamonds int
}

// ComputeStats counts the atlas's merged content. It performs a full
// canonical merge; callers that already hold a snapshot should use
// StatsOf instead.
func (a *Atlas) ComputeStats() Stats {
	return StatsOf(a.Snapshot())
}

// StatsOf derives the stats from an already-built snapshot, avoiding a
// second merge.
func StatsOf(s *traceio.AtlasSnapshot) Stats {
	return Stats{
		Pairs: len(s.Pairs), Nodes: len(s.Nodes), Edges: len(s.Edges),
		Routers: len(s.Routers), Diamonds: len(s.Diamonds),
	}
}

// String renders the stats.
func (s Stats) String() string {
	return fmt.Sprintf("atlas: %d pairs, %d addresses, %d links, %d routers, %d distinct diamonds",
		s.Pairs, s.Nodes, s.Edges, s.Routers, s.Diamonds)
}
