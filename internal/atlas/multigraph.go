package atlas

import (
	"sort"

	"mmlpt/internal/packet"
	"mmlpt/internal/topo"
)

// NodeID indexes MultiGraph nodes. It aliases topo.VertexID because the
// MultiGraph is a keying layer over the same topo.DAG adjacency core the
// per-trace Graph uses.
type NodeID = topo.VertexID

// MultiGraph is the merged multilevel view: one node per interface
// address (stars have none and are absent), edges wherever any trace
// observed a link, and hop positions kept as per-source annotations —
// cross-vantage-point merges have no global hop alignment, so hops are
// facts about (pair, address), not about the node.
type MultiGraph struct {
	dag    topo.DAG
	addrs  []packet.Addr
	byAddr map[packet.Addr]NodeID
	seen   [][]Obs
}

// NumNodes returns the number of addresses.
func (m *MultiGraph) NumNodes() int { return len(m.addrs) }

// NumEdges returns the number of merged links.
func (m *MultiGraph) NumEdges() int { return m.dag.NumEdges() }

// Addr returns the address of node id.
func (m *MultiGraph) Addr(id NodeID) packet.Addr { return m.addrs[id] }

// Lookup returns the node for an address, or topo.None.
func (m *MultiGraph) Lookup(addr packet.Addr) NodeID {
	if id, ok := m.byAddr[addr]; ok {
		return id
	}
	return topo.None
}

// Seen returns the sorted (pair, hop) observations of node id.
func (m *MultiGraph) Seen(id NodeID) []Obs { return m.seen[id] }

// Succ returns the successors of node id, in ascending address order.
func (m *MultiGraph) Succ(id NodeID) []NodeID { return m.dag.Succ(id) }

// Pred returns the predecessors of node id.
func (m *MultiGraph) Pred(id NodeID) []NodeID { return m.dag.Pred(id) }

// OutDegree returns the number of successors of node id.
func (m *MultiGraph) OutDegree(id NodeID) int { return m.dag.OutDegree(id) }

// InDegree returns the number of predecessors of node id.
func (m *MultiGraph) InDegree(id NodeID) int { return m.dag.InDegree(id) }

// Merged collapses the ingestion shards into one MultiGraph. This is
// the canonical-order merge every snapshot and query goes through:
// addresses are visited ascending and each node's successor list is
// built sorted, so the result is identical for every shard layout,
// worker count, and ingestion order.
func (a *Atlas) Merged() *MultiGraph {
	type flat struct {
		seen []Obs
		succ []packet.Addr
	}
	nodes := make(map[packet.Addr]flat)
	a.snapMu.RLock()
	for _, s := range a.shards {
		s.mu.Lock()
		for addr, n := range s.nodes {
			succ := make([]packet.Addr, 0, len(n.succ))
			for w := range n.succ {
				succ = append(succ, w)
			}
			if n.dirty {
				n.seen = sortedObs(n.seen)
				n.dirty = false
			}
			nodes[addr] = flat{seen: append([]Obs(nil), n.seen...), succ: succ}
		}
		s.mu.Unlock()
	}
	a.snapMu.RUnlock()
	addrs := make([]packet.Addr, 0, len(nodes))
	for addr := range nodes {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	m := &MultiGraph{
		addrs:  addrs,
		byAddr: make(map[packet.Addr]NodeID, len(addrs)),
		seen:   make([][]Obs, 0, len(addrs)),
	}
	for _, addr := range addrs {
		id := m.dag.AddVertex()
		m.byAddr[addr] = id
		m.seen = append(m.seen, nodes[addr].seen)
	}
	for _, addr := range addrs {
		u := m.byAddr[addr]
		succ := nodes[addr].succ
		sort.Slice(succ, func(i, j int) bool { return succ[i] < succ[j] })
		for _, wa := range succ {
			// An edge endpoint always has a node: AddGraph records an
			// observation for every responsive vertex before its edges.
			if w, ok := m.byAddr[wa]; ok {
				m.dag.AddEdge(u, w)
			}
		}
	}
	return m
}
