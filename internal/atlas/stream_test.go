package atlas

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"mmlpt/internal/fakeroute"
	"mmlpt/internal/nprand"
	"mmlpt/internal/packet"
	"mmlpt/internal/topo"
	"mmlpt/internal/traceio"
)

// genAtlas synthesizes a randomized survey-shaped atlas with the PR 5
// topology generator: multipath routes of chained diamonds, per-hop
// alias sets, a census entry and a pair identity per route.
// Deterministic in (seed, pairs, opt).
func genAtlas(tb testing.TB, seed uint64, pairs int, opt Options) *Atlas {
	tb.Helper()
	a := New(opt)
	rng := nprand.New(seed)
	alloc := fakeroute.NewAddrAllocator(packet.AddrFrom4(10, 0, 0, 1))
	dstAlloc := fakeroute.NewAddrAllocator(packet.AddrFrom4(203, 0, 113, 1))
	spec := fakeroute.GenSpec{
		Diamonds: 2, WidthMin: 2, WidthMax: 4, LenMin: 2, LenMax: 4,
		MeshProb: 0.3, AsymProb: 0.3, StarProb: 0.1,
	}
	for i := 0; i < pairs; i++ {
		dst := dstAlloc.Next()
		gp := fakeroute.GenerateMultipath(rng.Fork(uint64(i)), alloc, dst, spec)
		g := gp.Graph
		a.AddGraph(i, g)
		byHop := make(map[int][]packet.Addr)
		var first, last packet.Addr
		for vi := range g.Vertices {
			v := &g.Vertices[vi]
			if v.Addr == topo.StarAddr {
				continue
			}
			if first == 0 {
				first = v.Addr
			}
			last = v.Addr
			byHop[v.Hop] = append(byHop[v.Hop], v.Addr)
		}
		for _, set := range byHop {
			if len(set) >= 2 {
				a.AddAliasSet(set)
			}
		}
		a.AddDiamond(i, traceio.SurveyDiamond{
			Div: first.String(), Conv: last.String(), MaxWidth: 3, MaxLength: 3,
		})
		err := a.MergeSnapshot(&traceio.AtlasSnapshot{
			Pairs: []traceio.AtlasPair{{Pair: i, Src: "192.0.2.1", Dst: dst.String()}},
		})
		if err != nil {
			tb.Fatal(err)
		}
	}
	return a
}

func writeTo(tb testing.TB, a *Atlas) []byte {
	tb.Helper()
	var buf bytes.Buffer
	n, err := a.WriteTo(&buf)
	if err != nil {
		tb.Fatal(err)
	}
	if n != int64(buf.Len()) {
		tb.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

// The tentpole pin: the streaming encode is byte-identical to the
// pre-existing materialized path (EncodeAtlas over Snapshot) — for the
// empty atlas, a handmade atlas, and a generator-survey atlas.
func TestWriteToMatchesMaterializedEncode(t *testing.T) {
	t.Parallel()
	cases := map[string]*Atlas{
		"empty": New(Options{}),
		"gen":   genAtlas(t, 11, 40, Options{}),
	}
	hand := New(Options{})
	hand.AddGraph(0, chain(0xa000001, 0, 0xa000003))
	hand.AddGraph(1, chain(0xa000003, 0xa000001))
	hand.AddAliasSet([]packet.Addr{0xa000001, 0xa000003})
	cases["hand"] = hand

	for name, a := range cases {
		var want bytes.Buffer
		if err := traceio.EncodeAtlas(&want, a.Snapshot()); err != nil {
			t.Fatal(err)
		}
		if got := writeTo(t, a); !bytes.Equal(got, want.Bytes()) {
			t.Errorf("%s: WriteTo differs from EncodeAtlas(Snapshot())", name)
		}
	}
}

// The byte-determinism property: every merge worker count x ingestion
// shard count produces identical snapshot bytes, across randomized
// generator topologies.
func TestWriteToDeterministicAcrossWorkersAndShards(t *testing.T) {
	t.Parallel()
	for _, seed := range []uint64{1, 2, 3} {
		var want []byte
		for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			for _, shards := range []int{1, 16, 64} {
				a := genAtlas(t, seed, 25, Options{Shards: shards, MergeWorkers: workers})
				got := writeTo(t, a)
				if want == nil {
					want = got
					continue
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("seed %d: bytes differ at workers=%d shards=%d", seed, workers, shards)
				}
			}
		}
	}
}

// saveDelta persists one atlas to dir and returns the path.
func saveDelta(tb testing.TB, dir, name string, a *Atlas) string {
	tb.Helper()
	path := filepath.Join(dir, name)
	if err := a.Save(path); err != nil {
		tb.Fatal(err)
	}
	return path
}

// The compaction pin: the streaming k-way Compact is byte-identical to
// the pre-existing path — decode every input, MergeSnapshot it into a
// fresh atlas, encode materialized. Inputs overlap addresses, routers,
// census entries and pair indices; tested serial and parallel, with and
// without a base.
func TestCompactMatchesMergeSnapshotPath(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	// Same allocator bases across seeds: the three inputs share many
	// addresses, so merging actually unions rather than concatenates.
	inputs := []string{
		saveDelta(t, dir, "in0.atlas", genAtlas(t, 5, 30, Options{})),
		saveDelta(t, dir, "in1.atlas", genAtlas(t, 6, 20, Options{})),
		saveDelta(t, dir, "in2.atlas", genAtlas(t, 7, 10, Options{})),
	}

	want := New(Options{})
	for _, p := range inputs {
		s, err := traceio.ReadAtlasFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := want.MergeSnapshot(s); err != nil {
			t.Fatal(err)
		}
	}
	var wantBuf bytes.Buffer
	if err := traceio.EncodeAtlas(&wantBuf, want.Snapshot()); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		for _, withBase := range []bool{true, false} {
			name := fmt.Sprintf("out_w%d_b%v.atlas", workers, withBase)
			out := filepath.Join(dir, name)
			base, deltas := "", inputs
			if withBase {
				base, deltas = inputs[0], inputs[1:]
			}
			err := Compact(out, base, deltas, Options{MergeWorkers: workers})
			if err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, wantBuf.Bytes()) {
				t.Fatalf("workers=%d base=%v: compact bytes differ from MergeSnapshot path", workers, withBase)
			}
		}
	}
}

func TestCompactEmptyInput(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	in := saveDelta(t, dir, "empty.atlas", New(Options{}))
	out := filepath.Join(dir, "out.atlas")
	if err := Compact(out, "", []string{in}, Options{}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := traceio.EncodeAtlas(&want, New(Options{}).Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("compacting an empty input differs from the empty encode")
	}
}

// Census and Routers sort outside the atlas lock; a concurrent ingester
// must neither race with them (run with -race) nor corrupt their
// canonical order.
func TestQueriesDuringConcurrentIngest(t *testing.T) {
	t.Parallel()
	a := New(Options{Shards: 4})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			base := uint32(0xa000000 + i*8)
			a.AddGraph(i, chain(base, base+1, base+2))
			a.AddAliasSet([]packet.Addr{packet.Addr(base), packet.Addr(base + 1)})
			a.AddDiamond(i, traceio.SurveyDiamond{Div: "10.0.0.1", Conv: "10.0.0.2", MaxWidth: 2, MaxLength: 2})
		}
	}()
	for i := 0; i < 200; i++ {
		for _, g := range a.Routers() {
			for j := 1; j < len(g); j++ {
				if g[j-1] >= g[j] {
					t.Errorf("router group out of order: %v", g)
				}
			}
		}
		ds := a.Census()
		for j := 1; j < len(ds); j++ {
			if ds[j-1].Div > ds[j].Div || (ds[j-1].Div == ds[j].Div && ds[j-1].Conv >= ds[j].Conv) {
				t.Errorf("census out of order at %d", j)
			}
		}
		a.Provenance(packet.Addr(0xa000000 + uint32(i)*8))
	}
	close(stop)
	wg.Wait()
	// The atlas must still produce a canonical snapshot after the mixed
	// load: ingest everything again into a fresh atlas and compare.
	b := New(Options{Shards: 1})
	if err := b.MergeSnapshot(a.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(writeTo(t, a), writeTo(t, b)) {
		t.Fatal("post-ingest snapshot not canonical")
	}
}

// Provenance canonicalizes a node's observations once and then serves
// copies until new observations arrive.
func TestProvenanceLazyCanonicalization(t *testing.T) {
	a := New(Options{})
	a.AddGraph(3, chain(0xa000001, 0xa000002))
	a.AddGraph(1, chain(0xa000001, 0xa000002))
	a.AddGraph(1, chain(0xa000001, 0xa000002)) // duplicate: must dedup
	addr := packet.Addr(0xa000001)

	want := []Obs{{Pair: 1, Hop: 0}, {Pair: 3, Hop: 0}}
	got, ok := a.Provenance(addr)
	if !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("Provenance = %v, %v; want %v, true", got, ok, want)
	}
	// Steady state: no re-sort, just the defensive copy.
	allocs := testing.AllocsPerRun(100, func() { a.Provenance(addr) })
	if allocs > 2 {
		t.Errorf("steady-state Provenance allocates %.0f times per call; want <= 2 (copy only)", allocs)
	}
	// New observations re-dirty the node and are folded back in sorted.
	a.AddGraph(0, chain(0xa000001))
	want = append([]Obs{{Pair: 0, Hop: 0}}, want...)
	if got, _ := a.Provenance(addr); !reflect.DeepEqual(got, want) {
		t.Fatalf("after new obs: Provenance = %v; want %v", got, want)
	}
}

// FuzzEncodeAtlasStream cross-checks the two encode paths on arbitrary
// snapshot bytes: whenever the input decodes, rebuilding an atlas from
// it must stream exactly the bytes the materialized encoder produces.
func FuzzEncodeAtlasStream(f *testing.F) {
	var seed bytes.Buffer
	if err := traceio.EncodeAtlas(&seed, genAtlas(f, 9, 3, Options{}).Snapshot()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	var empty bytes.Buffer
	if err := traceio.EncodeAtlas(&empty, New(Options{}).Snapshot()); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := traceio.DecodeAtlas(bytes.NewReader(data))
		if err != nil {
			t.Skip()
		}
		a, err := FromSnapshot(s, Options{MergeWorkers: 2})
		if err != nil {
			t.Skip()
		}
		var want bytes.Buffer
		if err := traceio.EncodeAtlas(&want, a.Snapshot()); err != nil {
			t.Fatalf("materialized encode: %v", err)
		}
		var got bytes.Buffer
		if _, err := a.WriteTo(&got); err != nil {
			t.Fatalf("streamed encode: %v", err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatal("streamed and materialized encodes differ")
		}
	})
}
