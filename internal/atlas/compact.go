// Streaming compaction: merge a base snapshot and a series of deltas
// into one full snapshot without ever holding a decoded snapshot in
// memory. The v2 layout makes this a k-way merge: within one file the
// shard fences ascend and nodes within a shard ascend, so each input is
// a single sorted stream of nodes readable one shard block at a time
// through AtlasReader.ReadShard cursors. Two passes over those cursors
// — one to fix the output header totals and partition fences, one to
// build and emit the merged blocks — bound peak memory to a few shard
// blocks per input regardless of how many addresses the inputs hold.
//
// Trust model: successor targets are not validated against the global
// node set (the old decode-everything path did that implicitly). This
// matches AtlasReader's point reads, which also trust a file's edges;
// a well-formed snapshot cannot name a successor it has no node for.
package atlas

import (
	"fmt"
	"io"
	"runtime"
	"slices"
	"sort"

	"mmlpt/internal/alias"
	"mmlpt/internal/packet"
	"mmlpt/internal/traceio"
)

// Compact merges a base snapshot (optional: "" starts from empty) and a
// series of delta snapshots into one full snapshot at outPath, written
// atomically in the current encoding. This is how a long-running
// survey's serving view advances: publish cheap deltas, compact them
// into the base out of band, Swap the service to the compacted file.
// The output is byte-identical to replaying every input through
// MergeSnapshot and saving the result.
func Compact(outPath, basePath string, deltaPaths []string, opt Options) error {
	return CompactWithProgress(outPath, basePath, deltaPaths, opt, nil)
}

// CompactWithProgress is Compact with a progress callback (may be nil);
// each call is one log-style line, printf-formatted without a newline.
func CompactWithProgress(outPath, basePath string, deltaPaths []string, opt Options, progress func(format string, args ...any)) error {
	if progress == nil {
		progress = func(string, ...any) {}
	}
	paths := make([]string, 0, 1+len(deltaPaths))
	if basePath != "" {
		paths = append(paths, basePath)
	}
	paths = append(paths, deltaPaths...)

	readers := make([]*traceio.AtlasReader, 0, len(paths))
	defer func() {
		for _, r := range readers {
			r.Close()
		}
	}()
	for _, p := range paths {
		r, err := traceio.OpenAtlasFile(p)
		if err != nil {
			return fmt.Errorf("compact: %s: %w", p, err)
		}
		readers = append(readers, r)
		h := r.Header()
		progress("input %s: %d nodes, %d edges, %d routers", p, h.Nodes, h.Edges, h.Routers)
	}

	workers := opt.MergeWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	plan, err := compactPlan(paths, readers, workers > 1)
	if err != nil {
		return err
	}
	progress("plan: %d nodes, %d edges, %d routers, %d shards",
		plan.nodes, plan.edges, len(plan.routers), plan.parts)

	err = traceio.WriteFileAtomicStream(outPath, 0o644, func(w io.Writer) error {
		return compactEmit(w, paths, readers, plan, workers, progress)
	})
	if err != nil {
		return fmt.Errorf("compact: %s: %w", outPath, err)
	}
	return nil
}

// compactCursor walks one input's nodes in global canonical order, one
// shard block resident at a time, optionally decoding the next block in
// a depth-1 prefetch goroutine while the current one is consumed.
type compactCursor struct {
	r     *traceio.AtlasReader
	path  string
	next  int // next shard index to request
	ahead chan prefetched
	nodes []traceio.AtlasNodeV2
	pos   int
	addr  packet.Addr
	done  bool
	// onShard, when set, observes every loaded shard (pass 1 collects
	// router sections this way, since routers live inside blocks).
	onShard func(*traceio.AtlasShard) error
}

type prefetched struct {
	sh  *traceio.AtlasShard
	err error
}

func newCompactCursor(r *traceio.AtlasReader, path string, prefetch bool, onShard func(*traceio.AtlasShard) error) *compactCursor {
	c := &compactCursor{r: r, path: path, onShard: onShard}
	if prefetch {
		c.ahead = make(chan prefetched, 1)
	}
	return c
}

func (c *compactCursor) fetch(i int) (*traceio.AtlasShard, error) {
	if c.ahead != nil {
		if i > 0 {
			p := <-c.ahead
			if i+1 < c.r.NumShards() {
				go func(j int) {
					sh, err := c.r.ReadShard(j)
					c.ahead <- prefetched{sh, err}
				}(i + 1)
			}
			return p.sh, p.err
		}
		if c.r.NumShards() > 1 {
			go func() {
				sh, err := c.r.ReadShard(1)
				c.ahead <- prefetched{sh, err}
			}()
		}
	}
	return c.r.ReadShard(i)
}

// load advances to the next non-empty shard block, or marks the cursor
// done.
func (c *compactCursor) load() error {
	for c.next < c.r.NumShards() {
		sh, err := c.fetch(c.next)
		c.next++
		if err != nil {
			return fmt.Errorf("compact: %s: %w", c.path, err)
		}
		if c.onShard != nil {
			if err := c.onShard(sh); err != nil {
				return err
			}
		}
		if len(sh.Nodes) == 0 {
			continue
		}
		c.nodes, c.pos = sh.Nodes, 0
		return c.parse()
	}
	c.done = true
	return nil
}

func (c *compactCursor) parse() error {
	addr, err := packet.ParseAddr(c.nodes[c.pos].Addr)
	if err != nil {
		return fmt.Errorf("compact: %s: node %q: %w", c.path, c.nodes[c.pos].Addr, err)
	}
	c.addr = addr
	return nil
}

func (c *compactCursor) advance() error {
	c.pos++
	if c.pos < len(c.nodes) {
		return c.parse()
	}
	c.nodes = nil
	return c.load()
}

// drain abandons the cursor's prefetch goroutine, if one is in flight,
// so a failed pass does not leak it.
func (c *compactCursor) drain() {
	if c.ahead == nil || c.done {
		return
	}
	if c.next > 0 && c.next < c.r.NumShards() {
		<-c.ahead
	}
}

// compactMerge runs the k-way merge: fn sees each distinct address once,
// ascending, with the per-input node entries carrying it in input order.
func compactMerge(cursors []*compactCursor, fn func(addr packet.Addr, group []*traceio.AtlasNodeV2) error) error {
	for _, c := range cursors {
		if err := c.load(); err != nil {
			return err
		}
	}
	group := make([]*traceio.AtlasNodeV2, 0, len(cursors))
	for {
		var min packet.Addr
		live := false
		for _, c := range cursors {
			if !c.done && (!live || c.addr < min) {
				min, live = c.addr, true
			}
		}
		if !live {
			return nil
		}
		group = group[:0]
		for _, c := range cursors {
			if !c.done && c.addr == min {
				group = append(group, &c.nodes[c.pos])
			}
		}
		if err := fn(min, group); err != nil {
			return err
		}
		for _, c := range cursors {
			if !c.done && c.addr == min {
				if err := c.advance(); err != nil {
					return err
				}
			}
		}
	}
}

// compactState is everything pass 1 fixes before a byte is written:
// exact totals, partition fences, and the small sections.
type compactState struct {
	nodes, edges, parts int
	mins                []packet.Addr

	pairs    []traceio.AtlasPair
	diamonds []traceio.AtlasDiamond

	routers       []traceio.AtlasRouter
	routersByPart [][]int
	routerOf      map[packet.Addr]string
}

func compactPlan(paths []string, readers []*traceio.AtlasReader, prefetch bool) (*compactState, error) {
	st := &compactState{}
	union := alias.NewUnion()

	// Small sections stream section-by-section: pairs overwrite by
	// index with later inputs winning, diamond entries sum counts and
	// union pair sets, router sets union transitively — exactly the
	// MergeSnapshot semantics.
	pairs := make(map[int]traceio.AtlasPair)
	census := make(map[censusKey]*censusEntry)
	for i, r := range readers {
		for _, p := range r.Pairs() {
			pairs[p.Pair] = p
		}
		ds, err := r.ReadDiamonds()
		if err != nil {
			return nil, fmt.Errorf("compact: %s: %w", paths[i], err)
		}
		for _, d := range ds {
			k := censusKey{div: d.Div, conv: d.Conv}
			e, ok := census[k]
			if !ok {
				e = &censusEntry{pairs: make(map[int]struct{}, len(d.Pairs))}
				census[k] = e
			}
			e.count += d.Count
			for _, p := range d.Pairs {
				e.pairs[p] = struct{}{}
			}
			if d.MaxWidth > e.maxWidth {
				e.maxWidth = d.MaxWidth
			}
			if d.MaxLength > e.maxLength {
				e.maxLength = d.MaxLength
			}
		}
	}

	// Pass 1 over the node streams: count merged nodes and edges,
	// record a fence at every partition boundary, and collect the
	// router sections the shard blocks carry.
	cursors := make([]*compactCursor, len(readers))
	for i, r := range readers {
		path := paths[i]
		cursors[i] = newCompactCursor(r, path, prefetch, func(sh *traceio.AtlasShard) error {
			for _, rt := range sh.Routers {
				set := make([]packet.Addr, len(rt.Addrs))
				for j, as := range rt.Addrs {
					addr, err := packet.ParseAddr(as)
					if err != nil {
						return fmt.Errorf("compact: %s: router address %q: %w", path, as, err)
					}
					set[j] = addr
				}
				union.AddSet(set)
			}
			return nil
		})
	}
	target := traceio.AtlasCodec{}.AtlasShardTarget()
	var canon canonChecker
	var succ []packet.Addr
	err := compactMerge(cursors, func(addr packet.Addr, group []*traceio.AtlasNodeV2) error {
		if st.nodes%target == 0 {
			st.mins = append(st.mins, addr)
		}
		st.nodes++
		if len(group) == 1 && canon.succs(group[0].Succ) {
			// Single contributor with an already-canonical successor
			// list: its length is the merged edge count, no
			// materialization needed. Pass 2 makes the same check, so
			// the two passes always agree on the total.
			st.edges += len(group[0].Succ)
			return nil
		}
		succ = succ[:0]
		for _, n := range group {
			for _, s := range n.Succ {
				a, err := packet.ParseAddr(s)
				if err != nil {
					return fmt.Errorf("compact: successor %q: %w", s, err)
				}
				succ = append(succ, a)
			}
		}
		st.edges += len(dedupAddrs(succ))
		return nil
	})
	if err != nil {
		for _, c := range cursors {
			c.drain()
		}
		return nil, err
	}
	st.parts = len(st.mins)
	if st.parts == 0 {
		st.parts = 1
		st.mins = make([]packet.Addr, 1)
	}

	// Freeze the small sections in canonical order.
	idxs := make([]int, 0, len(pairs))
	for i := range pairs {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		st.pairs = append(st.pairs, pairs[i])
	}
	st.diamonds = make([]traceio.AtlasDiamond, 0, len(census))
	for k, e := range census {
		ps := make([]int, 0, len(e.pairs))
		for p := range e.pairs {
			ps = append(ps, p)
		}
		sort.Ints(ps)
		st.diamonds = append(st.diamonds, traceio.AtlasDiamond{
			Div: k.div, Conv: k.conv, Count: e.count, Pairs: ps,
			MaxWidth: e.maxWidth, MaxLength: e.maxLength,
		})
	}
	sort.Slice(st.diamonds, func(i, j int) bool {
		if st.diamonds[i].Div != st.diamonds[j].Div {
			return st.diamonds[i].Div < st.diamonds[j].Div
		}
		return st.diamonds[i].Conv < st.diamonds[j].Conv
	})

	groups := union.Groups()
	st.routers = make([]traceio.AtlasRouter, len(groups))
	st.routerOf = make(map[packet.Addr]string)
	st.routersByPart = make([][]int, st.parts)
	var scratch []byte
	for i, g := range groups {
		rt := traceio.AtlasRouter{Addrs: make([]string, len(g))}
		for j, addr := range g {
			scratch = addr.AppendText(scratch[:0])
			rt.Addrs[j] = string(scratch)
		}
		st.routers[i] = rt
		for _, addr := range g {
			st.routerOf[addr] = rt.Addrs[0]
		}
		p := traceio.AtlasShardForAddr(st.mins, g[0])
		st.routersByPart[p] = append(st.routersByPart[p], i)
	}
	return st, nil
}

// dedupAddrs sorts addrs and removes adjacent duplicates in place.
func dedupAddrs(addrs []packet.Addr) []packet.Addr {
	slices.Sort(addrs)
	out := addrs[:0]
	for i, a := range addrs {
		if i == 0 || a != addrs[i-1] {
			out = append(out, a)
		}
	}
	return out
}

// canonChecker verifies, allocation-free, that a decoded node already
// is in the merged canonical form — the overwhelmingly common case when
// deltas are disjoint and inputs are our own encoder's output. Nodes
// that pass skip the parse/sort/re-render machinery entirely; nodes
// that fail (non-canonical strings like "010.0.0.1", unsorted lists,
// duplicates) fall back to the general path, so the output bytes never
// depend on which route a node took.
type canonChecker struct {
	scratch []byte
}

// addr parses s and reports whether s is its value's canonical render.
func (c *canonChecker) addr(s string) (packet.Addr, bool, error) {
	a, err := packet.ParseAddr(s)
	if err != nil {
		return 0, false, err
	}
	c.scratch = a.AppendText(c.scratch[:0])
	return a, string(c.scratch) == s, nil
}

// succs reports whether a successor list is canonical: every string the
// canonical render of its value, values strictly ascending. Parse
// errors surface as !ok; the general path re-parses and reports them.
func (c *canonChecker) succs(succ []string) bool {
	var prev packet.Addr
	for i, s := range succ {
		a, ok, err := c.addr(s)
		if err != nil || !ok {
			return false
		}
		if i > 0 && a <= prev {
			return false
		}
		prev = a
	}
	return true
}

// seen reports whether an observation list is canonical: strictly
// ascending (pair, hop), hence deduped.
func (c *canonChecker) seen(seen [][2]int) bool {
	for i := 1; i < len(seen); i++ {
		a, b := seen[i-1], seen[i]
		if a[0] > b[0] || (a[0] == b[0] && a[1] >= b[1]) {
			return false
		}
	}
	return true
}

// compactEmit is pass 2: re-merge the node streams, build each output
// block, and stream it out — with workers > 1, block JSON rendering is
// pipelined through a bounded in-flight window so the (serial) merge,
// the (parallel) marshal and the (serial, ordered) write overlap.
func compactEmit(w io.Writer, paths []string, readers []*traceio.AtlasReader, st *compactState, workers int, progress func(format string, args ...any)) error {
	enc, err := traceio.AtlasCodec{}.NewAtlasStreamEncoder(w, traceio.AtlasStreamSpec{
		Pairs: st.pairs, Nodes: st.nodes, Edges: st.edges,
		Routers: len(st.routers), Shards: st.parts, Diamonds: st.diamonds,
	})
	if err != nil {
		return err
	}

	sink := newBlockSink(enc, workers)
	cursors := make([]*compactCursor, len(readers))
	for i, r := range readers {
		cursors[i] = newCompactCursor(r, paths[i], workers > 1, nil)
	}

	part := 0
	var blk *traceio.AtlasShard
	startBlock := func(p int) {
		lo, hi := traceio.AtlasCodec{}.AtlasBlockOf(p, st.nodes)
		blk = &traceio.AtlasShard{
			Header: traceio.AtlasShardHeader{Shard: p, Nodes: hi - lo, Routers: len(st.routersByPart[p])},
		}
		if hi > lo {
			blk.Nodes = make([]traceio.AtlasNodeV2, 0, hi-lo)
		}
	}
	finishBlock := func() error {
		if len(blk.Nodes) > 0 {
			blk.Header.Min = blk.Nodes[0].Addr
			blk.Header.Max = blk.Nodes[len(blk.Nodes)-1].Addr
		}
		for _, ri := range st.routersByPart[part] {
			blk.Routers = append(blk.Routers, st.routers[ri])
		}
		err := sink.emit(blk)
		progress("wrote shard %d/%d", part+1, st.parts)
		part++
		blk = nil
		return err
	}

	startBlock(0)
	var canon canonChecker
	var seen []Obs
	var succ []packet.Addr
	var scratch []byte
	err = compactMerge(cursors, func(addr packet.Addr, group []*traceio.AtlasNodeV2) error {
		if len(blk.Nodes) == blk.Header.Nodes {
			if err := finishBlock(); err != nil {
				return err
			}
			startBlock(part)
		}
		if len(group) == 1 {
			// Already-canonical single-contributor node: reuse its
			// strings and slices as-is (the decoded shard is dropped
			// right after, so nothing aliases them). Only the router
			// assignment is recomputed — it reflects the merged union,
			// not any one input.
			in := group[0]
			if a, ok, err := canon.addr(in.Addr); err == nil && ok && a == addr &&
				canon.seen(in.Seen) && canon.succs(in.Succ) {
				n := traceio.AtlasNodeV2{Addr: in.Addr, Router: st.routerOf[addr]}
				if len(in.Seen) > 0 {
					n.Seen = in.Seen
				}
				if len(in.Succ) > 0 {
					n.Succ = in.Succ
				}
				blk.Nodes = append(blk.Nodes, n)
				return nil
			}
		}
		scratch = addr.AppendText(scratch[:0])
		n := traceio.AtlasNodeV2{Addr: string(scratch), Router: st.routerOf[addr]}
		seen, succ = seen[:0], succ[:0]
		for _, in := range group {
			for _, o := range in.Seen {
				seen = append(seen, Obs{Pair: o[0], Hop: o[1]})
			}
			for _, s := range in.Succ {
				a, err := packet.ParseAddr(s)
				if err != nil {
					return fmt.Errorf("compact: successor %q: %w", s, err)
				}
				succ = append(succ, a)
			}
		}
		if len(seen) > 0 {
			canon := sortedObs(seen)
			n.Seen = make([][2]int, len(canon))
			for i, o := range canon {
				n.Seen[i] = [2]int{o.Pair, o.Hop}
			}
			seen = seen[:0]
		}
		if u := dedupAddrs(succ); len(u) > 0 {
			// Re-render rather than reuse the input strings: parsing and
			// re-rendering is what canonicalizes the bytes.
			n.Succ = make([]string, len(u))
			for i, a := range u {
				scratch = a.AppendText(scratch[:0])
				n.Succ[i] = string(scratch)
			}
		}
		blk.Nodes = append(blk.Nodes, n)
		return nil
	})
	if err != nil {
		for _, c := range cursors {
			c.drain()
		}
		sink.abort()
		return err
	}
	for part < st.parts {
		if blk == nil {
			startBlock(part)
		}
		if err := finishBlock(); err != nil {
			return err
		}
	}
	if err := sink.wait(); err != nil {
		return err
	}
	return enc.Finish()
}

// blockSink writes finished blocks to the stream encoder. With more
// than one worker it renders block JSON in parallel goroutines while a
// dedicated writer drains them in submission order; the bounded jobs
// channel keeps at most a window of blocks in memory.
type blockSink struct {
	enc     *traceio.AtlasStreamEncoder
	jobs    chan *blockJob
	done    chan struct{}
	err     error // writer-side error, read after done closes
	aborted bool
}

type blockJob struct {
	blk   *traceio.AtlasShard
	raw   []byte
	hdr   traceio.AtlasShardHeader
	edges int
	err   error
	ready chan struct{}
}

func newBlockSink(enc *traceio.AtlasStreamEncoder, workers int) *blockSink {
	s := &blockSink{enc: enc}
	if workers <= 1 {
		return s
	}
	s.jobs = make(chan *blockJob, workers)
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		for j := range s.jobs {
			<-j.ready
			if s.err != nil {
				continue
			}
			if j.err != nil {
				s.err = j.err
				continue
			}
			s.err = s.enc.WriteEncodedBlock(j.raw, j.hdr, j.edges)
		}
	}()
	return s
}

func (s *blockSink) emit(blk *traceio.AtlasShard) error {
	if s.jobs == nil {
		return s.enc.WriteBlock(blk)
	}
	j := &blockJob{blk: blk, hdr: blk.Header, ready: make(chan struct{})}
	go func() {
		defer close(j.ready)
		j.raw, j.edges, j.err = traceio.AppendAtlasShardBlock(nil, j.blk)
	}()
	s.jobs <- j
	return nil
}

func (s *blockSink) wait() error {
	if s.jobs == nil {
		return nil
	}
	close(s.jobs)
	<-s.done
	return s.err
}

func (s *blockSink) abort() {
	if s.jobs == nil || s.aborted {
		return
	}
	s.aborted = true
	close(s.jobs)
	<-s.done
}
