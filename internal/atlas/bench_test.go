package atlas

import (
	"fmt"
	"sync"
	"testing"

	"mmlpt/internal/topo"
)

func benchGraphs(n int) []*topo.Graph {
	gs := make([]*topo.Graph, n)
	for i := 0; i < n; i++ {
		// Paths share a trunk (addresses 1..8) and diverge per pair,
		// approximating the survey's shared-core address reuse.
		addrs := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
		for h := 0; h < 8; h++ {
			addrs = append(addrs, uint32(1000+i*8+h))
		}
		gs[i] = chain(addrs...)
	}
	return gs
}

// BenchmarkAtlasIngest measures serial merge throughput plus snapshot.
func BenchmarkAtlasIngest(b *testing.B) {
	gs := benchGraphs(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := New(Options{})
		for p, g := range gs {
			a.AddGraph(p, g)
		}
		if s := a.Snapshot(); len(s.Nodes) == 0 {
			b.Fatal("empty snapshot")
		}
	}
	b.ReportMetric(float64(256*b.N)/b.Elapsed().Seconds(), "graphs/s")
}

// BenchmarkAtlasIngestParallel measures contended sharded ingestion.
func BenchmarkAtlasIngestParallel(b *testing.B) {
	gs := benchGraphs(256)
	for _, workers := range []int{4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a := New(Options{})
				var wg sync.WaitGroup
				per := (len(gs) + workers - 1) / workers
				for w := 0; w < workers; w++ {
					lo := w * per
					hi := lo + per
					if hi > len(gs) {
						hi = len(gs)
					}
					wg.Add(1)
					go func(lo, hi int) {
						defer wg.Done()
						for p := lo; p < hi; p++ {
							a.AddGraph(p, gs[p])
						}
					}(lo, hi)
				}
				wg.Wait()
			}
		})
	}
}
