// Shard-parallel streaming snapshot encode: the write-path counterpart
// of the serve layer's indexed reads. Where Snapshot() materializes the
// whole flat AtlasSnapshot (every address rendered to a string, every
// edge an index pair) before a single byte is written, WriteTo slices
// the canonical address order into the same partitions the v2 format
// fences — contiguous runs of AtlasCodec.AtlasShardTarget() nodes — and
// has a worker pool merge, sort, dedup and JSON-render each partition
// into a private block buffer. The coordinator hands finished blocks to
// the traceio stream encoder in partition order (par.Ordered), so the
// file's bytes are a pure function of atlas content: every worker
// count, ingestion-shard count and ingestion order produces identical
// output, and peak memory is a few blocks in flight, never the whole
// snapshot.
package atlas

import (
	"io"
	"slices"

	"mmlpt/internal/packet"
	"mmlpt/internal/par"
	"mmlpt/internal/traceio"
)

// WriteTo streams the atlas's canonical v2 snapshot encoding to w,
// byte-identical to traceio.EncodeAtlas(a.Snapshot()) by contract (and
// by test). It implements io.WriterTo. The encode holds the snapshot
// gate exclusively: concurrent ingestion blocks for its duration, which
// is what lets the counting pass, the emit pass and the lazy in-place
// provenance sorts observe one consistent state without per-node locks.
func (a *Atlas) WriteTo(w io.Writer) (int64, error) {
	a.snapMu.Lock()
	defer a.snapMu.Unlock()

	workers := a.mergeWorkers
	m := a.mergePlan()

	cw := &countingWriter{w: w}
	enc, err := traceio.AtlasCodec{}.NewAtlasStreamEncoder(cw, traceio.AtlasStreamSpec{
		Pairs: m.pairs, Nodes: len(m.addrs), Edges: m.edges,
		Routers: len(m.routers), Shards: m.parts, Diamonds: m.diamonds,
	})
	if err != nil {
		return cw.n, err
	}

	type block struct {
		raw   []byte
		hdr   traceio.AtlasShardHeader
		edges int
		err   error
	}
	var firstErr error
	par.Ordered(m.parts, workers, func(p int) block {
		blk, err := a.buildBlock(m, p)
		if err != nil {
			return block{err: err}
		}
		raw, edges, err := traceio.AppendAtlasShardBlock(nil, blk)
		return block{raw: raw, hdr: blk.Header, edges: edges, err: err}
	}, func(p int, b block) {
		if firstErr != nil {
			return
		}
		if b.err != nil {
			firstErr = b.err
			return
		}
		firstErr = enc.WriteEncodedBlock(b.raw, b.hdr, b.edges)
	})
	if firstErr != nil {
		return cw.n, firstErr
	}
	if err := enc.Finish(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// mergePlan is everything the streaming encode fixes before the first
// block: the full canonical address order, the partition fences derived
// from it, the small sections (pairs, routers, diamonds) and the exact
// totals the v2 header commits to.
type mergePlan struct {
	addrs []packet.Addr // every node address, ascending
	parts int           // number of v2 shard blocks
	edges int

	pairs    []traceio.AtlasPair
	diamonds []traceio.AtlasDiamond

	routers       []traceio.AtlasRouter // canonical order, members rendered
	routersByPart [][]int               // partition -> indices into routers
	routerOf      map[packet.Addr]string
}

// target reports the partition node-count target (the v2 default).
func (m *mergePlan) target() int { return traceio.AtlasCodec{}.AtlasShardTarget() }

// span returns partition p's [lo, hi) range of the canonical order.
func (m *mergePlan) span(p int) (lo, hi int) {
	return traceio.AtlasCodec{}.AtlasBlockOf(p, len(m.addrs))
}

// mergePlan collects the plan under the exclusive snapshot gate (held
// by the caller). Address collection reads the ingestion shards without
// their locks — writers are excluded — and the edge total is counted in
// parallel without materializing a single successor list.
func (a *Atlas) mergePlan() *mergePlan {
	m := &mergePlan{}

	total := 0
	for _, s := range a.shards {
		total += len(s.nodes)
	}
	m.addrs = make([]packet.Addr, 0, total)
	for _, s := range a.shards {
		for addr := range s.nodes {
			m.addrs = append(m.addrs, addr)
		}
	}
	slices.Sort(m.addrs)

	target := m.target()
	m.parts = (len(m.addrs) + target - 1) / target
	if m.parts == 0 {
		m.parts = 1
	}

	// Small sections: Routers and Census already produce canonical
	// order, and pair copying mirrors Snapshot exactly.
	m.pairs = a.sortedPairs()
	m.diamonds = a.Census()
	groups := a.Routers()
	m.routers = make([]traceio.AtlasRouter, len(groups))
	m.routerOf = make(map[packet.Addr]string)
	reps := make([]packet.Addr, len(groups))
	var scratch []byte
	for i, g := range groups {
		r := traceio.AtlasRouter{Addrs: make([]string, len(g))}
		for j, addr := range g {
			scratch = addr.AppendText(scratch[:0])
			r.Addrs[j] = string(scratch)
		}
		m.routers[i] = r
		reps[i] = g[0]
		for _, addr := range g {
			m.routerOf[addr] = r.Addrs[0]
		}
	}

	// Partition fences and router placement: a component lives in the
	// partition owning its representative, exactly the materialized
	// encoder's rule.
	mins := make([]packet.Addr, m.parts)
	for p := 0; p < m.parts; p++ {
		if lo, hi := m.span(p); hi > lo {
			mins[p] = m.addrs[lo]
		}
	}
	m.routersByPart = make([][]int, m.parts)
	for i := range m.routers {
		p := traceio.AtlasShardForAddr(mins, reps[i])
		m.routersByPart[p] = append(m.routersByPart[p], i)
	}

	// Count the merged edges per partition — the header needs the exact
	// total before the first block streams out. Successor targets
	// without a node of their own are dropped, mirroring Merged().
	counts := make([]int, m.parts)
	par.Do(m.parts, a.mergeWorkers, func(p int) {
		lo, hi := m.span(p)
		n := 0
		for _, addr := range m.addrs[lo:hi] {
			st := a.shards[a.shardIndexOf(addr)].nodes[addr]
			for wa := range st.succ {
				if _, ok := slices.BinarySearch(m.addrs, wa); ok {
					n++
				}
			}
		}
		counts[p] = n
	})
	for _, n := range counts {
		m.edges += n
	}
	return m
}

// sortedPairs copies the pair section in canonical (index) order.
func (a *Atlas) sortedPairs() []traceio.AtlasPair {
	a.mu.Lock()
	defer a.mu.Unlock()
	idxs := make([]int, 0, len(a.pairs))
	for i := range a.pairs {
		idxs = append(idxs, i)
	}
	slices.Sort(idxs)
	var out []traceio.AtlasPair
	for _, i := range idxs {
		p := a.pairs[i]
		out = append(out, traceio.AtlasPair{Pair: i, Src: p.src, Dst: p.dst})
	}
	return out
}

// buildBlock merges one partition: for each address in the fence range,
// canonicalize provenance in place (the partitions are disjoint, so
// workers never touch the same node), merge and sort the successor set,
// and render everything once via AppendText. Called with the snapshot
// gate held exclusively.
func (a *Atlas) buildBlock(m *mergePlan, p int) (*traceio.AtlasShard, error) {
	lo, hi := m.span(p)
	blk := &traceio.AtlasShard{
		Header: traceio.AtlasShardHeader{Shard: p, Nodes: hi - lo, Routers: len(m.routersByPart[p])},
	}
	var scratch []byte
	if hi > lo {
		scratch = m.addrs[lo].AppendText(scratch[:0])
		blk.Header.Min = string(scratch)
		scratch = m.addrs[hi-1].AppendText(scratch[:0])
		blk.Header.Max = string(scratch)
		blk.Nodes = make([]traceio.AtlasNodeV2, 0, hi-lo)
	}
	var succ []packet.Addr
	for _, addr := range m.addrs[lo:hi] {
		st := a.shards[a.shardIndexOf(addr)].nodes[addr]
		if st.dirty {
			st.seen = sortedObs(st.seen)
			st.dirty = false
		}
		scratch = addr.AppendText(scratch[:0])
		n := traceio.AtlasNodeV2{Addr: string(scratch), Router: m.routerOf[addr]}
		if len(st.seen) > 0 {
			n.Seen = make([][2]int, len(st.seen))
			for i, o := range st.seen {
				n.Seen[i] = [2]int{o.Pair, o.Hop}
			}
		}
		succ = succ[:0]
		for wa := range st.succ {
			if _, ok := slices.BinarySearch(m.addrs, wa); ok {
				succ = append(succ, wa)
			}
		}
		if len(succ) > 0 {
			slices.Sort(succ)
			n.Succ = make([]string, len(succ))
			for i, wa := range succ {
				scratch = wa.AppendText(scratch[:0])
				n.Succ[i] = string(scratch)
			}
		}
		blk.Nodes = append(blk.Nodes, n)
	}
	for _, ri := range m.routersByPart[p] {
		blk.Routers = append(blk.Routers, m.routers[ri])
	}
	return blk, nil
}

// countingWriter tracks bytes written for WriteTo's return value.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
