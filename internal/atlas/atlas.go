// Package atlas is the cross-trace topology store: a concurrent,
// sharded accumulator that merges per-pair IP-level graphs, alias
// evidence and diamond encounters into one queryable multilevel view of
// the whole surveyed internet (the aggregation the paper's Sec 5
// surveys perform implicitly when they report router sizes and diamond
// effects "across the internet").
//
// Graphs from different vantage points are not globally hop-aligned —
// the same interface sits at hop 6 of one trace and hop 11 of another —
// so the merged graph cannot be the per-trace hop-indexed topo.Graph.
// Instead the atlas builds an address-keyed MultiGraph on the shared
// topo.DAG core: one vertex per interface address, edges wherever any
// trace observed a link, and hop positions demoted to per-source
// provenance annotations ((pair, hop) observations).
//
// Ingestion is sharded by address for lock-freedom across concurrent
// writers; every query and snapshot first merges the shards in
// canonical (ascending address) order, which is what makes the output —
// snapshot bytes included — independent of worker count, shard count,
// and ingestion order.
package atlas

import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"mmlpt/internal/alias"
	"mmlpt/internal/packet"
	"mmlpt/internal/topo"
	"mmlpt/internal/traceio"
)

// Obs is one provenance observation: pair Pair saw the address at hop
// Hop of its trace.
type Obs struct {
	Pair int
	Hop  int
}

// DefaultShards is the shard count when Options.Shards is zero.
const DefaultShards = 16

// Options configures an Atlas.
type Options struct {
	// Shards is the number of address-hash ingestion shards. Shard
	// count affects only lock contention, never output: snapshots are
	// identical for every value.
	Shards int
	// MergeWorkers is the worker count for the canonical merge behind
	// WriteTo, Save and streaming Compact (0 = GOMAXPROCS, 1 = serial).
	// Like Shards it affects only speed: snapshot bytes are identical
	// for every value.
	MergeWorkers int
}

// Atlas is the sharded cross-trace store. All methods are safe for
// concurrent use.
//
// Locking discipline: every access to a shard's node map takes snapMu
// read-side plus that shard's mutex — including the lazy provenance
// sort, which mutates node state on a read path. WriteTo instead takes
// snapMu write-side for the whole streaming encode: with every writer
// excluded, its counting pass and its emit pass observe the same state
// (the byte-determinism contract needs the header totals to match the
// blocks exactly), and its partition workers can read and lazily sort
// disjoint nodes with no per-node locking at all.
type Atlas struct {
	shards       []*shard
	mergeWorkers int

	// snapMu is the snapshot gate described above: read-locked by
	// ingestion and point queries, write-locked by WriteTo.
	snapMu sync.RWMutex

	mu     sync.Mutex
	union  *alias.Union
	census map[censusKey]*censusEntry
	pairs  map[int]pairInfo
}

type shard struct {
	mu    sync.Mutex
	nodes map[packet.Addr]*nodeState
}

type nodeState struct {
	seen []Obs
	succ map[packet.Addr]struct{}
	// dirty marks seen as unsorted/undeduped since the last canonical
	// pass; Provenance and the merge sort lazily instead of re-sorting
	// an already canonical slice on every query.
	dirty bool
}

type censusKey struct{ div, conv string }

type censusEntry struct {
	count     int
	pairs     map[int]struct{}
	maxWidth  int
	maxLength int
}

type pairInfo struct{ src, dst string }

// New returns an empty atlas.
func New(opt Options) *Atlas {
	n := opt.Shards
	if n <= 0 {
		n = DefaultShards
	}
	a := &Atlas{
		shards:       make([]*shard, n),
		mergeWorkers: opt.MergeWorkers,
		union:        alias.NewUnion(),
		census:       make(map[censusKey]*censusEntry),
		pairs:        make(map[int]pairInfo),
	}
	for i := range a.shards {
		a.shards[i] = &shard{nodes: make(map[packet.Addr]*nodeState)}
	}
	return a
}

func (a *Atlas) shardIndexOf(addr packet.Addr) int {
	// Addresses are dense allocations; a multiplicative hash spreads
	// them evenly over any shard count.
	h := uint32(addr) * 0x9e3779b1
	return int(h % uint32(len(a.shards)))
}

func (a *Atlas) shardOf(addr packet.Addr) *shard {
	return a.shards[a.shardIndexOf(addr)]
}

func (a *Atlas) node(s *shard, addr packet.Addr) *nodeState {
	n, ok := s.nodes[addr]
	if !ok {
		n = &nodeState{}
		s.nodes[addr] = n
	}
	return n
}

// AddGraph merges one pair's IP-level trace graph: every responsive
// vertex contributes a (pair, hop) observation, every edge between
// responsive vertices a link. Star (non-responsive) vertices have no
// address and are skipped.
func (a *Atlas) AddGraph(pair int, g *topo.Graph) {
	a.snapMu.RLock()
	defer a.snapMu.RUnlock()
	for i := range g.Vertices {
		v := &g.Vertices[i]
		if v.Addr == topo.StarAddr {
			continue
		}
		s := a.shardOf(v.Addr)
		s.mu.Lock()
		n := a.node(s, v.Addr)
		n.seen = append(n.seen, Obs{Pair: pair, Hop: v.Hop})
		n.dirty = true
		s.mu.Unlock()
	}
	for i := range g.Vertices {
		u := &g.Vertices[i]
		if u.Addr == topo.StarAddr {
			continue
		}
		for _, w := range g.Succ(topo.VertexID(i)) {
			wa := g.V(w).Addr
			if wa == topo.StarAddr {
				continue
			}
			s := a.shardOf(u.Addr)
			s.mu.Lock()
			n := a.node(s, u.Addr)
			if n.succ == nil {
				n.succ = make(map[packet.Addr]struct{})
			}
			n.succ[wa] = struct{}{}
			s.mu.Unlock()
		}
	}
}

// AddAliasSet merges one trace's accepted alias set into the growing
// router identities.
func (a *Atlas) AddAliasSet(addrs []packet.Addr) {
	if len(addrs) < 2 {
		return
	}
	a.mu.Lock()
	a.union.AddSet(addrs)
	a.mu.Unlock()
}

// AddDiamond folds one diamond encounter into the cross-pair census.
func (a *Atlas) AddDiamond(pair int, d traceio.SurveyDiamond) {
	k := censusKey{div: d.Div, conv: d.Conv}
	a.mu.Lock()
	e, ok := a.census[k]
	if !ok {
		e = &censusEntry{pairs: make(map[int]struct{})}
		a.census[k] = e
	}
	e.count++
	e.pairs[pair] = struct{}{}
	if d.MaxWidth > e.maxWidth {
		e.maxWidth = d.MaxWidth
	}
	if d.MaxLength > e.maxLength {
		e.maxLength = d.MaxLength
	}
	a.mu.Unlock()
}

// AddRecord merges one streamed survey record: the trace topology, the
// per-trace routers (alias sets) and the diamond encounters. This is
// what survey.AtlasSink feeds, live or replayed.
func (a *Atlas) AddRecord(rec *traceio.SurveyRecord) error {
	g, err := traceio.DecodeGraph(rec.Trace.Vertices, rec.Trace.Edges)
	if err != nil {
		return fmt.Errorf("atlas: pair %d: %w", rec.PairIndex, err)
	}
	a.AddGraph(rec.PairIndex, g)
	for _, r := range rec.Trace.Routers {
		set := make([]packet.Addr, 0, len(r.Addrs))
		for _, s := range r.Addrs {
			addr, err := packet.ParseAddr(s)
			if err != nil {
				return fmt.Errorf("atlas: pair %d: router address %q: %w", rec.PairIndex, s, err)
			}
			set = append(set, addr)
		}
		a.AddAliasSet(set)
	}
	for _, d := range rec.Diamonds {
		a.AddDiamond(rec.PairIndex, d)
	}
	a.mu.Lock()
	a.pairs[rec.PairIndex] = pairInfo{src: rec.Trace.Src, dst: rec.Trace.Dst}
	a.mu.Unlock()
	return nil
}

// NumPairs returns how many pairs have been merged via AddRecord.
func (a *Atlas) NumPairs() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pairs)
}

// RouterSizes returns the sizes of the aggregated routers (alias
// components with two or more interfaces), in canonical group order.
func (a *Atlas) RouterSizes() []int {
	groups := a.Routers()
	out := make([]int, len(groups))
	for i, g := range groups {
		out[i] = len(g)
	}
	return out
}

// Routers returns the aggregated router components themselves. Only the
// O(addresses) component collection happens under the atlas lock; the
// canonical sort runs outside it, so a large-survey Routers call cannot
// stall concurrent AddRecord ingestion for the sort's duration.
func (a *Atlas) Routers() [][]packet.Addr {
	a.mu.Lock()
	groups := a.union.UnsortedGroups()
	a.mu.Unlock()
	return alias.SortGroups(groups)
}

// Census returns the cross-pair diamond census in canonical (div, conv)
// order. Like Routers, the lock covers only the map snapshot; sorting
// the keys and pair sets happens after ingestion is unblocked.
func (a *Atlas) Census() []traceio.AtlasDiamond {
	a.mu.Lock()
	out := make([]traceio.AtlasDiamond, 0, len(a.census))
	for k, e := range a.census {
		ps := make([]int, 0, len(e.pairs))
		for p := range e.pairs {
			ps = append(ps, p)
		}
		out = append(out, traceio.AtlasDiamond{
			Div: k.div, Conv: k.conv, Count: e.count, Pairs: ps,
			MaxWidth: e.maxWidth, MaxLength: e.maxLength,
		})
	}
	a.mu.Unlock()
	for _, d := range out {
		sort.Ints(d.Pairs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Div != out[j].Div {
			return out[i].Div < out[j].Div
		}
		return out[i].Conv < out[j].Conv
	})
	return out
}

// Provenance returns the (pair, hop) observations of one address,
// sorted, and whether the address is known at all. The node's slice is
// sorted and deduped in place on first query and only re-canonicalized
// after new observations arrive (the dirty flag), so repeated queries
// of a hot address cost one copy, not a sort.
func (a *Atlas) Provenance(addr packet.Addr) ([]Obs, bool) {
	a.snapMu.RLock()
	defer a.snapMu.RUnlock()
	s := a.shardOf(addr)
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[addr]
	if !ok {
		return nil, false
	}
	if n.dirty {
		n.seen = sortedObs(n.seen)
		n.dirty = false
	}
	return append([]Obs(nil), n.seen...), true
}

func sortedObs(seen []Obs) []Obs {
	// slices.SortFunc, not sort.Slice: this runs once per node inside
	// the merge hot path, and the interface-based sort's closure
	// allocations add up across a million nodes.
	slices.SortFunc(seen, func(a, b Obs) int {
		if a.Pair != b.Pair {
			return a.Pair - b.Pair
		}
		return a.Hop - b.Hop
	})
	// Dedup: a replayed record or duplicate AddGraph must not inflate
	// provenance.
	out := seen[:0]
	for i, o := range seen {
		if i == 0 || o != seen[i-1] {
			out = append(out, o)
		}
	}
	return out
}
