package atlas

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"mmlpt/internal/packet"
	"mmlpt/internal/topo"
	"mmlpt/internal/traceio"
)

// chain builds a hop-aligned path graph from addresses (0 = star).
func chain(addrs ...uint32) *topo.Graph {
	g := topo.New()
	prev := topo.None
	for h, a := range addrs {
		v := g.AddVertex(h, packet.Addr(a))
		if prev != topo.None {
			g.AddEdge(prev, v)
		}
		prev = v
	}
	return g
}

func encode(t *testing.T, a *Atlas) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := traceio.EncodeAtlas(&buf, a.Snapshot()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Merging two traces that disagree on hop positions: the shared address
// gets one node with per-source annotations, not two hop-keyed copies.
func TestMergeIsAddressKeyed(t *testing.T) {
	t.Parallel()
	a := New(Options{Shards: 4})
	a.AddGraph(0, chain(10, 20, 30))
	a.AddGraph(1, chain(40, 41, 20, 31)) // 20 at hop 2 here, hop 1 in pair 0
	m := a.Merged()
	if m.NumNodes() != 6 {
		t.Fatalf("NumNodes = %d, want 6", m.NumNodes())
	}
	id := m.Lookup(20)
	if id == topo.None {
		t.Fatal("address 20 missing")
	}
	want := []Obs{{Pair: 0, Hop: 1}, {Pair: 1, Hop: 2}}
	if !reflect.DeepEqual(m.Seen(id), want) {
		t.Fatalf("Seen(20) = %v, want %v", m.Seen(id), want)
	}
	if got, ok := a.Provenance(20); !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("Provenance(20) = %v, %v", got, ok)
	}
	if _, ok := a.Provenance(99); ok {
		t.Fatal("unknown address must report absent")
	}
	// Edges from both traces, deduplicated by (from, to) address.
	if m.NumEdges() != 5 {
		t.Fatalf("NumEdges = %d, want 5", m.NumEdges())
	}
	if m.OutDegree(id) != 2 { // 20→30 and 20→31
		t.Fatalf("OutDegree(20) = %d, want 2", m.OutDegree(id))
	}
}

// Stars have no address: they contribute neither nodes nor edges.
func TestStarsAreSkipped(t *testing.T) {
	t.Parallel()
	a := New(Options{})
	a.AddGraph(0, chain(10, 0, 30))
	m := a.Merged()
	if m.NumNodes() != 2 || m.NumEdges() != 0 {
		t.Fatalf("nodes=%d edges=%d, want 2 and 0", m.NumNodes(), m.NumEdges())
	}
}

// Snapshot bytes must not depend on shard count or ingestion order.
func TestSnapshotCanonicalAcrossShardsAndOrder(t *testing.T) {
	t.Parallel()
	graphs := []*topo.Graph{
		chain(10, 20, 30),
		chain(40, 20, 31),
		chain(50, 51, 52, 30),
	}
	build := func(shards int, order []int) *Atlas {
		a := New(Options{Shards: shards})
		for _, i := range order {
			a.AddGraph(i, graphs[i])
		}
		a.AddAliasSet([]packet.Addr{20, 31})
		a.AddDiamond(1, traceio.SurveyDiamond{Div: "0.0.0.40", Conv: "0.0.0.31", MaxWidth: 2, MaxLength: 2})
		return a
	}
	ref := encode(t, build(1, []int{0, 1, 2}))
	for _, shards := range []int{2, 7, 64} {
		for _, order := range [][]int{{0, 1, 2}, {2, 0, 1}, {1, 2, 0}} {
			if got := encode(t, build(shards, order)); !bytes.Equal(got, ref) {
				t.Fatalf("snapshot differs at shards=%d order=%v", shards, order)
			}
		}
	}
}

// Concurrent ingestion of disjoint pairs yields the same snapshot as a
// serial walk.
func TestConcurrentIngestDeterministic(t *testing.T) {
	t.Parallel()
	mk := func() []*topo.Graph {
		var gs []*topo.Graph
		for i := 0; i < 32; i++ {
			base := uint32(100 + i*3)
			gs = append(gs, chain(base, base+1, base+2, 77))
		}
		return gs
	}
	serial := New(Options{Shards: 4})
	for i, g := range mk() {
		serial.AddGraph(i, g)
	}
	conc := New(Options{Shards: 4})
	var wg sync.WaitGroup
	for i, g := range mk() {
		wg.Add(1)
		go func(i int, g *topo.Graph) {
			defer wg.Done()
			conc.AddGraph(i, g)
		}(i, g)
	}
	wg.Wait()
	if !bytes.Equal(encode(t, serial), encode(t, conc)) {
		t.Fatal("concurrent ingestion changed the snapshot")
	}
}

// Alias evidence accumulates across traces: sets sharing an address
// merge into one growing router.
func TestRouterIdentitiesGrow(t *testing.T) {
	t.Parallel()
	a := New(Options{})
	a.AddAliasSet([]packet.Addr{10, 11})
	if got := a.RouterSizes(); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("RouterSizes = %v", got)
	}
	a.AddAliasSet([]packet.Addr{11, 12})
	a.AddAliasSet([]packet.Addr{20, 21})
	if got := a.RouterSizes(); !reflect.DeepEqual(got, []int{3, 2}) {
		t.Fatalf("RouterSizes = %v, want [3 2]", got)
	}
	routers := a.Routers()
	if !reflect.DeepEqual(routers[0], []packet.Addr{10, 11, 12}) {
		t.Fatalf("Routers[0] = %v", routers[0])
	}
}

// Census accumulates encounters per distinct (div, conv) key.
func TestDiamondCensus(t *testing.T) {
	t.Parallel()
	a := New(Options{})
	d := traceio.SurveyDiamond{Div: "0.0.0.1", Conv: "0.0.0.9", MaxWidth: 2, MaxLength: 2}
	a.AddDiamond(4, d)
	d.MaxWidth = 5
	a.AddDiamond(2, d)
	a.AddDiamond(2, d)
	c := a.Census()
	if len(c) != 1 {
		t.Fatalf("census has %d entries, want 1", len(c))
	}
	want := traceio.AtlasDiamond{
		Div: "0.0.0.1", Conv: "0.0.0.9", Count: 3, Pairs: []int{2, 4},
		MaxWidth: 5, MaxLength: 2,
	}
	if !reflect.DeepEqual(c[0], want) {
		t.Fatalf("census = %+v, want %+v", c[0], want)
	}
}

// Save → Load → Save round-trips byte-stably.
func TestSaveLoadByteStable(t *testing.T) {
	t.Parallel()
	a := New(Options{Shards: 3})
	a.AddGraph(0, chain(10, 20, 30))
	a.AddGraph(2, chain(40, 20, 31))
	a.AddAliasSet([]packet.Addr{20, 31})
	a.AddDiamond(0, traceio.SurveyDiamond{Div: "0.0.0.10", Conv: "0.0.0.30", MaxWidth: 3, MaxLength: 2})
	first := encode(t, a)

	dec, err := traceio.DecodeAtlas(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromSnapshot(dec, Options{Shards: 11})
	if err != nil {
		t.Fatal(err)
	}
	if second := encode(t, b); !bytes.Equal(first, second) {
		t.Fatalf("round trip changed bytes:\n%s\nvs\n%s", first, second)
	}
	if a.ComputeStats() != b.ComputeStats() {
		t.Fatalf("stats differ: %v vs %v", a.ComputeStats(), b.ComputeStats())
	}
}
