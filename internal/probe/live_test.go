package probe

import (
	"errors"
	"testing"
	"time"

	"mmlpt/internal/packet"
)

// fakeTransport is an in-memory batchTransport: accepted packets are
// answered synchronously through a respond function (usually a fakeroute
// session) into a reply queue that RecvSome drains. It lets the
// LiveProber state machine — waves, retries, sent accounting, demux —
// run without sockets or timers.
type fakeTransport struct {
	// respond crafts the reply bytes for an accepted packet; nil return
	// models a dropped probe. The result is copied.
	respond func(pkt []byte) []byte
	// accept caps the total packets accepted across all SendBatch calls
	// (-1 = unlimited); the excess is refused as a short count.
	accept int
	// failWith, when non-nil, is returned alongside the short count the
	// first time the accept cap truncates a send.
	failWith error

	sent     int
	syscalls uint64
	queue    [][]byte
}

// errDrained models an empty wire: the prober treats a RecvSome error
// as the end of the wave, which keeps these tests timer-free.
var errDrained = errors.New("fake transport drained")

func newFakeTransport(respond func(pkt []byte) []byte) *fakeTransport {
	return &fakeTransport{respond: respond, accept: -1}
}

func (f *fakeTransport) SendBatch(pkts [][]byte, dsts []packet.Addr) (int, error) {
	f.syscalls++
	n := len(pkts)
	var err error
	if f.accept >= 0 && n > f.accept-f.sent {
		n = f.accept - f.sent
		if n < 0 {
			n = 0
		}
		err = f.failWith
		f.failWith = nil
	}
	for _, pkt := range pkts[:n] {
		if f.respond == nil {
			continue
		}
		if rep := f.respond(pkt); rep != nil {
			f.queue = append(f.queue, append([]byte(nil), rep...))
		}
	}
	f.sent += n
	return n, err
}

func (f *fakeTransport) RecvSome(deadline time.Time, deliver func(pkt []byte)) error {
	f.syscalls++
	if len(f.queue) == 0 {
		return errDrained
	}
	for _, pkt := range f.queue {
		deliver(pkt)
	}
	f.queue = f.queue[:0]
	return nil
}

func (f *fakeTransport) Syscalls() uint64 { return f.syscalls }
func (f *fakeTransport) Close() error     { return nil }

func liveOverFake(t *testing.T, ft *fakeTransport, cfg LiveConfig) *LiveProber {
	t.Helper()
	if cfg.Timeout == 0 {
		cfg.Timeout = 50 * time.Millisecond
	}
	return newLiveProber(tSrc, tDst, ft, cfg)
}

func TestLiveSentExcludesFailedSends(t *testing.T) {
	sess := demuxSession(t)
	ft := newFakeTransport(sess.HandleProbe)
	ft.accept = 2
	ft.failWith = errors.New("no buffer space")
	p := liveOverFake(t, ft, LiveConfig{})

	specs := []Spec{{0, 1}, {1, 1}, {2, 2}, {3, 2}}
	replies := p.ProbeBatch(specs)

	trace, echo := p.Sent()
	if trace != 2 || echo != 0 {
		t.Fatalf("Sent() = (%d, %d), want (2, 0): failed sends must not count", trace, echo)
	}
	for i := 0; i < 2; i++ {
		if replies[i] == nil {
			t.Fatalf("reply %d missing for an accepted probe", i)
		}
	}
	for i := 2; i < 4; i++ {
		if replies[i] != nil {
			t.Fatalf("reply %d present for a probe that never left the socket", i)
		}
	}
}

func TestLiveEchoSentExcludesFailedSends(t *testing.T) {
	sess := demuxSession(t)
	hop := hopAddr(t, sess, 2)
	ft := newFakeTransport(sess.HandleProbe)
	ft.accept = 1
	p := liveOverFake(t, ft, LiveConfig{})

	replies := p.EchoBatch([]EchoSpec{{hop, 1}, {hop, 2}, {hop, 3}})
	trace, echo := p.Sent()
	if trace != 0 || echo != 1 {
		t.Fatalf("Sent() = (%d, %d), want (0, 1)", trace, echo)
	}
	if replies[0] == nil || replies[1] != nil || replies[2] != nil {
		t.Fatalf("replies = %v, want only the first answered", replies)
	}
}

func TestLiveProbeBatchRoundTrip(t *testing.T) {
	sess := demuxSession(t)
	ft := newFakeTransport(sess.HandleProbe)
	p := liveOverFake(t, ft, LiveConfig{})

	// SimplestDiamond: divergent hops at TTL 1, convergence at TTL 2; a
	// high TTL overshoots the destination and draws port unreachable.
	specs := []Spec{{0, 1}, {1, 1}, {0, 2}, {1, 2}, {0, 8}, {1, 8}}
	replies := p.ProbeBatch(specs)
	for i, r := range replies {
		if r == nil {
			t.Fatalf("probe %d (flow %d ttl %d) got no reply", i, specs[i].FlowID, specs[i].TTL)
		}
		if !r.HasQuotedFlow || r.ProbeFlowID != specs[i].FlowID {
			t.Fatalf("probe %d attributed to flow %d, want %d", i, r.ProbeFlowID, specs[i].FlowID)
		}
	}
	for _, i := range []int{4, 5} {
		if !replies[i].IsPortUnreachable() {
			t.Fatalf("probe %d past the destination: type %d, want port unreachable", i, replies[i].Type)
		}
	}
	for _, i := range []int{0, 1, 2, 3} {
		if !replies[i].IsTimeExceeded() {
			t.Fatalf("probe %d mid-path: type %d, want time exceeded", i, replies[i].Type)
		}
	}
	if trace, _ := p.Sent(); trace != uint64(len(specs)) {
		t.Fatalf("Sent() = %d, want %d", trace, len(specs))
	}
}

func TestLiveEchoBatchRoundTrip(t *testing.T) {
	sess := demuxSession(t)
	hop1 := hopAddr(t, sess, 1)
	hop2 := hopAddr(t, sess, 2)
	ft := newFakeTransport(sess.HandleProbe)
	p := liveOverFake(t, ft, LiveConfig{})

	// Includes a duplicated (addr, seq) pair: both specs must resolve.
	specs := []EchoSpec{{hop1, 1}, {hop2, 2}, {hop2, 2}, {hop1, 7}}
	replies := p.EchoBatch(specs)
	for i, r := range replies {
		if r == nil {
			t.Fatalf("echo %d to %v got no reply", i, specs[i].Addr)
		}
		if !r.IsEchoReply() || r.From != specs[i].Addr || r.EchoSeq != specs[i].Seq {
			t.Fatalf("echo %d: reply from %v seq %d, want %v seq %d",
				i, r.From, r.EchoSeq, specs[i].Addr, specs[i].Seq)
		}
	}
	if _, echo := p.Sent(); echo != uint64(len(specs)) {
		t.Fatalf("Sent() echo = %d, want %d", echo, len(specs))
	}
}

func TestLiveRetryResends(t *testing.T) {
	sess := demuxSession(t)
	dropped := 0
	respond := func(pkt []byte) []byte {
		// The wire eats the first two probes; retries get through.
		if dropped < 2 {
			dropped++
			return nil
		}
		return sess.HandleProbe(pkt)
	}
	p := liveOverFake(t, newFakeTransport(respond), LiveConfig{Retries: 1})

	replies := p.ProbeBatch([]Spec{{0, 1}, {1, 2}})
	for i, r := range replies {
		if r == nil {
			t.Fatalf("probe %d unanswered after retry", i)
		}
	}
	if trace, _ := p.Sent(); trace != 4 {
		t.Fatalf("Sent() = %d, want 4 (2 probes + 2 retries)", trace)
	}
}

// TestLiveIdentitylessSingletonRetry pins the final-attempt degradation:
// when every router strips the quoted identity, a full wave is
// unattributable, but the last attempt's one-at-a-time waves let the
// singleton fallback claim each reply.
func TestLiveIdentitylessSingletonRetry(t *testing.T) {
	sess := demuxSession(t)
	respond := func(pkt []byte) []byte {
		rep := sess.HandleProbe(pkt)
		if rep == nil {
			return nil
		}
		out := append([]byte(nil), rep...)
		if len(out) > quotedChecksumOff+1 {
			out[quotedChecksumOff] = 0
			out[quotedChecksumOff+1] = 0
		}
		return out
	}
	p := liveOverFake(t, newFakeTransport(respond), LiveConfig{Retries: 1})

	replies := p.ProbeBatch([]Spec{{0, 1}, {1, 1}, {0, 2}})
	for i, r := range replies {
		if r == nil {
			t.Fatalf("probe %d unanswered: singleton fallback did not attribute", i)
		}
		if r.ProbeIdentity != 0 {
			t.Fatalf("probe %d reply carries identity %#x, want stripped", i, r.ProbeIdentity)
		}
	}
	// Wave 1 sends all three (unattributable), the final attempt re-sends
	// each as its own wave.
	if trace, _ := p.Sent(); trace != 6 {
		t.Fatalf("Sent() = %d, want 6", trace)
	}
}

// TestLiveBatchOfOne pins the Probe/Echo adapters over the batched core.
func TestLiveBatchOfOne(t *testing.T) {
	sess := demuxSession(t)
	ft := newFakeTransport(sess.HandleProbe)
	p := liveOverFake(t, ft, LiveConfig{})

	r := p.Probe(0, 1)
	if r == nil || !r.IsTimeExceeded() {
		t.Fatalf("Probe(0, 1) = %+v, want time exceeded", r)
	}
	hop := r.From
	er := p.Echo(hop, 42)
	if er == nil || !er.IsEchoReply() || er.EchoSeq != 42 {
		t.Fatalf("Echo(%v, 42) = %+v, want echo reply seq 42", hop, er)
	}
	trace, echo := p.Sent()
	if trace != 1 || echo != 1 {
		t.Fatalf("Sent() = (%d, %d), want (1, 1)", trace, echo)
	}
}
