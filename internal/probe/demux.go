package probe

import "mmlpt/internal/packet"

// Demux attributes parsed ICMP replies to the in-flight probes of one
// wave. It is the syscall-free half of the live receive path: transports
// feed it parsed replies (packet.ParseReplyInto over whatever buffer the
// kernel filled) and it answers "which spec index does this reply
// answer, if any". Keeping the attribution rules out of the socket loops
// makes them unit-testable against fakeroute wire bytes without opening
// a socket, and lets the trace and echo paths share one send/receive/
// retry state machine.
//
// Attribution rules, in order:
//
//   - Traceroute replies (Time Exceeded / Destination Unreachable) match
//     on the Paris probe identity quoted inside the ICMP error — the
//     pinned UDP checksum, the same value the compiled fakeroute flow
//     tables key on. Each identity owns exactly one in-flight probe
//     (see LiveProber.nextSerial).
//   - A reply whose quote is truncated before the UDP header carries no
//     identity. It is attributable only while a single traceroute probe
//     is outstanding, and only when the quoted destination (if the quote
//     kept the IP header) matches the wave's destination.
//   - Echo replies match on (source address, echo ID, sequence). Specs
//     sharing both address and sequence resolve in FIFO order: the first
//     unanswered spec wins, as the batched echo contract promises.
//
// A Demux is owned by one prober and reused across waves (BeginWave
// clears it); in steady state the traceroute path performs no
// allocations. It is not safe for concurrent use.
type Demux struct {
	dst    packet.Addr
	echoID uint16

	// trace maps each in-flight probe identity to its spec index.
	trace map[uint16]int
	// echo maps (addr, seq) to the spec indices awaiting that reply, in
	// send order.
	echo    map[uint64][]int
	echoOut int
}

func echoKey(addr packet.Addr, seq uint16) uint64 {
	return uint64(addr)<<16 | uint64(seq)
}

// BeginWave resets the demux for a new wave of probes toward dst. Echo
// replies will be accepted only when they carry echoID.
func (d *Demux) BeginWave(dst packet.Addr, echoID uint16) {
	d.dst = dst
	d.echoID = echoID
	if d.trace == nil {
		d.trace = make(map[uint16]int)
	} else {
		clear(d.trace)
	}
	if d.echo == nil {
		d.echo = make(map[uint64][]int)
	} else {
		clear(d.echo)
	}
	d.echoOut = 0
}

// AddTrace registers an in-flight traceroute probe: identity owns spec
// index idx until matched or dropped.
func (d *Demux) AddTrace(identity uint16, idx int) {
	d.trace[identity] = idx
}

// DropTrace forgets a registered traceroute probe — the path for probes
// that were serialized but never left the socket.
func (d *Demux) DropTrace(identity uint16) {
	delete(d.trace, identity)
}

// HasIdentity reports whether identity is owned by an in-flight probe of
// the current wave. The serial allocator consults it so a wrapped
// counter can never hand out a live identity.
func (d *Demux) HasIdentity(identity uint16) bool {
	_, ok := d.trace[identity]
	return ok
}

// AddEcho registers an in-flight echo probe to addr with the given
// sequence number.
func (d *Demux) AddEcho(addr packet.Addr, seq uint16, idx int) {
	k := echoKey(addr, seq)
	d.echo[k] = append(d.echo[k], idx)
	d.echoOut++
}

// DropEcho forgets the most recently added echo registration for
// (addr, seq, idx) — like DropTrace, for probes that never left the
// socket.
func (d *Demux) DropEcho(addr packet.Addr, seq uint16, idx int) {
	k := echoKey(addr, seq)
	q := d.echo[k]
	for i := len(q) - 1; i >= 0; i-- {
		if q[i] == idx {
			d.echo[k] = append(q[:i], q[i+1:]...)
			d.echoOut--
			return
		}
	}
}

// Outstanding is the number of in-flight probes still awaiting a reply.
func (d *Demux) Outstanding() int {
	return len(d.trace) + d.echoOut
}

// Match attributes r to an in-flight probe. On success it returns the
// probe's spec index and removes the registration; unmatched replies
// (late arrivals from a previous wave, unrelated traffic on a raw
// socket, junk) return ok=false and change nothing.
func (d *Demux) Match(r *packet.Reply) (idx int, ok bool) {
	if r.IsEchoReply() {
		if r.EchoID != d.echoID {
			return 0, false
		}
		k := echoKey(r.From, r.EchoSeq)
		q := d.echo[k]
		if len(q) == 0 {
			return 0, false
		}
		idx = q[0]
		d.echo[k] = q[1:]
		d.echoOut--
		return idx, true
	}
	if r.ProbeIdentity != 0 {
		idx, ok = d.trace[r.ProbeIdentity]
		if ok {
			delete(d.trace, r.ProbeIdentity)
		}
		return idx, ok
	}
	// Identity-less quote (the router truncated it): attributable only
	// while a single probe is outstanding, and only when the quote kept
	// enough of the IP header to confirm the destination.
	if len(d.trace) == 1 && r.ProbeDst == d.dst {
		for identity, i := range d.trace {
			delete(d.trace, identity)
			return i, true
		}
	}
	return 0, false
}
