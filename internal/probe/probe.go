// Package probe defines the boundary between the multipath detection
// algorithms and the network: a Prober sends one traceroute probe (flow
// identifier + TTL) or one direct echo probe and returns the parsed reply.
//
// The algorithms never see raw sockets or the simulator; they are written
// against this interface, so the same MDA / MDA-Lite / alias-resolution
// code runs over Fakeroute (validated, deterministic) and over a live
// raw-socket transport where one is available.
package probe

import (
	"mmlpt/internal/fakeroute"
	"mmlpt/internal/packet"
)

// Prober sends probes toward one destination.
type Prober interface {
	// Probe sends a Paris traceroute probe with the given flow identifier
	// and TTL toward the prober's destination. It returns the parsed
	// reply, or nil if no reply arrived (loss, rate limiting, or a
	// non-responsive hop).
	Probe(flowID uint16, ttl int) *packet.Reply

	// Echo sends a direct (ping-style) probe to addr, returning the parsed
	// reply or nil.
	Echo(addr packet.Addr, seq uint16) *packet.Reply

	// Sent returns the number of traceroute probes and echo probes sent so
	// far. The paper's packet counts are Sent totals.
	Sent() (trace, echo uint64)

	// Dst returns the destination address being traced.
	Dst() packet.Addr
}

// SimProber drives a fakeroute.Network. It is synchronous: a probe's reply
// (if any) is returned immediately, which matches the simulator's
// deterministic semantics and keeps algorithm code free of timeouts.
type SimProber struct {
	Net       *fakeroute.Network
	Src, Dst_ packet.Addr

	serial    uint16
	traceSent uint64
	echoSent  uint64

	// Retries is how many times Probe re-sends on no-reply before giving
	// up (models the usual 2-3 attempts per hop of traceroute tools).
	// Each attempt counts as a sent packet. Zero means a single attempt.
	Retries int
}

// NewSimProber returns a prober tracing src→dst over n.
func NewSimProber(n *fakeroute.Network, src, dst packet.Addr) *SimProber {
	return &SimProber{Net: n, Src: src, Dst_: dst, Retries: 2}
}

// Dst implements Prober.
func (p *SimProber) Dst() packet.Addr { return p.Dst_ }

// Sent implements Prober.
func (p *SimProber) Sent() (uint64, uint64) { return p.traceSent, p.echoSent }

// nextSerial returns a non-zero probe identity.
func (p *SimProber) nextSerial() uint16 {
	p.serial++
	if p.serial == 0 {
		p.serial = 1
	}
	return p.serial
}

// Probe implements Prober.
func (p *SimProber) Probe(flowID uint16, ttl int) *packet.Reply {
	if flowID > packet.MaxFlowID {
		panic("probe: flow ID out of range")
	}
	attempts := p.Retries + 1
	for a := 0; a < attempts; a++ {
		pr := packet.Probe{
			Src: p.Src, Dst: p.Dst_,
			FlowID: flowID, TTL: byte(ttl), Checksum: p.nextSerial(),
		}
		p.traceSent++
		raw := p.Net.HandleProbe(pr.Serialize())
		if raw == nil {
			continue
		}
		reply, err := packet.ParseReply(raw)
		if err != nil {
			continue
		}
		return reply
	}
	return nil
}

// Echo implements Prober.
func (p *SimProber) Echo(addr packet.Addr, seq uint16) *packet.Reply {
	attempts := p.Retries + 1
	for a := 0; a < attempts; a++ {
		// The probe's IP ID is set to seq so callers can detect routers
		// that copy the probe ID into the reply (a MIDAR "unable" cause).
		ep := packet.EchoProbe{
			Src: p.Src, Dst: addr,
			ID: 0x4d4c, Seq: seq, IPID: seq,
		}
		p.echoSent++
		raw := p.Net.HandleProbe(ep.Serialize())
		if raw == nil {
			continue
		}
		reply, err := packet.ParseReply(raw)
		if err != nil {
			continue
		}
		return reply
	}
	return nil
}

// Recorder wraps a Prober and notifies a callback after every probe, with
// cumulative sent counts: the hook the discovery-progress curves (Fig 3)
// are built on.
type Recorder struct {
	Prober
	// OnProbe is called after each traceroute or echo probe completes,
	// with the total packets sent so far and the reply (nil if none).
	OnProbe func(totalSent uint64, reply *packet.Reply)
}

// Probe implements Prober.
func (r *Recorder) Probe(flowID uint16, ttl int) *packet.Reply {
	reply := r.Prober.Probe(flowID, ttl)
	if r.OnProbe != nil {
		t, e := r.Prober.Sent()
		r.OnProbe(t+e, reply)
	}
	return reply
}

// Echo implements Prober.
func (r *Recorder) Echo(addr packet.Addr, seq uint16) *packet.Reply {
	reply := r.Prober.Echo(addr, seq)
	if r.OnProbe != nil {
		t, e := r.Prober.Sent()
		r.OnProbe(t+e, reply)
	}
	return reply
}

// TotalSent sums trace and echo probes for a Prober.
func TotalSent(p Prober) uint64 {
	t, e := p.Sent()
	return t + e
}
