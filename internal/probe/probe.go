// Package probe defines the boundary between the multipath detection
// algorithms and the network: a Prober sends traceroute probes (flow
// identifier + TTL) or direct echo probes and returns the parsed replies.
//
// The contract is batched: ProbeBatch and EchoBatch accept one round of
// probe specifications and return the replies index-aligned with the
// specs, which lets a transport keep a whole round in flight at once (a
// live prober overlaps sends and receives; the synchronous simulator
// prober answers each probe in order). The single-probe methods Probe and
// Echo remain as thin adapters over the same core, so algorithm code that
// probes one packet at a time keeps working unchanged.
//
// The algorithms never see raw sockets or the simulator; they are written
// against this interface, so the same MDA / MDA-Lite / alias-resolution
// code runs over Fakeroute (validated, deterministic) and over a live
// raw-socket transport where one is available.
package probe

import (
	"sync"
	"sync/atomic"

	"mmlpt/internal/fakeroute"
	"mmlpt/internal/packet"
)

// Spec describes one traceroute probe of a batch: the Paris flow
// identifier to hold constant and the TTL at which the probe should
// expire.
type Spec struct {
	FlowID uint16
	TTL    int
}

// EchoSpec describes one direct (ping-style) probe of a batch.
type EchoSpec struct {
	Addr packet.Addr
	Seq  uint16
}

// Prober sends probes toward one destination.
type Prober interface {
	// Probe sends a Paris traceroute probe with the given flow identifier
	// and TTL toward the prober's destination. It returns the parsed
	// reply, or nil if no reply arrived (loss, rate limiting, or a
	// non-responsive hop).
	Probe(flowID uint16, ttl int) *packet.Reply

	// ProbeBatch sends one round of traceroute probes and returns the
	// replies index-aligned with specs (nil where no reply arrived).
	// Implementations may keep the whole round in flight concurrently;
	// retries, if any, apply per probe as they do for Probe.
	ProbeBatch(specs []Spec) []*packet.Reply

	// Echo sends a direct (ping-style) probe to addr, returning the parsed
	// reply or nil.
	Echo(addr packet.Addr, seq uint16) *packet.Reply

	// EchoBatch sends one round of direct probes and returns the replies
	// index-aligned with specs (nil where no reply arrived).
	EchoBatch(specs []EchoSpec) []*packet.Reply

	// Sent returns the number of traceroute probes and echo probes sent so
	// far. The paper's packet counts are Sent totals.
	Sent() (trace, echo uint64)

	// Dst returns the destination address being traced.
	Dst() packet.Addr
}

// SimProber drives a fakeroute.Network. It is synchronous: a probe's reply
// (if any) is returned immediately, which matches the simulator's
// deterministic semantics and keeps algorithm code free of timeouts; a
// batch is therefore answered probe by probe, in spec order.
//
// A SimProber is safe for concurrent use: the sent counters are atomic
// and probe-identity allocation is serialized, with identities held by
// in-flight probes excluded from reuse (see nextSerial). All probes of
// one SimProber flow through one fakeroute session, so direct and
// indirect probes of a trace sample the same simulated counters.
//
// The round trip is allocation-free in steady state: probes serialize
// into a reusable buffer, the session crafts its reply into session
// scratch, and parsed replies come from a chunked arena (see replyArena)
// rather than individual allocations. Returned replies are self-contained
// and may be retained indefinitely, as before.
type SimProber struct {
	Net       *fakeroute.Network
	Src, Dst_ packet.Addr

	// Retries is how many times Probe re-sends on no-reply before giving
	// up (models the usual 2-3 attempts per hop of traceroute tools).
	// Each attempt counts as a sent packet. Zero means a single attempt.
	Retries int

	traceSent uint64 // atomic
	echoSent  uint64 // atomic

	mu       sync.Mutex
	sess     *fakeroute.Session
	serial   uint16
	inflight map[uint16]struct{}

	// xmu serializes the wire exchange (serialize probe → HandleProbe →
	// parse reply) so the scratch buffer and arena below can be reused
	// across probes without allocating. The simulator session already
	// serializes probe handling per trace, so this costs no parallelism:
	// concurrent traces of distinct pairs use distinct probers.
	xmu    sync.Mutex
	pktBuf []byte
	arena  replyArena
}

// replyArena hands out *packet.Reply values from chunked slabs: one heap
// allocation per replyArenaChunk replies instead of one per reply.
// Handed-out replies are never recycled — a chunk stays reachable as long
// as any of its replies is — so callers may retain them indefinitely,
// exactly as with individually allocated replies.
type replyArena struct {
	chunk []packet.Reply
	used  int
}

// replyArenaChunk is the slab size: large enough to amortize allocation
// to ~0 allocs/probe, small enough that a short trace wastes little.
const replyArenaChunk = 256

func (a *replyArena) next() *packet.Reply {
	if a.used == len(a.chunk) {
		a.chunk = make([]packet.Reply, replyArenaChunk)
		a.used = 0
	}
	r := &a.chunk[a.used]
	a.used++
	return r
}

// NewSimProber returns a prober tracing src→dst over n.
func NewSimProber(n *fakeroute.Network, src, dst packet.Addr) *SimProber {
	return &SimProber{Net: n, Src: src, Dst_: dst, Retries: 2}
}

// Dst implements Prober.
func (p *SimProber) Dst() packet.Addr { return p.Dst_ }

// Sent implements Prober.
func (p *SimProber) Sent() (uint64, uint64) {
	return atomic.LoadUint64(&p.traceSent), atomic.LoadUint64(&p.echoSent)
}

// Session exposes the prober's per-trace fakeroute session — the right
// Clock for an AdaptiveProber that must stay deterministic while other
// traces run in parallel (Network.AdvanceClock is network-wide).
func (p *SimProber) Session() *fakeroute.Session { return p.session() }

// session returns the per-trace fakeroute session, creating it on first
// use so zero-constructed SimProbers keep working.
func (p *SimProber) session() *fakeroute.Session {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.sess == nil {
		p.sess = p.Net.SessionFor(p.Src, p.Dst_)
	}
	return p.sess
}

// nextSerial allocates a non-zero probe identity that no in-flight probe
// of this prober is currently using, and marks it in flight. Without the
// exclusion, a trace longer than 65535 packets would wrap the serial
// counter and could hand a live identity to a second probe of the same
// batch, making their replies indistinguishable. If every identity is in
// flight at once (pathological), the current serial is reused and reply
// matching may be ambiguous, exactly as an unguarded wraparound would be.
func (p *SimProber) nextSerial() uint16 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.inflight == nil {
		p.inflight = make(map[uint16]struct{})
	}
	for i := 0; i < 1<<16; i++ {
		p.serial++
		if p.serial == 0 {
			p.serial = 1
		}
		if _, live := p.inflight[p.serial]; !live {
			p.inflight[p.serial] = struct{}{}
			return p.serial
		}
	}
	return p.serial
}

// releaseSerial returns an identity to the free pool once its probe's
// reply (or lack of one) has been observed.
func (p *SimProber) releaseSerial(serial uint16) {
	p.mu.Lock()
	delete(p.inflight, serial)
	p.mu.Unlock()
}

// Probe implements Prober.
func (p *SimProber) Probe(flowID uint16, ttl int) *packet.Reply {
	return p.probeOne(p.session(), flowID, ttl)
}

// ProbeBatch implements Prober. The simulator transport is synchronous,
// so the batch is answered in spec order; the batched contract still
// holds (replies index-aligned, per-probe retries).
func (p *SimProber) ProbeBatch(specs []Spec) []*packet.Reply {
	sess := p.session()
	replies := make([]*packet.Reply, len(specs))
	for i, sp := range specs {
		replies[i] = p.probeOne(sess, sp.FlowID, sp.TTL)
	}
	return replies
}

// exchangeLocked completes one wire round trip whose probe bytes are
// already serialized into pktBuf: it hands them to the session and
// parses the session-owned reply bytes into an arena reply before the
// next exchange can overwrite either buffer. Callers hold xmu across
// serialize-into-pktBuf and this call (the packet types are concrete at
// each call site so serialization stays allocation-free; an interface
// here would heap-escape the packet struct). Returns nil on drop or
// unparseable reply.
func (p *SimProber) exchangeLocked(sess *fakeroute.Session) *packet.Reply {
	raw := sess.HandleProbe(p.pktBuf)
	if raw == nil {
		return nil
	}
	r := p.arena.next()
	if packet.ParseReplyInto(r, raw) != nil {
		return nil
	}
	return r
}

func (p *SimProber) probeOne(sess *fakeroute.Session, flowID uint16, ttl int) *packet.Reply {
	if flowID > packet.MaxFlowID {
		panic("probe: flow ID out of range")
	}
	attempts := p.Retries + 1
	for a := 0; a < attempts; a++ {
		serial := p.nextSerial()
		pr := packet.Probe{
			Src: p.Src, Dst: p.Dst_,
			FlowID: flowID, TTL: byte(ttl), Checksum: serial,
		}
		atomic.AddUint64(&p.traceSent, 1)
		p.xmu.Lock()
		p.pktBuf = pr.AppendTo(p.pktBuf[:0])
		reply := p.exchangeLocked(sess)
		p.xmu.Unlock()
		p.releaseSerial(serial)
		if reply != nil {
			return reply
		}
	}
	return nil
}

// Echo implements Prober.
func (p *SimProber) Echo(addr packet.Addr, seq uint16) *packet.Reply {
	return p.echoOne(p.session(), addr, seq)
}

// EchoBatch implements Prober.
func (p *SimProber) EchoBatch(specs []EchoSpec) []*packet.Reply {
	sess := p.session()
	replies := make([]*packet.Reply, len(specs))
	for i, sp := range specs {
		replies[i] = p.echoOne(sess, sp.Addr, sp.Seq)
	}
	return replies
}

func (p *SimProber) echoOne(sess *fakeroute.Session, addr packet.Addr, seq uint16) *packet.Reply {
	attempts := p.Retries + 1
	for a := 0; a < attempts; a++ {
		// The probe's IP ID is set to seq so callers can detect routers
		// that copy the probe ID into the reply (a MIDAR "unable" cause).
		ep := packet.EchoProbe{
			Src: p.Src, Dst: addr,
			ID: 0x4d4c, Seq: seq, IPID: seq,
		}
		atomic.AddUint64(&p.echoSent, 1)
		p.xmu.Lock()
		p.pktBuf = ep.AppendTo(p.pktBuf[:0])
		reply := p.exchangeLocked(sess)
		p.xmu.Unlock()
		if reply != nil {
			return reply
		}
	}
	return nil
}

// Recorder wraps a Prober and notifies a callback as probes complete,
// with cumulative sent counts: the hook the discovery-progress curves
// (Fig 3) are built on. Callbacks are serialized, so a Recorder may be
// shared by concurrent probers.
//
// With only OnProbe set, batches are forwarded probe by probe so the
// callback sees every probe with its own cumulative count — per-probe
// granularity at the cost of serializing the batch. Setting OnBatch
// keeps whole batches flowing to the underlying prober (preserving a
// live transport's wave overlap) and reports once per completed batch;
// single-probe calls then report as batches of one.
type Recorder struct {
	Prober
	// OnProbe is called after each traceroute or echo probe completes,
	// with the total packets sent so far and the reply (nil if none).
	// When OnBatch is also set, OnProbe is invoked per reply after the
	// batch completes, so every reply carries the batch-final count.
	OnProbe func(totalSent uint64, reply *packet.Reply)
	// OnBatch, when set, is called once per completed batch with the
	// total packets sent so far and the batch's index-aligned replies
	// (nil entries where no reply arrived). The slice is only valid for
	// the duration of the call.
	OnBatch func(totalSent uint64, replies []*packet.Reply)

	mu sync.Mutex
}

// Probe implements Prober.
func (r *Recorder) Probe(flowID uint16, ttl int) *packet.Reply {
	reply := r.Prober.Probe(flowID, ttl)
	r.record(reply)
	return reply
}

// ProbeBatch implements Prober. With OnBatch set the batch is forwarded
// whole; otherwise it degrades to probe-by-probe so OnProbe sees every
// probe with its own cumulative count.
func (r *Recorder) ProbeBatch(specs []Spec) []*packet.Reply {
	if r.OnBatch != nil {
		replies := r.Prober.ProbeBatch(specs)
		r.recordBatch(replies)
		return replies
	}
	replies := make([]*packet.Reply, len(specs))
	for i, sp := range specs {
		replies[i] = r.Probe(sp.FlowID, sp.TTL)
	}
	return replies
}

// Echo implements Prober.
func (r *Recorder) Echo(addr packet.Addr, seq uint16) *packet.Reply {
	reply := r.Prober.Echo(addr, seq)
	r.record(reply)
	return reply
}

// EchoBatch implements Prober, forwarding whole batches when OnBatch is
// set and probe by probe otherwise.
func (r *Recorder) EchoBatch(specs []EchoSpec) []*packet.Reply {
	if r.OnBatch != nil {
		replies := r.Prober.EchoBatch(specs)
		r.recordBatch(replies)
		return replies
	}
	replies := make([]*packet.Reply, len(specs))
	for i, sp := range specs {
		replies[i] = r.Echo(sp.Addr, sp.Seq)
	}
	return replies
}

func (r *Recorder) record(reply *packet.Reply) {
	if r.OnProbe == nil && r.OnBatch == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, e := r.Prober.Sent()
	if r.OnBatch != nil {
		one := [1]*packet.Reply{reply}
		r.OnBatch(t+e, one[:])
	}
	if r.OnProbe != nil {
		r.OnProbe(t+e, reply)
	}
}

func (r *Recorder) recordBatch(replies []*packet.Reply) {
	if r.OnProbe == nil && r.OnBatch == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, e := r.Prober.Sent()
	if r.OnBatch != nil {
		r.OnBatch(t+e, replies)
	}
	if r.OnProbe != nil {
		for _, reply := range replies {
			r.OnProbe(t+e, reply)
		}
	}
}

// TotalSent sums trace and echo probes for a Prober.
func TotalSent(p Prober) uint64 {
	t, e := p.Sent()
	return t + e
}
