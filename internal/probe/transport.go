package probe

import (
	"time"

	"mmlpt/internal/packet"
)

// batchTransport is the syscall boundary of the LiveProber: everything
// below it is kernel I/O, everything above it (serialization, reply
// demultiplexing, the retry state machine) is pure and unit-testable.
// The production implementation batches whole waves through
// sendmmsg/recvmmsg (mmsg_linux.go); tests substitute an in-memory
// fake, and the loopback benchmark runs the identical machinery over an
// AF_UNIX socketpair so the hot path is measurable without CAP_NET_RAW.
type batchTransport interface {
	// SendBatch transmits pkts[i] toward dsts[i] and returns how many
	// packets the kernel accepted — always a prefix of pkts. A short
	// count with a nil error means the kernel refused the tail (buffer
	// pressure); the caller retries those probes on a later wave. The
	// packet buffers are owned by the caller and may be reused as soon
	// as SendBatch returns.
	SendBatch(pkts [][]byte, dsts []packet.Addr) (int, error)

	// RecvSome waits until the deadline for at least one inbound packet
	// and delivers one kernel burst of them (at most the transport's
	// batch size), calling deliver once per packet with a
	// transport-owned buffer valid only during the call. It returns nil
	// after one burst or once the deadline passes with nothing
	// received; callers loop while they still expect replies. A non-nil
	// error means the transport is unusable for the rest of the wave.
	RecvSome(deadline time.Time, deliver func(pkt []byte)) error

	// Syscalls is the cumulative number of system calls the transport
	// has issued — the budget the live wire path is optimized against
	// (see BenchmarkLiveLoopbackRound).
	Syscalls() uint64

	Close() error
}
