//go:build linux && !amd64 && !arm64 && !riscv64 && !loong64

package probe

// Unpinned architectures: zero disables the batched syscalls and the
// transport degrades to the per-packet sendto/recvfrom fallback, which
// is functionally identical (and exercised everywhere by
// TestLiveFallbackTransport).
const (
	sysSENDMMSG = 0
	sysRECVMMSG = 0
)
