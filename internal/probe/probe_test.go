package probe

import (
	"testing"

	"mmlpt/internal/fakeroute"
	"mmlpt/internal/packet"
)

var (
	tSrc = packet.MustParseAddr("192.0.2.1")
	tDst = packet.MustParseAddr("198.51.100.77")
)

// TestRepliesRetainedAcrossArenaChunks: replies come from a chunked
// arena but are never recycled — a caller may hold every reply of a long
// trace and each must keep its own values, across multiple chunk
// boundaries (3×replyArenaChunk probes).
func TestRepliesRetainedAcrossArenaChunks(t *testing.T) {
	net, _ := fakeroute.BuildScenario(40, tSrc, tDst, fakeroute.SimplestDiamond)
	p := NewSimProber(net, tSrc, tDst)
	p.Retries = 0
	const n = 3 * replyArenaChunk
	replies := make([]*packet.Reply, 0, n)
	froms := make([]packet.Addr, 0, n)
	ipids := make([]uint16, 0, n)
	for i := 0; i < n; i++ {
		r := p.Probe(uint16(i%8), 1+i%3)
		if r == nil {
			t.Fatalf("probe %d: no reply", i)
		}
		replies = append(replies, r)
		froms = append(froms, r.From)
		ipids = append(ipids, r.IPID)
	}
	for i, r := range replies {
		if r.From != froms[i] || r.IPID != ipids[i] {
			t.Fatalf("reply %d mutated after later probes: %+v", i, r)
		}
		if i > 0 && r == replies[i-1] {
			t.Fatalf("replies %d and %d share a struct", i-1, i)
		}
	}
}

func TestSimProberProbeAndCount(t *testing.T) {
	net, _ := fakeroute.BuildScenario(1, tSrc, tDst, fakeroute.SimplestDiamond)
	p := NewSimProber(net, tSrc, tDst)
	r := p.Probe(0, 1)
	if r == nil || !r.IsTimeExceeded() {
		t.Fatalf("probe reply %+v", r)
	}
	tr, e := p.Sent()
	if tr != 1 || e != 0 {
		t.Fatalf("sent %d/%d", tr, e)
	}
	if TotalSent(p) != 1 {
		t.Fatal("TotalSent mismatch")
	}
}

func TestSimProberRetriesCountAsSent(t *testing.T) {
	net, _ := fakeroute.BuildScenario(2, tSrc, tDst, fakeroute.SimplestDiamond)
	net.LossProb = 1 // nothing ever answers
	p := NewSimProber(net, tSrc, tDst)
	p.Retries = 2
	if r := p.Probe(0, 1); r != nil {
		t.Fatal("reply under 100% loss")
	}
	if tr, _ := p.Sent(); tr != 3 {
		t.Fatalf("sent %d, want 3 (1 + 2 retries)", tr)
	}
}

func TestSimProberEcho(t *testing.T) {
	net, path := fakeroute.BuildScenario(3, tSrc, tDst, fakeroute.SimplestDiamond)
	addr := path.Graph.V(path.Graph.Hop(0)[0]).Addr
	p := NewSimProber(net, tSrc, tDst)
	r := p.Echo(addr, 9)
	if r == nil || !r.IsEchoReply() || r.From != addr || r.EchoSeq != 9 {
		t.Fatalf("echo reply %+v", r)
	}
	if _, e := p.Sent(); e != 1 {
		t.Fatalf("echo sent %d", e)
	}
}

func TestSimProberFlowRangePanics(t *testing.T) {
	net, _ := fakeroute.BuildScenario(4, tSrc, tDst, fakeroute.SimplestDiamond)
	p := NewSimProber(net, tSrc, tDst)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range flow")
		}
	}()
	p.Probe(packet.MaxFlowID+1, 1)
}

func TestRecorderCallback(t *testing.T) {
	net, _ := fakeroute.BuildScenario(5, tSrc, tDst, fakeroute.SimplestDiamond)
	sim := NewSimProber(net, tSrc, tDst)
	var calls []uint64
	rec := &Recorder{Prober: sim, OnProbe: func(sent uint64, r *packet.Reply) {
		calls = append(calls, sent)
	}}
	rec.Probe(0, 1)
	rec.Probe(1, 1)
	rec.Echo(packet.MustParseAddr("10.0.0.1"), 1)
	if len(calls) != 3 {
		t.Fatalf("callbacks %d", len(calls))
	}
	for i := 1; i < len(calls); i++ {
		if calls[i] <= calls[i-1] {
			t.Fatal("sent counter not increasing across callbacks")
		}
	}
}

func TestSimProberSerialNonZero(t *testing.T) {
	// Probe identities must never be zero (zero UDP checksum means "not
	// computed" on the wire).
	net, _ := fakeroute.BuildScenario(6, tSrc, tDst, fakeroute.SimplestDiamond)
	p := NewSimProber(net, tSrc, tDst)
	for i := 0; i < 70000; i += 7001 {
		r := p.Probe(uint16(i%1000), 1)
		if r != nil && r.ProbeIdentity == 0 {
			t.Fatal("zero probe identity on the wire")
		}
	}
}
