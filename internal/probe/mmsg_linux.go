//go:build linux

package probe

import (
	"syscall"
	"time"
	"unsafe"

	"mmlpt/internal/packet"
)

// mmsgTransport is the production batchTransport: whole waves of
// packets cross the kernel boundary in single sendmmsg/recvmmsg calls
// over a pre-allocated arena of buffers, iovecs and message headers, so
// the syscall count per MDA round is a small constant and the receive
// path reuses one set of buffers forever instead of allocating 1500
// bytes per wait.
//
// The same type serves two wirings: the raw-socket pair of the live
// prober (IPPROTO_RAW + IP_HDRINCL for sends, IPPROTO_ICMP for
// receives, per-packet destination addresses) and a connected AF_UNIX
// datagram socketpair (newSocketpairTransport) that lets tests and the
// loopback benchmark drive the identical machinery without CAP_NET_RAW.
//
// On architectures without pinned mmsg syscall numbers (sysSENDMMSG ==
// 0) every batch degrades to per-packet sendto/recvfrom — functionally
// identical, one syscall per packet.
type mmsgTransport struct {
	sendFD, recvFD int
	// connected sockets (the socketpair wiring) take no per-packet
	// destination address.
	connected bool
	maxBatch  int
	syscalls  uint64

	// Send arena.
	siovs  []syscall.Iovec
	shdrs  []mmsghdr
	snames []syscall.RawSockaddrInet4

	// Receive arena.
	rbufs [][]byte
	riovs []syscall.Iovec
	rhdrs []mmsghdr

	useMMsg bool
}

// mmsghdr mirrors struct mmsghdr: a msghdr plus the kernel-filled
// per-message byte count. Trailing padding on 64-bit targets is added
// by the compiler (struct sizes round up to field alignment), so the
// layout matches C on every GOARCH.
type mmsghdr struct {
	Hdr syscall.Msghdr
	Len uint32
}

const (
	// msgWaitForOne makes recvmmsg return after the first datagram
	// arrives instead of blocking until the full vector fills.
	msgWaitForOne = 0x10000
	// recvBufLen is each receive slot's size; ICMP replies to our
	// probes fit in an MTU.
	recvBufLen = 1500
)

// newMMsgTransport builds the arena around two (possibly identical)
// open file descriptors. It takes ownership: Close closes them.
func newMMsgTransport(sendFD, recvFD int, connected bool, maxBatch int) *mmsgTransport {
	if maxBatch <= 0 {
		maxBatch = 64
	}
	t := &mmsgTransport{
		sendFD: sendFD, recvFD: recvFD,
		connected: connected, maxBatch: maxBatch,
		useMMsg: sysSENDMMSG != 0 && maxBatch > 1,
		siovs:   make([]syscall.Iovec, maxBatch),
		shdrs:   make([]mmsghdr, maxBatch),
		snames:  make([]syscall.RawSockaddrInet4, maxBatch),
		rbufs:   make([][]byte, maxBatch),
		riovs:   make([]syscall.Iovec, maxBatch),
		rhdrs:   make([]mmsghdr, maxBatch),
	}
	for i := range t.rbufs {
		t.rbufs[i] = make([]byte, recvBufLen)
		t.riovs[i].Base = &t.rbufs[i][0]
		t.riovs[i].SetLen(recvBufLen)
		t.rhdrs[i].Hdr.Iov = &t.riovs[i]
		t.rhdrs[i].Hdr.Iovlen = 1
	}
	return t
}

// SendBatch implements batchTransport with one sendmmsg per maxBatch
// packets (or per-packet sendto on fallback architectures).
func (t *mmsgTransport) SendBatch(pkts [][]byte, dsts []packet.Addr) (int, error) {
	sent := 0
	for sent < len(pkts) {
		n := len(pkts) - sent
		if n > t.maxBatch {
			n = t.maxBatch
		}
		if !t.useMMsg {
			m, err := t.sendSlow(pkts[sent:sent+n], dsts[sent:sent+n])
			sent += m
			if err != nil || m < n {
				return sent, err
			}
			continue
		}
		for k := 0; k < n; k++ {
			pkt := pkts[sent+k]
			t.siovs[k].Base = &pkt[0]
			t.siovs[k].SetLen(len(pkt))
			h := &t.shdrs[k]
			h.Hdr.Iov = &t.siovs[k]
			h.Hdr.Iovlen = 1
			if t.connected {
				h.Hdr.Name = nil
				h.Hdr.Namelen = 0
			} else {
				sa := &t.snames[k]
				a := dsts[sent+k]
				sa.Family = syscall.AF_INET
				sa.Addr = [4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)}
				h.Hdr.Name = (*byte)(unsafe.Pointer(sa))
				h.Hdr.Namelen = syscall.SizeofSockaddrInet4
			}
			h.Len = 0
		}
		t.syscalls++
		m, _, errno := syscall.Syscall6(sysSENDMMSG, uintptr(t.sendFD),
			uintptr(unsafe.Pointer(&t.shdrs[0])), uintptr(n), 0, 0, 0)
		if errno != 0 {
			if errno == syscall.EINTR {
				continue
			}
			return sent, errno
		}
		sent += int(m)
		if int(m) < n {
			// The kernel refused the tail; report the prefix and let the
			// retry machinery re-send the rest later.
			return sent, nil
		}
	}
	return sent, nil
}

// sendSlow is the per-packet fallback send path.
func (t *mmsgTransport) sendSlow(pkts [][]byte, dsts []packet.Addr) (int, error) {
	for k := range pkts {
		t.syscalls++
		var err error
		if t.connected {
			_, err = syscall.Write(t.sendFD, pkts[k])
		} else {
			a := dsts[k]
			sa := syscall.SockaddrInet4{
				Addr: [4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)},
			}
			err = syscall.Sendto(t.sendFD, pkts[k], 0, &sa)
		}
		if err != nil {
			return k, err
		}
	}
	return len(pkts), nil
}

func (t *mmsgTransport) setRecvTimeout(d time.Duration) error {
	t.syscalls++
	tv := syscall.NsecToTimeval(d.Nanoseconds())
	return syscall.SetsockoptTimeval(t.recvFD, syscall.SOL_SOCKET, syscall.SO_RCVTIMEO, &tv)
}

// RecvSome implements batchTransport: one recvmmsg burst (or one
// recvfrom on fallback architectures) per call, bounded by the
// deadline via SO_RCVTIMEO.
func (t *mmsgTransport) RecvSome(deadline time.Time, deliver func(pkt []byte)) error {
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil
		}
		if err := t.setRecvTimeout(remain); err != nil {
			return err
		}
		if !t.useMMsg {
			t.syscalls++
			n, _, err := syscall.Recvfrom(t.recvFD, t.rbufs[0], 0)
			if err != nil {
				if err == syscall.EAGAIN || err == syscall.EINTR {
					continue
				}
				return err
			}
			deliver(t.rbufs[0][:n])
			return nil
		}
		t.syscalls++
		n, _, errno := syscall.Syscall6(sysRECVMMSG, uintptr(t.recvFD),
			uintptr(unsafe.Pointer(&t.rhdrs[0])), uintptr(len(t.rhdrs)),
			msgWaitForOne, 0, 0)
		if errno != 0 {
			if errno == syscall.EAGAIN || errno == syscall.EINTR {
				continue
			}
			return errno
		}
		for i := 0; i < int(n); i++ {
			l := int(t.rhdrs[i].Len)
			if l > len(t.rbufs[i]) {
				l = len(t.rbufs[i])
			}
			deliver(t.rbufs[i][:l])
		}
		return nil
	}
}

// Syscalls implements batchTransport.
func (t *mmsgTransport) Syscalls() uint64 { return t.syscalls }

// Close implements batchTransport.
func (t *mmsgTransport) Close() error {
	err := syscall.Close(t.sendFD)
	if t.recvFD != t.sendFD {
		if e := syscall.Close(t.recvFD); err == nil {
			err = e
		}
	}
	return err
}

// newRawTransport opens the live raw-socket pair: one IPPROTO_RAW
// socket with IP_HDRINCL for sending fully crafted probes, and one
// IPPROTO_ICMP raw socket for receiving replies. Requires CAP_NET_RAW.
func newRawTransport(maxBatch int) (*mmsgTransport, error) {
	send, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_RAW, syscall.IPPROTO_RAW)
	if err != nil {
		return nil, &transportError{"raw send socket (need CAP_NET_RAW)", err}
	}
	if err := syscall.SetsockoptInt(send, syscall.IPPROTO_IP, syscall.IP_HDRINCL, 1); err != nil {
		syscall.Close(send)
		return nil, &transportError{"IP_HDRINCL", err}
	}
	recv, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_RAW, syscall.IPPROTO_ICMP)
	if err != nil {
		syscall.Close(send)
		return nil, &transportError{"raw recv socket", err}
	}
	return newMMsgTransport(send, recv, false, maxBatch), nil
}

// newSocketpairTransport wires the transport over a connected AF_UNIX
// datagram socketpair and returns the peer descriptor, which a test or
// benchmark responder (see fakerouteResponder) owns and must close.
// Datagram boundaries are preserved, so packets cross the pair exactly
// as they would a raw socket — same codecs, same demux, same syscalls —
// without any capability requirement.
func newSocketpairTransport(maxBatch int) (t *mmsgTransport, peer int, err error) {
	fds, err := syscall.Socketpair(syscall.AF_UNIX, syscall.SOCK_DGRAM, 0)
	if err != nil {
		return nil, 0, &transportError{"socketpair", err}
	}
	return newMMsgTransport(fds[0], fds[0], true, maxBatch), fds[1], nil
}

// transportError attaches the failing operation to a socket error.
type transportError struct {
	op  string
	err error
}

func (e *transportError) Error() string { return "probe: " + e.op + ": " + e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }
