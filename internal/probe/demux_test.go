package probe

import (
	"testing"

	"mmlpt/internal/fakeroute"
	"mmlpt/internal/packet"
)

// The demux tests feed real fakeroute wire bytes — the same ICMP format
// the live path parses — through packet.ParseReplyInto and Demux.Match,
// with no sockets involved.

// quotedChecksumOff is the wire offset of the quoted probe's UDP
// checksum (the Paris identity) inside an ICMP error reply: outer IP,
// ICMP header, quoted IP, then 6 bytes into the quoted UDP header.
const quotedChecksumOff = packet.IPv4HeaderLen + packet.ICMPHeaderLen + packet.IPv4HeaderLen + 6

func demuxSession(t *testing.T) *fakeroute.Session {
	t.Helper()
	net, _ := fakeroute.BuildScenario(7, tSrc, tDst, fakeroute.SimplestDiamond)
	return net.SessionFor(tSrc, tDst)
}

// traceReplyRaw sends one probe through the session and returns a copy
// of the raw reply bytes (HandleProbe's scratch is reused per call).
func traceReplyRaw(t *testing.T, sess *fakeroute.Session, flowID uint16, ttl int, identity uint16) []byte {
	t.Helper()
	pr := packet.Probe{Src: tSrc, Dst: tDst, FlowID: flowID, TTL: byte(ttl), Checksum: identity}
	raw := sess.HandleProbe(pr.Serialize())
	if raw == nil {
		t.Fatalf("no reply for flow %d ttl %d", flowID, ttl)
	}
	return append([]byte(nil), raw...)
}

func echoReplyRaw(t *testing.T, sess *fakeroute.Session, dst packet.Addr, id, seq uint16) []byte {
	t.Helper()
	ep := packet.EchoProbe{Src: tSrc, Dst: dst, ID: id, Seq: seq, IPID: seq}
	raw := sess.HandleProbe(ep.Serialize())
	if raw == nil {
		t.Fatalf("no echo reply from %v seq %d", dst, seq)
	}
	return append([]byte(nil), raw...)
}

func parseRaw(t *testing.T, raw []byte) *packet.Reply {
	t.Helper()
	var r packet.Reply
	if err := packet.ParseReplyInto(&r, raw); err != nil {
		t.Fatalf("ParseReplyInto: %v", err)
	}
	return &r
}

func TestDemuxQuotedIdentityMatch(t *testing.T) {
	sess := demuxSession(t)
	var d Demux
	d.BeginWave(tDst, liveEchoID)

	// Three probes in flight; replies arrive out of order.
	idents := []uint16{101, 102, 103}
	raws := make([][]byte, len(idents))
	for i, id := range idents {
		d.AddTrace(id, i)
		raws[i] = traceReplyRaw(t, sess, uint16(i), 1+i, id)
	}
	if got := d.Outstanding(); got != 3 {
		t.Fatalf("Outstanding = %d, want 3", got)
	}
	for _, i := range []int{2, 0, 1} {
		r := parseRaw(t, raws[i])
		if r.ProbeIdentity != idents[i] {
			t.Fatalf("reply %d quotes identity %#x, want %#x", i, r.ProbeIdentity, idents[i])
		}
		idx, ok := d.Match(r)
		if !ok || idx != i {
			t.Fatalf("Match(reply %d) = %d, %v; want %d, true", i, idx, ok, i)
		}
	}
	if got := d.Outstanding(); got != 0 {
		t.Fatalf("Outstanding after all matches = %d, want 0", got)
	}
	// A matched identity does not match twice (late duplicate).
	if _, ok := d.Match(parseRaw(t, raws[0])); ok {
		t.Fatal("duplicate reply matched after its identity was consumed")
	}
}

func TestDemuxUnknownIdentityIgnored(t *testing.T) {
	sess := demuxSession(t)
	var d Demux
	d.BeginWave(tDst, liveEchoID)
	d.AddTrace(50, 0)

	// A reply quoting a foreign identity (late arrival from a previous
	// wave) must not consume the outstanding probe.
	r := parseRaw(t, traceReplyRaw(t, sess, 0, 1, 999))
	if _, ok := d.Match(r); ok {
		t.Fatal("reply with unknown identity matched")
	}
	if got := d.Outstanding(); got != 1 {
		t.Fatalf("Outstanding = %d, want 1", got)
	}
}

func TestDemuxIdentitylessSingleton(t *testing.T) {
	sess := demuxSession(t)
	raw := traceReplyRaw(t, sess, 0, 1, 77)
	// Model a router that zeroes the quoted transport checksum: the
	// reply parses but carries no identity.
	raw[quotedChecksumOff] = 0
	raw[quotedChecksumOff+1] = 0
	r := parseRaw(t, raw)
	if r.ProbeIdentity != 0 {
		t.Fatalf("stripped reply still carries identity %#x", r.ProbeIdentity)
	}
	if r.ProbeDst != tDst {
		t.Fatalf("quoted dst = %v, want %v", r.ProbeDst, tDst)
	}

	var d Demux
	// Two probes outstanding: ambiguous, must not match.
	d.BeginWave(tDst, liveEchoID)
	d.AddTrace(77, 0)
	d.AddTrace(78, 1)
	if _, ok := d.Match(r); ok {
		t.Fatal("identity-less reply matched with two probes outstanding")
	}

	// Single probe outstanding: attributable.
	d.BeginWave(tDst, liveEchoID)
	d.AddTrace(77, 4)
	idx, ok := d.Match(r)
	if !ok || idx != 4 {
		t.Fatalf("singleton match = %d, %v; want 4, true", idx, ok)
	}
	if d.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d, want 0", d.Outstanding())
	}
}

func TestDemuxIdentitylessWrongDst(t *testing.T) {
	sess := demuxSession(t)
	raw := traceReplyRaw(t, sess, 0, 1, 77)
	raw[quotedChecksumOff] = 0
	raw[quotedChecksumOff+1] = 0
	r := parseRaw(t, raw)

	// The wave is toward a different destination than the quote: even a
	// singleton must not claim the reply.
	var d Demux
	d.BeginWave(tDst+1, liveEchoID)
	d.AddTrace(77, 0)
	if _, ok := d.Match(r); ok {
		t.Fatal("identity-less reply matched despite quoted dst mismatch")
	}
}

func TestDemuxTruncatedQuote(t *testing.T) {
	sess := demuxSession(t)
	full := traceReplyRaw(t, sess, 0, 1, 123)

	// Truncated inside the quoted UDP header: the identity is gone but
	// the quoted IP header still confirms the destination, so the
	// singleton fallback applies.
	shortUDP := full[:packet.IPv4HeaderLen+packet.ICMPHeaderLen+packet.IPv4HeaderLen+4]
	r := parseRaw(t, shortUDP)
	if r.ProbeIdentity != 0 {
		t.Fatalf("truncated quote still carries identity %#x", r.ProbeIdentity)
	}
	if r.ProbeDst != tDst {
		t.Fatalf("quoted dst = %v, want %v", r.ProbeDst, tDst)
	}
	var d Demux
	d.BeginWave(tDst, liveEchoID)
	d.AddTrace(123, 2)
	if idx, ok := d.Match(r); !ok || idx != 2 {
		t.Fatalf("singleton match on UDP-truncated quote = %d, %v; want 2, true", idx, ok)
	}

	// Truncated before the quoted IP header is decodable: no identity
	// and no quoted destination — unattributable even as a singleton.
	shortIP := full[:packet.IPv4HeaderLen+packet.ICMPHeaderLen+10]
	r2 := parseRaw(t, shortIP)
	if r2.ProbeDst != 0 {
		t.Fatalf("IP-truncated quote still carries dst %v", r2.ProbeDst)
	}
	d.BeginWave(tDst, liveEchoID)
	d.AddTrace(123, 2)
	if _, ok := d.Match(r2); ok {
		t.Fatal("reply with undecodable quote matched")
	}
}

// hopAddr recovers a pingable on-path interface address: the
// destination itself owns no interface in fakeroute, so echo tests
// target the hop that answered a trace probe.
func hopAddr(t *testing.T, sess *fakeroute.Session, ttl int) packet.Addr {
	t.Helper()
	r := parseRaw(t, traceReplyRaw(t, sess, 0, ttl, 900+uint16(ttl)))
	return r.From
}

func TestDemuxEchoDuplicateSpecs(t *testing.T) {
	sess := demuxSession(t)
	hop := hopAddr(t, sess, 2)
	var d Demux
	d.BeginWave(tDst, liveEchoID)

	// Two specs with the same (addr, seq): FIFO attribution.
	d.AddEcho(hop, 9, 0)
	d.AddEcho(hop, 9, 1)
	if got := d.Outstanding(); got != 2 {
		t.Fatalf("Outstanding = %d, want 2", got)
	}
	raw := echoReplyRaw(t, sess, hop, liveEchoID, 9)
	if idx, ok := d.Match(parseRaw(t, raw)); !ok || idx != 0 {
		t.Fatalf("first duplicate reply = %d, %v; want 0, true", idx, ok)
	}
	if idx, ok := d.Match(parseRaw(t, raw)); !ok || idx != 1 {
		t.Fatalf("second duplicate reply = %d, %v; want 1, true", idx, ok)
	}
	if _, ok := d.Match(parseRaw(t, raw)); ok {
		t.Fatal("third reply matched with no registration left")
	}
}

func TestDemuxEchoWrongID(t *testing.T) {
	sess := demuxSession(t)
	hop := hopAddr(t, sess, 2)
	var d Demux
	d.BeginWave(tDst, liveEchoID)
	d.AddEcho(hop, 3, 0)

	// A reply carrying a foreign echo identifier (another tool's ping on
	// a shared raw socket) must not be attributed.
	raw := echoReplyRaw(t, sess, hop, 0x1111, 3)
	if _, ok := d.Match(parseRaw(t, raw)); ok {
		t.Fatal("echo reply with foreign ID matched")
	}
	if got := d.Outstanding(); got != 1 {
		t.Fatalf("Outstanding = %d, want 1", got)
	}
}

func TestDemuxDropUnsent(t *testing.T) {
	var d Demux
	d.BeginWave(tDst, liveEchoID)
	d.AddTrace(5, 0)
	d.AddTrace(6, 1)
	d.AddEcho(tDst, 1, 2)
	d.AddEcho(tDst, 1, 3)

	d.DropTrace(6)
	d.DropEcho(tDst, 1, 3)
	if got := d.Outstanding(); got != 2 {
		t.Fatalf("Outstanding after drops = %d, want 2", got)
	}
	if d.HasIdentity(6) {
		t.Fatal("dropped identity still registered")
	}
	if !d.HasIdentity(5) {
		t.Fatal("live identity lost by unrelated drop")
	}
}

// TestLiveNextSerialSkipsInflight pins the wraparound guard: a wrapped
// serial counter must not hand out an identity owned by an in-flight
// probe of the current wave.
func TestLiveNextSerialSkipsInflight(t *testing.T) {
	p := &LiveProber{}
	p.demux.BeginWave(tDst, liveEchoID)
	p.demux.AddTrace(0xffff, 0)
	p.demux.AddTrace(1, 1)
	p.serial = 0xfffe
	if got := p.nextSerial(); got != 2 {
		t.Fatalf("nextSerial = %#x, want 2 (skipping 0xffff, 0, and in-flight 1)", got)
	}
}
