//go:build linux

package probe

import (
	"fmt"
	"os"
	"syscall"
	"time"

	"mmlpt/internal/packet"
)

// LiveProber sends real probes over Linux raw sockets. It requires
// CAP_NET_RAW (typically root). It implements the same Prober interface
// as the simulator-backed prober, so every algorithm in this repository
// can run unmodified against the live Internet.
//
// The implementation is stdlib-only (syscall): one IPPROTO_RAW socket with
// IP_HDRINCL for sending fully crafted probes, and one IPPROTO_ICMP raw
// socket for receiving replies. Reply matching uses the Paris probe
// identity quoted inside ICMP errors and the echo identifier for direct
// probes. This transport is exercised end-to-end against Fakeroute's wire
// format in tests; live operation additionally depends on kernel and
// network policy (rp_filter, firewalls) outside this package's control.
type LiveProber struct {
	Src, Dst_ packet.Addr
	// Timeout bounds the wait for each reply (default 2s).
	Timeout time.Duration
	// Retries re-sends on timeout (default 2).
	Retries int

	sendFD, recvFD int
	serial         uint16
	traceSent      uint64
	echoSent       uint64
}

// NewLiveProber opens the raw sockets. The caller must Close the prober.
func NewLiveProber(src, dst packet.Addr) (*LiveProber, error) {
	send, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_RAW, syscall.IPPROTO_RAW)
	if err != nil {
		return nil, fmt.Errorf("probe: raw send socket: %w (need CAP_NET_RAW)", err)
	}
	if err := syscall.SetsockoptInt(send, syscall.IPPROTO_IP, syscall.IP_HDRINCL, 1); err != nil {
		syscall.Close(send)
		return nil, fmt.Errorf("probe: IP_HDRINCL: %w", err)
	}
	recv, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_RAW, syscall.IPPROTO_ICMP)
	if err != nil {
		syscall.Close(send)
		return nil, fmt.Errorf("probe: raw recv socket: %w", err)
	}
	return &LiveProber{
		Src: src, Dst_: dst,
		Timeout: 2 * time.Second, Retries: 2,
		sendFD: send, recvFD: recv,
	}, nil
}

// Close releases the sockets.
func (p *LiveProber) Close() error {
	e1 := syscall.Close(p.sendFD)
	e2 := syscall.Close(p.recvFD)
	if e1 != nil {
		return e1
	}
	return e2
}

// Dst implements Prober.
func (p *LiveProber) Dst() packet.Addr { return p.Dst_ }

// Sent implements Prober.
func (p *LiveProber) Sent() (uint64, uint64) { return p.traceSent, p.echoSent }

// nextSerial allocates a non-zero probe identity not currently owned by
// another in-flight probe of the same batch, so a wrapped serial counter
// cannot hand out a live identity (replies would be unattributable).
func (p *LiveProber) nextSerial(inflight map[uint16]int) uint16 {
	for i := 0; i < 1<<16; i++ {
		p.serial++
		if p.serial == 0 {
			p.serial = 1
		}
		if _, live := inflight[p.serial]; !live {
			return p.serial
		}
	}
	return p.serial
}

func sockaddr(a packet.Addr) *syscall.SockaddrInet4 {
	return &syscall.SockaddrInet4{
		Addr: [4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)},
	}
}

func (p *LiveProber) setRecvDeadline(d time.Duration) error {
	tv := syscall.NsecToTimeval(d.Nanoseconds())
	return syscall.SetsockoptTimeval(p.recvFD, syscall.SOL_SOCKET, syscall.SO_RCVTIMEO, &tv)
}

// awaitReply reads ICMP messages until match accepts one or the deadline
// passes.
func (p *LiveProber) awaitReply(deadline time.Time, match func(*packet.Reply) bool) *packet.Reply {
	buf := make([]byte, 1500)
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil
		}
		if err := p.setRecvDeadline(remain); err != nil {
			return nil
		}
		n, _, err := syscall.Recvfrom(p.recvFD, buf, 0)
		if err != nil {
			if err == syscall.EAGAIN || err == syscall.EWOULDBLOCK || err == syscall.EINTR {
				if time.Now().After(deadline) {
					return nil
				}
				continue
			}
			return nil
		}
		reply, perr := packet.ParseReply(buf[:n])
		if perr != nil {
			continue
		}
		if match(reply) {
			return reply
		}
	}
}

// Probe implements Prober as a batch of one.
func (p *LiveProber) Probe(flowID uint16, ttl int) *packet.Reply {
	return p.ProbeBatch([]Spec{{FlowID: flowID, TTL: ttl}})[0]
}

// ProbeBatch implements Prober: the whole round is sent back to back and
// the replies are collected as they arrive, so the round trip cost is
// paid once per round rather than once per probe. Unanswered probes are
// retried (as a smaller batch) up to Retries times; the final attempt
// sends one probe at a time, because a router that truncates the quoted
// probe (identity-less reply) can only be attributed while a single
// probe is outstanding.
func (p *LiveProber) ProbeBatch(specs []Spec) []*packet.Reply {
	for _, sp := range specs {
		if sp.FlowID > packet.MaxFlowID {
			panic("probe: flow ID out of range")
		}
	}
	replies := make([]*packet.Reply, len(specs))
	pending := make([]int, len(specs))
	for i := range specs {
		pending[i] = i
	}
	attempts := p.Retries + 1
	for a := 0; a < attempts && len(pending) > 0; a++ {
		lastAttempt := a == attempts-1
		batches := [][]int{pending}
		if lastAttempt && len(pending) > 1 {
			batches = batches[:0]
			for _, i := range pending {
				batches = append(batches, []int{i})
			}
		}
		for _, batch := range batches {
			p.probeWave(specs, batch, replies)
		}
		pending = pending[:0]
		for i := range specs {
			if replies[i] == nil {
				pending = append(pending, i)
			}
		}
	}
	return replies
}

// probeWave sends one wave of probes (spec indices) and collects their
// replies until the timeout, filling the replies slice in place.
func (p *LiveProber) probeWave(specs []Spec, wave []int, replies []*packet.Reply) {
	// owner maps each in-flight probe identity to its spec index.
	owner := make(map[uint16]int, len(wave))
	for _, i := range wave {
		identity := p.nextSerial(owner)
		pr := packet.Probe{
			Src: p.Src, Dst: p.Dst_,
			FlowID: specs[i].FlowID, TTL: byte(specs[i].TTL), Checksum: identity,
		}
		p.traceSent++
		if err := syscall.Sendto(p.sendFD, pr.Serialize(), 0, sockaddr(p.Dst_)); err != nil {
			fmt.Fprintf(os.Stderr, "probe: sendto: %v\n", err)
			continue
		}
		owner[identity] = i
	}
	deadline := time.Now().Add(p.Timeout)
	for len(owner) > 0 {
		reply := p.awaitReply(deadline, func(r *packet.Reply) bool {
			if r.IsEchoReply() {
				return false
			}
			// Match on the quoted identity when present. An
			// identity-less quote (some routers truncate quotes) is
			// attributable only when a single probe is outstanding.
			if r.ProbeIdentity != 0 {
				_, ok := owner[r.ProbeIdentity]
				return ok
			}
			return len(owner) == 1 && r.ProbeDst == p.Dst_
		})
		if reply == nil {
			break // deadline passed
		}
		idx, ok := owner[reply.ProbeIdentity]
		if !ok {
			// Identity-less match: the single outstanding probe.
			for _, i := range owner {
				idx = i
			}
		}
		replies[idx] = reply
		delete(owner, reply.ProbeIdentity)
		if reply.ProbeIdentity == 0 {
			owner = map[uint16]int{}
		}
	}
}

// Echo implements Prober as a batch of one.
func (p *LiveProber) Echo(addr packet.Addr, seq uint16) *packet.Reply {
	return p.EchoBatch([]EchoSpec{{Addr: addr, Seq: seq}})[0]
}

// EchoBatch implements Prober, overlapping the round's echoes the same
// way ProbeBatch overlaps traceroute probes. Replies are attributed by
// (address, echo id, sequence); specs sharing both address and sequence
// resolve to the first unanswered one.
func (p *LiveProber) EchoBatch(specs []EchoSpec) []*packet.Reply {
	const echoID = 0x4d4c
	replies := make([]*packet.Reply, len(specs))
	pending := make([]int, len(specs))
	for i := range specs {
		pending[i] = i
	}
	attempts := p.Retries + 1
	for a := 0; a < attempts && len(pending) > 0; a++ {
		// Only probes that actually left the socket are awaited; a failed
		// Sendto must not hold the receive loop open until the deadline.
		outstanding := make([]int, 0, len(pending))
		for _, i := range pending {
			ep := packet.EchoProbe{
				Src: p.Src, Dst: specs[i].Addr,
				ID: echoID, Seq: specs[i].Seq, IPID: specs[i].Seq,
			}
			p.echoSent++
			if err := syscall.Sendto(p.sendFD, ep.Serialize(), 0, sockaddr(specs[i].Addr)); err != nil {
				continue
			}
			outstanding = append(outstanding, i)
		}
		deadline := time.Now().Add(p.Timeout)
		for len(outstanding) > 0 {
			reply := p.awaitReply(deadline, func(r *packet.Reply) bool {
				if !r.IsEchoReply() || r.EchoID != echoID {
					return false
				}
				for _, i := range outstanding {
					if r.From == specs[i].Addr && r.EchoSeq == specs[i].Seq {
						return true
					}
				}
				return false
			})
			if reply == nil {
				break
			}
			for k, i := range outstanding {
				if reply.From == specs[i].Addr && reply.EchoSeq == specs[i].Seq {
					replies[i] = reply
					outstanding = append(outstanding[:k], outstanding[k+1:]...)
					break
				}
			}
		}
		pending = pending[:0]
		for i := range specs {
			if replies[i] == nil {
				pending = append(pending, i)
			}
		}
	}
	return replies
}
