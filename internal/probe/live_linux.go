//go:build linux

package probe

import (
	"mmlpt/internal/packet"
)

// NewLiveProber opens the raw-socket transport (see newRawTransport)
// with default tunables: 2s reply timeout, 2 retries, 64-packet
// syscall batches. It requires CAP_NET_RAW (typically root). The caller
// must Close the prober.
//
// Reply matching uses the Paris probe identity quoted inside ICMP
// errors and the echo identifier for direct probes (see Demux). This
// transport is exercised end-to-end against Fakeroute's wire format
// over a socketpair in tests; live operation additionally depends on
// kernel and network policy (rp_filter, firewalls) outside this
// package's control.
func NewLiveProber(src, dst packet.Addr) (*LiveProber, error) {
	return NewLiveProberConfig(src, dst, LiveConfig{Retries: 2})
}

// NewLiveProberConfig is NewLiveProber with explicit tunables — the
// batching knobs cmd/survey surfaces for live mode.
func NewLiveProberConfig(src, dst packet.Addr, cfg LiveConfig) (*LiveProber, error) {
	cfg.fill()
	tr, err := newRawTransport(cfg.MaxBatch)
	if err != nil {
		return nil, err
	}
	return newLiveProber(src, dst, tr, cfg), nil
}
