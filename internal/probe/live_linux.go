//go:build linux

package probe

import (
	"fmt"
	"os"
	"syscall"
	"time"

	"mmlpt/internal/packet"
)

// LiveProber sends real probes over Linux raw sockets. It requires
// CAP_NET_RAW (typically root). It implements the same Prober interface
// as the simulator-backed prober, so every algorithm in this repository
// can run unmodified against the live Internet.
//
// The implementation is stdlib-only (syscall): one IPPROTO_RAW socket with
// IP_HDRINCL for sending fully crafted probes, and one IPPROTO_ICMP raw
// socket for receiving replies. Reply matching uses the Paris probe
// identity quoted inside ICMP errors and the echo identifier for direct
// probes. This transport is exercised end-to-end against Fakeroute's wire
// format in tests; live operation additionally depends on kernel and
// network policy (rp_filter, firewalls) outside this package's control.
type LiveProber struct {
	Src, Dst_ packet.Addr
	// Timeout bounds the wait for each reply (default 2s).
	Timeout time.Duration
	// Retries re-sends on timeout (default 2).
	Retries int

	sendFD, recvFD int
	serial         uint16
	traceSent      uint64
	echoSent       uint64
}

// NewLiveProber opens the raw sockets. The caller must Close the prober.
func NewLiveProber(src, dst packet.Addr) (*LiveProber, error) {
	send, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_RAW, syscall.IPPROTO_RAW)
	if err != nil {
		return nil, fmt.Errorf("probe: raw send socket: %w (need CAP_NET_RAW)", err)
	}
	if err := syscall.SetsockoptInt(send, syscall.IPPROTO_IP, syscall.IP_HDRINCL, 1); err != nil {
		syscall.Close(send)
		return nil, fmt.Errorf("probe: IP_HDRINCL: %w", err)
	}
	recv, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_RAW, syscall.IPPROTO_ICMP)
	if err != nil {
		syscall.Close(send)
		return nil, fmt.Errorf("probe: raw recv socket: %w", err)
	}
	return &LiveProber{
		Src: src, Dst_: dst,
		Timeout: 2 * time.Second, Retries: 2,
		sendFD: send, recvFD: recv,
	}, nil
}

// Close releases the sockets.
func (p *LiveProber) Close() error {
	e1 := syscall.Close(p.sendFD)
	e2 := syscall.Close(p.recvFD)
	if e1 != nil {
		return e1
	}
	return e2
}

// Dst implements Prober.
func (p *LiveProber) Dst() packet.Addr { return p.Dst_ }

// Sent implements Prober.
func (p *LiveProber) Sent() (uint64, uint64) { return p.traceSent, p.echoSent }

func (p *LiveProber) nextSerial() uint16 {
	p.serial++
	if p.serial == 0 {
		p.serial = 1
	}
	return p.serial
}

func sockaddr(a packet.Addr) *syscall.SockaddrInet4 {
	return &syscall.SockaddrInet4{
		Addr: [4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)},
	}
}

func (p *LiveProber) setRecvDeadline(d time.Duration) error {
	tv := syscall.NsecToTimeval(d.Nanoseconds())
	return syscall.SetsockoptTimeval(p.recvFD, syscall.SOL_SOCKET, syscall.SO_RCVTIMEO, &tv)
}

// awaitReply reads ICMP messages until match accepts one or the deadline
// passes.
func (p *LiveProber) awaitReply(deadline time.Time, match func(*packet.Reply) bool) *packet.Reply {
	buf := make([]byte, 1500)
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil
		}
		if err := p.setRecvDeadline(remain); err != nil {
			return nil
		}
		n, _, err := syscall.Recvfrom(p.recvFD, buf, 0)
		if err != nil {
			if err == syscall.EAGAIN || err == syscall.EWOULDBLOCK || err == syscall.EINTR {
				if time.Now().After(deadline) {
					return nil
				}
				continue
			}
			return nil
		}
		reply, perr := packet.ParseReply(buf[:n])
		if perr != nil {
			continue
		}
		if match(reply) {
			return reply
		}
	}
}

// Probe implements Prober.
func (p *LiveProber) Probe(flowID uint16, ttl int) *packet.Reply {
	if flowID > packet.MaxFlowID {
		panic("probe: flow ID out of range")
	}
	attempts := p.Retries + 1
	for a := 0; a < attempts; a++ {
		identity := p.nextSerial()
		pr := packet.Probe{
			Src: p.Src, Dst: p.Dst_,
			FlowID: flowID, TTL: byte(ttl), Checksum: identity,
		}
		p.traceSent++
		if err := syscall.Sendto(p.sendFD, pr.Serialize(), 0, sockaddr(p.Dst_)); err != nil {
			fmt.Fprintf(os.Stderr, "probe: sendto: %v\n", err)
			continue
		}
		reply := p.awaitReply(time.Now().Add(p.Timeout), func(r *packet.Reply) bool {
			if r.IsEchoReply() {
				return false
			}
			// Match on the quoted identity when present, else on the
			// quoted destination (some routers truncate quotes).
			if r.ProbeIdentity != 0 {
				return r.ProbeIdentity == identity
			}
			return r.ProbeDst == p.Dst_
		})
		if reply != nil {
			return reply
		}
	}
	return nil
}

// Echo implements Prober.
func (p *LiveProber) Echo(addr packet.Addr, seq uint16) *packet.Reply {
	attempts := p.Retries + 1
	const echoID = 0x4d4c
	for a := 0; a < attempts; a++ {
		ep := packet.EchoProbe{
			Src: p.Src, Dst: addr,
			ID: echoID, Seq: seq, IPID: seq,
		}
		p.echoSent++
		if err := syscall.Sendto(p.sendFD, ep.Serialize(), 0, sockaddr(addr)); err != nil {
			continue
		}
		reply := p.awaitReply(time.Now().Add(p.Timeout), func(r *packet.Reply) bool {
			return r.IsEchoReply() && r.From == addr && r.EchoID == echoID && r.EchoSeq == seq
		})
		if reply != nil {
			return reply
		}
	}
	return nil
}
