package probe

import (
	"mmlpt/internal/packet"
)

// Adaptive pacing (the paper's Sec 7 future-work item: "ICMP rate
// limiting is one common cause of a lack of replies, and a simulator that
// takes rate limiting into account could help in designing an algorithm
// to probe in ways less likely to trigger rate limiting").
//
// AdaptiveProber wraps a Prober and, when replies stop coming back,
// backs off before retrying: in simulation, backing off means advancing
// the simulated clock so router token buckets refill; live, it would mean
// sleeping. The wrapped algorithms are unchanged — they see a prober with
// a better reply rate at the cost of (simulated) time.

// Clock is the time source a pacing prober can push forward. The
// Fakeroute network implements it (network-wide), as does a per-trace
// fakeroute.Session (SimProber.Session): advancing the clock refills
// router token buckets without sending packets. Use the session clock
// when other traces probe the network in parallel, so the pacing stays
// deterministic.
type Clock interface {
	AdvanceClock(ticks uint64)
}

// AdaptiveProber paces probes around ICMP rate limiting.
type AdaptiveProber struct {
	Prober
	// Clock advances simulated time during backoff (required).
	Clock Clock
	// BackoffBase is the initial backoff in ticks (default 16).
	BackoffBase uint64
	// MaxBackoffs bounds the escalation (default 4: up to 16·2⁴ ticks).
	MaxBackoffs int
	// Spacing is an unconditional gap inserted before every probe
	// (default 0: adaptive only).
	Spacing uint64

	// Backoffs counts how many backoff pauses were taken.
	Backoffs uint64
}

// NewAdaptiveProber wraps p with pacing over the given clock.
func NewAdaptiveProber(p Prober, clock Clock) *AdaptiveProber {
	return &AdaptiveProber{
		Prober: p, Clock: clock,
		BackoffBase: 16, MaxBackoffs: 4,
	}
}

// Probe implements Prober with backoff-on-silence.
func (a *AdaptiveProber) Probe(flowID uint16, ttl int) *packet.Reply {
	if a.Spacing > 0 {
		a.Clock.AdvanceClock(a.Spacing)
	}
	if r := a.Prober.Probe(flowID, ttl); r != nil {
		return r
	}
	backoff := a.BackoffBase
	for i := 0; i < a.MaxBackoffs; i++ {
		a.Backoffs++
		a.Clock.AdvanceClock(backoff)
		if r := a.Prober.Probe(flowID, ttl); r != nil {
			return r
		}
		backoff *= 2
	}
	return nil
}

// ProbeBatch implements Prober. Pacing decisions are inherently
// sequential (each backoff depends on the previous probe's outcome), so
// the batch is paced probe by probe.
func (a *AdaptiveProber) ProbeBatch(specs []Spec) []*packet.Reply {
	replies := make([]*packet.Reply, len(specs))
	for i, sp := range specs {
		replies[i] = a.Probe(sp.FlowID, sp.TTL)
	}
	return replies
}

// EchoBatch implements Prober with the same per-probe pacing.
func (a *AdaptiveProber) EchoBatch(specs []EchoSpec) []*packet.Reply {
	replies := make([]*packet.Reply, len(specs))
	for i, sp := range specs {
		replies[i] = a.Echo(sp.Addr, sp.Seq)
	}
	return replies
}

// Echo implements Prober with the same pacing.
func (a *AdaptiveProber) Echo(addr packet.Addr, seq uint16) *packet.Reply {
	if a.Spacing > 0 {
		a.Clock.AdvanceClock(a.Spacing)
	}
	if r := a.Prober.Echo(addr, seq); r != nil {
		return r
	}
	backoff := a.BackoffBase
	for i := 0; i < a.MaxBackoffs; i++ {
		a.Backoffs++
		a.Clock.AdvanceClock(backoff)
		if r := a.Prober.Echo(addr, seq); r != nil {
			return r
		}
		backoff *= 2
	}
	return nil
}
