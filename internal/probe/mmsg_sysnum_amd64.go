//go:build linux && amd64

package probe

// sendmmsg/recvmmsg syscall numbers. The frozen syscall package tables
// predate sendmmsg (Linux 3.0) on most architectures, so both numbers
// are pinned here per GOARCH; a zero value routes the transport through
// the portable per-packet fallback (mmsg_sysnum_other.go).
const (
	sysSENDMMSG = 307
	sysRECVMMSG = 299
)
