package probe

import (
	"testing"

	"mmlpt/internal/fakeroute"
)

// TestAdaptiveProberBeatsRateLimit: under an aggressive ICMP rate limit,
// a plain prober loses most replies while the adaptive prober recovers
// them by waiting out the token bucket in simulated time — the Sec 7
// future-work scenario Fakeroute's rate limiting exists to support.
func TestAdaptiveProberBeatsRateLimit(t *testing.T) {
	mkNet := func() *fakeroute.Network {
		net, path := fakeroute.BuildScenario(21, tSrc, tDst, fakeroute.SimplestDiamond)
		r := net.RouterOf(path.Graph.V(path.Graph.Hop(0)[0]).Addr)
		r.RateLimit = 2
		r.RatePeriod = 100 // 2 replies per 100 ticks
		return net
	}

	plain := NewSimProber(mkNet(), tSrc, tDst)
	plain.Retries = 0
	plainReplies := 0
	for i := 0; i < 30; i++ {
		if plain.Probe(uint16(i), 1) != nil {
			plainReplies++
		}
	}

	net := mkNet()
	inner := NewSimProber(net, tSrc, tDst)
	inner.Retries = 0
	adaptive := NewAdaptiveProber(inner, net)
	adaptiveReplies := 0
	for i := 0; i < 30; i++ {
		if adaptive.Probe(uint16(i), 1) != nil {
			adaptiveReplies++
		}
	}

	if plainReplies >= 10 {
		t.Fatalf("plain prober got %d/30 replies; rate limit too weak for the test", plainReplies)
	}
	if adaptiveReplies < 25 {
		t.Fatalf("adaptive prober got only %d/30 replies", adaptiveReplies)
	}
	if adaptive.Backoffs == 0 {
		t.Fatal("adaptive prober never backed off")
	}
}

func TestAdaptiveProberSpacing(t *testing.T) {
	net, path := fakeroute.BuildScenario(22, tSrc, tDst, fakeroute.SimplestDiamond)
	r := net.RouterOf(path.Graph.V(path.Graph.Hop(0)[0]).Addr)
	r.RateLimit = 1
	r.RatePeriod = 10 // 1 reply per 10 ticks
	inner := NewSimProber(net, tSrc, tDst)
	inner.Retries = 0
	a := NewAdaptiveProber(inner, net)
	a.Spacing = 12 // proactive pacing above the refill interval
	a.MaxBackoffs = 0
	replies := 0
	for i := 0; i < 20; i++ {
		if a.Probe(uint16(i), 1) != nil {
			replies++
		}
	}
	if replies < 19 {
		t.Fatalf("spaced probing got %d/20 replies, want nearly all", replies)
	}
}
