package probe

import (
	"sync/atomic"
	"testing"
	"time"

	"mmlpt/internal/fakeroute"
	"mmlpt/internal/packet"
)

// The tests below run the real mmsgTransport — the same sendmmsg/
// recvmmsg arena the raw-socket prober uses — over an AF_UNIX datagram
// socketpair, with a fakeroute session answering on the peer end. No
// CAP_NET_RAW needed; datagram boundaries are preserved, so the wire
// bytes are identical to the raw-socket path.

// fakerouteResponder owns the peer descriptor of a socketpair
// transport and answers each received burst of probes with one batched
// send of fakeroute replies, mirroring how replies coalesce on a real
// wire. Reply bytes are copied into reusable slots so the responder
// stays allocation-free in steady state (TestLiveHotPathAllocs measures
// global mallocs).
type fakerouteResponder struct {
	tr    *mmsgTransport
	sess  *fakeroute.Session
	stop  atomic.Bool
	done  chan struct{}
	slots [][]byte
	dsts  []packet.Addr
}

func startResponder(sess *fakeroute.Session, peer, maxBatch int) *fakerouteResponder {
	r := &fakerouteResponder{
		tr:    newMMsgTransport(peer, peer, true, maxBatch),
		sess:  sess,
		done:  make(chan struct{}),
		slots: make([][]byte, maxBatch),
		dsts:  make([]packet.Addr, maxBatch),
	}
	for i := range r.slots {
		r.slots[i] = make([]byte, 0, recvBufLen)
	}
	go r.loop()
	return r
}

func (r *fakerouteResponder) loop() {
	defer close(r.done)
	// One persistent callback: a fresh closure per burst would pollute
	// the global malloc counts TestLiveHotPathAllocs measures.
	n := 0
	answer := func(pkt []byte) {
		rep := r.sess.HandleProbe(pkt)
		if rep == nil || n == len(r.slots) {
			return
		}
		r.slots[n] = append(r.slots[n][:0], rep...)
		n++
	}
	for !r.stop.Load() {
		n = 0
		if err := r.tr.RecvSome(time.Now().Add(50*time.Millisecond), answer); err != nil {
			return
		}
		if n > 0 {
			r.tr.SendBatch(r.slots[:n], r.dsts[:n])
		}
	}
}

func (r *fakerouteResponder) close() {
	r.stop.Store(true)
	<-r.done
	r.tr.Close()
}

// socketpairProber wires a LiveProber to a fakeroute-backed responder
// over a socketpair. Callers must call the returned stop function.
func socketpairProber(t testing.TB, seed uint64, maxBatch int, cfg LiveConfig) (*LiveProber, *fakeroute.Session, func()) {
	t.Helper()
	net, _ := fakeroute.BuildScenario(seed, tSrc, tDst, fakeroute.SimplestDiamond)
	sess := net.SessionFor(tSrc, tDst)
	tr, peer, err := newSocketpairTransport(maxBatch)
	if err != nil {
		t.Fatalf("socketpair transport: %v", err)
	}
	resp := startResponder(sess, peer, 64)
	p := newLiveProber(tSrc, tDst, tr, cfg)
	return p, sess, func() {
		resp.close()
		p.Close()
	}
}

func roundSpecs(n int) []Spec {
	specs := make([]Spec, n)
	for i := range specs {
		specs[i] = Spec{FlowID: uint16(i % 6), TTL: 1 + i%3}
	}
	return specs
}

func TestLiveLoopbackRoundTrip(t *testing.T) {
	p, _, stop := socketpairProber(t, 31, 64, LiveConfig{Retries: 2, Timeout: 2 * time.Second})
	defer stop()

	specs := roundSpecs(16)
	replies := p.ProbeBatch(specs)
	var hop packet.Addr
	for i, r := range replies {
		if r == nil {
			t.Fatalf("probe %d (flow %d ttl %d) unanswered over socketpair",
				i, specs[i].FlowID, specs[i].TTL)
		}
		if !r.IsTimeExceeded() {
			t.Fatalf("probe %d: type %d, want time exceeded", i, r.Type)
		}
		hop = r.From
	}

	echoes := p.EchoBatch([]EchoSpec{{hop, 1}, {hop, 2}, {hop, 3}})
	for i, r := range echoes {
		if r == nil || !r.IsEchoReply() || r.EchoSeq != uint16(i+1) {
			t.Fatalf("echo %d over socketpair: %+v", i, r)
		}
	}
	trace, echo := p.Sent()
	if trace != 16 || echo != 3 {
		t.Fatalf("Sent() = (%d, %d), want (16, 3)", trace, echo)
	}
}

// TestLiveFallbackTransport pins the per-packet degradation: MaxBatch 1
// disables the mmsg vectors and every send/receive goes through the
// sendto/recvfrom fallback, which must behave identically.
func TestLiveFallbackTransport(t *testing.T) {
	p, _, stop := socketpairProber(t, 32, 1, LiveConfig{Retries: 2, Timeout: 2 * time.Second})
	defer stop()

	replies := p.ProbeBatch(roundSpecs(8))
	for i, r := range replies {
		if r == nil {
			t.Fatalf("probe %d unanswered on fallback transport", i)
		}
	}
}

// TestLiveSyscallBudget is the tentpole's acceptance gate in test form:
// a batched 16-probe round must cost at least 5x fewer syscalls than
// the per-packet path. Both sides take the minimum over several rounds
// so scheduler-split receive bursts don't mask the steady state.
func TestLiveSyscallBudget(t *testing.T) {
	const probes = 16
	minRound := func(maxBatch int) uint64 {
		p, _, stop := socketpairProber(t, 33, maxBatch, LiveConfig{Retries: 0, Timeout: 2 * time.Second})
		defer stop()
		specs := roundSpecs(probes)
		p.ProbeBatch(specs) // warm-up: grow arenas, fault pages
		best := ^uint64(0)
		for i := 0; i < 10; i++ {
			before := p.Syscalls()
			p.ProbeBatch(specs)
			if d := p.Syscalls() - before; d < best {
				best = d
			}
		}
		return best
	}

	batched := minRound(64)
	perPacket := minRound(1)
	t.Logf("syscalls per %d-probe round: batched=%d per-packet=%d", probes, batched, perPacket)
	if perPacket < 3*probes {
		t.Fatalf("per-packet round cost %d syscalls, expected at least %d (send+timeout+recv per probe)",
			perPacket, 3*probes)
	}
	if batched*5 > perPacket {
		t.Fatalf("batched round = %d syscalls, per-packet = %d: want at least 5x reduction",
			batched, perPacket)
	}
}

// TestLiveHotPathAllocs pins the zero-allocation discipline end to end:
// a steady-state 16-probe round over the real transport stays within a
// constant few allocations (the replies slice and the amortized reply
// arena), independent of the probe count.
func TestLiveHotPathAllocs(t *testing.T) {
	p, _, stop := socketpairProber(t, 34, 64, LiveConfig{Retries: 0, Timeout: 2 * time.Second})
	defer stop()

	specs := roundSpecs(16)
	for i := 0; i < 3; i++ { // warm-up: arenas, demux maps, wave buffers
		for _, r := range p.ProbeBatch(specs) {
			if r == nil {
				t.Fatal("warm-up round lost a reply")
			}
		}
	}
	avg := testing.AllocsPerRun(10, func() {
		p.ProbeBatch(specs)
	})
	// One alloc for the replies slice, plus the reply arena's amortized
	// chunk; headroom for the responder goroutine sharing the heap.
	if avg > 4 {
		t.Errorf("allocs per 16-probe round = %.1f, want <= 4 (0 steady-state allocs/probe)", avg)
	}
}

// BenchmarkLiveLoopbackRound measures the live wire path over the
// socketpair loopback: one iteration is a 16-probe MDA-style round.
// probes/s and syscalls/round are the headline metrics the CI baseline
// tracks; the perpacket variant is the pre-batching wire path for
// comparison.
func BenchmarkLiveLoopbackRound(b *testing.B) {
	for _, bc := range []struct {
		name     string
		maxBatch int
	}{
		{"mmsg64", 64},
		{"perpacket", 1},
	} {
		b.Run(bc.name, func(b *testing.B) {
			p, _, stop := socketpairProber(b, 35, bc.maxBatch, LiveConfig{Retries: 0, Timeout: 2 * time.Second})
			defer stop()
			specs := roundSpecs(16)
			// syscalls/round is the steady-state floor: the minimum over
			// ten sampled rounds, so a scheduler-split receive burst in a
			// single measured iteration (CI runs -benchtime=1x) cannot
			// skew the tracked metric.
			p.ProbeBatch(specs) // warm-up
			minSys := ^uint64(0)
			for i := 0; i < 10; i++ {
				before := p.Syscalls()
				p.ProbeBatch(specs)
				if d := p.Syscalls() - before; d < minSys {
					minSys = d
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			t0 := time.Now()
			for i := 0; i < b.N; i++ {
				p.ProbeBatch(specs)
			}
			elapsed := time.Since(t0)
			b.StopTimer()
			b.ReportMetric(float64(16*b.N)/elapsed.Seconds(), "probes/s")
			b.ReportMetric(float64(minSys), "syscalls/round")
		})
	}
}
