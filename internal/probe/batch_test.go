package probe

import (
	"sync"
	"testing"

	"mmlpt/internal/fakeroute"
	"mmlpt/internal/packet"
)

func TestProbeBatchAlignsWithSpecs(t *testing.T) {
	net, _ := fakeroute.BuildScenario(21, tSrc, tDst, fakeroute.SimplestDiamond)
	p := NewSimProber(net, tSrc, tDst)
	specs := []Spec{{FlowID: 0, TTL: 1}, {FlowID: 1, TTL: 2}, {FlowID: 2, TTL: 1}}
	replies := p.ProbeBatch(specs)
	if len(replies) != len(specs) {
		t.Fatalf("replies = %d, want %d", len(replies), len(specs))
	}
	for i, r := range replies {
		if r == nil || !r.IsTimeExceeded() {
			t.Fatalf("reply %d: %+v", i, r)
		}
	}
	// Batch and single-probe paths share one core: counts must agree.
	if tr, _ := p.Sent(); tr != 3 {
		t.Fatalf("sent %d, want 3", tr)
	}
	single := p.Probe(0, 1)
	if single == nil || single.From != replies[0].From {
		t.Fatalf("single probe diverged from batch: %+v vs %+v", single, replies[0])
	}
}

func TestEchoBatchAlignsWithSpecs(t *testing.T) {
	net, path := fakeroute.BuildScenario(22, tSrc, tDst, fakeroute.SimplestDiamond)
	addr := path.Graph.V(path.Graph.Hop(0)[0]).Addr
	p := NewSimProber(net, tSrc, tDst)
	replies := p.EchoBatch([]EchoSpec{{Addr: addr, Seq: 4}, {Addr: addr, Seq: 5}})
	for i, r := range replies {
		if r == nil || !r.IsEchoReply() || r.EchoSeq != uint16(4+i) {
			t.Fatalf("echo reply %d: %+v", i, r)
		}
	}
	if _, e := p.Sent(); e != 2 {
		t.Fatalf("echo sent %d, want 2", e)
	}
}

// TestSerialAllocationSkipsInflight: the identity allocator must never
// hand out a serial currently held by an in-flight probe, even across a
// wraparound of the 16-bit space.
func TestSerialAllocationSkipsInflight(t *testing.T) {
	net, _ := fakeroute.BuildScenario(23, tSrc, tDst, fakeroute.SimplestDiamond)
	p := NewSimProber(net, tSrc, tDst)
	held := map[uint16]struct{}{}
	for i := 0; i < 3; i++ {
		s := p.nextSerial()
		if _, dup := held[s]; dup {
			t.Fatalf("duplicate serial %d", s)
		}
		held[s] = struct{}{}
	}
	// Force a wraparound: the next allocations must walk past 0 and the
	// three held identities without reusing any of them.
	p.mu.Lock()
	p.serial = 65534
	p.mu.Unlock()
	for i := 0; i < 6; i++ {
		s := p.nextSerial()
		if s == 0 {
			t.Fatal("zero serial allocated")
		}
		if _, dup := held[s]; dup {
			t.Fatalf("in-flight serial %d reused after wraparound", s)
		}
		held[s] = struct{}{}
	}
	for s := range held {
		p.releaseSerial(s)
	}
	if got := p.nextSerial(); got == 0 {
		t.Fatal("zero serial after release")
	}
}

// TestRecorderConcurrentBatches: a Recorder shared by concurrent batched
// probing must lose no callbacks, report monotonically non-decreasing
// cumulative counts, and agree with TotalSent at the end. Run with -race
// in CI, this is also the probe layer's race check.
func TestRecorderConcurrentBatches(t *testing.T) {
	net, path := fakeroute.BuildScenario(24, tSrc, tDst, fakeroute.SimplestDiamond)
	addr := path.Graph.V(path.Graph.Hop(0)[0]).Addr
	sim := NewSimProber(net, tSrc, tDst)
	sim.Retries = 0

	var calls int
	last := uint64(0)
	monotonic := true
	rec := &Recorder{Prober: sim, OnProbe: func(sent uint64, _ *packet.Reply) {
		// The Recorder serializes callbacks, so this closure needs no
		// extra locking.
		calls++
		if sent < last {
			monotonic = false
		}
		last = sent
	}}

	const (
		workers        = 8
		batchesPerGo   = 20
		probesPerBatch = 5
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < batchesPerGo; b++ {
				specs := make([]Spec, probesPerBatch)
				for i := range specs {
					specs[i] = Spec{FlowID: uint16((w*100 + i) % 1000), TTL: 1}
				}
				for _, r := range rec.ProbeBatch(specs) {
					if r == nil {
						panic("lost reply on deterministic topology")
					}
				}
				rec.EchoBatch([]EchoSpec{{Addr: addr, Seq: uint16(w)}})
			}
		}()
	}
	wg.Wait()

	wantProbes := uint64(workers * batchesPerGo * probesPerBatch)
	wantEchoes := uint64(workers * batchesPerGo)
	tr, e := rec.Sent()
	if tr != wantProbes || e != wantEchoes {
		t.Fatalf("sent %d/%d, want %d/%d", tr, e, wantProbes, wantEchoes)
	}
	if got := uint64(calls); got != wantProbes+wantEchoes {
		t.Fatalf("callbacks %d, want %d (no lost callbacks)", got, wantProbes+wantEchoes)
	}
	if !monotonic {
		t.Fatal("cumulative sent counts regressed across callbacks")
	}
	if TotalSent(rec) != wantProbes+wantEchoes {
		t.Fatalf("TotalSent %d, want %d", TotalSent(rec), wantProbes+wantEchoes)
	}
}

// batchSpy records the batch sizes forwarded to the underlying prober,
// to distinguish whole-batch forwarding from per-probe degradation.
type batchSpy struct {
	Prober
	probeBatches []int
	echoBatches  []int
}

func (s *batchSpy) ProbeBatch(specs []Spec) []*packet.Reply {
	s.probeBatches = append(s.probeBatches, len(specs))
	return s.Prober.ProbeBatch(specs)
}

func (s *batchSpy) EchoBatch(specs []EchoSpec) []*packet.Reply {
	s.echoBatches = append(s.echoBatches, len(specs))
	return s.Prober.EchoBatch(specs)
}

// TestRecorderOnBatch: with OnBatch set, batches must flow whole to the
// underlying prober (preserving a live transport's wave overlap) and be
// reported once per batch; without it, the per-probe path still applies.
func TestRecorderOnBatch(t *testing.T) {
	net, path := fakeroute.BuildScenario(26, tSrc, tDst, fakeroute.SimplestDiamond)
	addr := path.Graph.V(path.Graph.Hop(0)[0]).Addr
	sim := NewSimProber(net, tSrc, tDst)
	sim.Retries = 0
	spy := &batchSpy{Prober: sim}

	var batchCalls, probeCalls int
	var lastTotal uint64
	var lastLen int
	rec := &Recorder{
		Prober: spy,
		OnBatch: func(sent uint64, replies []*packet.Reply) {
			batchCalls++
			lastTotal = sent
			lastLen = len(replies)
		},
		OnProbe: func(sent uint64, _ *packet.Reply) { probeCalls++ },
	}

	specs := []Spec{{FlowID: 0, TTL: 1}, {FlowID: 1, TTL: 1}, {FlowID: 2, TTL: 2}}
	for i, r := range rec.ProbeBatch(specs) {
		if r == nil {
			t.Fatalf("reply %d lost on deterministic topology", i)
		}
	}
	if len(spy.probeBatches) != 1 || spy.probeBatches[0] != 3 {
		t.Fatalf("underlying batches = %v, want one batch of 3", spy.probeBatches)
	}
	if batchCalls != 1 || lastTotal != 3 || lastLen != 3 {
		t.Fatalf("OnBatch: %d calls, total %d, len %d; want 1, 3, 3", batchCalls, lastTotal, lastLen)
	}
	if probeCalls != 3 {
		t.Fatalf("OnProbe alongside OnBatch: %d calls, want 3 (one per reply)", probeCalls)
	}

	// Echo batches forward whole too.
	rec.EchoBatch([]EchoSpec{{Addr: addr, Seq: 1}, {Addr: addr, Seq: 2}})
	if len(spy.echoBatches) != 1 || spy.echoBatches[0] != 2 {
		t.Fatalf("underlying echo batches = %v, want one batch of 2", spy.echoBatches)
	}
	if batchCalls != 2 || lastLen != 2 {
		t.Fatalf("OnBatch after echo: %d calls, len %d; want 2, 2", batchCalls, lastLen)
	}

	// Single-probe calls report as batches of one.
	if r := rec.Probe(0, 1); r == nil {
		t.Fatal("single probe lost")
	}
	if batchCalls != 3 || lastLen != 1 {
		t.Fatalf("OnBatch after single probe: %d calls, len %d; want 3, 1", batchCalls, lastLen)
	}

	// Without OnBatch the per-probe fallback drives single probes only.
	spy2 := &batchSpy{Prober: sim}
	perProbe := 0
	rec2 := &Recorder{Prober: spy2, OnProbe: func(uint64, *packet.Reply) { perProbe++ }}
	rec2.ProbeBatch(specs)
	if len(spy2.probeBatches) != 0 {
		t.Fatalf("per-probe fallback forwarded batches: %v", spy2.probeBatches)
	}
	if perProbe != 3 {
		t.Fatalf("per-probe fallback: %d callbacks, want 3", perProbe)
	}
}

// TestTotalSentConcurrentReaders: TotalSent must be safe to read while
// batches are in flight and settle on the exact total.
func TestTotalSentConcurrentReaders(t *testing.T) {
	net, _ := fakeroute.BuildScenario(25, tSrc, tDst, fakeroute.SimplestDiamond)
	p := NewSimProber(net, tSrc, tDst)
	p.Retries = 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for b := 0; b < 50; b++ {
			p.ProbeBatch([]Spec{{FlowID: uint16(b), TTL: 1}, {FlowID: uint16(b), TTL: 2}})
		}
	}()
	for {
		select {
		case <-done:
			if got := TotalSent(p); got != 100 {
				t.Fatalf("TotalSent %d, want 100", got)
			}
			return
		default:
			_ = TotalSent(p) // must not race with the sender
		}
	}
}
