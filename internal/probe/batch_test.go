package probe

import (
	"sync"
	"testing"

	"mmlpt/internal/fakeroute"
	"mmlpt/internal/packet"
)

func TestProbeBatchAlignsWithSpecs(t *testing.T) {
	net, _ := fakeroute.BuildScenario(21, tSrc, tDst, fakeroute.SimplestDiamond)
	p := NewSimProber(net, tSrc, tDst)
	specs := []Spec{{FlowID: 0, TTL: 1}, {FlowID: 1, TTL: 2}, {FlowID: 2, TTL: 1}}
	replies := p.ProbeBatch(specs)
	if len(replies) != len(specs) {
		t.Fatalf("replies = %d, want %d", len(replies), len(specs))
	}
	for i, r := range replies {
		if r == nil || !r.IsTimeExceeded() {
			t.Fatalf("reply %d: %+v", i, r)
		}
	}
	// Batch and single-probe paths share one core: counts must agree.
	if tr, _ := p.Sent(); tr != 3 {
		t.Fatalf("sent %d, want 3", tr)
	}
	single := p.Probe(0, 1)
	if single == nil || single.From != replies[0].From {
		t.Fatalf("single probe diverged from batch: %+v vs %+v", single, replies[0])
	}
}

func TestEchoBatchAlignsWithSpecs(t *testing.T) {
	net, path := fakeroute.BuildScenario(22, tSrc, tDst, fakeroute.SimplestDiamond)
	addr := path.Graph.V(path.Graph.Hop(0)[0]).Addr
	p := NewSimProber(net, tSrc, tDst)
	replies := p.EchoBatch([]EchoSpec{{Addr: addr, Seq: 4}, {Addr: addr, Seq: 5}})
	for i, r := range replies {
		if r == nil || !r.IsEchoReply() || r.EchoSeq != uint16(4+i) {
			t.Fatalf("echo reply %d: %+v", i, r)
		}
	}
	if _, e := p.Sent(); e != 2 {
		t.Fatalf("echo sent %d, want 2", e)
	}
}

// TestSerialAllocationSkipsInflight: the identity allocator must never
// hand out a serial currently held by an in-flight probe, even across a
// wraparound of the 16-bit space.
func TestSerialAllocationSkipsInflight(t *testing.T) {
	net, _ := fakeroute.BuildScenario(23, tSrc, tDst, fakeroute.SimplestDiamond)
	p := NewSimProber(net, tSrc, tDst)
	held := map[uint16]struct{}{}
	for i := 0; i < 3; i++ {
		s := p.nextSerial()
		if _, dup := held[s]; dup {
			t.Fatalf("duplicate serial %d", s)
		}
		held[s] = struct{}{}
	}
	// Force a wraparound: the next allocations must walk past 0 and the
	// three held identities without reusing any of them.
	p.mu.Lock()
	p.serial = 65534
	p.mu.Unlock()
	for i := 0; i < 6; i++ {
		s := p.nextSerial()
		if s == 0 {
			t.Fatal("zero serial allocated")
		}
		if _, dup := held[s]; dup {
			t.Fatalf("in-flight serial %d reused after wraparound", s)
		}
		held[s] = struct{}{}
	}
	for s := range held {
		p.releaseSerial(s)
	}
	if got := p.nextSerial(); got == 0 {
		t.Fatal("zero serial after release")
	}
}

// TestRecorderConcurrentBatches: a Recorder shared by concurrent batched
// probing must lose no callbacks, report monotonically non-decreasing
// cumulative counts, and agree with TotalSent at the end. Run with -race
// in CI, this is also the probe layer's race check.
func TestRecorderConcurrentBatches(t *testing.T) {
	net, path := fakeroute.BuildScenario(24, tSrc, tDst, fakeroute.SimplestDiamond)
	addr := path.Graph.V(path.Graph.Hop(0)[0]).Addr
	sim := NewSimProber(net, tSrc, tDst)
	sim.Retries = 0

	var calls int
	last := uint64(0)
	monotonic := true
	rec := &Recorder{Prober: sim, OnProbe: func(sent uint64, _ *packet.Reply) {
		// The Recorder serializes callbacks, so this closure needs no
		// extra locking.
		calls++
		if sent < last {
			monotonic = false
		}
		last = sent
	}}

	const (
		workers        = 8
		batchesPerGo   = 20
		probesPerBatch = 5
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < batchesPerGo; b++ {
				specs := make([]Spec, probesPerBatch)
				for i := range specs {
					specs[i] = Spec{FlowID: uint16((w*100 + i) % 1000), TTL: 1}
				}
				for _, r := range rec.ProbeBatch(specs) {
					if r == nil {
						panic("lost reply on deterministic topology")
					}
				}
				rec.EchoBatch([]EchoSpec{{Addr: addr, Seq: uint16(w)}})
			}
		}()
	}
	wg.Wait()

	wantProbes := uint64(workers * batchesPerGo * probesPerBatch)
	wantEchoes := uint64(workers * batchesPerGo)
	tr, e := rec.Sent()
	if tr != wantProbes || e != wantEchoes {
		t.Fatalf("sent %d/%d, want %d/%d", tr, e, wantProbes, wantEchoes)
	}
	if got := uint64(calls); got != wantProbes+wantEchoes {
		t.Fatalf("callbacks %d, want %d (no lost callbacks)", got, wantProbes+wantEchoes)
	}
	if !monotonic {
		t.Fatal("cumulative sent counts regressed across callbacks")
	}
	if TotalSent(rec) != wantProbes+wantEchoes {
		t.Fatalf("TotalSent %d, want %d", TotalSent(rec), wantProbes+wantEchoes)
	}
}

// TestTotalSentConcurrentReaders: TotalSent must be safe to read while
// batches are in flight and settle on the exact total.
func TestTotalSentConcurrentReaders(t *testing.T) {
	net, _ := fakeroute.BuildScenario(25, tSrc, tDst, fakeroute.SimplestDiamond)
	p := NewSimProber(net, tSrc, tDst)
	p.Retries = 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for b := 0; b < 50; b++ {
			p.ProbeBatch([]Spec{{FlowID: uint16(b), TTL: 1}, {FlowID: uint16(b), TTL: 2}})
		}
	}()
	for {
		select {
		case <-done:
			if got := TotalSent(p); got != 100 {
				t.Fatalf("TotalSent %d, want 100", got)
			}
			return
		default:
			_ = TotalSent(p) // must not race with the sender
		}
	}
}
