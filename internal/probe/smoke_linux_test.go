//go:build linux

package probe

import (
	"os"
	"testing"
	"time"

	"mmlpt/internal/packet"
)

// The smoke tests below exercise the real raw-socket transport against
// the kernel's own ICMP machinery on loopback: UDP probes to a closed
// port draw port-unreachable errors (quoting our probe, so identity
// demux runs for real), and echo probes draw the kernel's ping
// responder. They are opt-in (MMLPT_LIVE_SMOKE=1) because they need
// CAP_NET_RAW and a network namespace where loopback ICMP is not
// filtered; CI runs them in a disposable netns when privileges allow.

func liveSmokeProber(t *testing.T) *LiveProber {
	t.Helper()
	if os.Getenv("MMLPT_LIVE_SMOKE") != "1" {
		t.Skip("live loopback smoke disabled; set MMLPT_LIVE_SMOKE=1 to run")
	}
	lo := packet.MustParseAddr("127.0.0.1")
	p, err := NewLiveProberConfig(lo, lo, LiveConfig{
		Timeout: time.Second, Retries: 1, MaxBatch: 16,
	})
	if err != nil {
		// Enabled but unprivileged: skip rather than fail, as the CI
		// netns step does when it cannot elevate.
		t.Skipf("raw sockets unavailable: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestLiveLoopbackSmoke(t *testing.T) {
	p := liveSmokeProber(t)
	// The kernel rate-limits destination-unreachable ICMP, so a small
	// round may be partially answered; one attributed reply proves the
	// whole path (raw send, checksum-valid probe, kernel quote, identity
	// demux).
	replies := p.ProbeBatch([]Spec{{0, 64}, {1, 64}, {2, 64}})
	got := 0
	for i, r := range replies {
		if r == nil {
			continue
		}
		got++
		if !r.IsPortUnreachable() {
			t.Errorf("probe %d: type %d code %d, want port unreachable", i, r.Type, r.Code)
		}
		if r.From != p.Dst_ {
			t.Errorf("probe %d: reply from %v, want %v", i, r.From, p.Dst_)
		}
	}
	if got == 0 {
		t.Fatal("no loopback port-unreachable replies attributed")
	}
	t.Logf("attributed %d/3 port-unreachable replies (ICMP rate limiting may drop the rest)", got)
}

func TestLiveEchoSmoke(t *testing.T) {
	p := liveSmokeProber(t)
	lo := packet.MustParseAddr("127.0.0.1")
	// Echo replies are not rate-limited: all should come back.
	replies := p.EchoBatch([]EchoSpec{{lo, 1}, {lo, 2}, {lo, 3}})
	for i, r := range replies {
		if r == nil {
			t.Fatalf("echo %d to loopback unanswered", i)
		}
		if !r.IsEchoReply() || r.EchoSeq != uint16(i+1) {
			t.Fatalf("echo %d: %+v, want echo reply seq %d", i, r, i+1)
		}
	}
}
