//go:build linux && (arm64 || riscv64 || loong64)

package probe

// Architectures on the generic Linux syscall table (see
// mmsg_sysnum_amd64.go for why these are pinned here).
const (
	sysSENDMMSG = 269
	sysRECVMMSG = 243
)
