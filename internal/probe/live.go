package probe

import (
	"fmt"
	"os"
	"time"

	"mmlpt/internal/packet"
)

// LiveProber sends real probes over a batchTransport — in production,
// Linux raw sockets driven by sendmmsg/recvmmsg (see NewLiveProber in
// live_linux.go). It implements the same Prober interface as the
// simulator-backed prober, so every algorithm in this repository can
// run unmodified against the live Internet.
//
// The wire path follows the repository's hot-path discipline end to
// end: each wave is serialized with the AppendTo codecs into a reusable
// set of prober-owned buffers, handed to the kernel in one (or few)
// sendmmsg calls, and replies are drained with batched receives, parsed
// in place with ParseReplyInto, and attributed by a syscall-free Demux.
// In steady state the send+demux path allocates nothing per probe; the
// syscall count per MDA round is a small constant instead of linear in
// the round size (pinned by TestLiveSyscallBudget and
// BenchmarkLiveLoopbackRound).
//
// A LiveProber is not safe for concurrent use; run one prober per
// traced pair, as the survey runner does.
type LiveProber struct {
	Src, Dst_ packet.Addr
	// Timeout bounds the wait for each wave's replies (default 2s).
	Timeout time.Duration
	// Retries re-sends unanswered probes on timeout.
	Retries int

	tr     batchTransport
	serial uint16

	traceSent uint64
	echoSent  uint64

	demux   Demux
	arena   replyArena
	scratch packet.Reply

	// deliver is the persistent RecvSome callback (allocated once, not
	// per receive burst); it fills curReplies for the wave in flight.
	deliver    func(pkt []byte)
	curReplies []*packet.Reply

	// Per-wave serialization scratch, reused across waves.
	bufs   [][]byte
	dsts   []packet.Addr
	idents []uint16

	// Retry-loop scratch.
	pending []int
	single  [1]int
}

// LiveConfig carries the live prober's tunables.
type LiveConfig struct {
	// Timeout bounds the wait for each wave's replies (0 = 2s).
	Timeout time.Duration
	// Retries re-sends unanswered probes up to this many times; the
	// final retry sends one probe at a time (see ProbeBatch). Zero
	// means a single attempt.
	Retries int
	// MaxBatch caps how many packets one sendmmsg/recvmmsg call
	// carries (0 = 64). Larger waves are split into MaxBatch-sized
	// syscalls.
	MaxBatch int
}

func (c *LiveConfig) fill() {
	if c.Timeout == 0 {
		c.Timeout = 2 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
}

// newLiveProber assembles a prober over an open transport.
func newLiveProber(src, dst packet.Addr, tr batchTransport, cfg LiveConfig) *LiveProber {
	cfg.fill()
	p := &LiveProber{
		Src: src, Dst_: dst,
		Timeout: cfg.Timeout, Retries: cfg.Retries,
		tr: tr,
	}
	p.deliver = func(pkt []byte) {
		if packet.ParseReplyInto(&p.scratch, pkt) != nil {
			return
		}
		idx, ok := p.demux.Match(&p.scratch)
		if !ok {
			return
		}
		r := p.arena.next()
		*r = p.scratch
		p.curReplies[idx] = r
	}
	return p
}

// Close releases the transport's sockets.
func (p *LiveProber) Close() error { return p.tr.Close() }

// Dst implements Prober.
func (p *LiveProber) Dst() packet.Addr { return p.Dst_ }

// Sent implements Prober. Only packets the kernel actually accepted are
// counted: a failed or refused send is not a probe the paper's cost
// metrics should see.
func (p *LiveProber) Sent() (uint64, uint64) { return p.traceSent, p.echoSent }

// Syscalls reports the cumulative system calls issued by the prober's
// transport.
func (p *LiveProber) Syscalls() uint64 { return p.tr.Syscalls() }

// nextSerial allocates a non-zero probe identity not currently owned by
// another in-flight probe of the same wave, so a wrapped serial counter
// cannot hand out a live identity (replies would be unattributable).
func (p *LiveProber) nextSerial() uint16 {
	for i := 0; i < 1<<16; i++ {
		p.serial++
		if p.serial == 0 {
			p.serial = 1
		}
		if !p.demux.HasIdentity(p.serial) {
			return p.serial
		}
	}
	return p.serial
}

func (p *LiveProber) timeout() time.Duration {
	if p.Timeout <= 0 {
		return 2 * time.Second
	}
	return p.Timeout
}

// Probe implements Prober as a batch of one.
func (p *LiveProber) Probe(flowID uint16, ttl int) *packet.Reply {
	return p.ProbeBatch([]Spec{{FlowID: flowID, TTL: ttl}})[0]
}

// Echo implements Prober as a batch of one.
func (p *LiveProber) Echo(addr packet.Addr, seq uint16) *packet.Reply {
	return p.EchoBatch([]EchoSpec{{Addr: addr, Seq: seq}})[0]
}

// ProbeBatch implements Prober: the whole round is serialized into the
// prober's wave buffers and sent in one (or few) batched syscalls, and
// the replies are collected with batched receives as they arrive, so
// the round-trip and syscall cost is paid once per round rather than
// once per probe. Unanswered probes are retried (as a smaller wave) up
// to Retries times; the final retry sends one probe at a time, because
// a router that truncates the quoted probe (identity-less reply) can
// only be attributed while a single probe is outstanding.
func (p *LiveProber) ProbeBatch(specs []Spec) []*packet.Reply {
	for _, sp := range specs {
		if sp.FlowID > packet.MaxFlowID {
			panic("probe: flow ID out of range")
		}
	}
	replies := make([]*packet.Reply, len(specs))
	p.runRounds(len(specs), true, replies, func(wave []int) {
		p.sendTraceWave(specs, wave)
	})
	return replies
}

// EchoBatch implements Prober, overlapping the round's echoes the same
// way ProbeBatch overlaps traceroute probes. Replies are attributed by
// (address, echo id, sequence); specs sharing both address and sequence
// resolve to the first unanswered one.
func (p *LiveProber) EchoBatch(specs []EchoSpec) []*packet.Reply {
	replies := make([]*packet.Reply, len(specs))
	p.runRounds(len(specs), false, replies, func(wave []int) {
		p.sendEchoWave(specs, wave)
	})
	return replies
}

// liveEchoID tags this prober's echo probes so foreign echo replies on
// a shared raw socket are never attributed to a wave.
const liveEchoID = 0x4d4c

// runRounds is the send/receive/retry state machine shared by the trace
// and echo paths: up to Retries+1 attempts, each sending the still
// unanswered specs as one wave and collecting replies until the wave's
// deadline. When singletonFinal is set the last retry degrades to
// one-probe waves, the only configuration in which an identity-less
// reply is attributable.
func (p *LiveProber) runRounds(n int, singletonFinal bool, replies []*packet.Reply, send func(wave []int)) {
	if cap(p.pending) < n {
		p.pending = make([]int, 0, n)
	}
	pending := p.pending[:0]
	for i := 0; i < n; i++ {
		pending = append(pending, i)
	}
	attempts := p.Retries + 1
	for a := 0; a < attempts && len(pending) > 0; a++ {
		// Only an actual retry degrades to singletons: with Retries == 0
		// the one attempt goes out as a full batched wave.
		if a == attempts-1 && a > 0 && singletonFinal && len(pending) > 1 {
			for _, i := range pending {
				p.single[0] = i
				p.runWave(p.single[:], replies, send)
			}
		} else {
			p.runWave(pending, replies, send)
		}
		pending = pending[:0]
		for i := 0; i < n; i++ {
			if replies[i] == nil {
				pending = append(pending, i)
			}
		}
	}
	p.pending = pending[:0]
}

// runWave sends one wave and drains its replies until the timeout,
// filling the replies slice in place.
func (p *LiveProber) runWave(wave []int, replies []*packet.Reply, send func(wave []int)) {
	send(wave)
	if p.demux.Outstanding() == 0 {
		return
	}
	p.curReplies = replies
	deadline := time.Now().Add(p.timeout())
	for p.demux.Outstanding() > 0 && time.Now().Before(deadline) {
		if err := p.tr.RecvSome(deadline, p.deliver); err != nil {
			return
		}
	}
}

// growWave sizes the serialization scratch for an n-probe wave, keeping
// previously grown buffers so steady-state waves allocate nothing.
func (p *LiveProber) growWave(n int) {
	if cap(p.bufs) < n {
		bufs := make([][]byte, n)
		copy(bufs, p.bufs[:cap(p.bufs)])
		p.bufs = bufs
		p.dsts = make([]packet.Addr, n)
		p.idents = make([]uint16, n)
	}
	p.bufs = p.bufs[:n]
	p.dsts = p.dsts[:n]
	p.idents = p.idents[:n]
}

// sendTraceWave serializes and transmits one wave of traceroute probes,
// registering each successfully sent probe with the demux and counting
// only packets that actually left the socket.
func (p *LiveProber) sendTraceWave(specs []Spec, wave []int) {
	p.demux.BeginWave(p.Dst_, liveEchoID)
	p.growWave(len(wave))
	for k, i := range wave {
		identity := p.nextSerial()
		pr := packet.Probe{
			Src: p.Src, Dst: p.Dst_,
			FlowID: specs[i].FlowID, TTL: byte(specs[i].TTL), Checksum: identity,
		}
		p.bufs[k] = pr.AppendTo(p.bufs[k][:0])
		p.dsts[k] = p.Dst_
		p.idents[k] = identity
		p.demux.AddTrace(identity, i)
	}
	n, err := p.tr.SendBatch(p.bufs, p.dsts)
	for k := n; k < len(wave); k++ {
		p.demux.DropTrace(p.idents[k])
	}
	p.traceSent += uint64(n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "probe: send batch: %v (%d of %d sent)\n", err, n, len(wave))
	}
}

// sendEchoWave is sendTraceWave for direct (ping-style) probes.
func (p *LiveProber) sendEchoWave(specs []EchoSpec, wave []int) {
	p.demux.BeginWave(p.Dst_, liveEchoID)
	p.growWave(len(wave))
	for k, i := range wave {
		// The probe's IP ID is set to seq so callers can detect routers
		// that copy the probe ID into the reply (a MIDAR "unable" cause).
		ep := packet.EchoProbe{
			Src: p.Src, Dst: specs[i].Addr,
			ID: liveEchoID, Seq: specs[i].Seq, IPID: specs[i].Seq,
		}
		p.bufs[k] = ep.AppendTo(p.bufs[k][:0])
		p.dsts[k] = specs[i].Addr
		p.demux.AddEcho(specs[i].Addr, specs[i].Seq, i)
	}
	n, err := p.tr.SendBatch(p.bufs, p.dsts)
	for k := n; k < len(wave); k++ {
		i := wave[k]
		p.demux.DropEcho(specs[i].Addr, specs[i].Seq, i)
	}
	p.echoSent += uint64(n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "probe: send batch: %v (%d of %d sent)\n", err, n, len(wave))
	}
}
