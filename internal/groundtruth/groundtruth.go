// Package groundtruth evaluates multipath tracing algorithms against
// simulated topologies with known ground truth, reproducing the paper's
// validation methodology (Sec 3) as a regression harness: each scenario
// draws random diamond meshes from a parameterized generator
// (fakeroute.GenerateMultipath), runs the full MDA and the MDA-Lite over
// identical networks, diffs each discovered topology against the
// generator's graph (topo.Diff), and scores accuracy (vertex/edge/
// diamond recall and precision, false links) against cost (probes sent,
// probe savings ratio).
//
// The scored records are byte-stable JSONL (traceio.EvalRecord), so a
// committed run of the scenario suite acts as a golden baseline: CI
// re-runs the suite on every change and fails when any metric drifts
// beyond tolerance (CompareGolden) — an accuracy regression in the
// tracing algorithms becomes a test failure, not archaeology.
package groundtruth

import (
	"hash/fnv"
	"strings"

	"mmlpt/internal/fakeroute"
	"mmlpt/internal/nprand"
	"mmlpt/internal/packet"
	"mmlpt/internal/topo"
)

// Scenario is one evaluation setting: a generator configuration plus the
// network conditions the trace runs under.
type Scenario struct {
	// Name identifies the scenario in records, goldens and CLI selection.
	Name string
	// Description is the one-line rationale cmd/eval -list prints.
	Description string
	// Gen parameterizes the random topology generator.
	Gen fakeroute.GenSpec
	// Pairs is how many (source, destination) routes are generated per
	// seed (default 2). Metrics aggregate over all of them.
	Pairs int
	// LossProb drops each reply independently with this probability.
	LossProb float64
	// RateLimit/RatePeriod, when RateLimit > 0, apply a token-bucket
	// reply rate limit to every router.
	RateLimit  int
	RatePeriod uint64
	// Retries is the prober's re-send count on no-reply (default 2).
	Retries int
	// FlowBased marks scenarios whose load balancers are all flow-based
	// (per-flow or per-destination with no per-packet component): the
	// regime the MDA's assumptions — and the paper's accuracy claim for
	// the MDA-Lite — apply to.
	FlowBased bool
	// RetraceChurn is the per-pair probability that the route changes
	// between the prior-building pass and the re-trace (BuildRetrace
	// installs a regenerated path as the pair's live topology). It only
	// affects the prior-seeded evaluation; Build ignores it. Churn
	// scenarios must keep Gen.LB zero: the alternate path shares the
	// original's dispatch-mode map.
	RetraceChurn float64
	// RetraceChurnAt is the trace-clock tick at which a churned pair's
	// route swaps (0 = changed before the re-trace starts, i.e. a stale
	// prior; >0 = mid-trace flap).
	RetraceChurnAt uint64
}

func (sc *Scenario) fill() {
	if sc.Pairs == 0 {
		sc.Pairs = 2
	}
	if sc.Retries == 0 {
		sc.Retries = 2
	}
}

// Instance is one built scenario: the network plus the ground truth per
// pair.
type Instance struct {
	Net   *fakeroute.Network
	Pairs []InstancePair
}

// InstancePair is one route of an instance.
type InstancePair struct {
	Src, Dst packet.Addr
	Truth    *topo.Graph
}

// Build constructs the scenario's network for one derived seed. Equal
// seeds build byte-identical ground truth, which is how the harness
// hands the MDA and the MDA-Lite each a fresh network with the same
// topology and the same reply behavior.
func (sc Scenario) Build(seed uint64) *Instance {
	return sc.build(seed, false)
}

// BuildRetrace constructs the network a re-trace pass runs over: the
// same ground truth as Build(seed), except that pairs selected by the
// RetraceChurn draw get a freshly generated route installed as their
// live topology, in force from tick RetraceChurnAt. Truth for a churned
// pair is the new route — what a re-survey should discover. With
// RetraceChurn zero this is exactly Build.
func (sc Scenario) BuildRetrace(seed uint64) *Instance {
	return sc.build(seed, true)
}

func (sc Scenario) build(seed uint64, retrace bool) *Instance {
	sc.fill()
	net := fakeroute.NewNetwork(seed)
	net.LossProb = sc.LossProb
	rng := nprand.New(seed ^ 0x67656e)
	churnRng := nprand.New(seed ^ 0x636875726e)
	alloc := fakeroute.NewAddrAllocator(packet.AddrFrom4(10, 0, 0, 1))
	inst := &Instance{Net: net}
	srcBase := packet.AddrFrom4(192, 0, 2, 1)
	dstAlloc := fakeroute.NewAddrAllocator(packet.AddrFrom4(203, 0, 113, 1))
	churn := retrace && sc.RetraceChurn > 0
	for i := 0; i < sc.Pairs; i++ {
		src := packet.Addr(uint32(srcBase) + uint32(i))
		dst := dstAlloc.Next()
		gp := fakeroute.GenerateMultipath(rng.Fork(uint64(i)), alloc, dst, sc.Gen)
		p := net.AddGeneratedPath(src, dst, gp)
		truth := gp.Graph
		if churn {
			// The churn draw and the alternate route come from a stream
			// independent of generation, so the un-churned pairs' ground
			// truth is byte-identical to Build's. The shared allocator
			// keeps the new route's addresses fresh: a stale prior meets
			// vertices it has never seen.
			crng := churnRng.Fork(uint64(i))
			if crng.Float64() < sc.RetraceChurn {
				alt := fakeroute.GenerateMultipath(crng, alloc, dst, sc.Gen)
				net.EnsureIfaces(alt.Graph, dst)
				p.Alt = alt.Graph
				p.AltAt = sc.RetraceChurnAt
				truth = alt.Graph
			}
		}
		inst.Pairs = append(inst.Pairs, InstancePair{Src: src, Dst: dst, Truth: truth})
	}
	if sc.RateLimit > 0 {
		for _, r := range net.Routers() {
			r.RateLimit = sc.RateLimit
			r.RatePeriod = sc.RatePeriod
		}
	}
	return inst
}

// scenarioSeed derives the instance seed for (base, scenario, index):
// per-scenario streams, so adding a scenario never reshuffles the ground
// truth of the others.
func scenarioSeed(base uint64, name string, idx int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return nprand.IndexedSeed(base^h.Sum64(), idx)
}

// Suite returns the committed evaluation scenarios: the flow-based
// family the paper's accuracy/cost claim is about, plus adversarial and
// noisy settings that pin how the algorithms degrade when the MDA
// assumptions are violated. CI's scenario-matrix job runs cmd/eval over
// these against testdata/eval_golden.jsonl.
func Suite() []Scenario {
	return []Scenario{
		{
			// Narrow uniform diamonds: the common case (~89% of the
			// paper's surveyed diamonds have zero width asymmetry).
			// MDA-Lite should match MDA's topology at a probe discount.
			Name:        "flow-narrow",
			Description: "narrow uniform diamonds, the common zero-asymmetry case",
			Gen:         fakeroute.GenSpec{Diamonds: 2, WidthMin: 2, WidthMax: 3, LenMin: 2, LenMax: 3, UniformWidth: true},
			Pairs:       3,
			FlowBased:   true,
		},
		{
			// Varying interior widths: no meshing, but the width changes
			// are real non-uniformity — the detector should fire and the
			// MDA-Lite switch over, trading its discount for safety.
			Name:        "flow-grow",
			Description: "varying interior widths fire the non-uniformity detector",
			Gen:         fakeroute.GenSpec{Diamonds: 2, WidthMin: 2, WidthMax: 4, LenMin: 3, LenMax: 4},
			Pairs:       2,
			FlowBased:   true,
		},
		{
			// Wide length-2 diamonds: where hop-level probing saves the
			// most over per-vertex probing (the paper's headline case).
			Name:        "flow-wide",
			Description: "wide length-2 diamonds, hop-level probing's best case",
			Gen:         fakeroute.GenSpec{Diamonds: 1, WidthMin: 8, WidthMax: 14, LenMin: 2, LenMax: 2},
			Pairs:       2,
			FlowBased:   true,
		},
		{
			// Long narrow diamonds: many interior hops, flow reuse does
			// the heavy lifting.
			Name:        "flow-long",
			Description: "long narrow diamonds exercising flow reuse",
			Gen:         fakeroute.GenSpec{Diamonds: 2, WidthMin: 2, WidthMax: 4, LenMin: 4, LenMax: 6, UniformWidth: true},
			Pairs:       2,
			FlowBased:   true,
		},
		{
			// Meshed interiors: the meshing test should fire and switch
			// the MDA-Lite over to the full MDA — accuracy preserved at
			// full-MDA cost.
			Name:        "flow-meshed",
			Description: "meshed interiors force the switch to the full MDA",
			Gen:         fakeroute.GenSpec{Diamonds: 1, WidthMin: 3, WidthMax: 6, LenMin: 3, LenMax: 4, MeshProb: 0.6},
			Pairs:       2,
			FlowBased:   true,
		},
		{
			// Uniform widths with a mix of dense and sparse meshing: the
			// sparse (CrossLink) transitions are the hard-to-detect
			// population of the paper's Fig 2, which the meshing test
			// misses with Eq. (1) probability 2^-k at phi=2 — the golden
			// pins how much topology that actually costs.
			Name:        "flow-sparsemesh",
			Description: "sparse cross-links the meshing test can miss (Eq. 1)",
			Gen:         fakeroute.GenSpec{Diamonds: 2, WidthMin: 3, WidthMax: 4, LenMin: 3, LenMax: 4, MeshProb: 0.5, UniformWidth: true},
			Pairs:       2,
			FlowBased:   true,
		},
		{
			// Width-asymmetric diamonds: the non-uniformity detector's
			// population.
			Name:        "flow-asym",
			Description: "width-asymmetric diamonds",
			Gen:         fakeroute.GenSpec{Diamonds: 1, WidthMin: 3, WidthMax: 6, LenMin: 3, LenMax: 4, AsymProb: 0.8},
			Pairs:       2,
			FlowBased:   true,
		},
		{
			// Unresponsive chain hops between diamonds.
			Name:        "stars",
			Description: "unresponsive chain hops between diamonds",
			Gen:         fakeroute.GenSpec{Diamonds: 2, WidthMin: 2, WidthMax: 3, LenMin: 2, LenMax: 3, StarProb: 0.25, ChainMin: 2, ChainMax: 3},
			Pairs:       3,
			FlowBased:   true,
		},
		{
			// Reply loss, absorbed by prober retries.
			Name:        "lossy",
			Description: "reply loss absorbed by prober retries",
			Gen:         fakeroute.GenSpec{Diamonds: 1, WidthMin: 3, WidthMax: 5, LenMin: 2, LenMax: 3},
			Pairs:       2,
			LossProb:    0.03,
			FlowBased:   true,
		},
		{
			// ICMP rate limiting: token buckets starve sustained probing,
			// so both algorithms lose vertices; the eval pins how much.
			Name:        "ratelimited",
			Description: "ICMP rate limiting starves sustained probing",
			Gen:         fakeroute.GenSpec{Diamonds: 1, WidthMin: 4, WidthMax: 6, LenMin: 2, LenMax: 2},
			Pairs:       2,
			RateLimit:   50,
			RatePeriod:  150,
			FlowBased:   true,
		},
		{
			// Per-destination balancing: every flow to the target rides
			// one path, so neither algorithm can see the diamond; recall
			// is low for both and the diff pins that it stays equal.
			Name:        "perdest",
			Description: "per-destination balancing hides the diamond from both tracers",
			Gen:         fakeroute.GenSpec{Diamonds: 1, WidthMin: 3, WidthMax: 5, LenMin: 2, LenMax: 3, LB: fakeroute.LBMix{PerDestination: 1}},
			Pairs:       2,
		},
		{
			// Per-packet balancing violates MDA assumption (2): flows do
			// not stick to paths, so discovery manufactures false links —
			// the precision side of the diff measures them.
			Name:        "perpacket",
			Description: "per-packet balancing manufactures false links",
			Gen:         fakeroute.GenSpec{Diamonds: 1, WidthMin: 3, WidthMax: 4, LenMin: 2, LenMax: 3, LB: fakeroute.LBMix{PerPacket: 1}},
			Pairs:       2,
		},
		{
			// Route churn between survey passes: half the pairs get a new
			// route before the re-trace, so their atlas priors are stale.
			// The prior-seeded tracer must detect the mismatch, fall back,
			// and recover the new topology — its recall is pinned against
			// the unseeded re-trace baseline. Unseeded columns are
			// unaffected (Build ignores churn).
			Name:         "retrace-churn",
			Description:  "half the routes change between passes: stale priors must fall back",
			Gen:          fakeroute.GenSpec{Diamonds: 2, WidthMin: 2, WidthMax: 3, LenMin: 2, LenMax: 3, UniformWidth: true},
			Pairs:        4,
			FlowBased:    true,
			RetraceChurn: 0.5,
		},
	}
}

// Select filters scenarios by comma-separated patterns: an exact name,
// or a prefix ending in '*'. The special pattern "all" (or an empty
// selection) keeps everything. Unknown patterns return an error listing
// valid names.
func Select(scenarios []Scenario, patterns string) ([]Scenario, error) {
	if patterns == "" || patterns == "all" {
		return scenarios, nil
	}
	var out []Scenario
	seen := make(map[string]bool)
	for _, pat := range splitComma(patterns) {
		matched := false
		for _, sc := range scenarios {
			if !match(pat, sc.Name) {
				continue
			}
			matched = true
			if seen[sc.Name] {
				continue
			}
			seen[sc.Name] = true
			out = append(out, sc)
		}
		if !matched {
			return nil, &UnknownScenarioError{Pattern: pat, Known: names(scenarios)}
		}
	}
	return out, nil
}

// UnknownScenarioError reports a selection pattern that matched nothing.
type UnknownScenarioError struct {
	Pattern string
	Known   []string
}

func (e *UnknownScenarioError) Error() string {
	return "groundtruth: no scenario matches " + e.Pattern +
		" (known: " + strings.Join(e.Known, ", ") + ")"
}

func names(scenarios []Scenario) []string {
	out := make([]string, len(scenarios))
	for i, sc := range scenarios {
		out[i] = sc.Name
	}
	return out
}

func match(pat, name string) bool {
	if strings.HasSuffix(pat, "*") {
		return strings.HasPrefix(name, strings.TrimSuffix(pat, "*"))
	}
	return pat == name
}

func splitComma(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
