package groundtruth

import (
	"bytes"
	"testing"

	"mmlpt/internal/fakeroute"
	"mmlpt/internal/mda"
	"mmlpt/internal/topo"
	"mmlpt/internal/traceio"
)

// testScenarios is a fast three-scenario subset exercising the uniform
// (no-switch) and switching regimes, plus mid-trace route churn for the
// prior-seeded passes (Build ignores churn, so unseeded runs see a
// plain third scenario).
func testScenarios() []Scenario {
	return []Scenario{
		{
			Name:      "t-uniform",
			Gen:       testGen(2, 3, 2, 3, true),
			Pairs:     2,
			FlowBased: true,
		},
		{
			Name:  "t-vary",
			Gen:   testGen(2, 4, 3, 4, false),
			Pairs: 2,
		},
		{
			Name:           "t-churn",
			Gen:            testGen(2, 3, 2, 3, true),
			Pairs:          3,
			FlowBased:      true,
			RetraceChurn:   0.6,
			RetraceChurnAt: 40, // mid-trace flap, not just a stale prior
		},
	}
}

func testGen(wmin, wmax, lmin, lmax int, uniform bool) (g fakeroute.GenSpec) {
	g.Diamonds = 2
	g.WidthMin, g.WidthMax = wmin, wmax
	g.LenMin, g.LenMax = lmin, lmax
	g.UniformWidth = uniform
	return g
}

// Determinism guard: the eval JSONL must be byte-identical for every
// worker count, mirroring the survey/atlas guards — in unseeded mode and
// in prior mode, where each instance additionally builds an atlas
// snapshot, extracts priors through the serving layer, and re-traces a
// churned network (t-churn flips routes mid-trace). Any nondeterminism
// in generation, tracing, prior extraction, diffing or record encoding
// shows up here as a byte diff.
func TestEvalByteIdenticalAcrossWorkers(t *testing.T) {
	t.Parallel()
	for _, withPrior := range []bool{false, true} {
		var ref []byte
		for _, workers := range []int{1, 4, 8} {
			var buf bytes.Buffer
			recs, err := Run(Config{
				Scenarios: testScenarios(), Seeds: 3, BaseSeed: 11, Workers: workers,
				WithPrior: withPrior,
				OnRecord:  func(r *traceio.EvalRecord) error { return r.WriteJSONL(&buf) },
			})
			if err != nil {
				t.Fatalf("prior=%t workers=%d: %v", withPrior, workers, err)
			}
			if len(recs) != 9 {
				t.Fatalf("prior=%t workers=%d: got %d records, want 9", withPrior, workers, len(recs))
			}
			if ref == nil {
				ref = append([]byte(nil), buf.Bytes()...)
				if len(ref) == 0 {
					t.Fatal("reference run produced no bytes; the guard would be vacuous")
				}
				continue
			}
			if !bytes.Equal(buf.Bytes(), ref) {
				t.Errorf("prior=%t workers=%d: eval JSONL differs from workers=1 reference", withPrior, workers)
			}
		}
	}
}

// The golden compare must catch a deliberately weakened stopping rule:
// halving the MDA's stopping confidence slashes probe counts (and can
// cost recall), which is exactly the class of regression the CI
// scenario-matrix job exists to stop.
func TestGoldenCompareCatchesNerf(t *testing.T) {
	t.Parallel()
	scs := testScenarios()
	golden, err := Run(Config{Scenarios: scs, Seeds: 2, BaseSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if drifts := CompareGolden(golden, golden, Tolerances{}); len(drifts) != 0 {
		t.Fatalf("self-compare drifted: %v", drifts)
	}

	// Nerf: eps 0.05 → 0.5, i.e. a 50%-confidence stopping table.
	nerfed, err := Run(Config{Scenarios: scs, Seeds: 2, BaseSeed: 5, Stop: mda.StoppingPoints(0.5, 128)})
	if err != nil {
		t.Fatal(err)
	}
	drifts := CompareGolden(nerfed, golden, Tolerances{})
	if len(drifts) == 0 {
		t.Fatal("halved stopping confidence produced no drift; the golden gate is vacuous")
	}
	probeDrift := false
	for _, d := range drifts {
		if d.Metric == "mda.probes" || d.Metric == "mdalite.probes" {
			probeDrift = true
		}
	}
	if !probeDrift {
		t.Errorf("nerf did not register as a probe-count drift: %v", drifts)
	}
}

// Missing records are drifts in both directions.
func TestGoldenCompareMissingRecords(t *testing.T) {
	t.Parallel()
	recs, err := Run(Config{Scenarios: testScenarios(), Seeds: 2, BaseSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if drifts := CompareGolden(recs[:len(recs)-1], recs, Tolerances{}); len(drifts) != 1 {
		t.Fatalf("dropped run record: got %d drifts, want 1", len(drifts))
	}
	if drifts := CompareGolden(recs, recs[:len(recs)-1], Tolerances{}); len(drifts) != 1 {
		t.Fatalf("dropped golden record: got %d drifts, want 1", len(drifts))
	}
}

// Acceptance pin for the paper's qualitative claim: on flow-based-LB
// scenarios the MDA-Lite recovers ≥95% of the full MDA's edge recall,
// and on the uniform (no-switch) scenarios it does so at materially
// fewer probes.
func TestMDALiteAccuracyCostOnFlowScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite evaluation sweep; skipped with -short")
	}
	t.Parallel()
	recs, err := Run(Config{Seeds: 3, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var liteProbes, mdaProbes uint64
	for _, r := range recs {
		if !r.FlowBased {
			continue
		}
		if r.RelativeEdgeRecall < 0.95 {
			t.Errorf("%s[seed %d]: relative edge recall %.3f < 0.95", r.Scenario, r.SeedIndex, r.RelativeEdgeRecall)
		}
		switch r.Scenario {
		case "flow-narrow", "flow-wide", "flow-long":
			liteProbes += r.MDALite.Probes
			mdaProbes += r.MDA.Probes
			if r.MDALite.Switched != 0 {
				t.Errorf("%s[seed %d]: uniform scenario switched to MDA %d times", r.Scenario, r.SeedIndex, r.MDALite.Switched)
			}
		}
	}
	if mdaProbes == 0 {
		t.Fatal("no uniform flow scenarios in the suite")
	}
	savings := 1 - float64(liteProbes)/float64(mdaProbes)
	if savings < 0.20 {
		t.Errorf("uniform flow scenarios: probe savings %.1f%% < 20%%", 100*savings)
	}
}

// Scenario selection.
func TestSelect(t *testing.T) {
	t.Parallel()
	suite := Suite()
	all, err := Select(suite, "all")
	if err != nil || len(all) != len(suite) {
		t.Fatalf("all: %v, %d scenarios", err, len(all))
	}
	flow, err := Select(suite, "flow-*")
	if err != nil {
		t.Fatal(err)
	}
	if len(flow) == 0 {
		t.Fatal("flow-* matched nothing")
	}
	for _, sc := range flow {
		if sc.Name[:5] != "flow-" {
			t.Errorf("flow-* matched %s", sc.Name)
		}
	}
	two, err := Select(suite, "perdest,perpacket")
	if err != nil || len(two) != 2 {
		t.Fatalf("explicit pair: %v, %d scenarios", err, len(two))
	}
	if _, err := Select(suite, "nope"); err == nil {
		t.Fatal("unknown pattern accepted")
	}
	// Overlapping patterns must not duplicate scenarios.
	overlap, err := Select(suite, "flow-*,flow-wide")
	if err != nil {
		t.Fatal(err)
	}
	if len(overlap) != len(flow) {
		t.Fatalf("overlap selection duplicated: %d vs %d", len(overlap), len(flow))
	}
}

// Same seed rebuilds identical ground truth: the property that lets each
// algorithm get its own fresh network.
func TestScenarioBuildDeterministic(t *testing.T) {
	t.Parallel()
	sc := Suite()[0]
	a := sc.Build(99)
	b := sc.Build(99)
	if len(a.Pairs) != len(b.Pairs) {
		t.Fatal("pair counts differ")
	}
	for i := range a.Pairs {
		if a.Pairs[i].Src != b.Pairs[i].Src || a.Pairs[i].Dst != b.Pairs[i].Dst {
			t.Fatalf("pair %d differs", i)
		}
		if !topo.Equal(a.Pairs[i].Truth, b.Pairs[i].Truth) {
			t.Fatalf("pair %d ground truth differs", i)
		}
	}
}
