package groundtruth

import (
	"testing"

	"mmlpt/internal/topo"
)

// Acceptance pin for the PR's headline claim: on re-trace scenarios the
// prior-seeded MDA-Lite spends ≥30% fewer probes than an unseeded
// re-survey at ≥0.95 mean relative edge recall — and under route churn
// the stale priors actually fall back, with recall preserved.
func TestPriorRetraceSavingsAndRecallPin(t *testing.T) {
	t.Parallel()
	recs, err := Run(Config{Seeds: 3, BaseSeed: 1, WithPrior: true})
	if err != nil {
		t.Fatal(err)
	}
	var priorProbes, retraceProbes uint64
	var relSum float64
	var n int
	churnStale := 0
	for _, r := range recs {
		if r.MDALitePrior == nil || r.MDALiteRetrace == nil {
			t.Fatalf("%s[seed %d]: prior columns missing from a WithPrior run", r.Scenario, r.SeedIndex)
		}
		priorProbes += r.MDALitePrior.Probes
		retraceProbes += r.MDALiteRetrace.Probes
		relSum += r.PriorRelativeEdgeRecall
		n++
		if r.Scenario == "retrace-churn" {
			churnStale += r.PriorStalePairs
			if r.PriorRelativeEdgeRecall < 0.95 {
				t.Errorf("retrace-churn[seed %d]: relative edge recall %.3f < 0.95 — fallback lost topology",
					r.SeedIndex, r.PriorRelativeEdgeRecall)
			}
		} else if r.PriorStalePairs > 0 && (r.Scenario == "flow-narrow" || r.Scenario == "flow-wide" || r.Scenario == "flow-long") {
			t.Errorf("%s[seed %d]: %d stale priors on an unchanged deterministic route",
				r.Scenario, r.SeedIndex, r.PriorStalePairs)
		}
	}
	if retraceProbes == 0 || n == 0 {
		t.Fatal("no prior re-trace data")
	}
	savings := 1 - float64(priorProbes)/float64(retraceProbes)
	if savings < 0.30 {
		t.Errorf("prior-seeded re-trace savings %.1f%% < 30%% (prior %d vs retrace %d probes)",
			100*savings, priorProbes, retraceProbes)
	}
	if mean := relSum / float64(n); mean < 0.95 {
		t.Errorf("mean relative edge recall %.3f < 0.95", mean)
	}
	if churnStale == 0 {
		t.Error("retrace-churn produced no stale priors; the fallback path went unexercised")
	}
}

// The golden compare's prior rules: an unseeded run passes against a
// prior-bearing golden (non-prior CI groups), but a prior run against a
// golden without prior columns is a drift (the gate cannot silently
// disappear), and a prior self-compare is exact.
func TestGoldenComparePriorRules(t *testing.T) {
	t.Parallel()
	scs := testScenarios()
	unseeded, err := Run(Config{Scenarios: scs, Seeds: 2, BaseSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := Run(Config{Scenarios: scs, Seeds: 2, BaseSeed: 5, WithPrior: true})
	if err != nil {
		t.Fatal(err)
	}
	if drifts := CompareGolden(seeded, seeded, Tolerances{}); len(drifts) != 0 {
		t.Fatalf("prior self-compare drifted: %v", drifts)
	}
	if drifts := CompareGolden(unseeded, seeded, Tolerances{}); len(drifts) != 0 {
		t.Fatalf("unseeded run against prior golden drifted: %v", drifts)
	}
	drifts := CompareGolden(seeded, unseeded, Tolerances{})
	if len(drifts) == 0 {
		t.Fatal("prior run against a prior-less golden passed; the prior gate is vacuous")
	}
	// The unseeded columns of a WithPrior run must be identical to an
	// unseeded run's: adding the third tracer cannot perturb the first two.
	for i := range unseeded {
		if unseeded[i].MDA != seeded[i].MDA || unseeded[i].MDALite != seeded[i].MDALite {
			t.Fatalf("record %d: unseeded columns differ between plain and WithPrior runs", i)
		}
	}
}

// BuildRetrace determinism and churn semantics: equal seeds rebuild
// identical re-trace truth, churned pairs' truth differs from Build's,
// and un-churned pairs' truth is byte-identical to Build's.
func TestBuildRetraceChurn(t *testing.T) {
	t.Parallel()
	var sc Scenario
	for _, s := range Suite() {
		if s.Name == "retrace-churn" {
			sc = s
		}
	}
	if sc.Name == "" {
		t.Fatal("retrace-churn scenario missing from the suite")
	}
	base := sc.Build(77)
	a := sc.BuildRetrace(77)
	b := sc.BuildRetrace(77)
	churned := 0
	for i := range a.Pairs {
		if !topo.Equal(a.Pairs[i].Truth, b.Pairs[i].Truth) {
			t.Fatalf("pair %d: re-trace truth differs across identical builds", i)
		}
		if !topo.Equal(a.Pairs[i].Truth, base.Pairs[i].Truth) {
			churned++
		}
	}
	if churned == 0 {
		t.Fatal("no pair churned at RetraceChurn=0.5 over 4 pairs (all seeds)")
	}
	if churned == len(a.Pairs) {
		t.Fatal("every pair churned; un-churned prior coverage went unexercised")
	}
}
