package groundtruth

import (
	"fmt"
	"os"

	"mmlpt/internal/traceio"
)

// Golden comparison.
//
// A golden file is a committed eval run (testdata/eval_golden.jsonl).
// The harness is fully deterministic, so a re-run on unchanged code
// reproduces the golden byte-for-byte; tolerances exist so a deliberate
// algorithm change with marginal metric drift can land by regenerating
// the golden, while an accidental accuracy or cost regression — lower
// recall, ballooning (or suspiciously collapsing) probe counts — fails
// CI's scenario-matrix job.

// Default tolerances, used by cmd/eval's flag defaults and CI.
const (
	DefaultRecallTolerance = 0.02
	DefaultProbesTolerance = 0.10
)

// Tolerances bound the allowed drift per metric family. Zero means
// exact match — the harness is fully deterministic, so demanding exact
// reproduction is legitimate; looseness must be asked for.
type Tolerances struct {
	// Recall is the absolute drift allowed on recall/precision/savings
	// ratios.
	Recall float64
	// Probes is the relative drift allowed on probe counts, either
	// direction: probes collapsing below the golden is as suspicious as
	// ballooning — it usually means a stopping rule got nerfed.
	Probes float64
}

// Drift is one metric that moved beyond tolerance relative to a golden
// record.
type Drift struct {
	Scenario  string
	SeedIndex int
	Metric    string
	Golden    float64
	Got       float64
}

func (d Drift) String() string {
	return fmt.Sprintf("DRIFT %s[seed %d] %s: golden %.4g, got %.4g",
		d.Scenario, d.SeedIndex, d.Metric, d.Golden, d.Got)
}

type recordKey struct {
	scenario string
	seedIdx  int
}

// CompareGolden diffs got against golden within tol. Records match by
// (scenario, seed index); a record present on only one side is itself a
// drift, so deleted scenarios or shortened seed sweeps cannot silently
// pass.
func CompareGolden(got, golden []*traceio.EvalRecord, tol Tolerances) []Drift {
	var drifts []Drift
	index := make(map[recordKey]*traceio.EvalRecord, len(got))
	for _, r := range got {
		index[recordKey{r.Scenario, r.SeedIndex}] = r
	}
	matched := make(map[recordKey]bool, len(golden))
	for _, g := range golden {
		k := recordKey{g.Scenario, g.SeedIndex}
		matched[k] = true
		r := index[k]
		if r == nil {
			drifts = append(drifts, Drift{Scenario: g.Scenario, SeedIndex: g.SeedIndex, Metric: "record missing from run"})
			continue
		}
		drifts = append(drifts, compareRecord(r, g, tol)...)
	}
	for _, r := range got {
		if !matched[recordKey{r.Scenario, r.SeedIndex}] {
			drifts = append(drifts, Drift{Scenario: r.Scenario, SeedIndex: r.SeedIndex, Metric: "record missing from golden"})
		}
	}
	return drifts
}

func compareRecord(got, golden *traceio.EvalRecord, tol Tolerances) []Drift {
	var drifts []Drift
	note := func(metric string, g, v float64) {
		drifts = append(drifts, Drift{
			Scenario: got.Scenario, SeedIndex: got.SeedIndex,
			Metric: metric, Golden: g, Got: v,
		})
	}
	absDrift := func(metric string, g, v float64) {
		if v-g > tol.Recall || g-v > tol.Recall {
			note(metric, g, v)
		}
	}
	relDrift := func(metric string, g, v float64) {
		if g == 0 {
			if v != 0 {
				note(metric, g, v)
			}
			return
		}
		if r := v/g - 1; r > tol.Probes || -r > tol.Probes {
			note(metric, g, v)
		}
	}
	exact := func(metric string, g, v float64) {
		if g != v {
			note(metric, g, v)
		}
	}

	compareAlgo := func(name string, gold, v traceio.AlgoEval) {
		relDrift(name+".probes", float64(gold.Probes), float64(v.Probes))
		absDrift(name+".vertex_recall", gold.VertexRecall, v.VertexRecall)
		absDrift(name+".edge_recall", gold.EdgeRecall, v.EdgeRecall)
		absDrift(name+".diamond_recall", gold.DiamondRecall, v.DiamondRecall)
		absDrift(name+".vertex_precision", gold.VertexPrecision, v.VertexPrecision)
		absDrift(name+".edge_precision", gold.EdgePrecision, v.EdgePrecision)
		exact(name+".reached", float64(gold.Reached), float64(v.Reached))
	}
	compareAlgo("mda", golden.MDA, got.MDA)
	compareAlgo("mdalite", golden.MDALite, got.MDALite)
	absDrift("probe_savings", golden.ProbeSavings, got.ProbeSavings)
	absDrift("relative_edge_recall", golden.RelativeEdgeRecall, got.RelativeEdgeRecall)

	// Prior columns are compared only when the run produced them: a
	// non-prior CI group legitimately runs unseeded against a golden that
	// carries prior columns. The reverse — a prior run whose golden has no
	// prior columns — is a drift, so the prior gate cannot silently turn
	// into a no-op.
	if got.MDALitePrior != nil {
		if golden.MDALitePrior == nil || golden.MDALiteRetrace == nil {
			note("prior columns missing from golden", 0, 1)
			return drifts
		}
		compareAlgo("mdalite_prior", *golden.MDALitePrior, *got.MDALitePrior)
		compareAlgo("mdalite_retrace", *golden.MDALiteRetrace, *got.MDALiteRetrace)
		absDrift("prior_probe_savings", golden.PriorProbeSavings, got.PriorProbeSavings)
		absDrift("prior_relative_edge_recall", golden.PriorRelativeEdgeRecall, got.PriorRelativeEdgeRecall)
		exact("prior_stale_pairs", float64(golden.PriorStalePairs), float64(got.PriorStalePairs))
	}
	return drifts
}

// LoadGolden reads a golden JSONL file, keeping only records whose
// scenario is in the selected set (nil keeps all): a partial scenario
// selection compares against the matching slice of the golden.
func LoadGolden(path string, selected []Scenario) ([]*traceio.EvalRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := traceio.ReadEvalRecords(f)
	if err != nil {
		return nil, fmt.Errorf("groundtruth: %s: %w", path, err)
	}
	if selected == nil {
		return recs, nil
	}
	keep := make(map[string]bool, len(selected))
	for _, sc := range selected {
		keep[sc.Name] = true
	}
	var out []*traceio.EvalRecord
	for _, r := range recs {
		if keep[r.Scenario] {
			out = append(out, r)
		}
	}
	return out, nil
}
