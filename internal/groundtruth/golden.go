package groundtruth

import (
	"fmt"
	"os"

	"mmlpt/internal/traceio"
)

// Golden comparison.
//
// A golden file is a committed eval run (testdata/eval_golden.jsonl).
// The harness is fully deterministic, so a re-run on unchanged code
// reproduces the golden byte-for-byte; tolerances exist so a deliberate
// algorithm change with marginal metric drift can land by regenerating
// the golden, while an accidental accuracy or cost regression — lower
// recall, ballooning (or suspiciously collapsing) probe counts — fails
// CI's scenario-matrix job.

// Default tolerances, used by cmd/eval's flag defaults and CI.
const (
	DefaultRecallTolerance = 0.02
	DefaultProbesTolerance = 0.10
)

// Tolerances bound the allowed drift per metric family. Zero means
// exact match — the harness is fully deterministic, so demanding exact
// reproduction is legitimate; looseness must be asked for.
type Tolerances struct {
	// Recall is the absolute drift allowed on recall/precision/savings
	// ratios.
	Recall float64
	// Probes is the relative drift allowed on probe counts, either
	// direction: probes collapsing below the golden is as suspicious as
	// ballooning — it usually means a stopping rule got nerfed.
	Probes float64
}

// Drift is one metric that moved beyond tolerance relative to a golden
// record.
type Drift struct {
	Scenario  string
	SeedIndex int
	Metric    string
	Golden    float64
	Got       float64
}

func (d Drift) String() string {
	return fmt.Sprintf("DRIFT %s[seed %d] %s: golden %.4g, got %.4g",
		d.Scenario, d.SeedIndex, d.Metric, d.Golden, d.Got)
}

type recordKey struct {
	scenario string
	seedIdx  int
}

// CompareGolden diffs got against golden within tol. Records match by
// (scenario, seed index); a record present on only one side is itself a
// drift, so deleted scenarios or shortened seed sweeps cannot silently
// pass.
func CompareGolden(got, golden []*traceio.EvalRecord, tol Tolerances) []Drift {
	var drifts []Drift
	index := make(map[recordKey]*traceio.EvalRecord, len(got))
	for _, r := range got {
		index[recordKey{r.Scenario, r.SeedIndex}] = r
	}
	matched := make(map[recordKey]bool, len(golden))
	for _, g := range golden {
		k := recordKey{g.Scenario, g.SeedIndex}
		matched[k] = true
		r := index[k]
		if r == nil {
			drifts = append(drifts, Drift{Scenario: g.Scenario, SeedIndex: g.SeedIndex, Metric: "record missing from run"})
			continue
		}
		drifts = append(drifts, compareRecord(r, g, tol)...)
	}
	for _, r := range got {
		if !matched[recordKey{r.Scenario, r.SeedIndex}] {
			drifts = append(drifts, Drift{Scenario: r.Scenario, SeedIndex: r.SeedIndex, Metric: "record missing from golden"})
		}
	}
	return drifts
}

func compareRecord(got, golden *traceio.EvalRecord, tol Tolerances) []Drift {
	var drifts []Drift
	note := func(metric string, g, v float64) {
		drifts = append(drifts, Drift{
			Scenario: got.Scenario, SeedIndex: got.SeedIndex,
			Metric: metric, Golden: g, Got: v,
		})
	}
	absDrift := func(metric string, g, v float64) {
		if v-g > tol.Recall || g-v > tol.Recall {
			note(metric, g, v)
		}
	}
	relDrift := func(metric string, g, v float64) {
		if g == 0 {
			if v != 0 {
				note(metric, g, v)
			}
			return
		}
		if r := v/g - 1; r > tol.Probes || -r > tol.Probes {
			note(metric, g, v)
		}
	}
	exact := func(metric string, g, v float64) {
		if g != v {
			note(metric, g, v)
		}
	}

	for _, a := range []struct {
		name      string
		got, gold traceio.AlgoEval
	}{
		{"mda", got.MDA, golden.MDA},
		{"mdalite", got.MDALite, golden.MDALite},
	} {
		relDrift(a.name+".probes", float64(a.gold.Probes), float64(a.got.Probes))
		absDrift(a.name+".vertex_recall", a.gold.VertexRecall, a.got.VertexRecall)
		absDrift(a.name+".edge_recall", a.gold.EdgeRecall, a.got.EdgeRecall)
		absDrift(a.name+".diamond_recall", a.gold.DiamondRecall, a.got.DiamondRecall)
		absDrift(a.name+".vertex_precision", a.gold.VertexPrecision, a.got.VertexPrecision)
		absDrift(a.name+".edge_precision", a.gold.EdgePrecision, a.got.EdgePrecision)
		exact(a.name+".reached", float64(a.gold.Reached), float64(a.got.Reached))
	}
	absDrift("probe_savings", golden.ProbeSavings, got.ProbeSavings)
	absDrift("relative_edge_recall", golden.RelativeEdgeRecall, got.RelativeEdgeRecall)
	return drifts
}

// LoadGolden reads a golden JSONL file, keeping only records whose
// scenario is in the selected set (nil keeps all): a partial scenario
// selection compares against the matching slice of the golden.
func LoadGolden(path string, selected []Scenario) ([]*traceio.EvalRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := traceio.ReadEvalRecords(f)
	if err != nil {
		return nil, fmt.Errorf("groundtruth: %s: %w", path, err)
	}
	if selected == nil {
		return recs, nil
	}
	keep := make(map[string]bool, len(selected))
	for _, sc := range selected {
		keep[sc.Name] = true
	}
	var out []*traceio.EvalRecord
	for _, r := range recs {
		if keep[r.Scenario] {
			out = append(out, r)
		}
	}
	return out, nil
}
