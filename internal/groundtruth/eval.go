package groundtruth

import (
	"os"
	"sync/atomic"

	"mmlpt/internal/atlas"
	"mmlpt/internal/atlas/serve"
	"mmlpt/internal/mda"
	"mmlpt/internal/mdalite"
	"mmlpt/internal/nprand"
	"mmlpt/internal/par"
	"mmlpt/internal/prior"
	"mmlpt/internal/probe"
	"mmlpt/internal/topo"
	"mmlpt/internal/traceio"
)

// Config controls an evaluation run.
type Config struct {
	// Scenarios to evaluate (nil selects the committed Suite).
	Scenarios []Scenario
	// Seeds is the seed-sweep width per scenario (default 1).
	Seeds int
	// BaseSeed anchors the per-scenario seed streams.
	BaseSeed uint64
	// Phi is the MDA-Lite meshing budget (0 selects the default).
	Phi int
	// Stop overrides the MDA stopping-point table (nil selects the
	// default 95%-confidence table). The knob exists for ablations — and
	// for the nerf test proving the golden compare catches a weakened
	// stopping rule.
	Stop []int
	// WithPrior adds the atlas-prior re-trace columns to every record: an
	// unseeded MDA-Lite pass builds an atlas snapshot, priors are
	// extracted from it through the serving layer, and a prior-seeded
	// re-trace is scored against an unseeded re-trace baseline over the
	// same (possibly churned) network.
	WithPrior bool
	// Workers is how many (scenario, seed) instances are evaluated
	// concurrently (0 = GOMAXPROCS, 1 = serial). Instances are fully
	// independent — each builds its own networks — so records are
	// identical for every worker count.
	Workers int
	// OnRecord, when non-nil, receives each record in deterministic
	// (scenario-major, then seed) order the moment its prefix of the
	// sweep has completed, the streaming hook cmd/eval writes JSONL
	// from. An error aborts the run.
	OnRecord func(*traceio.EvalRecord) error
}

// Run evaluates every (scenario, seed) instance and returns the records
// in deterministic order. The worker pool is the same order-preserving
// primitive the survey runner uses (par.Ordered), so output is
// byte-identical for every worker count.
func Run(cfg Config) ([]*traceio.EvalRecord, error) {
	if cfg.Scenarios == nil {
		cfg.Scenarios = Suite()
	}
	if cfg.Seeds <= 0 {
		cfg.Seeds = 1
	}
	type job struct {
		sc      Scenario
		seedIdx int
	}
	var jobs []job
	for _, sc := range cfg.Scenarios {
		for s := 0; s < cfg.Seeds; s++ {
			jobs = append(jobs, job{sc: sc, seedIdx: s})
		}
	}
	records := make([]*traceio.EvalRecord, 0, len(jobs))
	type outcome struct {
		rec *traceio.EvalRecord
		err error
	}
	var (
		stopped atomic.Bool
		runErr  error
	)
	par.Ordered(len(jobs), cfg.Workers, func(i int) outcome {
		if stopped.Load() {
			return outcome{}
		}
		j := jobs[i]
		if cfg.WithPrior {
			rec, err := EvaluateWithPrior(j.sc, cfg.BaseSeed, j.seedIdx, cfg.Phi, cfg.Stop)
			if err != nil {
				stopped.Store(true)
			}
			return outcome{rec: rec, err: err}
		}
		return outcome{rec: Evaluate(j.sc, cfg.BaseSeed, j.seedIdx, cfg.Phi, cfg.Stop)}
	}, func(i int, o outcome) {
		if runErr != nil {
			return
		}
		if o.err != nil {
			runErr = o.err
			stopped.Store(true)
			return
		}
		if o.rec == nil {
			return
		}
		records = append(records, o.rec)
		if cfg.OnRecord != nil {
			if err := cfg.OnRecord(o.rec); err != nil {
				runErr = err
				stopped.Store(true)
			}
		}
	})
	if runErr != nil {
		return records, runErr
	}
	return records, nil
}

// Evaluate scores one (scenario, seed index) instance: the full MDA and
// the MDA-Lite each run over a freshly built network with identical
// ground truth and identical reply behavior, and each discovered graph
// is diffed against the generator's.
func Evaluate(sc Scenario, baseSeed uint64, seedIdx, phi int, stop []int) *traceio.EvalRecord {
	sc.fill()
	seed := scenarioSeed(baseSeed, sc.Name, seedIdx)
	rec := &traceio.EvalRecord{
		Scenario:  sc.Name,
		SeedIndex: seedIdx,
		Seed:      seed,
		Pairs:     sc.Pairs,
		FlowBased: sc.FlowBased,
	}
	rec.MDA = runAlgo(sc, seed, phi, stop, false)
	rec.MDALite = runAlgo(sc, seed, phi, stop, true)
	if rec.MDA.Probes > 0 {
		rec.ProbeSavings = 1 - float64(rec.MDALite.Probes)/float64(rec.MDA.Probes)
	}
	rec.RelativeEdgeRecall = 1
	if rec.MDA.EdgeRecall > 0 {
		rec.RelativeEdgeRecall = rec.MDALite.EdgeRecall / rec.MDA.EdgeRecall
	}
	return rec
}

// runAlgo traces every pair of a fresh instance with one algorithm and
// aggregates the diff against ground truth.
func runAlgo(sc Scenario, seed uint64, phi int, stop []int, lite bool) traceio.AlgoEval {
	inst := sc.Build(seed)
	var agg topo.DiffStats
	ev := traceio.AlgoEval{Algo: "mda"}
	if lite {
		ev.Algo = "mda-lite"
	}
	for i, pair := range inst.Pairs {
		p := probe.NewSimProber(inst.Net, pair.Src, pair.Dst)
		p.Retries = sc.Retries
		cfg := mda.Config{Seed: nprand.IndexedSeed(seed, i), Stop: stop}
		var res *mda.Result
		if lite {
			res = mdalite.Trace(p, cfg, phi)
		} else {
			res = mda.Trace(p, cfg)
		}
		ev.Probes += probe.TotalSent(p)
		if res.ReachedDst {
			ev.Reached++
		}
		if res.SwitchedToMDA {
			ev.Switched++
		}
		agg.Add(topo.Diff(res.Graph, pair.Truth))
	}
	ev.VertexRecall = agg.VertexRecall()
	ev.EdgeRecall = agg.EdgeRecall()
	ev.DiamondRecall = agg.DiamondRecall()
	ev.VertexPrecision = agg.VertexPrecision()
	ev.EdgePrecision = agg.EdgePrecision()
	ev.FalseVertices = agg.FalseVertices
	ev.FalseEdges = agg.FalseEdges
	return ev
}

// retraceSeedSalt separates the re-trace passes' flow-seed stream from
// the first pass's: a re-survey is a second, independent measurement.
const retraceSeedSalt = 0x72657472 // "retr"

// EvaluateWithPrior scores one instance like Evaluate, then adds the
// atlas-prior re-trace columns. An unseeded MDA-Lite pass over the
// pre-churn network populates an atlas whose snapshot round-trips
// through the serving layer (the same indexed v2 format atlasd serves)
// into a prior index; the completed sessions donate their flow landings
// as hints. Two passes over the re-trace network — prior-seeded and
// unseeded, same flow seeds — then measure probe savings against edge
// recall and staleness.
func EvaluateWithPrior(sc Scenario, baseSeed uint64, seedIdx, phi int, stop []int) (*traceio.EvalRecord, error) {
	rec := Evaluate(sc, baseSeed, seedIdx, phi, stop)
	sc.fill()
	seed := scenarioSeed(baseSeed, sc.Name, seedIdx)

	// Pass 1: unseeded MDA-Lite over the pre-churn network, feeding the
	// atlas. Sessions are kept so their flow landings become hints.
	inst := sc.Build(seed)
	al := atlas.New(atlas.Options{})
	sessions := make([]*mda.Session, len(inst.Pairs))
	for i, pair := range inst.Pairs {
		p := probe.NewSimProber(inst.Net, pair.Src, pair.Dst)
		p.Retries = sc.Retries
		s := mda.NewSession(p, mda.Config{Seed: nprand.IndexedSeed(seed, i), Stop: stop})
		res := mdalite.Run(s, phi)
		sessions[i] = s
		vs, es := traceio.EncodeGraph(res.Graph)
		err := al.AddRecord(&traceio.SurveyRecord{
			PairIndex: i,
			Trace: traceio.JSONTrace{
				Src: pair.Src.String(), Dst: pair.Dst.String(),
				Algorithm: "mda-lite", Vertices: vs, Edges: es,
			},
		})
		if err != nil {
			return nil, err
		}
	}
	ix, err := indexSnapshot(al)
	if err != nil {
		return nil, err
	}
	for i, pair := range inst.Pairs {
		if pp := ix.Lookup(pair.Src, pair.Dst); pp != nil {
			pp.CaptureLandings(sessions[i])
		}
	}

	seeded := runRetrace(sc, seed, phi, stop, ix)
	baseline := runRetrace(sc, seed, phi, stop, nil)
	rec.MDALitePrior, rec.MDALiteRetrace = &seeded, &baseline
	if baseline.Probes > 0 {
		rec.PriorProbeSavings = 1 - float64(seeded.Probes)/float64(baseline.Probes)
	}
	rec.PriorRelativeEdgeRecall = 1
	if baseline.EdgeRecall > 0 {
		rec.PriorRelativeEdgeRecall = seeded.EdgeRecall / baseline.EdgeRecall
	}
	rec.PriorStalePairs = seeded.PriorStale
	return rec, nil
}

// indexSnapshot round-trips an in-memory atlas through the on-disk v2
// snapshot format and the serving layer into a prior index, so eval
// priors are extracted exactly the way cmd/survey -prior extracts them.
func indexSnapshot(al *atlas.Atlas) (*prior.Index, error) {
	f, err := os.CreateTemp("", "eval-prior-*.atlas")
	if err != nil {
		return nil, err
	}
	path := f.Name()
	f.Close()
	defer os.Remove(path)
	if err := traceio.WriteAtlasFile(path, al.Snapshot()); err != nil {
		return nil, err
	}
	svc, err := serve.Open(path, serve.Options{})
	if err != nil {
		return nil, err
	}
	defer svc.Close()
	return prior.FromService(svc)
}

// runRetrace traces every pair of a re-trace instance with the MDA-Lite,
// prior-seeded when ix is non-nil, and aggregates the diff against the
// re-trace ground truth (churned pairs' truth is their new route).
func runRetrace(sc Scenario, seed uint64, phi int, stop []int, ix *prior.Index) traceio.AlgoEval {
	inst := sc.BuildRetrace(seed)
	var agg topo.DiffStats
	ev := traceio.AlgoEval{Algo: "mda-lite-retrace"}
	if ix != nil {
		ev.Algo = "mda-lite-prior"
	}
	for i, pair := range inst.Pairs {
		p := probe.NewSimProber(inst.Net, pair.Src, pair.Dst)
		p.Retries = sc.Retries
		cfg := mda.Config{Seed: nprand.IndexedSeed(seed^retraceSeedSalt, i), Stop: stop}
		if ix != nil {
			if pp := ix.Lookup(pair.Src, pair.Dst); pp != nil {
				cfg.Prior = pp
			}
		}
		res := mdalite.Trace(p, cfg, phi)
		ev.Probes += probe.TotalSent(p)
		if res.ReachedDst {
			ev.Reached++
		}
		if res.SwitchedToMDA {
			ev.Switched++
		}
		ev.PriorHops += res.PriorHopsConfirmed
		if res.PriorAbandoned {
			ev.PriorStale++
		}
		agg.Add(topo.Diff(res.Graph, pair.Truth))
	}
	ev.VertexRecall = agg.VertexRecall()
	ev.EdgeRecall = agg.EdgeRecall()
	ev.DiamondRecall = agg.DiamondRecall()
	ev.VertexPrecision = agg.VertexPrecision()
	ev.EdgePrecision = agg.EdgePrecision()
	ev.FalseVertices = agg.FalseVertices
	ev.FalseEdges = agg.FalseEdges
	return ev
}
