package groundtruth

import (
	"sync/atomic"

	"mmlpt/internal/mda"
	"mmlpt/internal/mdalite"
	"mmlpt/internal/nprand"
	"mmlpt/internal/par"
	"mmlpt/internal/probe"
	"mmlpt/internal/topo"
	"mmlpt/internal/traceio"
)

// Config controls an evaluation run.
type Config struct {
	// Scenarios to evaluate (nil selects the committed Suite).
	Scenarios []Scenario
	// Seeds is the seed-sweep width per scenario (default 1).
	Seeds int
	// BaseSeed anchors the per-scenario seed streams.
	BaseSeed uint64
	// Phi is the MDA-Lite meshing budget (0 selects the default).
	Phi int
	// Stop overrides the MDA stopping-point table (nil selects the
	// default 95%-confidence table). The knob exists for ablations — and
	// for the nerf test proving the golden compare catches a weakened
	// stopping rule.
	Stop []int
	// Workers is how many (scenario, seed) instances are evaluated
	// concurrently (0 = GOMAXPROCS, 1 = serial). Instances are fully
	// independent — each builds its own networks — so records are
	// identical for every worker count.
	Workers int
	// OnRecord, when non-nil, receives each record in deterministic
	// (scenario-major, then seed) order the moment its prefix of the
	// sweep has completed, the streaming hook cmd/eval writes JSONL
	// from. An error aborts the run.
	OnRecord func(*traceio.EvalRecord) error
}

// Run evaluates every (scenario, seed) instance and returns the records
// in deterministic order. The worker pool is the same order-preserving
// primitive the survey runner uses (par.Ordered), so output is
// byte-identical for every worker count.
func Run(cfg Config) ([]*traceio.EvalRecord, error) {
	if cfg.Scenarios == nil {
		cfg.Scenarios = Suite()
	}
	if cfg.Seeds <= 0 {
		cfg.Seeds = 1
	}
	type job struct {
		sc      Scenario
		seedIdx int
	}
	var jobs []job
	for _, sc := range cfg.Scenarios {
		for s := 0; s < cfg.Seeds; s++ {
			jobs = append(jobs, job{sc: sc, seedIdx: s})
		}
	}
	records := make([]*traceio.EvalRecord, 0, len(jobs))
	var (
		stopped atomic.Bool
		runErr  error
	)
	par.Ordered(len(jobs), cfg.Workers, func(i int) *traceio.EvalRecord {
		if stopped.Load() {
			return nil
		}
		j := jobs[i]
		return Evaluate(j.sc, cfg.BaseSeed, j.seedIdx, cfg.Phi, cfg.Stop)
	}, func(i int, rec *traceio.EvalRecord) {
		if runErr != nil || rec == nil {
			return
		}
		records = append(records, rec)
		if cfg.OnRecord != nil {
			if err := cfg.OnRecord(rec); err != nil {
				runErr = err
				stopped.Store(true)
			}
		}
	})
	if runErr != nil {
		return records, runErr
	}
	return records, nil
}

// Evaluate scores one (scenario, seed index) instance: the full MDA and
// the MDA-Lite each run over a freshly built network with identical
// ground truth and identical reply behavior, and each discovered graph
// is diffed against the generator's.
func Evaluate(sc Scenario, baseSeed uint64, seedIdx, phi int, stop []int) *traceio.EvalRecord {
	sc.fill()
	seed := scenarioSeed(baseSeed, sc.Name, seedIdx)
	rec := &traceio.EvalRecord{
		Scenario:  sc.Name,
		SeedIndex: seedIdx,
		Seed:      seed,
		Pairs:     sc.Pairs,
		FlowBased: sc.FlowBased,
	}
	rec.MDA = runAlgo(sc, seed, phi, stop, false)
	rec.MDALite = runAlgo(sc, seed, phi, stop, true)
	if rec.MDA.Probes > 0 {
		rec.ProbeSavings = 1 - float64(rec.MDALite.Probes)/float64(rec.MDA.Probes)
	}
	rec.RelativeEdgeRecall = 1
	if rec.MDA.EdgeRecall > 0 {
		rec.RelativeEdgeRecall = rec.MDALite.EdgeRecall / rec.MDA.EdgeRecall
	}
	return rec
}

// runAlgo traces every pair of a fresh instance with one algorithm and
// aggregates the diff against ground truth.
func runAlgo(sc Scenario, seed uint64, phi int, stop []int, lite bool) traceio.AlgoEval {
	inst := sc.Build(seed)
	var agg topo.DiffStats
	ev := traceio.AlgoEval{Algo: "mda"}
	if lite {
		ev.Algo = "mda-lite"
	}
	for i, pair := range inst.Pairs {
		p := probe.NewSimProber(inst.Net, pair.Src, pair.Dst)
		p.Retries = sc.Retries
		cfg := mda.Config{Seed: nprand.IndexedSeed(seed, i), Stop: stop}
		var res *mda.Result
		if lite {
			res = mdalite.Trace(p, cfg, phi)
		} else {
			res = mda.Trace(p, cfg)
		}
		ev.Probes += probe.TotalSent(p)
		if res.ReachedDst {
			ev.Reached++
		}
		if res.SwitchedToMDA {
			ev.Switched++
		}
		agg.Add(topo.Diff(res.Graph, pair.Truth))
	}
	ev.VertexRecall = agg.VertexRecall()
	ev.EdgeRecall = agg.EdgeRecall()
	ev.DiamondRecall = agg.DiamondRecall()
	ev.VertexPrecision = agg.VertexPrecision()
	ev.EdgePrecision = agg.EdgePrecision()
	ev.FalseVertices = agg.FalseVertices
	ev.FalseEdges = agg.FalseEdges
	return ev
}
