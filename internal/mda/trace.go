package mda

import (
	"sort"

	"mmlpt/internal/nprand"
	"mmlpt/internal/obs"
	"mmlpt/internal/packet"
	"mmlpt/internal/probe"
	"mmlpt/internal/topo"
)

// Config parametrizes a multipath trace.
type Config struct {
	// Stop is the stopping-point table n_k; nil selects Default95 sized
	// for wide hops.
	Stop []int
	// MaxTTL bounds the trace depth. Zero selects 32.
	MaxTTL int
	// MaxConsecutiveStars aborts the trace after this many all-silent
	// hops. Zero selects 3.
	MaxConsecutiveStars int
	// Seed drives the random flow-identifier choice. Traces with equal
	// seeds over a deterministic network are identical.
	Seed uint64
	// Obs, when non-nil, accumulates alias-resolution observations.
	Obs *obs.Observations
	// DisableFlowReuse makes the MDA-Lite start every hop with fresh
	// flow identifiers instead of reusing the previous hop's (an ablation
	// switch: reuse is where the hop-by-hop edge knowledge comes from,
	// so disabling it shifts work onto the edge-completion step).
	DisableFlowReuse bool
	// Prior, when non-nil, supplies the expected topology from an earlier
	// trace of the same (src, dst) pair. The MDA-Lite then probes each
	// covered hop only to the confirmation budget and falls back to full
	// discovery from the enclosing divergence hop on any mismatch.
	Prior TracePrior
}

// TracePrior is the expected topology of one (src, dst) pair, extracted
// from a cross-trace atlas. Implementations must be read-only during the
// trace: the session consults the prior but never mutates it.
type TracePrior interface {
	// NumHops returns the number of hops the prior covers (the expected
	// hop count of the destination, exclusive).
	NumHops() int
	// HopAddrs returns the expected interface addresses at hop h in a
	// deterministic (sorted) order, or ok=false when the prior does not
	// cover hop h (e.g. the earlier trace saw only stars there).
	HopAddrs(h int) (addrs []packet.Addr, ok bool)
	// HasEdge reports whether the prior recorded a link from u (at some
	// hop h) to w (at hop h+1).
	HasEdge(u, w packet.Addr) bool
	// FlowHints returns flow identifiers previously observed to land on
	// addr at hop h, or nil when unknown. Hints only reorder probing;
	// correctness never depends on them.
	FlowHints(h int, addr packet.Addr) []uint16
}

func (c *Config) fill() {
	if c.Stop == nil {
		c.Stop = Default95(128)
	}
	if c.MaxTTL == 0 {
		c.MaxTTL = 32
	}
	if c.MaxConsecutiveStars == 0 {
		c.MaxConsecutiveStars = 3
	}
}

// Result is the outcome of a trace.
type Result struct {
	Graph      *topo.Graph
	ReachedDst bool
	// DstHop is the hop index of the destination vertex, or -1.
	DstHop int
	// Probes is the total number of probe packets this trace sent.
	Probes uint64
	// SwitchedToMDA is set by the MDA-Lite when a meshing or asymmetry
	// detection forced a switch to the full MDA.
	SwitchedToMDA bool
	// EdgeCompletionTruncated counts hop pairs where the MDA-Lite's
	// edge-completion loop hit its iteration cap while still making
	// progress, so some edges may have been left undiscovered.
	EdgeCompletionTruncated int
	// PriorHopsConfirmed counts hops settled by prior confirmation alone
	// (probed only to the confirmation budget; zero without Config.Prior).
	PriorHopsConfirmed int
	// PriorAbandoned is set when a prior-seeded trace hit a mismatch
	// (new vertex, missing vertex) and fell back to full discovery.
	PriorAbandoned bool
	// Obs carries the alias-resolution observations if requested.
	Obs *obs.Observations
}

// Source is the sentinel vertex ID standing for the trace source: every
// flow passes through it.
const Source topo.VertexID = -2

// Session holds the incremental state of a multipath trace: the graph
// discovered so far, which flows are known to reach which vertex, and the
// flow allocator. It is shared by the MDA and the MDA-Lite.
type Session struct {
	P   probe.Prober
	Cfg Config
	G   *topo.Graph
	Rng *nprand.Source

	flows    map[topo.VertexID][]uint16
	flowAt   []map[uint16]topo.VertexID // per hop: flow → vertex
	noReply  []map[uint16]bool          // per hop: flows that drew no reply
	usedFlow map[uint16]bool
	dstHop   int
	baseSent uint64

	// PriorConfirmedHops counts hops the MDA-Lite settled by prior
	// confirmation alone; PriorAbandoned records a mismatch-triggered
	// fallback. Both are maintained by the mdalite package and copied
	// into the Result by Finish.
	PriorConfirmedHops int
	PriorAbandoned     bool
	// EdgeCompletionTruncs counts edge-completion iteration-cap hits
	// (maintained by the mdalite package).
	EdgeCompletionTruncs int
}

// NewSession prepares a trace session over p.
func NewSession(p probe.Prober, cfg Config) *Session {
	cfg.fill()
	t, e := p.Sent()
	return &Session{
		P:        p,
		Cfg:      cfg,
		G:        topo.New(),
		Rng:      nprand.New(cfg.Seed ^ 0x6d646131),
		flows:    make(map[topo.VertexID][]uint16),
		usedFlow: make(map[uint16]bool),
		dstHop:   -1,
		baseSent: t + e,
	}
}

// Reset discards all discovery state (graph, flow tables) while keeping
// the prober and its cumulative packet counts: the MDA-Lite uses it when
// switching over to the full MDA.
func (s *Session) Reset() {
	s.G = topo.New()
	s.flows = make(map[topo.VertexID][]uint16)
	s.flowAt = nil
	s.noReply = nil
	s.usedFlow = make(map[uint16]bool)
	s.dstHop = -1
}

// DstHop returns the destination's hop index, or -1.
func (s *Session) DstHop() int { return s.dstHop }

// ProbesSent returns the probes sent since the session began.
func (s *Session) ProbesSent() uint64 {
	return probe.TotalSent(s.P) - s.baseSent
}

func (s *Session) hopTable(h int) map[uint16]topo.VertexID {
	for len(s.flowAt) <= h {
		s.flowAt = append(s.flowAt, make(map[uint16]topo.VertexID))
	}
	return s.flowAt[h]
}

func (s *Session) hopNoReply(h int) map[uint16]bool {
	for len(s.noReply) <= h {
		s.noReply = append(s.noReply, make(map[uint16]bool))
	}
	return s.noReply[h]
}

// VertexAt looks up (without probing) which vertex flow f reached at hop
// h, if known.
func (s *Session) VertexAt(h int, f uint16) (topo.VertexID, bool) {
	if h < 0 || h >= len(s.flowAt) {
		return topo.None, false
	}
	v, ok := s.flowAt[h][f]
	return v, ok
}

// FlowsOf returns the flows known to reach v (the source sentinel has no
// stored flows: mint fresh ones instead).
func (s *Session) FlowsOf(v topo.VertexID) []uint16 { return s.flows[v] }

// FreshFlow mints a random, never-used flow identifier. ok is false when
// the space is exhausted.
func (s *Session) FreshFlow() (uint16, bool) {
	if len(s.usedFlow) >= packet.MaxFlowID {
		return 0, false
	}
	for {
		f := uint16(s.Rng.Uint64() % uint64(packet.MaxFlowID+1))
		if !s.usedFlow[f] {
			s.usedFlow[f] = true
			return f, true
		}
	}
}

// ProbeHop sends flow f with a TTL expiring at hop h and integrates the
// reply into the session state. It returns the vertex that answered
// (possibly the destination's vertex), or (None, false) on no reply.
// Every call sends a packet; use VertexAt to avoid redundant sends.
func (s *Session) ProbeHop(h int, f uint16) (topo.VertexID, bool) {
	reply := s.P.Probe(f, h+1)
	t, e := s.P.Sent()
	return s.integrate(h, f, reply, t+e)
}

// ProbeHopBatch sends every flow at hop h as one batch and integrates the
// replies in spec order, exactly as repeated ProbeHop calls would. The
// returned vertices are index-aligned with flows (topo.None where no
// reply arrived). Observation sequence numbers are assigned monotonically
// within the batch (base count + position), since per-probe totals are
// not observable once a whole round is in flight.
func (s *Session) ProbeHopBatch(h int, flows []uint16) []topo.VertexID {
	if len(flows) == 0 {
		return nil
	}
	specs := make([]probe.Spec, len(flows))
	for i, f := range flows {
		specs[i] = probe.Spec{FlowID: f, TTL: h + 1}
	}
	base := probe.TotalSent(s.P)
	replies := s.P.ProbeBatch(specs)
	vs := make([]topo.VertexID, len(flows))
	for i, f := range flows {
		// Every spec sends at least one packet, so base+i+1 never passes
		// the post-batch total and stays monotonic across batches.
		seq := base + uint64(i) + 1
		v, ok := s.integrate(h, f, replies[i], seq)
		if !ok {
			v = topo.None
		}
		vs[i] = v
	}
	return vs
}

// integrate folds one probe reply (or lack of one, when reply is nil)
// into the session state. seq is the probe-counter value observations are
// recorded at.
func (s *Session) integrate(h int, f uint16, reply *packet.Reply, seq uint64) (topo.VertexID, bool) {
	if reply == nil {
		s.hopNoReply(h)[f] = true
		return topo.None, false
	}
	var v topo.VertexID
	if reply.IsPortUnreachable() && reply.From == s.P.Dst() {
		if s.dstHop < 0 || h < s.dstHop {
			s.dstHop = h
		}
		v = s.G.AddVertex(s.dstHop, reply.From)
		h = s.dstHop
	} else {
		v = s.G.AddVertex(h, reply.From)
	}
	s.hopTable(h)[f] = v
	s.addFlow(v, f)
	if s.Cfg.Obs != nil {
		s.Cfg.Obs.RecordTrace(reply, f, h+1, h, seq)
	}
	return v, true
}

func (s *Session) addFlow(v topo.VertexID, f uint16) {
	for _, x := range s.flows[v] {
		if x == f {
			return
		}
	}
	s.flows[v] = append(s.flows[v], f)
}

// AdoptStarFlows assigns every no-reply flow at hop h to the star vertex
// star, so node control can operate through silent hops. The flows are
// adopted in sorted order: they land in the star's flow list, whose
// order later drives flow selection (flowThrough) and therefore which
// vertices the next hop discovers first — ranging over the map directly
// would make the discovered vertex order differ from run to run.
func (s *Session) AdoptStarFlows(h int, star topo.VertexID) {
	noReply := s.hopNoReply(h)
	flows := make([]uint16, 0, len(noReply))
	for f := range noReply {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i] < flows[j] })
	for _, f := range flows {
		s.hopTable(h)[f] = star
		s.addFlow(star, f)
	}
}

// flowThrough returns a flow of v not present in used, minting flows via
// node control when necessary. For the Source sentinel a fresh flow is
// returned directly (every flow passes the source). The second return is
// false when no further flow can be obtained.
func (s *Session) flowThrough(v topo.VertexID, used map[uint16]bool) (uint16, bool) {
	if v == Source {
		return s.FreshFlow()
	}
	for _, f := range s.flows[v] {
		if !used[f] {
			return f, true
		}
	}
	// Node control: probe v's own hop with fresh flows until one lands on
	// v. The attempt budget is a generous multiple of the hop width so a
	// pathologically unlucky coupon-collector run terminates.
	h := s.G.V(v).Hop
	width := s.G.Width(h)
	if width < 1 {
		width = 1
	}
	budget := 8*width + 64
	for a := 0; a < budget; a++ {
		f, ok := s.FreshFlow()
		if !ok {
			return 0, false
		}
		w, _ := s.ProbeHop(h, f)
		if w == v && !used[f] {
			return f, true
		}
	}
	return 0, false
}

// EnsureFlows tops up v's known flows to at least need distinct flow
// identifiers, minting new ones through node control (probing v's own hop
// with fresh flows until enough land on v). It reports whether the target
// was met. This is the "limited application of node control" the
// MDA-Lite's meshing test requires (Sec 2.3.2).
func (s *Session) EnsureFlows(v topo.VertexID, need int) bool {
	if v == Source {
		return true
	}
	h := s.G.V(v).Hop
	width := s.G.Width(h)
	if width < 1 {
		width = 1
	}
	budget := 8 * width * need
	if budget < 64 {
		budget = 64
	}
	for a := 0; len(s.flows[v]) < need && a < budget; a++ {
		f, ok := s.FreshFlow()
		if !ok {
			return false
		}
		s.ProbeHop(h, f)
	}
	return len(s.flows[v]) >= need
}

// HopDone reports whether hop h consists solely of the destination,
// meaning the trace is complete.
func (s *Session) HopDone(h int) bool { return s.hopDone(h) }

// IsDst reports whether v is the destination vertex.
func (s *Session) IsDst(v topo.VertexID) bool { return s.isDst(v) }

// DiscoverSuccessors runs the MDA's per-vertex discovery: find the
// successors of v (at hop h-1; Source discovers hop 0) by probing hop h
// with flows through v, under the stopping rule. It returns the number of
// distinct successors found.
//
// Probing proceeds in rounds: the n_k stopping-point schedule defines how
// many probes the current successor count warrants, and each round issues
// exactly that shortfall as one ProbeBatch. Flow selection happens during
// round assembly — flows of v are independent of the round's own hop-h
// replies, so assembling before sending chooses the same flows, in the
// same order, as the probe-at-a-time loop did, and the stopping rule is
// re-evaluated between rounds; because n_k only grows as successors are
// found, the rounds stop at exactly the probe count the serial loop
// stopped at.
func (s *Session) DiscoverSuccessors(v topo.VertexID, h int) int {
	used := make(map[uint16]bool)
	succ := make(map[topo.VertexID]bool)
	sent := 0
	allSilent := true

	note := func(w topo.VertexID) {
		allSilent = false
		succ[w] = true
		if v != Source {
			s.G.AddEdge(v, w)
		}
	}

	for {
		target := Stop(s.Cfg.Stop, max(len(succ), 1))
		if sent >= target {
			break
		}
		// Assemble one round. Node control inside flowThrough may probe
		// v's own hop; knowledge a flow already has at hop h is reused
		// without spending a packet, and can raise the target mid-round.
		var flows []uint16
		exhausted := false
		for sent+len(flows) < target {
			f, ok := s.flowThrough(v, used)
			if !ok {
				exhausted = true
				break
			}
			used[f] = true
			if w, known := s.VertexAt(h, f); known {
				note(w)
				target = Stop(s.Cfg.Stop, max(len(succ), 1))
				continue
			}
			flows = append(flows, f)
		}
		for _, w := range s.ProbeHopBatch(h, flows) {
			if w != topo.None {
				note(w)
			}
		}
		sent += len(flows)
		if exhausted {
			break
		}
	}
	if allSilent && sent > 0 {
		star := s.G.AddVertex(h, topo.StarAddr)
		if v != Source {
			s.G.AddEdge(v, star)
		}
		s.AdoptStarFlows(h, star)
		succ[star] = true
	}
	return len(succ)
}

// Trace runs the full MDA and returns the discovered topology.
func Trace(p probe.Prober, cfg Config) *Result {
	s := NewSession(p, cfg)
	s.RunMDA(0)
	return s.Finish(false)
}

// RunMDA executes the MDA from hop startHop onward. When startHop is 0 the
// source's successors are discovered first; otherwise hop startHop-1's
// vertices must already exist in the session graph.
func (s *Session) RunMDA(startHop int) {
	if startHop == 0 {
		s.DiscoverSuccessors(Source, 0)
		startHop = 1
	}
	starRun := 0
	for h := startHop; h <= s.Cfg.MaxTTL; h++ {
		if s.hopDone(h - 1) {
			return
		}
		// Worklist over hop h-1: node control during this hop's probing
		// may reveal new hop h-1 vertices that then need processing too.
		processed := make(map[topo.VertexID]bool)
		for {
			var v topo.VertexID = topo.None
			for _, id := range s.G.Hop(h - 1) {
				if !processed[id] && !s.isDst(id) {
					v = id
					break
				}
			}
			if v == topo.None {
				break
			}
			processed[v] = true
			s.DiscoverSuccessors(v, h)
		}
		if s.hopAllStars(h) {
			starRun++
			if starRun >= s.Cfg.MaxConsecutiveStars {
				return
			}
		} else {
			starRun = 0
		}
	}
}

// hopDone reports whether hop h consists solely of the destination (or is
// beyond it), meaning the trace is complete.
func (s *Session) hopDone(h int) bool {
	if s.dstHop >= 0 && h >= s.dstHop {
		return true
	}
	vs := s.G.Hop(h)
	if len(vs) == 0 {
		return h > 0 // nothing to extend
	}
	for _, v := range vs {
		if !s.isDst(v) {
			return false
		}
	}
	return true
}

func (s *Session) hopAllStars(h int) bool {
	vs := s.G.Hop(h)
	if len(vs) == 0 {
		return false
	}
	for _, v := range vs {
		if s.G.V(v).Addr != topo.StarAddr {
			return false
		}
	}
	return true
}

func (s *Session) isDst(v topo.VertexID) bool {
	return s.G.V(v).Addr == s.P.Dst()
}

// Finish assembles the Result.
func (s *Session) Finish(switched bool) *Result {
	return &Result{
		Graph:                   s.G,
		ReachedDst:              s.dstHop >= 0,
		DstHop:                  s.dstHop,
		Probes:                  s.ProbesSent(),
		SwitchedToMDA:           switched,
		EdgeCompletionTruncated: s.EdgeCompletionTruncs,
		PriorHopsConfirmed:      s.PriorConfirmedHops,
		PriorAbandoned:          s.PriorAbandoned,
		Obs:                     s.Cfg.Obs,
	}
}

// FlowLanding pairs a flow identifier with the interface address it was
// observed to reach at some hop.
type FlowLanding struct {
	Flow uint16
	Addr packet.Addr
}

// HopLandings returns the responsive flow→address observations at hop h
// in ascending flow order. Prior extraction uses it to capture flow
// hints for the next re-trace of the same pair.
func (s *Session) HopLandings(h int) []FlowLanding {
	if h < 0 || h >= len(s.flowAt) {
		return nil
	}
	out := make([]FlowLanding, 0, len(s.flowAt[h]))
	for f, v := range s.flowAt[h] {
		if a := s.G.V(v).Addr; a != topo.StarAddr {
			out = append(out, FlowLanding{Flow: f, Addr: a})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Flow < out[j].Flow })
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TraceSingleFlow traces with one flow identifier only, the way Paris
// Traceroute runs on RIPE Atlas (Sec 6.2): one probe per TTL (plus the
// prober's retries), no multipath discovery.
func TraceSingleFlow(p probe.Prober, cfg Config) *Result {
	s := NewSession(p, cfg)
	f, _ := s.FreshFlow()
	starRun := 0
	for h := 0; h <= s.Cfg.MaxTTL; h++ {
		v, ok := s.ProbeHop(h, f)
		if !ok {
			star := s.G.AddVertex(h, topo.StarAddr)
			if h > 0 && len(s.G.Hop(h-1)) > 0 {
				s.G.AddEdge(s.G.Hop(h - 1)[0], star)
			}
			s.AdoptStarFlows(h, star)
			starRun++
			if starRun >= s.Cfg.MaxConsecutiveStars {
				break
			}
			continue
		}
		starRun = 0
		if h > 0 && len(s.G.Hop(h-1)) > 0 {
			s.G.AddEdge(s.G.Hop(h - 1)[0], v)
		}
		if s.isDst(v) {
			break
		}
	}
	return s.Finish(false)
}
