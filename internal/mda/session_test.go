package mda

import (
	"testing"

	"mmlpt/internal/fakeroute"
	"mmlpt/internal/obs"
	"mmlpt/internal/packet"
	"mmlpt/internal/probe"
	"mmlpt/internal/topo"
)

func TestGlobalStoppingPoints(t *testing.T) {
	// With a branch budget of 1 the global bound equals the per-vertex
	// bound.
	if got, want := GlobalStoppingPoints(0.05, 1, 4), Default95(4); got[1] != want[1] {
		t.Fatalf("branch=1: %v vs %v", got, want)
	}
	// A bigger branch budget means a tighter per-vertex bound and larger
	// stopping points.
	loose := Default95(4)
	tight := GlobalStoppingPoints(0.05, 30, 4)
	for k := 1; k <= 4; k++ {
		if tight[k] <= loose[k] {
			t.Fatalf("n_%d: global-30 table %d not above per-vertex %d", k, tight[k], loose[k])
		}
	}
}

func TestStoppingPointsStrictlyIncreasing(t *testing.T) {
	for _, eps := range []float64{0.2, 0.05, 0.01, 1.0 / 256} {
		nk := StoppingPoints(eps, 40)
		for k := 1; k < len(nk); k++ {
			if nk[k] <= nk[k-1] {
				t.Fatalf("eps=%v: n_%d=%d not above n_%d=%d", eps, k, nk[k], k-1, nk[k-1])
			}
		}
	}
}

func TestStoppingPointsPanics(t *testing.T) {
	for _, eps := range []float64{0, 1, -0.1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("eps=%v: no panic", eps)
				}
			}()
			StoppingPoints(eps, 4)
		}()
	}
}

func TestEnsureFlows(t *testing.T) {
	net, _ := fakeroute.BuildScenario(51, testSrc, testDst, fakeroute.Fig1UnmeshedDiamond)
	p := probe.NewSimProber(net, testSrc, testDst)
	s := NewSession(p, Config{Seed: 51})
	s.DiscoverSuccessors(Source, 0)
	s.DiscoverSuccessors(s.G.Hop(0)[0], 1)
	if s.G.Width(1) != 4 {
		t.Fatalf("hop 1 width %d", s.G.Width(1))
	}
	v := s.G.Hop(1)[0]
	if !s.EnsureFlows(v, 9) {
		t.Fatal("EnsureFlows failed")
	}
	if len(s.FlowsOf(v)) < 9 {
		t.Fatalf("flows %d, want >= 9", len(s.FlowsOf(v)))
	}
	// All minted flows must actually map to v at hop 1.
	for _, f := range s.FlowsOf(v) {
		if w, ok := s.VertexAt(1, f); !ok || w != v {
			t.Fatalf("flow %d maps to %v, want %v", f, w, v)
		}
	}
}

func TestSessionReset(t *testing.T) {
	net, _ := fakeroute.BuildScenario(52, testSrc, testDst, fakeroute.SimplestDiamond)
	p := probe.NewSimProber(net, testSrc, testDst)
	s := NewSession(p, Config{Seed: 52})
	s.RunMDA(0)
	probesBefore := s.ProbesSent()
	if probesBefore == 0 || s.G.NumVertices() == 0 {
		t.Fatal("first run empty")
	}
	s.Reset()
	if s.G.NumVertices() != 0 || s.DstHop() != -1 {
		t.Fatal("reset incomplete")
	}
	s.RunMDA(0)
	if s.ProbesSent() <= probesBefore {
		t.Fatal("probe accounting lost across reset")
	}
	if !s.HopDone(s.DstHop()) {
		t.Fatal("second run did not finish")
	}
}

func TestTraceMaxTTLTermination(t *testing.T) {
	// A path that never reaches the destination (dead end) must stop at
	// MaxTTL rather than loop.
	net := fakeroute.NewNetwork(53)
	alloc := fakeroute.NewAddrAllocator(packet.AddrFrom4(10, 0, 0, 1))
	// The path's final hop is the destination per AddPath's contract, but
	// with LossProb=1 beyond nothing ever answers.
	g := fakeroute.NewPathBuilder(alloc).Chain(2).End(testDst)
	net.EnsureIfaces(g, testDst)
	net.AddPath(testSrc, testDst, g)
	net.LossProb = 1
	p := probe.NewSimProber(net, testSrc, testDst)
	p.Retries = 0
	res := Trace(p, Config{Seed: 53, MaxTTL: 8})
	if res.ReachedDst {
		t.Fatal("reached under total loss")
	}
	if res.Graph.NumHops() > 9 {
		t.Fatalf("trace ran past MaxTTL: %d hops", res.Graph.NumHops())
	}
}

func TestTraceThroughStarHop(t *testing.T) {
	net := fakeroute.NewNetwork(54)
	alloc := fakeroute.NewAddrAllocator(packet.AddrFrom4(10, 0, 0, 1))
	g := fakeroute.NewPathBuilder(alloc).Chain(1).Star().Chain(1).End(testDst)
	net.EnsureIfaces(g, testDst)
	net.AddPath(testSrc, testDst, g)
	p := probe.NewSimProber(net, testSrc, testDst)
	p.Retries = 0
	res := Trace(p, Config{Seed: 54})
	if !res.ReachedDst {
		t.Fatalf("did not reach destination through star:\n%s", res.Graph)
	}
	foundStar := false
	for i := range res.Graph.Vertices {
		if res.Graph.Vertices[i].Addr == topo.StarAddr {
			foundStar = true
		}
	}
	if !foundStar {
		t.Fatal("star hop not recorded")
	}
}

func TestObservationsCollectedDuringTrace(t *testing.T) {
	net, path := fakeroute.BuildScenario(55, testSrc, testDst, fakeroute.SimplestDiamond)
	p := probe.NewSimProber(net, testSrc, testDst)
	o := obs.New()
	Trace(p, Config{Seed: 55, Obs: o})
	// Every responsive hop address must have observations with flows.
	for i := range path.Graph.Vertices {
		a := path.Graph.Vertices[i].Addr
		if a == testDst || a == topo.StarAddr {
			continue
		}
		ao := o.Get(a)
		if ao == nil {
			t.Fatalf("no observations for %s", a)
		}
		if len(ao.Samples) == 0 || len(ao.Flows) == 0 {
			t.Fatalf("empty observations for %s", a)
		}
		for _, s := range ao.Samples {
			if !s.Indirect {
				t.Fatal("trace produced a direct sample")
			}
		}
	}
}

// TestMDADiscoveredIsSubgraphOfTruth: the tracer must never invent
// vertices or edges (property over seeds).
func TestMDADiscoveredIsSubgraphOfTruth(t *testing.T) {
	builds := []func(*fakeroute.AddrAllocator, packet.Addr) *topo.Graph{
		fakeroute.Fig1UnmeshedDiamond, fakeroute.Fig1MeshedDiamond,
		fakeroute.SymmetricDiamond, fakeroute.AsymmetricDiamond,
	}
	for seed := uint64(0); seed < 8; seed++ {
		for bi, build := range builds {
			net, path := fakeroute.BuildScenario(seed, testSrc, testDst, build)
			p := probe.NewSimProber(net, testSrc, testDst)
			res := Trace(p, Config{Seed: seed})
			// Reverse coverage: every discovered vertex/edge exists in
			// the ground truth.
			v, e := topo.SubgraphCoverage(path.Graph, res.Graph)
			if v != 1 || e != 1 {
				t.Fatalf("seed %d build %d: tracer invented topology (truth covers v=%.2f e=%.2f of it)\ntruth:\n%s\ngot:\n%s",
					seed, bi, v, e, path.Graph, res.Graph)
			}
		}
	}
}

func TestRunMDASurvivesRouteChange(t *testing.T) {
	net := fakeroute.NewNetwork(56)
	alloc := fakeroute.NewAddrAllocator(packet.AddrFrom4(10, 0, 0, 1))
	before := fakeroute.Fig1UnmeshedDiamond(alloc, testDst)
	after := fakeroute.SimplestDiamond(alloc, testDst)
	net.EnsureIfaces(before, testDst)
	net.EnsureIfaces(after, testDst)
	path := net.AddPath(testSrc, testDst, before)
	path.Alt = after
	path.AltAt = 30
	p := probe.NewSimProber(net, testSrc, testDst)
	res := Trace(p, Config{Seed: 56})
	if !res.ReachedDst {
		t.Fatalf("route change broke the trace:\n%s", res.Graph)
	}
}
