// Package mda implements the Multipath Detection Algorithm of Veitch,
// Augustin, Teixeira and Friedman (Infocom 2009), as recalled in Sec 2.1
// of the paper: per-vertex successor discovery under a family of stopping
// points n_k, with node control ensuring probes to the next hop transit a
// chosen vertex.
package mda

import (
	"math"
)

// StoppingPoints returns the table n_k for k = 0..maxK such that, for a
// vertex with k+1 uniform successors of which k are known, sending n_k
// probes bounds the probability of missing the unseen successor by eps:
//
//	n_k = ⌈ ln(eps/(k+1)) / ln(k/(k+1)) ⌉
//
// This is the hypothesis-test rule of Veitch et al. [Sec II.B]. With
// eps = 0.05 it reproduces the widely deployed 95%-confidence table
// (6, 11, 16, 21, 27, 33, ...); with eps = 2⁻⁸ it reproduces the paper's
// quoted "Veitch et al. Table 1" values n1 = 9, n2 = 17, n4 = 33.
// n_0 is defined as 1 (a first probe is always sent).
func StoppingPoints(eps float64, maxK int) []int {
	if eps <= 0 || eps >= 1 {
		panic("mda: eps must be in (0,1)")
	}
	if maxK < 1 {
		maxK = 1
	}
	nk := make([]int, maxK+1)
	nk[0] = 1
	for k := 1; k <= maxK; k++ {
		x := math.Log(eps/float64(k+1)) / math.Log(float64(k)/float64(k+1))
		// Guard against representation error pushing an exact integer up.
		n := int(math.Ceil(x - 1e-9))
		if n < nk[k-1]+1 {
			n = nk[k-1] + 1 // the table must be strictly increasing
		}
		nk[k] = n
	}
	return nk
}

// GlobalStoppingPoints derives the per-vertex failure bound from a global
// topology-level failure bound alpha under a budget of at most branch
// branching vertices (the MDA's default branch budget is 30), then builds
// the table: eps = 1 - (1-alpha)^(1/branch).
func GlobalStoppingPoints(alpha float64, branch, maxK int) []int {
	if branch < 1 {
		branch = 1
	}
	eps := 1 - math.Pow(1-alpha, 1/float64(branch))
	return StoppingPoints(eps, maxK)
}

// Default95 is the per-vertex 95%-confidence table used by deployed MDA
// implementations and by the Sec 3 Fakeroute validation (n1 = 6 gives the
// simplest diamond an exact failure probability of 2⁻⁵ = 0.03125).
func Default95(maxK int) []int { return StoppingPoints(0.05, maxK) }

// VeitchTable1 reproduces the stopping points the paper quotes from
// Veitch et al.'s Table 1: n1 = 9, n2 = 17, n3 = 25, n4 = 33.
func VeitchTable1(maxK int) []int { return StoppingPoints(1.0/256, maxK) }

// ConfirmBudget returns the probe budget for confirming a hop whose
// prior expects k vertices. It is the stopping point n_k itself: under
// the MDA hypothesis test, n_k probes over a width-k hop bound the
// probability of an unseen (k+1)-th successor, so a confirmation pass
// that has seen all k expected vertices within n_k probes has exactly
// the evidence the discovery pass would have needed to stop — and a
// pass that exhausts n_k probes without covering the expected set has
// statistically significant evidence the route changed.
func ConfirmBudget(nk []int, k int) int { return Stop(nk, k) }

// Stop returns n_k from the table, extending past the end by the final
// increment so very wide hops still terminate.
func Stop(nk []int, k int) int {
	if k < 0 {
		k = 0
	}
	if k < len(nk) {
		return nk[k]
	}
	last := len(nk) - 1
	inc := nk[last]
	if last >= 1 {
		inc = nk[last] - nk[last-1]
	}
	return nk[last] + inc*(k-last)
}
