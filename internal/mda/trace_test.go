package mda

import (
	"testing"

	"mmlpt/internal/fakeroute"
	"mmlpt/internal/packet"
	"mmlpt/internal/probe"
	"mmlpt/internal/topo"
)

var (
	testSrc = packet.MustParseAddr("192.0.2.1")
	testDst = packet.MustParseAddr("198.51.100.77")
)

func traceShape(t *testing.T, seed uint64, build func(*fakeroute.AddrAllocator, packet.Addr) *topo.Graph) (*Result, *topo.Graph, *probe.SimProber) {
	t.Helper()
	net, path := fakeroute.BuildScenario(seed, testSrc, testDst, build)
	p := probe.NewSimProber(net, testSrc, testDst)
	res := Trace(p, Config{Seed: seed})
	return res, path.Graph, p
}

func TestStoppingPointsDefault95(t *testing.T) {
	nk := Default95(8)
	want := []int{1, 6, 11, 16, 21, 27, 33, 39, 45}
	for k, w := range want {
		if nk[k] != w {
			t.Errorf("n_%d = %d, want %d", k, nk[k], w)
		}
	}
}

func TestStoppingPointsVeitchTable1(t *testing.T) {
	nk := VeitchTable1(4)
	if nk[1] != 9 || nk[2] != 17 || nk[4] != 33 {
		t.Fatalf("Veitch table = %v, want n1=9 n2=17 n4=33", nk)
	}
}

func TestStopExtendsTable(t *testing.T) {
	nk := Default95(4)
	if got := Stop(nk, 4); got != nk[4] {
		t.Fatalf("Stop in range = %d, want %d", got, nk[4])
	}
	inc := nk[4] - nk[3]
	if got := Stop(nk, 6); got != nk[4]+2*inc {
		t.Fatalf("Stop(6) = %d, want %d", got, nk[4]+2*inc)
	}
}

func TestMDASimplestDiamond(t *testing.T) {
	res, truth, _ := traceShape(t, 1, fakeroute.SimplestDiamond)
	if !res.ReachedDst {
		t.Fatal("destination not reached")
	}
	v, e := topo.SubgraphCoverage(res.Graph, truth)
	if v != 1 || e != 1 {
		t.Fatalf("coverage v=%.2f e=%.2f, want full\ntruth:\n%s\ngot:\n%s",
			v, e, truth, res.Graph)
	}
}

func TestMDAFig1Unmeshed(t *testing.T) {
	res, truth, _ := traceShape(t, 2, fakeroute.Fig1UnmeshedDiamond)
	v, e := topo.SubgraphCoverage(res.Graph, truth)
	if v != 1 || e != 1 {
		t.Fatalf("coverage v=%.2f e=%.2f\ntruth:\n%s\ngot:\n%s", v, e, truth, res.Graph)
	}
	if res.Graph.Width(1) != 4 || res.Graph.Width(2) != 2 {
		t.Fatalf("widths: %s", fakeroute.DescribeGraph(res.Graph))
	}
}

func TestMDAFig1Meshed(t *testing.T) {
	res, truth, _ := traceShape(t, 3, fakeroute.Fig1MeshedDiamond)
	v, e := topo.SubgraphCoverage(res.Graph, truth)
	if v != 1 || e != 1 {
		t.Fatalf("coverage v=%.2f e=%.2f\ntruth:\n%s\ngot:\n%s", v, e, truth, res.Graph)
	}
}

func TestMDAWideDiamond(t *testing.T) {
	res, truth, _ := traceShape(t, 4, fakeroute.MaxLength2Diamond)
	v, e := topo.SubgraphCoverage(res.Graph, truth)
	if v != 1 || e != 1 {
		t.Fatalf("coverage v=%.2f e=%.2f (widths %s)", v, e, fakeroute.DescribeGraph(res.Graph))
	}
}

func TestMDAProbeAccountingFig1(t *testing.T) {
	// Sec 2.1: with the Veitch Table 1 stopping points, discovering the
	// unmeshed Fig 1 diamond costs 11·n1 + δ = 99 + δ probes. Check the
	// total lands in a sane band above the floor.
	net, _ := fakeroute.BuildScenario(10, testSrc, testDst, fakeroute.Fig1UnmeshedDiamond)
	p := probe.NewSimProber(net, testSrc, testDst)
	p.Retries = 0
	res := Trace(p, Config{Seed: 10, Stop: VeitchTable1(16)})
	if !res.ReachedDst {
		t.Fatal("destination not reached")
	}
	if res.Probes < 99 {
		t.Fatalf("sent %d probes, below the 99-probe floor", res.Probes)
	}
	if res.Probes > 99+120 {
		t.Fatalf("sent %d probes, node-control overhead implausibly high", res.Probes)
	}
}

func TestSingleFlowTracesOnePath(t *testing.T) {
	net, _ := fakeroute.BuildScenario(5, testSrc, testDst, fakeroute.Fig1UnmeshedDiamond)
	p := probe.NewSimProber(net, testSrc, testDst)
	res := TraceSingleFlow(p, Config{Seed: 5})
	if !res.ReachedDst {
		t.Fatal("destination not reached")
	}
	for h := 0; h < res.Graph.NumHops(); h++ {
		if res.Graph.Width(h) != 1 {
			t.Fatalf("single-flow trace found %d vertices at hop %d", res.Graph.Width(h), h)
		}
	}
	if res.Probes > 16 {
		t.Fatalf("single flow sent %d probes, want a handful", res.Probes)
	}
}

func TestMDAWithLoss(t *testing.T) {
	net, _ := fakeroute.BuildScenario(6, testSrc, testDst, fakeroute.Fig1UnmeshedDiamond)
	net.LossProb = 0.05
	p := probe.NewSimProber(net, testSrc, testDst)
	res := Trace(p, Config{Seed: 6})
	if !res.ReachedDst {
		t.Fatal("destination not reached under 5% loss")
	}
}

func TestVertexFailureProbSimplest(t *testing.T) {
	// The Sec 3 worked example: K=2 with the 95% table (n1=6) fails with
	// probability exactly (1/2)^5 = 0.03125.
	got := fakeroute.VertexFailureProb(2, Default95(8))
	if diff := got - 0.03125; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("failure prob = %v, want 0.03125", got)
	}
}
