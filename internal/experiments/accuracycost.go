package experiments

import (
	"fmt"
	"strings"

	"mmlpt/internal/traceio"
)

// AccuracyCostRow aggregates one scenario's eval records across its seed
// sweep: the MDA-vs-MDA-Lite comparison of the paper (Sec 2.4), rebuilt
// from ground-truth evaluation output instead of per-topology anecdotes.
type AccuracyCostRow struct {
	Scenario  string
	Seeds     int
	FlowBased bool
	// Mean probes per instance.
	MDAProbes, LiteProbes float64
	// Savings is 1 - totalLiteProbes/totalMDAProbes.
	Savings float64
	// Mean edge recall vs ground truth.
	MDAEdgeRecall, LiteEdgeRecall float64
	// RelEdgeRecall is mean(lite edge recall / mda edge recall).
	RelEdgeRecall float64
	// Mean diamond recall vs ground truth.
	MDADiamondRecall, LiteDiamondRecall float64
	// Switched counts MDA-Lite traces that switched to the full MDA,
	// summed over the sweep.
	Switched int
}

// AccuracyCostTable folds eval records into one row per scenario, in
// first-appearance order (records arrive in deterministic scenario-major
// order, so this is the harness's scenario order).
func AccuracyCostTable(recs []*traceio.EvalRecord) []AccuracyCostRow {
	idx := make(map[string]int)
	var rows []AccuracyCostRow
	type totals struct {
		mdaProbes, liteProbes uint64
	}
	sums := make(map[string]*totals)
	for _, r := range recs {
		i, ok := idx[r.Scenario]
		if !ok {
			i = len(rows)
			idx[r.Scenario] = i
			rows = append(rows, AccuracyCostRow{Scenario: r.Scenario, FlowBased: r.FlowBased})
			sums[r.Scenario] = &totals{}
		}
		row := &rows[i]
		row.Seeds++
		row.MDAProbes += float64(r.MDA.Probes)
		row.LiteProbes += float64(r.MDALite.Probes)
		row.MDAEdgeRecall += r.MDA.EdgeRecall
		row.LiteEdgeRecall += r.MDALite.EdgeRecall
		row.RelEdgeRecall += r.RelativeEdgeRecall
		row.MDADiamondRecall += r.MDA.DiamondRecall
		row.LiteDiamondRecall += r.MDALite.DiamondRecall
		row.Switched += r.MDALite.Switched
		t := sums[r.Scenario]
		t.mdaProbes += r.MDA.Probes
		t.liteProbes += r.MDALite.Probes
	}
	for i := range rows {
		row := &rows[i]
		n := float64(row.Seeds)
		row.MDAProbes /= n
		row.LiteProbes /= n
		row.MDAEdgeRecall /= n
		row.LiteEdgeRecall /= n
		row.RelEdgeRecall /= n
		row.MDADiamondRecall /= n
		row.LiteDiamondRecall /= n
		if t := sums[row.Scenario]; t.mdaProbes > 0 {
			row.Savings = 1 - float64(t.liteProbes)/float64(t.mdaProbes)
		}
	}
	return rows
}

// FormatAccuracyCostTable renders the table plus the paper's headline:
// over the flow-based scenarios, the MDA-Lite's edge recall relative to
// the full MDA and the aggregate probe savings.
func FormatAccuracyCostTable(rows []AccuracyCostRow) string {
	var b strings.Builder
	b.WriteString("# MDA vs MDA-Lite: accuracy and cost against ground truth\n")
	fmt.Fprintf(&b, "%-16s %6s  %10s %10s %8s  %8s %8s %8s  %8s\n",
		"scenario", "seeds", "mda-pkts", "lite-pkts", "savings",
		"mda-edge", "lite-edge", "rel-edge", "switched")
	var flowRel, flowSavingsNum, flowSavingsDen float64
	flowRows := 0
	for _, r := range rows {
		name := r.Scenario
		if r.FlowBased {
			flowRel += r.RelEdgeRecall
			flowSavingsNum += r.LiteProbes * float64(r.Seeds)
			flowSavingsDen += r.MDAProbes * float64(r.Seeds)
			flowRows++
		}
		fmt.Fprintf(&b, "%-16s %6d  %10.1f %10.1f %7.1f%%  %8.3f %8.3f %8.3f  %8d\n",
			name, r.Seeds, r.MDAProbes, r.LiteProbes, 100*r.Savings,
			r.MDAEdgeRecall, r.LiteEdgeRecall, r.RelEdgeRecall, r.Switched)
	}
	if flowRows > 0 && flowSavingsDen > 0 {
		fmt.Fprintf(&b, "# flow-based scenarios: mean relative edge recall %.3f (paper: ~1.0), probe savings %.1f%%\n",
			flowRel/float64(flowRows), 100*(1-flowSavingsNum/flowSavingsDen))
	}
	return b.String()
}

// PriorRetraceRow aggregates one scenario's prior-seeded re-trace
// columns across its seed sweep: the cost of a re-survey seeded from the
// cross-trace atlas against the unseeded re-trace baseline.
type PriorRetraceRow struct {
	Scenario string
	Seeds    int
	// Mean probes per instance for the unseeded re-trace baseline and the
	// prior-seeded re-trace.
	RetraceProbes, PriorProbes float64
	// Savings is 1 - totalPriorProbes/totalRetraceProbes.
	Savings float64
	// RelEdgeRecall is mean(prior edge recall / retrace edge recall).
	RelEdgeRecall float64
	// PriorHops totals hops confirmed from the prior; StalePairs totals
	// traces whose prior was abandoned (route churn).
	PriorHops, StalePairs int
}

// PriorRetraceTable folds the prior columns of eval records into one row
// per scenario, skipping records from unseeded runs.
func PriorRetraceTable(recs []*traceio.EvalRecord) []PriorRetraceRow {
	idx := make(map[string]int)
	var rows []PriorRetraceRow
	type totals struct {
		retraceProbes, priorProbes uint64
	}
	sums := make(map[string]*totals)
	for _, r := range recs {
		if r.MDALitePrior == nil || r.MDALiteRetrace == nil {
			continue
		}
		i, ok := idx[r.Scenario]
		if !ok {
			i = len(rows)
			idx[r.Scenario] = i
			rows = append(rows, PriorRetraceRow{Scenario: r.Scenario})
			sums[r.Scenario] = &totals{}
		}
		row := &rows[i]
		row.Seeds++
		row.RetraceProbes += float64(r.MDALiteRetrace.Probes)
		row.PriorProbes += float64(r.MDALitePrior.Probes)
		row.RelEdgeRecall += r.PriorRelativeEdgeRecall
		row.PriorHops += r.MDALitePrior.PriorHops
		row.StalePairs += r.PriorStalePairs
		t := sums[r.Scenario]
		t.retraceProbes += r.MDALiteRetrace.Probes
		t.priorProbes += r.MDALitePrior.Probes
	}
	for i := range rows {
		row := &rows[i]
		n := float64(row.Seeds)
		row.RetraceProbes /= n
		row.PriorProbes /= n
		row.RelEdgeRecall /= n
		if t := sums[row.Scenario]; t.retraceProbes > 0 {
			row.Savings = 1 - float64(t.priorProbes)/float64(t.retraceProbes)
		}
	}
	return rows
}

// FormatPriorRetraceTable renders the prior-seeded re-trace comparison
// plus its headline: aggregate probe savings and mean relative edge
// recall across the scenarios.
func FormatPriorRetraceTable(rows []PriorRetraceRow) string {
	if len(rows) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("# Atlas-prior re-trace: prior-seeded MDA-Lite vs unseeded re-survey\n")
	fmt.Fprintf(&b, "%-16s %6s  %12s %11s %8s  %8s %10s %6s\n",
		"scenario", "seeds", "retrace-pkts", "prior-pkts", "savings",
		"rel-edge", "prior-hops", "stale")
	var relSum, num, den float64
	for _, r := range rows {
		relSum += r.RelEdgeRecall
		num += r.PriorProbes * float64(r.Seeds)
		den += r.RetraceProbes * float64(r.Seeds)
		fmt.Fprintf(&b, "%-16s %6d  %12.1f %11.1f %7.1f%%  %8.3f %10d %6d\n",
			r.Scenario, r.Seeds, r.RetraceProbes, r.PriorProbes, 100*r.Savings,
			r.RelEdgeRecall, r.PriorHops, r.StalePairs)
	}
	if den > 0 {
		fmt.Fprintf(&b, "# re-trace with priors: mean relative edge recall %.3f, probe savings %.1f%%\n",
			relSum/float64(len(rows)), 100*(1-num/den))
	}
	return b.String()
}
