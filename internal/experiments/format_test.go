package experiments

import (
	"strings"
	"testing"
)

// Formatter smoke tests: every paper artifact's renderer must produce the
// expected headers and well-formed series so cmd/paperfig output stays
// machine-consumable.

func TestFormatFig1(t *testing.T) {
	t.Parallel()
	s := FormatFig1(Fig1(Fig1Config{Runs: 3, Seed: 1}))
	if !strings.Contains(s, "# Fig 1") || !strings.Contains(s, "mda-lite") {
		t.Fatalf("output:\n%s", s)
	}
	if len(strings.Split(strings.TrimSpace(s), "\n")) != 2+4 {
		t.Fatalf("expected 4 data rows:\n%s", s)
	}
}

func TestFormatFig3(t *testing.T) {
	t.Parallel()
	s := FormatFig3(Fig3(Fig3Config{Runs: 2, Seed: 1}))
	for _, want := range []string{"# Fig 3", "max-length-2 mda", "meshed mda-lite", "switch_rate"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
}

func TestFormatFig4(t *testing.T) {
	t.Parallel()
	r := Fig4(Fig4Config{Pairs: 10, Seed: 1})
	s := FormatFig4(r)
	for _, want := range []string{"# Fig 4", "# Table 1", "Second MDA", "Single flow ID", "paper:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q", want)
		}
	}
	if c := r.Fig4CDF("vertex", VariantMDA2); c.N() != r.Pairs {
		t.Fatalf("CDF n=%d, pairs=%d", c.N(), r.Pairs)
	}
}

func TestFormatSec3(t *testing.T) {
	t.Parallel()
	s := FormatSec3(Sec3Validation(Sec3Config{Samples: 2, RunsPerSample: 50, Seed: 1}))
	for _, want := range []string{"predicted_failure 0.03125", "measured_failure", "within_ci"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
}

func TestFormatFig5(t *testing.T) {
	t.Parallel()
	s := FormatFig5(Fig5(Fig5Config{Pairs: 5, Rounds: 2, Seed: 1}))
	if !strings.Contains(s, "# Fig 5") || !strings.Contains(s, "probe_ratio") {
		t.Fatalf("output:\n%s", s)
	}
	if got := len(strings.Split(strings.TrimSpace(s), "\n")); got != 2+3 {
		t.Fatalf("expected 3 round rows, got %d lines:\n%s", got-2, s)
	}
}

func TestFormatTable2(t *testing.T) {
	t.Parallel()
	s := FormatTable2(Table2(Table2Config{Pairs: 8, Rounds: 2, Seed: 1}))
	for _, want := range []string{"# Table 2", "Accept Indirect", "Unable Direct"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
}

func TestFormatSurveyFigures(t *testing.T) {
	t.Parallel()
	res, err := IPSurvey(SurveyConfig{Pairs: 120, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		out  string
		want string
	}{
		{FormatFig2(res), "# Fig 2"},
		{FormatFig7(res), "# Fig 7"},
		{FormatFig8(res), "# Fig 8"},
		{FormatFig9(res), "# Fig 9"},
		{FormatFig10(res), "# Fig 10"},
		{FormatFig11(res), "# Fig 11"},
	}
	for _, c := range checks {
		if !strings.Contains(c.out, c.want) {
			t.Fatalf("missing %q in:\n%.200s", c.want, c.out)
		}
		if !strings.Contains(c.out, "measured") || !strings.Contains(c.out, "distinct") {
			t.Fatalf("%s lacks both weightings", c.want)
		}
	}
}

func TestFormatRouterFigures(t *testing.T) {
	t.Parallel()
	res, recs, err := RouterSurvey(SurveyConfig{Pairs: 40, Seed: 3, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s := FormatFig12(recs); !strings.Contains(s, "# Fig 12") {
		t.Fatal("fig 12 header")
	}
	if s := FormatTable3(res, recs); !strings.Contains(s, "no change") {
		t.Fatal("table 3 rows")
	}
	if s := FormatFig13(res, recs); !strings.Contains(s, "router level") {
		t.Fatal("fig 13 sections")
	}
	if s := FormatFig14(res, recs); !strings.Contains(s, "# Fig 14") {
		t.Fatal("fig 14 header")
	}
}
