package experiments

import (
	"fmt"
	"strings"

	"mmlpt/internal/core"
	"mmlpt/internal/mda"
	"mmlpt/internal/obs"
	"mmlpt/internal/prior"
	"mmlpt/internal/stats"
	"mmlpt/internal/survey"
)

// SurveyConfig scales the Sec 5 surveys.
type SurveyConfig struct {
	Pairs  int
	Seed   uint64
	Phi    int
	Rounds int // alias rounds for the router-level survey
	// Workers is the trace concurrency (0 = GOMAXPROCS, 1 = serial).
	// Results are identical for every worker count.
	Workers int
	// Prior seeds the IP-level survey from an atlas-derived index and
	// switches it to the MDA-Lite (the prior-consuming tracer).
	Prior *prior.Index
	// Sinks, Checkpoint, CheckpointEvery, Resume and Progress thread the
	// streaming pipeline through to survey.Run; all optional.
	Sinks           []survey.Sink
	Checkpoint      string
	CheckpointEvery int
	Resume          bool
	Progress        *obs.Progress
}

func (cfg SurveyConfig) runConfig(algo survey.Algo) survey.RunConfig {
	return survey.RunConfig{
		Algo: algo, Phi: cfg.Phi, Retries: 1,
		Workers: cfg.Workers, Prior: cfg.Prior,
		Trace: mda.Config{Seed: cfg.Seed},
		Sinks: cfg.Sinks, Checkpoint: cfg.Checkpoint,
		CheckpointEvery: cfg.CheckpointEvery, Resume: cfg.Resume,
		Progress: cfg.Progress,
	}
}

// PlanSurvey derives the universe and run configuration the named
// survey level ("ip" or "router") traces under cfg. It is the single
// source of truth shared by the single-machine entry points (IPSurvey,
// RouterSurvey) and the distributed control plane (internal/dispatch):
// a fleet coordinator and its runners both call it with the same spec,
// so every machine derives exactly the jobs — and emits exactly the
// record bytes — a single-machine run would.
func PlanSurvey(level string, cfg SurveyConfig) (*survey.Universe, survey.RunConfig, error) {
	switch level {
	case "ip":
		if cfg.Pairs == 0 {
			cfg.Pairs = 400
		}
		algo := survey.AlgoMDA
		if cfg.Prior != nil {
			algo = survey.AlgoMDALite
		}
		u := survey.Generate(survey.GenConfig{Seed: cfg.Seed ^ 0x1b5e7, Pairs: cfg.Pairs})
		return u, cfg.runConfig(algo), nil
	case "router":
		if cfg.Pairs == 0 {
			cfg.Pairs = 200
		}
		if cfg.Rounds == 0 {
			cfg.Rounds = 10
		}
		u := survey.Generate(survey.GenConfig{Seed: cfg.Seed ^ 0x1b5e8, Pairs: cfg.Pairs})
		rc := cfg.runConfig(survey.AlgoMultilevel)
		rc.OnlyLB = true
		rc.Rounds = cfg.Rounds
		return u, rc, nil
	default:
		return nil, survey.RunConfig{}, fmt.Errorf("experiments: unknown survey level %q (ip or router)", level)
	}
}

// IPSurvey runs the Sec 5.1 IP-level survey with the MDA (as the paper
// did) and returns the result for figure extraction. With a prior index
// it runs the MDA-Lite instead — the tracer that consumes priors — so a
// re-survey seeded from an earlier atlas spends its confirmation budget
// rather than the full stopping-rule cost.
func IPSurvey(cfg SurveyConfig) (*survey.Result, error) {
	u, rc, err := PlanSurvey("ip", cfg)
	if err != nil {
		return nil, err
	}
	return survey.Run(u, rc)
}

// RouterSurvey runs the Sec 5.2 router-level survey with the multilevel
// tracer over the load-balanced pairs.
func RouterSurvey(cfg SurveyConfig) (*survey.Result, []survey.RouterRecord, error) {
	u, rc, err := PlanSurvey("router", cfg)
	if err != nil {
		return nil, nil, err
	}
	res, err := survey.Run(u, rc)
	if err != nil {
		return res, nil, err
	}
	return res, survey.RouterView(res), nil
}

// FormatFig2 renders the missing-meshing probability CDFs.
func FormatFig2(res *survey.Result) string {
	var b strings.Builder
	b.WriteString("# Fig 2: probability of failing to detect meshing (phi=2), per meshed hop pair\n")
	for _, w := range []survey.Weighting{survey.Measured, survey.Distinct} {
		cdf := res.MeshMissCDF(w)
		fmt.Fprintf(&b, "## %s: n=%d, P(miss<=0.1)=%.2f, P(miss<=0.25)=%.2f (paper: ~0.70 and ~0.95)\n",
			w, cdf.N(), cdf.At(0.1), cdf.At(0.25))
		b.WriteString(stats.FormatCDF(cdf, w.String()))
	}
	return b.String()
}

// FormatFig7 renders the width-asymmetry distributions.
func FormatFig7(res *survey.Result) string {
	var b strings.Builder
	b.WriteString("# Fig 7: max width asymmetry distribution (portion of diamonds)\n")
	for _, w := range []survey.Weighting{survey.Measured, survey.Distinct} {
		h := res.WidthAsymmetryDist(w)
		fmt.Fprintf(&b, "## %s: zero-asymmetry portion %.3f (paper: ~0.89)\n", w, h.Portion(0))
		for _, k := range h.Keys() {
			fmt.Fprintf(&b, "%d %.6f\n", k, h.Portion(k))
		}
	}
	return b.String()
}

// FormatFig8 renders the max probability difference CDFs.
func FormatFig8(res *survey.Result) string {
	var b strings.Builder
	b.WriteString("# Fig 8: max probability difference, asymmetric unmeshed diamonds\n")
	for _, w := range []survey.Weighting{survey.Measured, survey.Distinct} {
		cdf := res.MaxProbDiffCDF(w)
		fmt.Fprintf(&b, "## %s: n=%d, P(diff<=0.25)=%.2f, P(diff<=0.5)=%.2f (paper: 0.90/0.58 and ~0.99)\n",
			w, cdf.N(), cdf.At(0.25), cdf.At(0.5))
		b.WriteString(stats.FormatCDF(cdf, w.String()))
	}
	return b.String()
}

// FormatFig9 renders the ratio-of-meshed-hops CDFs.
func FormatFig9(res *survey.Result) string {
	var b strings.Builder
	b.WriteString("# Fig 9: ratio of meshed hops over meshed diamonds\n")
	for _, w := range []survey.Weighting{survey.Measured, survey.Distinct} {
		cdf := res.MeshedRatioCDF(w)
		fmt.Fprintf(&b, "## %s: n=%d, P(ratio<=0.4)=%.2f (paper: >0.80)\n", w, cdf.N(), cdf.At(0.4))
		b.WriteString(stats.FormatCDF(cdf, w.String()))
	}
	return b.String()
}

// FormatFig10 renders the max length and max width distributions.
func FormatFig10(res *survey.Result) string {
	var b strings.Builder
	b.WriteString("# Fig 10: max length and max width distributions\n")
	for _, w := range []survey.Weighting{survey.Measured, survey.Distinct} {
		lh := res.LengthDist(w)
		fmt.Fprintf(&b, "## %s length: len2 portion %.3f (paper: ~0.48)\n", w, lh.Portion(2))
		for _, k := range lh.Keys() {
			fmt.Fprintf(&b, "len %d %.6f\n", k, lh.Portion(k))
		}
		wh := res.WidthDist(w)
		fmt.Fprintf(&b, "## %s width: w48 %.4f w56 %.4f max %d\n",
			w, wh.Portion(48), wh.Portion(56), maxKey(wh))
		for _, k := range wh.Keys() {
			fmt.Fprintf(&b, "width %d %.6f\n", k, wh.Portion(k))
		}
	}
	return b.String()
}

func maxKey(h *stats.Histogram) int {
	keys := h.Keys()
	if len(keys) == 0 {
		return 0
	}
	return keys[len(keys)-1]
}

// FormatFig11 renders the joint length×width distribution.
func FormatFig11(res *survey.Result) string {
	var b strings.Builder
	b.WriteString("# Fig 11: joint (max length, max width) counts\n")
	for _, w := range []survey.Weighting{survey.Measured, survey.Distinct} {
		j := res.JointLengthWidth(w)
		fmt.Fprintf(&b, "## %s (total %d)\n", w, j.Total)
		for _, c := range j.Cells() {
			fmt.Fprintf(&b, "%d %d %d\n", c[0], c[1], c[2])
		}
	}
	return b.String()
}

// FormatFig12 renders the router-size CDFs.
func FormatFig12(records []survey.RouterRecord) string {
	distinct, aggregated := survey.RouterSizeCDFs(records)
	var b strings.Builder
	b.WriteString("# Fig 12: router size (interfaces per router)\n")
	fmt.Fprintf(&b, "## distinct: n=%d, P(size=2)=%.2f, P(size<=10)=%.2f (paper: 0.68 and 0.97)\n",
		distinct.N(), distinct.At(2)-distinct.At(1), distinct.At(10))
	b.WriteString(stats.FormatCDF(distinct, "distinct"))
	fmt.Fprintf(&b, "## aggregated: n=%d, max=%.0f (paper: >50 exists)\n", aggregated.N(), aggregated.Max())
	b.WriteString(stats.FormatCDF(aggregated, "aggregated"))
	return b.String()
}

// FormatTable3 renders the alias-resolution effect fractions.
func FormatTable3(res *survey.Result, records []survey.RouterRecord) string {
	t := survey.Table3(res, records)
	var b strings.Builder
	b.WriteString("# Table 3: effect of alias resolution on unique diamonds\n")
	paper := map[core.DiamondEffect]float64{
		core.EffectNoChange:        0.579,
		core.EffectSingleSmaller:   0.355,
		core.EffectMultipleSmaller: 0.006,
		core.EffectOnePath:         0.058,
	}
	for _, e := range []core.DiamondEffect{
		core.EffectNoChange, core.EffectSingleSmaller,
		core.EffectMultipleSmaller, core.EffectOnePath,
	} {
		fmt.Fprintf(&b, "%-28s %.3f   (paper: %.3f)\n", e, t[e], paper[e])
	}
	return b.String()
}

// FormatFig13 renders the before/after width distributions.
func FormatFig13(res *survey.Result, records []survey.RouterRecord) string {
	before, after := survey.WidthBeforeAfter(res, records)
	var b strings.Builder
	b.WriteString("# Fig 13: max width of unique diamonds, IP level vs router level\n")
	fmt.Fprintf(&b, "## IP level: w48 %.4f w56 %.4f\n", before.Portion(48), before.Portion(56))
	for _, k := range before.Keys() {
		fmt.Fprintf(&b, "ip %d %.6f\n", k, before.Portion(k))
	}
	fmt.Fprintf(&b, "## router level: w48 %.4f w56 %.4f (paper: 48 peak remains, 56 disappears)\n",
		after.Portion(48), after.Portion(56))
	for _, k := range after.Keys() {
		fmt.Fprintf(&b, "router %d %.6f\n", k, after.Portion(k))
	}
	return b.String()
}

// FormatFig14 renders the joint before/after width distribution.
func FormatFig14(res *survey.Result, records []survey.RouterRecord) string {
	j := survey.JointWidthBeforeAfter(res, records)
	var b strings.Builder
	b.WriteString("# Fig 14: joint (width before, width after) for changed diamonds\n")
	fmt.Fprintf(&b, "## total changed: %d\n", j.Total)
	for _, c := range j.Cells() {
		fmt.Fprintf(&b, "%d %d %d\n", c[0], c[1], c[2])
	}
	return b.String()
}
