package experiments

import (
	"reflect"
	"testing"

	"mmlpt/internal/atlas"
	"mmlpt/internal/survey"
)

// Acceptance: the aggregated router-size CDF computed from the atlas an
// AtlasSink built during the run equals the one survey.RouterSizeCDFs
// derives from the in-memory RouterView records — the atlas is a
// faithful cross-trace aggregation, not a parallel approximation.
func TestAtlasRouterSizeCDFMatchesRouterView(t *testing.T) {
	if testing.Short() {
		t.Skip("router survey is slow; skipped with -short")
	}
	t.Parallel()
	sink := survey.NewAtlasSink(atlas.Options{Shards: 8})
	cfg := SurveyConfig{Pairs: 40, Seed: 11, Rounds: 2, Sinks: []survey.Sink{sink}}
	res, recs, err := RouterSurvey(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) == 0 || len(recs) == 0 {
		t.Fatal("survey produced no router records; the comparison would be vacuous")
	}
	_, wantAgg := survey.RouterSizeCDFs(recs)
	got := AtlasRouterSizeCDF(sink.Atlas)
	if got.N() == 0 {
		t.Fatal("atlas has no routers")
	}
	if !reflect.DeepEqual(got, wantAgg) {
		t.Fatalf("atlas aggregated CDF differs from RouterView's: n=%d vs n=%d", got.N(), wantAgg.N())
	}
}
