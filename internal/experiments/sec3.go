package experiments

import (
	"fmt"

	"mmlpt/internal/fakeroute"
	"mmlpt/internal/mda"
	"mmlpt/internal/packet"
	"mmlpt/internal/probe"
	"mmlpt/internal/stats"
	"mmlpt/internal/topo"
)

// Sec3Config scales the Fakeroute statistical validation.
type Sec3Config struct {
	// Samples is the number of sample means (paper: 50); RunsPerSample
	// the runs per sample (paper: 1000).
	Samples, RunsPerSample int
	Seed                   uint64
	// Build selects the topology (default: the simplest diamond).
	Build func(*fakeroute.AddrAllocator, packet.Addr) *topo.Graph
	// Stop selects the stopping points (default: the 95% table).
	Stop []int
}

// Sec3Result is the validation outcome.
type Sec3Result struct {
	Predicted float64 // exact failure probability from the DP
	Measured  float64 // overall mean failure rate
	CI        float64 // 95% confidence half-width over sample means
	Samples   int
	Runs      int
}

// Sec3Validation reproduces the Sec 3 experiment: the MDA is run
// repeatedly over a simulated topology and its measured failure rate is
// checked against the exact prediction (0.03125 for the simplest diamond
// under the 95% table, which the paper measured as 0.03206 ± 0.00156).
func Sec3Validation(cfg Sec3Config) Sec3Result {
	if cfg.Samples == 0 {
		cfg.Samples = 50
	}
	if cfg.RunsPerSample == 0 {
		cfg.RunsPerSample = 1000
	}
	if cfg.Build == nil {
		cfg.Build = fakeroute.SimplestDiamond
	}
	if cfg.Stop == nil {
		cfg.Stop = mda.Default95(64)
	}

	// The prediction needs the ground-truth graph only.
	net0, path0 := fakeroute.BuildScenario(cfg.Seed, expSrc, expDst, cfg.Build)
	_ = net0
	predicted := fakeroute.GraphFailureProb(path0.Graph, cfg.Stop)

	seed := cfg.Seed
	sampleMeans := make([]float64, 0, cfg.Samples)
	for s := 0; s < cfg.Samples; s++ {
		failures := 0
		for r := 0; r < cfg.RunsPerSample; r++ {
			seed += 0x9e3779b9
			net, path := fakeroute.BuildScenario(seed, expSrc, expDst, cfg.Build)
			p := probe.NewSimProber(net, expSrc, expDst)
			p.Retries = 0
			res := mda.Trace(p, mda.Config{Seed: seed, Stop: cfg.Stop})
			vf, ef := topo.SubgraphCoverage(res.Graph, path.Graph)
			if vf < 1 || ef < 1 {
				failures++
			}
		}
		sampleMeans = append(sampleMeans, float64(failures)/float64(cfg.RunsPerSample))
	}
	mean, ci := stats.MeanCI(sampleMeans, 1.96)
	return Sec3Result{
		Predicted: predicted, Measured: mean, CI: ci,
		Samples: cfg.Samples, Runs: cfg.RunsPerSample,
	}
}

// FormatSec3 renders the validation result.
func FormatSec3(r Sec3Result) string {
	return fmt.Sprintf(
		"# Sec 3 Fakeroute validation (%d samples x %d runs)\npredicted_failure %.5f\nmeasured_failure  %.5f\nci95_halfwidth    %.5f\nwithin_ci         %v\n",
		r.Samples, r.Runs, r.Predicted, r.Measured, r.CI,
		r.Measured-r.CI <= r.Predicted && r.Predicted <= r.Measured+r.CI)
}
