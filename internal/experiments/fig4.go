package experiments

import (
	"fmt"
	"strings"

	"mmlpt/internal/mda"
	"mmlpt/internal/mdalite"
	"mmlpt/internal/probe"
	"mmlpt/internal/stats"
	"mmlpt/internal/survey"
	"mmlpt/internal/topo"
)

// Fig4Config scales the measurement-based evaluation (paper: 10,000 pairs
// with diamonds; five tool variants per pair).
type Fig4Config struct {
	Pairs int
	Seed  uint64
}

// Fig4Variant names the tool variants compared against the first MDA run.
type Fig4Variant int

const (
	VariantMDA2 Fig4Variant = iota
	VariantLitePhi2
	VariantLitePhi4
	VariantSingleFlow
	numVariants
)

// String names the variant as in the paper's legends.
func (v Fig4Variant) String() string {
	switch v {
	case VariantMDA2:
		return "Second MDA"
	case VariantLitePhi2:
		return "MDA-Lite 2"
	case VariantLitePhi4:
		return "MDA-Lite 4"
	case VariantSingleFlow:
		return "Single flow ID"
	default:
		return "?"
	}
}

// Fig4Result carries the per-pair ratio samples and the Table 1
// aggregates.
type Fig4Result struct {
	Pairs int
	// VertexRatios etc. hold one ratio (variant/MDA1) per pair, per
	// variant.
	VertexRatios, EdgeRatios, PacketRatios [numVariants][]float64
	// Table1 holds the aggregate-topology ratios: [variant][0]=vertices,
	// [1]=edges, [2]=packets.
	Table1 [numVariants][3]float64
}

type aggTopo struct {
	vertices map[string]bool
	edges    map[string]bool
	packets  uint64
}

func newAggTopo() *aggTopo {
	return &aggTopo{vertices: make(map[string]bool), edges: make(map[string]bool)}
}

func (a *aggTopo) add(pairIdx int, g *topo.Graph, packets uint64) {
	for i := range g.Vertices {
		v := &g.Vertices[i]
		if v.Addr == topo.StarAddr {
			continue
		}
		a.vertices[v.Addr.String()] = true
		for _, w := range g.Succ(topo.VertexID(i)) {
			wa := g.V(w).Addr
			if wa == topo.StarAddr {
				continue
			}
			a.edges[v.Addr.String()+">"+wa.String()] = true
		}
	}
	a.packets += packets
}

// countGraph returns non-star vertex and edge counts.
func countGraph(g *topo.Graph) (v, e int) {
	for i := range g.Vertices {
		if g.Vertices[i].Addr == topo.StarAddr {
			continue
		}
		v++
		for _, w := range g.Succ(topo.VertexID(i)) {
			if g.V(w).Addr != topo.StarAddr {
				e++
			}
		}
	}
	return v, e
}

// Fig4 reproduces the comparative evaluation: for each diamond-bearing
// pair, run a first MDA (the baseline) and the four variants, and compute
// vertex/edge/packet ratios. It also accumulates the Table 1 aggregate
// topology per variant.
func Fig4(cfg Fig4Config) *Fig4Result {
	if cfg.Pairs == 0 {
		cfg.Pairs = 200
	}
	u := survey.Generate(survey.GenConfig{
		Seed:  cfg.Seed ^ 0xf19f4,
		Pairs: cfg.Pairs * 2, // ~half the pairs have load balancers
	})
	res := &Fig4Result{}
	base := newAggTopo()
	aggs := [numVariants]*aggTopo{newAggTopo(), newAggTopo(), newAggTopo(), newAggTopo()}

	runVariant := func(pair survey.Pair, seed uint64, v Fig4Variant) (*mda.Result, uint64) {
		p := probe.NewSimProber(u.Net, pair.Src, pair.Dst)
		p.Retries = 1
		cfgT := mda.Config{Seed: seed}
		var r *mda.Result
		switch v {
		case VariantMDA2:
			r = mda.Trace(p, cfgT)
		case VariantLitePhi2:
			r = mdalite.Trace(p, cfgT, 2)
		case VariantLitePhi4:
			r = mdalite.Trace(p, cfgT, 4)
		case VariantSingleFlow:
			r = mda.TraceSingleFlow(p, cfgT)
		}
		return r, probe.TotalSent(p)
	}

	done := 0
	for i, pair := range u.Pairs {
		if !pair.HasLB {
			continue
		}
		if done >= cfg.Pairs {
			break
		}
		seed := cfg.Seed + uint64(i)*6151
		// First MDA run: the baseline.
		p1 := probe.NewSimProber(u.Net, pair.Src, pair.Dst)
		p1.Retries = 1
		r1 := mda.Trace(p1, mda.Config{Seed: seed ^ 0xaaaa})
		if len(r1.Graph.Diamonds()) == 0 {
			continue // evaluation set is pairs for which diamonds were discovered
		}
		done++
		v1, e1 := countGraph(r1.Graph)
		pk1 := probe.TotalSent(p1)
		base.add(i, r1.Graph, pk1)
		for v := Fig4Variant(0); v < numVariants; v++ {
			r, pk := runVariant(pair, seed+uint64(v)+1, v)
			vv, ee := countGraph(r.Graph)
			res.VertexRatios[v] = append(res.VertexRatios[v], ratio(vv, v1))
			res.EdgeRatios[v] = append(res.EdgeRatios[v], ratio(ee, e1))
			res.PacketRatios[v] = append(res.PacketRatios[v], ratio(int(pk), int(pk1)))
			aggs[v].add(i, r.Graph, pk)
		}
	}
	res.Pairs = done
	for v := Fig4Variant(0); v < numVariants; v++ {
		res.Table1[v][0] = ratio(len(aggs[v].vertices), len(base.vertices))
		res.Table1[v][1] = ratio(len(aggs[v].edges), len(base.edges))
		res.Table1[v][2] = ratio(int(aggs[v].packets), int(base.packets))
	}
	return res
}

func ratio(a, b int) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return float64(a)
	}
	return float64(a) / float64(b)
}

// SavingsShare returns the fraction of pairs on which the variant saved
// packets versus the first MDA run, and the fraction with ≥40% savings.
func (r *Fig4Result) SavingsShare(v Fig4Variant) (anySaving, saving40 float64) {
	xs := r.PacketRatios[v]
	if len(xs) == 0 {
		return 0, 0
	}
	var a, b int
	for _, x := range xs {
		if x < 1 {
			a++
		}
		if x <= 0.6 {
			b++
		}
	}
	return float64(a) / float64(len(xs)), float64(b) / float64(len(xs))
}

// FormatFig4 renders the three ratio CDFs and Table 1.
func FormatFig4(r *Fig4Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Fig 4: ratio CDFs over %d diamond-bearing pairs (alternative : first MDA)\n", r.Pairs)
	metric := []string{"vertex", "edge", "packet"}
	data := [3]*[numVariants][]float64{&r.VertexRatios, &r.EdgeRatios, &r.PacketRatios}
	for m, name := range metric {
		for v := Fig4Variant(0); v < numVariants; v++ {
			cdf := stats.NewCDF((*data[m])[v])
			fmt.Fprintf(&b, "## %s ratio, %s: p10=%.3f p50=%.3f p90=%.3f\n",
				name, v, cdf.Quantile(0.10), cdf.Quantile(0.50), cdf.Quantile(0.90))
		}
	}
	b.WriteString("\n# Table 1: aggregated-topology ratios w.r.t. first MDA\n")
	fmt.Fprintf(&b, "%-15s %9s %9s %9s\n", "variant", "vertices", "edges", "packets")
	paper := map[Fig4Variant][3]float64{
		VariantMDA2:       {0.998, 0.999, 1.005},
		VariantLitePhi2:   {1.002, 1.007, 0.696},
		VariantLitePhi4:   {1.004, 1.005, 0.711},
		VariantSingleFlow: {0.537, 0.201, 0.040},
	}
	for v := Fig4Variant(0); v < numVariants; v++ {
		fmt.Fprintf(&b, "%-15s %9.3f %9.3f %9.3f   (paper: %.3f %.3f %.3f)\n",
			v, r.Table1[v][0], r.Table1[v][1], r.Table1[v][2],
			paper[v][0], paper[v][1], paper[v][2])
	}
	return b.String()
}

// Fig4CDF exposes a named ratio CDF for the bench harness.
func (r *Fig4Result) Fig4CDF(metric string, v Fig4Variant) *stats.CDF {
	switch metric {
	case "vertex":
		return stats.NewCDF(r.VertexRatios[v])
	case "edge":
		return stats.NewCDF(r.EdgeRatios[v])
	default:
		return stats.NewCDF(r.PacketRatios[v])
	}
}
