// Package experiments contains one driver per table and figure of the
// paper's evaluation, shared by cmd/paperfig (which prints the series) and
// bench_test.go (which runs them under testing.B). Each driver returns
// structured data so tests can assert the paper's qualitative shape.
package experiments

import (
	"fmt"
	"strings"

	"mmlpt/internal/fakeroute"
	"mmlpt/internal/mda"
	"mmlpt/internal/mdalite"
	"mmlpt/internal/packet"
	"mmlpt/internal/probe"
	"mmlpt/internal/stats"
	"mmlpt/internal/topo"
)

var (
	expSrc = packet.MustParseAddr("192.0.2.1")
	expDst = packet.MustParseAddr("198.51.100.77")
)

// Fig1Row is the probe accounting for one algorithm on one diamond.
type Fig1Row struct {
	Topology  string
	Algorithm string
	// Floor is the paper's analytic probe floor (e.g. 11·n1 = 99).
	Floor int
	// MeanProbes and CI are measured over Runs executions.
	MeanProbes float64
	CI         float64
	FullV      float64 // mean fraction of vertices discovered
	FullE      float64 // mean fraction of edges discovered
}

// Fig1Config scales the experiment.
type Fig1Config struct {
	Runs int
	Seed uint64
}

// Fig1 reproduces the Sec 2.1/2.3.1 worked example: with the Veitch
// Table 1 stopping points (n1=9, n2=17, n4=33), the MDA needs 99+δ probes
// on the unmeshed 1-4-2-1 diamond and 163+δ′ on the meshed one, while the
// MDA-Lite needs n4+n2+2·n1 = 68 probes on either.
func Fig1(cfg Fig1Config) []Fig1Row {
	if cfg.Runs == 0 {
		cfg.Runs = 30
	}
	nk := mda.VeitchTable1(64)
	type variant struct {
		name  string
		build func(*fakeroute.AddrAllocator, packet.Addr) *topo.Graph
		algo  string
		floor int
	}
	n1, n2, n4 := nk[1], nk[2], nk[4]
	variants := []variant{
		{"unmeshed", fakeroute.Fig1UnmeshedDiamond, "mda", 11 * n1},
		{"meshed", fakeroute.Fig1MeshedDiamond, "mda", 8*n2 + 3*n1},
		{"unmeshed", fakeroute.Fig1UnmeshedDiamond, "mda-lite", n4 + n2 + 2*n1},
		{"meshed", fakeroute.Fig1MeshedDiamond, "mda-lite", n4 + n2 + 2*n1},
	}
	var rows []Fig1Row
	for _, v := range variants {
		var probes, vs, es []float64
		for run := 0; run < cfg.Runs; run++ {
			seed := cfg.Seed + uint64(run)*7919
			net, path := fakeroute.BuildScenario(seed, expSrc, expDst, v.build)
			p := probe.NewSimProber(net, expSrc, expDst)
			p.Retries = 0
			var res *mda.Result
			if v.algo == "mda" {
				res = mda.Trace(p, mda.Config{Seed: seed, Stop: nk})
			} else {
				// The MDA-Lite's analytic floor covers discovery of the
				// diamond itself; the meshing test and a potential
				// switch-over add to it.
				res = mdalite.Trace(p, mda.Config{Seed: seed, Stop: nk}, 2)
			}
			vf, ef := topo.SubgraphCoverage(res.Graph, path.Graph)
			probes = append(probes, float64(res.Probes))
			vs = append(vs, vf)
			es = append(es, ef)
		}
		mean, ci := stats.MeanCI(probes, 1.96)
		rows = append(rows, Fig1Row{
			Topology: v.name, Algorithm: v.algo, Floor: v.floor,
			MeanProbes: mean, CI: ci,
			FullV: stats.Mean(vs), FullE: stats.Mean(es),
		})
	}
	return rows
}

// FormatFig1 renders the rows as the worked-example table.
func FormatFig1(rows []Fig1Row) string {
	var b strings.Builder
	b.WriteString("# Fig 1 / Sec 2.1+2.3.1 probe accounting (Veitch Table 1 stopping points)\n")
	b.WriteString("# topology algorithm floor mean_probes ci95 vfrac efrac\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %-8s %4d %8.1f %6.1f %.3f %.3f\n",
			r.Topology, r.Algorithm, r.Floor, r.MeanProbes, r.CI, r.FullV, r.FullE)
	}
	return b.String()
}
