package experiments

import (
	"strings"
	"testing"

	"mmlpt/internal/traceio"
)

func evalRec(scenario string, seedIdx int, flow bool, mdaProbes, liteProbes uint64, mdaEdge, liteEdge float64) *traceio.EvalRecord {
	rel := 1.0
	if mdaEdge > 0 {
		rel = liteEdge / mdaEdge
	}
	return &traceio.EvalRecord{
		Scenario: scenario, SeedIndex: seedIdx, FlowBased: flow, Pairs: 2,
		MDA:                traceio.AlgoEval{Algo: "mda", Probes: mdaProbes, EdgeRecall: mdaEdge},
		MDALite:            traceio.AlgoEval{Algo: "mda-lite", Probes: liteProbes, EdgeRecall: liteEdge, Switched: 1},
		ProbeSavings:       1 - float64(liteProbes)/float64(mdaProbes),
		RelativeEdgeRecall: rel,
	}
}

func TestAccuracyCostTable(t *testing.T) {
	t.Parallel()
	recs := []*traceio.EvalRecord{
		evalRec("wide", 0, true, 500, 200, 1.0, 1.0),
		evalRec("wide", 1, true, 300, 100, 1.0, 0.9),
		evalRec("perpacket", 0, false, 100, 100, 0.9, 0.9),
	}
	rows := AccuracyCostTable(recs)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	w := rows[0]
	if w.Scenario != "wide" || w.Seeds != 2 {
		t.Fatalf("row 0: %+v", w)
	}
	if w.MDAProbes != 400 || w.LiteProbes != 150 {
		t.Fatalf("mean probes: %+v", w)
	}
	// Savings from totals: 1 - 300/800.
	if got, want := w.Savings, 1-300.0/800; got != want {
		t.Fatalf("savings %v, want %v", got, want)
	}
	if w.LiteEdgeRecall != 0.95 {
		t.Fatalf("mean lite edge recall %v", w.LiteEdgeRecall)
	}
	if w.Switched != 2 {
		t.Fatalf("switched %d", w.Switched)
	}
	if !w.FlowBased || rows[1].FlowBased {
		t.Fatal("flow-based flags lost")
	}

	out := FormatAccuracyCostTable(rows)
	if !strings.Contains(out, "wide") || !strings.Contains(out, "perpacket") {
		t.Fatalf("table missing rows:\n%s", out)
	}
	if !strings.Contains(out, "flow-based scenarios") {
		t.Fatalf("table missing flow-based headline:\n%s", out)
	}
}
