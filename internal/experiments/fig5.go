package experiments

import (
	"fmt"
	"strings"

	"mmlpt/internal/alias"
	"mmlpt/internal/core"
	"mmlpt/internal/mda"
	"mmlpt/internal/packet"
	"mmlpt/internal/probe"
	"mmlpt/internal/survey"
)

// Fig5Config scales the alias-resolution round evaluation.
type Fig5Config struct {
	Pairs  int
	Rounds int // paper: 10
	Seed   uint64
}

// Fig5Row is the aggregate state after one round.
type Fig5Row struct {
	Round int
	// Precision and Recall of the round's alias pairs versus the final
	// round's (the paper's reference), aggregated over all traces.
	Precision, Recall float64
	// TruthPrecision and TruthRecall versus the simulator's ground truth
	// (unavailable to the paper; a bonus of reproducing on Fakeroute).
	TruthPrecision, TruthRecall float64
	// ProbeRatio is (trace + alias probes through this round) / trace
	// probes: Fig 5's right axis.
	ProbeRatio float64
}

// Fig5 reproduces the round-by-round alias resolution evaluation: Round 0
// uses only trace observations, Round 1 adds the fingerprint probe and 30
// MBT samples per address, and each later round adds 30 more.
func Fig5(cfg Fig5Config) []Fig5Row {
	if cfg.Pairs == 0 {
		cfg.Pairs = 100
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 10
	}
	u := survey.Generate(survey.GenConfig{Seed: cfg.Seed ^ 0xf195, Pairs: cfg.Pairs * 2})

	type perRound struct {
		pred  map[[2]packet.Addr]bool
		probe uint64
	}
	rounds := make([]perRound, cfg.Rounds+1)
	for i := range rounds {
		rounds[i].pred = make(map[[2]packet.Addr]bool)
	}
	ref := make(map[[2]packet.Addr]bool)
	truth := make(map[[2]packet.Addr]bool)
	var traceProbes uint64

	done := 0
	for i, pair := range u.Pairs {
		if !pair.HasLB {
			continue
		}
		if done >= cfg.Pairs {
			break
		}
		done++
		p := probe.NewSimProber(u.Net, pair.Src, pair.Dst)
		p.Retries = 1
		res := core.Trace(p, core.Options{
			Trace:  mda.Config{Seed: cfg.Seed + uint64(i)*31},
			Rounds: cfg.Rounds,
		})
		traceProbes += res.TraceProbes
		for r, snap := range res.Rounds {
			for pr := range alias.AliasPairs(snap.Sets) {
				rounds[r].pred[pr] = true
			}
			rounds[r].probe += snap.Probes
		}
		final := res.Rounds[len(res.Rounds)-1]
		for pr := range alias.AliasPairs(final.Sets) {
			ref[pr] = true
		}
		// Ground truth pairs among the trace's candidate addresses.
		routerOf := make(map[packet.Addr]int)
		var addrs []packet.Addr
		for _, g := range core.CandidateGroups(res.IP.Graph, pair.Dst) {
			for _, a := range g {
				addrs = append(addrs, a)
				routerOf[a] = u.RouterOf[a]
			}
		}
		for pr := range alias.GroundTruthPairs(routerOf, addrs) {
			truth[pr] = true
		}
	}

	out := make([]Fig5Row, 0, cfg.Rounds+1)
	for r := 0; r <= cfg.Rounds; r++ {
		p, rec := alias.PrecisionRecall(rounds[r].pred, ref)
		tp, tr := alias.PrecisionRecall(rounds[r].pred, truth)
		ratio := 1.0
		if traceProbes > 0 {
			ratio = float64(traceProbes+rounds[r].probe) / float64(traceProbes)
		}
		out = append(out, Fig5Row{
			Round: r, Precision: p, Recall: rec,
			TruthPrecision: tp, TruthRecall: tr,
			ProbeRatio: ratio,
		})
	}
	return out
}

// FormatFig5 renders the rows.
func FormatFig5(rows []Fig5Row) string {
	var b strings.Builder
	b.WriteString("# Fig 5: alias resolution over rounds (reference = round 10 sets)\n")
	b.WriteString("# round precision recall truth_precision truth_recall probe_ratio\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%5d %9.3f %6.3f %15.3f %12.3f %11.3f\n",
			r.Round, r.Precision, r.Recall, r.TruthPrecision, r.TruthRecall, r.ProbeRatio)
	}
	return b.String()
}
