package experiments

import (
	"fmt"
	"sort"
	"strings"

	"mmlpt/internal/alias"
	"mmlpt/internal/core"
	"mmlpt/internal/mda"
	"mmlpt/internal/obs"
	"mmlpt/internal/packet"
	"mmlpt/internal/probe"
	"mmlpt/internal/survey"
)

// Table2Config scales the indirect-vs-direct comparison.
type Table2Config struct {
	Pairs  int
	Rounds int
	Seed   uint64
}

// Table2Result holds the 3×3 outcome matrix (portions of the union of
// address sets identified as routers by either tool) plus cause
// breakdowns.
type Table2Result struct {
	// Cell[indirect][direct] with Outcome indices Accepted/Rejected/Unable.
	Cell [3][3]float64
	// Sets is the union size (paper: 4798).
	Sets int
	// IndirectRouters and DirectRouters count each tool's accepted sets.
	IndirectRouters, DirectRouters int
	// UnableCausesIndirect tallies why MMLPT was unable on sets the
	// direct tool accepted; UnableCausesDirect vice versa.
	UnableCausesIndirect map[alias.UnableCause]int
	UnableCausesDirect   map[alias.UnableCause]int
}

func outcomeIdx(o alias.Outcome) int {
	switch o {
	case alias.Accepted:
		return 0
	case alias.Rejected:
		return 1
	default:
		return 2
	}
}

// Table2 reproduces the Sec 4.2 comparison: address sets identified as
// routers by indirect probing (MMLPT) or direct probing (a MIDAR-style
// Echo resolver), classified by the other tool as accept / reject /
// unable.
func Table2(cfg Table2Config) *Table2Result {
	if cfg.Pairs == 0 {
		cfg.Pairs = 100
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 10
	}
	u := survey.Generate(survey.GenConfig{Seed: cfg.Seed ^ 0x7ab2e2, Pairs: cfg.Pairs * 2})
	res := &Table2Result{
		UnableCausesIndirect: make(map[alias.UnableCause]int),
		UnableCausesDirect:   make(map[alias.UnableCause]int),
	}

	setKey := func(addrs []packet.Addr) string {
		s := append([]packet.Addr(nil), addrs...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		var b strings.Builder
		for _, a := range s {
			b.WriteString(a.String())
			b.WriteByte('|')
		}
		return b.String()
	}

	type unionSet struct {
		addrs    []packet.Addr
		indirect alias.Outcome
		direct   alias.Outcome
		indRes   *alias.Resolver
		dirRes   *alias.Resolver
	}
	var union []unionSet

	done := 0
	for i, pair := range u.Pairs {
		if !pair.HasLB {
			continue
		}
		if done >= cfg.Pairs {
			break
		}
		done++
		// Indirect (MMLPT) pipeline.
		p := probe.NewSimProber(u.Net, pair.Src, pair.Dst)
		p.Retries = 1
		ml := core.Trace(p, core.Options{
			Trace:  mda.Config{Seed: cfg.Seed + uint64(i)*53},
			Rounds: cfg.Rounds,
		})
		indRes := alias.NewResolver(p, ml.Obs)

		// Direct (MIDAR-style) pipeline over the same diamond addresses.
		groups := core.CandidateGroups(ml.IP.Graph, pair.Dst)
		dp := probe.NewSimProber(u.Net, pair.Src, pair.Dst)
		dp.Retries = 1
		dirRes := alias.NewResolver(dp, obs.New())
		dirRes.Direct = true
		dirRes.Rounds = cfg.Rounds
		var dirSets []alias.Set
		for _, g := range groups {
			rr := dirRes.Resolve(g)
			dirSets = append(dirSets, rr[len(rr)-1].Sets...)
		}

		seen := make(map[string]bool)
		addSet := func(addrs []packet.Addr) {
			if len(addrs) < 2 {
				return
			}
			k := setKey(addrs)
			if seen[k] {
				return
			}
			seen[k] = true
			union = append(union, unionSet{
				addrs:  addrs,
				indRes: indRes, dirRes: dirRes,
			})
		}
		for _, s := range alias.RouterSets(ml.Sets) {
			addSet(s.Addrs)
		}
		for _, s := range alias.RouterSets(dirSets) {
			addSet(s.Addrs)
		}
	}

	// Classify every union set by both tools.
	for i := range union {
		s := &union[i]
		s.indirect = s.indRes.ClassifySet(s.addrs)
		s.direct = s.dirRes.ClassifySet(s.addrs)
		if s.indirect == alias.Accepted {
			res.IndirectRouters++
		}
		if s.direct == alias.Accepted {
			res.DirectRouters++
		}
		if s.indirect == alias.Accepted || s.direct == alias.Accepted {
			res.Cell[outcomeIdx(s.indirect)][outcomeIdx(s.direct)]++
			res.Sets++
		}
		if s.direct == alias.Accepted && s.indirect == alias.Unable {
			for _, a := range s.addrs {
				if ok, cause := s.indRes.AddrUsable(a); !ok {
					res.UnableCausesIndirect[cause]++
					break
				}
			}
		}
		if s.indirect == alias.Accepted && s.direct == alias.Unable {
			for _, a := range s.addrs {
				if ok, cause := s.dirRes.AddrUsable(a); !ok {
					res.UnableCausesDirect[cause]++
					break
				}
			}
		}
	}
	if res.Sets > 0 {
		for i := range res.Cell {
			for j := range res.Cell[i] {
				res.Cell[i][j] /= float64(res.Sets)
			}
		}
	}
	return res
}

// FormatTable2 renders the matrix in the paper's layout.
func FormatTable2(r *Table2Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Table 2: %d address sets identified as routers (indirect=%d, direct=%d)\n",
		r.Sets, r.IndirectRouters, r.DirectRouters)
	rows := []string{"Accept Indirect", "Reject Indirect", "Unable Indirect"}
	fmt.Fprintf(&b, "%-16s %14s %14s %14s\n", "", "Accept Direct", "Reject Direct", "Unable Direct")
	for i, name := range rows {
		fmt.Fprintf(&b, "%-16s %14.3f %14.3f %14.3f\n", name, r.Cell[i][0], r.Cell[i][1], r.Cell[i][2])
	}
	b.WriteString("# paper:            0.365/0.144/0.203 down the Accept-Direct column;\n")
	b.WriteString("#                   0.005 Accept-Indirect/Reject-Direct; 0.283 Accept-Indirect/Unable-Direct\n")
	if len(r.UnableCausesIndirect) > 0 {
		b.WriteString("# indirect-unable causes:")
		for c, n := range r.UnableCausesIndirect {
			fmt.Fprintf(&b, " %s=%d", c, n)
		}
		b.WriteByte('\n')
	}
	if len(r.UnableCausesDirect) > 0 {
		b.WriteString("# direct-unable causes:")
		for c, n := range r.UnableCausesDirect {
			fmt.Fprintf(&b, " %s=%d", c, n)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
