package experiments

import (
	"fmt"
	"strings"

	"mmlpt/internal/atlas"
	"mmlpt/internal/stats"
)

// Aggregated-atlas variant of the Fig 12 router-size CDF: the same
// transitive-closure aggregation survey.RouterSizeCDFs computes from
// in-memory RouterView records, but sourced from a cross-trace atlas —
// so the figure can be regenerated from a snapshot file long after the
// survey process is gone, and keeps growing as later surveys merge in.

// AtlasRouterSizeCDF returns the aggregated router-size CDF from an
// atlas. For an atlas fed by one survey run's AtlasSink it equals the
// aggregated CDF survey.RouterSizeCDFs reports for that run.
func AtlasRouterSizeCDF(a *atlas.Atlas) *stats.CDF {
	sizes := a.RouterSizes()
	samples := make([]float64, len(sizes))
	for i, s := range sizes {
		samples[i] = float64(s)
	}
	return stats.NewCDF(samples)
}

// FormatFig12Atlas renders the aggregated router-size CDF of an atlas
// in the Fig 12 style, alongside the atlas's merged-content stats. One
// snapshot build serves both.
func FormatFig12Atlas(a *atlas.Atlas) string {
	snap := a.Snapshot()
	sizes := make([]int, len(snap.Routers))
	for i, r := range snap.Routers {
		sizes[i] = len(r.Addrs)
	}
	return FormatFig12Sizes(atlas.StatsOf(snap), sizes)
}

// FormatFig12Sizes is the same rendering from already-computed stats
// and router sizes, so callers holding an indexed snapshot (cmd/atlas
// through the serve layer) need not rebuild a full in-memory atlas.
func FormatFig12Sizes(st atlas.Stats, sizes []int) string {
	samples := make([]float64, len(sizes))
	for i, s := range sizes {
		samples[i] = float64(s)
	}
	cdf := stats.NewCDF(samples)
	var b strings.Builder
	b.WriteString("# Fig 12 (atlas): aggregated router size across all merged traces\n")
	fmt.Fprintf(&b, "## %s\n", st)
	fmt.Fprintf(&b, "## aggregated: n=%d, P(size=2)=%.2f, P(size<=10)=%.2f, max=%.0f (paper: >50 exists)\n",
		cdf.N(), cdf.At(2)-cdf.At(1), cdf.At(10), cdf.Max())
	b.WriteString(stats.FormatCDF(cdf, "aggregated"))
	return b.String()
}
