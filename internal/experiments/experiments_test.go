package experiments

import (
	"testing"

	"mmlpt/internal/survey"
)

func TestFig1Accounting(t *testing.T) {
	t.Parallel()
	rows := Fig1(Fig1Config{Runs: 8, Seed: 3})
	byKey := map[string]Fig1Row{}
	for _, r := range rows {
		byKey[r.Topology+"/"+r.Algorithm] = r
	}
	mdaU := byKey["unmeshed/mda"]
	liteU := byKey["unmeshed/mda-lite"]
	if mdaU.MeanProbes < float64(mdaU.Floor) {
		t.Fatalf("MDA unmeshed mean %.1f below analytic floor %d", mdaU.MeanProbes, mdaU.Floor)
	}
	if liteU.MeanProbes >= mdaU.MeanProbes {
		t.Fatalf("MDA-Lite (%.1f) not cheaper than MDA (%.1f) on the unmeshed diamond",
			liteU.MeanProbes, mdaU.MeanProbes)
	}
	mdaM := byKey["meshed/mda"]
	if mdaM.MeanProbes <= mdaU.MeanProbes {
		t.Fatalf("meshed diamond (%.1f) not costlier than unmeshed (%.1f) for the MDA",
			mdaM.MeanProbes, mdaU.MeanProbes)
	}
	for _, r := range rows {
		if r.FullV < 0.99 {
			t.Errorf("%s/%s vertex coverage %.3f", r.Topology, r.Algorithm, r.FullV)
		}
	}
}

func TestSec3ValidationSmall(t *testing.T) {
	t.Parallel()
	r := Sec3Validation(Sec3Config{Samples: 10, RunsPerSample: 200, Seed: 9})
	if r.Predicted != 0.03125 {
		t.Fatalf("predicted %.5f, want 0.03125", r.Predicted)
	}
	// With 2000 runs the standard error is about 0.004; allow 3 sigma.
	if diff := r.Measured - r.Predicted; diff > 0.015 || diff < -0.015 {
		t.Fatalf("measured %.5f too far from predicted %.5f", r.Measured, r.Predicted)
	}
}

func TestFig3Shapes(t *testing.T) {
	t.Parallel()
	curves := Fig3(Fig3Config{Runs: 6, Seed: 21})
	byKey := map[string]Fig3Curve{}
	for _, c := range curves {
		byKey[c.Topology+"/"+c.Algorithm] = c
	}
	// On uniform unmeshed topologies the MDA-Lite must not switch and
	// must use significantly fewer packets.
	for _, topoName := range []string{"max-length-2", "symmetric"} {
		lite := byKey[topoName+"/mda-lite"]
		if lite.SwitchRate > 0 {
			t.Errorf("%s: unexpected switches (rate %.2f)", topoName, lite.SwitchRate)
		}
		if lite.MeanFrac > 0.9 {
			t.Errorf("%s: MDA-Lite used %.2f of MDA packets, expected savings", topoName, lite.MeanFrac)
		}
		final := lite.Points[len(lite.Points)-1]
		if final.V < 0.99 {
			t.Errorf("%s: MDA-Lite final vertex fraction %.3f", topoName, final.V)
		}
	}
	// On meshed/asymmetric topologies the switch must usually fire and
	// economy is lost.
	for _, topoName := range []string{"asymmetric", "meshed"} {
		lite := byKey[topoName+"/mda-lite"]
		if lite.SwitchRate < 0.8 {
			t.Errorf("%s: switch rate %.2f, expected near-certain detection", topoName, lite.SwitchRate)
		}
		if lite.MeanFrac < 1.0 {
			t.Errorf("%s: MDA-Lite frac %.2f < 1, switch should cost extra", topoName, lite.MeanFrac)
		}
	}
}

func TestFig4Table1Shape(t *testing.T) {
	t.Parallel()
	r := Fig4(Fig4Config{Pairs: 60, Seed: 5})
	if r.Pairs < 40 {
		t.Fatalf("only %d diamond-bearing pairs evaluated", r.Pairs)
	}
	// Second MDA and both MDA-Lite variants must discover essentially the
	// same aggregate topology as the first MDA.
	for _, v := range []Fig4Variant{VariantMDA2, VariantLitePhi2, VariantLitePhi4} {
		if r.Table1[v][0] < 0.97 || r.Table1[v][0] > 1.03 {
			t.Errorf("%s aggregate vertex ratio %.3f", v, r.Table1[v][0])
		}
		if r.Table1[v][1] < 0.95 || r.Table1[v][1] > 1.05 {
			t.Errorf("%s aggregate edge ratio %.3f", v, r.Table1[v][1])
		}
	}
	// The MDA-Lite must cut packets notably; the second MDA must not.
	if r.Table1[VariantLitePhi2][2] > 0.9 {
		t.Errorf("MDA-Lite phi=2 aggregate packet ratio %.3f, expected savings", r.Table1[VariantLitePhi2][2])
	}
	if r.Table1[VariantMDA2][2] < 0.9 || r.Table1[VariantMDA2][2] > 1.1 {
		t.Errorf("second MDA packet ratio %.3f, expected ~1", r.Table1[VariantMDA2][2])
	}
	// Single flow: tiny packet budget, much less topology.
	if r.Table1[VariantSingleFlow][2] > 0.25 {
		t.Errorf("single-flow packet ratio %.3f, expected a few percent", r.Table1[VariantSingleFlow][2])
	}
	if r.Table1[VariantSingleFlow][0] > 0.85 {
		t.Errorf("single-flow vertex ratio %.3f, expected large loss", r.Table1[VariantSingleFlow][0])
	}
	if r.Table1[VariantSingleFlow][1] >= r.Table1[VariantSingleFlow][0] {
		t.Errorf("single-flow edge ratio %.3f not below vertex ratio %.3f",
			r.Table1[VariantSingleFlow][1], r.Table1[VariantSingleFlow][0])
	}
}

func TestFig5Shape(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("multilevel rounds over 25 pairs are slow")
	}
	rows := Fig5(Fig5Config{Pairs: 25, Rounds: 5, Seed: 77})
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	r0, r1, last := rows[0], rows[1], rows[len(rows)-1]
	if r0.ProbeRatio != 1 {
		t.Fatalf("round 0 probe ratio %.3f, want 1 (free)", r0.ProbeRatio)
	}
	if last.Precision < 0.999 || last.Recall < 0.999 {
		t.Fatalf("final round self-reference P=%.3f R=%.3f", last.Precision, last.Recall)
	}
	if r1.Recall < r0.Recall-0.05 {
		t.Errorf("recall fell after first probing round: %.3f -> %.3f", r0.Recall, r1.Recall)
	}
	if last.ProbeRatio <= r1.ProbeRatio {
		t.Errorf("probe ratio must grow: r1=%.3f last=%.3f", r1.ProbeRatio, last.ProbeRatio)
	}
}

func TestTable2Shape(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("multilevel rounds over 30 pairs are slow")
	}
	r := Table2(Table2Config{Pairs: 30, Rounds: 4, Seed: 15})
	if r.Sets == 0 {
		t.Fatal("no router sets in the union")
	}
	var sum float64
	for i := range r.Cell {
		for j := range r.Cell[i] {
			sum += r.Cell[i][j]
		}
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("cells sum to %.3f, want 1", sum)
	}
	// Both-accept must be the dominant cell.
	if r.Cell[0][0] < 0.2 {
		t.Errorf("both-accept cell %.3f, expected dominant", r.Cell[0][0])
	}
}

func TestIPSurveySmallShapes(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("600-pair universe is slow")
	}
	// Population fractions are popularity-weighted and need a few hundred
	// distinct diamonds before they stabilize; 600 pairs keeps the bands
	// meaningful without slowing the suite.
	res, err := IPSurvey(SurveyConfig{Pairs: 600, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Measured) == 0 {
		t.Fatal("no diamonds")
	}
	h := res.WidthAsymmetryDist(survey.Measured)
	if p0 := h.Portion(0); p0 < 0.70 {
		t.Errorf("zero-asymmetry portion %.2f, calibration target ~0.89", p0)
	}
	lh := res.LengthDist(survey.Measured)
	if p2 := lh.Portion(2); p2 < 0.30 || p2 > 0.70 {
		t.Errorf("len-2 portion %.2f, calibration target ~0.48", p2)
	}
}
