package experiments

import (
	"fmt"
	"sort"
	"strings"

	"mmlpt/internal/fakeroute"
	"mmlpt/internal/mda"
	"mmlpt/internal/mdalite"
	"mmlpt/internal/packet"
	"mmlpt/internal/probe"
	"mmlpt/internal/stats"
	"mmlpt/internal/topo"
)

// Fig3Config scales the simulation comparison.
type Fig3Config struct {
	Runs int // paper: 30
	Seed uint64
	Phi  int
}

// Fig3Point is one averaged point of a discovery curve.
type Fig3Point struct {
	// X is the packet count normalized to the MDA's total for the run.
	X float64
	// V and E are mean fractions of vertices and edges discovered, with
	// 95% CI half-widths.
	V, VErr float64
	E, EErr float64
}

// Fig3Curve is one algorithm's averaged discovery curve on one topology.
type Fig3Curve struct {
	Topology  string
	Algorithm string
	Points    []Fig3Point
	// MeanPackets is the mean total packets; MeanFrac the mean of
	// (algorithm packets / MDA packets) per run.
	MeanPackets float64
	MeanFrac    float64
	// SwitchRate is the fraction of runs where the MDA-Lite switched.
	SwitchRate float64
}

// fig3Topologies are the four Sec 2.4.1 simulation topologies.
func fig3Topologies() []struct {
	Name  string
	Build func(*fakeroute.AddrAllocator, packet.Addr) *topo.Graph
} {
	return []struct {
		Name  string
		Build func(*fakeroute.AddrAllocator, packet.Addr) *topo.Graph
	}{
		{"max-length-2", fakeroute.MaxLength2Diamond},
		{"symmetric", fakeroute.SymmetricDiamond},
		{"asymmetric", fakeroute.AsymmetricDiamond},
		{"meshed", fakeroute.MeshedDiamond48},
	}
}

// traceProgress runs one algorithm once, recording (packets, vFrac,
// eFrac) after every probe.
func traceProgress(seed uint64, build func(*fakeroute.AddrAllocator, packet.Addr) *topo.Graph, lite bool, phi int) (curve [][3]float64, total uint64, switched bool) {
	net, path := fakeroute.BuildScenario(seed, expSrc, expDst, build)
	sim := probe.NewSimProber(net, expSrc, expDst)
	sim.Retries = 0
	rec := &probe.Recorder{Prober: sim}
	s := mda.NewSession(rec, mda.Config{Seed: seed})
	rec.OnProbe = func(sent uint64, _ *packet.Reply) {
		vf, ef := topo.SubgraphCoverage(s.G, path.Graph)
		curve = append(curve, [3]float64{float64(sent), vf, ef})
	}
	var res *mda.Result
	if lite {
		res = mdalite.Run(s, phi)
		// A switch-over resets s.G mid-run; the recorder closure reads the
		// session's live graph, so the curve reflects the reset too. The
		// final coverage is what matters for the asserted shape.
	} else {
		s.RunMDA(0)
		res = s.Finish(false)
	}
	// The per-probe callback fires before its round's replies are folded
	// into the graph (with batched rounds, up to a whole n_k round can be
	// in flight), so close the curve with a terminal point reflecting the
	// completed trace.
	vf, ef := topo.SubgraphCoverage(s.G, path.Graph)
	curve = append(curve, [3]float64{float64(res.Probes), vf, ef})
	return curve, res.Probes, res.SwitchedToMDA
}

// Fig3 reproduces the simulation comparison: vertex and edge discovery as
// a function of probes sent, MDA-Lite (phi=2) versus MDA, 30 runs per
// topology, x normalized to each run's MDA total.
func Fig3(cfg Fig3Config) []Fig3Curve {
	if cfg.Runs == 0 {
		cfg.Runs = 30
	}
	if cfg.Phi == 0 {
		cfg.Phi = mdalite.DefaultPhi
	}
	grid := make([]float64, 0, 20)
	for x := 0.05; x <= 1.0001; x += 0.05 {
		grid = append(grid, x)
	}
	var out []Fig3Curve
	for _, topoSpec := range fig3Topologies() {
		type run struct {
			curve    [][3]float64
			total    uint64
			mdaTotal uint64
			switched bool
		}
		runsMDA := make([]run, cfg.Runs)
		runsLite := make([]run, cfg.Runs)
		for i := 0; i < cfg.Runs; i++ {
			seed := cfg.Seed + uint64(i)*104729
			cM, tM, _ := traceProgress(seed, topoSpec.Build, false, cfg.Phi)
			cL, tL, sw := traceProgress(seed+1, topoSpec.Build, true, cfg.Phi)
			runsMDA[i] = run{curve: cM, total: tM, mdaTotal: tM}
			runsLite[i] = run{curve: cL, total: tL, mdaTotal: tM, switched: sw}
		}
		for _, algo := range []string{"mda", "mda-lite"} {
			runs := runsMDA
			if algo == "mda-lite" {
				runs = runsLite
			}
			curve := Fig3Curve{Topology: topoSpec.Name, Algorithm: algo}
			var totals, fracs []float64
			switches := 0
			for _, r := range runs {
				totals = append(totals, float64(r.total))
				fracs = append(fracs, float64(r.total)/float64(r.mdaTotal))
				if r.switched {
					switches++
				}
			}
			curve.MeanPackets = stats.Mean(totals)
			curve.MeanFrac = stats.Mean(fracs)
			curve.SwitchRate = float64(switches) / float64(len(runs))
			for _, x := range grid {
				var vs, es []float64
				for _, r := range runs {
					budget := x * float64(r.mdaTotal)
					v, e := sampleCurve(r.curve, budget)
					vs = append(vs, v)
					es = append(es, e)
				}
				vm, vci := stats.MeanCI(vs, 1.96)
				em, eci := stats.MeanCI(es, 1.96)
				curve.Points = append(curve.Points, Fig3Point{X: x, V: vm, VErr: vci, E: em, EErr: eci})
			}
			out = append(out, curve)
		}
	}
	return out
}

// sampleCurve returns the (vFrac, eFrac) achieved by the time `budget`
// packets had been sent (the last point at or below the budget).
func sampleCurve(curve [][3]float64, budget float64) (v, e float64) {
	i := sort.Search(len(curve), func(i int) bool { return curve[i][0] > budget })
	if i == 0 {
		return 0, 0
	}
	return curve[i-1][1], curve[i-1][2]
}

// FormatFig3 renders the curves.
func FormatFig3(curves []Fig3Curve) string {
	var b strings.Builder
	b.WriteString("# Fig 3: discovery vs normalized packets (x v verr e eerr)\n")
	for _, c := range curves {
		fmt.Fprintf(&b, "## %s %s  mean_packets=%.1f frac_of_mda=%.2f switch_rate=%.2f\n",
			c.Topology, c.Algorithm, c.MeanPackets, c.MeanFrac, c.SwitchRate)
		for _, p := range c.Points {
			fmt.Fprintf(&b, "%.2f %.4f %.4f %.4f %.4f\n", p.X, p.V, p.VErr, p.E, p.EErr)
		}
	}
	return b.String()
}
