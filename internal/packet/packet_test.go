package packet

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestParseAddrRoundTrip(t *testing.T) {
	cases := []string{"0.0.0.0", "10.0.0.1", "192.0.2.255", "255.255.255.255", "1.2.3.4"}
	for _, s := range cases {
		a, err := ParseAddr(s)
		if err != nil {
			t.Fatalf("ParseAddr(%q): %v", s, err)
		}
		if a.String() != s {
			t.Errorf("round trip %q -> %q", s, a.String())
		}
	}
}

func TestParseAddrRejectsMalformed(t *testing.T) {
	bad := []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1..2.3", "1.2.3.", ".1.2.3", "1.2.3.4 "}
	for _, s := range bad {
		if _, err := ParseAddr(s); err == nil {
			t.Errorf("ParseAddr(%q) unexpectedly succeeded", s)
		}
	}
}

func TestAddrAppendText(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		var buf [15]byte
		got := a.AppendText(buf[:0])
		want := fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
		return string(got) == want && a.String() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Appending extends, never clobbers, an existing prefix.
	b := a1234Prefix()
	b = Addr(0x01020304).AppendText(b)
	if string(b) != "x=1.2.3.4" {
		t.Fatalf("AppendText onto prefix = %q", b)
	}
	if n := testing.AllocsPerRun(100, func() {
		var buf [15]byte
		_ = Addr(0xc0000216).AppendText(buf[:0])
	}); n != 0 {
		t.Fatalf("AppendText into sized buffer allocates %v times", n)
	}
}

func a1234Prefix() []byte { return append(make([]byte, 0, 32), "x="...) }

func TestParseAddrPropertyRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		b, err := ParseAddr(a.String())
		return err == nil && b == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: checksum of 00 01 f2 03 f4 f5 f6 f7 is 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != 0x220d {
		t.Fatalf("checksum = %#x, want 0x220d", got)
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	h := IPv4{
		TOS: 0x10, ID: 0xbeef, TTL: 17, Protocol: ProtoUDP,
		Src: MustParseAddr("10.1.2.3"), Dst: MustParseAddr("10.4.5.6"),
	}
	payload := []byte{1, 2, 3, 4, 5}
	buf := h.SerializeTo(nil, len(payload))
	buf = append(buf, payload...)
	var g IPv4
	rest, err := g.DecodeFromBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.ID != h.ID || g.TTL != h.TTL || g.Protocol != h.Protocol || g.Src != h.Src || g.Dst != h.Dst {
		t.Fatalf("decoded %+v, want %+v", g, h)
	}
	if len(rest) != len(payload) || rest[0] != 1 || rest[4] != 5 {
		t.Fatalf("payload = %v", rest)
	}
	// Header checksum must verify.
	if Checksum(buf[:IPv4HeaderLen]) != 0 {
		t.Fatal("header checksum does not verify")
	}
}

func TestIPv4DecodeErrors(t *testing.T) {
	if _, err := new(IPv4).DecodeFromBytes(make([]byte, 10)); err != ErrTruncated {
		t.Errorf("short: %v", err)
	}
	buf := make([]byte, 20)
	buf[0] = 0x60 // version 6
	if _, err := new(IPv4).DecodeFromBytes(buf); err != ErrBadVersion {
		t.Errorf("version: %v", err)
	}
	buf[0] = 0x44 // IHL 4 words: invalid
	if _, err := new(IPv4).DecodeFromBytes(buf); err != ErrBadHeader {
		t.Errorf("ihl: %v", err)
	}
}

func TestUDPChecksumComputed(t *testing.T) {
	src, dst := MustParseAddr("10.0.0.1"), MustParseAddr("10.0.0.2")
	u := UDP{SrcPort: 1234, DstPort: 5678}
	payload := []byte{9, 8, 7}
	buf := u.SerializeTo(nil, src, dst, payload)
	// Verify via pseudo-header fold: a correct packet folds to zero.
	partial := pseudoHeaderSum(src, dst, ProtoUDP, uint16(len(buf)))
	if foldChecksum(partial, buf) != 0 {
		t.Fatal("computed UDP checksum does not verify")
	}
}

func TestProbeSerializeVerifies(t *testing.T) {
	p := Probe{
		Src: MustParseAddr("192.0.2.1"), Dst: MustParseAddr("198.51.100.7"),
		FlowID: 12, TTL: 6, Checksum: 0x1234,
	}
	raw := p.Serialize()
	if err := VerifyProbe(raw); err != nil {
		t.Fatalf("probe does not verify: %v", err)
	}
	pp, err := ParseProbe(raw)
	if err != nil {
		t.Fatal(err)
	}
	if pp.FlowID != 12 || pp.Identity != 0x1234 || pp.IP.TTL != 6 {
		t.Fatalf("parsed %+v", pp)
	}
}

func TestProbeChecksumPinningProperty(t *testing.T) {
	// For any flow, TTL and target identity, the crafted probe must be a
	// valid UDP packet whose checksum field equals the identity: the Paris
	// technique's core trick.
	f := func(flow uint16, ttl uint8, target uint16, s, d uint32) bool {
		if ttl == 0 {
			ttl = 1
		}
		p := Probe{
			Src: Addr(s | 1), Dst: Addr(d | 2),
			FlowID: flow % (MaxFlowID + 1), TTL: ttl, Checksum: target,
		}
		raw := p.Serialize()
		if VerifyProbe(raw) != nil {
			return false
		}
		pp, err := ParseProbe(raw)
		if err != nil {
			return false
		}
		want := target
		if want == 0 {
			want = 1 // zero is never used as an identity
		}
		return pp.Identity == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestProbeFlowKeyIgnoresIdentity(t *testing.T) {
	// Two probes differing only in TTL and identity must hash to the same
	// flow (the whole point of Paris traceroute).
	mk := func(ttl uint8, id uint16) uint64 {
		p := Probe{
			Src: MustParseAddr("192.0.2.1"), Dst: MustParseAddr("198.51.100.7"),
			FlowID: 5, TTL: ttl, Checksum: id,
		}
		pp, err := ParseProbe(p.Serialize())
		if err != nil {
			t.Fatal(err)
		}
		return pp.FlowKey()
	}
	if mk(3, 100) != mk(9, 4242) {
		t.Fatal("flow key varies with TTL/identity")
	}
	// And differing flow IDs must (essentially always) differ.
	p2 := Probe{Src: MustParseAddr("192.0.2.1"), Dst: MustParseAddr("198.51.100.7"), FlowID: 6, TTL: 3, Checksum: 100}
	pp2, _ := ParseProbe(p2.Serialize())
	if pp2.FlowKey() == mk(3, 100) {
		t.Fatal("different flows collided")
	}
}

func TestICMPEchoRoundTrip(t *testing.T) {
	m := ICMP{Type: ICMPTypeEcho, ID: 77, Seq: 88, Payload: []byte("ping")}
	buf := m.SerializeTo(nil)
	var g ICMP
	if err := g.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if g.Type != ICMPTypeEcho || g.ID != 77 || g.Seq != 88 || string(g.Payload) != "ping" {
		t.Fatalf("decoded %+v", g)
	}
	if Checksum(buf) != 0 {
		t.Fatal("ICMP checksum does not verify")
	}
}

func TestICMPTimeExceededWithMPLS(t *testing.T) {
	quoted := Probe{
		Src: MustParseAddr("192.0.2.1"), Dst: MustParseAddr("198.51.100.7"),
		FlowID: 3, TTL: 1, Checksum: 42,
	}.serializeForTest()
	entries := []MPLSLabelStackEntry{{Label: 0xABCDE, TC: 3, S: true, TTL: 64}}
	m := ICMP{
		Type: ICMPTypeTimeExceeded, Code: ICMPCodeTTLExceeded,
		Payload:    quoted,
		Extensions: EncodeMPLSExtension(entries),
	}
	buf := m.SerializeTo(nil)
	var g ICMP
	if err := g.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMPLSExtension(g.Extensions)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Label != 0xABCDE || got[0].TC != 3 || !got[0].S || got[0].TTL != 64 {
		t.Fatalf("mpls = %+v", got)
	}
	// The quoted datagram must survive (padded per RFC 4884).
	var q IPv4
	if _, err := q.DecodeFromBytes(g.Payload); err != nil {
		t.Fatalf("quoted datagram: %v", err)
	}
	if q.Dst != MustParseAddr("198.51.100.7") {
		t.Fatalf("quoted dst = %s", q.Dst)
	}
}

// serializeForTest avoids exporting a helper solely for tests.
func (p Probe) serializeForTest() []byte { return (&p).Serialize() }

func TestMPLSExtensionEmptyAndMalformed(t *testing.T) {
	if e := EncodeMPLSExtension(nil); e != nil {
		t.Fatal("empty encode must be nil")
	}
	if got, err := DecodeMPLSExtension(nil); err != nil || got != nil {
		t.Fatalf("nil decode: %v %v", got, err)
	}
	if _, err := DecodeMPLSExtension([]byte{0x20, 0}); err == nil {
		t.Fatal("truncated header accepted")
	}
	if _, err := DecodeMPLSExtension([]byte{0x10, 0, 0, 0}); err == nil {
		t.Fatal("wrong version accepted")
	}
}

func TestMPLSExtensionPropertyRoundTrip(t *testing.T) {
	f := func(label uint32, tc, ttl uint8, s bool) bool {
		in := []MPLSLabelStackEntry{{Label: label & 0xfffff, TC: tc & 7, S: s, TTL: ttl}}
		out, err := DecodeMPLSExtension(EncodeMPLSExtension(in))
		return err == nil && len(out) == 1 && out[0] == in[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseReplyTimeExceeded(t *testing.T) {
	// Build a complete reply the way the simulator does and ensure the
	// tracer-visible fields are recovered.
	quoted := Probe{
		Src: MustParseAddr("192.0.2.1"), Dst: MustParseAddr("198.51.100.7"),
		FlowID: 9, TTL: 1, Checksum: 555,
	}
	icmp := ICMP{Type: ICMPTypeTimeExceeded, Payload: (&quoted).Serialize()}
	body := icmp.SerializeTo(nil)
	ip := IPv4{ID: 0x1111, TTL: 250, Protocol: ProtoICMP,
		Src: MustParseAddr("10.9.9.9"), Dst: MustParseAddr("192.0.2.1")}
	raw := ip.SerializeTo(nil, len(body))
	raw = append(raw, body...)

	r, err := ParseReply(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsTimeExceeded() || r.From != MustParseAddr("10.9.9.9") {
		t.Fatalf("reply %+v", r)
	}
	if r.IPID != 0x1111 || r.ReplyTTL != 250 {
		t.Fatalf("outer fields: %+v", r)
	}
	if !r.HasQuotedFlow || r.ProbeFlowID != 9 || r.ProbeIdentity != 555 {
		t.Fatalf("quoted fields: %+v", r)
	}
	if r.ProbeDst != MustParseAddr("198.51.100.7") {
		t.Fatalf("quoted dst: %s", r.ProbeDst)
	}
}

func TestParseReplyRejectsNonICMP(t *testing.T) {
	p := Probe{Src: MustParseAddr("1.1.1.1"), Dst: MustParseAddr("2.2.2.2"), FlowID: 0, TTL: 1, Checksum: 1}
	if _, err := ParseReply(p.Serialize()); err == nil {
		t.Fatal("UDP packet accepted as reply")
	}
}

func TestEchoProbeRoundTrip(t *testing.T) {
	e := EchoProbe{
		Src: MustParseAddr("192.0.2.1"), Dst: MustParseAddr("10.0.0.5"),
		ID: 0x4d4c, Seq: 3, IPID: 99,
	}
	raw := e.Serialize()
	var ip IPv4
	body, err := ip.DecodeFromBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if ip.Protocol != ProtoICMP || ip.ID != 99 {
		t.Fatalf("ip: %+v", ip)
	}
	var m ICMP
	if err := m.DecodeFromBytes(body); err != nil {
		t.Fatal(err)
	}
	if m.Type != ICMPTypeEcho || m.ID != 0x4d4c || m.Seq != 3 {
		t.Fatalf("icmp: %+v", m)
	}
}
