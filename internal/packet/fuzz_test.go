package packet

import (
	"testing"
	"testing/quick"
)

// Robustness: no decoder may panic on arbitrary bytes — a tracer parses
// whatever the network throws at it. Errors are fine; panics are not.

func neverPanics(t *testing.T, name string, f func(data []byte)) {
	t.Helper()
	check := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("%s panicked on %x: %v", name, data, r)
				ok = false
			}
		}()
		f(data)
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
}

func TestDecodersNeverPanicOnGarbage(t *testing.T) {
	neverPanics(t, "IPv4", func(data []byte) {
		var h IPv4
		_, _ = h.DecodeFromBytes(data)
	})
	neverPanics(t, "UDP", func(data []byte) {
		var u UDP
		_, _ = u.DecodeFromBytes(data)
	})
	neverPanics(t, "ICMP", func(data []byte) {
		var m ICMP
		_ = m.DecodeFromBytes(data)
	})
	neverPanics(t, "MPLS", func(data []byte) {
		_, _ = DecodeMPLSExtension(data)
	})
	neverPanics(t, "ParseReply", func(data []byte) {
		_, _ = ParseReply(data)
	})
	neverPanics(t, "ParseProbe", func(data []byte) {
		_, _ = ParseProbe(data)
	})
	neverPanics(t, "VerifyProbe", func(data []byte) {
		_ = VerifyProbe(data)
	})
}

// TestDecodersNeverPanicOnTruncatedValid feeds every prefix of a valid
// reply to the parser: truncation at any byte must not panic.
func TestDecodersNeverPanicOnTruncatedValid(t *testing.T) {
	quoted := Probe{
		Src: MustParseAddr("192.0.2.1"), Dst: MustParseAddr("198.51.100.7"),
		FlowID: 3, TTL: 1, Checksum: 42,
	}
	icmp := ICMP{
		Type: ICMPTypeTimeExceeded, Payload: (&quoted).Serialize(),
		Extensions: EncodeMPLSExtension([]MPLSLabelStackEntry{{Label: 9, S: true, TTL: 1}}),
	}
	body := icmp.SerializeTo(nil)
	ip := IPv4{ID: 1, TTL: 64, Protocol: ProtoICMP,
		Src: MustParseAddr("10.0.0.1"), Dst: MustParseAddr("192.0.2.1")}
	raw := ip.SerializeTo(nil, len(body))
	raw = append(raw, body...)
	for n := 0; n <= len(raw); n++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at prefix %d: %v", n, r)
				}
			}()
			_, _ = ParseReply(raw[:n])
		}()
	}
}

// TestDecodersNeverPanicOnBitFlips flips each byte of a valid reply.
func TestDecodersNeverPanicOnBitFlips(t *testing.T) {
	pr := Probe{
		Src: MustParseAddr("192.0.2.1"), Dst: MustParseAddr("198.51.100.7"),
		FlowID: 1, TTL: 1, Checksum: 5,
	}
	icmp := ICMP{Type: ICMPTypeTimeExceeded, Payload: (&pr).Serialize()}
	body := icmp.SerializeTo(nil)
	ip := IPv4{TTL: 64, Protocol: ProtoICMP,
		Src: MustParseAddr("10.0.0.1"), Dst: MustParseAddr("192.0.2.1")}
	raw := ip.SerializeTo(nil, len(body))
	raw = append(raw, body...)
	mut := make([]byte, len(raw))
	for i := 0; i < len(raw); i++ {
		for _, b := range []byte{0x00, 0xff, raw[i] ^ 0x80} {
			copy(mut, raw)
			mut[i] = b
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic flipping byte %d to %#x: %v", i, b, r)
					}
				}()
				_, _ = ParseReply(mut)
				_, _ = ParseProbe(mut)
			}()
		}
	}
}
