// Package packet implements the wire formats a Paris traceroute speaks:
// IPv4, UDP, ICMP (Time Exceeded, Destination Unreachable, Echo /
// Echo Reply), and the ICMP multi-part extension structure that carries
// MPLS label stacks (RFC 4884 + RFC 4950).
//
// The design follows the gopacket idiom: each layer is a struct with
// exported fields, a SerializeTo that appends wire bytes, and a
// DecodeFromBytes that parses them. Probes and replies cross the
// tracer/simulator boundary as real wire bytes, so the tracer exercises the
// same parsing code paths it would against a kernel raw socket.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Addr is an IPv4 address in host-comparable form. The zero value is the
// unspecified address 0.0.0.0.
type Addr uint32

// AddrFrom4 builds an Addr from four dotted-quad octets.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseAddr parses a dotted-quad IPv4 string.
func ParseAddr(s string) (Addr, error) {
	var parts [4]int
	n := 0
	cur := -1
	for i := 0; i < len(s); i++ {
		ch := s[i]
		switch {
		case ch >= '0' && ch <= '9':
			if cur < 0 {
				cur = 0
			}
			cur = cur*10 + int(ch-'0')
			if cur > 255 {
				return 0, fmt.Errorf("packet: octet out of range in %q", s)
			}
		case ch == '.':
			if cur < 0 || n >= 3 {
				return 0, fmt.Errorf("packet: malformed address %q", s)
			}
			parts[n] = cur
			n++
			cur = -1
		default:
			return 0, fmt.Errorf("packet: invalid character in address %q", s)
		}
	}
	if cur < 0 || n != 3 {
		return 0, fmt.Errorf("packet: malformed address %q", s)
	}
	parts[3] = cur
	return AddrFrom4(byte(parts[0]), byte(parts[1]), byte(parts[2]), byte(parts[3])), nil
}

// MustParseAddr is ParseAddr that panics on error, for use in tests and
// static tables.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// AppendText appends the dotted-quad form of a to b and returns the
// extended slice, allocation-free when b has capacity. This is the
// encode-side counterpart of ParseAddr for hot paths (snapshot
// encoding renders millions of addresses); String is a convenience
// wrapper over it.
func (a Addr) AppendText(b []byte) []byte {
	for i := 3; i >= 0; i-- {
		oct := byte(a >> (8 * i))
		if oct >= 100 {
			b = append(b, '0'+oct/100)
		}
		if oct >= 10 {
			b = append(b, '0'+(oct/10)%10)
		}
		b = append(b, '0'+oct%10)
		if i > 0 {
			b = append(b, '.')
		}
	}
	return b
}

// String renders the address in dotted-quad form.
func (a Addr) String() string {
	var buf [15]byte
	return string(a.AppendText(buf[:0]))
}

// IsUnspecified reports whether a is 0.0.0.0.
func (a Addr) IsUnspecified() bool { return a == 0 }

// IP protocol numbers used by the tracer.
const (
	ProtoICMP = 1
	ProtoUDP  = 17
)

// ICMP types and codes used by the tracer.
const (
	ICMPTypeEchoReply       = 0
	ICMPTypeDestUnreachable = 3
	ICMPTypeEcho            = 8
	ICMPTypeTimeExceeded    = 11

	ICMPCodePortUnreachable = 3
	ICMPCodeTTLExceeded     = 0
)

// Errors returned by decoders.
var (
	ErrTruncated  = errors.New("packet: truncated")
	ErrBadVersion = errors.New("packet: not IPv4")
	ErrBadHeader  = errors.New("packet: malformed header")
	ErrChecksum   = errors.New("packet: bad checksum")
)

// Checksum computes the Internet checksum (RFC 1071) over data.
func Checksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i:]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the partial checksum of the IPv4 pseudo-header
// used by UDP.
func pseudoHeaderSum(src, dst Addr, proto byte, length uint16) uint32 {
	var sum uint32
	sum += uint32(src >> 16)
	sum += uint32(src & 0xffff)
	sum += uint32(dst >> 16)
	sum += uint32(dst & 0xffff)
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// foldChecksum folds a partial 32-bit sum plus data bytes into a final
// Internet checksum.
func foldChecksum(partial uint32, data []byte) uint16 {
	sum := partial
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i:]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// IPv4 is an IPv4 header (without options; IHL is fixed at 5 words, which
// is what every traceroute implementation emits).
type IPv4 struct {
	TOS      byte
	TotalLen uint16 // filled by SerializeTo when zero
	ID       uint16
	Flags    byte // upper 3 bits of the fragment word
	FragOff  uint16
	TTL      byte
	Protocol byte
	Checksum uint16 // filled by SerializeTo
	Src, Dst Addr
}

// IPv4HeaderLen is the length of an option-less IPv4 header.
const IPv4HeaderLen = 20

// SerializeTo appends the header bytes for a payload of length payloadLen.
func (h *IPv4) SerializeTo(b []byte, payloadLen int) []byte {
	total := IPv4HeaderLen + payloadLen
	if h.TotalLen != 0 {
		total = int(h.TotalLen)
	}
	start := len(b)
	b = append(b,
		0x45, h.TOS,
		byte(total>>8), byte(total),
		byte(h.ID>>8), byte(h.ID),
		byte(h.Flags<<5)|byte(h.FragOff>>8&0x1f), byte(h.FragOff),
		h.TTL, h.Protocol,
		0, 0, // checksum placeholder
		byte(h.Src>>24), byte(h.Src>>16), byte(h.Src>>8), byte(h.Src),
		byte(h.Dst>>24), byte(h.Dst>>16), byte(h.Dst>>8), byte(h.Dst),
	)
	ck := Checksum(b[start : start+IPv4HeaderLen])
	binary.BigEndian.PutUint16(b[start+10:], ck)
	h.Checksum = ck
	return b
}

// DecodeFromBytes parses an IPv4 header from data and returns the payload
// slice (aliasing data).
func (h *IPv4) DecodeFromBytes(data []byte) ([]byte, error) {
	if len(data) < IPv4HeaderLen {
		return nil, ErrTruncated
	}
	if data[0]>>4 != 4 {
		return nil, ErrBadVersion
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(data) < ihl {
		return nil, ErrBadHeader
	}
	h.TOS = data[1]
	h.TotalLen = binary.BigEndian.Uint16(data[2:])
	h.ID = binary.BigEndian.Uint16(data[4:])
	frag := binary.BigEndian.Uint16(data[6:])
	h.Flags = byte(frag >> 13)
	h.FragOff = frag & 0x1fff
	h.TTL = data[8]
	h.Protocol = data[9]
	h.Checksum = binary.BigEndian.Uint16(data[10:])
	h.Src = Addr(binary.BigEndian.Uint32(data[12:]))
	h.Dst = Addr(binary.BigEndian.Uint32(data[16:]))
	end := int(h.TotalLen)
	if end > len(data) || end < ihl {
		// Tolerate captures that truncate the quoted payload, as ICMP
		// errors are allowed to do.
		end = len(data)
	}
	return data[ihl:end], nil
}

// UDP is a UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16 // filled by SerializeTo when zero
	Checksum         uint16 // filled by SerializeTo when zero
}

// UDPHeaderLen is the length of a UDP header.
const UDPHeaderLen = 8

// SerializeTo appends the UDP header followed by payload. If h.Checksum is
// zero it computes the real checksum over the pseudo-header; a non-zero
// value is emitted verbatim, which is how Paris traceroute pins the flow
// identifier (see FlowID).
func (h *UDP) SerializeTo(b []byte, src, dst Addr, payload []byte) []byte {
	length := UDPHeaderLen + len(payload)
	if h.Length != 0 {
		length = int(h.Length)
	}
	start := len(b)
	b = append(b,
		byte(h.SrcPort>>8), byte(h.SrcPort),
		byte(h.DstPort>>8), byte(h.DstPort),
		byte(length>>8), byte(length),
		byte(h.Checksum>>8), byte(h.Checksum),
	)
	b = append(b, payload...)
	if h.Checksum == 0 {
		partial := pseudoHeaderSum(src, dst, ProtoUDP, uint16(length))
		ck := foldChecksum(partial, b[start:])
		if ck == 0 {
			ck = 0xffff
		}
		binary.BigEndian.PutUint16(b[start+6:], ck)
		h.Checksum = ck
	}
	return b
}

// DecodeFromBytes parses a UDP header and returns the payload slice.
func (h *UDP) DecodeFromBytes(data []byte) ([]byte, error) {
	if len(data) < UDPHeaderLen {
		return nil, ErrTruncated
	}
	h.SrcPort = binary.BigEndian.Uint16(data)
	h.DstPort = binary.BigEndian.Uint16(data[2:])
	h.Length = binary.BigEndian.Uint16(data[4:])
	h.Checksum = binary.BigEndian.Uint16(data[6:])
	end := int(h.Length)
	if end > len(data) || end < UDPHeaderLen {
		end = len(data)
	}
	return data[UDPHeaderLen:end], nil
}

// ICMP is an ICMP message. For Echo/EchoReply, ID and Seq are meaningful.
// For error messages (Time Exceeded, Destination Unreachable), Payload
// holds the quoted datagram and Extensions any RFC 4884 extension block.
type ICMP struct {
	Type, Code byte
	Checksum   uint16 // filled by SerializeTo
	ID, Seq    uint16 // echo only
	// Payload is the quoted original datagram for error messages, or the
	// echo payload for echo messages.
	Payload []byte
	// Extensions is the raw RFC 4884 extension structure, if present.
	Extensions []byte
	// origDatagramWords is the RFC 4884 "length" field value observed or to
	// be emitted (in 32-bit words) when Extensions is non-empty.
	origDatagramWords byte
}

// ICMPHeaderLen is the length of the fixed ICMP header.
const ICMPHeaderLen = 8

// rfc4884MinQuoted is the minimum quoted-datagram length (in bytes) when an
// extension structure is appended: 128 bytes per RFC 4884 for ICMP v4
// Time Exceeded / Destination Unreachable.
const rfc4884MinQuoted = 128

// SerializeTo appends the ICMP message. Error messages with Extensions are
// emitted in RFC 4884 compliant form: the quoted datagram is zero-padded to
// 128 bytes and the length field set accordingly.
func (m *ICMP) SerializeTo(b []byte) []byte {
	start := len(b)
	var word2 [4]byte
	isError := m.Type == ICMPTypeTimeExceeded || m.Type == ICMPTypeDestUnreachable
	quoted := m.Payload
	if isError && len(m.Extensions) > 0 {
		padded := len(quoted)
		if padded < rfc4884MinQuoted {
			padded = rfc4884MinQuoted
		}
		// Round up to a 32-bit boundary as the length field is in words.
		padded = (padded + 3) &^ 3
		word2[1] = byte(padded / 4) // RFC 4884 length field
		m.origDatagramWords = word2[1]
		q := make([]byte, padded)
		copy(q, quoted)
		quoted = q
	} else if !isError {
		binary.BigEndian.PutUint16(word2[0:], m.ID)
		binary.BigEndian.PutUint16(word2[2:], m.Seq)
	}
	b = append(b, m.Type, m.Code, 0, 0)
	b = append(b, word2[:]...)
	b = append(b, quoted...)
	if isError && len(m.Extensions) > 0 {
		b = append(b, m.Extensions...)
	}
	ck := Checksum(b[start:])
	binary.BigEndian.PutUint16(b[start+2:], ck)
	m.Checksum = ck
	return b
}

// DecodeFromBytes parses an ICMP message, separating the RFC 4884 extension
// structure from the quoted datagram when the length field indicates one.
func (m *ICMP) DecodeFromBytes(data []byte) error {
	if len(data) < ICMPHeaderLen {
		return ErrTruncated
	}
	m.Type = data[0]
	m.Code = data[1]
	m.Checksum = binary.BigEndian.Uint16(data[2:])
	body := data[ICMPHeaderLen:]
	switch m.Type {
	case ICMPTypeEcho, ICMPTypeEchoReply:
		m.ID = binary.BigEndian.Uint16(data[4:])
		m.Seq = binary.BigEndian.Uint16(data[6:])
		m.Payload = body
		m.Extensions = nil
	case ICMPTypeTimeExceeded, ICMPTypeDestUnreachable:
		m.origDatagramWords = data[5]
		quotedLen := int(m.origDatagramWords) * 4
		if quotedLen > 0 && quotedLen <= len(body) {
			m.Payload = body[:quotedLen]
			m.Extensions = body[quotedLen:]
		} else {
			m.Payload = body
			m.Extensions = nil
		}
	default:
		m.Payload = body
		m.Extensions = nil
	}
	return nil
}

// MPLSLabelStackEntry is one entry of an MPLS label stack as carried in an
// ICMP extension object (RFC 4950).
type MPLSLabelStackEntry struct {
	Label uint32 // 20 bits
	TC    byte   // 3 bits (formerly EXP)
	S     bool   // bottom of stack
	TTL   byte
}

// mplsExtensionHeader builds the RFC 4884 extension header plus one MPLS
// label stack object (class 1, c-type 1) containing the given entries.
func mplsExtensionHeader(entries []MPLSLabelStackEntry) []byte {
	objLen := 4 + 4*len(entries)
	buf := make([]byte, 0, 4+objLen)
	// Extension header: version 2, reserved, checksum (computed below).
	buf = append(buf, 0x20, 0, 0, 0)
	// Object header: length, class-num 1 (MPLS), c-type 1 (incoming stack).
	buf = append(buf, byte(objLen>>8), byte(objLen), 1, 1)
	for _, e := range entries {
		w := e.Label<<12 | uint32(e.TC)<<9 | uint32(e.TTL)
		if e.S {
			w |= 1 << 8
		}
		buf = append(buf, byte(w>>24), byte(w>>16), byte(w>>8), byte(w))
	}
	ck := Checksum(buf)
	binary.BigEndian.PutUint16(buf[2:], ck)
	return buf
}

// EncodeMPLSExtension returns the raw extension bytes for the label stack,
// suitable for assigning to ICMP.Extensions.
func EncodeMPLSExtension(entries []MPLSLabelStackEntry) []byte {
	if len(entries) == 0 {
		return nil
	}
	return mplsExtensionHeader(entries)
}

// DecodeMPLSExtension extracts MPLS label stack entries from a raw RFC 4884
// extension structure. It returns nil if the structure carries no MPLS
// object. Malformed structures yield an error.
func DecodeMPLSExtension(ext []byte) ([]MPLSLabelStackEntry, error) {
	if len(ext) == 0 {
		return nil, nil
	}
	if len(ext) < 4 {
		return nil, ErrTruncated
	}
	if ext[0]>>4 != 2 {
		return nil, fmt.Errorf("packet: unsupported ICMP extension version %d", ext[0]>>4)
	}
	body := ext[4:]
	for len(body) > 0 {
		if len(body) < 4 {
			return nil, ErrTruncated
		}
		objLen := int(binary.BigEndian.Uint16(body))
		class, ctype := body[2], body[3]
		if objLen < 4 || objLen > len(body) {
			return nil, ErrBadHeader
		}
		if class == 1 && ctype == 1 {
			payload := body[4:objLen]
			if len(payload)%4 != 0 {
				return nil, ErrBadHeader
			}
			entries := make([]MPLSLabelStackEntry, 0, len(payload)/4)
			for i := 0; i < len(payload); i += 4 {
				w := binary.BigEndian.Uint32(payload[i:])
				entries = append(entries, MPLSLabelStackEntry{
					Label: w >> 12,
					TC:    byte(w >> 9 & 0x7),
					S:     w>>8&1 == 1,
					TTL:   byte(w),
				})
			}
			return entries, nil
		}
		body = body[objLen:]
	}
	return nil, nil
}
