package packet

import (
	"bytes"
	"reflect"
	"testing"
)

// Round-trip agreement between the legacy allocating codecs and the
// append/into codecs added for the zero-allocation hot path. The two
// families must stay byte-for-byte and field-for-field interchangeable:
// the simulator runs on the Into/AppendTo forms while tests and tools
// still use the allocating wrappers.

// dirtyReply returns a Reply with every field non-zero, so a missing
// reset in ParseReplyInto shows up as a stale value.
func dirtyReply() Reply {
	return Reply{
		From: 0xdeadbeef, Type: 0xaa, Code: 0xbb, IPID: 0xcccc, ReplyTTL: 0xdd,
		MPLS:          []MPLSLabelStackEntry{{Label: 1, TC: 2, S: true, TTL: 3}},
		ProbeIdentity: 0xeeee, ProbeFlowID: 0xff00, HasQuotedFlow: true,
		ProbeDst: 0x01020304, EchoID: 0x1111, EchoSeq: 0x2222,
	}
}

func dirtyParsedProbe() ParsedProbe {
	return ParsedProbe{
		IP:     IPv4{TOS: 1, TotalLen: 2, ID: 3, TTL: 4, Protocol: 5, Src: 6, Dst: 7},
		UDP:    UDP{SrcPort: 8, DstPort: 9, Length: 10, Checksum: 11},
		FlowID: 12, Identity: 13,
	}
}

// FuzzParseProbe feeds arbitrary bytes to both probe parsers and requires
// identical outcomes; on success it additionally re-serializes the parsed
// identity through both Serialize and AppendTo and requires identical
// bytes.
func FuzzParseProbe(f *testing.F) {
	valid := Probe{
		Src: MustParseAddr("192.0.2.1"), Dst: MustParseAddr("198.51.100.7"),
		FlowID: 3, TTL: 5, Checksum: 42,
	}
	f.Add(valid.Serialize())
	f.Add([]byte{})
	f.Add([]byte{0x45})
	f.Add(valid.Serialize()[:IPv4HeaderLen+3])
	f.Fuzz(func(t *testing.T, data []byte) {
		legacy, legacyErr := ParseProbe(data)
		pp := dirtyParsedProbe()
		err := ParseProbeInto(&pp, data)
		if (legacyErr == nil) != (err == nil) {
			t.Fatalf("parser disagreement: legacy err %v, into err %v", legacyErr, err)
		}
		if legacyErr != nil {
			return
		}
		if *legacy != pp {
			t.Fatalf("parsed probe mismatch:\nlegacy %+v\ninto   %+v", *legacy, pp)
		}
		rebuilt := Probe{
			Src: pp.IP.Src, Dst: pp.IP.Dst,
			FlowID: pp.FlowID, TTL: pp.IP.TTL, Checksum: pp.Identity,
		}
		appended := rebuilt.AppendTo(nil)
		if serialized := rebuilt.Serialize(); !bytes.Equal(serialized, appended) {
			t.Fatalf("Serialize/AppendTo mismatch:\n%x\n%x", serialized, appended)
		}
		// Appending after a prefix must not disturb the emitted bytes.
		withPrefix := rebuilt.AppendTo([]byte{0xde, 0xad})
		if !bytes.Equal(withPrefix[2:], appended) {
			t.Fatalf("AppendTo disturbed by prefix:\n%x\n%x", withPrefix[2:], appended)
		}
	})
}

// FuzzParseReply feeds arbitrary bytes to both reply parsers and requires
// identical outcomes, including full field resets on the reused Reply.
func FuzzParseReply(f *testing.F) {
	pr := Probe{
		Src: MustParseAddr("192.0.2.1"), Dst: MustParseAddr("198.51.100.7"),
		FlowID: 3, TTL: 1, Checksum: 42,
	}
	icmp := ICMP{
		Type: ICMPTypeTimeExceeded, Payload: pr.Serialize(),
		Extensions: EncodeMPLSExtension([]MPLSLabelStackEntry{{Label: 9, S: true, TTL: 1}}),
	}
	body := icmp.SerializeTo(nil)
	ip := IPv4{ID: 1, TTL: 64, Protocol: ProtoICMP,
		Src: MustParseAddr("10.0.0.1"), Dst: MustParseAddr("192.0.2.1")}
	reply := ip.SerializeTo(nil, len(body))
	reply = append(reply, body...)
	f.Add(reply)
	f.Add([]byte{})
	f.Add(reply[:IPv4HeaderLen+4])
	echo := EchoProbe{Src: 1, Dst: 2, ID: 3, Seq: 4, IPID: 5}
	f.Add(echo.Serialize())
	f.Fuzz(func(t *testing.T, data []byte) {
		legacy, legacyErr := ParseReply(data)
		r := dirtyReply()
		err := ParseReplyInto(&r, data)
		if (legacyErr == nil) != (err == nil) {
			t.Fatalf("parser disagreement: legacy err %v, into err %v", legacyErr, err)
		}
		if legacyErr != nil {
			return
		}
		if !reflect.DeepEqual(*legacy, r) {
			t.Fatalf("parsed reply mismatch:\nlegacy %+v\ninto   %+v", *legacy, r)
		}
	})
}

// TestEchoAppendToMatchesSerialize pins the echo probe codec pair.
func TestEchoAppendToMatchesSerialize(t *testing.T) {
	for seq := uint16(0); seq < 300; seq += 37 {
		e := EchoProbe{
			Src: MustParseAddr("192.0.2.1"), Dst: MustParseAddr("10.0.0.9"),
			ID: 0x4d4c, Seq: seq, IPID: seq ^ 0x5555,
		}
		want := e.Serialize()
		got := e.AppendTo(nil)
		if !bytes.Equal(want, got) {
			t.Fatalf("seq %d: Serialize %x != AppendTo %x", seq, want, got)
		}
		if len(want) != EchoLen {
			t.Fatalf("echo length %d, want EchoLen=%d", len(want), EchoLen)
		}
	}
}

// TestProbeLenMatchesWire pins the exported wire-length constant.
func TestProbeLenMatchesWire(t *testing.T) {
	p := Probe{Src: 1, Dst: 2, FlowID: 3, TTL: 4, Checksum: 5}
	if got := len(p.Serialize()); got != ProbeLen {
		t.Fatalf("probe wire length %d, want ProbeLen=%d", got, ProbeLen)
	}
}

// TestParseIntoReusesWithoutLeak: parsing a reply without an MPLS stack
// into a Reply that previously carried one must clear the stack.
func TestParseIntoReusesWithoutLeak(t *testing.T) {
	e := EchoProbe{Src: 1, Dst: 2, ID: 3, Seq: 4, IPID: 5}
	probeRaw := e.Serialize()
	icmp := ICMP{Type: ICMPTypeEchoReply, ID: 3, Seq: 4}
	body := icmp.SerializeTo(nil)
	ip := IPv4{TTL: 60, Protocol: ProtoICMP, Src: 2, Dst: 1}
	raw := ip.SerializeTo(nil, len(body))
	raw = append(raw, body...)
	r := dirtyReply()
	if err := ParseReplyInto(&r, raw); err != nil {
		t.Fatal(err)
	}
	if r.MPLS != nil || r.HasQuotedFlow || r.ProbeIdentity != 0 {
		t.Fatalf("stale fields survived reuse: %+v", r)
	}
	if !r.IsEchoReply() || r.EchoID != 3 || r.EchoSeq != 4 {
		t.Fatalf("echo fields wrong: %+v", r)
	}
	_ = probeRaw
}
