package packet

import (
	"encoding/binary"
	"fmt"
)

// Paris traceroute probe construction.
//
// A per-flow load balancer classifies packets on the 5-tuple
// (src addr, dst addr, protocol, src port, dst port). The Paris technique
// therefore keeps all five fields constant for probes that must follow one
// flow, and encodes the probe identity — which classic traceroute put in
// the destination port, perturbing the flow — in fields that do not enter
// the flow hash but are echoed back inside the ICMP error quote:
//
//   - the UDP checksum, pinned to a chosen value by adjusting two bytes of
//     payload so the packet still checksums correctly; and
//   - the IP ID, set to the same identity value.
//
// The Multipath Detection Algorithm explores different flows by varying the
// UDP source port, one flow identifier per source port.

// DefaultDstPort is the classic traceroute destination port base. Keeping a
// single constant destination port (rather than the incrementing ports of
// classic traceroute) is the essence of the Paris technique.
const DefaultDstPort = 33434

// DefaultSrcPortBase is the lowest UDP source port used for flow IDs.
// Flow f is carried in source port DefaultSrcPortBase+f.
const DefaultSrcPortBase = 33456

// MaxFlowID bounds the flow identifier space so that source ports stay
// below 65536.
const MaxFlowID = 65535 - DefaultSrcPortBase

// Probe describes one traceroute probe to be serialized.
type Probe struct {
	Src, Dst Addr
	FlowID   uint16 // selects the UDP source port
	TTL      byte
	Checksum uint16 // probe identity, pinned into the UDP checksum and IP ID
}

// probePayloadLen is the probe payload size: two bytes used to pin the UDP
// checksum.
const probePayloadLen = 2

// ProbeLen is the wire length of a serialized traceroute probe.
const ProbeLen = IPv4HeaderLen + UDPHeaderLen + probePayloadLen

// Serialize builds the full IPv4+UDP probe packet.
func (p *Probe) Serialize() []byte {
	return p.AppendTo(make([]byte, 0, ProbeLen))
}

// AppendTo appends the full IPv4+UDP probe packet to buf and returns the
// extended slice. It emits exactly the bytes Serialize would, but lets a
// hot path reuse one buffer across probes instead of allocating per probe.
func (p *Probe) AppendTo(buf []byte) []byte {
	if p.Checksum == 0 {
		// A UDP checksum of zero means "not computed"; never use it as an
		// identity value.
		p.Checksum = 1
	}
	udp := UDP{
		SrcPort:  DefaultSrcPortBase + p.FlowID,
		DstPort:  DefaultDstPort,
		Length:   UDPHeaderLen + probePayloadLen,
		Checksum: p.Checksum,
	}
	var payload [probePayloadLen]byte
	binary.BigEndian.PutUint16(payload[:], pinPayloadWord(p.Src, p.Dst, &udp, p.Checksum))
	ip := IPv4{
		ID:       p.Checksum,
		TTL:      p.TTL,
		Protocol: ProtoUDP,
		Src:      p.Src,
		Dst:      p.Dst,
	}
	buf = ip.SerializeTo(buf, UDPHeaderLen+probePayloadLen)
	buf = udp.SerializeTo(buf, p.Src, p.Dst, payload[:])
	return buf
}

// pinPayloadWord computes the two payload bytes that make the UDP checksum
// field equal target while remaining a valid checksum.
func pinPayloadWord(src, dst Addr, udp *UDP, target uint16) uint16 {
	// The ones-complement sum over pseudo-header + UDP header (with the
	// checksum field set to target) + payload must equal 0xffff for the
	// packet to verify. Compute the sum S with a zero payload word, then
	// choose the payload word P so that S + P ≡ 0xffff (mod 0xffff).
	length := uint16(UDPHeaderLen + probePayloadLen)
	sum := pseudoHeaderSum(src, dst, ProtoUDP, length)
	sum += uint32(udp.SrcPort)
	sum += uint32(udp.DstPort)
	sum += uint32(length)
	sum += uint32(target)
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	// A zero word is fine: it contributes nothing and the sum already
	// folds to 0xffff.
	return 0xffff - uint16(sum)
}

// VerifyProbe checks that raw is a well-formed probe whose UDP checksum
// verifies; it is used by tests and by the simulator's self-checks.
func VerifyProbe(raw []byte) error {
	var ip IPv4
	payload, err := ip.DecodeFromBytes(raw)
	if err != nil {
		return err
	}
	if ip.Protocol != ProtoUDP {
		return fmt.Errorf("packet: probe protocol %d, want UDP", ip.Protocol)
	}
	if len(payload) < UDPHeaderLen {
		return ErrTruncated
	}
	length := binary.BigEndian.Uint16(payload[4:])
	if int(length) > len(payload) {
		return ErrTruncated
	}
	partial := pseudoHeaderSum(ip.Src, ip.Dst, ProtoUDP, length)
	if foldChecksum(partial, payload[:length]) != 0 {
		return ErrChecksum
	}
	return nil
}

// ParsedProbe is the view of a probe the simulator (or a router) sees.
type ParsedProbe struct {
	IP     IPv4
	UDP    UDP
	FlowID uint16
	// Identity is the probe identity value (the pinned UDP checksum).
	Identity uint16
}

// ParseProbe parses raw probe bytes.
func ParseProbe(raw []byte) (*ParsedProbe, error) {
	var pp ParsedProbe
	if err := ParseProbeInto(&pp, raw); err != nil {
		return nil, err
	}
	return &pp, nil
}

// ParseProbeInto parses raw probe bytes into pp, overwriting every field,
// so one ParsedProbe can be reused across probes without allocating. On
// error pp's contents are unspecified.
func ParseProbeInto(pp *ParsedProbe, raw []byte) error {
	*pp = ParsedProbe{}
	payload, err := pp.IP.DecodeFromBytes(raw)
	if err != nil {
		return err
	}
	if pp.IP.Protocol != ProtoUDP {
		return fmt.Errorf("packet: probe protocol %d, want UDP", pp.IP.Protocol)
	}
	if _, err := pp.UDP.DecodeFromBytes(payload); err != nil {
		return err
	}
	if pp.UDP.SrcPort < DefaultSrcPortBase {
		return fmt.Errorf("packet: source port %d below flow base", pp.UDP.SrcPort)
	}
	pp.FlowID = pp.UDP.SrcPort - DefaultSrcPortBase
	pp.Identity = pp.UDP.Checksum
	return nil
}

// FlowKey returns the value a per-flow load balancer hashes: a canonical
// encoding of the probe's 5-tuple. Note the probe identity (checksum, IP
// ID, TTL) is deliberately absent.
func (pp *ParsedProbe) FlowKey() uint64 {
	return uint64(pp.IP.Src)<<32 ^ uint64(pp.IP.Dst) ^
		uint64(pp.UDP.SrcPort)<<48 ^ uint64(pp.UDP.DstPort)<<16 ^ uint64(ProtoUDP)<<40
}

// Reply is the parsed form of an ICMP response to a probe, carrying
// everything the tracer and the alias resolver consume.
type Reply struct {
	// From is the address the reply came from (the outer IP source): the
	// responding interface.
	From Addr
	// Type and Code are the ICMP type and code.
	Type, Code byte
	// IPID is the outer IP header's identification field: the responding
	// router's counter sample used by the Monotonic Bounds Test.
	IPID uint16
	// ReplyTTL is the outer IP header's TTL as received, used by Network
	// Fingerprinting to infer the router's initial TTL.
	ReplyTTL byte
	// MPLS holds the label stack from the ICMP extension, if any.
	MPLS []MPLSLabelStackEntry

	// Fields recovered from the quoted probe (error messages) or from the
	// echo header (echo replies):

	// ProbeIdentity is the quoted probe's identity value, 0 if unavailable.
	ProbeIdentity uint16
	// ProbeFlowID is the quoted probe's flow ID; valid only when
	// HasQuotedFlow is true.
	ProbeFlowID   uint16
	HasQuotedFlow bool
	// ProbeDst is the quoted probe's destination, 0 if unavailable.
	ProbeDst Addr
	// EchoID and EchoSeq are set for echo replies.
	EchoID, EchoSeq uint16
}

// IsTimeExceeded reports whether the reply is an ICMP Time Exceeded.
func (r *Reply) IsTimeExceeded() bool { return r.Type == ICMPTypeTimeExceeded }

// IsPortUnreachable reports whether the reply indicates the probe reached
// the destination.
func (r *Reply) IsPortUnreachable() bool {
	return r.Type == ICMPTypeDestUnreachable && r.Code == ICMPCodePortUnreachable
}

// IsEchoReply reports whether the reply answers a direct (ping-style) probe.
func (r *Reply) IsEchoReply() bool { return r.Type == ICMPTypeEchoReply }

// ParseReply parses raw ICMP reply bytes.
func ParseReply(raw []byte) (*Reply, error) {
	r := new(Reply)
	if err := ParseReplyInto(r, raw); err != nil {
		return nil, err
	}
	return r, nil
}

// ParseReplyInto parses raw ICMP reply bytes into r, overwriting every
// field, so one Reply can be reused across replies without allocating (the
// MPLS stack, when present, is still freshly allocated: replies carrying
// extensions are rare and the slice may outlive the next parse). On error
// r's contents are unspecified. The parsed Reply holds no reference to
// raw, so raw may be a transport-owned scratch buffer.
func ParseReplyInto(r *Reply, raw []byte) error {
	*r = Reply{}
	var outer IPv4
	body, err := outer.DecodeFromBytes(raw)
	if err != nil {
		return err
	}
	if outer.Protocol != ProtoICMP {
		return fmt.Errorf("packet: reply protocol %d, want ICMP", outer.Protocol)
	}
	var icmp ICMP
	if err := icmp.DecodeFromBytes(body); err != nil {
		return err
	}
	r.From = outer.Src
	r.Type = icmp.Type
	r.Code = icmp.Code
	r.IPID = outer.ID
	r.ReplyTTL = outer.TTL
	switch icmp.Type {
	case ICMPTypeEchoReply:
		r.EchoID, r.EchoSeq = icmp.ID, icmp.Seq
	case ICMPTypeTimeExceeded, ICMPTypeDestUnreachable:
		if mpls, err := DecodeMPLSExtension(icmp.Extensions); err == nil {
			r.MPLS = mpls
		}
		var quoted IPv4
		qPayload, err := quoted.DecodeFromBytes(icmp.Payload)
		if err != nil {
			break // tolerate unparseable quotes: reply still attributes an address
		}
		r.ProbeDst = quoted.Dst
		if quoted.Protocol == ProtoUDP && len(qPayload) >= UDPHeaderLen {
			var udp UDP
			if _, err := udp.DecodeFromBytes(qPayload); err == nil {
				r.ProbeIdentity = udp.Checksum
				if udp.SrcPort >= DefaultSrcPortBase {
					r.ProbeFlowID = udp.SrcPort - DefaultSrcPortBase
					r.HasQuotedFlow = true
				}
			}
		}
	}
	return nil
}

// EchoProbe describes a direct (ping-style) probe used by alias resolution.
type EchoProbe struct {
	Src, Dst Addr
	ID, Seq  uint16
	IPID     uint16
}

// EchoLen is the wire length of a serialized echo probe.
const EchoLen = IPv4HeaderLen + ICMPHeaderLen

// Serialize builds the full IPv4+ICMP Echo packet.
func (e *EchoProbe) Serialize() []byte {
	return e.AppendTo(make([]byte, 0, EchoLen))
}

// AppendTo appends the full IPv4+ICMP Echo packet to buf and returns the
// extended slice, emitting exactly the bytes Serialize would.
func (e *EchoProbe) AppendTo(buf []byte) []byte {
	ip := IPv4{
		ID:       e.IPID,
		TTL:      64,
		Protocol: ProtoICMP,
		Src:      e.Src,
		Dst:      e.Dst,
	}
	buf = ip.SerializeTo(buf, ICMPHeaderLen)
	icmp := ICMP{Type: ICMPTypeEcho, ID: e.ID, Seq: e.Seq}
	return icmp.SerializeTo(buf)
}
