package fakeroute

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mmlpt/internal/nprand"
	"mmlpt/internal/packet"
	"mmlpt/internal/topo"
)

// LBMode selects a load balancer's dispatch policy.
type LBMode int

const (
	// LBPerFlow hashes the probe's 5-tuple: the common case the Paris
	// technique and the MDA are built for.
	LBPerFlow LBMode = iota
	// LBPerPacket dispatches uniformly at random per packet, violating
	// MDA assumption (2). Rare in the wild (Augustin et al. 2011); used
	// for failure-injection tests.
	LBPerPacket
	// LBPerDestination hashes only the destination address, so all probe
	// flows to one destination follow a single path.
	LBPerDestination
)

// PathKey identifies a ground-truth path.
type PathKey struct {
	Src, Dst packet.Addr
}

// Path is the ground-truth topology for one (source, destination) pair.
// Hop 0 of the graph holds the single first-hop vertex; the last hop holds
// a vertex whose address is the destination.
type Path struct {
	Key   PathKey
	Graph *topo.Graph
	// LB maps a vertex to its dispatch policy; vertices absent from the
	// map use LBPerFlow.
	LB map[topo.VertexID]LBMode
	// WeightedEdges optionally assigns non-uniform dispatch weights to a
	// vertex's successor edges (violating MDA assumption (3)). Keyed by
	// vertex; the slice is index-aligned with the vertex's successors.
	WeightedEdges map[topo.VertexID][]float64
	// Alt, when non-nil, replaces Graph once the trace clock reaches
	// AltAt: a routing change mid-measurement, violating MDA assumption
	// (1). The alternate graph's interfaces must be registered.
	Alt   *topo.Graph
	AltAt uint64
}

// activeGraph returns the topology in force at tick now.
func (p *Path) activeGraph(now uint64) *topo.Graph {
	if p.Alt != nil && now >= p.AltAt {
		return p.Alt
	}
	return p.Graph
}

// Network is the simulated internet.
//
// Construction (NewRouter, AddIface, AddPath, EnsureIfaces and the
// topology builders) is not synchronized and must complete before probing
// begins. Probing itself — HandleProbe, or Session.HandleProbe obtained
// from SessionFor — is safe for concurrent use: all per-probe mutable
// state (randomness, clocks, IP ID counters, token buckets) lives in
// per-trace Sessions, so concurrent traces of distinct pairs neither race
// nor perturb each other's deterministic streams.
type Network struct {
	seed    uint64
	rng     *nprand.Source // construction-time randomness only
	routers []*Router
	ifaces  map[packet.Addr]*Iface
	paths   map[PathKey]*Path

	// LossProb drops each reply independently with this probability
	// (models ICMP rate limiting noise and loss; default 0). Set it
	// before probing begins.
	LossProb float64

	// clockBase is advanced by AdvanceClock (atomic); every session adds
	// it to its own tick counter.
	clockBase uint64

	sessMu   sync.RWMutex
	sessions map[PathKey]*Session

	// Stats, updated atomically across all sessions.
	ProbesSeen  uint64
	RepliesSent uint64
	Dropped     uint64
}

// NewNetwork creates an empty simulated network with the given seed.
func NewNetwork(seed uint64) *Network {
	return &Network{
		seed:     seed,
		rng:      nprand.New(seed),
		ifaces:   make(map[packet.Addr]*Iface),
		paths:    make(map[PathKey]*Path),
		sessions: make(map[PathKey]*Session),
	}
}

// Clock returns the simulated tick count: one tick per handled probe plus
// any AdvanceClock ticks.
func (n *Network) Clock() uint64 {
	return atomic.LoadUint64(&n.clockBase) + atomic.LoadUint64(&n.ProbesSeen)
}

// AdvanceClock pushes simulated time forward without traffic: router
// token buckets refill and background IP ID velocity accrues, in every
// trace session. It is the network-wide knob (route-change scheduling,
// single-trace pacing scenarios); advancing it while other traces probe
// concurrently makes their replies depend on the interleaving, so
// parallel pacing should use Session.AdvanceClock instead.
func (n *Network) AdvanceClock(ticks uint64) { atomic.AddUint64(&n.clockBase, ticks) }

// NewRouter allocates a router with sane defaults: shared IP ID counter,
// modest background velocity, Cisco-like fingerprint, echo-responsive.
// The counter starts at a random phase, as real counters do: without
// random phases, independent routers' counters would run in near-lockstep
// and the Monotonic Bounds Test would see false aliases everywhere.
func (n *Network) NewRouter() *Router {
	r := &Router{
		ID:                 len(n.routers),
		IPID:               IPIDShared,
		Velocity:           0.2,
		InitialTTLExceeded: 255,
		InitialTTLEcho:     255,
		RespondsToEcho:     true,
		sharedCtr:          uint16(n.rng.Uint64()),
	}
	n.routers = append(n.routers, r)
	return r
}

// Routers returns all routers in creation order.
func (n *Network) Routers() []*Router { return n.routers }

// AddIface assigns addr to router r. It panics if the address is taken.
func (n *Network) AddIface(r *Router, addr packet.Addr) *Iface {
	if addr == 0 {
		panic("fakeroute: zero interface address")
	}
	if _, dup := n.ifaces[addr]; dup {
		panic(fmt.Sprintf("fakeroute: duplicate interface %s", addr))
	}
	ifc := &Iface{Addr: addr, Router: r, ctr: uint16(n.rng.Uint64())}
	n.ifaces[addr] = ifc
	r.interfaces = append(r.interfaces, addr)
	return ifc
}

// Iface returns the interface with the given address, or nil.
func (n *Network) Iface(addr packet.Addr) *Iface { return n.ifaces[addr] }

// RouterOf returns the router owning addr, or nil.
func (n *Network) RouterOf(addr packet.Addr) *Router {
	if ifc := n.ifaces[addr]; ifc != nil {
		return ifc.Router
	}
	return nil
}

// AddPath registers the ground-truth topology for (src, dst). Every
// non-destination vertex address must already be an interface; the helper
// EnsureIfaces can create one router per address first. The final hop must
// contain exactly one vertex whose address equals dst.
func (n *Network) AddPath(src, dst packet.Addr, g *topo.Graph) *Path {
	if g.NumHops() == 0 {
		panic("fakeroute: empty path graph")
	}
	last := g.Hop(g.NumHops() - 1)
	if len(last) != 1 || g.V(last[0]).Addr != dst {
		panic("fakeroute: path must end at a single destination vertex")
	}
	for i := range g.Vertices {
		v := &g.Vertices[i]
		if v.Addr == topo.StarAddr || v.Addr == dst {
			continue
		}
		if n.ifaces[v.Addr] == nil {
			panic(fmt.Sprintf("fakeroute: vertex %s has no interface; call EnsureIfaces", v.Addr))
		}
	}
	p := &Path{Key: PathKey{Src: src, Dst: dst}, Graph: g, LB: map[topo.VertexID]LBMode{}}
	n.paths[p.Key] = p
	return p
}

// EnsureIfaces creates, for every non-star non-destination address in g
// that has no interface yet, a fresh router owning just that address. This
// is the "every IP is its own router" default; alias-resolution scenarios
// group addresses onto routers explicitly instead.
func (n *Network) EnsureIfaces(g *topo.Graph, dst packet.Addr) {
	for i := range g.Vertices {
		a := g.Vertices[i].Addr
		if a == topo.StarAddr || a == dst || n.ifaces[a] != nil {
			continue
		}
		n.AddIface(n.NewRouter(), a)
	}
}

// Path returns the registered path for (src, dst), or nil.
func (n *Network) Path(src, dst packet.Addr) *Path { return n.paths[PathKey{src, dst}] }

// Paths returns all registered paths.
func (n *Network) Paths() []*Path {
	out := make([]*Path, 0, len(n.paths))
	for _, p := range n.paths {
		out = append(out, p)
	}
	return out
}

// Session holds the per-trace mutable state of the network: a
// deterministic random stream, a tick counter, and this trace's view of
// every router's IP ID counters and rate-limit token buckets. Sessions
// are keyed by (source, destination); the stream is derived purely from
// the network seed and the key, so a trace's replies depend only on its
// own probe sequence — never on how traces of other pairs interleave.
// That property is what makes a parallel survey run byte-identical to a
// serial one.
//
// A Session serializes its own probe handling with a mutex, so it is safe
// (though pointless) for two goroutines to share one.
type Session struct {
	net *Network
	key PathKey

	mu      sync.Mutex
	rng     *nprand.Source
	clock   uint64
	routers map[*Router]*ctrView
	ifaces  map[*Iface]*ctrView
	buckets map[*Router]*bucket
}

// ctrView is a session's view of one IP ID counter.
type ctrView struct {
	ctr  uint16
	last uint64 // tick of the last sample
}

// bucket is a session's view of one router's rate-limit token bucket.
type bucket struct {
	tokens float64
	tick   uint64
}

// SessionFor returns the per-trace session for (src, dst), creating it on
// first use. Repeated calls return the same session, so repeated traces
// of one pair see counters and clocks carry over, as they would against a
// real network.
func (n *Network) SessionFor(src, dst packet.Addr) *Session {
	key := PathKey{Src: src, Dst: dst}
	n.sessMu.RLock()
	s := n.sessions[key]
	n.sessMu.RUnlock()
	if s != nil {
		return s
	}
	n.sessMu.Lock()
	defer n.sessMu.Unlock()
	if s := n.sessions[key]; s != nil {
		return s
	}
	s = &Session{
		net:     n,
		key:     key,
		rng:     nprand.New(n.seed ^ nprand.FlowHash(uint64(src), uint64(dst))),
		routers: make(map[*Router]*ctrView),
		ifaces:  make(map[*Iface]*ctrView),
		buckets: make(map[*Router]*bucket),
	}
	n.sessions[key] = s
	return s
}

// HandleProbe accepts one serialized probe packet and dispatches it to
// the session of the packet's (source, destination) pair. Probers that
// interleave traceroute and direct echo probes of one trace should hold a
// Session from SessionFor and call its HandleProbe instead, so that both
// probe families sample the same counter views (the Monotonic Bounds Test
// depends on that).
func (n *Network) HandleProbe(raw []byte) []byte {
	var src, dst packet.Addr
	if len(raw) >= packet.IPv4HeaderLen {
		src = packet.Addr(uint32(raw[12])<<24 | uint32(raw[13])<<16 | uint32(raw[14])<<8 | uint32(raw[15]))
		dst = packet.Addr(uint32(raw[16])<<24 | uint32(raw[17])<<16 | uint32(raw[18])<<8 | uint32(raw[19]))
	}
	return n.SessionFor(src, dst).HandleProbe(raw)
}

// AdvanceClock pushes this trace's virtual time forward without traffic:
// the per-trace counterpart of Network.AdvanceClock. Token buckets and
// IP ID velocity observed by this session accrue the ticks; other
// sessions are untouched, so pacing one trace stays deterministic while
// other traces probe in parallel.
func (s *Session) AdvanceClock(ticks uint64) {
	s.mu.Lock()
	s.clock += ticks
	s.mu.Unlock()
}

// nextVertex applies the load balancing policy of vertex v for the probe,
// over the topology g in force at this tick.
func (s *Session) nextVertex(p *Path, g *topo.Graph, v topo.VertexID, pp *packet.ParsedProbe) topo.VertexID {
	succ := g.Succ(v)
	switch len(succ) {
	case 0:
		return topo.None
	case 1:
		return succ[0]
	}
	mode := p.LB[v]
	var idx int
	if w := p.WeightedEdges[v]; w != nil {
		// Weighted dispatch: hash the flow into [0,1) deterministically
		// and walk the cumulative weights, so one flow still sticks to
		// one successor.
		var x float64
		switch mode {
		case LBPerPacket:
			x = s.rng.Float64()
		case LBPerDestination:
			x = float64(nprand.FlowHash(vertexKey(p, g, v), uint64(pp.IP.Dst))>>11) / (1 << 53)
		default:
			x = float64(nprand.FlowHash(vertexKey(p, g, v), pp.FlowKey())>>11) / (1 << 53)
		}
		var total float64
		for _, wi := range w {
			total += wi
		}
		x *= total
		for i, wi := range w {
			x -= wi
			if x < 0 {
				idx = i
				break
			}
			idx = i
		}
		return succ[idx]
	}
	switch mode {
	case LBPerPacket:
		idx = s.rng.Intn(len(succ))
	case LBPerDestination:
		idx = int(nprand.FlowHash(vertexKey(p, g, v), uint64(pp.IP.Dst)) % uint64(len(succ)))
	default:
		idx = int(nprand.FlowHash(vertexKey(p, g, v), pp.FlowKey()) % uint64(len(succ)))
	}
	return succ[idx]
}

// vertexKey is the stable per-load-balancer hash key. Star vertices have
// no address, so their hop and path key disambiguate them.
func vertexKey(p *Path, g *topo.Graph, v topo.VertexID) uint64 {
	a := g.V(v).Addr
	if a != topo.StarAddr {
		return uint64(a)
	}
	return uint64(p.Key.Src)<<32 ^ uint64(p.Key.Dst) ^ uint64(v)<<8 ^ 0xdead
}

// HandleProbe accepts one serialized probe packet and returns the
// serialized reply, or nil if the probe is dropped (loss, rate limiting,
// star hop, or no reply per the topology).
func (s *Session) HandleProbe(raw []byte) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.net
	s.clock++
	now := atomic.LoadUint64(&n.clockBase) + s.clock
	atomic.AddUint64(&n.ProbesSeen, 1)

	// Echo (direct) probes are dispatched to the target interface.
	var outerProto byte
	if len(raw) >= 10 {
		outerProto = raw[9]
	}
	if outerProto == packet.ProtoICMP {
		return s.handleEcho(raw, now)
	}

	pp, err := packet.ParseProbe(raw)
	if err != nil {
		atomic.AddUint64(&n.Dropped, 1)
		return nil
	}
	p := n.paths[PathKey{Src: pp.IP.Src, Dst: pp.IP.Dst}]
	if p == nil {
		atomic.AddUint64(&n.Dropped, 1)
		return nil
	}
	g := p.activeGraph(now)
	dstHop := g.NumHops() - 1
	cur := g.Hop(0)[0]
	hop := 0
	ttl := int(pp.IP.TTL)
	// The probe is forwarded until its TTL expires or it reaches the
	// destination host. hop h is reached after h+1 TTL decrements.
	for ttl > 1 && hop < dstHop {
		next := s.nextVertex(p, g, cur, pp)
		if next == topo.None {
			break // dead end: silent drop (routing hole)
		}
		cur = next
		hop++
		ttl--
	}
	v := g.V(cur)
	atDst := hop == dstHop
	if v.Addr == topo.StarAddr {
		atomic.AddUint64(&n.Dropped, 1)
		return nil // star: the hop never answers
	}
	if n.LossProb > 0 && s.rng.Float64() < n.LossProb {
		atomic.AddUint64(&n.Dropped, 1)
		return nil
	}
	if atDst {
		return s.craftPortUnreachable(pp, v.Addr, hop, now)
	}
	ifc := n.ifaces[v.Addr]
	if ifc == nil {
		atomic.AddUint64(&n.Dropped, 1)
		return nil
	}
	if !s.allowReply(ifc.Router, now) {
		atomic.AddUint64(&n.Dropped, 1)
		return nil
	}
	return s.craftTimeExceeded(pp, ifc, hop, raw, now)
}

// craftTimeExceeded builds the ICMP Time Exceeded reply from ifc at
// forward distance hop (0-based).
func (s *Session) craftTimeExceeded(pp *packet.ParsedProbe, ifc *Iface, hop int, probeRaw []byte, now uint64) []byte {
	r := ifc.Router
	icmp := packet.ICMP{
		Type:    packet.ICMPTypeTimeExceeded,
		Code:    packet.ICMPCodeTTLExceeded,
		Payload: quoteProbe(probeRaw),
	}
	if label := ifc.effectiveLabel(now); label != 0 {
		icmp.Extensions = packet.EncodeMPLSExtension([]packet.MPLSLabelStackEntry{
			{Label: label, S: true, TTL: 1},
		})
	}
	body := icmp.SerializeTo(nil)
	replyTTL := int(r.InitialTTLExceeded) - (hop + 1)
	if replyTTL < 1 {
		replyTTL = 1
	}
	ip := packet.IPv4{
		ID:       s.nextIPID(ifc, true, pp.IP.ID, now),
		TTL:      byte(replyTTL),
		Protocol: packet.ProtoICMP,
		Src:      ifc.Addr,
		Dst:      pp.IP.Src,
	}
	buf := make([]byte, 0, packet.IPv4HeaderLen+len(body))
	buf = ip.SerializeTo(buf, len(body))
	atomic.AddUint64(&s.net.RepliesSent, 1)
	return append(buf, body...)
}

// craftPortUnreachable builds the destination's ICMP Port Unreachable.
func (s *Session) craftPortUnreachable(pp *packet.ParsedProbe, dst packet.Addr, hop int, now uint64) []byte {
	// Re-serialize the quoted probe from its parsed form: the host quotes
	// the datagram as received, with the TTL it saw on arrival.
	quoted := packet.Probe{
		Src: pp.IP.Src, Dst: pp.IP.Dst,
		FlowID: pp.FlowID, TTL: 1, Checksum: pp.Identity,
	}
	icmp := packet.ICMP{
		Type:    packet.ICMPTypeDestUnreachable,
		Code:    packet.ICMPCodePortUnreachable,
		Payload: quoteProbe(quoted.Serialize()),
	}
	body := icmp.SerializeTo(nil)
	replyTTL := 64 - (hop + 1)
	if replyTTL < 1 {
		replyTTL = 1
	}
	// Destination hosts typically have a normal host IP stack: shared,
	// fast-moving ID counter. Model with a per-destination hash-derived
	// stride so repeated traces stay plausible.
	id := uint16(nprand.FlowHash(uint64(dst), now))
	ip := packet.IPv4{
		ID:       id,
		TTL:      byte(replyTTL),
		Protocol: packet.ProtoICMP,
		Src:      dst,
		Dst:      pp.IP.Src,
	}
	buf := make([]byte, 0, packet.IPv4HeaderLen+len(body))
	buf = ip.SerializeTo(buf, len(body))
	atomic.AddUint64(&s.net.RepliesSent, 1)
	return append(buf, body...)
}

// handleEcho answers a direct ICMP Echo probe.
func (s *Session) handleEcho(raw []byte, now uint64) []byte {
	n := s.net
	var outer packet.IPv4
	body, err := outer.DecodeFromBytes(raw)
	if err != nil {
		atomic.AddUint64(&n.Dropped, 1)
		return nil
	}
	var echo packet.ICMP
	if err := echo.DecodeFromBytes(body); err != nil || echo.Type != packet.ICMPTypeEcho {
		atomic.AddUint64(&n.Dropped, 1)
		return nil
	}
	ifc := n.ifaces[outer.Dst]
	if ifc == nil {
		atomic.AddUint64(&n.Dropped, 1)
		return nil
	}
	r := ifc.Router
	if !r.RespondsToEcho {
		atomic.AddUint64(&n.Dropped, 1)
		return nil
	}
	if !s.allowReply(r, now) {
		atomic.AddUint64(&n.Dropped, 1)
		return nil
	}
	if n.LossProb > 0 && s.rng.Float64() < n.LossProb {
		atomic.AddUint64(&n.Dropped, 1)
		return nil
	}
	reply := packet.ICMP{Type: packet.ICMPTypeEchoReply, ID: echo.ID, Seq: echo.Seq, Payload: echo.Payload}
	rbody := reply.SerializeTo(nil)
	ip := packet.IPv4{
		ID:       s.nextIPID(ifc, false, outer.ID, now),
		TTL:      r.InitialTTLEcho - 4, // nominal return distance
		Protocol: packet.ProtoICMP,
		Src:      outer.Dst,
		Dst:      outer.Src,
	}
	buf := make([]byte, 0, packet.IPv4HeaderLen+len(rbody))
	buf = ip.SerializeTo(buf, len(rbody))
	atomic.AddUint64(&n.RepliesSent, 1)
	return append(buf, rbody...)
}

// quoteProbe returns the portion of the probe a router quotes in an ICMP
// error: the full IP header plus at least 8 bytes of payload (our probes
// are small, so we quote them whole).
func quoteProbe(raw []byte) []byte {
	q := make([]byte, len(raw))
	copy(q, raw)
	return q
}
