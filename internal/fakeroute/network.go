package fakeroute

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mmlpt/internal/nprand"
	"mmlpt/internal/packet"
	"mmlpt/internal/topo"
)

// LBMode selects a load balancer's dispatch policy.
type LBMode int

const (
	// LBPerFlow hashes the probe's 5-tuple: the common case the Paris
	// technique and the MDA are built for.
	LBPerFlow LBMode = iota
	// LBPerPacket dispatches uniformly at random per packet, violating
	// MDA assumption (2). Rare in the wild (Augustin et al. 2011); used
	// for failure-injection tests.
	LBPerPacket
	// LBPerDestination hashes only the destination address, so all probe
	// flows to one destination follow a single path.
	LBPerDestination
)

// PathKey identifies a ground-truth path.
type PathKey struct {
	Src, Dst packet.Addr
}

// Path is the ground-truth topology for one (source, destination) pair.
// Hop 0 of the graph holds the single first-hop vertex; the last hop holds
// a vertex whose address is the destination.
type Path struct {
	Key   PathKey
	Graph *topo.Graph
	// LB maps a vertex to its dispatch policy; vertices absent from the
	// map use LBPerFlow.
	LB map[topo.VertexID]LBMode
	// WeightedEdges optionally assigns non-uniform dispatch weights to a
	// vertex's successor edges (violating MDA assumption (3)). Keyed by
	// vertex; the slice is index-aligned with the vertex's successors.
	WeightedEdges map[topo.VertexID][]float64
	// Alt, when non-nil, replaces Graph once the trace clock reaches
	// AltAt: a routing change mid-measurement, violating MDA assumption
	// (1). The alternate graph's interfaces must be registered.
	Alt   *topo.Graph
	AltAt uint64

	// Lazily-built dense forwarding tables, one per graph generation
	// (see compiled.go). Compilation happens at first probe, after all
	// LB/WeightedEdges/Alt configuration is done (the construction-
	// before-probing contract).
	compileMu    sync.Mutex
	compiledMain atomic.Pointer[compiledPath]
	compiledAlt  atomic.Pointer[compiledPath]
}

// activeGraph returns the topology in force at tick now.
func (p *Path) activeGraph(now uint64) *topo.Graph {
	if p.Alt != nil && now >= p.AltAt {
		return p.Alt
	}
	return p.Graph
}

// Network is the simulated internet.
//
// Construction (NewRouter, AddIface, AddPath, EnsureIfaces and the
// topology builders) is not synchronized and must complete before probing
// begins. Probing itself — HandleProbe, or Session.HandleProbe obtained
// from SessionFor — is safe for concurrent use: all per-probe mutable
// state (randomness, clocks, IP ID counters, token buckets) lives in
// per-trace Sessions, so concurrent traces of distinct pairs neither race
// nor perturb each other's deterministic streams.
type Network struct {
	seed    uint64
	rng     *nprand.Source // construction-time randomness only
	routers []*Router
	ifaces  map[packet.Addr]*Iface
	paths   map[PathKey]*Path

	// LossProb drops each reply independently with this probability
	// (models ICMP rate limiting noise and loss; default 0). Set it
	// before probing begins.
	LossProb float64

	// disableWalkMemo turns off flow-walk memoization, forcing every
	// probe through the fresh TTL-bounded walk. Test hook only: output
	// must be byte-identical either way (see TestWalkMemoByteIdentical).
	disableWalkMemo bool

	// clockBase is advanced by AdvanceClock (atomic); every session adds
	// it to its own tick counter.
	clockBase uint64

	sessMu   sync.RWMutex
	sessions map[PathKey]*Session

	// Stats, updated atomically across all sessions.
	ProbesSeen  uint64
	RepliesSent uint64
	Dropped     uint64
}

// NewNetwork creates an empty simulated network with the given seed.
func NewNetwork(seed uint64) *Network {
	return &Network{
		seed:     seed,
		rng:      nprand.New(seed),
		ifaces:   make(map[packet.Addr]*Iface),
		paths:    make(map[PathKey]*Path),
		sessions: make(map[PathKey]*Session),
	}
}

// Clock returns the simulated tick count: one tick per handled probe plus
// any AdvanceClock ticks.
func (n *Network) Clock() uint64 {
	return atomic.LoadUint64(&n.clockBase) + atomic.LoadUint64(&n.ProbesSeen)
}

// AdvanceClock pushes simulated time forward without traffic: router
// token buckets refill and background IP ID velocity accrues, in every
// trace session. It is the network-wide knob (route-change scheduling,
// single-trace pacing scenarios); advancing it while other traces probe
// concurrently makes their replies depend on the interleaving, so
// parallel pacing should use Session.AdvanceClock instead.
func (n *Network) AdvanceClock(ticks uint64) { atomic.AddUint64(&n.clockBase, ticks) }

// NewRouter allocates a router with sane defaults: shared IP ID counter,
// modest background velocity, Cisco-like fingerprint, echo-responsive.
// The counter starts at a random phase, as real counters do: without
// random phases, independent routers' counters would run in near-lockstep
// and the Monotonic Bounds Test would see false aliases everywhere.
func (n *Network) NewRouter() *Router {
	r := &Router{
		ID:                 len(n.routers),
		IPID:               IPIDShared,
		Velocity:           0.2,
		InitialTTLExceeded: 255,
		InitialTTLEcho:     255,
		RespondsToEcho:     true,
		sharedCtr:          uint16(n.rng.Uint64()),
	}
	n.routers = append(n.routers, r)
	return r
}

// Routers returns all routers in creation order.
func (n *Network) Routers() []*Router { return n.routers }

// AddIface assigns addr to router r. It panics if the address is taken.
func (n *Network) AddIface(r *Router, addr packet.Addr) *Iface {
	if addr == 0 {
		panic("fakeroute: zero interface address")
	}
	if _, dup := n.ifaces[addr]; dup {
		panic(fmt.Sprintf("fakeroute: duplicate interface %s", addr))
	}
	ifc := &Iface{Addr: addr, Router: r, ctr: uint16(n.rng.Uint64())}
	n.ifaces[addr] = ifc
	r.interfaces = append(r.interfaces, addr)
	return ifc
}

// Iface returns the interface with the given address, or nil.
func (n *Network) Iface(addr packet.Addr) *Iface { return n.ifaces[addr] }

// RouterOf returns the router owning addr, or nil.
func (n *Network) RouterOf(addr packet.Addr) *Router {
	if ifc := n.ifaces[addr]; ifc != nil {
		return ifc.Router
	}
	return nil
}

// AddPath registers the ground-truth topology for (src, dst). Every
// non-destination vertex address must already be an interface; the helper
// EnsureIfaces can create one router per address first. The final hop must
// contain exactly one vertex whose address equals dst.
func (n *Network) AddPath(src, dst packet.Addr, g *topo.Graph) *Path {
	if g.NumHops() == 0 {
		panic("fakeroute: empty path graph")
	}
	last := g.Hop(g.NumHops() - 1)
	if len(last) != 1 || g.V(last[0]).Addr != dst {
		panic("fakeroute: path must end at a single destination vertex")
	}
	for i := range g.Vertices {
		v := &g.Vertices[i]
		if v.Addr == topo.StarAddr || v.Addr == dst {
			continue
		}
		if n.ifaces[v.Addr] == nil {
			panic(fmt.Sprintf("fakeroute: vertex %s has no interface; call EnsureIfaces", v.Addr))
		}
	}
	p := &Path{Key: PathKey{Src: src, Dst: dst}, Graph: g, LB: map[topo.VertexID]LBMode{}}
	n.paths[p.Key] = p
	return p
}

// EnsureIfaces creates, for every non-star non-destination address in g
// that has no interface yet, a fresh router owning just that address. This
// is the "every IP is its own router" default; alias-resolution scenarios
// group addresses onto routers explicitly instead.
func (n *Network) EnsureIfaces(g *topo.Graph, dst packet.Addr) {
	for i := range g.Vertices {
		a := g.Vertices[i].Addr
		if a == topo.StarAddr || a == dst || n.ifaces[a] != nil {
			continue
		}
		n.AddIface(n.NewRouter(), a)
	}
}

// Path returns the registered path for (src, dst), or nil.
func (n *Network) Path(src, dst packet.Addr) *Path { return n.paths[PathKey{src, dst}] }

// Paths returns all registered paths.
func (n *Network) Paths() []*Path {
	out := make([]*Path, 0, len(n.paths))
	for _, p := range n.paths {
		out = append(out, p)
	}
	return out
}

// Session holds the per-trace mutable state of the network: a
// deterministic random stream, a tick counter, and this trace's view of
// every router's IP ID counters and rate-limit token buckets. Sessions
// are keyed by (source, destination); the stream is derived purely from
// the network seed and the key, so a trace's replies depend only on its
// own probe sequence — never on how traces of other pairs interleave.
// That property is what makes a parallel survey run byte-identical to a
// serial one.
//
// A Session serializes its own probe handling with a mutex, but the
// reply slice HandleProbe returns is session-owned scratch, valid only
// until the session's next HandleProbe call — goroutines sharing one
// session must therefore coordinate so each caller copies or parses its
// reply before the next probe is handled (a single SimProber does this
// by serializing the whole exchange).
type Session struct {
	net *Network
	key PathKey

	mu      sync.Mutex
	rng     *nprand.Source
	clock   uint64
	routers map[*Router]*ctrView
	ifaces  map[*Iface]*ctrView
	buckets map[*Router]*bucket

	// Memoized flow walks over compiled graph generations (compiled.go).
	walks map[walkKey][]topo.VertexID

	// Reusable scratch for the zero-allocation probe hot path: the
	// parsed probe, the quoted-datagram copy, the ICMP body, and the
	// outgoing reply. All are used only under mu; outBuf backs the slice
	// HandleProbe returns.
	pp       packet.ParsedProbe
	quoteBuf []byte
	bodyBuf  []byte
	outBuf   []byte
}

// ctrView is a session's view of one IP ID counter.
type ctrView struct {
	ctr  uint16
	last uint64 // tick of the last sample
}

// bucket is a session's view of one router's rate-limit token bucket.
type bucket struct {
	tokens float64
	tick   uint64
}

// SessionFor returns the per-trace session for (src, dst), creating it on
// first use. Repeated calls return the same session, so repeated traces
// of one pair see counters and clocks carry over, as they would against a
// real network.
func (n *Network) SessionFor(src, dst packet.Addr) *Session {
	key := PathKey{Src: src, Dst: dst}
	n.sessMu.RLock()
	s := n.sessions[key]
	n.sessMu.RUnlock()
	if s != nil {
		return s
	}
	n.sessMu.Lock()
	defer n.sessMu.Unlock()
	if s := n.sessions[key]; s != nil {
		return s
	}
	s = &Session{
		net:     n,
		key:     key,
		rng:     nprand.New(n.seed ^ nprand.FlowHash(uint64(src), uint64(dst))),
		routers: make(map[*Router]*ctrView),
		ifaces:  make(map[*Iface]*ctrView),
		buckets: make(map[*Router]*bucket),
	}
	n.sessions[key] = s
	return s
}

// HandleProbe accepts one serialized probe packet and dispatches it to
// the session of the packet's (source, destination) pair. Probers that
// interleave traceroute and direct echo probes of one trace should hold a
// Session from SessionFor and call its HandleProbe instead, so that both
// probe families sample the same counter views (the Monotonic Bounds Test
// depends on that).
//
// The returned reply slice is owned by that session and valid only until
// the session's next HandleProbe call; callers that retain reply bytes
// must copy them.
//
// A packet too short to carry an IPv4 header is dropped here, before the
// session lookup: it has no addresses, so routing it to the zero-pair
// session would materialize a spurious (0.0.0.0, 0.0.0.0) session.
func (n *Network) HandleProbe(raw []byte) []byte {
	if len(raw) < packet.IPv4HeaderLen {
		atomic.AddUint64(&n.ProbesSeen, 1)
		atomic.AddUint64(&n.Dropped, 1)
		return nil
	}
	src := packet.Addr(uint32(raw[12])<<24 | uint32(raw[13])<<16 | uint32(raw[14])<<8 | uint32(raw[15]))
	dst := packet.Addr(uint32(raw[16])<<24 | uint32(raw[17])<<16 | uint32(raw[18])<<8 | uint32(raw[19]))
	return n.SessionFor(src, dst).HandleProbe(raw)
}

// AdvanceClock pushes this trace's virtual time forward without traffic:
// the per-trace counterpart of Network.AdvanceClock. Token buckets and
// IP ID velocity observed by this session accrue the ticks; other
// sessions are untouched, so pacing one trace stays deterministic while
// other traces probe in parallel.
func (s *Session) AdvanceClock(ticks uint64) {
	s.mu.Lock()
	s.clock += ticks
	s.mu.Unlock()
}

// vertexKey is the stable per-load-balancer hash key. Star vertices have
// no address, so their hop and path key disambiguate them.
func vertexKey(p *Path, g *topo.Graph, v topo.VertexID) uint64 {
	a := g.V(v).Addr
	if a != topo.StarAddr {
		return uint64(a)
	}
	return uint64(p.Key.Src)<<32 ^ uint64(p.Key.Dst) ^ uint64(v)<<8 ^ 0xdead
}

// HandleProbe accepts one serialized probe packet and returns the
// serialized reply, or nil if the probe is dropped (loss, rate limiting,
// star hop, or no reply per the topology).
//
// The returned slice is owned by the session and valid only until the
// session's next HandleProbe call: the reply is crafted into a reusable
// scratch buffer so the steady-state round trip allocates nothing.
// Callers that retain reply bytes must copy them (the usual caller,
// packet.ParseReplyInto, retains nothing).
func (s *Session) HandleProbe(raw []byte) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.net
	s.clock++
	now := atomic.LoadUint64(&n.clockBase) + s.clock
	atomic.AddUint64(&n.ProbesSeen, 1)

	// Echo (direct) probes are dispatched to the target interface.
	var outerProto byte
	if len(raw) >= 10 {
		outerProto = raw[9]
	}
	if outerProto == packet.ProtoICMP {
		return s.handleEcho(raw, now)
	}

	if err := packet.ParseProbeInto(&s.pp, raw); err != nil {
		atomic.AddUint64(&n.Dropped, 1)
		return nil
	}
	pp := &s.pp
	p := n.paths[PathKey{Src: pp.IP.Src, Dst: pp.IP.Dst}]
	if p == nil {
		atomic.AddUint64(&n.Dropped, 1)
		return nil
	}
	g := p.activeGraph(now)
	cp := n.compiledFor(p, g)
	flowKey := pp.FlowKey()

	// The probe is forwarded until its TTL expires or it reaches the
	// destination host. hop h is reached after h+1 TTL decrements. When
	// the walk is a pure function of the flow (cp.memoizable) and loss
	// cannot consume an RNG draw, replay the memoized walk by TTL;
	// otherwise walk fresh, drawing randomness exactly where the original
	// per-probe loop would.
	var cur topo.VertexID
	var hop int
	if cp.memoizable && !n.disableWalkMemo && n.LossProb == 0 {
		seq := s.walkFor(cp, pp, flowKey)
		hop = int(pp.IP.TTL) - 1
		if hop > len(seq)-1 {
			hop = len(seq) - 1
		}
		if hop < 0 {
			hop = 0
		}
		cur = seq[hop]
	} else {
		cur = cp.entry
		ttl := int(pp.IP.TTL)
		for ttl > 1 && hop < cp.dstHop {
			next := s.nextVertex(cp, cur, pp, flowKey)
			if next == topo.None {
				break // dead end: silent drop (routing hole)
			}
			cur = next
			hop++
			ttl--
		}
	}
	atDst := hop == cp.dstHop
	if cp.addr[cur] == topo.StarAddr {
		atomic.AddUint64(&n.Dropped, 1)
		return nil // star: the hop never answers
	}
	if n.LossProb > 0 && s.rng.Float64() < n.LossProb {
		atomic.AddUint64(&n.Dropped, 1)
		return nil
	}
	if atDst {
		return s.craftPortUnreachable(pp, cp.addr[cur], hop, now)
	}
	ifc := cp.iface[cur]
	if ifc == nil {
		atomic.AddUint64(&n.Dropped, 1)
		return nil
	}
	if !s.allowReply(ifc.Router, now) {
		atomic.AddUint64(&n.Dropped, 1)
		return nil
	}
	return s.craftTimeExceeded(pp, ifc, hop, raw, now)
}

// craftTimeExceeded builds the ICMP Time Exceeded reply from ifc at
// forward distance hop (0-based), into the session's scratch buffers.
func (s *Session) craftTimeExceeded(pp *packet.ParsedProbe, ifc *Iface, hop int, probeRaw []byte, now uint64) []byte {
	r := ifc.Router
	// The router quotes the probe datagram as received: the full IP
	// header plus payload (our probes are small, so the quote is whole).
	// probeRaw is referenced directly — ICMP.SerializeTo copies the
	// payload into the body buffer, and the caller's probe bytes stay
	// untouched for the whole call.
	icmp := packet.ICMP{
		Type:    packet.ICMPTypeTimeExceeded,
		Code:    packet.ICMPCodeTTLExceeded,
		Payload: probeRaw,
	}
	if label := ifc.effectiveLabel(now); label != 0 {
		icmp.Extensions = packet.EncodeMPLSExtension([]packet.MPLSLabelStackEntry{
			{Label: label, S: true, TTL: 1},
		})
	}
	replyTTL := int(r.InitialTTLExceeded) - (hop + 1)
	if replyTTL < 1 {
		replyTTL = 1
	}
	ip := packet.IPv4{
		ID:       s.nextIPID(ifc, true, pp.IP.ID, now),
		TTL:      byte(replyTTL),
		Protocol: packet.ProtoICMP,
		Src:      ifc.Addr,
		Dst:      pp.IP.Src,
	}
	return s.emitReply(&ip, &icmp)
}

// craftPortUnreachable builds the destination's ICMP Port Unreachable.
func (s *Session) craftPortUnreachable(pp *packet.ParsedProbe, dst packet.Addr, hop int, now uint64) []byte {
	// Re-serialize the quoted probe from its parsed form: the host quotes
	// the datagram as received, with the TTL it saw on arrival.
	quoted := packet.Probe{
		Src: pp.IP.Src, Dst: pp.IP.Dst,
		FlowID: pp.FlowID, TTL: 1, Checksum: pp.Identity,
	}
	s.quoteBuf = quoted.AppendTo(s.quoteBuf[:0])
	icmp := packet.ICMP{
		Type:    packet.ICMPTypeDestUnreachable,
		Code:    packet.ICMPCodePortUnreachable,
		Payload: s.quoteBuf,
	}
	replyTTL := 64 - (hop + 1)
	if replyTTL < 1 {
		replyTTL = 1
	}
	// Destination hosts typically have a normal host IP stack: shared,
	// fast-moving ID counter. Model with a per-destination hash-derived
	// stride so repeated traces stay plausible.
	id := uint16(nprand.FlowHash(uint64(dst), now))
	ip := packet.IPv4{
		ID:       id,
		TTL:      byte(replyTTL),
		Protocol: packet.ProtoICMP,
		Src:      dst,
		Dst:      pp.IP.Src,
	}
	return s.emitReply(&ip, &icmp)
}

// emitReply serializes outer IP + ICMP body into the session's scratch
// reply buffer and returns it. The result aliases s.outBuf: valid until
// the session's next HandleProbe.
func (s *Session) emitReply(ip *packet.IPv4, icmp *packet.ICMP) []byte {
	s.bodyBuf = icmp.SerializeTo(s.bodyBuf[:0])
	out := ip.SerializeTo(s.outBuf[:0], len(s.bodyBuf))
	out = append(out, s.bodyBuf...)
	s.outBuf = out
	atomic.AddUint64(&s.net.RepliesSent, 1)
	return out
}

// handleEcho answers a direct ICMP Echo probe.
func (s *Session) handleEcho(raw []byte, now uint64) []byte {
	n := s.net
	var outer packet.IPv4
	body, err := outer.DecodeFromBytes(raw)
	if err != nil {
		atomic.AddUint64(&n.Dropped, 1)
		return nil
	}
	var echo packet.ICMP
	if err := echo.DecodeFromBytes(body); err != nil || echo.Type != packet.ICMPTypeEcho {
		atomic.AddUint64(&n.Dropped, 1)
		return nil
	}
	ifc := n.ifaces[outer.Dst]
	if ifc == nil {
		atomic.AddUint64(&n.Dropped, 1)
		return nil
	}
	r := ifc.Router
	if !r.RespondsToEcho {
		atomic.AddUint64(&n.Dropped, 1)
		return nil
	}
	if !s.allowReply(r, now) {
		atomic.AddUint64(&n.Dropped, 1)
		return nil
	}
	if n.LossProb > 0 && s.rng.Float64() < n.LossProb {
		atomic.AddUint64(&n.Dropped, 1)
		return nil
	}
	reply := packet.ICMP{Type: packet.ICMPTypeEchoReply, ID: echo.ID, Seq: echo.Seq, Payload: echo.Payload}
	ip := packet.IPv4{
		ID:       s.nextIPID(ifc, false, outer.ID, now),
		TTL:      r.InitialTTLEcho - 4, // nominal return distance
		Protocol: packet.ProtoICMP,
		Src:      outer.Dst,
		Dst:      outer.Src,
	}
	return s.emitReply(&ip, &reply)
}
