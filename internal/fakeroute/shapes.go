package fakeroute

import (
	"fmt"

	"mmlpt/internal/packet"
	"mmlpt/internal/topo"
)

// Topology builders for the canonical shapes used throughout the paper's
// evaluation (Sec 2.4.1) and by the test suite. All builders produce
// hop-aligned ground-truth graphs ready for Network.AddPath.

// AddrAllocator hands out sequential IPv4 addresses from a base.
type AddrAllocator struct {
	next uint32
	base uint32
}

// NewAddrAllocator starts allocation at base.
func NewAddrAllocator(base packet.Addr) *AddrAllocator {
	return &AddrAllocator{next: uint32(base), base: uint32(base)}
}

// Next returns a fresh address.
func (a *AddrAllocator) Next() packet.Addr {
	addr := packet.Addr(a.next)
	a.next++
	if a.next == 0 {
		panic("fakeroute: address space exhausted")
	}
	return addr
}

// Allocated reports how many addresses have been handed out — the node
// population of everything generated from this allocator, which is what
// scale benchmarks size their builds by.
func (a *AddrAllocator) Allocated() int {
	return int(a.next - a.base)
}

// PathBuilder assembles a hop-aligned path graph.
type PathBuilder struct {
	g     *topo.Graph
	alloc *AddrAllocator
	cur   []topo.VertexID // vertices at the last built hop
	hop   int
}

// NewPathBuilder starts a path whose hop 0 is a single fresh vertex.
func NewPathBuilder(alloc *AddrAllocator) *PathBuilder {
	b := &PathBuilder{g: topo.New(), alloc: alloc}
	v := b.g.AddVertex(0, alloc.Next())
	b.cur = []topo.VertexID{v}
	return b
}

// Graph returns the graph built so far.
func (b *PathBuilder) Graph() *topo.Graph { return b.g }

// Current returns the vertex IDs at the newest hop.
func (b *PathBuilder) Current() []topo.VertexID { return b.cur }

// Spread appends a hop where every current vertex gets k fresh successors
// (widening by a factor k, unmeshed, uniform).
func (b *PathBuilder) Spread(k int) *PathBuilder {
	b.hop++
	next := make([]topo.VertexID, 0, len(b.cur)*k)
	for _, u := range b.cur {
		for i := 0; i < k; i++ {
			w := b.g.AddVertex(b.hop, b.alloc.Next())
			b.g.AddEdge(u, w)
			next = append(next, w)
		}
	}
	b.cur = next
	return b
}

// Converge appends a hop with m fresh vertices; current vertices are
// assigned to them contiguously and evenly (out-degree 1 everywhere:
// unmeshed). If len(cur) is not a multiple of m the split is as even as
// possible, which introduces width asymmetry — callers wanting uniformity
// must keep the division exact.
func (b *PathBuilder) Converge(m int) *PathBuilder {
	if m <= 0 || m > len(b.cur) {
		panic("fakeroute: bad convergence width")
	}
	b.hop++
	next := make([]topo.VertexID, m)
	for i := range next {
		next[i] = b.g.AddVertex(b.hop, b.alloc.Next())
	}
	for i, u := range b.cur {
		w := next[i*m/len(b.cur)]
		b.g.AddEdge(u, w)
	}
	b.cur = next
	return b
}

// Full appends a hop with w fresh vertices fully connected to every
// current vertex (maximal meshing).
func (b *PathBuilder) Full(w int) *PathBuilder {
	b.hop++
	next := make([]topo.VertexID, w)
	for i := range next {
		next[i] = b.g.AddVertex(b.hop, b.alloc.Next())
	}
	for _, u := range b.cur {
		for _, v := range next {
			b.g.AddEdge(u, v)
		}
	}
	b.cur = next
	return b
}

// CrossLink appends a hop of the same width connected one-to-one, then
// adds k extra "cross" edges (vertex i also feeds successor i+1): sparse
// meshing where only k vertices have out-degree 2, giving the MDA-Lite's
// meshing test an Eq. (1) miss probability of 2^-k at phi=2 — the
// hard-to-detect population visible in the paper's Fig 2.
func (b *PathBuilder) CrossLink(k int) *PathBuilder {
	prev := append([]topo.VertexID(nil), b.cur...)
	b.Converge(len(prev))
	if k > len(prev) {
		k = len(prev)
	}
	for i := 0; i < k; i++ {
		b.g.AddEdge(prev[i], b.cur[(i+1)%len(b.cur)])
	}
	return b
}

// SpreadUneven appends a hop where current vertex i gets counts[i] fresh
// successors: the direct way to build width-asymmetric (non-uniform)
// hops.
func (b *PathBuilder) SpreadUneven(counts []int) *PathBuilder {
	if len(counts) != len(b.cur) {
		panic("fakeroute: counts must match current width")
	}
	b.hop++
	var next []topo.VertexID
	for i, u := range b.cur {
		for j := 0; j < counts[i]; j++ {
			w := b.g.AddVertex(b.hop, b.alloc.Next())
			b.g.AddEdge(u, w)
			next = append(next, w)
		}
	}
	b.cur = next
	return b
}

// Chain appends n single-vertex hops (plain routed path).
func (b *PathBuilder) Chain(n int) *PathBuilder {
	for i := 0; i < n; i++ {
		b.Converge(1)
	}
	return b
}

// Star appends a single non-responsive hop.
func (b *PathBuilder) Star() *PathBuilder {
	b.hop++
	w := b.g.AddVertex(b.hop, topo.StarAddr)
	for _, u := range b.cur {
		b.g.AddEdge(u, w)
	}
	b.cur = []topo.VertexID{w}
	return b
}

// End appends the destination vertex with the given address, converging
// all current vertices into it, and returns the finished graph.
func (b *PathBuilder) End(dst packet.Addr) *topo.Graph {
	b.hop++
	w := b.g.AddVertex(b.hop, dst)
	for _, u := range b.cur {
		b.g.AddEdge(u, w)
	}
	b.cur = []topo.VertexID{w}
	return b.g
}

// The four Sec 2.4.1 evaluation topologies, plus the Fig 1 diamonds and
// the Sec 3 simplest diamond. Each returns a ground-truth graph ending at
// dst.

// SimplestDiamond is a divergence point, two vertices, and a convergence
// point: the Sec 3 validation topology with exact MDA failure probability
// (1/2)^(n1-1).
func SimplestDiamond(alloc *AddrAllocator, dst packet.Addr) *topo.Graph {
	return NewPathBuilder(alloc).Spread(2).Converge(1).End(dst)
}

// Fig1UnmeshedDiamond is the left topology of Fig 1: hop 1 divergence,
// four vertices at hop 2, two at hop 3 (each fed by two hop-2 vertices,
// out-degree 1: unmeshed), convergence at hop 4.
func Fig1UnmeshedDiamond(alloc *AddrAllocator, dst packet.Addr) *topo.Graph {
	return NewPathBuilder(alloc).Spread(4).Converge(2).Converge(1).End(dst)
}

// Fig1MeshedDiamond is the right topology of Fig 1: as the unmeshed one,
// but every hop-2 vertex links to both hop-3 vertices.
func Fig1MeshedDiamond(alloc *AddrAllocator, dst packet.Addr) *topo.Graph {
	return NewPathBuilder(alloc).Spread(4).Full(2).Converge(1).End(dst)
}

// MaxLength2Diamond is the first Sec 2.4.1 topology: a single 28-vertex
// hop between divergence and convergence (trace pl2.prakinf.tu-ilmenau.de
// → 83.167.65.184).
func MaxLength2Diamond(alloc *AddrAllocator, dst packet.Addr) *topo.Graph {
	return NewPathBuilder(alloc).Spread(28).Converge(1).End(dst)
}

// SymmetricDiamond is the second Sec 2.4.1 topology: three multi-vertex
// hops with a maximum width of 10, uniform and unmeshed (trace
// ple1.cesnet.cz → 203.195.189.3).
func SymmetricDiamond(alloc *AddrAllocator, dst packet.Addr) *topo.Graph {
	return NewPathBuilder(alloc).Spread(2).Spread(5).Converge(2).Converge(1).End(dst)
}

// AsymmetricDiamond is the third Sec 2.4.1 topology: nine multi-vertex
// hops, a maximum width of 19, a maximum width asymmetry of 17, unmeshed
// (trace kulcha.mimuw.edu.pl → 61.6.250.1). One hop-2 vertex has 18
// successors while its sibling has 1, making discovery probabilities at
// the wide hop range from 1/36 to 1/2.
func AsymmetricDiamond(alloc *AddrAllocator, dst packet.Addr) *topo.Graph {
	b := NewPathBuilder(alloc).
		Spread(2).                  // hop 1: width 2
		SpreadUneven([]int{18, 1}). // hop 2: width 19, asymmetry 17
		Converge(10).               // hop 3
		Converge(5).                // hop 4
		Converge(4).                // hop 5
		Converge(4).                // hop 6 (one-to-one)
		Converge(2).                // hop 7
		Converge(2).                // hop 8 (one-to-one)
		Converge(2)                 // hop 9 (one-to-one): 9 multi-vertex hops
	return b.Converge(1).End(dst)
}

// MeshedDiamond48 is the fourth Sec 2.4.1 topology: five multi-vertex
// hops with a maximum width of 48 and meshing (trace ple2.planetlab.eu →
// 125.155.82.17).
func MeshedDiamond48(alloc *AddrAllocator, dst packet.Addr) *topo.Graph {
	b := NewPathBuilder(alloc).
		Spread(4).    // hop 1: width 4
		Full(8).      // hop 2: width 8, meshed with hop 1
		Spread(6).    // hop 3: width 48
		Converge(12). // hop 4: width 12
		Full(4)       // hop 5: width 4, meshed with hop 4
	return b.Converge(1).End(dst)
}

// BuildScenario registers a ground-truth graph as the path for
// (src, dst) on a fresh network with one router per interface, returning
// the network and the path. Convenience for tests and examples.
func BuildScenario(seed uint64, src, dst packet.Addr, build func(*AddrAllocator, packet.Addr) *topo.Graph) (*Network, *Path) {
	n := NewNetwork(seed)
	alloc := NewAddrAllocator(packet.AddrFrom4(10, 0, 0, 1))
	g := build(alloc, dst)
	n.EnsureIfaces(g, dst)
	return n, n.AddPath(src, dst, g)
}

// DescribeGraph summarizes a graph's hop widths, for logs and tests.
func DescribeGraph(g *topo.Graph) string {
	s := ""
	for h := 0; h < g.NumHops(); h++ {
		if h > 0 {
			s += "-"
		}
		s += fmt.Sprintf("%d", g.Width(h))
	}
	return s
}
