package fakeroute

import (
	"mmlpt/internal/nprand"
	"mmlpt/internal/packet"
	"mmlpt/internal/topo"
)

// Parameterized random topology generation: the family behind the
// ground-truth evaluation scenarios (internal/groundtruth). Where the
// named builders in shapes.go reproduce specific traces from the paper,
// GenerateMultipath draws whole populations of diamond meshes with
// controllable width, length, asymmetry, meshing, unresponsive hops and
// load-balancer dispatch modes — the knobs the paper's simulations vary
// when validating MDA-Lite accuracy against known ground truth.

// LBMix gives the probability that a multi-successor (load balancing)
// vertex dispatches per packet or per destination; the remainder is
// per-flow, the Paris/MDA common case.
type LBMix struct {
	PerPacket      float64
	PerDestination float64
}

// GenSpec parameterizes one randomly generated multipath route.
type GenSpec struct {
	// Diamonds is how many diamonds the path threads through (default 1).
	Diamonds int
	// WidthMin/WidthMax bound the width of a diamond's interior hops
	// (defaults 2/2; widths below 2 would not be diamonds).
	WidthMin, WidthMax int
	// LenMin/LenMax bound the diamond length in hops between divergence
	// and convergence point (defaults 2/2; minimum 2).
	LenMin, LenMax int
	// UniformWidth draws one width per diamond and holds every interior
	// hop to it, keeping in/out degrees uniform: the population where
	// the MDA-Lite's hop-level probing never needs to switch to the full
	// MDA. Without it, widths re-draw per hop, and the width changes
	// create the (legitimate) non-uniformity its detector fires on.
	UniformWidth bool
	// MeshProb is the probability that an interior hop transition is
	// fully meshed (every vertex links to every successor).
	MeshProb float64
	// AsymProb is the probability that a widening transition distributes
	// successors unevenly, creating width asymmetry.
	AsymProb float64
	// ChainMin/ChainMax bound the plain routed chain segments before,
	// between and after diamonds (defaults 1/2).
	ChainMin, ChainMax int
	// StarProb is the probability that a chain hop is unresponsive.
	StarProb float64
	// LB is the dispatch-mode mix assigned to load balancing vertices.
	LB LBMix
}

func (s *GenSpec) fill() {
	if s.Diamonds == 0 {
		s.Diamonds = 1
	}
	if s.WidthMin < 2 {
		s.WidthMin = 2
	}
	if s.WidthMax < s.WidthMin {
		s.WidthMax = s.WidthMin
	}
	if s.LenMin < 2 {
		s.LenMin = 2
	}
	if s.LenMax < s.LenMin {
		s.LenMax = s.LenMin
	}
	if s.ChainMin < 1 {
		s.ChainMin = 1
	}
	if s.ChainMax < s.ChainMin {
		s.ChainMax = s.ChainMin
	}
}

// GeneratedPath is one generated ground-truth route: the hop-aligned
// graph ending at the destination, plus the dispatch mode of every load
// balancing vertex (to be assigned to Path.LB after AddPath).
type GeneratedPath struct {
	Graph *topo.Graph
	LB    map[topo.VertexID]LBMode
}

// intBetween draws uniformly from [lo, hi].
func intBetween(rng *nprand.Source, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}

// GenerateMultipath draws one random multipath route from spec. The
// result is deterministic in (rng state, alloc state, spec): equal seeds
// regenerate identical ground truth, which is what lets an evaluation
// run rebuild the same network for each algorithm under test.
func GenerateMultipath(rng *nprand.Source, alloc *AddrAllocator, dst packet.Addr, spec GenSpec) *GeneratedPath {
	spec.fill()
	b := NewPathBuilder(alloc)

	star := func() bool { return spec.StarProb > 0 && rng.Float64() < spec.StarProb }
	chain := func(n int) {
		for i := 0; i < n; i++ {
			if star() {
				b.Star()
			} else {
				b.Converge(1)
			}
		}
	}

	// Hop 0 is the builder's fresh first-hop vertex; chains and diamonds
	// alternate after it.
	chain(intBetween(rng, spec.ChainMin, spec.ChainMax) - 1)
	for d := 0; d < spec.Diamonds; d++ {
		genDiamond(rng, b, spec)
		chain(intBetween(rng, spec.ChainMin, spec.ChainMax))
	}
	g := b.End(dst)
	return &GeneratedPath{Graph: g, LB: assignLB(rng, g, spec.LB)}
}

// genDiamond appends one diamond: length L in [LenMin, LenMax] hops
// between the (current, single) divergence point and a fresh convergence
// point, with L-1 interior hops of width in [WidthMin, WidthMax].
func genDiamond(rng *nprand.Source, b *PathBuilder, spec GenSpec) {
	length := intBetween(rng, spec.LenMin, spec.LenMax)
	uniform := 0
	if spec.UniformWidth {
		uniform = intBetween(rng, spec.WidthMin, spec.WidthMax)
	}
	width := 0
	for h := 0; h < length-1; h++ {
		next := uniform
		if next == 0 {
			next = intBetween(rng, spec.WidthMin, spec.WidthMax)
		}
		meshed := spec.MeshProb > 0 && rng.Float64() < spec.MeshProb
		switch {
		case meshed:
			// Mostly dense (full bipartite, trivially detectable); for
			// equal-width transitions, sometimes sparse — only one or two
			// vertices of out-degree 2, the population the MDA-Lite's
			// meshing test misses with Eq. (1) probability 2^-k at phi=2.
			if next == width && rng.Float64() < 0.35 {
				b.CrossLink(1 + rng.Intn(2))
			} else {
				b.Full(next)
			}
		case next > width:
			if width == 0 {
				// Divergence: a single vertex spreads to the first
				// interior hop; uneven spreads need >1 current vertex.
				b.Spread(next)
			} else {
				b.SpreadUneven(spreadCounts(rng, width, next, spec.AsymProb))
			}
		case next < width:
			b.Converge(next)
		default:
			// Equal widths, unmeshed: one-to-one.
			b.Converge(next)
		}
		width = next
	}
	b.Converge(1)
}

// spreadCounts splits `total` successors over `cur` current vertices:
// evenly (remainder to the earliest vertices) or, with probability
// asymProb, skewed so one vertex takes every spare successor — the
// paper's width-asymmetric population.
func spreadCounts(rng *nprand.Source, cur, total int, asymProb float64) []int {
	counts := make([]int, cur)
	for i := range counts {
		counts[i] = 1
	}
	spare := total - cur
	if asymProb > 0 && rng.Float64() < asymProb {
		counts[rng.Intn(cur)] += spare
		return counts
	}
	for i := 0; i < spare; i++ {
		counts[i%cur]++
	}
	return counts
}

// assignLB draws a dispatch mode for every multi-successor vertex. The
// map only holds non-default entries (LBPerFlow is the zero value and
// the Path default).
func assignLB(rng *nprand.Source, g *topo.Graph, mix LBMix) map[topo.VertexID]LBMode {
	lb := make(map[topo.VertexID]LBMode)
	for i := range g.Vertices {
		v := topo.VertexID(i)
		if g.OutDegree(v) < 2 {
			continue
		}
		x := rng.Float64()
		switch {
		case x < mix.PerPacket:
			lb[v] = LBPerPacket
		case x < mix.PerPacket+mix.PerDestination:
			lb[v] = LBPerDestination
		}
	}
	return lb
}

// AddGeneratedPath registers gp as the ground truth for (src, dst),
// creating one router per interface and installing the generated
// dispatch modes. It must be called before probing begins.
func (n *Network) AddGeneratedPath(src, dst packet.Addr, gp *GeneratedPath) *Path {
	n.EnsureIfaces(gp.Graph, dst)
	p := n.AddPath(src, dst, gp.Graph)
	for v, m := range gp.LB {
		p.LB[v] = m
	}
	return p
}
