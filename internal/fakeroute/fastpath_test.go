package fakeroute

import (
	"bytes"
	"testing"

	"mmlpt/internal/packet"
	"mmlpt/internal/topo"
)

// replyStream runs a fixed probe schedule (many flows × many TTLs, echo
// probes interleaved) through the pair's session and returns the
// concatenated reply bytes, with a drop marker per silent probe so
// alignment differences cannot cancel out.
func replyStream(n *Network, dst packet.Addr, echoAddr packet.Addr) []byte {
	s := n.SessionFor(tSrc, dst)
	var buf bytes.Buffer
	for flow := uint16(0); flow < 24; flow++ {
		for ttl := byte(1); ttl <= 8; ttl++ {
			pr := packet.Probe{Src: tSrc, Dst: dst, FlowID: flow, TTL: ttl, Checksum: flow*8 + uint16(ttl)}
			raw := s.HandleProbe(pr.Serialize())
			if raw == nil {
				buf.WriteString("|drop|")
			} else {
				buf.Write(raw)
			}
		}
		if echoAddr != 0 {
			ep := packet.EchoProbe{Src: tSrc, Dst: echoAddr, ID: 0x4d4c, Seq: flow, IPID: flow}
			if raw := s.HandleProbe(ep.Serialize()); raw != nil {
				buf.Write(raw)
			}
		}
	}
	return buf.Bytes()
}

// TestWalkMemoByteIdentical: the flow-walk memo is a pure cache — with it
// force-disabled, every emitted reply byte must be identical, across
// per-flow, per-destination, weighted, star, rate-limited, lossy and
// per-packet configurations (the latter three bypass the memo; byte
// equality then proves the bypass preserves the RNG draw order).
func TestWalkMemoByteIdentical(t *testing.T) {
	shapes := []struct {
		name  string
		build func(*AddrAllocator, packet.Addr) *topo.Graph
	}{
		{"simplest", SimplestDiamond},
		{"meshed48", MeshedDiamond48},
		{"asymmetric", AsymmetricDiamond},
	}
	configs := []struct {
		name      string
		configure func(*Network, *Path)
	}{
		{"perflow", nil},
		{"perdest", func(_ *Network, p *Path) {
			p.LB[p.Graph.Hop(0)[0]] = LBPerDestination
		}},
		{"weighted", func(_ *Network, p *Path) {
			div := p.Graph.Hop(0)[0]
			w := make([]float64, p.Graph.OutDegree(div))
			for i := range w {
				w[i] = float64(i + 1)
			}
			p.WeightedEdges = map[topo.VertexID][]float64{div: w}
		}},
		{"perpacket", func(_ *Network, p *Path) {
			p.LB[p.Graph.Hop(0)[0]] = LBPerPacket
		}},
		{"lossy", func(n *Network, _ *Path) { n.LossProb = 0.3 }},
		{"ratelimited", func(n *Network, p *Path) {
			r := n.RouterOf(p.Graph.V(p.Graph.Hop(1)[0]).Addr)
			r.RateLimit = 20
			r.RatePeriod = 100
		}},
	}
	for _, sh := range shapes {
		for _, cfg := range configs {
			t.Run(sh.name+"/"+cfg.name, func(t *testing.T) {
				memoNet, memoPath := BuildScenario(99, tSrc, tDst, sh.build)
				plainNet, plainPath := BuildScenario(99, tSrc, tDst, sh.build)
				plainNet.disableWalkMemo = true
				if cfg.configure != nil {
					cfg.configure(memoNet, memoPath)
					cfg.configure(plainNet, plainPath)
				}
				echoAddr := memoPath.Graph.V(memoPath.Graph.Hop(0)[0]).Addr
				want := replyStream(plainNet, tDst, echoAddr)
				got := replyStream(memoNet, tDst, echoAddr)
				if !bytes.Equal(want, got) {
					t.Fatalf("memoized replies diverge from fresh-walk replies (%d vs %d bytes)", len(got), len(want))
				}
				if memoNet.RepliesSent != plainNet.RepliesSent || memoNet.Dropped != plainNet.Dropped {
					t.Fatalf("stats diverge: memo %d/%d, fresh %d/%d",
						memoNet.RepliesSent, memoNet.Dropped, plainNet.RepliesSent, plainNet.Dropped)
				}
			})
		}
	}
}

// TestWalkMemoAcrossRouteChange: the memo key includes the graph
// generation, so a mid-trace topology swap (Path.Alt) must invalidate
// cached walks — replies after the swap come from the new graph.
func TestWalkMemoAcrossRouteChange(t *testing.T) {
	build := func() (*Network, *Path) {
		n := NewNetwork(7)
		alloc := NewAddrAllocator(packet.AddrFrom4(10, 40, 0, 1))
		before := SimplestDiamond(alloc, tDst)
		after := MaxLength2Diamond(alloc, tDst)
		n.EnsureIfaces(before, tDst)
		n.EnsureIfaces(after, tDst)
		p := n.AddPath(tSrc, tDst, before)
		p.Alt = after
		p.AltAt = 40
		return n, p
	}
	memoNet, _ := build()
	plainNet, _ := build()
	plainNet.disableWalkMemo = true
	want := replyStream(plainNet, tDst, 0)
	got := replyStream(memoNet, tDst, 0)
	if !bytes.Equal(want, got) {
		t.Fatal("memoized replies diverge across a route change")
	}
}

// TestGarbageProbeCreatesNoSession: a packet too short to carry an IPv4
// header must be dropped before the session lookup — previously it fell
// through with src=dst=0 and materialized a spurious (0,0) session.
func TestGarbageProbeCreatesNoSession(t *testing.T) {
	net, _ := BuildScenario(16, tSrc, tDst, SimplestDiamond)
	for _, raw := range [][]byte{nil, {}, {1, 2, 3}, make([]byte, packet.IPv4HeaderLen-1)} {
		if net.HandleProbe(raw) != nil {
			t.Fatalf("runt packet (%d bytes) produced a reply", len(raw))
		}
	}
	net.sessMu.RLock()
	ns := len(net.sessions)
	net.sessMu.RUnlock()
	if ns != 0 {
		t.Fatalf("runt packets materialized %d session(s), want 0", ns)
	}
	if net.ProbesSeen != 4 || net.Dropped != 4 {
		t.Fatalf("stats: seen=%d dropped=%d, want 4/4", net.ProbesSeen, net.Dropped)
	}
}

// TestCompiledTablesSeeLateConfiguration: LB modes and weights assigned
// after AddPath but before the first probe (the documented construction
// window) must be honoured by the compiled fast path.
func TestCompiledTablesSeeLateConfiguration(t *testing.T) {
	net, path := BuildScenario(4, tSrc, tDst, Fig1UnmeshedDiamond)
	path.LB[path.Graph.Hop(0)[0]] = LBPerPacket
	seen := map[packet.Addr]bool{}
	for i := 0; i < 64; i++ {
		if r := sendProbe(net, 1, 2); r != nil {
			seen[r.From] = true
		}
	}
	if len(seen) < 2 {
		t.Fatalf("per-packet mode set after AddPath was ignored: %v", seen)
	}
}

// TestSessionReplyBufferReused: the documented ownership contract — the
// returned reply slice is session scratch, reused by the next
// HandleProbe on the same session, so retaining callers must copy.
func TestSessionReplyBufferReused(t *testing.T) {
	net, _ := BuildScenario(3, tSrc, tDst, SimplestDiamond)
	s := net.SessionFor(tSrc, tDst)
	pr1 := packet.Probe{Src: tSrc, Dst: tDst, FlowID: 1, TTL: 1, Checksum: 11}
	first := s.HandleProbe(pr1.Serialize())
	if first == nil {
		t.Fatal("no reply")
	}
	saved := append([]byte(nil), first...)
	pr2 := packet.Probe{Src: tSrc, Dst: tDst, FlowID: 2, TTL: 1, Checksum: 22}
	second := s.HandleProbe(pr2.Serialize())
	if second == nil {
		t.Fatal("no second reply")
	}
	// Same-size replies reuse the same backing array: the zero-allocation
	// contract in action.
	if &first[0] != &second[0] {
		t.Fatal("reply buffer was reallocated between same-size replies")
	}
	// A copy taken before the next call still parses as the first reply.
	r, err := packet.ParseReply(saved)
	if err != nil || r.ProbeIdentity != 11 {
		t.Fatalf("copied first reply parse: %+v err %v, want identity 11", r, err)
	}
}
