package fakeroute

import (
	"mmlpt/internal/nprand"
	"mmlpt/internal/packet"
	"mmlpt/internal/topo"
)

// The probe hot path. Each Path+graph generation (the main Graph, and the
// Alt graph once a routing change swaps it in) is compiled once, lazily at
// first probe, into dense per-vertex tables indexed by topo.VertexID. The
// forwarding loop then runs without map lookups: LB mode, dispatch
// weights (with their total presummed), the per-balancer hash key and the
// replying interface are all direct slice loads. Compilation happens
// after construction is complete (the Network contract: construction must
// finish before probing begins), so it observes every LB/WeightedEdges
// assignment made on the Path after AddPath returned.
//
// On top of the dense tables, deterministic flow walks are memoized: for
// per-flow and per-destination balancing the vertex sequence a flow
// traverses is a pure function of (flow key, graph generation), and the
// MDA probes one flow at many TTLs, so each Session caches the full walk
// and replays it by TTL. The cache is bypassed whenever handling could
// consume randomness or per-probe mutable state on the walk itself — a
// per-packet balancer anywhere in the graph, reply loss, or a
// rate-limited router — so the RNG draw order, and with it every emitted
// byte, is identical with and without the cache.

// compiledPath is the dense forwarding view of one Path over one graph
// generation. It is immutable once built; the pointer doubles as the
// memoization key for flow walks over this generation.
type compiledPath struct {
	g      *topo.Graph
	entry  topo.VertexID
	dstHop int

	// Per-vertex tables, indexed by topo.VertexID.
	mode    []LBMode
	weights [][]float64 // successor dispatch weights; nil = uniform
	wtotal  []float64   // presummed weights (same summation order as the old per-probe loop)
	key     []uint64    // vertexKey, precomputed
	addr    []packet.Addr
	iface   []*Iface // replying interface; nil for stars and the destination

	// memoizable reports that a flow walk over this graph consumes no
	// randomness and touches no rate-limit state: no multi-successor
	// per-packet balancer, and no rate-limited router on any vertex.
	memoizable bool
}

// compiledFor returns the compiled view of g for p, building it on first
// use. g must be p.Graph or p.Alt.
func (n *Network) compiledFor(p *Path, g *topo.Graph) *compiledPath {
	slot := &p.compiledMain
	if g != p.Graph {
		slot = &p.compiledAlt
	}
	if cp := slot.Load(); cp != nil && cp.g == g {
		return cp
	}
	p.compileMu.Lock()
	defer p.compileMu.Unlock()
	if cp := slot.Load(); cp != nil && cp.g == g {
		return cp
	}
	cp := n.compilePath(p, g)
	slot.Store(cp)
	return cp
}

// compilePath builds the dense tables for one graph generation.
func (n *Network) compilePath(p *Path, g *topo.Graph) *compiledPath {
	nv := g.NumVertices()
	cp := &compiledPath{
		g:          g,
		entry:      g.Hop(0)[0],
		dstHop:     g.NumHops() - 1,
		mode:       make([]LBMode, nv),
		weights:    make([][]float64, nv),
		wtotal:     make([]float64, nv),
		key:        make([]uint64, nv),
		addr:       make([]packet.Addr, nv),
		iface:      make([]*Iface, nv),
		memoizable: true,
	}
	for i := 0; i < nv; i++ {
		v := topo.VertexID(i)
		cp.mode[v] = p.LB[v]
		cp.addr[v] = g.V(v).Addr
		cp.key[v] = vertexKey(p, g, v)
		if w := p.WeightedEdges[v]; len(w) > 0 {
			cp.weights[v] = w
			var total float64
			for _, wi := range w {
				total += wi
			}
			cp.wtotal[v] = total
		}
		if cp.addr[v] != topo.StarAddr {
			if ifc := n.ifaces[cp.addr[v]]; ifc != nil {
				cp.iface[v] = ifc
				if ifc.Router.RateLimit > 0 {
					cp.memoizable = false
				}
			}
		}
		if cp.mode[v] == LBPerPacket && g.OutDegree(v) >= 2 {
			cp.memoizable = false
		}
	}
	return cp
}

// nextVertex applies the load balancing policy of vertex v for the probe,
// over the compiled tables. It must consume randomness exactly as the
// original map-based walker did: one s.rng draw per multi-successor
// per-packet balancer, none otherwise, and the weighted dispatch keeps
// the exact subtractive scan (the same float operations in the same
// order) so boundary flows pick the same successor.
func (s *Session) nextVertex(cp *compiledPath, v topo.VertexID, pp *packet.ParsedProbe, flowKey uint64) topo.VertexID {
	succ := cp.g.Succ(v)
	switch len(succ) {
	case 0:
		return topo.None
	case 1:
		return succ[0]
	}
	mode := cp.mode[v]
	var idx int
	if w := cp.weights[v]; w != nil {
		// Weighted dispatch: hash the flow into [0,1) deterministically
		// and walk the weights, so one flow still sticks to one successor.
		var x float64
		switch mode {
		case LBPerPacket:
			x = s.rng.Float64()
		case LBPerDestination:
			x = float64(nprand.FlowHash(cp.key[v], uint64(pp.IP.Dst))>>11) / (1 << 53)
		default:
			x = float64(nprand.FlowHash(cp.key[v], flowKey)>>11) / (1 << 53)
		}
		x *= cp.wtotal[v]
		for i, wi := range w {
			x -= wi
			if x < 0 {
				idx = i
				break
			}
			idx = i
		}
		return succ[idx]
	}
	switch mode {
	case LBPerPacket:
		idx = s.rng.Intn(len(succ))
	case LBPerDestination:
		idx = int(nprand.FlowHash(cp.key[v], uint64(pp.IP.Dst)) % uint64(len(succ)))
	default:
		idx = int(nprand.FlowHash(cp.key[v], flowKey) % uint64(len(succ)))
	}
	return succ[idx]
}

// walkKey identifies one memoized flow walk: the compiled generation
// (pointer identity) plus the probe's flow key.
type walkKey struct {
	cp   *compiledPath
	flow uint64
}

// walkFor returns the memoized vertex sequence the flow traverses over
// cp, computing and caching it on first use. seq[h] is the vertex at
// forward distance h; the walk runs to the destination hop or the first
// dead end. Only valid when cp.memoizable (the walk consumes no RNG).
func (s *Session) walkFor(cp *compiledPath, pp *packet.ParsedProbe, flowKey uint64) []topo.VertexID {
	k := walkKey{cp: cp, flow: flowKey}
	if seq, ok := s.walks[k]; ok {
		return seq
	}
	seq := make([]topo.VertexID, 1, cp.dstHop+1)
	cur := cp.entry
	seq[0] = cur
	for hop := 0; hop < cp.dstHop; hop++ {
		next := s.nextVertex(cp, cur, pp, flowKey)
		if next == topo.None {
			break // dead end: silent drop (routing hole)
		}
		cur = next
		seq = append(seq, cur)
	}
	if s.walks == nil {
		s.walks = make(map[walkKey][]topo.VertexID)
	}
	s.walks[k] = seq
	return seq
}
