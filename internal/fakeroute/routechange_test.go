package fakeroute

import (
	"testing"

	"mmlpt/internal/packet"
)

// TestRouteChangeInjection: a path whose topology is swapped mid-
// measurement (violating MDA assumption (1)) serves the old graph before
// the switch tick and the new one after.
func TestRouteChangeInjection(t *testing.T) {
	net := NewNetwork(31)
	alloc := NewAddrAllocator(packet.AddrFrom4(10, 0, 0, 1))
	before := NewPathBuilder(alloc).Chain(1).End(tDst)
	after := NewPathBuilder(alloc).Chain(1).End(tDst)
	net.EnsureIfaces(before, tDst)
	net.EnsureIfaces(after, tDst)
	p := net.AddPath(tSrc, tDst, before)
	p.Alt = after
	p.AltAt = 5

	oldHop1 := before.V(before.Hop(1)[0]).Addr
	newHop1 := after.V(after.Hop(1)[0]).Addr

	r := sendProbe(net, 0, 2)
	if r == nil || r.From != oldHop1 {
		t.Fatalf("pre-switch reply from %v, want %s", r, oldHop1)
	}
	net.AdvanceClock(10)
	r = sendProbe(net, 0, 2)
	if r == nil || r.From != newHop1 {
		t.Fatalf("post-switch reply from %v, want %s", r, newHop1)
	}
}

// TestTraceSurvivesRouteChange: the tracer must terminate and reach the
// destination even if the route changes mid-trace (it may record a
// frankenstein topology, as real traces do — the point is robustness).
func TestTraceSurvivesRouteChange(t *testing.T) {
	net := NewNetwork(32)
	alloc := NewAddrAllocator(packet.AddrFrom4(10, 0, 0, 1))
	before := Fig1UnmeshedDiamond(alloc, tDst)
	after := SimplestDiamond(alloc, tDst)
	net.EnsureIfaces(before, tDst)
	net.EnsureIfaces(after, tDst)
	p := net.AddPath(tSrc, tDst, before)
	p.Alt = after
	p.AltAt = 40 // mid-trace

	// Tracing through the probe package would create an import cycle in
	// this test's package; raw probing suffices to show both graphs serve
	// and the destination stays reachable.
	reached := false
	for flow := uint16(0); flow < 30; flow++ {
		if r := sendProbe(net, flow, 20); r != nil && r.IsPortUnreachable() {
			reached = true
		}
	}
	if !reached {
		t.Fatal("destination unreachable across the route change")
	}
}
