package fakeroute

import (
	"mmlpt/internal/topo"
)

// Exact failure-probability computation (Sec 3).
//
// For a vertex with K uniform successors, the MDA's stopping rule is: keep
// probing until the number of probes sent to the hop reaches n_k, where k
// is the number of distinct successors discovered so far (n_k strictly
// increasing). Discovery fails at the vertex if the rule stops with k < K.
//
// VertexFailureProb evaluates that probability exactly by dynamic
// programming over (probes sent, distinct successors found), with
// absorption at each stopping point. For the simplest diamond (K=2) and
// the 95% table (n1=6) this yields (1/2)^5 = 0.03125, the worked example
// in the paper.

// VertexFailureProb returns the probability that the stopping rule
// terminates before all K uniform successors are seen. nk[k] is the
// stopping point after k distinct successors are found, for k >= 1
// (nk[0] is ignored). K <= 1 never fails. If K exceeds the table, the
// remaining stopping points are treated as the last entry (the rule would
// stall), which callers avoid by sizing the table to the topology.
func VertexFailureProb(K int, nk []int) float64 {
	if K <= 1 {
		return 0
	}
	stop := func(k int) int {
		if k < len(nk) {
			return nk[k]
		}
		return nk[len(nk)-1]
	}
	// prob[j] = P(j distinct found, not yet stopped) after t probes.
	prob := make([]float64, K+1)
	prob[1] = 1 // the first probe always finds one successor
	fail := 0.0
	t := 1
	// Upper bound on probes: once K found, stop at n_K.
	for {
		// Absorb states whose stopping point equals t.
		done := true
		for j := 1; j <= K; j++ {
			if prob[j] == 0 {
				continue
			}
			if stop(j) <= t {
				if j < K {
					fail += prob[j]
				}
				prob[j] = 0
			} else {
				done = false
			}
		}
		if done {
			break
		}
		// One more probe: state j stays with prob j/K, advances with
		// (K-j)/K.
		next := make([]float64, K+1)
		for j := 1; j <= K; j++ {
			if prob[j] == 0 {
				continue
			}
			next[j] += prob[j] * float64(j) / float64(K)
			if j < K {
				next[j+1] += prob[j] * float64(K-j) / float64(K)
			}
		}
		prob = next
		t++
	}
	return fail
}

// GraphFailureProb returns the probability that the MDA, with the given
// stopping points and perfect node control, fails to discover the complete
// topology: one minus the product of per-vertex success probabilities over
// every vertex with two or more successors (assumption: load balancers act
// independently, dispatch uniformly, and all probes are answered).
func GraphFailureProb(g *topo.Graph, nk []int) float64 {
	success := 1.0
	for i := range g.Vertices {
		if k := g.OutDegree(topo.VertexID(i)); k >= 2 {
			success *= 1 - VertexFailureProb(k, nk)
		}
	}
	return 1 - success
}

// HopFailureProb returns the probability that hop-by-hop probing (the
// MDA-Lite on a uniform hop) fails to discover all K vertices of a hop
// that a random-flow probe reaches uniformly. The process is identical to
// per-vertex successor discovery, so the same DP applies.
func HopFailureProb(K int, nk []int) float64 { return VertexFailureProb(K, nk) }

// MeshingMissProb evaluates Eq. (1): the probability that the MDA-Lite's
// meshing test, generating phi flow identifiers per vertex of the
// from-hop, fails to detect meshing. degrees lists |σ(v)| (the successor
// count when tracing forward, or predecessor count when tracing backward)
// for every vertex v of the from-hop.
func MeshingMissProb(degrees []int, phi int) float64 {
	p := 1.0
	for _, d := range degrees {
		if d <= 0 {
			d = 1
		}
		for i := 0; i < phi-1; i++ {
			p /= float64(d)
		}
	}
	return p
}
