// Package fakeroute simulates multipath route topologies for validating
// multipath tracing tools, reproducing the paper's Fakeroute (Sec 3) and
// extending it with the router behaviours the multilevel (alias
// resolution) experiments need.
//
// A Network owns routers and interfaces and, per (source, destination)
// pair, a ground-truth topology DAG. The tracer under test hands the
// network fully-serialized probe packets; the network parses the wire
// bytes, walks the probe through the topology — emulating per-flow load
// balancing with a deterministic flow hash — and crafts real ICMP reply
// bytes (Time Exceeded, Port Unreachable, or Echo Reply) that the tracer
// must parse. Nothing above the wire format is mocked, so a tool validated
// here exercises the same packet paths it would against a kernel raw
// socket. Where the paper's C++ Fakeroute used libnetfilter-queue to
// capture packets and libtins to craft replies, this implementation is an
// in-process transport with its own IPv4/UDP/ICMP codec
// (mmlpt/internal/packet).
package fakeroute

import (
	"mmlpt/internal/nprand"
	"mmlpt/internal/packet"
)

// IPIDMode selects how a router generates the IP identification field of
// its replies. The modes cover every behaviour the paper's alias
// resolution evaluation encountered (Sec 4.2 and Sec 5.2).
type IPIDMode int

const (
	// IPIDShared uses one router-wide counter for all reply families: the
	// behaviour the Monotonic Bounds Test relies on. Aliases resolve via
	// both indirect and direct probing.
	IPIDShared IPIDMode = iota
	// IPIDPerInterface keeps an independent counter per interface for
	// Time Exceeded replies but a router-wide counter for Echo replies:
	// indirect probing rejects the alias while direct probing accepts it
	// (the paper's explanation for Table 2's 14.4% cell).
	IPIDPerInterface
	// IPIDConstantZero answers every probe with IP ID 0: no time series
	// can be built, so the MBT is unable to conclude (98.6% of MMLPT's
	// inconclusive cases).
	IPIDConstantZero
	// IPIDRandom draws a fresh random IP ID per reply: a non-monotonic
	// series, also inconclusive (1.4% of MMLPT's inconclusive cases).
	IPIDRandom
	// IPIDEchoCopy copies the probe's IP ID into Echo replies (22.8% of
	// MIDAR's inconclusive cases) while Time Exceeded replies use the
	// shared counter.
	IPIDEchoCopy
	// IPIDIndirectZero answers Time Exceeded with IP ID 0 but keeps a
	// shared counter for Echo replies (a common Juniper behaviour): the
	// indirect MBT is unable while direct probing accepts — the paper's
	// explanation for the 20.3% MIDAR-accept / MMLPT-unable cell of
	// Table 2.
	IPIDIndirectZero
)

// Router models one simulated router.
type Router struct {
	ID int
	// IPID selects the identification-counter architecture.
	IPID IPIDMode
	// Velocity is the background counter advance per simulated tick
	// (models other traffic through the router). Zero means the counter
	// advances only when we sample it.
	Velocity float64
	// InitialTTLExceeded is the initial TTL of Time Exceeded replies
	// (network fingerprinting signature component). Typical values: 255
	// (Cisco/Juniper) or 64 (Linux-based).
	InitialTTLExceeded byte
	// InitialTTLEcho is the initial TTL of Echo replies.
	InitialTTLEcho byte
	// RespondsToEcho reports whether direct (ping) probes are answered.
	RespondsToEcho bool
	// RateLimit, if positive, is the maximum replies per RatePeriod ticks
	// (token bucket). Zero disables rate limiting.
	RateLimit  int
	RatePeriod uint64

	// sharedCtr is the router-wide counter's initial phase, fixed at
	// construction; each trace Session advances its own view of it.
	sharedCtr  uint16
	interfaces []packet.Addr
}

// Interfaces returns the addresses assigned to the router.
func (r *Router) Interfaces() []packet.Addr { return r.interfaces }

// Iface is one router interface.
type Iface struct {
	Addr   packet.Addr
	Router *Router
	// MPLSLabel, if nonzero, is attached to Time Exceeded replies from
	// this interface as an RFC 4950 extension: the interface sits in an
	// MPLS tunnel. Interfaces of the same router in the same tunnel carry
	// the same label.
	MPLSLabel uint32
	// labelFlaps: if true the label changes over time, making it unusable
	// for alias resolution (the constancy requirement of Sec 4.1).
	LabelFlaps bool

	// ctr is the per-interface counter's initial phase, fixed at
	// construction; each trace Session advances its own view of it.
	ctr uint16
}

// nextIPID produces the IP ID for a reply from iface at tick now, over
// this session's view of the router's counters. indirect distinguishes
// Time Exceeded (true) from Echo (false) replies. probeID is the IP ID of
// the probe being answered.
func (s *Session) nextIPID(ifc *Iface, indirect bool, probeID uint16, now uint64) uint16 {
	r := ifc.Router
	switch r.IPID {
	case IPIDShared:
		return s.advanceRouterCtr(r, now)
	case IPIDPerInterface:
		if indirect {
			return s.advanceIfaceCtr(ifc, now)
		}
		return s.advanceRouterCtr(r, now)
	case IPIDConstantZero:
		return 0
	case IPIDRandom:
		return uint16(s.rng.Uint64())
	case IPIDEchoCopy:
		if indirect {
			return s.advanceRouterCtr(r, now)
		}
		return probeID
	case IPIDIndirectZero:
		if indirect {
			return 0
		}
		return s.advanceRouterCtr(r, now)
	default:
		return s.advanceRouterCtr(r, now)
	}
}

// advanceRouterCtr samples the session's view of r's shared counter.
func (s *Session) advanceRouterCtr(r *Router, now uint64) uint16 {
	v := s.routers[r]
	if v == nil {
		v = &ctrView{ctr: r.sharedCtr}
		s.routers[r] = v
	}
	return advanceCtr(v, r.Velocity, now)
}

// advanceIfaceCtr samples the session's view of ifc's own counter.
func (s *Session) advanceIfaceCtr(ifc *Iface, now uint64) uint16 {
	v := s.ifaces[ifc]
	if v == nil {
		v = &ctrView{ctr: ifc.ctr}
		s.ifaces[ifc] = v
	}
	return advanceCtr(v, ifc.Router.Velocity, now)
}

// advanceCtr advances a counter view to tick now: one increment for the
// sample itself plus the background velocity accrued since the last one.
func advanceCtr(v *ctrView, velocity float64, now uint64) uint16 {
	delta := uint16(1)
	if velocity > 0 && now > v.last {
		delta += uint16(velocity * float64(now-v.last))
	}
	v.last = now
	v.ctr += delta
	return v.ctr
}

// allowReply applies the router's token-bucket rate limit at tick now,
// over this session's view of the bucket.
func (s *Session) allowReply(r *Router, now uint64) bool {
	if r.RateLimit <= 0 {
		return true
	}
	b := s.buckets[r]
	if b == nil {
		// The bucket starts full: a quiet router answers an initial burst.
		b = &bucket{tokens: float64(r.RateLimit), tick: now}
		s.buckets[r] = b
	}
	period := r.RatePeriod
	if period == 0 {
		period = 100
	}
	rate := float64(r.RateLimit) / float64(period)
	if now > b.tick {
		b.tokens += rate * float64(now-b.tick)
		if cap := float64(r.RateLimit); b.tokens > cap {
			b.tokens = cap
		}
		b.tick = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// effectiveLabel returns the MPLS label to attach now, honouring flapping.
func (ifc *Iface) effectiveLabel(now uint64) uint32 {
	if ifc.MPLSLabel == 0 {
		return 0
	}
	if ifc.LabelFlaps {
		// A flapping label changes every ~64 ticks, deterministically per
		// interface so repeated probes within a burst may still agree.
		return ifc.MPLSLabel + uint32(nprand.FlowHash(uint64(ifc.Addr), now/64)%1024)
	}
	return ifc.MPLSLabel
}
