package fakeroute

import (
	"math"
	"testing"
	"testing/quick"

	"mmlpt/internal/packet"
	"mmlpt/internal/topo"
)

var (
	tSrc = packet.MustParseAddr("192.0.2.1")
	tDst = packet.MustParseAddr("198.51.100.77")
)

func sendProbe(n *Network, flow uint16, ttl byte) *packet.Reply {
	pr := packet.Probe{Src: tSrc, Dst: tDst, FlowID: flow, TTL: ttl, Checksum: 7}
	raw := n.HandleProbe((&pr).Serialize())
	if raw == nil {
		return nil
	}
	r, err := packet.ParseReply(raw)
	if err != nil {
		return nil
	}
	return r
}

func TestTTLSemantics(t *testing.T) {
	net, path := BuildScenario(1, tSrc, tDst, SimplestDiamond)
	g := path.Graph
	// TTL 1 must expire at hop 0 (the divergence point).
	r := sendProbe(net, 0, 1)
	if r == nil || !r.IsTimeExceeded() {
		t.Fatal("no time exceeded at TTL 1")
	}
	if r.From != g.V(g.Hop(0)[0]).Addr {
		t.Fatalf("TTL 1 reply from %s, want hop 0", r.From)
	}
	// TTL 2 must expire at hop 1 (one of the two mid vertices).
	r = sendProbe(net, 0, 2)
	found := false
	for _, id := range g.Hop(1) {
		if g.V(id).Addr == r.From {
			found = true
		}
	}
	if !found {
		t.Fatalf("TTL 2 reply from %s, not a hop 1 vertex", r.From)
	}
	// A large TTL must reach the destination: port unreachable.
	r = sendProbe(net, 0, 30)
	if r == nil || !r.IsPortUnreachable() || r.From != tDst {
		t.Fatalf("TTL 30 reply %+v, want port unreachable from destination", r)
	}
}

func TestPerFlowDeterminism(t *testing.T) {
	net, _ := BuildScenario(2, tSrc, tDst, MaxLength2Diamond)
	for flow := uint16(0); flow < 20; flow++ {
		r1 := sendProbe(net, flow, 2)
		r2 := sendProbe(net, flow, 2)
		if r1 == nil || r2 == nil || r1.From != r2.From {
			t.Fatalf("flow %d not deterministic: %v vs %v", flow, r1, r2)
		}
	}
}

func TestPerFlowUniformity(t *testing.T) {
	// Over many flows, a 4-way balancer must spread roughly evenly.
	net, path := BuildScenario(3, tSrc, tDst, Fig1UnmeshedDiamond)
	counts := map[packet.Addr]int{}
	const flows = 2000
	for flow := 0; flow < flows; flow++ {
		r := sendProbe(net, uint16(flow), 2)
		if r == nil {
			t.Fatal("dropped probe")
		}
		counts[r.From]++
	}
	if len(counts) != 4 {
		t.Fatalf("reached %d interfaces, want 4", len(counts))
	}
	for addr, c := range counts {
		frac := float64(c) / flows
		if frac < 0.20 || frac > 0.30 {
			t.Errorf("interface %s got %.3f of flows, want ~0.25", addr, frac)
		}
	}
	_ = path
}

func TestPerPacketLoadBalancing(t *testing.T) {
	net, path := BuildScenario(4, tSrc, tDst, Fig1UnmeshedDiamond)
	// Make hop 0's vertex a per-packet balancer.
	path.LB[path.Graph.Hop(0)[0]] = LBPerPacket
	seen := map[packet.Addr]bool{}
	for i := 0; i < 64; i++ {
		r := sendProbe(net, 1, 2) // same flow every time
		if r != nil {
			seen[r.From] = true
		}
	}
	if len(seen) < 2 {
		t.Fatalf("per-packet balancer kept one path for a fixed flow: %v", seen)
	}
}

func TestWeightedEdges(t *testing.T) {
	net, path := BuildScenario(5, tSrc, tDst, SimplestDiamond)
	div := path.Graph.Hop(0)[0]
	path.WeightedEdges = map[topo.VertexID][]float64{div: {0.9, 0.1}}
	counts := map[packet.Addr]int{}
	const flows = 1000
	for f := 0; f < flows; f++ {
		if r := sendProbe(net, uint16(f), 2); r != nil {
			counts[r.From]++
		}
	}
	hi := 0
	for _, c := range counts {
		if c > hi {
			hi = c
		}
	}
	if frac := float64(hi) / flows; frac < 0.85 || frac > 0.95 {
		t.Fatalf("weighted 0.9 branch got %.3f of flows", frac)
	}
}

func TestStarHopNeverReplies(t *testing.T) {
	net := NewNetwork(6)
	alloc := NewAddrAllocator(packet.AddrFrom4(10, 0, 0, 1))
	g := NewPathBuilder(alloc).Chain(1).Star().Chain(1).End(tDst)
	net.EnsureIfaces(g, tDst)
	net.AddPath(tSrc, tDst, g)
	// The star is at hop 2 (hop0 start, hop1 chain, hop2 star).
	if r := sendProbe(net, 0, 3); r != nil {
		t.Fatalf("star hop replied: %+v", r)
	}
	// Hops beyond the star still work.
	if r := sendProbe(net, 0, 4); r == nil {
		t.Fatal("hop after star did not reply")
	}
}

func TestIPIDSharedMonotonic(t *testing.T) {
	net, path := BuildScenario(7, tSrc, tDst, SimplestDiamond)
	addr := path.Graph.V(path.Graph.Hop(0)[0]).Addr
	var last uint16
	for i := 0; i < 10; i++ {
		r := sendProbe(net, 0, 1)
		if i > 0 {
			diff := r.IPID - last
			if diff == 0 || diff >= 1<<15 {
				t.Fatalf("shared counter not increasing: %d -> %d", last, r.IPID)
			}
		}
		last = r.IPID
	}
	_ = addr
}

func TestIPIDModes(t *testing.T) {
	net, path := BuildScenario(8, tSrc, tDst, SimplestDiamond)
	r0 := net.RouterOf(path.Graph.V(path.Graph.Hop(0)[0]).Addr)

	r0.IPID = IPIDConstantZero
	for i := 0; i < 3; i++ {
		if r := sendProbe(net, 0, 1); r.IPID != 0 {
			t.Fatalf("constant-zero returned %d", r.IPID)
		}
	}
	r0.IPID = IPIDRandom
	seen := map[uint16]bool{}
	for i := 0; i < 8; i++ {
		seen[sendProbe(net, 0, 1).IPID] = true
	}
	if len(seen) < 4 {
		t.Fatalf("random mode produced %d distinct values over 8 replies", len(seen))
	}
}

func TestEchoHandling(t *testing.T) {
	net, path := BuildScenario(9, tSrc, tDst, SimplestDiamond)
	addr := path.Graph.V(path.Graph.Hop(0)[0]).Addr
	e := packet.EchoProbe{Src: tSrc, Dst: addr, ID: 1, Seq: 2, IPID: 42}
	raw := net.HandleProbe(e.Serialize())
	if raw == nil {
		t.Fatal("no echo reply")
	}
	r, err := packet.ParseReply(raw)
	if err != nil || !r.IsEchoReply() || r.From != addr || r.EchoSeq != 2 {
		t.Fatalf("echo reply %+v err %v", r, err)
	}
	net.RouterOf(addr).RespondsToEcho = false
	if net.HandleProbe(e.Serialize()) != nil {
		t.Fatal("unresponsive router replied to echo")
	}
}

func TestEchoCopyMode(t *testing.T) {
	net, path := BuildScenario(10, tSrc, tDst, SimplestDiamond)
	addr := path.Graph.V(path.Graph.Hop(0)[0]).Addr
	net.RouterOf(addr).IPID = IPIDEchoCopy
	e := packet.EchoProbe{Src: tSrc, Dst: addr, ID: 1, Seq: 2, IPID: 4242}
	r, _ := packet.ParseReply(net.HandleProbe(e.Serialize()))
	if r.IPID != 4242 {
		t.Fatalf("echo-copy returned %d, want the probe's 4242", r.IPID)
	}
}

func TestRateLimiting(t *testing.T) {
	net, path := BuildScenario(11, tSrc, tDst, SimplestDiamond)
	r0 := net.RouterOf(path.Graph.V(path.Graph.Hop(0)[0]).Addr)
	r0.RateLimit = 5
	r0.RatePeriod = 1000
	replies := 0
	for i := 0; i < 50; i++ {
		if sendProbe(net, 0, 1) != nil {
			replies++
		}
	}
	if replies > 10 {
		t.Fatalf("rate limiter allowed %d/50 replies at 5/1000 ticks", replies)
	}
	if replies == 0 {
		t.Fatal("rate limiter blocked everything including the initial burst")
	}
}

func TestLoss(t *testing.T) {
	net, _ := BuildScenario(12, tSrc, tDst, SimplestDiamond)
	net.LossProb = 0.5
	replies := 0
	for i := 0; i < 200; i++ {
		if sendProbe(net, uint16(i), 1) != nil {
			replies++
		}
	}
	if replies < 60 || replies > 140 {
		t.Fatalf("50%% loss yielded %d/200 replies", replies)
	}
}

func TestMPLSLabelInReply(t *testing.T) {
	net, path := BuildScenario(13, tSrc, tDst, SimplestDiamond)
	addr := path.Graph.V(path.Graph.Hop(0)[0]).Addr
	net.Iface(addr).MPLSLabel = 777
	r := sendProbe(net, 0, 1)
	if len(r.MPLS) != 1 || r.MPLS[0].Label != 777 {
		t.Fatalf("MPLS stack %+v, want label 777", r.MPLS)
	}
}

func TestReplyTTLFingerprint(t *testing.T) {
	net, path := BuildScenario(14, tSrc, tDst, SimplestDiamond)
	r0 := net.RouterOf(path.Graph.V(path.Graph.Hop(0)[0]).Addr)
	r0.InitialTTLExceeded = 64
	r := sendProbe(net, 0, 1)
	if r.ReplyTTL != 63 { // distance 1 from hop 0
		t.Fatalf("reply TTL %d, want 63", r.ReplyTTL)
	}
}

func TestQuotedProbeSurvives(t *testing.T) {
	net, _ := BuildScenario(15, tSrc, tDst, SimplestDiamond)
	pr := packet.Probe{Src: tSrc, Dst: tDst, FlowID: 31, TTL: 1, Checksum: 999}
	r, err := packet.ParseReply(net.HandleProbe((&pr).Serialize()))
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasQuotedFlow || r.ProbeFlowID != 31 || r.ProbeIdentity != 999 || r.ProbeDst != tDst {
		t.Fatalf("quote lost: %+v", r)
	}
}

func TestVertexFailureProbClosedFormK2(t *testing.T) {
	// For K=2, failure = (1/2)^(n1-1): the n1-1 probes after the first
	// must all repeat the first branch.
	for n1 := 2; n1 <= 12; n1++ {
		nk := []int{1, n1, n1 * 2}
		want := math.Pow(0.5, float64(n1-1))
		got := VertexFailureProb(2, nk)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("n1=%d: %v, want %v", n1, got, want)
		}
	}
}

func TestVertexFailureProbProperties(t *testing.T) {
	nk := []int{1, 6, 11, 16, 21, 27, 33}
	if VertexFailureProb(1, nk) != 0 {
		t.Fatal("K=1 cannot fail")
	}
	// The table is designed so each K's failure probability stays at or
	// below the 5% design bound (it oscillates under it, it is not
	// monotone in K).
	for k := 2; k <= 6; k++ {
		p := VertexFailureProb(k, nk)
		if p <= 0 || p > 0.05 {
			t.Fatalf("K=%d: p=%v outside (0, 0.05]", k, p)
		}
	}
	// Property: a uniformly tighter table cannot increase failure.
	f := func(bump uint8) bool {
		tighter := make([]int, len(nk))
		for i, n := range nk {
			tighter[i] = n + int(bump%16)
		}
		tighter[0] = 1
		return VertexFailureProb(3, tighter) <= VertexFailureProb(3, nk)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGraphFailureProbComposition(t *testing.T) {
	alloc := NewAddrAllocator(packet.AddrFrom4(10, 9, 0, 1))
	g := SimplestDiamond(alloc, tDst)
	nk := []int{1, 6, 11, 16, 21, 27, 33}
	single := GraphFailureProb(g, nk)
	if math.Abs(single-0.03125) > 1e-12 {
		t.Fatalf("simplest diamond failure %v, want 0.03125", single)
	}
	// Two independent branch points: failure = 1-(1-p)^2.
	alloc2 := NewAddrAllocator(packet.AddrFrom4(10, 10, 0, 1))
	b := NewPathBuilder(alloc2).Spread(2).Converge(1).Spread(2).Converge(1)
	g2 := b.End(tDst)
	want := 1 - (1-0.03125)*(1-0.03125)
	if got := GraphFailureProb(g2, nk); math.Abs(got-want) > 1e-12 {
		t.Fatalf("two-diamond failure %v, want %v", got, want)
	}
}

func TestBuilderShapesMetrics(t *testing.T) {
	alloc := NewAddrAllocator(packet.AddrFrom4(10, 11, 0, 1))
	cases := []struct {
		name       string
		build      func(*AddrAllocator, packet.Addr) *topo.Graph
		width      int
		meshed     bool
		asymmetric bool
	}{
		{"simplest", SimplestDiamond, 2, false, false},
		{"fig1", Fig1UnmeshedDiamond, 4, false, false},
		{"fig1meshed", Fig1MeshedDiamond, 4, true, false},
		{"maxlen2", MaxLength2Diamond, 28, false, false},
		{"symmetric", SymmetricDiamond, 10, false, false},
		{"asymmetric", AsymmetricDiamond, 19, false, true},
		{"meshed48", MeshedDiamond48, 48, true, false},
	}
	for _, c := range cases {
		g := c.build(alloc, packet.Addr(uint32(tDst)+uint32(len(c.name))))
		ds := g.Diamonds()
		if len(ds) == 0 {
			t.Fatalf("%s: no diamond", c.name)
		}
		m := ds[0].ComputeMetrics()
		if m.MaxWidth != c.width {
			t.Errorf("%s: width %d, want %d", c.name, m.MaxWidth, c.width)
		}
		if m.Meshed != c.meshed {
			t.Errorf("%s: meshed %v, want %v", c.name, m.Meshed, c.meshed)
		}
		if (m.MaxWidthAsymmetry > 0) != c.asymmetric {
			t.Errorf("%s: asymmetry %d, want asymmetric=%v", c.name, m.MaxWidthAsymmetry, c.asymmetric)
		}
	}
}

func TestAsymmetricDiamondMatchesPaper(t *testing.T) {
	alloc := NewAddrAllocator(packet.AddrFrom4(10, 12, 0, 1))
	g := AsymmetricDiamond(alloc, tDst)
	d := g.Diamonds()[0]
	m := d.ComputeMetrics()
	if m.MaxWidthAsymmetry != 17 {
		t.Errorf("asymmetry %d, want 17", m.MaxWidthAsymmetry)
	}
	multi := 0
	for h := d.DivHop; h <= d.ConvHop; h++ {
		if g.Width(h) >= 2 {
			multi++
		}
	}
	if multi != 9 {
		t.Errorf("multi-vertex hops %d, want 9", multi)
	}
}

func TestMeshedDiamond48MatchesPaper(t *testing.T) {
	alloc := NewAddrAllocator(packet.AddrFrom4(10, 13, 0, 1))
	g := MeshedDiamond48(alloc, tDst)
	d := g.Diamonds()[0]
	multi := 0
	for h := d.DivHop; h <= d.ConvHop; h++ {
		if g.Width(h) >= 2 {
			multi++
		}
	}
	if multi != 5 {
		t.Errorf("multi-vertex hops %d, want 5", multi)
	}
	if !d.Meshed() {
		t.Error("not meshed")
	}
}

func TestHandleProbeGarbage(t *testing.T) {
	net, _ := BuildScenario(16, tSrc, tDst, SimplestDiamond)
	if net.HandleProbe([]byte{1, 2, 3}) != nil {
		t.Fatal("garbage produced a reply")
	}
	if net.HandleProbe(nil) != nil {
		t.Fatal("nil produced a reply")
	}
	// A probe to an unknown destination is dropped.
	pr := packet.Probe{Src: tSrc, Dst: packet.MustParseAddr("203.0.113.99"), FlowID: 0, TTL: 3, Checksum: 1}
	if net.HandleProbe((&pr).Serialize()) != nil {
		t.Fatal("unknown destination produced a reply")
	}
}

func TestDuplicateInterfacePanics(t *testing.T) {
	net := NewNetwork(1)
	r := net.NewRouter()
	net.AddIface(r, packet.AddrFrom4(10, 0, 0, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddIface did not panic")
		}
	}()
	net.AddIface(r, packet.AddrFrom4(10, 0, 0, 1))
}
