package fakeroute

import (
	"bytes"
	"sync"
	"testing"

	"mmlpt/internal/packet"
)

// buildPairNetwork registers `pairs` independent diamond paths on one
// network, returning the destination of each pair.
func buildPairNetwork(seed uint64, pairs int) (*Network, []packet.Addr) {
	net := NewNetwork(seed)
	alloc := NewAddrAllocator(packet.AddrFrom4(10, 0, 0, 1))
	dsts := make([]packet.Addr, pairs)
	for i := range dsts {
		dst := packet.AddrFrom4(198, 51, 100, byte(10+i))
		g := SymmetricDiamond(alloc, dst)
		net.EnsureIfaces(g, dst)
		net.AddPath(tSrc, dst, g)
		dsts[i] = dst
	}
	return net, dsts
}

// probeSequence sends a fixed probe schedule for one pair through its
// session and returns the concatenated reply bytes.
func probeSequence(s *Session, dst packet.Addr) []byte {
	var buf bytes.Buffer
	for flow := uint16(0); flow < 12; flow++ {
		for ttl := byte(1); ttl <= 4; ttl++ {
			pr := packet.Probe{Src: tSrc, Dst: dst, FlowID: flow, TTL: ttl, Checksum: flow + uint16(ttl)<<8}
			buf.Write(s.HandleProbe(pr.Serialize()))
		}
	}
	return buf.Bytes()
}

// TestConcurrentSessionsDeterministic: handling many pairs' probes
// concurrently must yield, per pair, byte-identical replies to a serial
// walk of the same schedule — per-trace sessions isolate all mutable
// state (run with -race to also prove the absence of data races).
func TestConcurrentSessionsDeterministic(t *testing.T) {
	const pairs = 8

	serialNet, dsts := buildPairNetwork(77, pairs)
	want := make([][]byte, pairs)
	for i, dst := range dsts {
		want[i] = probeSequence(serialNet.SessionFor(tSrc, dst), dst)
	}

	concNet, dsts2 := buildPairNetwork(77, pairs)
	got := make([][]byte, pairs)
	var wg sync.WaitGroup
	for i, dst := range dsts2 {
		i, dst := i, dst
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i] = probeSequence(concNet.SessionFor(tSrc, dst), dst)
		}()
	}
	wg.Wait()

	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			t.Fatalf("pair %d: concurrent replies diverge from serial run", i)
		}
	}
	if serialNet.ProbesSeen != concNet.ProbesSeen || serialNet.RepliesSent != concNet.RepliesSent {
		t.Fatalf("stats diverge: serial %d/%d, concurrent %d/%d",
			serialNet.ProbesSeen, serialNet.RepliesSent, concNet.ProbesSeen, concNet.RepliesSent)
	}
}

// TestSessionSharedByEchoAndTrace: direct and indirect probes routed
// through one session must sample the same router counter view, the
// property the Monotonic Bounds Test depends on.
func TestSessionSharedByEchoAndTrace(t *testing.T) {
	net, path := BuildScenario(31, tSrc, tDst, SimplestDiamond)
	addr := path.Graph.V(path.Graph.Hop(0)[0]).Addr
	net.RouterOf(addr).Velocity = 0 // pure sample-increment counter
	s := net.SessionFor(tSrc, tDst)

	ids := make([]uint16, 0, 6)
	for i := 0; i < 3; i++ {
		pr := packet.Probe{Src: tSrc, Dst: tDst, FlowID: 0, TTL: 1, Checksum: uint16(i + 1)}
		r, err := packet.ParseReply(s.HandleProbe(pr.Serialize()))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, r.IPID)
		ep := packet.EchoProbe{Src: tSrc, Dst: addr, ID: 7, Seq: uint16(i), IPID: uint16(i)}
		re, err := packet.ParseReply(s.HandleProbe(ep.Serialize()))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, re.IPID)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[i-1]+1 {
			t.Fatalf("interleaved echo/trace IP IDs not one shared counter: %v", ids)
		}
	}
}
