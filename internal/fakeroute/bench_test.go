package fakeroute

import (
	"testing"

	"mmlpt/internal/packet"
)

// BenchmarkProbeRoundTrip measures one full simulated probe round trip at
// the session level: serialize → HandleProbe (parse, forward, craft
// reply). The memoized sub-benchmark is the hot path the survey runs on
// (per-flow balancing, no loss, no rate limiting) and must report
// 0 allocs/op in steady state; fresh-walk forces the memo off to price
// the walk itself; perpacket exercises the RNG-drawing bypass path.
func BenchmarkProbeRoundTrip(b *testing.B) {
	run := func(b *testing.B, configure func(*Network, *Path)) {
		b.Helper()
		net, path := BuildScenario(1, tSrc, tDst, MeshedDiamond48)
		if configure != nil {
			configure(net, path)
		}
		s := net.SessionFor(tSrc, tDst)
		var buf []byte
		// Warm up: compile tables, size scratch buffers, populate the
		// walk cache for every flow the loop will replay.
		for f := 0; f < 256; f++ {
			pr := packet.Probe{Src: tSrc, Dst: tDst, FlowID: uint16(f), TTL: byte(1 + f%6), Checksum: uint16(f + 1)}
			buf = pr.AppendTo(buf[:0])
			s.HandleProbe(buf)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pr := packet.Probe{Src: tSrc, Dst: tDst, FlowID: uint16(i % 256), TTL: byte(1 + i%6), Checksum: uint16(i%1000 + 1)}
			buf = pr.AppendTo(buf[:0])
			s.HandleProbe(buf)
		}
	}
	b.Run("memoized", func(b *testing.B) { run(b, nil) })
	b.Run("freshwalk", func(b *testing.B) {
		run(b, func(n *Network, _ *Path) { n.disableWalkMemo = true })
	})
	b.Run("perpacket", func(b *testing.B) {
		run(b, func(_ *Network, p *Path) { p.LB[p.Graph.Hop(0)[0]] = LBPerPacket })
	})
}

// BenchmarkEchoRoundTrip measures a direct echo probe round trip.
func BenchmarkEchoRoundTrip(b *testing.B) {
	net, path := BuildScenario(2, tSrc, tDst, SimplestDiamond)
	addr := path.Graph.V(path.Graph.Hop(0)[0]).Addr
	s := net.SessionFor(tSrc, tDst)
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ep := packet.EchoProbe{Src: tSrc, Dst: addr, ID: 7, Seq: uint16(i), IPID: uint16(i)}
		buf = ep.AppendTo(buf[:0])
		s.HandleProbe(buf)
	}
}
