package fakeroute

import (
	"testing"

	"mmlpt/internal/nprand"
	"mmlpt/internal/packet"
	"mmlpt/internal/topo"
)

func genOne(t *testing.T, seed uint64, spec GenSpec) *GeneratedPath {
	t.Helper()
	rng := nprand.New(seed)
	alloc := NewAddrAllocator(packet.AddrFrom4(10, 0, 0, 1))
	return GenerateMultipath(rng, alloc, packet.AddrFrom4(203, 0, 113, 9), spec)
}

func TestGenerateMultipathShape(t *testing.T) {
	t.Parallel()
	spec := GenSpec{Diamonds: 3, WidthMin: 2, WidthMax: 5, LenMin: 2, LenMax: 4}
	for seed := uint64(1); seed <= 20; seed++ {
		gp := genOne(t, seed, spec)
		g := gp.Graph
		ds := g.Diamonds()
		if len(ds) != spec.Diamonds {
			t.Fatalf("seed %d: got %d diamonds, want %d\n%s", seed, len(ds), spec.Diamonds, g)
		}
		for _, d := range ds {
			if l := d.MaxLength(); l < spec.LenMin || l > spec.LenMax {
				t.Errorf("seed %d: diamond length %d outside [%d,%d]", seed, l, spec.LenMin, spec.LenMax)
			}
			if w := d.MaxWidth(); w < spec.WidthMin || w > spec.WidthMax {
				t.Errorf("seed %d: diamond width %d outside [%d,%d]", seed, w, spec.WidthMin, spec.WidthMax)
			}
		}
		// Hop-aligned and ending at a single destination vertex.
		last := g.Hop(g.NumHops() - 1)
		if len(last) != 1 {
			t.Fatalf("seed %d: last hop has %d vertices", seed, len(last))
		}
	}
}

func TestGenerateMultipathDeterministic(t *testing.T) {
	t.Parallel()
	spec := GenSpec{Diamonds: 2, WidthMin: 2, WidthMax: 6, LenMin: 2, LenMax: 5,
		MeshProb: 0.3, AsymProb: 0.3, StarProb: 0.2, ChainMin: 1, ChainMax: 3,
		LB: LBMix{PerPacket: 0.2, PerDestination: 0.2}}
	a := genOne(t, 42, spec)
	b := genOne(t, 42, spec)
	if !topo.Equal(a.Graph, b.Graph) {
		t.Fatal("same seed produced different graphs")
	}
	if len(a.LB) != len(b.LB) {
		t.Fatalf("same seed produced different LB maps: %d vs %d entries", len(a.LB), len(b.LB))
	}
	for v, m := range a.LB {
		if b.LB[v] != m {
			t.Fatalf("same seed produced different LB mode for vertex %d", v)
		}
	}
}

func TestGenerateMultipathUniformWidth(t *testing.T) {
	t.Parallel()
	spec := GenSpec{Diamonds: 2, WidthMin: 2, WidthMax: 6, LenMin: 3, LenMax: 5, UniformWidth: true}
	for seed := uint64(1); seed <= 10; seed++ {
		gp := genOne(t, seed, spec)
		for _, d := range gp.Graph.Diamonds() {
			if !d.Uniform() {
				t.Errorf("seed %d: UniformWidth diamond has width asymmetry %d", seed, d.MaxWidthAsymmetry())
			}
		}
	}
}

func TestGenerateMultipathLBMix(t *testing.T) {
	t.Parallel()
	gp := genOne(t, 7, GenSpec{Diamonds: 2, WidthMin: 3, WidthMax: 5, LenMin: 2, LenMax: 3,
		LB: LBMix{PerPacket: 1}})
	if len(gp.LB) == 0 {
		t.Fatal("PerPacket=1 mix assigned no modes")
	}
	for v, m := range gp.LB {
		if m != LBPerPacket {
			t.Errorf("vertex %d: mode %d, want LBPerPacket", v, m)
		}
	}
	// And the generated path is traceable end to end on a network.
	n := NewNetwork(1)
	src, dst := packet.AddrFrom4(192, 0, 2, 1), packet.AddrFrom4(203, 0, 113, 9)
	p := n.AddGeneratedPath(src, dst, gp)
	for v, m := range gp.LB {
		if p.LB[v] != m {
			t.Fatalf("AddGeneratedPath dropped LB mode of vertex %d", v)
		}
	}
}
